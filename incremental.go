// Incremental and streaming cleaning: Append re-cleans only the rows added
// since the last run, ApplyKBDelta folds new KB facts in without flushing the
// session. Both are anchored to one invariant, pinned by the propcheck
// differentials: the cumulative report after any sequence of increments is
// semantically identical to one batch Clean of the merged inputs
// (incremental(T + ΔT) ≡ batch(T ∪ ΔT), and ApplyKBDelta ≡ rebuild from the
// merged KB).
//
// The machinery behind the invariant:
//
//   - the session snapshots the KB at Clean time (CloneExact, ID-preserving),
//     so drift checks and full re-cleans run against exactly the store a
//     batch run over the merged inputs would start from — never against the
//     enrichment the session itself added;
//   - the validated pattern is re-derived per increment by running discovery
//     over the merged table and REPLAYING §5 MUVF from the memoised crowd
//     decisions (validation.AnswerMemo): zero crowd questions, and any
//     decision context the memo cannot answer — or a replayed winner that
//     differs from the session's pattern — is drift, triggering a recorded
//     full re-clean;
//   - annotation of the delta runs through annotation.Session, which carries
//     the base run's question memo, coverage memo and seen-facts set, making
//     the delta pass observationally the suffix of one long batch pass;
//   - repairs reuse the cached §6.2 index while the KB is unchanged and rank
//     only the delta's erroneous rows; any KB mutation (delta enrichment or
//     ApplyKBDelta) re-ranks every erroneous row against a rebuilt index,
//     which is exactly what a batch run over the merged inputs computes.
//
// Equivalence assumes the crowd's answers are a function of the question
// (the oracle-pinned simulated crowds); a noisy live crowd diverges across
// batch re-runs too, so replay is no worse than the batch baseline there.
package katara

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"katara/internal/annotation"
	"katara/internal/crowd"
	"katara/internal/discovery"
	"katara/internal/kbstats"
	"katara/internal/provenance"
	"katara/internal/rdf"
	"katara/internal/repair"
	"katara/internal/resolve"
	"katara/internal/similarity"
	"katara/internal/table"
	"katara/internal/telemetry"
	"katara/internal/validation"
)

// ErrNotIncremental is returned by Append and ApplyKBDelta when no
// incremental session is active: Options.Incremental must be set and a Clean
// must have run first.
var ErrNotIncremental = errors.New("katara: Append requires Options.Incremental and a prior Clean")

// KBAddition is one triple to fold into the knowledge base mid-session via
// ApplyKBDelta. Object is a resource IRI unless Literal is set.
type KBAddition struct {
	Subject   string
	Predicate string
	Object    string
	Literal   bool
}

// session is the state of one incremental cleaning session, created by Clean
// when Options.Incremental is set and advanced by Append / ApplyKBDelta.
type session struct {
	// tbl is the session's private copy of the table; Append grows it in
	// place. A copy, not the caller's table: callers (and the job layer's
	// chain re-execution) must be able to reuse their submission unchanged.
	tbl  *Table
	rows int // rows covered by the cumulative report
	// in is the distinct-signature view, extended in place per append
	// (nil when Options.Dedup is off).
	in *table.Interned
	// base is the ID-preserving KB snapshot taken when Clean started, plus
	// every ApplyKBDelta since — the store a batch run over the merged
	// inputs would start from. Session enrichment never touches it.
	base *rdf.Store
	// baseStats/baseResolver serve drift-check discovery over base; built
	// lazily on the first increment and discarded when base changes.
	baseStats    *kbstats.Stats
	baseResolver *resolve.Cache
	// memo holds the crowd's §5 plurality decisions from the validated run;
	// replaying MUVF from it is the drift detector.
	memo *validation.AnswerMemo
	// ann carries the annotation memo state (question memo, coverage memo,
	// seen facts) across passes.
	ann        *annotation.Session
	pattern    *Pattern
	patternKey string
	// report is the cumulative report, extended in place.
	report *Report
	errs   []int // cumulative erroneous rows, ascending
	// repairIx is the cached §6.2 index; valid while the KB still has
	// repairStamp triples (every KB mutation adds a triple).
	repairIx    *repair.Index
	repairStamp int
	kbStamp     int // kb.NumTriples at the last completed increment
	shards      int
	// dirty forces a full re-clean on the next increment: the session
	// degraded (budget/deadline decisions are not replayable) or a prior
	// increment failed.
	dirty bool
}

// beginIncremental opens a fresh session at the start of a Clean run, before
// the pipeline can enrich the KB.
func (c *Cleaner) beginIncremental(t *Table, shards int) {
	c.session = &session{
		tbl:    t.Clone(),
		base:   c.kb.CloneExact(),
		memo:   validation.NewAnswerMemo(),
		ann:    &annotation.Session{},
		shards: shards,
	}
}

// captureSession records the completed run's outcome on the session.
func (c *Cleaner) captureSession(t *Table, rep *Report, in *table.Interned) {
	s := c.session
	s.in = in
	s.rows = t.NumRows()
	s.pattern = rep.Pattern
	if rep.Pattern != nil {
		s.patternKey = rep.Pattern.Key()
	}
	s.report = rep
	s.errs = s.errs[:0]
	for _, ta := range rep.Annotations {
		if ta.Label == Erroneous {
			s.errs = append(s.errs, ta.Row)
		}
	}
	s.repairIx = nil
	s.kbStamp = c.kb.NumTriples()
	// Degraded decisions depend on budget/deadline state a replay cannot
	// reproduce; all further increments fall back to full re-cleans.
	s.dirty = rep.Degraded.Any()
}

// Append grows the session's table by rows and re-cleans incrementally: the
// already-validated pattern is reused when the memoised crowd decisions still
// pin it (checked by replaying MUVF over freshly discovered candidates —
// zero crowd cost), annotation runs only over the delta with the base run's
// memo state, and repairs rank only the delta's erroneous rows unless the
// delta enriched the KB. It returns the cumulative report, which is
// semantically identical to one batch Clean of the merged table. On drift —
// the appended rows shifted discovery or a validation decision — a
// provenance drift event is recorded and the whole merged table is re-cleaned
// from the session's KB snapshot.
func (c *Cleaner) Append(rows [][]string) (*Report, error) {
	return c.AppendContext(context.Background(), rows)
}

// AppendContext is Append bounded by ctx and the Options' budget/deadline.
func (c *Cleaner) AppendContext(ctx context.Context, rows [][]string) (*Report, error) {
	s := c.session
	if !c.opts.Incremental || s == nil {
		return nil, ErrNotIncremental
	}
	if len(rows) == 0 && s.report != nil {
		return s.report, nil
	}
	cols := s.tbl.NumCols()
	for _, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("katara: appended row has %d cells, table has %d columns", len(r), cols)
		}
	}
	for _, r := range rows {
		s.tbl.Append(r...)
	}
	lo := s.rows
	if s.report == nil || s.dirty {
		// No validated pattern to extend (the previous clean failed), or the
		// session took degraded decisions replay cannot reproduce.
		return c.recleanFromBase(ctx, "unreplayable-session", len(rows))
	}
	if s.in != nil {
		s.in.Extend(s.tbl)
	}
	p, reason := c.replayPattern(ctx)
	if p == nil {
		return c.recleanFromBase(ctx, reason, len(rows))
	}
	return c.appendDelta(ctx, p, lo)
}

// replayPattern re-derives the validated pattern for the current merged
// table: discovery runs in full against the session's KB snapshot (exactly
// the candidates a batch run would rank), then MUVF replays from the memoised
// crowd decisions. A nil return is drift: the memo lacked a decision the new
// candidate set needs, or the replayed winner is not the session's pattern.
func (c *Cleaner) replayPattern(ctx context.Context) (*Pattern, string) {
	s := c.session
	if s.baseStats == nil {
		s.baseStats = kbstats.New(s.base)
		s.baseResolver = resolve.New(s.base, c.opts.Threshold)
	}
	dopts := discovery.Options{
		Threshold:     c.opts.Threshold,
		MaxCandidates: c.opts.MaxCandidates,
		MaxRows:       c.opts.MaxRows,
		MinSupport:    c.opts.MinSupport,
		Resolver:      s.baseResolver,
	}
	var cands *discovery.Candidates
	if c.opts.Workers > 1 {
		cands = discovery.GenerateParallel(s.tbl, s.baseStats, dopts, c.opts.Workers)
	} else {
		cands = discovery.Generate(s.tbl, s.baseStats, dopts)
	}
	candidates := discovery.TopK(cands, c.opts.TopK)
	if len(candidates) == 0 {
		return nil, "no-pattern"
	}
	var p *Pattern
	if c.opts.ValidationOracle == nil {
		p = candidates[0]
	} else {
		v := &validation.Validator{
			KB:                   s.base,
			Table:                s.tbl,
			Crowd:                c.crowd,
			Oracle:               c.opts.ValidationOracle,
			QuestionsPerVariable: c.opts.QuestionsPerVariable,
			TuplesPerQuestion:    c.opts.TuplesPerQuestion,
			Rng:                  rand.New(rand.NewSource(c.opts.Seed)),
			Ctx:                  ctx,
			Memo:                 s.memo,
			Replay:               true,
		}
		res := v.MUVF(candidates)
		if v.Missed || res.Degraded || res.Pattern == nil {
			return nil, "validation-memo-miss"
		}
		p = res.Pattern
	}
	if c.opts.DiscoverPaths {
		p = p.Clone()
		discovery.AttachPathEdges(p, discovery.DiscoverPathEdges(cands))
	}
	if p.Key() != s.patternKey {
		return nil, "pattern-shift"
	}
	return p, ""
}

// appendDelta runs annotation and repair over only the delta rows [lo, n)
// and folds the outcome into the cumulative report.
func (c *Cleaner) appendDelta(ctx context.Context, p *Pattern, lo int) (*Report, error) {
	s := c.session
	t := s.tbl
	var tel *telemetry.Pipeline
	switch {
	case c.opts.Pipeline != nil:
		tel = c.opts.Pipeline
	case c.opts.Tracer != nil:
		tel = telemetry.NewTraced(c.opts.Tracer)
	case c.opts.Telemetry:
		tel = telemetry.New()
	}
	c.crowd.SetTelemetry(tel)
	defer c.crowd.SetTelemetry(nil)
	c.resolver.SetTelemetry(tel)
	defer c.resolver.SetTelemetry(nil)
	rec := c.opts.Provenance
	c.crowd.SetProvenance(rec)
	defer c.crowd.SetProvenance(nil)
	if c.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Deadline)
		defer cancel()
	}
	if c.opts.Budget > 0 || c.opts.BudgetAssignments > 0 {
		c.crowd.SetBudget(crowd.NewBudget(c.opts.Budget, c.opts.BudgetAssignments))
		defer c.crowd.SetBudget(nil)
	}
	root := tel.PushSpan("append")
	root.SetStr("table", t.Name)
	root.SetInt("rows", int64(t.NumRows()-lo))
	if rec.Enabled() {
		units := make([]int, t.NumRows())
		for i := range units {
			if s.in != nil {
				units[i] = s.in.GroupOf(i)
			} else {
				units[i] = i
			}
		}
		rec.SetRowUnits(units, s.in != nil)
	}

	c.crowd.ResetStats()
	kbBefore := c.kb.NumTriples()
	start := tel.StartStage(telemetry.StageAnnotate)
	ann := c.annotator(ctx, p, tel)
	ann.Interned = s.in
	ann.Session = s.ann
	res := ann.AnnotateRange(t, nil, lo, t.NumRows())
	tel.EndStage(telemetry.StageAnnotate, start)

	rep := s.report
	// The replayed pattern carries the merged table's discovery score — what
	// a batch run over the merged table reports.
	rep.Pattern = p
	s.pattern, s.patternKey = p, p.Key()
	rep.Annotations = append(rep.Annotations, res.Tuples...)
	rep.NewFacts = append(rep.NewFacts, res.NewFacts...)
	rep.Degraded.Tuples += res.DegradedTuples
	newErrs := res.Errors()
	s.errs = append(s.errs, newErrs...)

	// Delta enrichment stales every earlier repair ranking: a batch run
	// builds its index from the final KB, so re-rank everything. Otherwise
	// the cached index still matches the KB and only the delta ranks.
	enriched := c.kb.NumTriples() != kbBefore
	if ctx.Err() != nil {
		rep.Degraded.RepairsSkipped = true
		tel.Inc(telemetry.DegradedDecisions)
	} else if len(p.Edges) > 0 {
		start = tel.StartStage(telemetry.StageRepair)
		c.sessionRepairs(rep, p, newErrs, enriched, tel, rec)
		tel.EndStage(telemetry.StageRepair, start)
	} else {
		rep.Repairs = nil
	}

	dc := c.crowd.Stats()
	rep.Crowd = addCrowdStats(rep.Crowd, dc)
	rep.QuestionsAsked = rep.Crowd.Questions
	if res.DegradedTuples > 0 || rep.Degraded.RepairsSkipped {
		s.dirty = true
	}
	root.SetInt("questions", int64(dc.Questions))
	root.End()
	if tel != nil {
		rep.Timings = tel.Snapshot()
	}
	s.rows = t.NumRows()
	s.kbStamp = c.kb.NumTriples()
	return rep, nil
}

// sessionRepairs ranks erroneous rows against the cached repair index,
// rebuilding it when the KB moved past its stamp. With rerankAll the whole
// cumulative error set is re-ranked and the report's repair map replaced;
// otherwise only rows (the delta's errors) are added. Duplicate rows collapse
// onto one ranking per distinct signature, like the batch path.
func (c *Cleaner) sessionRepairs(rep *Report, p *Pattern, rows []int, rerankAll bool, tel *telemetry.Pipeline, rec *provenance.Recorder) {
	s := c.session
	if rerankAll {
		rows = s.errs
		rep.Repairs = nil
	}
	if rep.Repairs == nil {
		rep.Repairs = make(map[int][]Repair, len(rows))
	}
	if len(rows) == 0 {
		return
	}
	if s.repairIx == nil || s.repairStamp != c.kb.NumTriples() {
		start := tel.StartStage(telemetry.StageBuildIndex)
		s.repairIx = repair.BuildIndex(c.kb, p, repair.Options{
			MaxGraphs: c.opts.RepairMaxGraphs,
			Weights:   c.opts.RepairWeights,
			Workers:   c.opts.Workers,
			Telemetry: tel,
		})
		tel.EndStage(telemetry.StageBuildIndex, start)
		s.repairStamp = c.kb.NumTriples()
	}
	ix := s.repairIx
	if tel != nil {
		ix = ix.WithTelemetry(tel)
	}
	var groupRank map[int][]Repair
	if s.in != nil {
		groupRank = make(map[int][]Repair)
	}
	for _, row := range rows {
		if s.in != nil {
			g := s.in.GroupOf(row)
			reps, ok := groupRank[g]
			if !ok {
				var considered int
				reps, considered = ix.TopKStats(s.tbl.Rows[row], c.opts.RepairK)
				groupRank[g] = reps
				if rec.Enabled() {
					rec.RecordRepair(g, considered, repairCandidates(reps))
				}
			}
			rep.Repairs[row] = reps
			continue
		}
		reps, considered := ix.TopKStats(s.tbl.Rows[row], c.opts.RepairK)
		if rec.Enabled() {
			rec.RecordRepair(row, considered, repairCandidates(reps))
		}
		rep.Repairs[row] = reps
	}
}

// recleanFromBase is the drift path: record the drift, rewind the KB to the
// session snapshot (plus any applied KB deltas) and run the full batch
// pipeline over the merged table — the increments' semantics, recomputed
// from scratch.
func (c *Cleaner) recleanFromBase(ctx context.Context, reason string, deltaRows int) (*Report, error) {
	s := c.session
	if rec := c.opts.Provenance; rec.Enabled() {
		// Reset at the start of runClean deliberately preserves drift events.
		rec.RecordDrift(reason, deltaRows)
	}
	c.kb = s.base.CloneExact()
	c.stats = kbstats.New(c.kb)
	c.resolver = resolve.New(c.kb, c.opts.Threshold)
	rep, err := c.runClean(ctx, s.tbl, s.shards)
	if err != nil && c.session != nil {
		// Leave the session usable: the table keeps its rows, and the next
		// increment re-attempts the full clean.
		c.session.dirty = true
	}
	return rep, err
}

// ApplyKBDelta folds new facts into the KB mid-session and reconciles the
// cumulative report, as if the session had started from the enlarged KB.
// Label additions on known resources take a targeted path: the pattern is
// re-checked by replay, the affected decision units — those whose cell
// values the new labels can now match, found by reverse similarity lookup —
// are examined, and if none of them involved the crowd only the repair
// rankings are recomputed. Any other addition, or an affected crowd-decided
// unit, triggers a recorded full re-clean from the merged KB. Returns the
// reconciled cumulative report.
func (c *Cleaner) ApplyKBDelta(adds []KBAddition) (*Report, error) {
	return c.ApplyKBDeltaContext(context.Background(), adds)
}

// ApplyKBDeltaContext is ApplyKBDelta bounded by ctx.
func (c *Cleaner) ApplyKBDeltaContext(ctx context.Context, adds []KBAddition) (*Report, error) {
	s := c.session
	if !c.opts.Incremental || s == nil {
		return nil, ErrNotIncremental
	}
	if len(adds) == 0 && s.report != nil {
		return s.report, nil
	}
	// Targeted reconciliation is sound only for label literals on resources
	// both stores already hold: a new resource would intern at different
	// positions in the session KB and a batch-merged KB, breaking the ID
	// order-isomorphism repair tie-breaking relies on.
	targeted := s.report != nil && !s.dirty
	labelNorms := make([]string, 0, len(adds))
	for _, a := range adds {
		isLabel := a.Literal && a.Predicate == rdf.IRILabel
		if !isLabel ||
			s.base.LookupTerm(rdf.IRI(a.Subject)) == rdf.NoID ||
			c.kb.LookupTerm(rdf.IRI(a.Subject)) == rdf.NoID {
			targeted = false
		}
		if isLabel {
			labelNorms = append(labelNorms, similarity.Normalize(a.Object))
		}
	}
	// Apply to the snapshot and the live KB in the same order; the live
	// KB's label-generation bump lets the resolver invalidate per label
	// instead of flushing.
	for _, a := range adds {
		obj := rdf.IRI(a.Object)
		if a.Literal {
			obj = rdf.Lit(a.Object)
		}
		s.base.AddFact(rdf.IRI(a.Subject), rdf.IRI(a.Predicate), obj)
		c.kb.AddFact(rdf.IRI(a.Subject), rdf.IRI(a.Predicate), obj)
	}
	s.baseStats, s.baseResolver = nil, nil
	if !targeted {
		return c.recleanFromBase(ctx, "kb-delta", 0)
	}
	p, reason := c.replayPattern(ctx)
	if p == nil {
		return c.recleanFromBase(ctx, reason, 0)
	}
	if c.kbDeltaTouchesCrowdUnits(labelNorms) {
		return c.recleanFromBase(ctx, "kb-delta-affected-unit", 0)
	}
	// Every affected unit was fully KB-validated, and fuller coverage cannot
	// shrink (KB growth is monotone): annotations, facts and enrichment are
	// untouched. Repairs are a pure function of the enlarged KB — re-rank
	// every erroneous row against a rebuilt index, exactly the batch result.
	rep := s.report
	rep.Pattern = p
	s.pattern, s.patternKey = p, p.Key()
	if len(p.Edges) > 0 {
		s.repairIx = nil
		c.sessionRepairs(rep, p, nil, true, c.opts.Pipeline, c.opts.Provenance)
	}
	s.kbStamp = c.kb.NumTriples()
	return rep, nil
}

// kbDeltaTouchesCrowdUnits reports whether any decision unit that involved
// the crowd (anything but ValidatedByKB) contains a cell value one of the new
// labels can now match. The affected values are found by reverse lookup: an
// index over the table's distinct cell values is probed with each new label
// norm under the relaxed trigram bound, a provable superset of the forward
// matches (see similarity.LookupNormalizedRelaxed), then exact-scored by the
// lookup's threshold filter. Units outside the affected set keep identical
// label-candidate sets, so their coverage, questions and enrichment are
// untouched; fully-KB-validated affected units cannot regress under a
// monotonically grown KB.
func (c *Cleaner) kbDeltaTouchesCrowdUnits(labelNorms []string) bool {
	s := c.session
	t := s.tbl
	ix := similarity.NewIndex()
	var vals []string
	seen := map[string]bool{}
	collect := func(v string) {
		if !seen[v] {
			seen[v] = true
			ix.Add(v)
			vals = append(vals, v)
		}
	}
	if s.in != nil {
		for col := 0; col < s.in.NumCols(); col++ {
			d := s.in.Dict(col)
			for code := 0; code < d.Len(); code++ {
				collect(d.Value(int32(code)))
			}
		}
	} else {
		for _, row := range t.Rows {
			for _, v := range row {
				collect(v)
			}
		}
	}
	affected := map[string]bool{}
	for _, n := range labelNorms {
		for _, cand := range ix.LookupNormalizedRelaxed(n, c.opts.Threshold) {
			affected[vals[cand.ID]] = true
		}
	}
	if len(affected) == 0 {
		return false
	}
	touches := func(row int) bool {
		for _, v := range t.Rows[row] {
			if affected[v] {
				return true
			}
		}
		return false
	}
	if s.in != nil {
		for g := 0; g < s.in.NumGroups(); g++ {
			rep := s.in.Group(g).Rep
			if touches(rep) && s.report.Annotations[rep].Label != ValidatedByKB {
				return true
			}
		}
		return false
	}
	for row := range t.Rows {
		if touches(row) && s.report.Annotations[row].Label != ValidatedByKB {
			return true
		}
	}
	return false
}

// addCrowdStats sums two crowd accountings field-by-field.
func addCrowdStats(a, b CrowdStats) CrowdStats {
	out := a
	out.Questions += b.Questions
	out.Assignments += b.Assignments
	out.Retries += b.Retries
	out.Abandonments += b.Abandonments
	out.Timeouts += b.Timeouts
	out.Escalations += b.Escalations
	if len(b.ByKind) > 0 {
		merged := make(map[crowd.Kind]int, len(a.ByKind)+len(b.ByKind))
		for k, v := range a.ByKind {
			merged[k] = v
		}
		for k, v := range b.ByKind {
			merged[k] += v
		}
		out.ByKind = merged
	}
	return out
}
