package katara

import (
	"testing"

	"katara/internal/rdf"
)

// pathKB builds the §9 scenario at facade level: persons and countries with
// NO direct nationality property — only bornIn + isLocatedIn chains.
func pathKB() *KB {
	kb := NewKB()
	add := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)) }
	lit := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.Lit(o)) }
	type ent struct{ iri, typ, label string }
	ents := []ent{
		{"y:Pirlo", "person", "Pirlo"},
		{"y:Xavi", "person", "Xavi"},
		{"y:Zidane", "person", "Zidane"},
		{"y:Flero", "city", "Flero"},
		{"y:Terrassa", "city", "Terrassa"},
		{"y:Marseille", "city", "Marseille"},
		{"y:Italy", "country", "Italy"},
		{"y:Spain", "country", "Spain"},
		{"y:France", "country", "France"},
	}
	for _, e := range ents {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	for _, c := range []string{"person", "city", "country"} {
		lit(c, rdf.IRILabel, c)
	}
	for _, p := range []string{"wasBornIn", "isLocatedIn"} {
		lit(p, rdf.IRILabel, p)
	}
	add("y:Pirlo", "wasBornIn", "y:Flero")
	add("y:Xavi", "wasBornIn", "y:Terrassa")
	add("y:Zidane", "wasBornIn", "y:Marseille")
	add("y:Flero", "isLocatedIn", "y:Italy")
	add("y:Terrassa", "isLocatedIn", "y:Spain")
	add("y:Marseille", "isLocatedIn", "y:France")
	return kb
}

func TestDiscoverPathsEndToEnd(t *testing.T) {
	kb := pathKB()
	tbl := NewTable("players", "A", "B")
	tbl.Append("Pirlo", "Italy")
	tbl.Append("Xavi", "Spain")
	tbl.Append("Zidane", "France")

	// Without path discovery the pattern has types but no relationship.
	plain := NewCleaner(kb, TrustingCrowd(), Options{})
	rep1, err := plain.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Pattern.Edges) != 0 || len(rep1.Pattern.Paths) != 0 {
		t.Fatalf("unexpected relationships without path discovery: %s",
			rep1.Pattern.Render(kb, tbl.Columns))
	}

	// With the §9 extension the bornIn∘locatedIn chain is attached.
	cleaner := NewCleaner(kb, TrustingCrowd(), Options{DiscoverPaths: true})
	rep2, err := cleaner.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Pattern.Paths) != 1 {
		t.Fatalf("path edge not attached: %s", rep2.Pattern.Render(kb, tbl.Columns))
	}
	pe := rep2.Pattern.Paths[0]
	if pe.From != 0 || pe.To != 1 || len(pe.Props) != 2 {
		t.Fatalf("path edge = %+v", pe)
	}
	if kb.LabelOf(pe.Props[0]) != "wasBornIn" || kb.LabelOf(pe.Props[1]) != "isLocatedIn" {
		t.Fatalf("chain = %s∘%s", kb.LabelOf(pe.Props[0]), kb.LabelOf(pe.Props[1]))
	}
	// All tuples satisfy the chain, so everything is KB-validated.
	for _, a := range rep2.Annotations {
		if a.Label != ValidatedByKB {
			t.Fatalf("row %d = %v, want validated-by-kb", a.Row, a.Label)
		}
	}
}

// pathFacts verifies chains against the tiny world of pathKB.
type pathFacts struct{ kb *KB }

func (o pathFacts) TypeHolds(string, rdf.ID) bool        { return true }
func (o pathFacts) RelHolds(string, rdf.ID, string) bool { return true }
func (o pathFacts) PathHolds(subj string, props []rdf.ID, obj string) bool {
	born := map[string]string{"Pirlo": "Italy", "Xavi": "Spain", "Zidane": "France"}
	return born[subj] == obj
}

func TestPathEdgeDetectsErrors(t *testing.T) {
	kb := pathKB()
	tbl := NewTable("players", "A", "B")
	tbl.Append("Pirlo", "Italy")
	tbl.Append("Zidane", "France")
	tbl.Append("Xavi", "France") // wrong: Xavi's chain reaches Spain
	cleaner := NewCleaner(kb, TrustingCrowd(), Options{
		DiscoverPaths: true,
		FactOracle:    pathFacts{kb},
	})
	rep, err := cleaner.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pattern.Paths) != 1 {
		t.Fatalf("path edge not attached: %s", rep.Pattern.Render(kb, tbl.Columns))
	}
	if rep.Annotations[0].Label != ValidatedByKB || rep.Annotations[1].Label != ValidatedByKB {
		t.Fatalf("clean rows = %v, %v", rep.Annotations[0].Label, rep.Annotations[1].Label)
	}
	if rep.Annotations[2].Label != Erroneous {
		t.Fatalf("row 2 = %v, want erroneous (chain refuted)", rep.Annotations[2].Label)
	}
}
