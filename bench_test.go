package katara

// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation (§7, appendices B–D), plus ablation benches for the design
// choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark measures the wall-clock of regenerating its experiment
// over a shared small environment; kexp prints the corresponding numbers.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"katara/internal/annotation"
	"katara/internal/cleaning"
	"katara/internal/crowd"
	"katara/internal/discovery"
	"katara/internal/experiments"
	"katara/internal/pattern"
	"katara/internal/repair"
	"katara/internal/table"
	"katara/internal/telemetry"
	"katara/internal/validation"
	"katara/internal/workload"
	"katara/internal/world"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.Config{
			Seed: 7,
			World: world.Config{
				Persons: 150, Players: 80, Clubs: 16, Universities: 40,
				Films: 40, Books: 40,
			},
			Scale:       0.02,
			MaxRows:     40,
			PGMMaxCells: 4000,
		})
	})
	return benchEnv
}

// --- Table 1 ---

func BenchmarkTable1Characteristics(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table1(e)
	}
}

// --- Table 2 / Table 3: discovery quality and efficiency per algorithm ---

func benchDiscovery(b *testing.B, run func(e *experiments.Env, c *discovery.Candidates) []*pattern.Pattern) {
	e := env(b)
	ds := e.Dataset("WebTables")
	kb := e.KBs[0]
	cands := make([]*discovery.Candidates, len(ds.Specs))
	for i, spec := range ds.Specs {
		cands[i] = discovery.Generate(spec.Table, e.Stats[kb.Name], discovery.Options{
			MaxCandidates: e.Cfg.MaxCandidates, MaxRows: e.Cfg.MaxRows,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cands {
			run(e, c)
		}
	}
}

func BenchmarkTable2DiscoveryRankJoin(b *testing.B) {
	benchDiscovery(b, func(e *experiments.Env, c *discovery.Candidates) []*pattern.Pattern {
		return discovery.TopK(c, 1)
	})
}

func BenchmarkTable2DiscoverySupport(b *testing.B) {
	benchDiscovery(b, func(e *experiments.Env, c *discovery.Candidates) []*pattern.Pattern {
		return discovery.SupportTopK(c, 1)
	})
}

func BenchmarkTable2DiscoveryMaxLike(b *testing.B) {
	benchDiscovery(b, func(e *experiments.Env, c *discovery.Candidates) []*pattern.Pattern {
		return discovery.MaxLikeTopK(c, 1)
	})
}

func BenchmarkTable2DiscoveryPGM(b *testing.B) {
	benchDiscovery(b, func(e *experiments.Env, c *discovery.Candidates) []*pattern.Pattern {
		return discovery.PGMTopK(c, 1, discovery.PGMOptions{MaxCells: e.Cfg.PGMMaxCells})
	})
}

// BenchmarkTable3CandidateGeneration isolates the KB-lookup cost that
// dominates Table 3 for Support/MaxLike/RankJoin.
func BenchmarkTable3CandidateGeneration(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[0] // Person
	kb := e.KBs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		discovery.Generate(spec.Table, e.Stats[kb.Name], discovery.Options{
			MaxCandidates: e.Cfg.MaxCandidates, MaxRows: e.Cfg.MaxRows,
		})
	}
}

// --- Figure 6 / Figure 11: top-k curves ---

func BenchmarkFigure6TopK(b *testing.B) {
	e := env(b)
	spec := e.Dataset("WebTables").Specs[0]
	kb := e.KBs[0]
	c := discovery.Generate(spec.Table, e.Stats[kb.Name], discovery.Options{
		MaxCandidates: e.Cfg.MaxCandidates, MaxRows: e.Cfg.MaxRows,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		discovery.TopK(c, 10)
	}
}

// --- Figure 7 / Table 4: pattern validation ---

func benchValidation(b *testing.B, muvf bool) {
	e := env(b)
	spec := e.Dataset("WebTables").Specs[0]
	kb := e.KBs[0]
	c := discovery.Generate(spec.Table, e.Stats[kb.Name], discovery.Options{
		MaxCandidates: e.Cfg.MaxCandidates, MaxRows: e.Cfg.MaxRows,
	})
	ps := discovery.TopK(c, 10)
	if len(ps) == 0 {
		b.Skip("no patterns")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := &validation.Validator{
			KB:     kb.Store,
			Table:  spec.Table,
			Crowd:  crowd.Perfect(3),
			Oracle: workload.SpecOracle{Spec: spec, KB: kb},
			Rng:    newRand(int64(i)),
		}
		if muvf {
			v.MUVF(ps)
		} else {
			v.AVI(ps)
		}
	}
}

func BenchmarkFigure7ValidationMUVF(b *testing.B) { benchValidation(b, true) }

func BenchmarkTable4SchedulingAVI(b *testing.B) { benchValidation(b, false) }

// --- Table 5: annotation ---

func BenchmarkTable5Annotation(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[0]
	kb := e.KBs[1]
	p := spec.TruthPattern(kb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ann := &annotation.Annotator{
			KB:      kb.Store,
			Pattern: p,
			Crowd:   crowd.Perfect(3),
			Oracle:  workload.WorldOracle{W: e.World, KB: kb},
		}
		ann.Annotate(spec.Table)
	}
}

// --- Figure 8 / Table 6 / Table 7: repair ---

func repairFixture(b *testing.B) (*experiments.Env, *workload.TableSpec, *workload.KB, *table.Table, *repair.Index) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[0] // Person
	kb := e.KBs[1]                                 // DBpedia
	p := spec.TruthPattern(kb)
	ix := repair.BuildIndex(kb.Store, p, repair.Options{})
	dirty := spec.Table.Clone()
	table.InjectErrors(dirty, p.Columns(), 0.10, newRand(3))
	return e, spec, kb, dirty, ix
}

func BenchmarkFigure8RepairTopK(b *testing.B) {
	_, _, _, dirty, ix := repairFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < dirty.NumRows(); r += 7 {
			ix.TopK(dirty.Rows[r], 3)
		}
	}
}

func BenchmarkTable6RepairKatara(b *testing.B) {
	_, _, _, dirty, ix := repairFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < dirty.NumRows(); r++ {
			ix.TopK(dirty.Rows[r], 3)
		}
	}
}

func BenchmarkTable6RepairEQ(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[0]
	fds := experiments.AppendixDFDs(spec.Table.Name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dirty := spec.Table.Clone()
		table.InjectErrors(dirty, []int{1, 2, 3}, 0.10, newRand(int64(i)))
		b.StartTimer()
		cleaning.EQ(dirty, fds)
	}
}

func BenchmarkTable6RepairSCARE(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dirty := spec.Table.Clone()
		table.InjectErrors(dirty, []int{1, 2, 3}, 0.10, newRand(int64(i)))
		b.StartTimer()
		cleaning.SCARE(dirty, []int{0}, []int{1, 2, 3}, cleaning.SCAREOptions{})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationRankJoinVsExhaustive compares the best-first rank join
// with the exhaustive Cartesian scoring it avoids.
func BenchmarkAblationRankJoinVsExhaustive(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[2] // University (3 columns)
	kb := e.KBs[0]
	c := discovery.Generate(spec.Table, e.Stats[kb.Name], discovery.Options{
		MaxCandidates: 6, MaxRows: e.Cfg.MaxRows,
	})
	b.Run("RankJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.TopK(c, 3)
		}
	})
	b.Run("Exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := discovery.ExhaustiveTopK(c, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCoherence compares full scoring with naiveScore (§4.2).
func BenchmarkAblationCoherence(b *testing.B) {
	e := env(b)
	spec := e.Dataset("WebTables").Specs[0]
	kb := e.KBs[0]
	c := discovery.Generate(spec.Table, e.Stats[kb.Name], discovery.Options{
		MaxCandidates: e.Cfg.MaxCandidates, MaxRows: e.Cfg.MaxRows,
	})
	b.Run("FullScore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.TopK(c, 3)
		}
	})
	b.Run("NaiveScore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.TopKNaive(c, 3)
		}
	})
}

// BenchmarkAblationInvertedLists compares Algorithm 4 with the naive
// all-instance-graphs scan it improves on (§6.2).
func BenchmarkAblationInvertedLists(b *testing.B) {
	_, _, _, dirty, ix := repairFixture(b)
	row := dirty.Rows[0]
	b.Run("InvertedLists", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.TopK(row, 3)
		}
	})
	b.Run("NaiveScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.TopKNaive(row, 3)
		}
	})
}

// BenchmarkAblationEnrichment measures annotation with and without the KB
// enrichment feedback loop (Table 5's redundancy effect).
func BenchmarkAblationEnrichment(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[0]
	for _, enrich := range []bool{false, true} {
		name := "Off"
		if enrich {
			name = "On"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				kb := workload.DBpediaLike(e.World, 7+102)
				p := spec.TruthPattern(kb)
				ann := &annotation.Annotator{
					KB:      kb.Store,
					Pattern: p,
					Crowd:   crowd.Perfect(3),
					Oracle:  workload.WorldOracle{W: e.World, KB: kb},
					Enrich:  enrich,
				}
				b.StartTimer()
				ann.Annotate(spec.Table)
			}
		})
	}
}

// BenchmarkParallelGeneration compares sequential candidate generation with
// the sharded GenerateParallel — the single-machine analogue of the paper's
// 30-machine distribution (§7.1). With workers = GOMAXPROCS the parallel
// path falls back to sequential on single-core machines; the speedup is
// only visible on multicore hosts and on tables with distinct values
// (value-redundant tables like Person are already collapsed by the
// sequential run's per-value cache).
func BenchmarkParallelGeneration(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[1] // Soccer (distinct players)
	kb := e.KBs[1]                                 // DBpedia covers soccer
	opts := discovery.Options{MaxCandidates: e.Cfg.MaxCandidates, MaxRows: 0}
	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.Generate(spec.Table, e.Stats[kb.Name], opts)
		}
	})
	b.Run(fmt.Sprintf("AutoWorkers%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.GenerateParallel(spec.Table, e.Stats[kb.Name], opts, 0)
		}
	})
}

// BenchmarkParallelAnnotation compares serial per-tuple KB-coverage
// evaluation with the Annotator's worker pool. Enrichment is off so the KB
// stays immutable and every row's coverage comes from the precompute pass —
// the regime where the fan-out pays (an enriching run falls back to serial
// re-evaluation after the first KB mutation). As with GenerateParallel, the
// speedup only materialises on multicore hosts; on one core the pool is pure
// scheduling overhead.
func BenchmarkParallelAnnotation(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[0] // Person
	kb := e.KBs[1]                                 // DBpedia
	p := spec.TruthPattern(kb)
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ann := &annotation.Annotator{
					KB:      kb.Store,
					Pattern: p,
					Crowd:   crowd.Perfect(3),
					Oracle:  workload.WorldOracle{W: e.World, KB: kb},
					Workers: workers,
				}
				ann.Annotate(spec.Table)
			}
		}
	}
	b.Run("Serial", bench(1))
	b.Run(fmt.Sprintf("Workers%d", runtime.GOMAXPROCS(0)), bench(runtime.GOMAXPROCS(0)))
}

// BenchmarkParallelRepairIndex compares serial instance-graph enumeration
// with the root-sharded worker pool in BuildIndex (multicore hosts only;
// see BenchmarkParallelAnnotation).
func BenchmarkParallelRepairIndex(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[0] // Person
	kb := e.KBs[1]                                 // DBpedia
	p := spec.TruthPattern(kb)
	kb.Store.WarmClosures()
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				repair.BuildIndex(kb.Store, p, repair.Options{Workers: workers})
			}
		}
	}
	b.Run("Serial", bench(1))
	b.Run(fmt.Sprintf("Workers%d", runtime.GOMAXPROCS(0)), bench(runtime.GOMAXPROCS(0)))
}

// BenchmarkTelemetryOverhead pins the nil-pipeline contract: annotating with
// instrumentation disabled must cost the same as before the telemetry layer
// existed, and enabling it must stay cheap (atomic adds only).
func BenchmarkTelemetryOverhead(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[0]
	kb := e.KBs[1]
	p := spec.TruthPattern(kb)
	bench := func(tel *telemetry.Pipeline) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ann := &annotation.Annotator{
					KB:        kb.Store,
					Pattern:   p,
					Crowd:     crowd.Perfect(3),
					Oracle:    workload.WorldOracle{W: e.World, KB: kb},
					Telemetry: tel,
				}
				ann.Annotate(spec.Table)
			}
		}
	}
	b.Run("Disabled", bench(nil))
	b.Run("Enabled", bench(telemetry.New()))
}

// BenchmarkDisabledInstrumentation asserts the acceptance criterion that the
// disabled (nil-*Pipeline) path of every instrumentation primitive — spans,
// attributes, timers, histogram observations, counters — is allocation-free.
// ReportAllocs makes the claim visible in bench output; the explicit check
// fails the benchmark outright on any regression.
func BenchmarkDisabledInstrumentation(b *testing.B) {
	var tel *telemetry.Pipeline
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tel.StartSpan("op")
		sp.SetInt("k", int64(i))
		sp.SetStr("s", "v")
		sp.End()
		ps := tel.PushSpan("stage")
		ps.End()
		start := tel.StartTimer()
		tel.ObserveSince(telemetry.HistCrowdQuestion, start)
		tel.Observe(telemetry.HistRankJoinIter, time.Millisecond)
		tel.Inc(telemetry.CrowdQuestions)
		tel.EndStage(telemetry.StageAnnotate, tel.StartStage(telemetry.StageAnnotate))
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := tel.StartSpan("op")
		sp.SetInt("k", 1)
		sp.End()
		tel.Observe(telemetry.HistRepairTopK, time.Microsecond)
	}); allocs != 0 {
		b.Fatalf("disabled instrumentation allocates %.1f per op", allocs)
	}
}

// BenchmarkDisabledProvenance asserts the acceptance criterion that the
// disabled (nil-*Recorder) path of every provenance primitive is
// allocation-free: a run without -provenance/-explain must pay nothing for
// the lineage layer. The explicit AllocsPerRun check fails the benchmark
// outright on any regression.
func BenchmarkDisabledProvenance(b *testing.B) {
	var rec *ProvenanceRecorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rec.Enabled() {
			b.Fatal("nil recorder reports enabled")
		}
		rec.RecordPattern("p", 1.0, true)
		rec.RecordValidationStep("type(0)", 0.5, 2, "city", false)
		rec.SetRowUnits(nil, false)
		_ = rec.UnitOf(i)
		_ = rec.BeginTuple(i)
		rec.RecordCheck(i, "node", "kb", nil, "", 0, true)
		rec.RecordVerdict(i, "validated_by_kb", false, false)
		rec.RecordRepair(i, 3, nil)
		_ = rec.StartQuestion("bool", "", nil)
		rec.AddVote(1, 0, 0, 1.0)
		rec.FinishQuestion(1, 0, 0, 0, 0, 0, "")
		_ = rec.LastQuestionID()
		_ = rec.Child()
		rec.Merge(nil)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = rec.BeginTuple(1)
		rec.RecordCheck(1, "edge", "crowd", nil, "", 2, false)
		rec.RecordVerdict(1, "erroneous", false, false)
		rec.RecordRepair(1, 5, nil)
	}); allocs != 0 {
		b.Fatalf("disabled provenance allocates %.1f per op", allocs)
	}
}

// BenchmarkEndToEndClean measures the full public-API pipeline. Latency
// percentiles from the run's own telemetry ride along as custom metrics, so
// benchsave snapshots carry distributional data, not just ns/op.
func BenchmarkEndToEndClean(b *testing.B) {
	e := env(b)
	spec := e.Dataset("RelationalTables").Specs[2] // University
	kb := e.KBs[0]
	tel := telemetry.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cleaner := NewCleaner(kb.Store, crowd.Perfect(3), Options{
			FactOracle: workload.WorldOracle{W: e.World, KB: kb},
			Pipeline:   tel,
		})
		if _, err := cleaner.Clean(spec.Table); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if h := tel.Hist(telemetry.HistAnnotateTuple); h.Count() > 0 {
		b.ReportMetric(float64(h.Quantile(0.50)), "annotate-p50-ns/op")
		b.ReportMetric(float64(h.Quantile(0.99)), "annotate-p99-ns/op")
	}
	if h := tel.Hist(telemetry.HistRepairTopK); h.Count() > 0 {
		b.ReportMetric(float64(h.Quantile(0.99)), "topk-p99-ns/op")
	}
}

// --- Full paper scale: Person at 316K rows (§7 Table 1) ---

var (
	fullScaleOnce sync.Once
	fullScaleSpec *workload.TableSpec
)

// fullScaleTable builds the paper-sized dirty Person spec once: 316K rows
// sampled with replacement from the environment's person pool (the paper's
// redundancy), 10% injected errors in the pattern-covered columns (§7.4).
func fullScaleTable(b *testing.B) *workload.TableSpec {
	b.Helper()
	e := env(b)
	fullScaleOnce.Do(func() {
		spec := workload.PersonTable(e.World, 308, workload.PaperPersonRows)
		table.InjectErrors(spec.Table, []int{1, 2, 3}, 0.10, newRand(309))
		fullScaleSpec = spec
	})
	return fullScaleSpec
}

// BenchmarkAppendDelta measures the incremental path at paper scale: a
// session that has already cleaned the 316K-row Person table absorbs a
// 512-row appended batch. The delta is sampled with replacement from the
// base rows — the paper's redundancy regime — so its signatures are already
// crowd-decided and the append rides the session memos: no new questions, no
// enrichment, no re-rank of earlier repairs. (A delta with genuinely new
// values enriches the KB and re-ranks everything — correct, batch-equivalent,
// and priced like a batch run; the session's win is the redundant case.)
// The timed loop covers only Cleaner.Append; one batch clean of the merged
// table runs outside the timer as the reference, and the run fails unless
// the measured append costs less than 10% of it — the headroom that
// justifies the session machinery at all. The ratio rides along as a custom
// metric so benchsave snapshots track it.
func BenchmarkAppendDelta(b *testing.B) {
	e := env(b)
	spec := fullScaleTable(b)
	const deltaRows = 512
	base := spec.Table
	rng := newRand(401)
	delta := make([][]string, deltaRows)
	for i := range delta {
		delta[i] = base.Rows[rng.Intn(base.NumRows())]
	}
	merged := base.Clone()
	for _, r := range delta {
		merged.Append(r...)
	}

	newOpts := func(kb *workload.KB, incremental bool) Options {
		return Options{
			FactOracle:       workload.WorldOracle{W: e.World, KB: kb},
			ValidationOracle: workload.SpecOracle{Spec: spec, KB: kb},
			Workers:          -1,
			Shards:           -1,
			MaxRows:          500, // cap discovery sampling; patterns saturate long before 316K rows
			Incremental:      incremental,
		}
	}

	// Reference: one batch clean of the merged table on a fresh KB.
	kbRef := workload.DBpediaLike(e.World, 7)
	t0 := time.Now()
	if _, err := NewCleaner(kbRef.Store, crowd.Perfect(3), newOpts(kbRef, false)).Clean(merged); err != nil {
		b.Fatal(err)
	}
	fullDur := time.Since(t0)

	// Each iteration appends onto a fresh session (built outside the timer):
	// repeated appends on one session can legitimately drift — MUVF's
	// validation sampling depends on table size, so a later replay may miss
	// the memo and correctly fall back to a full re-clean — and a drifted
	// iteration would measure the batch pipeline, not the append path.
	newSession := func() *Cleaner {
		kb := workload.DBpediaLike(e.World, 7)
		cl := NewCleaner(kb.Store, crowd.Perfect(3), newOpts(kb, true))
		if _, err := cl.Clean(base); err != nil {
			b.Fatal(err)
		}
		return cl
	}
	cl := newSession()
	t1 := time.Now()
	if _, err := cl.Append(delta); err != nil {
		b.Fatal(err)
	}
	appendDur := time.Since(t1)
	// A drifted append recleans the whole merged table and lands near 100%
	// of the reference cost, so the bound doubles as a no-drift assertion.
	if appendDur*10 >= fullDur {
		b.Fatalf("append of %d rows took %v, full re-clean %v; append must stay under 10%%",
			deltaRows, appendDur, fullDur)
	}
	b.ReportMetric(float64(appendDur)/float64(fullDur), "append-vs-full-ratio")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl := newSession()
		b.StartTimer()
		if _, err := cl.Append(delta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersonFullScale is the tentpole measurement: the end-to-end
// pipeline over the full 316K-row Person table on one machine, dedup on.
// Alongside time/op and allocs/op it reports the process's peak memory
// footprint, the table's distinct-signature count, and the crowd question
// counts with and without distinct-signature execution (the dedup-off
// reference run happens outside the timer); the run fails unless dedup asks
// strictly fewer questions.
func BenchmarkPersonFullScale(b *testing.B) {
	e := env(b)
	spec := fullScaleTable(b)
	dirty := spec.Table
	// Enrichment mutates the KB, and Store.Clone does not preserve term IDs
	// (the oracles translate through them), so every run rebuilds the same
	// deterministic KB cmd/katara -paper-scale uses — DBpedia-shaped, seed 7,
	// modelling every relation the Person pattern needs. The rebuild is ~2K
	// triples, noise next to the clean itself, and bench and CLI end up
	// measuring the identical workload.
	runOnce := func(dedup bool) *Report {
		kb := workload.DBpediaLike(e.World, 7)
		d := dedup
		r, err := NewCleaner(kb.Store, crowd.Perfect(3), Options{
			FactOracle:       workload.WorldOracle{W: e.World, KB: kb},
			ValidationOracle: workload.SpecOracle{Spec: spec, KB: kb},
			Workers:          -1,
			Shards:           -1,
			MaxRows:          500, // cap discovery sampling; patterns saturate long before 316K rows
			Dedup:            &d,
		}).Clean(dirty)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	offRep := runOnce(false)
	var rep *Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = runOnce(true)
	}
	b.StopTimer()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	b.ReportMetric(float64(m.Sys), "peak-bytes/op")
	b.ReportMetric(float64(dirty.Interned().NumGroups()), "distinct-signatures/op")
	b.ReportMetric(float64(rep.QuestionsAsked), "questions-dedup/op")
	b.ReportMetric(float64(offRep.QuestionsAsked), "questions-nodedup/op")
	if rep.QuestionsAsked >= offRep.QuestionsAsked {
		b.Fatalf("dedup asked %d questions, no-dedup asked %d; dedup must be strictly lower at full scale",
			rep.QuestionsAsked, offRep.QuestionsAsked)
	}
}
