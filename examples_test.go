package katara

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end, guarding them
// against bit-rot. Skipped under -short (each example builds and runs a
// full pipeline).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; skipped with -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"quickstart": "erroneous",
		"soccer":     "validated pattern",
		"kbenrich":   "second pass",
		"webtables":  "aggregate tuples",
		"university": "KATARA",
		"paths":      "wasBornIn∘isLocatedIn",
		"sparql":     "Q_types",
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if marker, ok := want[name]; ok && !strings.Contains(string(out), marker) {
				t.Fatalf("example %s output missing %q:\n%s", name, marker, out)
			}
		})
	}
	if found < 3 {
		t.Fatalf("only %d examples found; the library promises at least 3", found)
	}
}
