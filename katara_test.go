package katara

import (
	"strings"
	"testing"

	"katara/internal/rdf"
	"katara/internal/workload"
	"katara/internal/world"
)

// figure1 builds the paper's running example: the soccer table of Fig. 1
// and the Yago fragment of Fig. 2.
func figure1() (*KB, *Table) {
	kb := NewKB()
	add := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)) }
	lit := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.Lit(o)) }
	ents := []struct{ iri, typ, label string }{
		{"y:Rossi", "person", "Rossi"},
		{"y:Klate", "person", "Klate"},
		{"y:Pirlo", "person", "Pirlo"},
		{"y:Italy", "country", "Italy"},
		{"y:SAfrica", "country", "S. Africa"},
		{"y:Spain", "country", "Spain"},
		{"y:Rome", "capital", "Rome"},
		{"y:Pretoria", "capital", "Pretoria"},
		{"y:Madrid", "capital", "Madrid"},
	}
	for _, e := range ents {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	for _, c := range []string{"person", "country", "capital"} {
		lit(c, rdf.IRILabel, c)
	}
	add("y:Italy", "hasCapital", "y:Rome")
	add("y:Spain", "hasCapital", "y:Madrid")
	add("y:Rossi", "nationality", "y:Italy")
	add("y:Klate", "nationality", "y:SAfrica")
	add("y:Pirlo", "nationality", "y:Italy")
	lit("hasCapital", rdf.IRILabel, "hasCapital")
	lit("nationality", rdf.IRILabel, "nationality")

	t := NewTable("soccer", "A", "B", "C")
	t.Append("Rossi", "Italy", "Rome")
	t.Append("Klate", "S. Africa", "Pretoria")
	t.Append("Pirlo", "Italy", "Madrid")
	return kb, t
}

// fig1Oracle knows the real world of the running example.
type fig1Oracle struct{ kb *KB }

func (o fig1Oracle) TypeHolds(value string, typ rdf.ID) bool { return true }
func (o fig1Oracle) RelHolds(subj string, prop rdf.ID, obj string) bool {
	if o.kb.LabelOf(prop) == "hasCapital" {
		switch subj {
		case "S. Africa":
			return obj == "Pretoria"
		case "Italy":
			return obj == "Rome"
		case "Spain":
			return obj == "Madrid"
		}
		return false
	}
	return true
}

func TestCleanRunningExample(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{FactOracle: fig1Oracle{kb}})
	report, err := c.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2: t1 KB-validated, t2 crowd-validated, t3 erroneous.
	if report.Annotations[0].Label != ValidatedByKB {
		t.Fatalf("t1 = %v", report.Annotations[0].Label)
	}
	if report.Annotations[1].Label != ValidatedByCrowd {
		t.Fatalf("t2 = %v", report.Annotations[1].Label)
	}
	if report.Annotations[2].Label != Erroneous {
		t.Fatalf("t3 = %v", report.Annotations[2].Label)
	}
	// KB enrichment: S. Africa hasCapital Pretoria.
	if len(report.NewFacts) != 1 || report.NewFacts[0].Object != "Pretoria" {
		t.Fatalf("NewFacts = %v", report.NewFacts)
	}
	// Top repair for t3 fixes Madrid → Rome (Example 12/13).
	reps := report.Repairs[2]
	if len(reps) == 0 {
		t.Fatal("no repairs for t3")
	}
	found := false
	for _, ch := range reps[0].Changes {
		if ch.From == "Madrid" && ch.To == "Rome" {
			found = true
		}
	}
	if !found {
		t.Fatalf("top repair = %v", reps[0])
	}
	if report.QuestionsAsked == 0 {
		t.Fatal("crowd should have been consulted")
	}
}

func TestCleanErrors(t *testing.T) {
	kb, _ := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{})
	if _, err := c.Clean(nil); err == nil {
		t.Fatal("nil table must error")
	}
	empty := NewTable("e", "A")
	if _, err := c.Clean(empty); err == nil {
		t.Fatal("empty table must error")
	}
	unknown := NewTable("u", "A")
	unknown.Append("zzz-unknown-value")
	if _, err := c.Clean(unknown); err != ErrNoPattern {
		t.Fatalf("expected ErrNoPattern, got %v", err)
	}
}

func TestTrustingPolicy(t *testing.T) {
	// With no FactOracle, missing facts are treated as KB incompleteness:
	// nothing is erroneous, everything missing becomes a new fact.
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{})
	report, err := c.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range report.Annotations {
		if a.Label == Erroneous {
			t.Fatalf("tuple %d marked erroneous under trusting policy", i)
		}
	}
	if len(report.NewFacts) == 0 {
		t.Fatal("trusting policy should enrich the KB")
	}
}

func TestDiscoverPatternsShape(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{TopK: 5})
	ps := c.DiscoverPatterns(tbl)
	if len(ps) == 0 {
		t.Fatal("no patterns")
	}
	best := ps[0]
	if got := kb.LabelOf(best.TypeOf(1)); got != "country" {
		t.Fatalf("column B typed %q", got)
	}
	e := best.EdgeBetween(1, 2)
	if e == nil || kb.LabelOf(e.Prop) != "hasCapital" {
		t.Fatal("missing hasCapital edge")
	}
	s := best.Render(kb, tbl.Columns)
	if !strings.Contains(s, "hasCapital") {
		t.Fatalf("render = %s", s)
	}
}

func TestValidatePatternWithoutOracleTrustsTop(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{})
	ps := c.DiscoverPatterns(tbl)
	p, questions := c.ValidatePattern(tbl, ps)
	if p != ps[0] || questions != 0 {
		t.Fatal("oracle-less validation must return the top pattern free of charge")
	}
}

func TestBestKB(t *testing.T) {
	w := world.New(3, world.Config{Persons: 60, Players: 30, Clubs: 8, Universities: 20, Films: 10, Books: 10})
	yago := workload.YagoLike(w, 1)
	dbp := workload.DBpediaLike(w, 2)
	spec := workload.SoccerTable(w, 5, 40)
	// Soccer relations exist only in DBpedia: it must win.
	idx, score := BestKB(spec.Table, []*KB{yago.Store, dbp.Store}, Options{})
	if idx != 1 {
		t.Fatalf("BestKB picked %d (score %f), want DBpedia", idx, score)
	}
	// No KB covers a nonsense table.
	junk := NewTable("j", "A")
	junk.Append("qqqqq-zz")
	if idx, _ := BestKB(junk, []*KB{yago.Store}, Options{}); idx != -1 {
		t.Fatal("BestKB should return -1 for uncoverable tables")
	}
}

func TestRepairsRespectNoEdgePatterns(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{})
	p := &Pattern{} // no edges
	if got := c.Repairs(tbl, p, []int{0}); got != nil {
		t.Fatal("edge-less pattern must yield no repairs")
	}
}
