// WebTables: batch-cleaning many small schemaless tables (§7's WebTables
// workload). Each table gets its own discovered pattern; the example prints
// a per-table summary plus aggregate annotation statistics, and shows how
// the multi-KB selection of §2 picks the better KB per table.
//
//	go run ./examples/webtables
package main

import (
	"fmt"

	"katara"
	"katara/internal/workload"
	"katara/internal/world"
)

func main() {
	const seed = 11
	w := world.New(seed, world.Config{})
	yago := workload.YagoLike(w, seed+1)
	dbp := workload.DBpediaLike(w, seed+2)
	kbs := []*workload.KB{yago, dbp}
	ds := workload.WebTables(w, seed+3)

	fmt.Printf("%d web tables; choosing a KB and cleaning each:\n\n", len(ds.Specs))
	var totalKB, totalCrowd, totalErr, yagoWins, dbpWins int
	for _, spec := range ds.Specs {
		// §2: pattern discovery doubles as KB selection.
		idx, _ := katara.BestKB(spec.Table, []*katara.KB{yago.Store, dbp.Store}, katara.Options{})
		if idx < 0 {
			fmt.Printf("  %-14s no KB covers this table\n", spec.Table.Name)
			continue
		}
		kb := kbs[idx]
		if idx == 0 {
			yagoWins++
		} else {
			dbpWins++
		}
		cleaner := katara.NewCleaner(kb.Store, katara.NewCrowd(10, 0.95, seed), katara.Options{
			ValidationOracle: workload.SpecOracle{Spec: spec, KB: kb},
			FactOracle:       workload.WorldOracle{W: w, KB: kb},
		})
		report, err := cleaner.Clean(spec.Table)
		if err != nil {
			fmt.Printf("  %-14s %v\n", spec.Table.Name, err)
			continue
		}
		nKB, nCrowd, nErr := 0, 0, 0
		for _, a := range report.Annotations {
			switch a.Label {
			case katara.ValidatedByKB:
				nKB++
			case katara.ValidatedByCrowd:
				nCrowd++
			default:
				nErr++
			}
		}
		totalKB += nKB
		totalCrowd += nCrowd
		totalErr += nErr
		fmt.Printf("  %-14s kb=%-8s rows=%-3d kb-validated=%-3d crowd=%-3d err=%-2d facts=%d\n",
			spec.Table.Name, kb.Name, spec.Table.NumRows(), nKB, nCrowd, nErr, len(report.NewFacts))
	}
	total := totalKB + totalCrowd + totalErr
	if total == 0 {
		return
	}
	fmt.Printf("\nKB selection: Yago won %d tables, DBpedia %d\n", yagoWins, dbpWins)
	fmt.Printf("aggregate tuples: %.0f%% KB-validated, %.0f%% crowd-validated, %.0f%% erroneous\n",
		100*float64(totalKB)/float64(total),
		100*float64(totalCrowd)/float64(total),
		100*float64(totalErr)/float64(total))
}
