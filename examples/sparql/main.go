// SPARQL: querying the KB substrate directly with the engine KATARA's
// discovery module uses internally. The queries are the paper's own §4.1
// shapes (Q_types, Q¹_rels, Q²_rels) plus the per-tuple ASK of §6.1.
//
//	go run ./examples/sparql
package main

import (
	"fmt"
	"log"

	"katara/internal/sparql"
	"katara/internal/workload"
	"katara/internal/world"
)

func main() {
	w := world.New(1, world.Config{})
	kb := workload.YagoLike(w, 1)
	engine := sparql.NewEngine(kb.Store)

	show := func(title, query string) {
		fmt.Println("# " + title)
		fmt.Println(query)
		res, err := engine.Run(query)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Vars) == 0 {
			fmt.Printf("=> %v\n\n", res.Bool)
			return
		}
		for i, row := range res.Rows {
			if i >= 8 {
				fmt.Printf("   ... (%d more)\n", len(res.Rows)-i)
				break
			}
			fmt.Print("  ")
			for _, v := range res.Vars {
				fmt.Printf(" ?%s=%s", v, kb.Store.LabelOf(row[v]))
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Q_types (§4.1): the candidate types of a cell value.
	show("Q_types: types and supertypes of the entity labelled \"Italy\"",
		`SELECT DISTINCT ?c WHERE {
			?x rdfs:label "Italy" .
			?x rdf:type/rdfs:subClassOf* ?c }`)

	// Q¹_rels (§4.1): relationships between two resource-valued cells.
	show("Q1_rels: relationships from \"Italy\" to \"Rome\"",
		`SELECT DISTINCT ?P WHERE {
			?xi rdfs:label "Italy" .
			?xj rdfs:label "Rome" .
			?xi ?P ?xj }`)

	// §6.1 step 1: is a tuple's edge covered by the KB?
	show("ASK: does the KB know Italy's capital is Rome?",
		`ASK { ?c rdfs:label "Italy" . ?k rdfs:label "Rome" . ?c ?p ?k }`)

	// Joins across the pattern graph.
	show("players who are citizens of a country whose capital is labelled \"Rome\"",
		`SELECT ?who WHERE {
			?who ?cit ?country .
			?country ?cap ?capital .
			?capital rdfs:label "Rome" .
			FILTER(?cit = yago:isCitizenOf)
			FILTER(?cap = yago:hasCapital) } LIMIT 10`)

	// Property paths over the deep Yago-like hierarchy.
	show("everything the class 'capital' transitively specialises",
		`SELECT ?c WHERE { ?k rdfs:label "capital" . ?k rdfs:subClassOf* ?c }`)
}
