// Soccer: the paper's §1 motivating scenario at dataset scale.
//
// We generate the synthetic world, publish it as the DBpedia-like KB (the
// one that actually covers soccer relationships — Yago does not, §7.4),
// corrupt 10% of the Soccer relation, and let KATARA detect and repair the
// errors. The example reports detection and repair precision/recall against
// the known injected errors.
//
//	go run ./examples/soccer
package main

import (
	"fmt"
	"log"
	"math/rand"

	"katara"
	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

func main() {
	const seed = 42
	w := world.New(seed, world.Config{})
	kb := workload.DBpediaLike(w, seed)
	spec := workload.SoccerTable(w, seed, 400)

	clean := spec.Table
	dirty := clean.Clone()
	rng := rand.New(rand.NewSource(seed))
	injected := table.InjectErrors(dirty, []int{1, 2, 3}, 0.10, rng)
	fmt.Printf("Soccer table: %d tuples, %d cells corrupted\n", dirty.NumRows(), len(injected))

	cleaner := katara.NewCleaner(kb.Store, katara.NewCrowd(10, 0.95, seed), katara.Options{
		ValidationOracle: workload.SpecOracle{Spec: spec, KB: kb},
		FactOracle:       workload.WorldOracle{W: w, KB: kb},
		RepairK:          3,
	})
	report, err := cleaner.Clean(dirty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validated pattern: %s\n", report.Pattern.Render(kb.Store, dirty.Columns))
	fmt.Printf("crowd questions consumed: %d\n\n", report.QuestionsAsked)

	// Detection quality: which corrupted rows were flagged erroneous?
	corrupt := map[int]bool{}
	for _, c := range injected {
		corrupt[c.Row] = true
	}
	flagged := map[int]bool{}
	for _, a := range report.Annotations {
		if a.Label == katara.Erroneous {
			flagged[a.Row] = true
		}
	}
	tp := 0
	for row := range flagged {
		if corrupt[row] {
			tp++
		}
	}
	fmt.Printf("error detection: flagged %d rows, %d truly corrupted (of %d)\n",
		len(flagged), tp, len(corrupt))

	// Repair quality: does some top-3 repair restore the clean tuple?
	repaired, applied := 0, 0
	for row, reps := range report.Repairs {
		if len(reps) == 0 {
			continue
		}
		applied++
		fixed := dirty.Rows[row]
		out := append([]string(nil), fixed...)
		for _, ch := range reps[0].Changes {
			out[ch.Col] = ch.To
		}
		ok := true
		for col := range out {
			if out[col] != clean.Rows[row][col] {
				ok = false
			}
		}
		if ok {
			repaired++
		}
	}
	fmt.Printf("repairs: %d rows got suggestions, top-1 fully restored %d of them\n",
		applied, repaired)

	// Show a few concrete fixes.
	fmt.Println("\nsample repairs:")
	shown := 0
	for row, reps := range report.Repairs {
		if shown >= 3 || len(reps) == 0 {
			continue
		}
		fmt.Printf("  %v\n    -> %s\n", dirty.Rows[row], reps[0])
		shown++
	}
}
