// Paths: the paper's §9 future-work extension, implemented. When a KB has
// no direct relationship between two columns, KATARA probes for multi-hop
// property chains through intermediate resources — "a person column A1 is
// related to a country column A2 via A1 wasBornIn city, city isLocatedIn
// A2" — and uses the chain for annotation and error detection.
//
//	go run ./examples/paths
package main

import (
	"fmt"
	"log"

	"katara"
	"katara/internal/rdf"
)

func main() {
	kb := buildKB()
	tbl := katara.NewTable("players", "A", "B")
	tbl.Append("Pirlo", "Italy")
	tbl.Append("Xavi", "Spain")
	tbl.Append("Zidane", "France")
	tbl.Append("Müller", "Spain") // error: Müller's chain reaches Germany

	fmt.Println("KB has NO direct person→country property; only")
	fmt.Println("  person -wasBornIn-> city and city -isLocatedIn-> country facts.")
	fmt.Println()

	// Without the extension: types only, errors undetectable.
	plain, err := katara.NewCleaner(kb, katara.TrustingCrowd(), katara.Options{}).Clean(tbl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pattern without path discovery:")
	fmt.Println("  " + plain.Pattern.Render(kb, tbl.Columns))

	// With it: the chain is discovered, attached and enforced per tuple.
	cleaner := katara.NewCleaner(kb, katara.TrustingCrowd(), katara.Options{
		DiscoverPaths: true,
		FactOracle:    worldFacts{},
	})
	report, err := cleaner.Clean(tbl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npattern with path discovery (§9):")
	fmt.Println("  " + report.Pattern.Render(kb, tbl.Columns))
	fmt.Println("\nannotations:")
	for _, a := range report.Annotations {
		fmt.Printf("  %v -> %s\n", tbl.Rows[a.Row], a.Label)
	}
}

// worldFacts knows where each player was really born.
type worldFacts struct{}

func (worldFacts) TypeHolds(string, rdf.ID) bool        { return true }
func (worldFacts) RelHolds(string, rdf.ID, string) bool { return true }
func (worldFacts) PathHolds(subj string, props []rdf.ID, obj string) bool {
	truth := map[string]string{
		"Pirlo": "Italy", "Xavi": "Spain", "Zidane": "France", "Müller": "Germany",
	}
	return truth[subj] == obj
}

func buildKB() *katara.KB {
	kb := katara.NewKB()
	add := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)) }
	lit := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.Lit(o)) }
	type ent struct{ iri, typ, label string }
	for _, e := range []ent{
		{"y:Pirlo", "person", "Pirlo"},
		{"y:Xavi", "person", "Xavi"},
		{"y:Zidane", "person", "Zidane"},
		{"y:Muller", "person", "Müller"},
		{"y:Flero", "city", "Flero"},
		{"y:Terrassa", "city", "Terrassa"},
		{"y:Marseille", "city", "Marseille"},
		{"y:Weilheim", "city", "Weilheim"},
		{"y:Italy", "country", "Italy"},
		{"y:Spain", "country", "Spain"},
		{"y:France", "country", "France"},
		{"y:Germany", "country", "Germany"},
	} {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	for _, c := range []string{"person", "city", "country"} {
		lit(c, rdf.IRILabel, c)
	}
	for _, p := range []string{"wasBornIn", "isLocatedIn"} {
		lit(p, rdf.IRILabel, p)
	}
	add("y:Pirlo", "wasBornIn", "y:Flero")
	add("y:Xavi", "wasBornIn", "y:Terrassa")
	add("y:Zidane", "wasBornIn", "y:Marseille")
	add("y:Muller", "wasBornIn", "y:Weilheim")
	add("y:Flero", "isLocatedIn", "y:Italy")
	add("y:Terrassa", "isLocatedIn", "y:Spain")
	add("y:Marseille", "isLocatedIn", "y:France")
	add("y:Weilheim", "isLocatedIn", "y:Germany")
	return kb
}
