// Quickstart: the paper's running example (Figure 1 / Figure 2) end to end.
//
// We build the Yago fragment about soccer players, countries and capitals,
// load the three-tuple table of Fig. 1 — including Pirlo's erroneous
// (Italy, Madrid) pair — and run the full KATARA pipeline: pattern
// discovery, annotation against KB + crowd, KB enrichment, and top-k
// repairs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"katara"
	"katara/internal/rdf"
)

// worldTruth plays the crowd's knowledge of the real world: S. Africa's
// capital is Pretoria (missing from the KB), Italy's is Rome (so the tuple
// claiming Madrid is wrong).
type worldTruth struct{ kb *katara.KB }

func (o worldTruth) TypeHolds(value string, typ rdf.ID) bool { return true }
func (o worldTruth) RelHolds(subj string, prop rdf.ID, obj string) bool {
	if o.kb.LabelOf(prop) != "hasCapital" {
		return true
	}
	capitals := map[string]string{"Italy": "Rome", "Spain": "Madrid", "S. Africa": "Pretoria"}
	return capitals[subj] == obj
}

func main() {
	kb := buildKB()
	tbl := katara.NewTable("soccer", "A", "B", "C", "D", "E", "F", "G")
	tbl.Append("Rossi", "Italy", "Rome", "Verona", "Italian", "Proto", "1.78")
	tbl.Append("Klate", "S. Africa", "Pretoria", "Pirates", "Afrikaans", "P. Eliz.", "1.69")
	tbl.Append("Pirlo", "Italy", "Madrid", "Juve", "Italian", "Flero", "1.77")

	cleaner := katara.NewCleaner(kb, katara.TrustingCrowd(), katara.Options{
		FactOracle: worldTruth{kb},
	})
	report, err := cleaner.Clean(tbl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Discovered and validated table pattern (Fig. 2a):")
	fmt.Println("  " + report.Pattern.Render(kb, tbl.Columns))
	fmt.Println()

	fmt.Println("Tuple annotations (Fig. 2b-d):")
	for _, a := range report.Annotations {
		fmt.Printf("  t%d %v -> %s\n", a.Row+1, tbl.Rows[a.Row][:3], a.Label)
	}
	fmt.Println()

	fmt.Println("New facts confirmed by the crowd (KB enrichment):")
	for _, f := range report.NewFacts {
		if f.IsType {
			fmt.Printf("  %q is a %s\n", f.Subject, kb.LabelOf(f.Type))
		} else {
			fmt.Printf("  %q %s %q\n", f.Subject, kb.LabelOf(f.Prop), f.Object)
		}
	}
	fmt.Println()

	fmt.Println("Top-k possible repairs for erroneous tuples (Example 13):")
	for row, reps := range report.Repairs {
		fmt.Printf("  t%d %v\n", row+1, tbl.Rows[row][:3])
		for i, r := range reps {
			fmt.Printf("    repair %d: %s\n", i+1, r)
		}
	}
}

// buildKB assembles the Fig. 2 KB fragment: types, labels, nationality and
// hasCapital facts — with S. Africa's capital deliberately missing.
func buildKB() *katara.KB {
	kb := katara.NewKB()
	add := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)) }
	lit := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.Lit(o)) }

	type ent struct{ iri, typ, label string }
	for _, e := range []ent{
		{"y:Rossi", "y:person", "Rossi"},
		{"y:Klate", "y:person", "Klate"},
		{"y:Pirlo", "y:person", "Pirlo"},
		{"y:Italy", "y:country", "Italy"},
		{"y:SAfrica", "y:country", "S. Africa"},
		{"y:Spain", "y:country", "Spain"},
		{"y:Rome", "y:capital", "Rome"},
		{"y:Pretoria", "y:capital", "Pretoria"},
		{"y:Madrid", "y:capital", "Madrid"},
		{"y:Verona", "y:club", "Verona"},
		{"y:Pirates", "y:club", "Pirates"},
		{"y:Juve", "y:club", "Juve"},
		{"y:Italian", "y:language", "Italian"},
		{"y:Afrikaans", "y:language", "Afrikaans"},
		{"y:Proto", "y:city", "Proto"},
		{"y:PElizabeth", "y:city", "P. Eliz."},
		{"y:Flero", "y:city", "Flero"},
	} {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	for _, c := range []string{"y:person", "y:country", "y:capital", "y:club", "y:language", "y:city"} {
		lit(c, rdf.IRILabel, c[2:])
	}
	for _, p := range []string{"y:nationality", "y:hasCapital", "y:playsFor", "y:speaks", "y:bornIn", "y:height"} {
		lit(p, rdf.IRILabel, p[2:])
	}

	facts := [][3]string{
		{"y:Italy", "y:hasCapital", "y:Rome"},
		{"y:Spain", "y:hasCapital", "y:Madrid"},
		// S. Africa -> Pretoria is intentionally absent (KB incompleteness).
		{"y:Rossi", "y:nationality", "y:Italy"},
		{"y:Klate", "y:nationality", "y:SAfrica"},
		{"y:Pirlo", "y:nationality", "y:Italy"},
		{"y:Rossi", "y:playsFor", "y:Verona"},
		{"y:Klate", "y:playsFor", "y:Pirates"},
		{"y:Pirlo", "y:playsFor", "y:Juve"},
		{"y:Rossi", "y:speaks", "y:Italian"},
		{"y:Klate", "y:speaks", "y:Afrikaans"},
		{"y:Pirlo", "y:speaks", "y:Italian"},
		{"y:Rossi", "y:bornIn", "y:Proto"},
		{"y:Klate", "y:bornIn", "y:PElizabeth"},
		{"y:Pirlo", "y:bornIn", "y:Flero"},
	}
	for _, f := range facts {
		add(f[0], f[1], f[2])
	}
	lit("y:Rossi", "y:height", "1.78")
	lit("y:Klate", "y:height", "1.69")
	lit("y:Pirlo", "y:height", "1.77")
	return kb
}
