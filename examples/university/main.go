// University: the Table 6 comparison in miniature — KATARA vs the automatic
// repairers (EQ and SCARE) on the University relation, with 10% errors
// injected into the state column. The University table has near-unique keys
// (each university appears once), which starves the redundancy-based
// baselines while KATARA repairs from KB evidence.
//
//	go run ./examples/university
package main

import (
	"fmt"
	"log"
	"math/rand"

	"katara"
	"katara/internal/cleaning"
	"katara/internal/fd"
	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

func main() {
	const seed = 17
	w := world.New(seed, world.Config{})
	kb := workload.YagoLike(w, seed)
	spec := workload.UniversityTable(w, seed, 600)

	clean := spec.Table
	dirty := clean.Clone()
	rng := rand.New(rand.NewSource(seed))
	injected := table.InjectErrors(dirty, []int{2}, 0.10, rng) // state column
	fmt.Printf("University table: %d rows, %d injected errors (state column)\n\n",
		dirty.NumRows(), len(injected))

	// --- KATARA ---
	cleaner := katara.NewCleaner(kb.Store, katara.NewCrowd(10, 0.97, seed), katara.Options{
		ValidationOracle: workload.SpecOracle{Spec: spec, KB: kb},
		FactOracle:       workload.WorldOracle{W: w, KB: kb},
		RepairK:          3,
	})
	report, err := cleaner.Clean(dirty.Clone())
	if err != nil {
		log.Fatal(err)
	}
	kCorrect, kChanges := 0, 0
	for row, reps := range report.Repairs {
		if len(reps) == 0 {
			continue
		}
		hit := false
		for _, rep := range reps {
			ok := true
			vals := append([]string(nil), dirty.Rows[row]...)
			for _, ch := range rep.Changes {
				vals[ch.Col] = ch.To
			}
			for c := range vals {
				if vals[c] != clean.Rows[row][c] {
					ok = false
				}
			}
			if ok {
				hit = true
			}
		}
		kChanges++
		if hit {
			kCorrect++
		}
	}
	fmt.Printf("KATARA (Yago):  pattern %s\n", report.Pattern.Render(kb.Store, dirty.Columns))
	fmt.Printf("                repaired tuples with truth in top-3: %d / %d proposals (errors: %d)\n\n",
		kCorrect, kChanges, len(injected))

	// --- EQ ---
	fds := []fd.FD{fd.New([]int{0}, []int{1, 2}), fd.New([]int{1}, []int{2})}
	eqTbl := dirty.Clone()
	eqChanges := cleaning.EQ(eqTbl, fds)
	eqCorrect := 0
	for _, ch := range eqChanges {
		if ch.To == clean.Rows[ch.Row][ch.Col] {
			eqCorrect++
		}
	}
	fmt.Printf("EQ:             %d changes, %d correct (FDs: %v, %v)\n",
		len(eqChanges), eqCorrect, fds[0], fds[1])

	// --- SCARE ---
	scTbl := dirty.Clone()
	scChanges := cleaning.SCARE(scTbl, []int{0, 1}, []int{2}, cleaning.SCAREOptions{})
	scCorrect := 0
	for _, ch := range scChanges {
		if ch.To == clean.Rows[ch.Row][ch.Col] {
			scCorrect++
		}
	}
	fmt.Printf("SCARE:          %d changes, %d correct\n\n", len(scChanges), scCorrect)

	fmt.Println("The automatic repairers need repeated evidence; with near-unique")
	fmt.Println("university keys they fix little, while KATARA aligns each tuple to")
	fmt.Println("the KB's instance graphs (§7.4).")
}
