// KB enrichment: the by-product of §6.1. Data validated by the crowd but
// missing from the KB becomes new facts, so cleaning a redundant table
// grows the KB and each crowd answer pays for all later occurrences of the
// same value — the effect behind RelationalTables' high KB share in Table 5
// and the paper's "45 missing US state capitals" anecdote.
//
//	go run ./examples/kbenrich
package main

import (
	"fmt"
	"log"

	"katara"
	"katara/internal/workload"
	"katara/internal/world"
)

func main() {
	const seed = 7
	w := world.New(seed, world.Config{})
	kb := workload.YagoLike(w, seed)
	spec := workload.PersonTable(w, seed, 800)

	before := kb.Store.NumTriples()
	fmt.Printf("Yago-like KB before cleaning: %d triples\n", before)

	crowd := katara.NewCrowd(10, 0.97, seed)
	cleaner := katara.NewCleaner(kb.Store, crowd, katara.Options{
		ValidationOracle: workload.SpecOracle{Spec: spec, KB: kb},
		FactOracle:       workload.WorldOracle{W: w, KB: kb},
	})
	report, err := cleaner.Clean(spec.Table)
	if err != nil {
		log.Fatal(err)
	}

	after := kb.Store.NumTriples()
	fmt.Printf("KB after cleaning:            %d triples (+%d)\n", after, after-before)
	fmt.Printf("crowd-confirmed new facts:    %d\n", len(report.NewFacts))
	fmt.Printf("crowd questions consumed:     %d\n\n", report.QuestionsAsked)

	typeFacts, relFacts := 0, 0
	for _, f := range report.NewFacts {
		if f.IsType {
			typeFacts++
		} else {
			relFacts++
		}
	}
	fmt.Printf("breakdown: %d type facts, %d relationship facts\n", typeFacts, relFacts)
	fmt.Println("\nsample enrichment facts:")
	for i, f := range report.NewFacts {
		if i >= 8 {
			break
		}
		if f.IsType {
			fmt.Printf("  %q rdf:type %s\n", f.Subject, kb.Store.LabelOf(f.Type))
		} else {
			fmt.Printf("  %q %s %q\n", f.Subject, kb.Store.LabelOf(f.Prop), f.Object)
		}
	}

	// Enrichment pays forward: clean the same table again — the crowd is
	// consulted far less because the KB now covers what it confirmed.
	crowd.ResetStats()
	report2, err := cleaner.Clean(spec.Table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond pass over the same table: %d questions (was %d), %d new facts\n",
		report2.QuestionsAsked, report.QuestionsAsked, len(report2.NewFacts))
}
