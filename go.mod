module katara

go 1.22
