#!/usr/bin/env sh
# Chaos smoke test: prove katarad survives hard crashes without losing work.
#
#   1. generate a small benchmark environment (kbgen)
#   2. build katarad and kchaos
#   3. run kchaos: a submission burst plus APPENDS root+append chains racing
#      KILLS seeded SIGKILL/restart cycles against one journal directory —
#      kchaos itself asserts that no accepted job (root or appended) is
#      lost, every job reaches `done`, every report is byte-identical to a
#      crash-free oracle run (appends against an oracle append), and
#      /metrics scrapes stay lint-clean and monotone within each boot
#   4. require the journal directory to have been compacted down to a single
#      wal file by the final boot
#
# Any lost job, diverging report, dirty exposition, or unclean final
# shutdown fails the script. CI runs this as the chaos-smoke job; it needs
# only the go toolchain.

set -eu

ADDR="127.0.0.1:18571"
JOBS="${JOBS:-40}"
KILLS="${KILLS:-3}"
APPENDS="${APPENDS:-4}"
SEED="${SEED:-1}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "chaos-smoke: generating small environment in $WORK"
go run ./cmd/kbgen -size small -out "$WORK"

echo "chaos-smoke: building binaries"
go build -o "$WORK/katarad" ./cmd/katarad
go build -o "$WORK/kchaos" ./cmd/kchaos

echo "chaos-smoke: kchaos run ($JOBS jobs, $APPENDS append chains, $KILLS kills, seed $SEED)"
"$WORK/kchaos" \
    -katarad "$WORK/katarad" \
    -kb "$WORK/yago.nt" \
    -in "$WORK/RelationalTables/Soccer.dirty.csv" \
    -addr "$ADDR" \
    -journal-dir "$WORK/journal" \
    -jobs "$JOBS" -kills "$KILLS" -appends "$APPENDS" -seed "$SEED"

# The final boot checkpointed and deleted its predecessors' files: the
# journal must not accumulate one file per boot.
WALS=$(ls "$WORK/journal"/wal-*.log 2>/dev/null | wc -l)
if [ "$WALS" -ne 1 ]; then
    echo "chaos-smoke: FAIL: $WALS wal files after run, want 1 (compaction broken)" >&2
    ls -l "$WORK/journal" >&2 || true
    exit 1
fi
echo "chaos-smoke: journal compacted to a single wal file"

echo "chaos-smoke: PASS"
