#!/usr/bin/env bash
# Compare total test coverage against the recorded floor. Usage:
#
#   scripts/cover_check.sh [coverage.out] [scripts/cover_floor.txt]
#
# The floor file holds a single number (percent). Raise it when coverage
# durably improves; the gate only stops regressions.
set -euo pipefail

profile=${1:-coverage.out}
floor_file=${2:-scripts/cover_floor.txt}

floor=$(tr -d '[:space:]' < "$floor_file")
total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')

if [ -z "$total" ]; then
    echo "cover_check: no total line in $profile" >&2
    exit 2
fi

echo "total coverage ${total}% (floor ${floor}%)"
if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t + 0 < f + 0) }'; then
    echo "cover_check: total coverage ${total}% is below the ${floor}% floor" >&2
    exit 1
fi
