#!/usr/bin/env sh
# Append smoke test: drive the incremental row-append API end to end against
# a live katarad and verify the service contract around it.
#
#   1. generate a small benchmark environment (kbgen)
#   2. build katarad and promlint
#   3. boot katarad on a journal directory, submit a root job, await `done`
#   4. POST /jobs/{id}/append — expect 202, await the appended job's `done`,
#      require its cumulative report to differ from the root's (it covers
#      more rows)
#   5. probe the admission contract: a second append on the same root is 409
#      (parent already extended), an append on an unknown job is 404, a
#      wrong-arity delta is 400
#   6. /metrics must stay promlint-clean and report
#      katarad_jobs_appended_total 1
#   7. SIGTERM, restart on the same journal, and require the appended job's
#      result document to be byte-identical after replay — the append record
#      must survive the crash boundary
#
# Any wrong status code, diverging replay, or dirty exposition fails the
# script. CI runs this as the append-smoke job; it needs only the go
# toolchain and curl.

set -eu

ADDR="127.0.0.1:18591"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
KATARAD_PID=""
trap '[ -n "$KATARAD_PID" ] && kill "$KATARAD_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "append-smoke: generating small environment in $WORK"
go run ./cmd/kbgen -size small -out "$WORK"

echo "append-smoke: building binaries"
go build -o "$WORK/katarad" ./cmd/katarad
go build -o "$WORK/promlint" ./cmd/promlint

# Payload builder: stdlib-only helper emitting the submit document, a 5-row
# append delta, and a deliberately wrong-arity delta from the same CSV.
cat >"$WORK/mkpayload.go" <<'EOF'
package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
)

func main() {
	f, err := os.Open(os.Args[1])
	if err != nil {
		panic(err)
	}
	recs, err := csv.NewReader(f).ReadAll()
	f.Close()
	if err != nil || len(recs) < 7 {
		panic("short csv")
	}
	write := func(name string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(name, b, 0o644); err != nil {
			panic(err)
		}
	}
	type tableDoc struct {
		Name    string     `json:"name"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	write(os.Args[2], map[string]any{
		"table":  tableDoc{Name: "smoke", Columns: recs[0], Rows: recs[1:]},
		"params": map[string]any{"shards": 2},
	})
	write(os.Args[3], map[string]any{"rows": recs[1:6]})
	bad := make([]string, len(recs[1])+1)
	copy(bad, recs[1])
	write(os.Args[4], map[string]any{"rows": [][]string{bad}})
}
EOF
go run "$WORK/mkpayload.go" "$WORK/RelationalTables/Soccer.dirty.csv" \
    "$WORK/submit.json" "$WORK/delta.json" "$WORK/delta-bad.json"

echo "append-smoke: starting katarad on $ADDR"
"$WORK/katarad" \
    -kb "$WORK/yago.nt" \
    -listen "$ADDR" \
    -journal-dir "$WORK/journal" >"$WORK/daemon.log" 2>&1 &
KATARAD_PID=$!

wait_healthy() {
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 150 ]; then
            echo "append-smoke: FAIL: /healthz never came up" >&2
            cat "$WORK/daemon.log" >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}
wait_healthy

# expect_code METHOD URL BODY_FILE WANT OUT — request, assert status code.
expect_code() {
    code=$(curl -s -o "$5" -w '%{http_code}' -X "$1" \
        -H 'Content-Type: application/json' \
        ${3:+--data-binary "@$3"} "$2")
    if [ "$code" != "$4" ]; then
        echo "append-smoke: FAIL: $1 $2 returned $code, want $4" >&2
        cat "$5" >&2 || true
        exit 1
    fi
}

# await_done ID OUT — poll the result endpoint until the job is done.
await_done() {
    i=0
    while :; do
        code=$(curl -s -o "$2" -w '%{http_code}' "$BASE/jobs/$1/result")
        if [ "$code" = "200" ]; then
            grep -q '"state": *"done"' "$2" && return 0
            echo "append-smoke: FAIL: job $1 terminal but not done" >&2
            cat "$2" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -ge 600 ]; then
            echo "append-smoke: FAIL: job $1 never finished (last code $code)" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "append-smoke: submitting root job"
expect_code POST "$BASE/jobs" "$WORK/submit.json" 202 "$WORK/root-accept.json"
ROOT="$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$WORK/root-accept.json")"
[ -n "$ROOT" ] || { echo "append-smoke: FAIL: no root id" >&2; exit 1; }
await_done "$ROOT" "$WORK/root-result.json"
echo "append-smoke: root $ROOT done"

echo "append-smoke: appending 5 rows"
expect_code POST "$BASE/jobs/$ROOT/append" "$WORK/delta.json" 202 "$WORK/append-accept.json"
CHILD="$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$WORK/append-accept.json")"
[ -n "$CHILD" ] || { echo "append-smoke: FAIL: no appended job id" >&2; exit 1; }
await_done "$CHILD" "$WORK/append-result.json"
if cmp -s "$WORK/root-result.json" "$WORK/append-result.json"; then
    echo "append-smoke: FAIL: appended result identical to root (delta ignored)" >&2
    exit 1
fi
echo "append-smoke: appended job $CHILD done, cumulative report grew"

echo "append-smoke: probing admission conflicts"
expect_code POST "$BASE/jobs/$ROOT/append" "$WORK/delta.json" 409 "$WORK/conflict.json"
expect_code POST "$BASE/jobs/no-such-job/append" "$WORK/delta.json" 404 "$WORK/notfound.json"
expect_code POST "$BASE/jobs/$CHILD/append" "$WORK/delta-bad.json" 400 "$WORK/badreq.json"
echo "append-smoke: 409/404/400 contract ok"

curl -fsS "$BASE/metrics" >"$WORK/metrics.txt"
"$WORK/promlint" "$WORK/metrics.txt"
grep -q '^katarad_jobs_appended_total 1$' "$WORK/metrics.txt" || {
    echo "append-smoke: FAIL: katarad_jobs_appended_total != 1" >&2
    grep '^katarad_' "$WORK/metrics.txt" >&2 || true
    exit 1
}
echo "append-smoke: /metrics ok"

echo "append-smoke: restarting on the same journal"
kill -TERM "$KATARAD_PID"
wait "$KATARAD_PID" 2>/dev/null || {
    echo "append-smoke: FAIL: katarad exited non-zero" >&2
    cat "$WORK/daemon.log" >&2 || true
    exit 1
}
"$WORK/katarad" \
    -kb "$WORK/yago.nt" \
    -listen "$ADDR" \
    -journal-dir "$WORK/journal" >"$WORK/daemon2.log" 2>&1 &
KATARAD_PID=$!
wait_healthy
await_done "$CHILD" "$WORK/append-replayed.json"
if ! cmp -s "$WORK/append-result.json" "$WORK/append-replayed.json"; then
    echo "append-smoke: FAIL: appended result changed across restart" >&2
    exit 1
fi
echo "append-smoke: appended result byte-identical after replay"

kill -TERM "$KATARAD_PID"
wait "$KATARAD_PID" 2>/dev/null || {
    echo "append-smoke: FAIL: final shutdown exited non-zero" >&2
    cat "$WORK/daemon2.log" >&2 || true
    exit 1
}
KATARAD_PID=""

echo "append-smoke: PASS"
