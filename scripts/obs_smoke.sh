#!/usr/bin/env sh
# Observability smoke test: boot a real cleaning run with the serving layer
# enabled, then verify the endpoints a deployment would scrape.
#
#   1. generate a small benchmark environment (kbgen)
#   2. run cmd/katara with -listen and -linger so the server outlives Clean
#   3. poll /healthz until the listener is up (fail after a timeout)
#   4. GET /metrics and pipe it through cmd/promlint's strict parser
#   5. GET /progress and check it is JSON reporting a finished run
#   6. lint the -provenance journal with cmd/provlint and check the
#      -explain output printed an evidence chain
#
# Any non-200 status, unparseable exposition, bad provenance journal, or
# dead server fails the script. CI runs this as the obs-smoke job; it needs
# only the go toolchain.

set -eu

ADDR="127.0.0.1:18321"
WORK="$(mktemp -d)"
trap 'kill "$KATARA_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "obs-smoke: generating small environment in $WORK"
go run ./cmd/kbgen -size small -out "$WORK"

echo "obs-smoke: building binaries"
go build -o "$WORK/katara" ./cmd/katara
go build -o "$WORK/promlint" ./cmd/promlint
go build -o "$WORK/provlint" ./cmd/provlint

echo "obs-smoke: starting katara with -listen $ADDR"
"$WORK/katara" \
    -kb "$WORK/yago.nt" \
    -in "$WORK/RelationalTables/Soccer.dirty.csv" \
    -provenance "$WORK/lineage.jsonl" -explain 0,1 \
    -listen "$ADDR" -linger 30s >"$WORK/run.log" 2>&1 &
KATARA_PID=$!

# Poll /healthz until the listener answers (the run itself takes under a
# second; 15s is generous for a cold CI runner).
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 150 ]; then
        echo "obs-smoke: FAIL: /healthz never came up" >&2
        cat "$WORK/run.log" >&2 || true
        exit 1
    fi
    if ! kill -0 "$KATARA_PID" 2>/dev/null; then
        echo "obs-smoke: FAIL: katara exited before serving" >&2
        cat "$WORK/run.log" >&2 || true
        exit 1
    fi
    sleep 0.1
done
echo "obs-smoke: /healthz ok"

# /metrics must return 200 with a parseable Prometheus exposition.
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics.txt"
"$WORK/promlint" "$WORK/metrics.txt"
grep -q '^katara_crowd_questions_total ' "$WORK/metrics.txt" || {
    echo "obs-smoke: FAIL: /metrics missing katara_crowd_questions_total" >&2
    exit 1
}
echo "obs-smoke: /metrics ok ($(wc -l <"$WORK/metrics.txt") lines)"

# /progress must be JSON; once Clean returns, it reports done=true. Give the
# run a few seconds to finish before checking.
i=0
until curl -fsS "http://$ADDR/progress" | grep -q '"done": true'; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "obs-smoke: FAIL: /progress never reported done" >&2
        curl -fsS "http://$ADDR/progress" >&2 || true
        exit 1
    fi
    sleep 0.1
done
echo "obs-smoke: /progress ok"

# pprof must answer too.
curl -fsS "http://$ADDR/debug/pprof/cmdline" >/dev/null
echo "obs-smoke: /debug/pprof ok"

# The provenance journal is written right after the run completes (before
# the linger window), so it must exist by now — and lint clean.
i=0
until [ -s "$WORK/lineage.jsonl" ]; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: FAIL: provenance journal never appeared" >&2
        cat "$WORK/run.log" >&2 || true
        exit 1
    fi
    sleep 0.1
done
"$WORK/provlint" "$WORK/lineage.jsonl"
echo "obs-smoke: provenance journal ok ($(wc -l <"$WORK/lineage.jsonl") records)"

# -explain printed the evidence chain for cell (0, 1) on stdout.
grep -q 'cell (row 0, col 1)' "$WORK/run.log" || {
    echo "obs-smoke: FAIL: -explain output missing from run.log" >&2
    cat "$WORK/run.log" >&2 || true
    exit 1
}
echo "obs-smoke: -explain ok"

echo "obs-smoke: PASS"
