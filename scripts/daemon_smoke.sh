#!/usr/bin/env sh
# Daemon smoke test: boot katarad against a generated KB, hammer it with a
# kload burst, and verify the service invariants end to end.
#
#   1. generate a small benchmark environment (kbgen)
#   2. build katarad, kload and promlint
#   3. boot katarad, poll /healthz until the listener answers
#   4. run a kload burst (120 jobs, 100 concurrent) — kload itself asserts
#      every job completes, report documents are byte-identical, and every
#      /metrics scrape is lint-clean and monotone
#   5. re-check /metrics through promlint after the burst; require the
#      katarad_build_info gauge and a sane /version document
#   6. ask /jobs/{id}/explain for a finished job's cell evidence chain
#   7. tear down with SIGTERM and require a clean exit
#
# Any kload violation, unparseable exposition, dead daemon, or unclean
# shutdown fails the script. CI runs this as the daemon-smoke job; it needs
# only the go toolchain.

set -eu

ADDR="127.0.0.1:18443"
JOBS="${JOBS:-120}"
CONCURRENCY="${CONCURRENCY:-100}"
WORK="$(mktemp -d)"
KATARAD_PID=""
trap '[ -n "$KATARAD_PID" ] && kill "$KATARAD_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "daemon-smoke: generating small environment in $WORK"
go run ./cmd/kbgen -size small -out "$WORK"

echo "daemon-smoke: building binaries"
go build -o "$WORK/katarad" ./cmd/katarad
go build -o "$WORK/kload" ./cmd/kload
go build -o "$WORK/promlint" ./cmd/promlint

echo "daemon-smoke: starting katarad on $ADDR"
"$WORK/katarad" \
    -kb "$WORK/yago.nt" \
    -listen "$ADDR" \
    -max-concurrent 4 -max-queue 256 >"$WORK/daemon.log" 2>&1 &
KATARAD_PID=$!

i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 150 ]; then
        echo "daemon-smoke: FAIL: /healthz never came up" >&2
        cat "$WORK/daemon.log" >&2 || true
        exit 1
    fi
    if ! kill -0 "$KATARAD_PID" 2>/dev/null; then
        echo "daemon-smoke: FAIL: katarad exited before serving" >&2
        cat "$WORK/daemon.log" >&2 || true
        exit 1
    fi
    sleep 0.1
done
echo "daemon-smoke: /healthz ok"

echo "daemon-smoke: kload burst ($JOBS jobs, $CONCURRENCY concurrent)"
"$WORK/kload" \
    -addr "$ADDR" \
    -in "$WORK/RelationalTables/Soccer.dirty.csv" \
    -jobs "$JOBS" -concurrency "$CONCURRENCY" -shards 4

# Post-burst exposition must still be promlint-clean and carry both the
# pipeline and the daemon job-accounting families.
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics.txt"
"$WORK/promlint" "$WORK/metrics.txt"
grep -q '^katara_tuples_annotated_total ' "$WORK/metrics.txt" || {
    echo "daemon-smoke: FAIL: /metrics missing katara_tuples_annotated_total" >&2
    exit 1
}
grep -q "^katarad_jobs_completed_total $JOBS\$" "$WORK/metrics.txt" || {
    echo "daemon-smoke: FAIL: katarad_jobs_completed_total != $JOBS" >&2
    grep '^katarad_' "$WORK/metrics.txt" >&2 || true
    exit 1
}
echo "daemon-smoke: /metrics ok ($(wc -l <"$WORK/metrics.txt") lines)"

# Build identity: the exposition carries katarad_build_info and /version
# answers a JSON document naming the Go toolchain that built the binary.
grep -q '^katarad_build_info{' "$WORK/metrics.txt" || {
    echo "daemon-smoke: FAIL: /metrics missing katarad_build_info" >&2
    exit 1
}
curl -fsS "http://$ADDR/version" >"$WORK/version.json"
grep -q '"go_version"' "$WORK/version.json" || {
    echo "daemon-smoke: FAIL: /version missing go_version" >&2
    cat "$WORK/version.json" >&2 || true
    exit 1
}
echo "daemon-smoke: /version ok ($(cat "$WORK/version.json"))"

# Decision provenance over HTTP: every daemon job records lineage, so any
# of the finished burst jobs must answer /explain with an evidence chain.
JOB_ID="$(curl -fsS "http://$ADDR/jobs" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)"
[ -n "$JOB_ID" ] || {
    echo "daemon-smoke: FAIL: /jobs listed no job to explain" >&2
    exit 1
}
curl -fsS "http://$ADDR/jobs/$JOB_ID/explain?row=0&col=1" >"$WORK/explain.json"
grep -q '"verdict"' "$WORK/explain.json" || {
    echo "daemon-smoke: FAIL: /jobs/$JOB_ID/explain returned no verdict" >&2
    cat "$WORK/explain.json" >&2 || true
    exit 1
}
echo "daemon-smoke: /explain ok (job $JOB_ID)"

echo "daemon-smoke: shutting down with SIGTERM"
kill -TERM "$KATARAD_PID"
i=0
while kill -0 "$KATARAD_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "daemon-smoke: FAIL: katarad did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$KATARAD_PID" 2>/dev/null || {
    echo "daemon-smoke: FAIL: katarad exited non-zero" >&2
    cat "$WORK/daemon.log" >&2 || true
    exit 1
}
KATARAD_PID=""
grep -q 'msg=bye' "$WORK/daemon.log" || {
    echo "daemon-smoke: FAIL: shutdown was not clean" >&2
    cat "$WORK/daemon.log" >&2 || true
    exit 1
}
echo "daemon-smoke: clean shutdown"

echo "daemon-smoke: PASS"
