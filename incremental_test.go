package katara

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"katara/internal/rdf"
)

// canonReport renders the semantically meaningful report surface — pattern,
// per-row labels, enrichment facts, repair rankings — resolving KB IDs
// through the producing cleaner's KB so reports from different stores
// compare by meaning, not by interning order.
func canonReport(rep *Report, kb *KB) string {
	var b strings.Builder
	if rep.Pattern != nil {
		fmt.Fprintf(&b, "pattern %s score %.9f\n", rep.Pattern.Key(), rep.Pattern.Score)
	}
	for _, ta := range rep.Annotations {
		fmt.Fprintf(&b, "row %d %v", ta.Row, ta.Label)
		for _, f := range ta.NewFacts {
			fmt.Fprintf(&b, " fact:%s", canonFact(f, kb))
		}
		b.WriteString("\n")
	}
	for _, f := range rep.NewFacts {
		fmt.Fprintf(&b, "newfact %s\n", canonFact(f, kb))
	}
	rows := make([]int, 0, len(rep.Repairs))
	for row := range rep.Repairs {
		rows = append(rows, row)
	}
	sort.Ints(rows)
	for _, row := range rows {
		fmt.Fprintf(&b, "repairs %d:", row)
		for _, r := range rep.Repairs[row] {
			fmt.Fprintf(&b, " graph=%d cost=%.9f", r.Graph.ID, r.Cost)
			for _, ch := range r.Changes {
				fmt.Fprintf(&b, " %d:%q->%q", ch.Col, ch.From, ch.To)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func canonFact(f Fact, kb *KB) string {
	if f.IsType {
		return fmt.Sprintf("%s:type:%s", f.Subject, kb.LabelOf(f.Type))
	}
	if len(f.Path) > 0 {
		parts := make([]string, len(f.Path))
		for i, p := range f.Path {
			parts[i] = kb.LabelOf(p)
		}
		return fmt.Sprintf("%s:path:%s:%s", f.Subject, strings.Join(parts, "/"), f.Object)
	}
	return fmt.Sprintf("%s:%s:%s", f.Subject, kb.LabelOf(f.Prop), f.Object)
}

func TestAppendRequiresIncremental(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{FactOracle: fig1Oracle{kb}})
	if _, err := c.Clean(tbl); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append([][]string{{"x", "y", "z"}}); err != ErrNotIncremental {
		t.Fatalf("Append without Incremental: err = %v, want ErrNotIncremental", err)
	}
	kb2, _ := figure1()
	c2 := NewCleaner(kb2, TrustingCrowd(), Options{Incremental: true})
	if _, err := c2.Append([][]string{{"x", "y", "z"}}); err != ErrNotIncremental {
		t.Fatalf("Append before Clean: err = %v, want ErrNotIncremental", err)
	}
}

func TestAppendMatchesBatch(t *testing.T) {
	for _, dedup := range []bool{true, false} {
		for _, split := range []int{1, 2} {
			name := fmt.Sprintf("dedup=%v/split=%d", dedup, split)
			t.Run(name, func(t *testing.T) {
				d := dedup
				kb, full := figure1()
				inc := NewCleaner(kb, TrustingCrowd(), Options{
					Incremental: true, Dedup: &d, FactOracle: fig1Oracle{kb},
				})
				base := NewTable(full.Name, full.Columns...)
				for _, r := range full.Rows[:split] {
					base.Append(r...)
				}
				if _, err := inc.Clean(base); err != nil {
					t.Fatal(err)
				}
				got, err := inc.Append(full.Rows[split:])
				if err != nil {
					t.Fatal(err)
				}

				kb2, full2 := figure1()
				batch := NewCleaner(kb2, TrustingCrowd(), Options{
					Incremental: true, Dedup: &d, FactOracle: fig1Oracle{kb2},
				})
				want, err := batch.Clean(full2)
				if err != nil {
					t.Fatal(err)
				}
				if g, w := canonReport(got, inc.KB()), canonReport(want, batch.KB()); g != w {
					t.Fatalf("incremental != batch\n--- incremental\n%s--- batch\n%s", g, w)
				}
			})
		}
	}
}

func TestAppendChainMatchesBatch(t *testing.T) {
	kb, full := figure1()
	inc := NewCleaner(kb, TrustingCrowd(), Options{Incremental: true, FactOracle: fig1Oracle{kb}})
	base := NewTable(full.Name, full.Columns...)
	base.Append(full.Rows[0]...)
	if _, err := inc.Clean(base); err != nil {
		t.Fatal(err)
	}
	var got *Report
	var err error
	for _, r := range full.Rows[1:] {
		if got, err = inc.Append([][]string{r}); err != nil {
			t.Fatal(err)
		}
	}

	kb2, full2 := figure1()
	batch := NewCleaner(kb2, TrustingCrowd(), Options{Incremental: true, FactOracle: fig1Oracle{kb2}})
	want, err := batch.Clean(full2)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := canonReport(got, inc.KB()), canonReport(want, batch.KB()); g != w {
		t.Fatalf("chained incremental != batch\n--- incremental\n%s--- batch\n%s", g, w)
	}
}

func TestAppendEmptyReturnsCurrentReport(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{Incremental: true, FactOracle: fig1Oracle{kb}})
	rep, err := c.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != rep {
		t.Fatal("empty Append should return the current report unchanged")
	}
}

func TestAppendRejectsWrongArity(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{Incremental: true, FactOracle: fig1Oracle{kb}})
	if _, err := c.Clean(tbl); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append([][]string{{"only-two", "cells"}}); err == nil {
		t.Fatal("want arity error")
	}
}

// applyKBDeltaOracle cleans the full table from scratch against the pristine
// KB with adds already merged — the semantics ApplyKBDelta must reproduce.
func applyKBDeltaOracle(t *testing.T, adds []KBAddition) (string, string) {
	t.Helper()
	kb, tbl := figure1()
	inc := NewCleaner(kb, TrustingCrowd(), Options{Incremental: true, FactOracle: fig1Oracle{kb}})
	if _, err := inc.Clean(tbl); err != nil {
		t.Fatal(err)
	}
	got, err := inc.ApplyKBDelta(adds)
	if err != nil {
		t.Fatal(err)
	}

	kb2, tbl2 := figure1()
	for _, a := range adds {
		obj := rdf.IRI(a.Object)
		if a.Literal {
			obj = rdf.Lit(a.Object)
		}
		kb2.AddFact(rdf.IRI(a.Subject), rdf.IRI(a.Predicate), obj)
	}
	batch := NewCleaner(kb2, TrustingCrowd(), Options{Incremental: true, FactOracle: fig1Oracle{kb2}})
	want, err := batch.Clean(tbl2)
	if err != nil {
		t.Fatal(err)
	}
	return canonReport(got, inc.KB()), canonReport(want, batch.KB())
}

func TestApplyKBDeltaMatchesRebuild(t *testing.T) {
	cases := map[string][]KBAddition{
		// Label on an existing resource, far from every cell value: the
		// targeted path — no re-clean, repairs re-ranked.
		"unrelated-label": {{Subject: "y:Madrid", Predicate: rdf.IRILabel, Object: "Zzzqx", Literal: true}},
		// Label aliasing a cell value in a crowd-decided row: full re-clean.
		"affects-crowd-row": {{Subject: "y:Rome", Predicate: rdf.IRILabel, Object: "Pretoria", Literal: true}},
		// Non-label triple: always the re-clean path.
		"non-label": {{Subject: "y:SAfrica", Predicate: "hasCapital", Object: "y:Pretoria"}},
		// New subject: must not take the targeted path.
		"new-subject": {{Subject: "y:France", Predicate: rdf.IRILabel, Object: "France", Literal: true}},
	}
	for name, adds := range cases {
		t.Run(name, func(t *testing.T) {
			got, want := applyKBDeltaOracle(t, adds)
			if got != want {
				t.Fatalf("ApplyKBDelta != rebuild-from-merged-KB\n--- incremental\n%s--- rebuild\n%s", got, want)
			}
		})
	}
}

func TestAppendAfterKBDelta(t *testing.T) {
	kb, full := figure1()
	inc := NewCleaner(kb, TrustingCrowd(), Options{Incremental: true, FactOracle: fig1Oracle{kb}})
	base := NewTable(full.Name, full.Columns...)
	for _, r := range full.Rows[:2] {
		base.Append(r...)
	}
	if _, err := inc.Clean(base); err != nil {
		t.Fatal(err)
	}
	adds := []KBAddition{{Subject: "y:Pirlo", Predicate: rdf.IRILabel, Object: "Andrea", Literal: true}}
	if _, err := inc.ApplyKBDelta(adds); err != nil {
		t.Fatal(err)
	}
	got, err := inc.Append(full.Rows[2:])
	if err != nil {
		t.Fatal(err)
	}

	kb2, full2 := figure1()
	kb2.AddFact(rdf.IRI("y:Pirlo"), rdf.IRI(rdf.IRILabel), rdf.Lit("Andrea"))
	batch := NewCleaner(kb2, TrustingCrowd(), Options{Incremental: true, FactOracle: fig1Oracle{kb2}})
	want, err := batch.Clean(full2)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := canonReport(got, inc.KB()), canonReport(want, batch.KB()); g != w {
		t.Fatalf("append-after-delta != batch\n--- incremental\n%s--- batch\n%s", g, w)
	}
}

func TestAppendRecordsDriftProvenance(t *testing.T) {
	kb, full := figure1()
	rec := NewProvenance()
	inc := NewCleaner(kb, TrustingCrowd(), Options{
		Incremental: true, FactOracle: fig1Oracle{kb}, Provenance: rec,
	})
	base := NewTable(full.Name, full.Columns...)
	for _, r := range full.Rows[:2] {
		base.Append(r...)
	}
	if _, err := inc.Clean(base); err != nil {
		t.Fatal(err)
	}
	// A non-label KB delta always re-cleans; the drift must be recorded and
	// survive the re-run's recorder reset.
	adds := []KBAddition{{Subject: "y:SAfrica", Predicate: "hasCapital", Object: "y:Pretoria"}}
	if _, err := inc.ApplyKBDelta(adds); err != nil {
		t.Fatal(err)
	}
	drifts := rec.Drifts()
	if len(drifts) != 1 || drifts[0].Reason != "kb-delta" {
		t.Fatalf("drifts = %+v, want one kb-delta event", drifts)
	}
	audit := rec.BuildAudit()
	if len(audit.Drifts) != 1 {
		t.Fatalf("audit.Drifts = %+v", audit.Drifts)
	}
}
