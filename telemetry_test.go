package katara

import (
	"math/rand"
	"reflect"
	"testing"

	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

// TestCleanTableSkipsIndexConstruction is the regression test for the
// empty-rows repair path: an error-free table must not pay for instance-graph
// enumeration, observable through the graphs-enumerated counter.
func TestCleanTableSkipsIndexConstruction(t *testing.T) {
	kb, _ := figure1()
	tbl := NewTable("soccer", "A", "B", "C")
	tbl.Append("Rossi", "Italy", "Rome")
	tbl.Append("Pirlo", "Italy", "Rome")
	tbl.Append("Klate", "S. Africa", "Pretoria")

	c := NewCleaner(kb, TrustingCrowd(), Options{FactOracle: fig1Oracle{kb}, Telemetry: true})
	report, err := c.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range report.Annotations {
		if a.Label == Erroneous {
			t.Fatalf("tuple %d unexpectedly erroneous", i)
		}
	}
	if report.Repairs == nil || len(report.Repairs) != 0 {
		t.Fatalf("Repairs = %v, want empty non-nil map", report.Repairs)
	}
	if report.Timings == nil {
		t.Fatal("Options.Telemetry set but Report.Timings is nil")
	}
	if got := report.Timings.Counter("graphs-enumerated"); got != 0 {
		t.Fatalf("error-free table enumerated %d instance graphs, want 0", got)
	}
	if got := report.Timings.Counter("tuples-annotated"); got != int64(tbl.NumRows()) {
		t.Fatalf("tuples-annotated = %d, want %d", got, tbl.NumRows())
	}
	if report.Timings.Counter("crowd-questions") == 0 {
		t.Fatal("crowd-questions counter stayed 0 despite crowd validation")
	}

	// Sanity check the counter itself: a table with an error must enumerate.
	kb2, dirty := figure1() // row 2 asserts Italy→Madrid, an error
	c2 := NewCleaner(kb2, TrustingCrowd(), Options{FactOracle: fig1Oracle{kb2}, Telemetry: true})
	report2, err := c2.Clean(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if got := report2.Timings.Counter("graphs-enumerated"); got == 0 {
		t.Fatal("dirty table enumerated no instance graphs")
	}
	if got := report2.Timings.Counter("repairs-generated"); got == 0 {
		t.Fatal("dirty table generated no repairs")
	}
	if len(report2.Timings.Stages) == 0 || report2.Timings.Total() <= 0 {
		t.Fatalf("stage timings missing: %+v", report2.Timings.Stages)
	}
}

// TestRepairOptionsReachTheEngine asserts the public repair knobs actually
// arrive at the repair engine: RepairMaxGraphs caps enumeration (visible in
// the counter) and RepairWeights reprice the suggested changes.
func TestRepairOptionsReachTheEngine(t *testing.T) {
	kb, dirty := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{
		FactOracle:      fig1Oracle{kb},
		Telemetry:       true,
		RepairMaxGraphs: 1,
	})
	report, err := c.Clean(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Timings.Counter("graphs-enumerated"); got != 1 {
		t.Fatalf("graphs-enumerated = %d with RepairMaxGraphs: 1", got)
	}

	kb2, dirty2 := figure1()
	c2 := NewCleaner(kb2, TrustingCrowd(), Options{
		FactOracle:    fig1Oracle{kb2},
		RepairWeights: map[int]float64{2: 5},
	})
	report2, err := c2.Clean(dirty2)
	if err != nil {
		t.Fatal(err)
	}
	reps := report2.Repairs[2] // t3's top repair fixes col 2 Madrid→Rome
	if len(reps) == 0 {
		t.Fatal("no repairs for the erroneous row")
	}
	if reps[0].Cost != 5 {
		t.Fatalf("weighted top repair cost = %g, want 5", reps[0].Cost)
	}
}

// TestTelemetryOffByDefault pins the zero-cost default: without
// Options.Telemetry the report carries no Timings.
func TestTelemetryOffByDefault(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{FactOracle: fig1Oracle{kb}})
	report, err := c.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if report.Timings != nil {
		t.Fatalf("Timings = %v without Options.Telemetry", report.Timings)
	}
}

// workloadRun executes one full Clean over the synthetic workload with the
// given worker count. Everything is rebuilt from the seed each call: Clean
// enriches the KB and advances the crowd's rng, so runs must not share state.
func workloadRun(t *testing.T, seed int64, workers int) *Report {
	t.Helper()
	w := world.New(seed, world.Config{
		Persons: 150, Players: 60, Clubs: 12, Universities: 40, Films: 20, Books: 20,
	})
	kb := workload.DBpediaLike(w, seed)
	spec := workload.PersonTable(w, seed, 150)
	dirty := spec.Table.Clone()
	rng := rand.New(rand.NewSource(seed))
	if injected := table.InjectErrors(dirty, []int{1, 2, 3}, 0.10, rng); len(injected) == 0 {
		t.Fatal("no errors injected")
	}
	cleaner := NewCleaner(kb.Store, NewCrowd(10, 0.97, seed), Options{
		ValidationOracle: workload.SpecOracle{Spec: spec, KB: kb},
		FactOracle:       workload.WorldOracle{W: w, KB: kb},
		Workers:          workers,
	})
	report, err := cleaner.Clean(dirty)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestCleanWorkersDeterminism asserts the tentpole's contract: Clean with
// Workers N returns a Report identical to the serial run — same pattern,
// same labels, same crowd questions, same repairs — for every worker count.
func TestCleanWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload run")
	}
	const seed = 7
	serial := workloadRun(t, seed, 1)
	for _, workers := range []int{2, 4, -1} {
		par := workloadRun(t, seed, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("Workers=%d: report differs from serial run", workers)
		}
	}
}
