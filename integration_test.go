package katara

import (
	"math/rand"
	"testing"

	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

// TestEndToEndWorkload drives the public API over the full synthetic
// workload: build a world and KB, corrupt a relational table, clean it, and
// assert quantitative quality floors on detection and repair — the
// integration-level counterpart of the per-module tests.
func TestEndToEndWorkload(t *testing.T) {
	const seed = 99
	w := world.New(seed, world.Config{
		Persons: 300, Players: 120, Clubs: 24, Universities: 80, Films: 40, Books: 40,
	})
	kb := workload.DBpediaLike(w, seed)
	spec := workload.PersonTable(w, seed, 400)

	clean := spec.Table
	dirty := clean.Clone()
	rng := rand.New(rand.NewSource(seed))
	injected := table.InjectErrors(dirty, []int{1, 2, 3}, 0.10, rng)
	if len(injected) < 20 {
		t.Fatalf("only %d errors injected", len(injected))
	}

	cleaner := NewCleaner(kb.Store, NewCrowd(10, 0.97, seed), Options{
		ValidationOracle: workload.SpecOracle{Spec: spec, KB: kb},
		FactOracle:       workload.WorldOracle{W: w, KB: kb},
		RepairK:          3,
	})
	report, err := cleaner.Clean(dirty)
	if err != nil {
		t.Fatal(err)
	}

	// The validated pattern covers all four columns and carries the three
	// ground-truth relationships.
	if got := len(report.Pattern.Columns()); got != 4 {
		t.Fatalf("pattern covers %d columns, want 4", got)
	}
	if got := len(report.Pattern.Edges); got < 3 {
		t.Fatalf("pattern has %d edges, want ≥ 3", got)
	}

	// Detection: most corrupted rows are flagged, few clean rows are.
	corrupted := map[int]bool{}
	for _, c := range injected {
		corrupted[c.Row] = true
	}
	tp, fp := 0, 0
	flagged := map[int]bool{}
	for _, a := range report.Annotations {
		if a.Label == Erroneous {
			flagged[a.Row] = true
			if corrupted[a.Row] {
				tp++
			} else {
				fp++
			}
		}
	}
	if float64(tp) < 0.8*float64(len(corrupted)) {
		t.Fatalf("detection recall too low: %d of %d corrupted rows flagged", tp, len(corrupted))
	}
	if fp > len(corrupted) {
		t.Fatalf("too many false flags: %d (vs %d real)", fp, len(corrupted))
	}

	// Repair: a solid share of flagged corrupted rows gets the truth in its
	// top-3 repairs (bounded by the KB's deliberate incompleteness).
	restored := 0
	for row, reps := range report.Repairs {
		if !corrupted[row] {
			continue
		}
		for _, rep := range reps {
			vals := append([]string(nil), dirty.Rows[row]...)
			for _, ch := range rep.Changes {
				vals[ch.Col] = ch.To
			}
			ok := true
			for c := range vals {
				if vals[c] != clean.Rows[row][c] {
					ok = false
				}
			}
			if ok {
				restored++
				break
			}
		}
	}
	if float64(restored) < 0.3*float64(tp) {
		t.Fatalf("repairs restored only %d of %d flagged corrupted rows", restored, tp)
	}

	// Enrichment fed facts back into the KB.
	if len(report.NewFacts) == 0 {
		t.Fatal("no KB enrichment on a partially covered table")
	}
	t.Logf("detection %d/%d (fp %d), restored %d, new facts %d, questions %d",
		tp, len(corrupted), fp, restored, len(report.NewFacts), report.QuestionsAsked)
}

// TestEndToEndCleanTableIsQuiet asserts the complementary property: a clean
// table through the same pipeline produces (almost) no erroneous labels.
func TestEndToEndCleanTableIsQuiet(t *testing.T) {
	const seed = 100
	w := world.New(seed, world.Config{
		Persons: 200, Players: 80, Clubs: 16, Universities: 40, Films: 20, Books: 20,
	})
	kb := workload.DBpediaLike(w, seed)
	spec := workload.PersonTable(w, seed, 250)
	cleaner := NewCleaner(kb.Store, NewCrowd(10, 0.97, seed), Options{
		ValidationOracle: workload.SpecOracle{Spec: spec, KB: kb},
		FactOracle:       workload.WorldOracle{W: w, KB: kb},
	})
	report, err := cleaner.Clean(spec.Table)
	if err != nil {
		t.Fatal(err)
	}
	nErr := 0
	for _, a := range report.Annotations {
		if a.Label == Erroneous {
			nErr++
		}
	}
	if float64(nErr) > 0.05*float64(spec.Table.NumRows()) {
		t.Fatalf("clean table: %d of %d rows flagged erroneous", nErr, spec.Table.NumRows())
	}
}
