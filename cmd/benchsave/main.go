// Command benchsave converts a `go test -json -bench` stream on stdin into a
// benchmark snapshot file — the BENCH_*.json trajectory points referenced in
// DESIGN.md. Typical use is via the Makefile:
//
//	make bench-save            # writes BENCH_3.json
//
// which runs
//
//	go test -run '^$' -bench=. -benchmem -benchtime=200ms -json ./... \
//	    | go run ./cmd/benchsave -out BENCH_3.json
//
// test2json splits test output into per-event fragments that can break a
// benchmark result line mid-number, so the tool re-joins output per package
// before extracting result lines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// event is the subset of test2json's event schema benchsave needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// Benchmark is one benchmark result line, parsed.
type Benchmark struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries custom units reported via testing.B.ReportMetric —
	// e.g. the latency percentiles ("p50-ns/op", "p99-ns/op") the telemetry
	// benchmarks emit — keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file format: run metadata plus every benchmark result.
type Snapshot struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Timestamp  string      `json:"timestamp"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches a complete benchmark result line. The name keeps any
// sub-benchmark path; a trailing -N GOMAXPROCS suffix is split off after.
var benchLine = regexp.MustCompile(
	`(?m)^(Benchmark\S+)[ \t]+(\d+)[ \t]+([0-9.]+) ns/op(?:[ \t]+([0-9.]+) B/op)?(?:[ \t]+([0-9.]+) allocs/op)?([^\n]*)`)

// metricPair matches one custom `value unit` pair reported through
// testing.B.ReportMetric in the tail of a benchmark result line.
var metricPair = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)[ \t]+(\S+/op)`)

func main() {
	out := flag.String("out", "", "snapshot file to write (default stdout)")
	flag.Parse()

	// Join each package's output fragments; benchmark lines may span events.
	perPkg := map[string]*strings.Builder{}
	var pkgs []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // tolerate non-JSON noise (e.g. build warnings)
		}
		if ev.Action != "output" || ev.Output == "" {
			continue
		}
		b := perPkg[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
			pkgs = append(pkgs, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsave: reading stdin:", err)
		os.Exit(1)
	}

	snap := Snapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		for _, m := range benchLine.FindAllStringSubmatch(perPkg[pkg].String(), -1) {
			b := Benchmark{Package: pkg, Name: m[1]}
			b.Name, b.Procs = splitProcs(m[1])
			b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
			if m[4] != "" {
				b.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			}
			if m[5] != "" {
				b.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
			}
			for _, p := range metricPair.FindAllStringSubmatch(m[6], -1) {
				v, err := strconv.ParseFloat(p[1], 64)
				if err != nil {
					continue
				}
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[p[2]] = v
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsave: no benchmark results found in input")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsave:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsave:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsave: wrote %d benchmark results to %s\n", len(snap.Benchmarks), *out)
}

// splitProcs splits the conventional -N GOMAXPROCS suffix off a benchmark
// name ("BenchmarkFoo-8" → "BenchmarkFoo", 8). Names may legitimately
// contain dashes, so only a trailing all-digits segment is treated as procs.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 0
	}
	return name[:i], n
}
