package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo", "BenchmarkFoo", 0},
		{"BenchmarkFoo/sub-case-16", "BenchmarkFoo/sub-case", 16},
		{"BenchmarkFoo-bar", "BenchmarkFoo-bar", 0}, // dash but no digits
		{"BenchmarkFoo-0", "BenchmarkFoo-0", 0},     // procs must be positive
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}

// TestMainParsesStream: feed a test2json stream — with a benchmark line
// split across two output events, a custom ReportMetric pair, and non-JSON
// noise — through main and check the written snapshot. main is invoked
// in-process exactly once (its flag definitions live on the global
// CommandLine).
func TestMainParsesStream(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Package":"katara","Output":"BenchmarkEndToEndClean-8   \t     100\t  12`,
		`{"Action":"output","Package":"katara","Output":"345678 ns/op\t 2048 B/op\t 99 allocs/op\n"}`,
		`{"Action":"output","Package":"katara/internal/telemetry","Output":"BenchmarkQuantile \t 5000\t 111.5 ns/op\t 3.5 p50-ns/op\n"}`,
		`{"Action":"run","Package":"katara"}`,
		`not json at all`,
		``,
	}, "\n")
	// The first fragment is deliberately truncated mid-number and never
	// closed — a torn event must be skipped, not crash the join.

	in, err := os.CreateTemp(t.TempDir(), "stdin-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.WriteString(stream); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Seek(0, 0); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(t.TempDir(), "snap.json")
	oldStdin, oldArgs := os.Stdin, os.Args
	defer func() { os.Stdin, os.Args = oldStdin, oldArgs }()
	os.Stdin = in
	os.Args = []string{"benchsave", "-out", out}
	main()

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if snap.GoVersion == "" || snap.GOOS == "" || snap.Timestamp == "" {
		t.Fatalf("metadata missing: %+v", snap)
	}
	if len(snap.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1 (the torn line must be dropped): %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	b := snap.Benchmarks[0]
	if b.Name != "BenchmarkQuantile" || b.Iterations != 5000 || b.NsPerOp != 111.5 {
		t.Fatalf("parsed benchmark wrong: %+v", b)
	}
	if b.Metrics["p50-ns/op"] != 3.5 {
		t.Fatalf("custom metric not captured: %+v", b.Metrics)
	}
}
