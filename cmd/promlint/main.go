// Command promlint validates Prometheus text-format exposition (version
// 0.0.4) read from stdin or a file, using the same strict parser the
// telemetry tests run against /metrics output. The CI observability smoke
// job pipes a live scrape through it:
//
//	curl -s http://127.0.0.1:8080/metrics | go run ./cmd/promlint
//
// Exit status 0 means the exposition parsed cleanly and its histogram
// invariants (cumulative buckets, +Inf == _count) hold; 1 means it did not,
// with the first violation on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"katara/internal/telemetry"
)

func main() {
	flag.Parse()
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: promlint [file]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}
	if err := telemetry.LintExposition(in); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Println("promlint: ok")
}
