package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"katara"
	"katara/internal/annotation"
	"katara/internal/rdf"
)

func newScanner(input string) *bufio.Scanner {
	return bufio.NewScanner(strings.NewReader(input))
}

func testKB() *katara.KB {
	kb := katara.NewKB()
	kb.AddFact(rdf.IRI("y:Italy"), rdf.IRI(rdf.IRIType), rdf.IRI("y:country"))
	kb.AddFact(rdf.IRI("y:Italy"), rdf.IRI(rdf.IRILabel), rdf.Lit("Italy"))
	kb.AddFact(rdf.IRI("y:hasCapital"), rdf.IRI(rdf.IRILabel), rdf.Lit("hasCapital"))
	return kb
}

func TestReadCSVDerivesName(t *testing.T) {
	tbl, err := readCSV(strings.NewReader("A,B\nItaly,Rome\n"), "/data/soccer.csv")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name != "soccer" || tbl.NumRows() != 1 {
		t.Fatalf("table = %s with %d rows", tbl.Name, tbl.NumRows())
	}
}

func TestWriteFacts(t *testing.T) {
	kb := testKB()
	dir := t.TempDir()
	path := filepath.Join(dir, "facts.nt")
	facts := []katara.Fact{
		{IsType: true, Subject: "Italy", Type: kb.Res("y:country")},
		{Subject: "Italy", Prop: kb.Res("y:hasCapital"), Object: "Rome"},
		{Subject: "Pirlo", Path: []rdf.ID{kb.Res("y:bornIn"), kb.Res("y:locatedIn")}, Object: "Italy"},
	}
	if err := writeFacts(kb, facts, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "<y:Italy> <rdf:type> <y:country>") {
		t.Fatalf("type fact missing: %s", out)
	}
	if !strings.Contains(out, "<y:hasCapital>") {
		t.Fatalf("rel fact missing: %s", out)
	}
	if !strings.Contains(out, "# path fact:") {
		t.Fatalf("path fact comment missing: %s", out)
	}
	// Fact lines (not comments) must re-parse as N-Triples.
	var ntOnly bytes.Buffer
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		ntOnly.WriteString(line + "\n")
	}
	s := rdf.New()
	if _, err := s.ParseNTriples(&ntOnly); err != nil {
		t.Fatalf("emitted facts are not valid N-Triples: %v", err)
	}
}

func TestResourceIRIMintsWhenMissing(t *testing.T) {
	kb := testKB()
	if got := resourceIRI(kb, "Italy"); got != "y:Italy" {
		t.Fatalf("existing resource = %q", got)
	}
	if got := resourceIRI(kb, "Atlantis City"); got != "enriched:Atlantis_City" {
		t.Fatalf("minted resource = %q", got)
	}
}

func TestPolicyOracles(t *testing.T) {
	var s annotation.FactOracle = skepticalFacts{}
	if s.TypeHolds("x", 0) || s.RelHolds("a", 0, "b") {
		t.Fatal("skeptical oracle must refute everything")
	}
	if po, ok := s.(annotation.PathOracle); !ok || po.PathHolds("a", nil, "b") {
		t.Fatal("skeptical path oracle broken")
	}
}

func TestInteractiveFactsParsesAnswers(t *testing.T) {
	kb := testKB()
	mk := func(input string) interactiveFacts {
		return interactiveFacts{kb: kb, in: newScanner(input)}
	}
	if !mk("y\n").TypeHolds("Italy", kb.Res("y:country")) {
		t.Fatal("'y' should mean yes")
	}
	if !mk("YES\n").RelHolds("Italy", kb.Res("y:hasCapital"), "Rome") {
		t.Fatal("'YES' should mean yes")
	}
	if mk("n\n").TypeHolds("Italy", kb.Res("y:country")) {
		t.Fatal("'n' should mean no")
	}
	if mk("").TypeHolds("Italy", kb.Res("y:country")) {
		t.Fatal("EOF should mean no")
	}
	// A non-yes answer is a no; only one line is consumed per question.
	if mk("maybe\ny\n").PathHolds("Pirlo", []rdf.ID{kb.Res("y:bornIn")}, "Italy") {
		t.Fatal("'maybe' should mean no")
	}
}
