package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"katara"
	"katara/internal/rdf"
	"katara/internal/table"
)

// readCSV loads a table, deriving its name from the file path.
func readCSV(r io.Reader, path string) (*katara.Table, error) {
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return table.ReadCSV(name, r)
}

// writeFacts serialises enrichment facts as N-Triples, minting IRIs in the
// "enriched:" namespace for values with no KB resource.
func writeFacts(kb *katara.KB, facts []katara.Fact, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, fact := range facts {
		subj := resourceIRI(kb, fact.Subject)
		if fact.IsType {
			if _, err := fmt.Fprintf(f, "<%s> <%s> <%s> .\n",
				subj, rdf.IRIType, kb.Term(fact.Type).Value); err != nil {
				return err
			}
			continue
		}
		if len(fact.Path) > 0 {
			// Multi-hop facts cannot be asserted without inventing the
			// intermediate resource; record them as comments for curators.
			labels := make([]string, len(fact.Path))
			for i, p := range fact.Path {
				labels[i] = kb.LabelOf(p)
			}
			if _, err := fmt.Fprintf(f, "# path fact: %q -%s-> %q\n",
				fact.Subject, strings.Join(labels, "/"), fact.Object); err != nil {
				return err
			}
			continue
		}
		obj := resourceIRI(kb, fact.Object)
		if _, err := fmt.Fprintf(f, "<%s> <%s> <%s> .\n",
			subj, kb.Term(fact.Prop).Value, obj); err != nil {
			return err
		}
	}
	return nil
}

func resourceIRI(kb *katara.KB, value string) string {
	if hits := kb.MatchLabel(value, 0.7); len(hits) > 0 {
		return kb.Term(hits[0].Resource).Value
	}
	return "enriched:" + strings.ReplaceAll(value, " ", "_")
}
