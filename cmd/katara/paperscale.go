package main

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"katara"
	"katara/internal/jobs"
	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

// runPaperScale is the -paper-scale mode: a self-contained reproduction of
// the paper's headline workload — the 316K-row Person table (§7 Table 1) —
// on one machine, without needing -kb or -in. It generates the synthetic
// world, a DBpedia-shaped KB and the full-size dirty table (10% injected
// errors in the pattern-covered columns, §7.4), runs the end-to-end
// pipeline, and prints an aggregate summary only: at this scale the per-row
// repair listing of the normal mode would be ~30K lines of noise.
func runPaperScale(params jobs.Params, dedup bool, stdout io.Writer) error {
	w := world.New(7, world.Config{
		Persons: 150, Players: 80, Clubs: 16, Universities: 40,
		Films: 40, Books: 40,
	})
	kb := workload.DBpediaLike(w, 7)
	fmt.Fprintf(stdout, "generated world + DBpedia-shaped KB (%d triples)\n", kb.Store.NumTriples())

	spec := workload.PersonTable(w, 308, workload.PaperPersonRows)
	tbl := spec.Table
	injected := table.InjectErrors(tbl, []int{1, 2, 3}, 0.10, rand.New(rand.NewSource(309)))
	in := tbl.Interned()
	fmt.Fprintf(stdout, "table %s: %d rows x %d columns, %d distinct signatures, %d injected errors\n",
		tbl.Name, tbl.NumRows(), tbl.NumCols(), in.NumGroups(), len(injected))

	opts := params.Options()
	opts.FactOracle = workload.WorldOracle{W: w, KB: kb}
	opts.ValidationOracle = workload.SpecOracle{Spec: spec, KB: kb}
	if opts.MaxRows == 0 {
		opts.MaxRows = 500 // discovery sampling cap; patterns saturate long before 316K rows
	}

	start := time.Now()
	cleaner := katara.NewCleaner(kb.Store, katara.TrustingCrowd(), opts)
	report, err := cleaner.Clean(tbl)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	nKB, nCrowd, nErr, nUnknown := 0, 0, 0, 0
	for _, a := range report.Annotations {
		switch a.Label {
		case katara.ValidatedByKB:
			nKB++
		case katara.ValidatedByCrowd:
			nCrowd++
		case katara.Unknown:
			nUnknown++
		default:
			nErr++
		}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)

	fmt.Fprintf(stdout, "pattern: %s\n", report.Pattern.Render(kb.Store, tbl.Columns))
	fmt.Fprintf(stdout, "annotations: %d validated by KB, %d assumed correct, %d erroneous",
		nKB, nCrowd, nErr)
	if nUnknown > 0 {
		fmt.Fprintf(stdout, ", %d unknown", nUnknown)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "repairs proposed for %d rows, %d new facts inferred\n",
		len(report.Repairs), len(report.NewFacts))
	fmt.Fprintf(stdout, "crowd questions asked: %d (dedup %v)\n", report.QuestionsAsked, dedup)
	fmt.Fprintf(stdout, "wall-clock: %s, peak memory: %d MiB\n",
		elapsed.Round(time.Millisecond), m.Sys/(1<<20))
	return nil
}
