package main

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"katara"
	"katara/internal/jobs"
	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

// runPaperScale is the -paper-scale mode: a self-contained reproduction of
// the paper's headline workload — the 316K-row Person table (§7 Table 1) —
// on one machine, without needing -kb or -in. It generates the synthetic
// world, a DBpedia-shaped KB and the full-size dirty table (10% injected
// errors in the pattern-covered columns, §7.4), runs the end-to-end
// pipeline, and prints an aggregate summary only: at this scale the per-row
// repair listing of the normal mode would be ~30K lines of noise.
//
// With -provenance or -explain the recorder rides along, the run
// cross-checks that every repaired cell is explainable (non-empty evidence
// chain whose top-ranked candidate replays the applied repair), and the
// journal / per-cell explanation is emitted after the summary.
func runPaperScale(params jobs.Params, dedup bool, provPath string, explain *cellRef, stdout io.Writer) error {
	w := world.New(7, world.Config{
		Persons: 150, Players: 80, Clubs: 16, Universities: 40,
		Films: 40, Books: 40,
	})
	kb := workload.DBpediaLike(w, 7)
	fmt.Fprintf(stdout, "generated world + DBpedia-shaped KB (%d triples)\n", kb.Store.NumTriples())

	spec := workload.PersonTable(w, 308, workload.PaperPersonRows)
	tbl := spec.Table
	injected := table.InjectErrors(tbl, []int{1, 2, 3}, 0.10, rand.New(rand.NewSource(309)))
	in := tbl.Interned()
	fmt.Fprintf(stdout, "table %s: %d rows x %d columns, %d distinct signatures, %d injected errors\n",
		tbl.Name, tbl.NumRows(), tbl.NumCols(), in.NumGroups(), len(injected))

	opts := params.Options()
	opts.FactOracle = workload.WorldOracle{W: w, KB: kb}
	opts.ValidationOracle = workload.SpecOracle{Spec: spec, KB: kb}
	if opts.MaxRows == 0 {
		opts.MaxRows = 500 // discovery sampling cap; patterns saturate long before 316K rows
	}
	var rec *katara.ProvenanceRecorder
	if provPath != "" || explain != nil {
		rec = katara.NewProvenance()
		opts.Provenance = rec
	}

	start := time.Now()
	cleaner := katara.NewCleaner(kb.Store, katara.TrustingCrowd(), opts)
	report, err := cleaner.Clean(tbl)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	nKB, nCrowd, nErr, nUnknown := 0, 0, 0, 0
	for _, a := range report.Annotations {
		switch a.Label {
		case katara.ValidatedByKB:
			nKB++
		case katara.ValidatedByCrowd:
			nCrowd++
		case katara.Unknown:
			nUnknown++
		default:
			nErr++
		}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)

	fmt.Fprintf(stdout, "pattern: %s\n", report.Pattern.Render(kb.Store, tbl.Columns))
	fmt.Fprintf(stdout, "annotations: %d validated by KB, %d assumed correct, %d erroneous",
		nKB, nCrowd, nErr)
	if nUnknown > 0 {
		fmt.Fprintf(stdout, ", %d unknown", nUnknown)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "repairs proposed for %d rows, %d new facts inferred\n",
		len(report.Repairs), len(report.NewFacts))
	fmt.Fprintf(stdout, "crowd questions asked: %d (dedup %v)\n", report.QuestionsAsked, dedup)
	fmt.Fprintf(stdout, "wall-clock: %s, peak memory: %d MiB\n",
		elapsed.Round(time.Millisecond), m.Sys/(1<<20))
	if rec != nil {
		verified, err := verifyExplainable(rec, report)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "provenance: every repaired cell explainable (%d cells verified)\n", verified)
		if provPath != "" {
			if err := writeProvenance(rec, provPath, stdout); err != nil {
				return err
			}
		}
		if explain != nil {
			fmt.Fprintln(stdout)
			rec.Explain(explain.row, explain.col).WriteText(stdout)
		}
	}
	return nil
}

// verifyExplainable cross-checks the provenance layer's core guarantee on a
// live run: every cell the pipeline repaired must have a non-empty evidence
// chain, and the chain's top-ranked candidate must replay to the change the
// pipeline actually applied. Returns the number of cells checked.
func verifyExplainable(rec *katara.ProvenanceRecorder, report *katara.Report) (int, error) {
	verified := 0
	for row, reps := range report.Repairs {
		if len(reps) == 0 {
			continue
		}
		for _, ch := range reps[0].Changes {
			e := rec.Explain(row, ch.Col)
			if e.Empty() || e.Repair == nil || len(e.Repair.Candidates) == 0 {
				return verified, fmt.Errorf("provenance: repaired cell (%d,%d) has no evidence chain", row, ch.Col)
			}
			if e.Change == nil || e.Change.From != ch.From || e.Change.To != ch.To {
				return verified, fmt.Errorf("provenance: recorded winner for cell (%d,%d) does not replay the applied repair", row, ch.Col)
			}
			verified++
		}
	}
	return verified, nil
}
