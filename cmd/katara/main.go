// Command katara cleans a CSV table against an N-Triples knowledge base:
// it discovers the table's pattern, annotates every tuple, reports
// suspected errors with top-k possible repairs, and can write a repaired
// copy of the table.
//
// Usage:
//
//	katara -kb yago.nt -in dirty.csv [-out cleaned.csv] [-k 3]
//	       [-assume trust|skeptic] [-facts new-facts.nt] [-v]
//	       [-workers N] [-shards N] [-stats] [-dedup=false]
//	       [-fault-rate 0.3] [-budget 100] [-deadline 30s] [-degrade trust|unknown]
//	       [-provenance lineage.jsonl] [-explain ROW,COL]
//	       [-log-level info] [-log-json]
//	katara -paper-scale [-workers -1] [-shards -1] [-explain ROW,COL]
//
// -provenance records the run's full decision lineage — pattern scores,
// validation steps, per-tuple KB and crowd evidence, repair candidates with
// costs — as a JSONL journal. -explain ROW,COL prints the human-readable
// evidence chain behind one cell after the run; either flag enables the
// recorder. Diagnostics are structured logs (log/slog); -log-level and
// -log-json control verbosity and format.
//
// -paper-scale is a self-contained reproduction of the paper's headline
// workload: it generates the synthetic world, a DBpedia-shaped KB and the
// full 316K-row dirty Person table, cleans it end to end, and prints an
// aggregate summary (rows, distinct signatures, questions, wall-clock, peak
// memory) instead of per-row repairs.
//
// Without a crowd to consult, the -assume policy decides how to treat data
// the KB does not cover: "trust" (default) treats it as KB incompleteness
// and enriches the KB; "skeptic" treats it as erroneous and proposes
// repairs.
//
// The resilience flags exercise the unreliable-crowd layer: -fault-rate
// injects seeded worker faults (abandonment, transient errors, spam),
// -budget caps the crowd questions one run may consume, -deadline bounds
// the run's wall-clock, and -degrade picks what happens to tuples whose
// questions went unanswered when either ran out.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"katara"
	"katara/internal/jobs"
	"katara/internal/logging"
	"katara/internal/rdf"
	"katara/internal/telemetry"
)

// skepticalFacts treats every fact missing from the KB as a data error.
type skepticalFacts struct{}

func (skepticalFacts) TypeHolds(string, rdf.ID) bool           { return false }
func (skepticalFacts) RelHolds(string, rdf.ID, string) bool    { return false }
func (skepticalFacts) PathHolds(string, []rdf.ID, string) bool { return false }

// interactiveFacts asks the human at the terminal — the CLI *is* the crowd.
type interactiveFacts struct {
	kb *katara.KB
	in *bufio.Scanner
}

func (f interactiveFacts) ask(prompt string) bool {
	fmt.Printf("%s [y/N] ", prompt)
	if !f.in.Scan() {
		return false
	}
	ans := strings.ToLower(strings.TrimSpace(f.in.Text()))
	return ans == "y" || ans == "yes"
}

func (f interactiveFacts) TypeHolds(value string, typ rdf.ID) bool {
	return f.ask(fmt.Sprintf("Is %q a %s?", value, f.kb.LabelOf(typ)))
}

func (f interactiveFacts) RelHolds(subj string, prop rdf.ID, obj string) bool {
	return f.ask(fmt.Sprintf("Does %q %s %q?", subj, f.kb.LabelOf(prop), obj))
}

func (f interactiveFacts) PathHolds(subj string, props []rdf.ID, obj string) bool {
	labels := make([]string, len(props))
	for i, p := range props {
		labels[i] = f.kb.LabelOf(p)
	}
	return f.ask(fmt.Sprintf("Is %q related to %q through %s?",
		subj, obj, strings.Join(labels, " then ")))
}

// main only converts run's code into the process exit status. Everything
// with cleanup obligations lives in run, where deferred flushes execute on
// every path — os.Exit here used to skip them, truncating -trace journals
// and dropping -memprofile output on error exits.
func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run parses flags, validates parameters, and executes the clean. Usage
// errors return 2, runtime errors 1.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("katara", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kbPath   = fs.String("kb", "", "knowledge base in N-Triples format (required)")
		inPath   = fs.String("in", "", "input table as CSV with a header row (required)")
		outPath  = fs.String("out", "", "write the repaired table to this CSV (top-1 repair applied)")
		factPath = fs.String("facts", "", "write newly inferred facts to this N-Triples file")
		k        = fs.Int("k", 3, "number of possible repairs per erroneous tuple")
		assume   = fs.String("assume", "trust", "policy for KB-uncovered data: trust|skeptic|ask (ask = answer crowd questions at the terminal)")
		paths    = fs.Bool("paths", false, "discover two-hop path relationships for unrelated column pairs")
		dotPath  = fs.String("dot", "", "write the validated pattern as a Graphviz digraph to this file")
		verbose  = fs.Bool("v", false, "print per-tuple annotations")
		stats    = fs.Bool("stats", false, "print pipeline stage timings, counters and latency percentiles")
		statsAll = fs.Bool("stats-verbose", false, "include zero-valued counters and empty histograms in -stats output")
		workers  = fs.Int("workers", 0, "worker pool size for the parallel stages (0 or 1 = serial, -1 = GOMAXPROCS)")
		shards   = fs.Int("shards", 0, "row-range shards for annotation coverage and repair retrieval (0 or 1 = unsharded, -1 = GOMAXPROCS)")
		dedup    = fs.Bool("dedup", true, "distinct-signature execution: compute coverage, crowd questions and repairs once per distinct row signature (-dedup=false disables)")

		paperScale = fs.Bool("paper-scale", false, "run the self-contained full-paper-scale workload (316K-row Person table against a generated KB) and print an aggregate summary; -kb and -in are not required")

		statsJSON = fs.String("stats-json", "", "write the full telemetry snapshot as JSON to this file (- = stdout)")
		tracePath = fs.String("trace", "", "write a JSONL span journal of the run to this file")
		listen    = fs.String("listen", "", "serve /metrics, /healthz, /progress and /debug/pprof on this address (e.g. :8080) for the duration of the run")
		linger    = fs.Duration("linger", 0, "keep the -listen server up this long after the run completes (for late scrapes)")

		faultRate = fs.Float64("fault-rate", 0, "per-assignment crowd fault probability in [0,1), split across abandonment/transient/spam")
		budget    = fs.Int("budget", 0, "cap on crowd questions per run (0 = unlimited)")
		deadline  = fs.Duration("deadline", 0, "wall-clock bound for the run, e.g. 30s (0 = none)")
		degrade   = fs.String("degrade", "trust", "policy for tuples unanswered after budget/deadline exhaustion: trust|unknown")

		provPath    = fs.String("provenance", "", "write the decision-provenance journal as JSONL to this file (- = stdout)")
		explainFlag = fs.String("explain", "", "print the evidence chain behind cell ROW,COL after the run (e.g. -explain 12,2)")
		logLevel    = fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logJSON     = fs.Bool("log-json", false, "emit structured logs as JSON instead of text")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	level, lerr := logging.ParseLevel(*logLevel)
	if lerr != nil {
		fmt.Fprintln(stderr, "katara:", lerr)
		return 2
	}
	log := logging.New(stdout, stderr, level, *logJSON)
	var explain *cellRef
	if *explainFlag != "" {
		c, cerr := parseCell(*explainFlag)
		if cerr != nil {
			fmt.Fprintln(stderr, "katara:", cerr)
			return 2
		}
		explain = &c
	}
	if !*paperScale && (*kbPath == "" || *inPath == "") {
		fs.Usage()
		return 2
	}
	// One validator for every numeric knob, shared with katarad's submit
	// handler and the kexp driver, so all front doors reject the same
	// inputs with the same message.
	params := jobs.Params{
		Workers:    *workers,
		Shards:     *shards,
		RepairK:    *k,
		Budget:     *budget,
		DeadlineMS: deadline.Milliseconds(),
		FaultRate:  *faultRate,
		Degrade:    *degrade,
		DedupOff:   !*dedup,
	}
	if *deadline > 0 && *deadline < time.Millisecond {
		// Sub-millisecond deadlines survive the ms conversion above.
		params.DeadlineMS = 1
	}
	if err := params.Validate(); err != nil {
		fmt.Fprintln(stderr, "katara:", err)
		return 2
	}
	switch *assume {
	case "trust", "skeptic", "ask":
	default:
		fmt.Fprintf(stderr, "katara: unknown -assume %q\n", *assume)
		return 2
	}
	if *paperScale {
		if err := runPaperScale(params, *dedup, *provPath, explain, stdout); err != nil {
			log.Error("paper-scale run failed", "error", err.Error())
			return 1
		}
		return 0
	}

	err := clean(cleanConfig{
		kbPath: *kbPath, inPath: *inPath, outPath: *outPath, factPath: *factPath,
		dotPath: *dotPath, assume: *assume, paths: *paths, verbose: *verbose,
		stats: *stats, statsAll: *statsAll, statsJSON: *statsJSON,
		tracePath: *tracePath, listen: *listen, linger: *linger,
		cpuProfile: *cpuProfile, memProfile: *memProfile,
		deadline: *deadline, params: params,
		provPath: *provPath, explain: explain, log: log,
	}, stdin, stdout, stderr)
	if err != nil {
		log.Error("run failed", "error", err.Error())
		return 1
	}
	return 0
}

// cellRef names one table cell for -explain.
type cellRef struct {
	row, col int
}

// parseCell parses the -explain argument "ROW,COL".
func parseCell(s string) (cellRef, error) {
	rs, cs, ok := strings.Cut(s, ",")
	if ok {
		row, err1 := strconv.Atoi(strings.TrimSpace(rs))
		col, err2 := strconv.Atoi(strings.TrimSpace(cs))
		if err1 == nil && err2 == nil && row >= 0 && col >= 0 {
			return cellRef{row: row, col: col}, nil
		}
	}
	return cellRef{}, fmt.Errorf("-explain wants ROW,COL (non-negative integers), got %q", s)
}

// cleanConfig carries the parsed flags into clean.
type cleanConfig struct {
	kbPath, inPath, outPath, factPath, dotPath string
	assume                                     string
	paths, verbose, stats, statsAll            bool
	statsJSON, tracePath, listen               string
	linger                                     time.Duration
	cpuProfile, memProfile                     string
	deadline                                   time.Duration
	params                                     jobs.Params
	provPath                                   string
	explain                                    *cellRef
	log                                        *slog.Logger
}

// clean runs the pipeline. Every cleanup — profile stop, journal flush,
// server close — is deferred, so it runs on error returns too.
func clean(cfg cleanConfig, stdin io.Reader, stdout, stderr io.Writer) (err error) {
	if cfg.cpuProfile != "" {
		f, cerr := os.Create(cfg.cpuProfile)
		if cerr != nil {
			return cerr
		}
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			f.Close()
			return cerr
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if cfg.memProfile != "" {
		defer func() {
			f, merr := os.Create(cfg.memProfile)
			if merr != nil {
				cfg.log.Error("-memprofile write failed", "error", merr.Error())
				return
			}
			defer f.Close()
			runtime.GC() // materialise live-heap stats before the snapshot
			if merr := pprof.WriteHeapProfile(f); merr != nil {
				cfg.log.Error("-memprofile write failed", "error", merr.Error())
			}
		}()
	}

	kb := katara.NewKB()
	if err := loadKB(kb, cfg.kbPath, cfg.log); err != nil {
		return err
	}
	in, err := os.Open(cfg.inPath)
	if err != nil {
		return err
	}
	tbl, err := readTable(in, cfg.inPath)
	in.Close()
	if err != nil {
		return err
	}

	opts := cfg.params.Options()
	opts.DiscoverPaths = cfg.paths
	opts.Telemetry = cfg.stats
	opts.Deadline = cfg.deadline

	// Either provenance flag — the journal or a single-cell explanation —
	// enables the recorder; with neither, the pipeline keeps its zero-cost
	// disabled path.
	var rec *katara.ProvenanceRecorder
	if cfg.provPath != "" || cfg.explain != nil {
		rec = katara.NewProvenance()
		opts.Provenance = rec
	}

	// Any observability consumer — text stats, JSON stats, span journal, or
	// the HTTP endpoints — needs the caller-owned pipeline so it can watch
	// (or drain) the run rather than only the final report.
	var pipe *katara.TelemetryPipeline
	if cfg.stats || cfg.statsJSON != "" || cfg.tracePath != "" || cfg.listen != "" {
		pipe = katara.NewTelemetry()
		opts.Pipeline = pipe
	}
	if cfg.tracePath != "" {
		f, terr := os.Create(cfg.tracePath)
		if terr != nil {
			return terr
		}
		journalW := bufio.NewWriter(f)
		pipe.SetJournal(telemetry.NewJournal(journalW))
		// The flush+close runs on EVERY exit path. A fatal-exit here used
		// to leave the journal truncated mid-span whenever anything after
		// this point failed.
		defer func() {
			if ferr := journalW.Flush(); ferr != nil && err == nil {
				err = fmt.Errorf("-trace: %w", ferr)
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("-trace: %w", cerr)
			}
			if jerr := pipe.Journal().Err(); jerr != nil && err == nil {
				err = fmt.Errorf("-trace: %w", jerr)
			}
		}()
	}
	var srv *telemetry.Server
	if cfg.listen != "" {
		srv = telemetry.NewServer(pipe)
		srv.SetTotalTuples(tbl.NumRows())
		srv.SetQuestionBudget(cfg.params.Budget)
		addr, serr := srv.Start(cfg.listen)
		if serr != nil {
			return serr
		}
		fmt.Fprintf(stdout, "observability endpoints on http://%s (/metrics /healthz /progress /debug/pprof/)\n", addr)
		defer srv.Close()
	}
	if cfg.params.FaultRate > 0 {
		// Split the requested fault mass: half abandonment, a quarter each
		// transient and spam — a plausibly shaped unreliable crowd.
		opts.Transport = katara.NewFaultInjector(katara.FaultConfig{
			Seed:          1,
			AbandonRate:   cfg.params.FaultRate * 0.5,
			TransientRate: cfg.params.FaultRate * 0.25,
			SpamRate:      cfg.params.FaultRate * 0.25,
		})
	}
	switch cfg.assume {
	case "trust":
		// nil FactOracle = trusting policy
	case "skeptic":
		opts.FactOracle = skepticalFacts{}
	case "ask":
		opts.FactOracle = interactiveFacts{kb: kb, in: bufio.NewScanner(stdin)}
	}

	cleaner := katara.NewCleaner(kb, katara.TrustingCrowd(), opts)
	report, err := cleaner.Clean(tbl)
	srv.MarkDone()
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "table %s: %d rows x %d columns\n", tbl.Name, tbl.NumRows(), tbl.NumCols())
	fmt.Fprintf(stdout, "pattern: %s\n", report.Pattern.Render(kb, tbl.Columns))
	if cfg.dotPath != "" {
		if err := os.WriteFile(cfg.dotPath, []byte(report.Pattern.DOT(kb, tbl.Columns)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "pattern graph written to %s\n", cfg.dotPath)
	}
	nKB, nCrowd, nErr, nUnknown := 0, 0, 0, 0
	for _, a := range report.Annotations {
		switch a.Label {
		case katara.ValidatedByKB:
			nKB++
		case katara.ValidatedByCrowd:
			nCrowd++
		case katara.Unknown:
			nUnknown++
		default:
			nErr++
		}
		if cfg.verbose {
			suffix := ""
			if a.Degraded {
				suffix = "  (degraded)"
			}
			fmt.Fprintf(stdout, "  row %-5d %s%s\n", a.Row, a.Label, suffix)
		}
	}
	fmt.Fprintf(stdout, "annotations: %d validated by KB, %d assumed correct, %d erroneous",
		nKB, nCrowd, nErr)
	if nUnknown > 0 {
		fmt.Fprintf(stdout, ", %d unknown", nUnknown)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "new facts inferred: %d\n", len(report.NewFacts))
	if d := report.Degraded; d.Any() {
		fmt.Fprintf(stdout, "degraded run: pattern-fallback=%v unanswered-tuples=%d repairs-skipped=%v\n",
			d.PatternFallback, d.Tuples, d.RepairsSkipped)
	}

	repaired := tbl.Clone()
	for row, reps := range report.Repairs {
		if len(reps) == 0 {
			fmt.Fprintf(stdout, "row %d: erroneous, no repair found\n", row)
			continue
		}
		fmt.Fprintf(stdout, "row %d: erroneous %v\n", row, tbl.Rows[row])
		for i, r := range reps {
			fmt.Fprintf(stdout, "  repair %d: %s\n", i+1, r)
		}
		for _, ch := range reps[0].Changes {
			repaired.Rows[row][ch.Col] = ch.To
		}
	}

	if cfg.outPath != "" {
		f, oerr := os.Create(cfg.outPath)
		if oerr != nil {
			return oerr
		}
		if err := repaired.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "repaired table written to %s\n", cfg.outPath)
	}
	if cfg.factPath != "" && len(report.NewFacts) > 0 {
		if err := writeFacts(kb, report.NewFacts, cfg.factPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "new facts written to %s\n", cfg.factPath)
	}
	if cfg.stats {
		report.Timings.Verbose = cfg.statsAll
		fmt.Fprint(stdout, report.Timings)
	}
	if cfg.statsJSON != "" {
		if err := writeStatsJSON(report.Timings, cfg.statsJSON); err != nil {
			return err
		}
	}
	if cfg.tracePath != "" {
		fmt.Fprintf(stdout, "span journal (%d spans) written to %s\n", pipe.Journal().Spans(), cfg.tracePath)
	}
	if cfg.provPath != "" {
		if err := writeProvenance(rec, cfg.provPath, stdout); err != nil {
			return err
		}
	}
	if cfg.explain != nil {
		fmt.Fprintln(stdout)
		rec.Explain(cfg.explain.row, cfg.explain.col).WriteText(stdout)
	}
	if srv != nil && cfg.linger > 0 {
		fmt.Fprintf(stdout, "run complete; serving for another %s\n", cfg.linger)
		time.Sleep(cfg.linger)
	}
	return nil
}

// writeStatsJSON emits the full snapshot — counters, stage timings,
// histogram percentiles — as indented JSON to path ("-" = stdout).
func writeStatsJSON(snap *katara.Timings, path string) error {
	if snap == nil {
		snap = &katara.Timings{}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// writeProvenance dumps the recorder's JSONL journal to path ("-" =
// stdout), confirming the write like the other artifact flags do.
func writeProvenance(rec *katara.ProvenanceRecorder, path string, stdout io.Writer) error {
	if path == "-" {
		return rec.WriteJournal(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := rec.WriteJournal(w); err != nil {
		f.Close()
		return fmt.Errorf("-provenance: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("-provenance: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("-provenance: %w", err)
	}
	fmt.Fprintf(stdout, "provenance journal written to %s\n", path)
	return nil
}

func loadKB(kb *katara.KB, path string, log *slog.Logger) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var n int
	switch {
	case strings.HasSuffix(path, ".ttl") || strings.HasSuffix(path, ".turtle"):
		n, err = kb.ParseTurtle(f)
	case strings.HasSuffix(path, ".snap"):
		n, err = kb.ReadSnapshot(f)
	default:
		n, err = kb.ParseNTriples(f)
	}
	if err != nil {
		return err
	}
	log.Info("loaded knowledge base", "triples", n, "path", path)
	return nil
}

func readTable(f *os.File, name string) (*katara.Table, error) {
	return readCSV(f, name)
}
