// Command katara cleans a CSV table against an N-Triples knowledge base:
// it discovers the table's pattern, annotates every tuple, reports
// suspected errors with top-k possible repairs, and can write a repaired
// copy of the table.
//
// Usage:
//
//	katara -kb yago.nt -in dirty.csv [-out cleaned.csv] [-k 3]
//	       [-assume trust|skeptic] [-facts new-facts.nt] [-v]
//	       [-workers N] [-stats]
//	       [-fault-rate 0.3] [-budget 100] [-deadline 30s] [-degrade trust|unknown]
//
// Without a crowd to consult, the -assume policy decides how to treat data
// the KB does not cover: "trust" (default) treats it as KB incompleteness
// and enriches the KB; "skeptic" treats it as erroneous and proposes
// repairs.
//
// The resilience flags exercise the unreliable-crowd layer: -fault-rate
// injects seeded worker faults (abandonment, transient errors, spam),
// -budget caps the crowd questions one run may consume, -deadline bounds
// the run's wall-clock, and -degrade picks what happens to tuples whose
// questions went unanswered when either ran out.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"katara"
	"katara/internal/rdf"
	"katara/internal/telemetry"
)

// skepticalFacts treats every fact missing from the KB as a data error.
type skepticalFacts struct{}

func (skepticalFacts) TypeHolds(string, rdf.ID) bool           { return false }
func (skepticalFacts) RelHolds(string, rdf.ID, string) bool    { return false }
func (skepticalFacts) PathHolds(string, []rdf.ID, string) bool { return false }

// interactiveFacts asks the human at the terminal — the CLI *is* the crowd.
type interactiveFacts struct {
	kb *katara.KB
	in *bufio.Scanner
}

func (f interactiveFacts) ask(prompt string) bool {
	fmt.Printf("%s [y/N] ", prompt)
	if !f.in.Scan() {
		return false
	}
	ans := strings.ToLower(strings.TrimSpace(f.in.Text()))
	return ans == "y" || ans == "yes"
}

func (f interactiveFacts) TypeHolds(value string, typ rdf.ID) bool {
	return f.ask(fmt.Sprintf("Is %q a %s?", value, f.kb.LabelOf(typ)))
}

func (f interactiveFacts) RelHolds(subj string, prop rdf.ID, obj string) bool {
	return f.ask(fmt.Sprintf("Does %q %s %q?", subj, f.kb.LabelOf(prop), obj))
}

func (f interactiveFacts) PathHolds(subj string, props []rdf.ID, obj string) bool {
	labels := make([]string, len(props))
	for i, p := range props {
		labels[i] = f.kb.LabelOf(p)
	}
	return f.ask(fmt.Sprintf("Is %q related to %q through %s?",
		subj, obj, strings.Join(labels, " then ")))
}

func main() {
	var (
		kbPath   = flag.String("kb", "", "knowledge base in N-Triples format (required)")
		inPath   = flag.String("in", "", "input table as CSV with a header row (required)")
		outPath  = flag.String("out", "", "write the repaired table to this CSV (top-1 repair applied)")
		factPath = flag.String("facts", "", "write newly inferred facts to this N-Triples file")
		k        = flag.Int("k", 3, "number of possible repairs per erroneous tuple")
		assume   = flag.String("assume", "trust", "policy for KB-uncovered data: trust|skeptic|ask (ask = answer crowd questions at the terminal)")
		paths    = flag.Bool("paths", false, "discover two-hop path relationships for unrelated column pairs")
		dotPath  = flag.String("dot", "", "write the validated pattern as a Graphviz digraph to this file")
		verbose  = flag.Bool("v", false, "print per-tuple annotations")
		stats    = flag.Bool("stats", false, "print pipeline stage timings, counters and latency percentiles")
		statsAll = flag.Bool("stats-verbose", false, "include zero-valued counters and empty histograms in -stats output")
		workers  = flag.Int("workers", 0, "worker pool size for the parallel stages (0 or 1 = serial, -1 = GOMAXPROCS)")

		statsJSON = flag.String("stats-json", "", "write the full telemetry snapshot as JSON to this file (- = stdout)")
		tracePath = flag.String("trace", "", "write a JSONL span journal of the run to this file")
		listen    = flag.String("listen", "", "serve /metrics, /healthz, /progress and /debug/pprof on this address (e.g. :8080) for the duration of the run")
		linger    = flag.Duration("linger", 0, "keep the -listen server up this long after the run completes (for late scrapes)")

		faultRate = flag.Float64("fault-rate", 0, "per-assignment crowd fault probability in [0,1), split across abandonment/transient/spam")
		budget    = flag.Int("budget", 0, "cap on crowd questions per run (0 = unlimited)")
		deadline  = flag.Duration("deadline", 0, "wall-clock bound for the run, e.g. 30s (0 = none)")
		degrade   = flag.String("degrade", "trust", "policy for tuples unanswered after budget/deadline exhaustion: trust|unknown")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *kbPath == "" || *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "katara: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise live-heap stats before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "katara: -memprofile:", err)
			}
		}()
	}

	kb := katara.NewKB()
	if err := loadKB(kb, *kbPath); err != nil {
		fatal(err)
	}
	in, err := os.Open(*inPath)
	if err != nil {
		fatal(err)
	}
	tbl, err := readTable(in, *inPath)
	in.Close()
	if err != nil {
		fatal(err)
	}

	opts := katara.Options{
		RepairK: *k, DiscoverPaths: *paths, Workers: *workers, Telemetry: *stats,
		Budget: *budget, Deadline: *deadline,
	}

	// Any observability consumer — text stats, JSON stats, span journal, or
	// the HTTP endpoints — needs the caller-owned pipeline so it can watch
	// (or drain) the run rather than only the final report.
	var pipe *katara.TelemetryPipeline
	if *stats || *statsJSON != "" || *tracePath != "" || *listen != "" {
		pipe = katara.NewTelemetry()
		opts.Pipeline = pipe
	}
	var journalW *bufio.Writer
	var journalF *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		journalF, journalW = f, bufio.NewWriter(f)
		pipe.SetJournal(telemetry.NewJournal(journalW))
	}
	var srv *telemetry.Server
	if *listen != "" {
		srv = telemetry.NewServer(pipe)
		srv.SetTotalTuples(tbl.NumRows())
		srv.SetQuestionBudget(*budget)
		addr, err := srv.Start(*listen)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("observability endpoints on http://%s (/metrics /healthz /progress /debug/pprof/)\n", addr)
		defer srv.Close()
	}
	if *faultRate > 0 {
		// Split the requested fault mass: half abandonment, a quarter each
		// transient and spam — a plausibly shaped unreliable crowd.
		opts.Transport = katara.NewFaultInjector(katara.FaultConfig{
			Seed:          1,
			AbandonRate:   *faultRate * 0.5,
			TransientRate: *faultRate * 0.25,
			SpamRate:      *faultRate * 0.25,
		})
	}
	switch *degrade {
	case "trust":
		opts.Degrade = katara.DegradeTrustKB
	case "unknown":
		opts.Degrade = katara.DegradeMarkUnknown
	default:
		fatal(fmt.Errorf("unknown -degrade %q", *degrade))
	}
	switch *assume {
	case "trust":
		// nil FactOracle = trusting policy
	case "skeptic":
		opts.FactOracle = skepticalFacts{}
	case "ask":
		opts.FactOracle = interactiveFacts{kb: kb, in: bufio.NewScanner(os.Stdin)}
	default:
		fatal(fmt.Errorf("unknown -assume %q", *assume))
	}

	cleaner := katara.NewCleaner(kb, katara.TrustingCrowd(), opts)
	report, err := cleaner.Clean(tbl)
	srv.MarkDone()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("table %s: %d rows x %d columns\n", tbl.Name, tbl.NumRows(), tbl.NumCols())
	fmt.Printf("pattern: %s\n", report.Pattern.Render(kb, tbl.Columns))
	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(report.Pattern.DOT(kb, tbl.Columns)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("pattern graph written to %s\n", *dotPath)
	}
	nKB, nCrowd, nErr, nUnknown := 0, 0, 0, 0
	for _, a := range report.Annotations {
		switch a.Label {
		case katara.ValidatedByKB:
			nKB++
		case katara.ValidatedByCrowd:
			nCrowd++
		case katara.Unknown:
			nUnknown++
		default:
			nErr++
		}
		if *verbose {
			suffix := ""
			if a.Degraded {
				suffix = "  (degraded)"
			}
			fmt.Printf("  row %-5d %s%s\n", a.Row, a.Label, suffix)
		}
	}
	fmt.Printf("annotations: %d validated by KB, %d assumed correct, %d erroneous",
		nKB, nCrowd, nErr)
	if nUnknown > 0 {
		fmt.Printf(", %d unknown", nUnknown)
	}
	fmt.Println()
	fmt.Printf("new facts inferred: %d\n", len(report.NewFacts))
	if d := report.Degraded; d.Any() {
		fmt.Printf("degraded run: pattern-fallback=%v unanswered-tuples=%d repairs-skipped=%v\n",
			d.PatternFallback, d.Tuples, d.RepairsSkipped)
	}

	repaired := tbl.Clone()
	for row, reps := range report.Repairs {
		if len(reps) == 0 {
			fmt.Printf("row %d: erroneous, no repair found\n", row)
			continue
		}
		fmt.Printf("row %d: erroneous %v\n", row, tbl.Rows[row])
		for i, r := range reps {
			fmt.Printf("  repair %d: %s\n", i+1, r)
		}
		for _, ch := range reps[0].Changes {
			repaired.Rows[row][ch.Col] = ch.To
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := repaired.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("repaired table written to %s\n", *outPath)
	}
	if *factPath != "" && len(report.NewFacts) > 0 {
		if err := writeFacts(kb, report.NewFacts, *factPath); err != nil {
			fatal(err)
		}
		fmt.Printf("new facts written to %s\n", *factPath)
	}
	if *stats {
		report.Timings.Verbose = *statsAll
		fmt.Print(report.Timings)
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(report.Timings, *statsJSON); err != nil {
			fatal(err)
		}
	}
	if journalW != nil {
		if err := journalW.Flush(); err != nil {
			fatal(err)
		}
		if err := journalF.Close(); err != nil {
			fatal(err)
		}
		if err := pipe.Journal().Err(); err != nil {
			fatal(fmt.Errorf("-trace: %w", err))
		}
		fmt.Printf("span journal (%d spans) written to %s\n", pipe.Journal().Spans(), *tracePath)
	}
	if srv != nil && *linger > 0 {
		fmt.Printf("run complete; serving for another %s\n", *linger)
		time.Sleep(*linger)
	}
}

// writeStatsJSON emits the full snapshot — counters, stage timings,
// histogram percentiles — as indented JSON to path ("-" = stdout).
func writeStatsJSON(snap *katara.Timings, path string) error {
	if snap == nil {
		snap = &katara.Timings{}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func loadKB(kb *katara.KB, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var n int
	switch {
	case strings.HasSuffix(path, ".ttl") || strings.HasSuffix(path, ".turtle"):
		n, err = kb.ParseTurtle(f)
	case strings.HasSuffix(path, ".snap"):
		n, err = kb.ReadSnapshot(f)
	default:
		n, err = kb.ParseNTriples(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d triples from %s\n", n, path)
	return nil
}

func readTable(f *os.File, name string) (*katara.Table, error) {
	return readCSV(f, name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "katara:", err)
	os.Exit(1)
}
