package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

// writeEnv materialises a small cleanable environment — an N-Triples KB and
// a dirty CSV — into dir, returning both paths.
func writeEnv(t *testing.T, dir string) (kbPath, csvPath string) {
	t.Helper()
	const seed = 7
	w := world.New(seed, world.Config{
		Persons: 120, Players: 50, Clubs: 10, Universities: 40, Films: 20, Books: 20,
	})
	kb := workload.DBpediaLike(w, seed)
	spec := workload.PersonTable(w, seed, 80)
	dirty := spec.Table.Clone()
	rng := rand.New(rand.NewSource(seed))
	table.InjectErrors(dirty, []int{1, 2, 3}, 0.10, rng)

	kbPath = filepath.Join(dir, "kb.nt")
	kf, err := os.Create(kbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := kb.Store.WriteNTriples(kf); err != nil {
		t.Fatal(err)
	}
	if err := kf.Close(); err != nil {
		t.Fatal(err)
	}
	csvPath = filepath.Join(dir, "dirty.csv")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dirty.WriteCSV(cf); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	return kbPath, csvPath
}

// checkJournal asserts the trace file is a complete, untruncated JSONL
// span journal: every line parses as JSON, and the root "clean" span was
// both opened and closed.
func checkJournal(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("journal missing: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lines, sawClean := 0, false
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines++
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("journal line %d truncated or malformed: %v\n%s", lines, err, line)
		}
		if name, _ := rec["name"].(string); name == "clean" {
			sawClean = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("journal is empty — flush never ran")
	}
	if !sawClean {
		t.Fatal("journal has no root clean span")
	}
}

// TestRunErrorPathFlushesJournal is the regression test for the os.Exit
// bugfix: an error AFTER the run (here: -out pointing into a directory
// that does not exist) used to fatal-exit past the deferred journal flush,
// truncating the -trace output. The journal must be complete even though
// the command failed.
func TestRunErrorPathFlushesJournal(t *testing.T) {
	dir := t.TempDir()
	kbPath, csvPath := writeEnv(t, dir)
	tracePath := filepath.Join(dir, "trace.jsonl")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-kb", kbPath, "-in", csvPath,
		"-trace", tracePath,
		"-out", filepath.Join(dir, "no-such-dir", "repaired.csv"),
	}, strings.NewReader(""), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d (stderr %q), want 1", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no-such-dir") {
		t.Fatalf("stderr does not name the failing path: %q", stderr.String())
	}
	checkJournal(t, tracePath)
}

// TestRunSuccessPathFlushesJournal: the happy path still writes the same
// complete journal and exits 0.
func TestRunSuccessPathFlushesJournal(t *testing.T) {
	dir := t.TempDir()
	kbPath, csvPath := writeEnv(t, dir)
	tracePath := filepath.Join(dir, "trace.jsonl")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-kb", kbPath, "-in", csvPath, "-trace", tracePath, "-shards", "4",
	}, strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "span journal") {
		t.Fatalf("stdout missing journal report: %q", stdout.String())
	}
	checkJournal(t, tracePath)
}

// TestRunRejectsBadParams: the shared validator turns bad numeric flags
// into a usage error (exit 2) that names every offending knob at once.
func TestRunRejectsBadParams(t *testing.T) {
	dir := t.TempDir()
	kbPath, csvPath := writeEnv(t, dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-kb", kbPath, "-in", csvPath,
		"-workers", "-9", "-budget", "-1", "-deadline", "-5s", "-k", "-2",
	}, strings.NewReader(""), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, stderr.String())
	}
	for _, knob := range []string{"workers", "budget", "deadline", "repair_k"} {
		if !strings.Contains(stderr.String(), knob) {
			t.Fatalf("stderr does not mention %s: %q", knob, stderr.String())
		}
	}
	// And nothing ran: no KB-loading output.
	if strings.Contains(stdout.String(), "loaded") {
		t.Fatal("pipeline ran despite invalid parameters")
	}
}

// runProv runs the CLI with -provenance into dir and returns the journal
// bytes and captured stdout.
func runProv(t *testing.T, dir, kbPath, csvPath, name string, extra ...string) ([]byte, string) {
	t.Helper()
	provPath := filepath.Join(dir, name)
	args := append([]string{
		"-kb", kbPath, "-in", csvPath, "-shards", "3", "-provenance", provPath,
	}, extra...)
	var stdout, stderr bytes.Buffer
	if code := run(args, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	data, err := os.ReadFile(provPath)
	if err != nil {
		t.Fatalf("provenance journal missing: %v", err)
	}
	return data, stdout.String()
}

// TestRunProvenanceJournal: -provenance writes a JSONL lineage journal —
// every line valid JSON, lint-clean — and two runs over the same inputs
// produce byte-identical journals (decision provenance is deterministic).
func TestRunProvenanceJournal(t *testing.T) {
	dir := t.TempDir()
	kbPath, csvPath := writeEnv(t, dir)

	first, out := runProv(t, dir, kbPath, csvPath, "prov1.jsonl")
	if !strings.Contains(out, "provenance journal written") {
		t.Fatalf("stdout missing provenance confirmation: %q", out)
	}
	if len(first) == 0 {
		t.Fatal("provenance journal is empty")
	}
	for i, line := range bytes.Split(bytes.TrimRight(first, "\n"), []byte("\n")) {
		var v map[string]any
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatalf("journal line %d is not JSON: %v\n%s", i+1, err, line)
		}
	}

	second, _ := runProv(t, dir, kbPath, csvPath, "prov2.jsonl")
	if !bytes.Equal(first, second) {
		t.Fatal("same inputs produced different provenance journals")
	}
}

// TestRunExplainCell: -explain prints a human-readable evidence chain for
// the requested cell after the run.
func TestRunExplainCell(t *testing.T) {
	dir := t.TempDir()
	kbPath, csvPath := writeEnv(t, dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-kb", kbPath, "-in", csvPath, "-explain", "0,1",
	}, strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "cell (row 0, col 1)") {
		t.Fatalf("stdout missing explanation header: %q", stdout.String())
	}
	if !strings.Contains(stdout.String(), "verdict:") {
		t.Fatalf("explanation has no verdict: %q", stdout.String())
	}
}

// TestRunRejectsBadExplain: a malformed -explain argument is a usage error.
func TestRunRejectsBadExplain(t *testing.T) {
	dir := t.TempDir()
	kbPath, csvPath := writeEnv(t, dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-kb", kbPath, "-in", csvPath, "-explain", "banana",
	}, strings.NewReader(""), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-explain") {
		t.Fatalf("stderr does not explain the -explain format: %q", stderr.String())
	}
}

// TestRunRejectsBadLogLevel: an unknown -log-level is a usage error.
func TestRunRejectsBadLogLevel(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-log-level", "chatty"}, strings.NewReader(""), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "chatty") {
		t.Fatalf("stderr does not name the bad level: %q", stderr.String())
	}
}
