// Command kexp regenerates the paper's evaluation: every table (1–7) and
// figure (6, 7, 8, 11, 12) of §7 and the appendices, over the synthetic
// workload described in DESIGN.md.
//
// Usage:
//
//	kexp                              # run everything at the default scale
//	kexp -exp table2,fig6             # selected experiments
//	kexp -scale 1.0 -seed 42          # bigger relational tables, new seed
//
// Experiment names: table1 table2 table3 table4 table5 table6 table7
// fig6 fig7 fig8 fig11 fig12 patterns ablation stats
//
// -stats (or -exp stats) times the end-to-end pipeline per stage with the
// telemetry layer; -workers sizes the worker pool of the parallel stages.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"katara"
	"katara/internal/discovery"
	"katara/internal/experiments"
	"katara/internal/kbstats"
	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

func main() {
	var (
		expList    = flag.String("exp", "all", "comma-separated experiments to run (all|table1..table7|fig6|fig7|fig8|fig11|fig12|patterns|stats)")
		seed       = flag.Int64("seed", 2015, "master random seed")
		scale      = flag.Float64("scale", 0.2, "RelationalTables scale factor (1.0 = Person 5000 rows)")
		size       = flag.String("size", "default", "world size: small|default|large")
		maxK       = flag.Int("maxk", 10, "maximum k for top-k curves")
		maxQ       = flag.Int("maxq", 7, "maximum questions-per-variable for validation curves")
		format     = flag.String("format", "table", "figure output: table|chart|csv")
		stats      = flag.Bool("stats", false, "run the pipeline-telemetry experiment (same as -exp stats)")
		workers    = flag.Int("workers", 0, "worker pool size for the parallel stages (0 or 1 = serial, -1 = GOMAXPROCS)")
		faultRate  = flag.Float64("fault-rate", 0, "per-assignment crowd fault probability for the stats experiment, split across abandonment/transient/spam")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kexp: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "kexp: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kexp: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise live-heap stats before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "kexp: -memprofile: %v\n", err)
			}
		}()
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale}
	switch *size {
	case "small":
		cfg.World = world.Config{Persons: 150, Players: 80, Clubs: 16, Universities: 40, Films: 40, Books: 40}
	case "large":
		cfg.World = world.Config{Persons: 2000, Players: 800, Clubs: 120, Universities: 300, Films: 300, Books: 300}
	case "default":
		// package defaults
	default:
		fmt.Fprintf(os.Stderr, "kexp: unknown -size %q\n", *size)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	if *stats {
		want["stats"] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	fmt.Printf("# KATARA experiment driver (seed=%d scale=%.2f size=%s)\n", *seed, *scale, *size)
	start := time.Now()
	env := experiments.NewEnv(cfg)
	fmt.Printf("# environment built in %v\n", time.Since(start).Round(time.Millisecond))
	for _, kb := range env.KBs {
		s := kbstats.Summarize(kb.Store)
		fmt.Printf("# %-8s %6d triples, %5d entities, %4d types, %3d properties, %6d facts\n",
			kb.Name, s.Triples, s.Entities, s.Types, s.Properties, s.Facts)
	}
	fmt.Println()

	run := func(name string, f func() string) {
		if !sel(name) {
			return
		}
		t0 := time.Now()
		out := f()
		fmt.Println(out)
		fmt.Printf("# %s finished in %v\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() string { return experiments.RenderTable1(experiments.Table1(env)) })
	run("table2", func() string { return experiments.RenderTable2(experiments.Table2(env)) })
	run("table3", func() string { return experiments.RenderTable3(experiments.Table3(env)) })
	topKF := func(title string, s []experiments.TopKFSeries) string {
		switch *format {
		case "chart":
			return experiments.ChartTopKF(title, s)
		case "csv":
			return experiments.CSVTopKF(s)
		default:
			return experiments.RenderTopKF(title, s)
		}
	}
	valid := func(title string, s []experiments.ValidationSeries) string {
		switch *format {
		case "chart":
			return experiments.ChartValidation(title, s)
		case "csv":
			return experiments.CSVValidation(s)
		default:
			return experiments.RenderValidation(title, s)
		}
	}
	run("fig6", func() string {
		return topKF("Figure 6: Top-k F-measure (WebTables)", experiments.Figure6(env, *maxK))
	})
	run("fig11", func() string {
		return topKF("Figure 11: Top-k F-measure (WikiTables, RelationalTables)", experiments.Figure11(env, *maxK))
	})
	run("fig7", func() string {
		return valid("Figure 7: Pattern validation P/R (WebTables)", experiments.Figure7(env, *maxQ))
	})
	run("fig12", func() string {
		return valid("Figure 12: Pattern validation P/R (WikiTables, RelationalTables)", experiments.Figure12(env, *maxQ))
	})
	run("table4", func() string { return experiments.RenderTable4(experiments.Table4(env)) })
	run("table5", func() string { return experiments.RenderTable5(experiments.Table5(env)) })
	run("fig8", func() string {
		s := experiments.Figure8(env, 5)
		switch *format {
		case "chart":
			return experiments.ChartRepairK(s)
		case "csv":
			return experiments.CSVRepairK(s)
		default:
			return experiments.RenderFigure8(s)
		}
	})
	run("table6", func() string { return experiments.RenderTable6(experiments.Table6(env)) })
	run("table7", func() string { return experiments.RenderTable7(experiments.Table7(env)) })
	run("patterns", func() string { return renderValidatedPatterns(env) })
	run("ablation", func() string { return experiments.RenderAblation(experiments.AblationCoherence(env)) })
	run("stats", func() string { return renderStats(env, *workers, *faultRate) })
}

// renderStats runs the instrumented end-to-end pipeline over the
// RelationalTables specs and both KBs and prints each run's telemetry
// snapshot plus the crowd's resilience counters — the observability
// counterpart of Table 6's runtimes. A non-zero faultRate routes every
// crowd assignment through the seeded fault injector.
func renderStats(env *experiments.Env, workers int, faultRate float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline telemetry (RelationalTables, end-to-end, workers=%d, fault-rate=%.2f)\n",
		workers, faultRate)
	ds := env.Dataset("RelationalTables")
	for _, kb := range env.KBs {
		for _, spec := range ds.Specs {
			dirty := spec.Table.Clone()
			var cols []int
			for c := 1; c < dirty.NumCols(); c++ {
				cols = append(cols, c)
			}
			if len(cols) == 0 {
				continue
			}
			rng := rand.New(rand.NewSource(env.Cfg.Seed))
			table.InjectErrors(dirty, cols, 0.10, rng)
			opts := katara.Options{
				FactOracle: workload.WorldOracle{W: env.World, KB: kb},
				Telemetry:  true,
				Workers:    workers,
			}
			if faultRate > 0 {
				opts.Transport = katara.NewFaultInjector(katara.FaultConfig{
					Seed:          env.Cfg.Seed,
					AbandonRate:   faultRate * 0.5,
					TransientRate: faultRate * 0.25,
					SpamRate:      faultRate * 0.25,
				})
			}
			// Clone the KB: the run enriches it, and later experiments
			// must see the environment untouched.
			cleaner := katara.NewCleaner(kb.Store.Clone(), katara.TrustingCrowd(), opts)
			report, err := cleaner.Clean(dirty)
			if err != nil {
				fmt.Fprintf(&b, "\n%s x %s: %v\n", kb.Name, spec.Table.Name, err)
				continue
			}
			fmt.Fprintf(&b, "\n%s x %s (%d rows):\n%s", kb.Name, spec.Table.Name, dirty.NumRows(), report.Timings)
			cs := report.Crowd
			fmt.Fprintf(&b, "crowd resilience:\n")
			fmt.Fprintf(&b, "  %-18s %10d\n", "questions", cs.Questions)
			fmt.Fprintf(&b, "  %-18s %10d\n", "assignments", cs.Assignments)
			fmt.Fprintf(&b, "  %-18s %10d\n", "retries", cs.Retries)
			fmt.Fprintf(&b, "  %-18s %10d\n", "abandonments", cs.Abandonments)
			fmt.Fprintf(&b, "  %-18s %10d\n", "timeouts", cs.Timeouts)
			fmt.Fprintf(&b, "  %-18s %10d\n", "escalations", cs.Escalations)
			if d := report.Degraded; d.Any() {
				fmt.Fprintf(&b, "  degraded: pattern-fallback=%v tuples=%d repairs-skipped=%v\n",
					d.PatternFallback, d.Tuples, d.RepairsSkipped)
			}
		}
	}
	return b.String()
}

// renderValidatedPatterns prints the top discovered pattern per relational
// table and KB — the analogue of Fig. 10 in the appendix.
func renderValidatedPatterns(env *experiments.Env) string {
	var b strings.Builder
	b.WriteString("Figure 10: Validated table patterns (RelationalTables)\n")
	ds := env.Dataset("RelationalTables")
	for _, kb := range env.KBs {
		fmt.Fprintf(&b, "%s:\n", kb.Name)
		for _, spec := range ds.Specs {
			c := discovery.Generate(spec.Table, env.Stats[kb.Name], discovery.Options{
				MaxCandidates: env.Cfg.MaxCandidates,
				MaxRows:       env.Cfg.MaxRows,
			})
			ps := discovery.TopK(c, 1)
			if len(ps) == 0 {
				fmt.Fprintf(&b, "  %-12s (no pattern)\n", spec.Table.Name)
				continue
			}
			fmt.Fprintf(&b, "  %-12s %s\n", spec.Table.Name, ps[0].Render(kb.Store, spec.Table.Columns))
		}
	}
	return b.String()
}
