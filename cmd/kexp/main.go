// Command kexp regenerates the paper's evaluation: every table (1–7) and
// figure (6, 7, 8, 11, 12) of §7 and the appendices, over the synthetic
// workload described in DESIGN.md.
//
// Usage:
//
//	kexp                              # run everything at the default scale
//	kexp -exp table2,fig6             # selected experiments
//	kexp -scale 1.0 -seed 42          # bigger relational tables, new seed
//
// Experiment names: table1 table2 table3 table4 table5 table6 table7
// fig6 fig7 fig8 fig11 fig12 patterns ablation stats
//
// -stats (or -exp stats) times the end-to-end pipeline per stage with the
// telemetry layer; -workers sizes the worker pool of the parallel stages.
// Diagnostics are structured logs (log/slog); -log-level and -log-json
// control verbosity and format, matching katara and katarad.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"katara"
	"katara/internal/discovery"
	"katara/internal/experiments"
	"katara/internal/jobs"
	"katara/internal/kbstats"
	"katara/internal/logging"
	"katara/internal/table"
	"katara/internal/telemetry"
	"katara/internal/workload"
	"katara/internal/world"
)

func main() {
	var (
		expList    = flag.String("exp", "all", "comma-separated experiments to run (all|table1..table7|fig6|fig7|fig8|fig11|fig12|patterns|stats)")
		seed       = flag.Int64("seed", 2015, "master random seed")
		scale      = flag.Float64("scale", 0.2, "RelationalTables scale factor (1.0 = Person 5000 rows)")
		paperScale = flag.Bool("paper-scale", false, "build RelationalTables at the paper's exact row counts (Person 316K) regardless of -scale")
		size       = flag.String("size", "default", "world size: small|default|large")
		maxK       = flag.Int("maxk", 10, "maximum k for top-k curves")
		maxQ       = flag.Int("maxq", 7, "maximum questions-per-variable for validation curves")
		format     = flag.String("format", "table", "figure output: table|chart|csv")
		stats      = flag.Bool("stats", false, "run the pipeline-telemetry experiment (same as -exp stats)")
		statsAll   = flag.Bool("stats-verbose", false, "include zero-valued counters and empty histograms in telemetry output")
		workers    = flag.Int("workers", 0, "worker pool size for the parallel stages (0 or 1 = serial, -1 = GOMAXPROCS)")
		faultRate  = flag.Float64("fault-rate", 0, "per-assignment crowd fault probability for the stats experiment, split across abandonment/transient/spam")
		statsJSON  = flag.String("stats-json", "", "write the cumulative telemetry snapshot as JSON to this file (- = stdout)")
		tracePath  = flag.String("trace", "", "write a JSONL span journal of the instrumented runs to this file")
		listen     = flag.String("listen", "", "serve /metrics, /healthz, /progress and /debug/pprof on this address for the duration of the driver")
		linger     = flag.Duration("linger", 0, "keep the -listen server up this long after the experiments complete")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	level, lerr := logging.ParseLevel(*logLevel)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "kexp:", lerr)
		os.Exit(2)
	}
	log := logging.New(os.Stdout, os.Stderr, level, *logJSON)

	// Same parameter validator as cmd/katara and katarad's submit handler:
	// a fractional-but-negative scale or an impossible worker count is a
	// usage error, not a silently empty experiment.
	params := jobs.Params{Workers: *workers, Scale: *scale, FaultRate: *faultRate}
	if err := params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "kexp:", err)
		os.Exit(2)
	}
	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "kexp: -scale must be > 0, got %v\n", *scale)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Error("-cpuprofile failed", "error", err.Error())
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Error("-cpuprofile failed", "error", err.Error())
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Error("-memprofile write failed", "error", err.Error())
				return
			}
			defer f.Close()
			runtime.GC() // materialise live-heap stats before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Error("-memprofile write failed", "error", err.Error())
			}
		}()
	}

	// A shared pipeline accumulates over every instrumented run of the driver
	// and feeds the observability sinks: JSONL journal, /metrics server, JSON
	// snapshot. The per-run telemetry the stats experiment prints then shows
	// cumulative values, which is what a scraper watching the driver sees.
	var pipe *katara.TelemetryPipeline
	if *statsJSON != "" || *tracePath != "" || *listen != "" {
		pipe = katara.NewTelemetry()
	}
	var journalW *bufio.Writer
	var journalF *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Error("-trace journal failed", "error", err.Error())
			os.Exit(1)
		}
		journalF, journalW = f, bufio.NewWriter(f)
		pipe.SetJournal(telemetry.NewJournal(journalW))
	}
	var srv *telemetry.Server
	if *listen != "" {
		srv = telemetry.NewServer(pipe)
		addr, err := srv.Start(*listen)
		if err != nil {
			log.Error("-listen failed", "error", err.Error())
			os.Exit(1)
		}
		fmt.Printf("# observability endpoints on http://%s (/metrics /healthz /progress /debug/pprof/)\n", addr)
		defer srv.Close()
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale, PaperScale: *paperScale}
	switch *size {
	case "small":
		cfg.World = world.Config{Persons: 150, Players: 80, Clubs: 16, Universities: 40, Films: 40, Books: 40}
	case "large":
		cfg.World = world.Config{Persons: 2000, Players: 800, Clubs: 120, Universities: 300, Films: 300, Books: 300}
	case "default":
		// package defaults
	default:
		fmt.Fprintf(os.Stderr, "kexp: unknown -size %q\n", *size)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	if *stats {
		want["stats"] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	fmt.Printf("# KATARA experiment driver (seed=%d scale=%.2f size=%s paper-scale=%v)\n", *seed, *scale, *size, *paperScale)
	start := time.Now()
	env := experiments.NewEnv(cfg)
	fmt.Printf("# environment built in %v\n", time.Since(start).Round(time.Millisecond))
	for _, kb := range env.KBs {
		s := kbstats.Summarize(kb.Store)
		fmt.Printf("# %-8s %6d triples, %5d entities, %4d types, %3d properties, %6d facts\n",
			kb.Name, s.Triples, s.Entities, s.Types, s.Properties, s.Facts)
	}
	fmt.Println()

	// One root span over the whole driver: each instrumented Clean run pushes
	// its own "clean" span beneath it, so a -trace journal stays one tree.
	rootSpan := pipe.PushSpan("kexp")

	run := func(name string, f func() string) {
		if !sel(name) {
			return
		}
		t0 := time.Now()
		out := f()
		fmt.Println(out)
		fmt.Printf("# %s finished in %v\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() string { return experiments.RenderTable1(experiments.Table1(env)) })
	run("table2", func() string { return experiments.RenderTable2(experiments.Table2(env)) })
	run("table3", func() string { return experiments.RenderTable3(experiments.Table3(env)) })
	topKF := func(title string, s []experiments.TopKFSeries) string {
		switch *format {
		case "chart":
			return experiments.ChartTopKF(title, s)
		case "csv":
			return experiments.CSVTopKF(s)
		default:
			return experiments.RenderTopKF(title, s)
		}
	}
	valid := func(title string, s []experiments.ValidationSeries) string {
		switch *format {
		case "chart":
			return experiments.ChartValidation(title, s)
		case "csv":
			return experiments.CSVValidation(s)
		default:
			return experiments.RenderValidation(title, s)
		}
	}
	run("fig6", func() string {
		return topKF("Figure 6: Top-k F-measure (WebTables)", experiments.Figure6(env, *maxK))
	})
	run("fig11", func() string {
		return topKF("Figure 11: Top-k F-measure (WikiTables, RelationalTables)", experiments.Figure11(env, *maxK))
	})
	run("fig7", func() string {
		return valid("Figure 7: Pattern validation P/R (WebTables)", experiments.Figure7(env, *maxQ))
	})
	run("fig12", func() string {
		return valid("Figure 12: Pattern validation P/R (WikiTables, RelationalTables)", experiments.Figure12(env, *maxQ))
	})
	run("table4", func() string { return experiments.RenderTable4(experiments.Table4(env)) })
	run("table5", func() string { return experiments.RenderTable5(experiments.Table5(env)) })
	run("fig8", func() string {
		s := experiments.Figure8(env, 5)
		switch *format {
		case "chart":
			return experiments.ChartRepairK(s)
		case "csv":
			return experiments.CSVRepairK(s)
		default:
			return experiments.RenderFigure8(s)
		}
	})
	run("table6", func() string { return experiments.RenderTable6(experiments.Table6(env)) })
	run("table7", func() string { return experiments.RenderTable7(experiments.Table7(env)) })
	run("patterns", func() string { return renderValidatedPatterns(env) })
	run("ablation", func() string { return experiments.RenderAblation(experiments.AblationCoherence(env)) })
	run("stats", func() string { return renderStats(env, *workers, *faultRate, pipe, *statsAll) })

	rootSpan.End()
	srv.MarkDone()
	if *statsJSON != "" {
		if err := writeStatsJSON(pipe, *statsJSON); err != nil {
			log.Error("-stats-json write failed", "error", err.Error())
			os.Exit(1)
		}
	}
	if journalW != nil {
		if err := journalW.Flush(); err != nil {
			log.Error("-trace journal failed", "error", err.Error())
			os.Exit(1)
		}
		if err := journalF.Close(); err != nil {
			log.Error("-trace journal failed", "error", err.Error())
			os.Exit(1)
		}
		if err := pipe.Journal().Err(); err != nil {
			log.Error("-trace journal failed", "error", err.Error())
			os.Exit(1)
		}
		fmt.Printf("# span journal (%d spans) written to %s\n", pipe.Journal().Spans(), *tracePath)
	}
	if srv != nil && *linger > 0 {
		fmt.Printf("# experiments complete; serving for another %s\n", *linger)
		time.Sleep(*linger)
	}
}

// writeStatsJSON emits the shared pipeline's cumulative snapshot as indented
// JSON to path ("-" = stdout).
func writeStatsJSON(pipe *katara.TelemetryPipeline, path string) error {
	snap := pipe.Snapshot()
	if snap == nil {
		snap = &katara.Timings{}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// renderStats runs the instrumented end-to-end pipeline over the
// RelationalTables specs and both KBs and prints each run's telemetry
// snapshot — stage timings, counters (including the crowd resilience
// counters) and latency percentiles, all through the shared
// Snapshot.String() renderer. A non-zero faultRate routes every crowd
// assignment through the seeded fault injector. When pipe is non-nil every
// run records into it (so -trace/-listen/-stats-json observe the runs) and
// the printed snapshots are cumulative.
func renderStats(env *experiments.Env, workers int, faultRate float64, pipe *katara.TelemetryPipeline, verbose bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline telemetry (RelationalTables, end-to-end, workers=%d, fault-rate=%.2f)\n",
		workers, faultRate)
	if pipe != nil {
		fmt.Fprintf(&b, "(shared pipeline: per-run snapshots accumulate)\n")
	}
	ds := env.Dataset("RelationalTables")
	for _, kb := range env.KBs {
		for _, spec := range ds.Specs {
			dirty := spec.Table.Clone()
			var cols []int
			for c := 1; c < dirty.NumCols(); c++ {
				cols = append(cols, c)
			}
			if len(cols) == 0 {
				continue
			}
			rng := rand.New(rand.NewSource(env.Cfg.Seed))
			table.InjectErrors(dirty, cols, 0.10, rng)
			opts := katara.Options{
				FactOracle: workload.WorldOracle{W: env.World, KB: kb},
				Telemetry:  true,
				Pipeline:   pipe, // nil = per-run pipeline via Telemetry
				Workers:    workers,
			}
			if faultRate > 0 {
				opts.Transport = katara.NewFaultInjector(katara.FaultConfig{
					Seed:          env.Cfg.Seed,
					AbandonRate:   faultRate * 0.5,
					TransientRate: faultRate * 0.25,
					SpamRate:      faultRate * 0.25,
				})
			}
			// Clone the KB: the run enriches it, and later experiments
			// must see the environment untouched.
			cleaner := katara.NewCleaner(kb.Store.Clone(), katara.TrustingCrowd(), opts)
			report, err := cleaner.Clean(dirty)
			if err != nil {
				fmt.Fprintf(&b, "\n%s x %s: %v\n", kb.Name, spec.Table.Name, err)
				continue
			}
			// Snapshot.String() already renders the crowd resilience
			// counters (questions, assignments, retries, abandonments,
			// timeouts, escalations) alongside the stage timings and
			// latency percentiles — one shared format across binaries.
			report.Timings.Verbose = verbose
			fmt.Fprintf(&b, "\n%s x %s (%d rows):\n%s", kb.Name, spec.Table.Name, dirty.NumRows(), report.Timings)
			if d := report.Degraded; d.Any() {
				fmt.Fprintf(&b, "  degraded: pattern-fallback=%v tuples=%d repairs-skipped=%v\n",
					d.PatternFallback, d.Tuples, d.RepairsSkipped)
			}
		}
	}
	return b.String()
}

// renderValidatedPatterns prints the top discovered pattern per relational
// table and KB — the analogue of Fig. 10 in the appendix.
func renderValidatedPatterns(env *experiments.Env) string {
	var b strings.Builder
	b.WriteString("Figure 10: Validated table patterns (RelationalTables)\n")
	ds := env.Dataset("RelationalTables")
	for _, kb := range env.KBs {
		fmt.Fprintf(&b, "%s:\n", kb.Name)
		for _, spec := range ds.Specs {
			c := discovery.Generate(spec.Table, env.Stats[kb.Name], discovery.Options{
				MaxCandidates: env.Cfg.MaxCandidates,
				MaxRows:       env.Cfg.MaxRows,
			})
			ps := discovery.TopK(c, 1)
			if len(ps) == 0 {
				fmt.Fprintf(&b, "  %-12s (no pattern)\n", spec.Table.Name)
				continue
			}
			fmt.Fprintf(&b, "  %-12s %s\n", spec.Table.Name, ps[0].Render(kb.Store, spec.Table.Columns))
		}
	}
	return b.String()
}
