package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"katara/internal/jobs"
)

// newTestHarness points a harness at a scripted server with a short
// deadline, so the retry loops terminate fast when a test exercises the
// give-up path.
func newTestHarness(t *testing.T, h http.Handler) (*harness, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return &harness{
		base:     srv.URL,
		client:   srv.Client(),
		deadline: time.Now().Add(5 * time.Second),
	}, srv
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// TestSubmitRetriesBackpressure: 429 and 503 are backpressure, not errors —
// submit must keep retrying and return the ID from the eventual 202.
func TestSubmitRetriesBackpressure(t *testing.T) {
	var calls atomic.Int64
	h, _ := newTestHarness(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			writeJSON(w, http.StatusAccepted, jobs.SubmitResponse{ID: "j7"})
		}
	}))
	var accepted atomic.Int64
	id, err := h.submit([]byte(`{}`), &accepted)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if id != "j7" || accepted.Load() != 1 || calls.Load() != 3 {
		t.Fatalf("id=%q accepted=%d calls=%d, want j7/1/3", id, accepted.Load(), calls.Load())
	}
}

// TestSubmitHardError: a non-backpressure status is terminal, carrying the
// body in the error.
func TestSubmitHardError(t *testing.T) {
	h, _ := newTestHarness(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "schema mismatch", http.StatusBadRequest)
	}))
	if _, err := h.submit([]byte(`{}`), nil); err == nil {
		t.Fatal("submit on 400 succeeded, want error")
	}
}

// TestSubmitDeadline: with the daemon permanently down, submit gives up at
// the harness deadline instead of spinning forever.
func TestSubmitDeadline(t *testing.T) {
	h, srv := newTestHarness(t, http.NewServeMux())
	srv.Close() // connection errors from here on
	h.deadline = time.Now().Add(50 * time.Millisecond)
	if _, err := h.submit([]byte(`{}`), nil); err == nil {
		t.Fatal("submit past deadline succeeded, want error")
	}
}

// TestAppendJobAccepted: the plain 202 path returns the increment's ID and
// bumps the accepted counter.
func TestAppendJobAccepted(t *testing.T) {
	h, _ := newTestHarness(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/jobs/j1/append" {
			t.Errorf("path = %q", r.URL.Path)
		}
		writeJSON(w, http.StatusAccepted, jobs.SubmitResponse{ID: "j2"})
	}))
	var accepted atomic.Int64
	id, err := h.appendJob("j1", []byte(`{}`), &accepted)
	if err != nil {
		t.Fatalf("appendJob: %v", err)
	}
	if id != "j2" || accepted.Load() != 1 {
		t.Fatalf("id=%q accepted=%d, want j2/1", id, accepted.Load())
	}
}

// TestAppendJobAdoptsLostAck: a 409 whose listing shows a child of ours is
// our own journalled-but-unacked append — appendJob must adopt that ID
// rather than retrying forever against "parent already extended".
func TestAppendJobAdoptsLostAck(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs/j1/append", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusConflict, map[string]string{"error": "already extended"})
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, []jobs.JobStatus{
			{ID: "j1", State: jobs.StateDone},
			{ID: "j9", Parent: "j1", State: jobs.StateRunning},
		})
	})
	h, _ := newTestHarness(t, mux)
	var accepted atomic.Int64
	id, err := h.appendJob("j1", []byte(`{}`), &accepted)
	if err != nil {
		t.Fatalf("appendJob: %v", err)
	}
	if id != "j9" || accepted.Load() != 1 {
		t.Fatalf("id=%q accepted=%d, want adopted j9/1", id, accepted.Load())
	}
}

// TestAppendJobRetriesTransientConflict: a 409 with no child in the listing
// means the parent is (re-)running post-crash — retry until the append is
// admitted.
func TestAppendJobRetriesTransientConflict(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs/j1/append", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			writeJSON(w, http.StatusConflict, map[string]string{"error": "running"})
			return
		}
		writeJSON(w, http.StatusAccepted, jobs.SubmitResponse{ID: "j2"})
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, []jobs.JobStatus{{ID: "j1", State: jobs.StateRunning}})
	})
	h, _ := newTestHarness(t, mux)
	id, err := h.appendJob("j1", []byte(`{}`), nil)
	if err != nil {
		t.Fatalf("appendJob: %v", err)
	}
	if id != "j2" || calls.Load() != 3 {
		t.Fatalf("id=%q calls=%d, want j2 after 3 attempts", id, calls.Load())
	}
}

// TestAppendJobBackpressureAndLoss: 429 retries; a 404 on a parent we know
// completed is the cardinal sin and must fail immediately.
func TestAppendJobBackpressureAndLoss(t *testing.T) {
	var calls atomic.Int64
	h, _ := newTestHarness(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
	}))
	_, err := h.appendJob("j1", []byte(`{}`), nil)
	if err == nil || calls.Load() != 2 {
		t.Fatalf("err=%v calls=%d, want lost-parent error after a 429 retry", err, calls.Load())
	}
}

// TestChildOf: the listing lookup returns the extending job's ID, "" when
// no job names us as parent, and "" on any transport or decode trouble.
func TestChildOf(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, []jobs.JobStatus{
			{ID: "a"},
			{ID: "b", Parent: "a"},
		})
	})
	h, srv := newTestHarness(t, mux)
	if got := h.childOf("a"); got != "b" {
		t.Fatalf("childOf(a) = %q, want b", got)
	}
	if got := h.childOf("b"); got != "" {
		t.Fatalf("childOf(b) = %q, want none", got)
	}
	srv.Close()
	if got := h.childOf("a"); got != "" {
		t.Fatalf("childOf with daemon down = %q, want \"\"", got)
	}

	bad, _ := newTestHarness(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "not json")
	}))
	if got := bad.childOf("a"); got != "" {
		t.Fatalf("childOf on junk body = %q, want \"\"", got)
	}
}

// TestAwaitResultPollsToDone: 409 (still running) polls; the eventual done
// document's report bytes come back.
func TestAwaitResultPollsToDone(t *testing.T) {
	var calls atomic.Int64
	h, _ := newTestHarness(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			writeJSON(w, http.StatusConflict, map[string]string{"error": "running"})
			return
		}
		writeJSON(w, http.StatusOK, jobs.ResultDoc{
			ID:     "j1",
			State:  jobs.StateDone,
			Report: &jobs.ReportDoc{QuestionsAsked: 12},
		})
	}))
	rep, state, err := h.awaitResult("j1")
	if err != nil {
		t.Fatalf("awaitResult: %v", err)
	}
	if state != jobs.StateDone || len(rep) == 0 {
		t.Fatalf("state=%s len(rep)=%d, want done with report bytes", state, len(rep))
	}
}

// TestAwaitResultTerminalFailure: a terminal non-done state is an error
// carrying the job's own error text, not a retry.
func TestAwaitResultTerminalFailure(t *testing.T) {
	h, _ := newTestHarness(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, jobs.ResultDoc{ID: "j1", State: jobs.StateFailed, Error: "boom"})
	}))
	_, state, err := h.awaitResult("j1")
	if err == nil || state != jobs.StateFailed {
		t.Fatalf("err=%v state=%s, want failure with state preserved", err, state)
	}
}

// TestAwaitResultLostJob: 404 on an accepted job is an immediate failure —
// the whole point of the chaos harness.
func TestAwaitResultLostJob(t *testing.T) {
	h, _ := newTestHarness(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown"})
	}))
	if _, _, err := h.awaitResult("j1"); err == nil {
		t.Fatal("awaitResult on 404 succeeded, want lost-job error")
	}
}
