// Command kchaos is the crash-recovery chaos harness for katarad: it runs a
// kload-style submission burst while SIGKILLing and restarting the daemon at
// seeded random points, then asserts the fault-tolerance contract:
//
//   - no accepted job is ever lost: every ID acknowledged with 202 is still
//     known to the final daemon and reaches a terminal state;
//   - every surviving job completes (no poisoned quarantines under plain
//     crash chaos) and its result document's report is byte-identical to a
//     crash-free oracle run of the same submission;
//   - append chains survive too: -appends root+append pairs run through the
//     burst, and every appended job's cumulative report must match a
//     crash-free oracle append — a crash between the append's journal
//     record and its execution must replay into the identical document;
//   - /metrics stays promlint-clean, and every cumulative series is
//     monotone non-decreasing within each daemon boot (scrapes spanning a
//     kill are discarded — a fresh boot legitimately restarts counters).
//
// Usage:
//
//	kchaos -katarad ./katarad -kb small.nt -in dirty.csv \
//	       [-jobs 40] [-kills 3] [-appends 6] [-seed 1] \
//	       [-addr 127.0.0.1:18571] [-journal-dir DIR] \
//	       [-kill-min 150ms] [-kill-max 400ms]
//
// Exit status 0 means the run survived every kill with all invariants
// intact; any violation prints the cause and exits 1.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"katara/internal/jobs"
	"katara/internal/table"
	"katara/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("kchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bin         = fs.String("katarad", "", "path to the katarad binary (required)")
		kbPath      = fs.String("kb", "", "knowledge base file passed to katarad (required)")
		inPath      = fs.String("in", "", "CSV table to submit (required)")
		addr        = fs.String("addr", "127.0.0.1:18571", "address katarad listens on")
		nJobs       = fs.Int("jobs", 40, "total jobs to get accepted")
		kills       = fs.Int("kills", 3, "SIGKILL/restart cycles to inject mid-burst")
		appends     = fs.Int("appends", 6, "root+append chains to run through the burst")
		seed        = fs.Int64("seed", 1, "seed for the kill-point schedule")
		concurrency = fs.Int("concurrency", 8, "submissions in flight at once")
		shards      = fs.Int("shards", 2, "shard count for each job")
		journalDir  = fs.String("journal-dir", "", "journal directory (default: a fresh temp dir)")
		killMin     = fs.Duration("kill-min", 150*time.Millisecond, "minimum delay before each kill")
		killMax     = fs.Duration("kill-max", 400*time.Millisecond, "maximum delay before each kill")
		scrape      = fs.Duration("scrape", 25*time.Millisecond, "interval between /metrics scrapes")
		timeout     = fs.Duration("timeout", 3*time.Minute, "overall run deadline")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *bin == "" || *kbPath == "" || *inPath == "" {
		fmt.Fprintln(stderr, "kchaos: -katarad, -kb and -in are required")
		fs.Usage()
		return 2
	}
	if *nJobs < 1 || *kills < 0 || *appends < 0 || *concurrency < 1 || *killMin <= 0 || *killMax < *killMin {
		fmt.Fprintln(stderr, "kchaos: invalid -jobs/-kills/-appends/-concurrency/-kill-min/-kill-max")
		return 2
	}

	f, err := os.Open(*inPath)
	if err != nil {
		fmt.Fprintln(stderr, "kchaos:", err)
		return 1
	}
	tbl, err := table.ReadCSV("chaos", f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "kchaos:", err)
		return 1
	}
	payload, err := json.Marshal(jobs.SubmitRequest{
		Table:  jobs.TableDoc{Name: tbl.Name, Columns: tbl.Columns, Rows: tbl.Rows},
		Params: jobs.Params{Shards: *shards},
	})
	if err != nil {
		fmt.Fprintln(stderr, "kchaos:", err)
		return 1
	}
	// The append delta: the table's first rows re-posted onto a finished
	// root job. Duplicate rows are fine — the contract under test is crash
	// durability of the chain, not cleaning novelty.
	deltaN := tbl.NumRows()
	if deltaN > 8 {
		deltaN = 8
	}
	appendPayload, err := json.Marshal(jobs.AppendRequest{Rows: tbl.Rows[:deltaN]})
	if err != nil {
		fmt.Fprintln(stderr, "kchaos:", err)
		return 1
	}

	work, err := os.MkdirTemp("", "kchaos-*")
	if err != nil {
		fmt.Fprintln(stderr, "kchaos:", err)
		return 1
	}
	keepWork := false
	defer func() {
		if !keepWork {
			os.RemoveAll(work)
		}
	}()
	dir := *journalDir
	if dir == "" {
		dir = filepath.Join(work, "journal")
	}

	h := &harness{
		bin: *bin, kb: *kbPath, addr: *addr, base: "http://" + *addr,
		logDir:   work,
		client:   &http.Client{Timeout: 10 * time.Second},
		stdout:   stdout,
		stderr:   stderr,
		deadline: time.Now().Add(*timeout),
	}

	// Phase 1 — the crash-free oracle: one uninterrupted boot (separate
	// journal dir), one root job plus one append, their report bytes are the
	// truth every chaos job and chain must reproduce.
	oracle, appendOracle, code := h.oracleRun(filepath.Join(work, "oracle-journal"), payload, appendPayload)
	if code != 0 {
		return code
	}
	fmt.Fprintf(stdout, "kchaos: oracle reports captured (root %d bytes, append %d bytes)\n", len(oracle), len(appendOracle))

	// Phase 2 — the chaos run.
	if code := h.chaosRun(dir, payload, appendPayload, oracle, appendOracle, *nJobs, *kills, *appends, *seed, *concurrency, *killMin, *killMax, *scrape); code != 0 {
		fmt.Fprintf(stderr, "kchaos: FAIL (daemon logs under %s)\n", work)
		keepWork = true // the scene of the crime
		return code
	}
	fmt.Fprintf(stdout, "kchaos: PASS — %d jobs, %d append chains, %d kills, zero lost, all byte-identical to oracle\n", *nJobs, *appends, *kills)
	return 0
}

// harness holds everything shared across boots of the daemon under test.
type harness struct {
	bin, kb, addr, base string
	logDir              string
	client              *http.Client
	stdout, stderr      *os.File
	deadline            time.Time

	boot int // boot counter, names the per-boot log files
}

func (h *harness) fail(format string, args ...any) {
	fmt.Fprintf(h.stderr, "kchaos: FAIL: "+format+"\n", args...)
}

// start boots one katarad process on the shared address and waits for
// /healthz. The returned Cmd is running; kill it with SIGKILL or SIGTERM.
func (h *harness) start(journalDir string) (*exec.Cmd, error) {
	h.boot++
	logF, err := os.Create(filepath.Join(h.logDir, fmt.Sprintf("katarad-boot%d.log", h.boot)))
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(h.bin, "-kb", h.kb, "-listen", h.addr, "-journal-dir", journalDir)
	cmd.Stdout = logF
	cmd.Stderr = logF
	if err := cmd.Start(); err != nil {
		logF.Close()
		return nil, err
	}
	// The file can close once the process owns the descriptors.
	logF.Close()
	for i := 0; i < 600; i++ {
		resp, err := h.client.Get(h.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return cmd, nil
			}
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	return nil, fmt.Errorf("boot %d: katarad never became healthy", h.boot)
}

// oracleRun boots an uninterrupted daemon, runs one root job and one append
// onto it, and returns both report byte strings.
func (h *harness) oracleRun(journalDir string, payload, appendPayload []byte) ([]byte, []byte, int) {
	cmd, err := h.start(journalDir)
	if err != nil {
		h.fail("oracle: %v", err)
		return nil, nil, 1
	}
	defer func() {
		_ = cmd.Process.Signal(os.Interrupt)
		_ = cmd.Wait()
	}()
	id, err := h.submit(payload, nil)
	if err != nil {
		h.fail("oracle submit: %v", err)
		return nil, nil, 1
	}
	rep, state, err := h.awaitResult(id)
	if err != nil {
		h.fail("oracle job %s: %v", id, err)
		return nil, nil, 1
	}
	if state != jobs.StateDone {
		h.fail("oracle job %s ended %s", id, state)
		return nil, nil, 1
	}
	appID, err := h.appendJob(id, appendPayload, nil)
	if err != nil {
		h.fail("oracle append: %v", err)
		return nil, nil, 1
	}
	appRep, state, err := h.awaitResult(appID)
	if err != nil {
		h.fail("oracle append job %s: %v", appID, err)
		return nil, nil, 1
	}
	if state != jobs.StateDone {
		h.fail("oracle append job %s ended %s", appID, state)
		return nil, nil, 1
	}
	return rep, appRep, 0
}

// submit POSTs one job until it is accepted, tolerating connection errors
// (daemon mid-restart), 429 (queue full) and 503 (draining). accepted, when
// non-nil, counts 202 responses.
func (h *harness) submit(payload []byte, accepted *atomic.Int64) (string, error) {
	backoff := 2 * time.Millisecond
	for {
		if time.Now().After(h.deadline) {
			return "", fmt.Errorf("not accepted by deadline")
		}
		resp, err := h.client.Post(h.base+"/jobs", "application/json", bytes.NewReader(payload))
		if err != nil {
			// The daemon is down between kill and restart: retry.
			time.Sleep(backoff)
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			time.Sleep(backoff)
			continue
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var sub jobs.SubmitResponse
			if err := json.Unmarshal(body, &sub); err != nil {
				return "", fmt.Errorf("submit response: %w", err)
			}
			if accepted != nil {
				accepted.Add(1)
			}
			return sub.ID, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
		default:
			return "", fmt.Errorf("submit: status %d: %s", resp.StatusCode, body)
		}
	}
}

// appendJob POSTs an append onto parent until it is accepted, tolerating
// connection errors, 429/503 backpressure and 409 conflicts. A 409 is
// ambiguous under crash chaos: either the parent is (re-)running — a replayed
// boot re-executes terminal-looking jobs that were mid-flight — or our own
// earlier attempt was journalled but its ack was lost to a kill, in which
// case the parent is already extended and the child exists under an ID we
// never saw. The listing disambiguates: a job whose Parent is ours IS our
// append (each parent is extended at most once, by us), so adopt its ID.
func (h *harness) appendJob(parent string, payload []byte, accepted *atomic.Int64) (string, error) {
	backoff := 2 * time.Millisecond
	for {
		if time.Now().After(h.deadline) {
			return "", fmt.Errorf("append on %s not accepted by deadline", parent)
		}
		resp, err := h.client.Post(h.base+"/jobs/"+parent+"/append", "application/json", bytes.NewReader(payload))
		if err != nil {
			time.Sleep(backoff)
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			time.Sleep(backoff)
			continue
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var sub jobs.SubmitResponse
			if err := json.Unmarshal(body, &sub); err != nil {
				return "", fmt.Errorf("append response: %w", err)
			}
			if accepted != nil {
				accepted.Add(1)
			}
			return sub.ID, nil
		case http.StatusConflict:
			if id := h.childOf(parent); id != "" {
				if accepted != nil {
					accepted.Add(1)
				}
				return id, nil
			}
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
		case http.StatusNotFound:
			// THE cardinal sin again: a done parent the daemon forgot.
			return "", fmt.Errorf("append parent %s lost (404)", parent)
		default:
			return "", fmt.Errorf("append: status %d: %s", resp.StatusCode, body)
		}
	}
}

// childOf returns the ID of the job extending parent, if the listing shows
// one ("" otherwise, including while the daemon is unreachable).
func (h *harness) childOf(parent string) string {
	resp, err := h.client.Get(h.base + "/jobs")
	if err != nil {
		return ""
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != 200 {
		return ""
	}
	var list []jobs.JobStatus
	if err := json.Unmarshal(body, &list); err != nil {
		return ""
	}
	for _, st := range list {
		if st.Parent == parent {
			return st.ID
		}
	}
	return ""
}

// awaitResult polls one job's result to a terminal state, tolerating
// connection errors and restarts, and returns the report bytes + state.
func (h *harness) awaitResult(id string) ([]byte, jobs.State, error) {
	for {
		if time.Now().After(h.deadline) {
			return nil, "", fmt.Errorf("not terminal by deadline")
		}
		resp, err := h.client.Get(h.base + "/jobs/" + id + "/result")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var res jobs.ResultDoc
			if err := json.Unmarshal(body, &res); err != nil {
				return nil, "", fmt.Errorf("result: %w", err)
			}
			if res.State != jobs.StateDone {
				return nil, res.State, fmt.Errorf("terminal state %s (error: %s)", res.State, res.Error)
			}
			rep, err := json.Marshal(res.Report)
			if err != nil {
				return nil, "", err
			}
			return rep, res.State, nil
		case http.StatusConflict:
			time.Sleep(10 * time.Millisecond)
		case http.StatusNotFound:
			// THE cardinal sin: an accepted job the daemon no longer knows.
			return nil, "", fmt.Errorf("accepted job lost after restart (404)")
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// awaitBacklog polls the job listing until every ID in backlog is terminal
// — the post-restart barrier that bounds each job's exposure to one crash.
func (h *harness) awaitBacklog(backlog []string) error {
	for {
		if time.Now().After(h.deadline) {
			return fmt.Errorf("backlog of %d jobs not terminal by deadline", len(backlog))
		}
		resp, err := h.client.Get(h.base + "/jobs")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != 200 {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		var list []jobs.JobStatus
		if err := json.Unmarshal(body, &list); err != nil {
			return fmt.Errorf("job listing: %w", err)
		}
		state := make(map[string]jobs.State, len(list))
		for _, st := range list {
			state[st.ID] = st.State
		}
		settled := true
		for _, id := range backlog {
			s, ok := state[id]
			if !ok {
				return fmt.Errorf("accepted job %s missing from listing after restart", id)
			}
			if !s.Terminal() {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosRun is phase 2: a submission burst and append chains racing a seeded
// kill/restart schedule, followed by convergence and the full assertion
// sweep.
func (h *harness) chaosRun(journalDir string, payload, appendPayload, oracle, appendOracle []byte, nJobs, kills, appends int, seed int64, concurrency int, killMin, killMax, scrapeEvery time.Duration) int {
	cmd, err := h.start(journalDir)
	if err != nil {
		h.fail("%v", err)
		return 1
	}
	// bootGen fences scrapes: it is bumped immediately before each SIGKILL,
	// so any scrape observing the same generation before and after its
	// request was answered entirely by one boot and must be monotone
	// against that boot's history.
	var bootGen atomic.Int64
	var accepted atomic.Int64
	var violations atomic.Int64

	// Scraper: lint every successful sample; check monotonicity per boot.
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		prevByGen := map[int64]map[string]float64{}
		clean, discarded := 0, 0
		for {
			select {
			case <-stopScrape:
				fmt.Fprintf(h.stdout, "kchaos: %d clean scrapes across boots (%d spanning a kill, discarded)\n", clean, discarded)
				return
			case <-time.After(scrapeEvery):
			}
			genBefore := bootGen.Load()
			resp, err := h.client.Get(h.base + "/metrics")
			if err != nil {
				continue // daemon mid-restart
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil || resp.StatusCode != 200 {
				continue
			}
			if err := telemetry.LintExposition(bytes.NewReader(body)); err != nil {
				violations.Add(1)
				h.fail("scrape not lint-clean: %v", err)
				return
			}
			if bootGen.Load() != genBefore {
				discarded++ // spanned a kill; monotonicity undefined
				continue
			}
			prev := prevByGen[genBefore]
			if prev == nil {
				prev = map[string]float64{}
				prevByGen[genBefore] = prev
			}
			if err := telemetry.CheckMonotone(prev, body); err != nil {
				violations.Add(1)
				h.fail("boot gen %d: %v", genBefore, err)
				return
			}
			clean++
		}
	}()

	// Submitter pool: keep submitting until nJobs are accepted; every
	// accepted ID is recorded for the assertion sweep. Appended jobs are
	// additionally tracked in appendSet: their reports compare against the
	// append oracle, not the root oracle.
	var (
		mu        sync.Mutex
		ids       []string
		appendSet = map[string]bool{}
	)
	submitDone := make(chan struct{})
	go func() {
		defer close(submitDone)
		sem := make(chan struct{}, concurrency)
		var wg sync.WaitGroup
		for i := 0; i < nJobs; i++ {
			sem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				id, err := h.submit(payload, &accepted)
				if err != nil {
					violations.Add(1)
					h.fail("submit: %v", err)
					return
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
			}()
		}
		wg.Wait()
	}()

	// Appender: root+append chains interleaved with the burst, so kills land
	// between a chain's acceptance, its root's completion, its append record
	// and the append's execution — every window the journal must cover.
	appendDone := make(chan struct{})
	go func() {
		defer close(appendDone)
		for i := 0; i < appends; i++ {
			root, err := h.submit(payload, &accepted)
			if err != nil {
				violations.Add(1)
				h.fail("append chain %d: root submit: %v", i, err)
				return
			}
			mu.Lock()
			ids = append(ids, root)
			mu.Unlock()
			if _, _, err := h.awaitResult(root); err != nil {
				violations.Add(1)
				h.fail("append chain %d: root %s: %v", i, root, err)
				return
			}
			child, err := h.appendJob(root, appendPayload, &accepted)
			if err != nil {
				violations.Add(1)
				h.fail("append chain %d: %v", i, err)
				return
			}
			mu.Lock()
			ids = append(ids, child)
			appendSet[child] = true
			mu.Unlock()
		}
	}()

	// The seeded kill schedule: SIGKILL (no warning, no drain) and restart
	// on the same journal, kills times. After each restart the loop waits
	// for every job accepted before the kill to reach a terminal state
	// before arming the next kill: that bounds any job's exposure to one
	// crash, so crash chaos never trips the (correct, separately-tested)
	// two-crash poison quarantine — while the submitter keeps the burst
	// going, so later kills still land mid-load.
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < kills; k++ {
		delay := killMin + time.Duration(rng.Int63n(int64(killMax-killMin)+1))
		time.Sleep(delay)
		bootGen.Add(1)
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		mu.Lock()
		backlog := append([]string(nil), ids...)
		mu.Unlock()
		fmt.Fprintf(h.stdout, "kchaos: kill %d after %s (accepted so far: %d)\n", k+1, delay.Round(time.Millisecond), accepted.Load())
		cmd, err = h.start(journalDir)
		if err != nil {
			h.fail("restart after kill %d: %v", k+1, err)
			return 1
		}
		if err := h.awaitBacklog(backlog); err != nil {
			h.fail("after kill %d: %v", k+1, err)
			return 1
		}
	}

	<-submitDone
	<-appendDone

	// Convergence + assertions: every accepted job must be terminal, done,
	// and byte-identical to its oracle (root or append).
	mu.Lock()
	all := append([]string(nil), ids...)
	mu.Unlock()
	for _, id := range all {
		rep, state, err := h.awaitResult(id)
		if err != nil {
			violations.Add(1)
			h.fail("job %s: %v", id, err)
			continue
		}
		if state != jobs.StateDone {
			violations.Add(1)
			h.fail("job %s: terminal state %s, want done", id, state)
			continue
		}
		want := oracle
		if appendSet[id] {
			want = appendOracle
		}
		if !bytes.Equal(rep, want) {
			violations.Add(1)
			h.fail("job %s: report differs from crash-free oracle", id)
		}
	}

	close(stopScrape)
	<-scrapeDone

	// Graceful teardown of the final boot: SIGTERM must drain and exit 0.
	_ = cmd.Process.Signal(os.Interrupt) // queue is empty; fast path is fine
	if err := cmd.Wait(); err != nil {
		violations.Add(1)
		h.fail("final shutdown: %v", err)
	}

	if violations.Load() > 0 {
		return 1
	}
	return 0
}
