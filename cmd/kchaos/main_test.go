package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture returns an *os.File run() can write to plus a closure that
// reads everything written so far. The run seams take *os.File (they are
// handed os.Stdout/os.Stderr in main), so a bytes.Buffer won't do.
func capture(t *testing.T) (*os.File, func() string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "capture-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, func() string {
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
}

// TestRunRequiresFlags: without -katarad/-kb/-in nothing may start; the
// usage error must name the missing flags and exit 2.
func TestRunRequiresFlags(t *testing.T) {
	stdout, _ := capture(t)
	stderr, errText := capture(t)
	if code := run(nil, stdout, stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errText())
	}
	if !strings.Contains(errText(), "-katarad, -kb and -in are required") {
		t.Fatalf("stderr does not name the required flags: %q", errText())
	}
}

// TestRunRejectsBadSchedule: an inverted kill window (-kill-max below
// -kill-min) and non-positive counts are usage errors, not runs.
func TestRunRejectsBadSchedule(t *testing.T) {
	for _, bad := range [][]string{
		{"-jobs", "0"},
		{"-concurrency", "0"},
		{"-kill-min", "0s"},
		{"-kill-min", "200ms", "-kill-max", "100ms"},
	} {
		args := append([]string{"-katarad", "x", "-kb", "y", "-in", "z"}, bad...)
		stdout, _ := capture(t)
		stderr, errText := capture(t)
		if code := run(args, stdout, stderr); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr %q)", bad, code, errText())
		}
		if !strings.Contains(errText(), "invalid") {
			t.Fatalf("run(%v): stderr missing validation message: %q", bad, errText())
		}
	}
}

// TestRunMissingInput: flag validation passes but the table file does not
// exist — a runtime error (exit 1), reported before any process spawns.
func TestRunMissingInput(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such.csv")
	stdout, _ := capture(t)
	stderr, errText := capture(t)
	code := run([]string{"-katarad", "x", "-kb", "y", "-in", missing}, stdout, stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr %q)", code, errText())
	}
	if !strings.Contains(errText(), "no-such.csv") {
		t.Fatalf("stderr does not name the missing file: %q", errText())
	}
}
