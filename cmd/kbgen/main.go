// Command kbgen materialises the synthetic experimental inputs to disk:
// the Yago-like and DBpedia-like knowledge bases as N-Triples, and the
// WikiTables / WebTables / RelationalTables datasets as CSV files (clean
// plus a 10%-error dirty variant of each relational table), so the CLI and
// external tools can replay the experiments.
//
// Usage:
//
//	kbgen -out ./data [-seed 2015] [-scale 0.2] [-size default]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

func main() {
	var (
		outDir = flag.String("out", "data", "output directory")
		seed   = flag.Int64("seed", 2015, "master random seed")
		scale  = flag.Float64("scale", 0.2, "RelationalTables scale factor")
		size   = flag.String("size", "default", "world size: small|default|large")
	)
	flag.Parse()

	var wcfg world.Config
	switch *size {
	case "small":
		wcfg = world.Config{Persons: 150, Players: 80, Clubs: 16, Universities: 40, Films: 40, Books: 40}
	case "large":
		wcfg = world.Config{Persons: 2000, Players: 800, Clubs: 120, Universities: 300, Films: 300, Books: 300}
	case "default":
	default:
		fatal(fmt.Errorf("unknown -size %q", *size))
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	w := world.New(*seed, wcfg)

	for _, kbb := range []struct {
		name string
		kb   *workload.KB
	}{
		{"yago", workload.YagoLike(w, *seed+101)},
		{"dbpedia", workload.DBpediaLike(w, *seed+102)},
	} {
		ntPath := filepath.Join(*outDir, kbb.name+".nt")
		f, err := os.Create(ntPath)
		if err != nil {
			fatal(err)
		}
		if err := kbb.kb.Store.WriteNTriples(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		// Also a binary snapshot for fast reloads (cmd/katara -kb x.snap).
		snapPath := filepath.Join(*outDir, kbb.name+".snap")
		sf, err := os.Create(snapPath)
		if err != nil {
			fatal(err)
		}
		if err := kbb.kb.Store.WriteSnapshot(sf); err != nil {
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s + %s (%d triples)\n", ntPath, snapPath, kbb.kb.Store.NumTriples())
	}

	datasets := []*workload.Dataset{
		workload.WikiTables(w, *seed+201),
		workload.WebTables(w, *seed+202),
		workload.RelationalTables(w, *seed+203, *scale),
	}
	for _, ds := range datasets {
		dir := filepath.Join(*outDir, ds.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for _, spec := range ds.Specs {
			if err := writeCSV(filepath.Join(dir, spec.Table.Name+".csv"), spec.Table); err != nil {
				fatal(err)
			}
			if ds.Name == "RelationalTables" {
				dirty := spec.Table.Clone()
				rng := rand.New(rand.NewSource(*seed + int64(len(spec.Table.Name))))
				cols := make([]int, spec.Table.NumCols())
				for i := range cols {
					cols[i] = i
				}
				injected := table.InjectErrors(dirty, cols[1:], 0.10, rng)
				if err := writeCSV(filepath.Join(dir, spec.Table.Name+".dirty.csv"), dirty); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s/%s.csv (+dirty variant, %d injected errors)\n",
					dir, spec.Table.Name, len(injected))
			}
		}
		fmt.Printf("wrote %d tables under %s\n", len(ds.Specs), dir)
	}
}

func writeCSV(path string, t *table.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kbgen:", err)
	os.Exit(1)
}
