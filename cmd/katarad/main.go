// Command katarad serves cleaning as a service: a long-running daemon that
// loads one knowledge base at startup and accepts concurrent cleaning jobs
// over HTTP/JSON. Each job cleans its submitted table against a private
// clone of the pristine KB through the sharded pipeline, with per-job
// budgets, deadlines and live progress.
//
// Usage:
//
//	katarad -kb yago.nt [-listen :8080] [-max-concurrent 4] [-max-queue 64]
//	        [-journal-dir /var/lib/katarad] [-drain-timeout 30s]
//
// Endpoints:
//
//	POST /jobs              submit {"table": {...}, "params": {...}}
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         status + live progress
//	GET  /jobs/{id}/result  final report (409 until the job finishes)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /healthz           liveness probe
//	GET  /metrics           Prometheus exposition (all jobs merged, monotone)
//
// With -journal-dir, every job transition is recorded in a crash-safe
// write-ahead log: a submission is fsynced before it is acknowledged, so an
// accepted job survives SIGKILL. A restarted daemon replays the journal —
// finished jobs stay retrievable with byte-identical results, interrupted
// jobs are re-queued, and a job seen running across two consecutive crashes
// is quarantined as failed (poisoned) instead of re-entering the crash loop.
//
// SIGTERM drains gracefully: admission stops (503 + Retry-After), running
// jobs get -drain-timeout to finish, still-queued jobs are left in the
// journal for the next boot, and the process exits 0. SIGINT shuts down
// fast: queued and running jobs are cancelled (journaled as cancelled).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"katara"
	"katara/internal/jobs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: all cleanup runs via defer, so every exit path
// tears the daemon down completely.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("katarad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kbPath        = fs.String("kb", "", "knowledge base in N-Triples (.nt), Turtle (.ttl) or snapshot (.snap) format (required)")
		listen        = fs.String("listen", ":8080", "serve the job API on this address")
		maxConcurrent = fs.Int("max-concurrent", 4, "jobs running at once")
		maxQueue      = fs.Int("max-queue", 64, "jobs waiting in the queue before submissions are rejected")
		journalDir    = fs.String("journal-dir", "", "durable job journal directory (empty: job state does not survive restarts)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM lets running jobs finish before exiting")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *kbPath == "" {
		fmt.Fprintln(stderr, "katarad: -kb is required")
		fs.Usage()
		return 2
	}
	if *maxConcurrent < 1 || *maxQueue < 1 {
		fmt.Fprintln(stderr, "katarad: -max-concurrent and -max-queue must be >= 1")
		return 2
	}

	kb := katara.NewKB()
	n, err := loadKB(kb, *kbPath)
	if err != nil {
		fmt.Fprintln(stderr, "katarad:", err)
		return 1
	}
	fmt.Fprintf(stdout, "katarad: loaded %d triples from %s\n", n, *kbPath)

	var (
		journal *jobs.Journal
		replay  *jobs.Replay
	)
	if *journalDir != "" {
		journal, replay, err = jobs.OpenJournal(*journalDir)
		if err != nil {
			fmt.Fprintln(stderr, "katarad:", err)
			return 1
		}
		defer journal.Close()
	}

	m := jobs.NewManager(jobs.Config{
		KB:            kb,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		Journal:       journal,
		Replay:        replay,
	})
	// The drain path exits without Close: cancelling queued jobs would
	// journal them terminal, and the whole point of draining is to leave
	// them re-queueable for the next boot.
	closeManager := true
	defer func() {
		if closeManager {
			m.Close()
		}
	}()
	if replay != nil {
		rs := m.Recovery()
		fmt.Fprintf(stdout,
			"katarad: journal replayed: %d finished, %d requeued, %d poisoned (boots=%d truncated=%dB)\n",
			rs.Terminal, rs.Requeued, rs.Poisoned, rs.Boots, rs.TruncatedBytes)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "katarad:", err)
		return 1
	}
	srv := &http.Server{Handler: jobs.NewHandler(m), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "katarad: serving job API on http://%s (max-concurrent=%d max-queue=%d)\n",
		ln.Addr(), *maxConcurrent, *maxQueue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		if s == syscall.SIGTERM {
			// Graceful drain: refuse new work while the API stays up, so
			// clients can keep polling results of jobs that finish.
			fmt.Fprintf(stdout, "katarad: SIGTERM, draining (timeout %s)\n", *drainTimeout)
			m.StartDraining()
			if m.Drain(*drainTimeout) {
				fmt.Fprintln(stdout, "katarad: drained: no jobs running")
			} else {
				fmt.Fprintln(stdout, "katarad: drain timeout: unfinished jobs left journaled for restart")
			}
			closeManager = false
		} else {
			fmt.Fprintf(stdout, "katarad: %s, shutting down\n", s)
		}
	case err := <-serveErr:
		fmt.Fprintln(stderr, "katarad: serve:", err)
		return 1
	}

	// Drain in-flight HTTP (so a mid-scrape /metrics completes), then tear
	// down the job pool via the deferred Close (fast path only) and sync
	// the journal via its deferred Close.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "katarad: serve:", err)
		return 1
	}
	fmt.Fprintln(stdout, "katarad: bye")
	return 0
}

// loadKB reads the KB file, picking the parser from the extension (same
// conventions as cmd/katara).
func loadKB(kb *katara.KB, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".ttl") || strings.HasSuffix(path, ".turtle"):
		return kb.ParseTurtle(f)
	case strings.HasSuffix(path, ".snap"):
		return kb.ReadSnapshot(f)
	default:
		return kb.ParseNTriples(f)
	}
}
