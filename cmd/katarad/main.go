// Command katarad serves cleaning as a service: a long-running daemon that
// loads one knowledge base at startup and accepts concurrent cleaning jobs
// over HTTP/JSON. Each job cleans its submitted table against a private
// clone of the pristine KB through the sharded pipeline, with per-job
// budgets, deadlines and live progress.
//
// Usage:
//
//	katarad -kb yago.nt [-listen :8080] [-max-concurrent 4] [-max-queue 64]
//	        [-journal-dir /var/lib/katarad] [-drain-timeout 30s]
//	        [-log-level info] [-log-json]
//
// Endpoints:
//
//	POST /jobs               submit {"table": {...}, "params": {...}}
//	GET  /jobs               list jobs
//	GET  /jobs/{id}          status + live progress
//	GET  /jobs/{id}/result   final report (409 until the job finishes)
//	GET  /jobs/{id}/progress live progress; SSE with Accept: text/event-stream
//	GET  /jobs/{id}/explain  per-cell evidence chain (?row=R&col=C)
//	POST /jobs/{id}/append   extend a done job with {"rows": [...]} — a new
//	                         job cleans the delta incrementally against the
//	                         parent's session (409 while the parent runs or
//	                         once it is extended; chains replay after crashes)
//	POST /jobs/{id}/cancel   cancel a queued or running job
//	GET  /healthz            liveness probe
//	GET  /version            build metadata (module, version, VCS revision)
//	GET  /metrics            Prometheus exposition (all jobs merged, monotone)
//
// Logs are structured (log/slog): text by default, JSON with -log-json.
// Lifecycle events go to stdout, errors to stderr; every request is logged
// with its method, path, status, duration, and — for job routes — the job
// ID and shard count.
//
// With -journal-dir, every job transition is recorded in a crash-safe
// write-ahead log: a submission is fsynced before it is acknowledged, so an
// accepted job survives SIGKILL. A restarted daemon replays the journal —
// finished jobs stay retrievable with byte-identical results, interrupted
// jobs are re-queued, and a job seen running across two consecutive crashes
// is quarantined as failed (poisoned) instead of re-entering the crash loop.
//
// SIGTERM drains gracefully: admission stops (503 + Retry-After), running
// jobs get -drain-timeout to finish, still-queued jobs are left in the
// journal for the next boot, and the process exits 0. SIGINT shuts down
// fast: queued and running jobs are cancelled (journaled as cancelled).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"katara"
	"katara/internal/jobs"
	"katara/internal/logging"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: all cleanup runs via defer, so every exit path
// tears the daemon down completely.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("katarad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kbPath        = fs.String("kb", "", "knowledge base in N-Triples (.nt), Turtle (.ttl) or snapshot (.snap) format (required)")
		listen        = fs.String("listen", ":8080", "serve the job API on this address")
		maxConcurrent = fs.Int("max-concurrent", 4, "jobs running at once")
		maxQueue      = fs.Int("max-queue", 64, "jobs waiting in the queue before submissions are rejected")
		journalDir    = fs.String("journal-dir", "", "durable job journal directory (empty: job state does not survive restarts)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM lets running jobs finish before exiting")
		logLevel      = fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logJSON       = fs.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	level, err := logging.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "katarad:", err)
		return 2
	}
	log := logging.New(stdout, stderr, level, *logJSON)
	if *kbPath == "" {
		fmt.Fprintln(stderr, "katarad: -kb is required")
		fs.Usage()
		return 2
	}
	if *maxConcurrent < 1 || *maxQueue < 1 {
		fmt.Fprintln(stderr, "katarad: -max-concurrent and -max-queue must be >= 1")
		return 2
	}

	kb := katara.NewKB()
	n, err := loadKB(kb, *kbPath)
	if err != nil {
		log.Error("knowledge base load failed", "path", *kbPath, "error", err.Error())
		return 1
	}
	log.Info("loaded knowledge base", "triples", n, "path", *kbPath)

	var (
		journal *jobs.Journal
		replay  *jobs.Replay
	)
	if *journalDir != "" {
		journal, replay, err = jobs.OpenJournal(*journalDir)
		if err != nil {
			log.Error("journal open failed", "dir", *journalDir, "error", err.Error())
			return 1
		}
		defer journal.Close()
	}

	m := jobs.NewManager(jobs.Config{
		KB:            kb,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		Journal:       journal,
		Replay:        replay,
	})
	// The drain path exits without Close: cancelling queued jobs would
	// journal them terminal, and the whole point of draining is to leave
	// them re-queueable for the next boot.
	closeManager := true
	defer func() {
		if closeManager {
			m.Close()
		}
	}()
	if replay != nil {
		rs := m.Recovery()
		log.Info("journal replayed",
			"finished", rs.Terminal, "requeued", rs.Requeued, "poisoned", rs.Poisoned,
			"boots", rs.Boots, "truncated_bytes", rs.TruncatedBytes)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Error("listen failed", "addr", *listen, "error", err.Error())
		return 1
	}
	srv := &http.Server{
		Handler:           m.LogRequests(log, jobs.NewHandler(m)),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Info("serving job API", "addr", ln.Addr().String(),
		"max_concurrent", *maxConcurrent, "max_queue", *maxQueue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		if s == syscall.SIGTERM {
			// Graceful drain: refuse new work while the API stays up, so
			// clients can keep polling results of jobs that finish.
			log.Info("SIGTERM received, draining", "timeout", drainTimeout.String())
			m.StartDraining()
			if m.Drain(*drainTimeout) {
				log.Info("drained: no jobs running")
			} else {
				log.Warn("drain timeout: unfinished jobs left journaled for restart")
			}
			closeManager = false
		} else {
			log.Info("signal received, shutting down", "signal", s.String())
		}
	case err := <-serveErr:
		log.Error("serve failed", "error", err.Error())
		return 1
	}

	// Drain in-flight HTTP (so a mid-scrape /metrics completes), then tear
	// down the job pool via the deferred Close (fast path only) and sync
	// the journal via its deferred Close.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("serve failed", "error", err.Error())
		return 1
	}
	log.Info("bye")
	return 0
}

// loadKB reads the KB file, picking the parser from the extension (same
// conventions as cmd/katara).
func loadKB(kb *katara.KB, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".ttl") || strings.HasSuffix(path, ".turtle"):
		return kb.ParseTurtle(f)
	case strings.HasSuffix(path, ".snap"):
		return kb.ReadSnapshot(f)
	default:
		return kb.ParseNTriples(f)
	}
}
