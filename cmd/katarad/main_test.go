package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture returns an *os.File run() can write to plus a closure reading
// back what was written (run takes *os.File, not io.Writer).
func capture(t *testing.T) (*os.File, func() string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "capture-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, func() string {
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
}

// TestRunRequiresKB: the daemon refuses to start without a knowledge
// base (exit 2, usage error).
func TestRunRequiresKB(t *testing.T) {
	stdout, _ := capture(t)
	stderr, errText := capture(t)
	if code := run(nil, stdout, stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errText())
	}
	if !strings.Contains(errText(), "-kb is required") {
		t.Fatalf("stderr does not name the missing flag: %q", errText())
	}
}

// TestRunRejectsBadLimits: non-positive concurrency or queue bounds are
// usage errors before anything loads.
func TestRunRejectsBadLimits(t *testing.T) {
	for _, bad := range [][]string{
		{"-max-concurrent", "0"},
		{"-max-queue", "0"},
	} {
		args := append([]string{"-kb", "x.nt"}, bad...)
		stdout, outText := capture(t)
		stderr, errText := capture(t)
		if code := run(args, stdout, stderr); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr %q)", bad, code, errText())
		}
		if strings.Contains(outText(), "loaded") {
			t.Fatalf("run(%v): KB loaded despite usage error: %q", bad, outText())
		}
	}
}

// TestRunMissingKB: a nonexistent KB file is a runtime error (exit 1),
// and the daemon never reaches the listen phase.
func TestRunMissingKB(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such.nt")
	stdout, outText := capture(t)
	stderr, errText := capture(t)
	code := run([]string{"-kb", missing}, stdout, stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr %q)", code, errText())
	}
	if !strings.Contains(errText(), "no-such.nt") {
		t.Fatalf("stderr does not name the missing file: %q", errText())
	}
	if strings.Contains(outText(), "serving") {
		t.Fatalf("daemon reached the serve phase: %q", outText())
	}
}
