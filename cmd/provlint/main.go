// Command provlint validates a decision-provenance journal (the JSONL file
// katara -provenance writes) read from stdin or a file, using the same
// strict schema checks the provenance tests run. The CI observability smoke
// job pipes a freshly written journal through it:
//
//	go run ./cmd/provlint lineage.jsonl
//
// Exit status 0 means every record parsed, the meta header carries the
// current schema version, question IDs are strictly increasing, and every
// check's question reference resolves; 1 means it did not, with the first
// violation on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"katara/internal/provenance"
)

func main() {
	flag.Parse()
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: provlint [file]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "provlint:", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}
	if err := provenance.LintJournal(in); err != nil {
		fmt.Fprintf(os.Stderr, "provlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Println("provlint: ok")
}
