package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"katara/internal/jobs"
	"katara/internal/table"
)

// TestMakeBuckets: full/half/quarter row-prefix payloads, never below one
// row, each decoding back to the same columns.
func TestMakeBuckets(t *testing.T) {
	tbl := table.New("t", "a", "b")
	for i := 0; i < 8; i++ {
		tbl.Append("x", "y")
	}
	bks, err := makeBuckets(tbl, jobs.Params{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(bks) != 3 {
		t.Fatalf("got %d buckets, want 3", len(bks))
	}
	for i, want := range []int{8, 4, 2} {
		if bks[i].rows != want {
			t.Fatalf("bucket %s rows = %d, want %d", bks[i].name, bks[i].rows, want)
		}
		var req jobs.SubmitRequest
		if err := json.Unmarshal(bks[i].payload, &req); err != nil {
			t.Fatalf("bucket %s payload: %v", bks[i].name, err)
		}
		if len(req.Table.Rows) != want || req.Params.Shards != 2 {
			t.Fatalf("bucket %s payload rows=%d shards=%d", bks[i].name, len(req.Table.Rows), req.Params.Shards)
		}
	}

	// A one-row table must not produce empty buckets.
	tiny := table.New("tiny", "a")
	tiny.Append("x")
	bks, err = makeBuckets(tiny, jobs.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bk := range bks {
		if bk.rows != 1 {
			t.Fatalf("tiny bucket %s rows = %d, want 1", bk.name, bk.rows)
		}
	}
}

// TestQuantile: nearest-rank on the sorted samples, independent of input
// order.
func TestQuantile(t *testing.T) {
	d := []time.Duration{40, 10, 30, 20} // deliberately unsorted
	if got := quantile(d, 0); got != 10 {
		t.Fatalf("p0 = %d, want 10", got)
	}
	if got := quantile(d, 0.5); got != 20 {
		t.Fatalf("p50 = %d, want 20", got)
	}
	if got := quantile(d, 1); got != 40 {
		t.Fatalf("p100 = %d, want 40", got)
	}
}

// TestSubmitJobBackpressure: 429 retries with the rejection counter bumped;
// the eventual 202 returns the ID.
func TestSubmitJobBackpressure(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(jobs.SubmitResponse{ID: "j3"})
	}))
	defer srv.Close()
	var rejections atomic.Int64
	id, err := submitJob(srv.Client(), srv.URL, []byte(`{}`), time.Now().Add(5*time.Second), &rejections)
	if err != nil {
		t.Fatalf("submitJob: %v", err)
	}
	if id != "j3" || rejections.Load() != 1 {
		t.Fatalf("id=%q rejections=%d, want j3/1", id, rejections.Load())
	}
}

// TestSubmitJobHardError: a 400 is terminal, not backpressure.
func TestSubmitJobHardError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad table", http.StatusBadRequest)
	}))
	defer srv.Close()
	var rejections atomic.Int64
	if _, err := submitJob(srv.Client(), srv.URL, []byte(`{}`), time.Now().Add(time.Second), &rejections); err == nil {
		t.Fatal("submitJob on 400 succeeded, want error")
	}
}

// TestAwaitResultPolls: 409 while running, then a done document whose
// report bytes come back.
func TestAwaitResultPolls(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusConflict)
			return
		}
		_ = json.NewEncoder(w).Encode(jobs.ResultDoc{
			ID: "j1", State: jobs.StateDone,
			Report: &jobs.ReportDoc{QuestionsAsked: 5},
		})
	}))
	defer srv.Close()
	rep, err := awaitResult(srv.Client(), srv.URL, "j1", time.Now().Add(5*time.Second))
	if err != nil {
		t.Fatalf("awaitResult: %v", err)
	}
	if len(rep) == 0 {
		t.Fatal("empty report bytes")
	}
}

// TestAwaitResultFailedJob: a terminal failed state is an error, and a 404
// is terminal too.
func TestAwaitResultFailedJob(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(jobs.ResultDoc{ID: "j1", State: jobs.StateFailed, Error: "boom"})
	}))
	defer srv.Close()
	if _, err := awaitResult(srv.Client(), srv.URL, "j1", time.Now().Add(time.Second)); err == nil {
		t.Fatal("awaitResult on failed job succeeded, want error")
	}

	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "unknown", http.StatusNotFound)
	}))
	defer gone.Close()
	if _, err := awaitResult(gone.Client(), gone.URL, "j1", time.Now().Add(time.Second)); err == nil {
		t.Fatal("awaitResult on 404 succeeded, want error")
	}
}
