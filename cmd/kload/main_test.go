package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture returns an *os.File run() can write to plus a closure reading
// back what was written (run takes *os.File, not io.Writer).
func capture(t *testing.T) (*os.File, func() string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "capture-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, func() string {
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
}

// TestRunRequiresFlags: -addr and -in are mandatory; exit 2 with a usage
// message naming them.
func TestRunRequiresFlags(t *testing.T) {
	stdout, _ := capture(t)
	stderr, errText := capture(t)
	if code := run(nil, stdout, stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr %q)", code, errText())
	}
	if !strings.Contains(errText(), "-addr and -in are required") {
		t.Fatalf("stderr does not name the required flags: %q", errText())
	}
}

// TestRunRejectsBadParams: job parameters go through the shared
// jobs.Params validator, and burst sizing must be positive.
func TestRunRejectsBadParams(t *testing.T) {
	for _, bad := range [][]string{
		{"-shards", "-2"},
		{"-workers", "-3"},
		{"-jobs", "0"},
		{"-concurrency", "0"},
	} {
		args := append([]string{"-addr", "127.0.0.1:1", "-in", "x.csv"}, bad...)
		stdout, _ := capture(t)
		stderr, errText := capture(t)
		if code := run(args, stdout, stderr); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr %q)", bad, code, errText())
		}
	}
}

// TestRunMissingInput: a nonexistent table file is a runtime error (exit
// 1) caught before any HTTP traffic.
func TestRunMissingInput(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such.csv")
	stdout, _ := capture(t)
	stderr, errText := capture(t)
	code := run([]string{"-addr", "127.0.0.1:1", "-in", missing}, stdout, stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr %q)", code, errText())
	}
	if !strings.Contains(errText(), "no-such.csv") {
		t.Fatalf("stderr does not name the missing file: %q", errText())
	}
}
