// Command kload is the load driver for katarad: it hammers a running
// daemon with many concurrent cleaning jobs of the same table and verifies
// the service invariants under pressure:
//
//   - every job reaches a terminal state (queue-full rejections are
//     retried with backoff — backpressure, not failure);
//   - report documents are byte-identical within each table-size bucket
//     (any divergence between identical jobs is report corruption);
//   - /metrics stays promlint-clean on every scrape, and every cumulative
//     series (_total, _count, _sum, _bucket) is monotone non-decreasing
//     across scrapes.
//
// Usage:
//
//	kload -addr 127.0.0.1:8080 -in dirty.csv [-jobs 120] [-concurrency 100]
//	      [-shards 4] [-scrape 50ms]
//
// Jobs are spread over three table-size buckets (full, half and quarter
// row-prefixes of -in) and per-bucket p50/p95 job latency is reported, so
// one burst also shows how service latency scales with table size.
//
// Exit status 0 means the run sustained the load with all invariants
// intact; any violation prints the cause and exits 1.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"katara/internal/jobs"
	"katara/internal/table"
	"katara/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("kload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "", "katarad address, host:port (required)")
		inPath      = fs.String("in", "", "CSV table to submit (required)")
		nJobs       = fs.Int("jobs", 120, "total jobs to submit")
		concurrency = fs.Int("concurrency", 100, "jobs in flight at once")
		shards      = fs.Int("shards", 4, "shard count for each job")
		workers     = fs.Int("workers", 0, "worker pool size for each job")
		scrape      = fs.Duration("scrape", 50*time.Millisecond, "interval between /metrics scrapes")
		timeout     = fs.Duration("timeout", 5*time.Minute, "overall run deadline")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" || *inPath == "" {
		fmt.Fprintln(stderr, "kload: -addr and -in are required")
		fs.Usage()
		return 2
	}
	if err := (jobs.Params{Workers: *workers, Shards: *shards}).Validate(); err != nil {
		fmt.Fprintln(stderr, "kload:", err)
		return 2
	}
	if *nJobs < 1 || *concurrency < 1 {
		fmt.Fprintln(stderr, "kload: -jobs and -concurrency must be >= 1")
		return 2
	}

	f, err := os.Open(*inPath)
	if err != nil {
		fmt.Fprintln(stderr, "kload:", err)
		return 1
	}
	tbl, err := table.ReadCSV("load", f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "kload:", err)
		return 1
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}
	// Jobs are spread round-robin over table-size buckets — the full table
	// plus half and quarter row-prefixes — so one burst measures how job
	// latency scales with table size. Reports are byte-compared within each
	// bucket (different sizes legitimately produce different reports).
	buckets, err := makeBuckets(tbl, jobs.Params{Shards: *shards, Workers: *workers})
	if err != nil {
		fmt.Fprintln(stderr, "kload:", err)
		return 1
	}

	start := time.Now()
	deadline := start.Add(*timeout)
	var (
		inFlight, peak atomic.Int64
		rejections     atomic.Int64
		violations     atomic.Int64
		mu             sync.Mutex
	)
	fail := func(format string, args ...any) {
		violations.Add(1)
		fmt.Fprintf(stderr, "kload: FAIL: "+format+"\n", args...)
	}

	// Scraper: lint + monotonicity on every /metrics sample.
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		prev := map[string]float64{}
		scrapes := 0
		for {
			select {
			case <-stopScrape:
				fmt.Fprintf(stdout, "kload: %d /metrics scrapes, all lint-clean and monotone\n", scrapes)
				return
			case <-time.After(*scrape):
			}
			resp, err := client.Get(base + "/metrics")
			if err != nil {
				fail("scrape: %v", err)
				return
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil || resp.StatusCode != 200 {
				fail("scrape: status %d err %v", resp.StatusCode, rerr)
				return
			}
			if err := telemetry.LintExposition(bytes.NewReader(body)); err != nil {
				fail("scrape not lint-clean: %v", err)
				return
			}
			if err := telemetry.CheckMonotone(prev, body); err != nil {
				fail("%v", err)
				return
			}
			scrapes++
		}
	}()

	// Submit -jobs jobs, -concurrency at a time; each goroutine polls its
	// job to completion and byte-compares the report document.
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	for i := 0; i < *nJobs; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				if p := peak.Load(); cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			bk := buckets[i%len(buckets)]

			jobStart := time.Now()
			id, err := submitJob(client, base, bk.payload, deadline, &rejections)
			if err != nil {
				fail("job %d: %v", i, err)
				return
			}
			doc, err := awaitResult(client, base, id, deadline)
			if err != nil {
				fail("job %d (%s): %v", i, id, err)
				return
			}
			latency := time.Since(jobStart)
			mu.Lock()
			defer mu.Unlock()
			bk.latencies = append(bk.latencies, latency)
			if bk.reference == nil {
				bk.reference, bk.referenceFromID = doc, id
			} else if !bytes.Equal(bk.reference, doc) {
				fail("job %d (%s): report differs from %s — corruption", i, id, bk.referenceFromID)
			}
		}(i)
	}
	wg.Wait()
	close(stopScrape)
	<-scrapeDone

	fmt.Fprintf(stdout, "kload: %d jobs in %.2fs, peak in-flight %d, %d queue-full retries\n",
		*nJobs, time.Since(start).Seconds(), peak.Load(), rejections.Load())
	for _, bk := range buckets {
		if len(bk.latencies) == 0 {
			continue
		}
		fmt.Fprintf(stdout, "kload: bucket %-7s (%d rows): %d jobs, latency p50=%s p95=%s\n",
			bk.name, bk.rows, len(bk.latencies),
			quantile(bk.latencies, 0.50).Round(time.Millisecond),
			quantile(bk.latencies, 0.95).Round(time.Millisecond))
	}
	if violations.Load() > 0 {
		fmt.Fprintf(stderr, "kload: FAIL (%d violations)\n", violations.Load())
		return 1
	}
	fmt.Fprintln(stdout, "kload: PASS — zero report corruption, metrics clean")
	return 0
}

// bucket is one table-size class of the burst: a row-prefix payload with its
// own reference report and latency samples.
type bucket struct {
	name            string
	rows            int
	payload         []byte
	latencies       []time.Duration
	reference       []byte
	referenceFromID string
}

// makeBuckets builds the full/half/quarter row-prefix payloads. Prefixes
// (not samples) keep each bucket deterministic; tiny tables may collapse to
// equal sizes, which is harmless — buckets are still compared independently.
func makeBuckets(tbl *table.Table, params jobs.Params) ([]*bucket, error) {
	sizes := []struct {
		name string
		div  int
	}{{"full", 1}, {"half", 2}, {"quarter", 4}}
	out := make([]*bucket, 0, len(sizes))
	for _, s := range sizes {
		n := len(tbl.Rows) / s.div
		if n < 1 {
			n = 1
		}
		payload, err := json.Marshal(jobs.SubmitRequest{
			Table:  jobs.TableDoc{Name: tbl.Name, Columns: tbl.Columns, Rows: tbl.Rows[:n]},
			Params: params,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, &bucket{name: s.name, rows: n, payload: payload})
	}
	return out, nil
}

// quantile returns the q-th latency quantile (nearest-rank on the sorted
// samples). The caller owns the slice; sorting in place is fine post-burst.
func quantile(d []time.Duration, q float64) time.Duration {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	idx := int(q * float64(len(d)-1))
	return d[idx]
}

// submitJob POSTs the job, retrying 429 (queue full) with backoff until
// deadline.
func submitJob(client *http.Client, base string, payload []byte, deadline time.Time, rejections *atomic.Int64) (string, error) {
	backoff := 2 * time.Millisecond
	for {
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(payload))
		if err != nil {
			return "", err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return "", rerr
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var sub jobs.SubmitResponse
			if err := json.Unmarshal(body, &sub); err != nil {
				return "", fmt.Errorf("submit response: %w", err)
			}
			return sub.ID, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// 429 = queue full, 503 = draining for restart; both are
			// backpressure (the daemon says so with Retry-After), so retry
			// with backoff until the deadline.
			rejections.Add(1)
			if time.Now().After(deadline) {
				return "", fmt.Errorf("status %d past deadline", resp.StatusCode)
			}
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
		default:
			return "", fmt.Errorf("submit: status %d: %s", resp.StatusCode, body)
		}
	}
}

// awaitResult polls /jobs/{id}/result until 200 and returns the
// deterministic report sub-document bytes.
func awaitResult(client *http.Client, base, id string, deadline time.Time) ([]byte, error) {
	for {
		resp, err := client.Get(base + "/jobs/" + id + "/result")
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var res jobs.ResultDoc
			if err := json.Unmarshal(body, &res); err != nil {
				return nil, fmt.Errorf("result: %w", err)
			}
			if res.State != jobs.StateDone {
				return nil, fmt.Errorf("terminal state %s", res.State)
			}
			return json.Marshal(res.Report)
		case http.StatusConflict:
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("not finished by deadline")
			}
			time.Sleep(5 * time.Millisecond)
		default:
			return nil, fmt.Errorf("result: status %d: %s", resp.StatusCode, body)
		}
	}
}
