package katara

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

// shardFixture builds a fresh dirty table plus a factory producing an
// identically-configured Cleaner over a pristine KB clone — sharded-vs-
// unsharded comparisons must not share mutable state (enrichment writes to
// the KB, the crowd RNG advances) across runs.
func shardFixture(t *testing.T, rows int) (*Table, func(opts Options) *Cleaner) {
	t.Helper()
	const seed = 77
	w := world.New(seed, world.Config{
		Persons: 300, Players: 120, Clubs: 24, Universities: 80, Films: 40, Books: 40,
	})
	kb := workload.DBpediaLike(w, seed)
	spec := workload.PersonTable(w, seed, rows)
	dirty := spec.Table.Clone()
	rng := rand.New(rand.NewSource(seed))
	if injected := table.InjectErrors(dirty, []int{1, 2, 3}, 0.10, rng); len(injected) == 0 {
		t.Fatal("no errors injected")
	}
	newCleaner := func(opts Options) *Cleaner {
		fresh := kb.Clone()
		opts.ValidationOracle = workload.SpecOracle{Spec: spec, KB: fresh}
		opts.FactOracle = workload.WorldOracle{W: w, KB: fresh}
		if opts.RepairK == 0 {
			opts.RepairK = 3
		}
		return NewCleaner(fresh.Store, NewCrowd(10, 0.97, seed), opts)
	}
	return dirty, newCleaner
}

// stripTimings drops the wall-clock-bearing snapshot so reports can be
// compared structurally; everything else in a Report is deterministic.
func stripTimings(r *Report) *Report {
	cp := *r
	cp.Timings = nil
	return &cp
}

// TestShardedMatchesUnsharded is the root-level `sharded(T, N) ≡
// unsharded(T)` invariant: for every shard count the full report — pattern,
// annotations, enrichment facts, repairs, crowd accounting, degradation
// flags — is identical. (The propcheck harness re-proves this byte-for-byte
// on canonical serializations; this test keeps the property one `go test ./`
// away.)
func TestShardedMatchesUnsharded(t *testing.T) {
	dirty, newCleaner := shardFixture(t, 400)
	base, err := newCleaner(Options{}).Clean(dirty)
	if err != nil {
		t.Fatal(err)
	}
	want := stripTimings(base)
	if len(want.Repairs) == 0 {
		t.Fatal("fixture produced no repairs; the invariant would be vacuous")
	}
	for _, shards := range []int{1, 2, 3, 4, runtime.GOMAXPROCS(0), 97} {
		got, err := newCleaner(Options{Telemetry: true}).CleanSharded(dirty, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.Timings == nil {
			t.Fatalf("shards=%d: Telemetry option lost in sharded path", shards)
		}
		var kbLookups int64
		for _, c := range got.Timings.Counters {
			if c.Name == "kb-lookups" {
				kbLookups = c.Value
			}
		}
		if kbLookups == 0 {
			t.Fatalf("shards=%d: shard telemetry not merged, kb-lookups = 0", shards)
		}
		if !reflect.DeepEqual(stripTimings(got), want) {
			t.Errorf("shards=%d: report differs from unsharded run", shards)
		}
	}
}

// TestShardsOptionWired: Options.Shards drives CleanContext the same way an
// explicit CleanSharded count does, and negative means GOMAXPROCS.
func TestShardsOptionWired(t *testing.T) {
	dirty, newCleaner := shardFixture(t, 200)
	want, err := newCleaner(Options{}).Clean(dirty)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{4, -1} {
		got, err := newCleaner(Options{Shards: shards}).Clean(dirty)
		if err != nil {
			t.Fatalf("Shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(stripTimings(got), stripTimings(want)) {
			t.Errorf("Shards=%d: report differs from unsharded run", shards)
		}
	}
}

// TestShardedDeadlineDegrades: the sharded path honours the same graceful-
// degradation contract as the serial one — an immediately-expired deadline
// still yields a report, with repairs skipped and the degradation flagged.
func TestShardedDeadlineDegrades(t *testing.T) {
	dirty, newCleaner := shardFixture(t, 200)
	rep, err := newCleaner(Options{Deadline: time.Nanosecond, Shards: 4}).Clean(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded.RepairsSkipped {
		t.Error("expired deadline did not flag RepairsSkipped in sharded run")
	}
	if len(rep.Repairs) != 0 {
		t.Errorf("expired deadline still produced %d repairs", len(rep.Repairs))
	}
	if len(rep.Annotations) != dirty.NumRows() {
		t.Errorf("degraded run annotated %d/%d tuples", len(rep.Annotations), dirty.NumRows())
	}
}

// TestShardRanges checks the row partitioner: full cover, contiguity,
// near-equal balance, and sane clamping at the edges.
func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, shards, want int
	}{
		{10, 3, 3}, {10, 1, 1}, {10, 10, 10}, {3, 8, 3},
		{1, 4, 1}, {10, 0, 1}, {10, -2, 1}, {1000, 7, 7},
	}
	for _, c := range cases {
		ranges := shardRanges(c.n, c.shards)
		if len(ranges) != c.want {
			t.Errorf("shardRanges(%d, %d) = %d ranges, want %d", c.n, c.shards, len(ranges), c.want)
			continue
		}
		lo := 0
		for _, rg := range ranges {
			if rg.Lo != lo || rg.Hi <= rg.Lo {
				t.Fatalf("shardRanges(%d, %d): bad range %+v at lo=%d", c.n, c.shards, rg, lo)
			}
			lo = rg.Hi
		}
		if lo != c.n {
			t.Errorf("shardRanges(%d, %d) covers %d rows", c.n, c.shards, lo)
		}
		min, max := c.n, 0
		for _, rg := range ranges {
			if s := rg.Hi - rg.Lo; s < min {
				min = s
			} else if s > max {
				max = s
			}
		}
		if max > 0 && max-min > 1 {
			t.Errorf("shardRanges(%d, %d): imbalance min=%d max=%d", c.n, c.shards, min, max)
		}
	}
}

// TestShardedPersonScale pushes a sharded clean over a table an order of
// magnitude beyond the default workload — the single-machine stand-in for
// the paper's 316K-row Person run that originally needed a 30-machine
// cluster. Skipped under -short.
func TestShardedPersonScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large sharded run skipped with -short")
	}
	dirty, newCleaner := shardFixture(t, 20000)
	rep, err := newCleaner(Options{Workers: runtime.GOMAXPROCS(0)}).
		CleanSharded(dirty, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Annotations) != dirty.NumRows() {
		t.Fatalf("annotated %d/%d tuples", len(rep.Annotations), dirty.NumRows())
	}
	if len(rep.Repairs) == 0 {
		t.Fatal("no repairs at scale")
	}
}
