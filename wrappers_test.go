package katara

import (
	"testing"

	"katara/internal/telemetry"
)

// TestPublicConstructors: the re-exported constructors on the package
// surface hand back live objects wired for Options.
func TestPublicConstructors(t *testing.T) {
	b := NewBudget(3, 0)
	if b == nil {
		t.Fatal("NewBudget returned nil")
	}
	if tel := NewTelemetry(); tel == nil {
		t.Fatal("NewTelemetry returned nil")
	}

	// The nil-oracle trusting policy accepts everything — the documented
	// "missing facts are KB incompleteness" default.
	var tf trustingFacts
	if !tf.TypeHolds("x", 0) || !tf.RelHolds("x", 0, "y") || !tf.PathHolds("x", nil, "y") {
		t.Fatal("trustingFacts rejected a fact")
	}
}

// TestSetPipelineRedirects: SetPipeline points subsequent runs at a new
// pipeline — the seam the job layer uses to give each increment of a
// retained session its own job's instrumentation.
func TestSetPipelineRedirects(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{FactOracle: fig1Oracle{kb}})

	p1 := NewTelemetry()
	c.SetPipeline(p1)
	if _, err := c.Clean(tbl); err != nil {
		t.Fatal(err)
	}
	if p1.Get(telemetry.TuplesAnnotated) == 0 {
		t.Fatal("first pipeline saw no annotation work")
	}

	p2 := NewTelemetry()
	c.SetPipeline(p2)
	before := p1.Get(telemetry.TuplesAnnotated)
	if _, err := c.Clean(tbl); err != nil {
		t.Fatal(err)
	}
	if p2.Get(telemetry.TuplesAnnotated) == 0 {
		t.Fatal("second pipeline saw no annotation work after SetPipeline")
	}
	if p1.Get(telemetry.TuplesAnnotated) != before {
		t.Fatal("detached pipeline kept receiving counts")
	}

	c.SetPipeline(nil) // detaching must not break the next run
	if _, err := c.Clean(tbl); err != nil {
		t.Fatal(err)
	}
}

// TestAnnotateOneShot: the public one-shot Annotate labels every tuple
// against a validated pattern, matching what Clean reports.
func TestAnnotateOneShot(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{FactOracle: fig1Oracle{kb}})
	pats := c.DiscoverPatterns(tbl)
	if len(pats) == 0 {
		t.Fatal("no patterns discovered")
	}
	res := c.Annotate(tbl, pats[0])
	if len(res.Tuples) != tbl.NumRows() {
		t.Fatalf("annotated %d tuples, want %d", len(res.Tuples), tbl.NumRows())
	}
}
