package katara_test

import (
	"fmt"

	"katara"
	"katara/internal/rdf"
)

// buildFig2KB assembles the Fig. 2 KB fragment used across the examples:
// soccer players, countries and capitals, with S. Africa's capital fact
// deliberately missing.
func buildFig2KB() *katara.KB {
	kb := katara.NewKB()
	add := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)) }
	lit := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.Lit(o)) }
	for _, e := range []struct{ iri, typ, label string }{
		{"y:Rossi", "person", "Rossi"},
		{"y:Klate", "person", "Klate"},
		{"y:Pirlo", "person", "Pirlo"},
		{"y:Italy", "country", "Italy"},
		{"y:SAfrica", "country", "S. Africa"},
		{"y:Spain", "country", "Spain"},
		{"y:Rome", "capital", "Rome"},
		{"y:Pretoria", "capital", "Pretoria"},
		{"y:Madrid", "capital", "Madrid"},
	} {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	for _, c := range []string{"person", "country", "capital"} {
		lit(c, rdf.IRILabel, c)
	}
	for _, p := range []string{"nationality", "hasCapital"} {
		lit(p, rdf.IRILabel, p)
	}
	add("y:Italy", "hasCapital", "y:Rome")
	add("y:Spain", "hasCapital", "y:Madrid")
	add("y:Rossi", "nationality", "y:Italy")
	add("y:Klate", "nationality", "y:SAfrica")
	add("y:Pirlo", "nationality", "y:Italy")
	return kb
}

// worldTruth answers the crowd's questions from the real world.
type worldTruth struct{ kb *katara.KB }

func (o worldTruth) TypeHolds(value string, typ rdf.ID) bool { return true }
func (o worldTruth) RelHolds(subj string, prop rdf.ID, obj string) bool {
	if o.kb.LabelOf(prop) != "hasCapital" {
		return true
	}
	capitals := map[string]string{"Italy": "Rome", "Spain": "Madrid", "S. Africa": "Pretoria"}
	return capitals[subj] == obj
}

// ExampleCleaner_Clean runs the paper's Fig. 1 running example: one tuple
// validated by the KB, one confirmed by the crowd (enriching the KB), and
// one flagged erroneous with a cost-1 repair.
func ExampleCleaner_Clean() {
	kb := buildFig2KB()
	tbl := katara.NewTable("soccer", "A", "B", "C")
	tbl.Append("Rossi", "Italy", "Rome")
	tbl.Append("Klate", "S. Africa", "Pretoria")
	tbl.Append("Pirlo", "Italy", "Madrid")

	cleaner := katara.NewCleaner(kb, katara.TrustingCrowd(), katara.Options{
		FactOracle: worldTruth{kb},
	})
	report, err := cleaner.Clean(tbl)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, a := range report.Annotations {
		fmt.Printf("t%d: %s\n", a.Row+1, a.Label)
	}
	for _, f := range report.NewFacts {
		fmt.Printf("new fact: %s %s %s\n", f.Subject, kb.LabelOf(f.Prop), f.Object)
	}
	for _, ch := range report.Repairs[2][0].Changes {
		fmt.Printf("repair t3: %s -> %s\n", ch.From, ch.To)
	}
	// Output:
	// t1: validated-by-kb
	// t2: validated-by-kb-and-crowd
	// t3: erroneous
	// new fact: S. Africa hasCapital Pretoria
	// repair t3: Madrid -> Rome
}

// ExampleCleaner_DiscoverPatterns shows §4's pattern discovery on its own.
func ExampleCleaner_DiscoverPatterns() {
	kb := buildFig2KB()
	tbl := katara.NewTable("soccer", "A", "B", "C")
	tbl.Append("Rossi", "Italy", "Rome")
	tbl.Append("Klate", "S. Africa", "Pretoria")
	tbl.Append("Pirlo", "Italy", "Madrid")

	cleaner := katara.NewCleaner(kb, katara.TrustingCrowd(), katara.Options{})
	patterns := cleaner.DiscoverPatterns(tbl)
	best := patterns[0]
	fmt.Println("B is a", kb.LabelOf(best.TypeOf(1)))
	fmt.Println("C is a", kb.LabelOf(best.TypeOf(2)))
	fmt.Println("B→C via", kb.LabelOf(best.EdgeBetween(1, 2).Prop))
	// Output:
	// B is a country
	// C is a capital
	// B→C via hasCapital
}

// ExampleBestKB shows §2's KB selection: discovery score picks the KB that
// actually covers the table.
func ExampleBestKB() {
	covering := buildFig2KB()
	empty := katara.NewKB()
	tbl := katara.NewTable("t", "B", "C")
	tbl.Append("Italy", "Rome")
	tbl.Append("Spain", "Madrid")

	idx, _ := katara.BestKB(tbl, []*katara.KB{empty, covering}, katara.Options{})
	fmt.Println("selected KB:", idx)
	// Output:
	// selected KB: 1
}
