package katara

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// diffReports compares the observable outcome of two runs (everything but
// Timings, whose wall-clocks always differ).
func diffReports(t *testing.T, a, b *Report) {
	t.Helper()
	if !reflect.DeepEqual(a.Annotations, b.Annotations) {
		t.Fatalf("annotations differ:\n%+v\nvs\n%+v", a.Annotations, b.Annotations)
	}
	if !reflect.DeepEqual(a.Repairs, b.Repairs) {
		t.Fatalf("repairs differ:\n%v\nvs\n%v", a.Repairs, b.Repairs)
	}
	if !reflect.DeepEqual(a.NewFacts, b.NewFacts) {
		t.Fatalf("new facts differ:\n%v\nvs\n%v", a.NewFacts, b.NewFacts)
	}
	if !reflect.DeepEqual(a.Crowd, b.Crowd) {
		t.Fatalf("crowd stats differ: %+v vs %+v", a.Crowd, b.Crowd)
	}
	if a.QuestionsAsked != b.QuestionsAsked || a.Degraded != b.Degraded {
		t.Fatalf("report headers differ: %+v vs %+v", a, b)
	}
}

// The differential test at the heart of the fault model: a zero-rate fault
// injector (plus explicit retry/escalation policies at their defaults) must
// reproduce today's behaviour byte-for-byte, for any worker count.
func TestFaultFreeTransportByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 3, 10} {
		run := func(opts Options) *Report {
			kb, tbl := figure1()
			c := NewCleaner(kb, NewCrowd(workers, 0.9, 42), opts)
			rep, err := c.Clean(tbl)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			return rep
		}
		base := Options{FactOracle: nil}
		baseline := run(base)
		withInjector := base
		withInjector.Transport = NewFaultInjector(FaultConfig{Seed: 7})
		withInjector.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 16 * time.Millisecond}
		diffReports(t, baseline, run(withInjector))

		// CleanContext with a background context is Clean.
		kb, tbl := figure1()
		c := NewCleaner(kb, NewCrowd(workers, 0.9, 42), base)
		viaCtx, err := c.CleanContext(context.Background(), tbl)
		if err != nil {
			t.Fatal(err)
		}
		diffReports(t, baseline, viaCtx)
	}
}

// Oracle-driven differential run: fault verification answers flow through
// the injector too, so the erroneous tuple of Fig. 1 must still be found.
func TestFaultFreeTransportPreservesOracleRun(t *testing.T) {
	run := func(opts Options) *Report {
		kb, tbl := figure1()
		opts.FactOracle = fig1Oracle{kb}
		c := NewCleaner(kb, NewCrowd(10, 0.95, 5), opts)
		rep, err := c.Clean(tbl)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	baseline := run(Options{})
	injected := run(Options{Transport: NewFaultInjector(FaultConfig{Seed: 11})})
	diffReports(t, baseline, injected)
	if baseline.Annotations[2].Label != Erroneous {
		t.Fatalf("t3 = %v, want Erroneous", baseline.Annotations[2].Label)
	}
	if baseline.Degraded.Any() {
		t.Fatalf("fault-free run flagged degradation: %+v", baseline.Degraded)
	}
}

// Chaos: heavy abandonment plus latency under a finite budget and deadline
// must always terminate within the deadline, never panic, and flag every
// degraded decision in the report.
func TestChaosCleanTerminatesAndFlagsDegradation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		kb, tbl := figure1()
		opts := Options{
			FactOracle: fig1Oracle{kb},
			Transport: NewFaultInjector(FaultConfig{
				Seed:          seed,
				AbandonRate:   0.35,
				TransientRate: 0.1,
				SpamRate:      0.1,
				MinLatency:    100 * time.Microsecond,
				MaxLatency:    2 * time.Millisecond,
			}),
			Retry:    RetryPolicy{BaseBackoff: 100 * time.Microsecond, MaxBackoff: 500 * time.Microsecond},
			Escalate: EscalationPolicy{MinMargin: 0.4, MaxAssignments: 7},
			Budget:   4,
			Deadline: 2 * time.Second,
		}
		c := NewCleaner(kb, NewCrowd(8, 0.9, seed), opts)
		start := time.Now()
		rep, err := c.Clean(tbl)
		el := time.Since(start)
		if err != nil {
			t.Fatalf("seed %d: Clean failed: %v", seed, err)
		}
		if el > opts.Deadline+time.Second {
			t.Fatalf("seed %d: Clean overran the deadline: %v", seed, el)
		}
		if rep.Crowd.Questions > opts.Budget {
			t.Fatalf("seed %d: %d questions asked under a budget of %d",
				seed, rep.Crowd.Questions, opts.Budget)
		}
		// Degraded tuple accounting must match the annotations.
		degraded := 0
		for _, a := range rep.Annotations {
			if a.Degraded {
				degraded++
			}
		}
		if degraded != rep.Degraded.Tuples {
			t.Fatalf("seed %d: Degraded.Tuples = %d but %d annotations flagged",
				seed, rep.Degraded.Tuples, degraded)
		}
	}
}

// DegradeTrustKB (the default): tuples the crowd never answered are treated
// as KB incompleteness — never marked Erroneous, never minting new facts.
func TestDegradeTrustKBNeverInventsErrors(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{
		FactOracle: fig1Oracle{kb},
		Budget:     1, // one question, then the policy takes over
		Degrade:    DegradeTrustKB,
	})
	rep, err := c.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded.Tuples == 0 {
		t.Fatal("a 1-question budget should have degraded some tuples")
	}
	for _, a := range rep.Annotations {
		if a.Degraded && a.Label == Erroneous {
			t.Fatalf("row %d: degraded tuple marked Erroneous under trust-KB", a.Row)
		}
	}
	if rep.Crowd.Questions > 1 {
		t.Fatalf("budget breached: %d questions", rep.Crowd.Questions)
	}

	// With the crowd entirely unreachable (context already expired), trust-KB
	// accepts every tuple but must not mint a single unverified fact.
	kb2, tbl2 := figure1()
	c2 := NewCleaner(kb2, TrustingCrowd(), Options{
		FactOracle: fig1Oracle{kb2},
		Degrade:    DegradeTrustKB,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep2, err := c2.CleanContext(ctx, tbl2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.NewFacts) != 0 {
		t.Fatalf("unreachable crowd minted facts: %v", rep2.NewFacts)
	}
	for _, a := range rep2.Annotations {
		if a.Label == Erroneous {
			t.Fatalf("row %d: Erroneous without any crowd answer", a.Row)
		}
		if len(a.NewFacts) != 0 {
			t.Fatalf("row %d: unverified fact minted: %v", a.Row, a.NewFacts)
		}
	}
	if !rep2.Degraded.RepairsSkipped {
		t.Fatal("expired context did not skip repairs")
	}
}

// DegradeMarkUnknown: unanswered tuples get the Unknown label — neither
// trusted, enriched, nor repaired.
func TestDegradeMarkUnknownWithholdsJudgement(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{
		FactOracle: fig1Oracle{kb},
		Budget:     1,
		Degrade:    DegradeMarkUnknown,
	})
	rep, err := c.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	unknown := 0
	for _, a := range rep.Annotations {
		if a.Label != Unknown {
			continue
		}
		unknown++
		if !a.Degraded {
			t.Fatalf("row %d: Unknown label without the Degraded flag", a.Row)
		}
		if len(a.NewFacts) > 0 {
			t.Fatalf("row %d: Unknown tuple enriched the KB", a.Row)
		}
		if _, ok := rep.Repairs[a.Row]; ok {
			t.Fatalf("row %d: Unknown tuple was repaired", a.Row)
		}
	}
	if unknown == 0 {
		t.Fatal("a 1-question budget should have produced Unknown tuples")
	}
	if unknown != rep.Degraded.Tuples {
		t.Fatalf("Degraded.Tuples = %d, want %d", rep.Degraded.Tuples, unknown)
	}
}

// A deadline that expires mid-annotation must skip the repair stage and say
// so, instead of blowing through the time box.
func TestDeadlineSkipsRepairStage(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{
		FactOracle: fig1Oracle{kb},
		Transport: NewFaultInjector(FaultConfig{
			Seed: 2, MinLatency: 30 * time.Millisecond, MaxLatency: 40 * time.Millisecond,
		}),
		Deadline: 50 * time.Millisecond,
	})
	start := time.Now()
	rep, err := c.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("Clean overran a 50ms deadline by %v", el)
	}
	if !rep.Degraded.RepairsSkipped {
		t.Fatal("expired deadline did not flag RepairsSkipped")
	}
	if len(rep.Repairs) != 0 {
		t.Fatalf("repairs produced after the deadline: %v", rep.Repairs)
	}
	if !rep.Degraded.Any() {
		t.Fatal("Degraded.Any() must report the skipped repairs")
	}
}
