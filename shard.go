// Row-range sharded execution: the job/shard orchestration extracted from
// CleanContext so one machine can clean the paper's full-scale tables (§2
// clamped Person to 5K rows because 316K "needed a 30-machine cluster").
//
// The split follows the stages' data dependencies:
//
//   - pattern discovery runs ONCE over the table (its own MaxRows cap is the
//     sample the paper describes) — sharding never changes the pattern;
//   - pattern validation runs ONCE — it is crowd-serial by construction;
//   - annotation's step-1 KB coverage (§6.1) is a pure function of the
//     read-only KB and one tuple, so it fans out across N contiguous
//     row-range shards; step 2 (crowd consultation + enrichment) stays
//     serial in global row order, fed the precomputed coverage;
//   - repair index construction runs ONCE (deterministic), then per-row
//     top-k retrieval fans out across row-range shards of the erroneous
//     rows; the result map is keyed by row, so the merge is order-free.
//
// Each shard records into its own telemetry.Pipeline; the orchestrator
// merges them into the run's pipeline (counters, stage timers and the
// mergeable latency histograms) after the fan-out joins. Because everything
// the crowd, the budget accounting and KB enrichment can observe happens in
// the same serial order for every shard count, reports are byte-identical
// across shard counts — the propcheck `sharded ≡ unsharded` invariant
// (DESIGN.md §13).
package katara

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"katara/internal/annotation"
	"katara/internal/crowd"
	"katara/internal/discovery"
	"katara/internal/pattern"
	"katara/internal/provenance"
	"katara/internal/repair"
	"katara/internal/table"
	"katara/internal/telemetry"
)

// PanicError is a panic recovered from a shard goroutine, carrying the
// original goroutine's stack. The orchestrator re-raises it on the calling
// goroutine after the fan-out barrier joins — so a panic in one shard never
// leaks a goroutine or deadlocks the merge, and callers that isolate panics
// (the job server) can preserve the true origin stack instead of the
// re-raise site's.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in shard worker: %v", e.Value)
}

// ShardPanicHook is a test seam: when non-nil it runs at the top of every
// shard goroutine with the shard index, letting tests inject a panic inside
// a real shard worker. Exported because the job-server tests live in a
// package that cannot be imported from here; never set outside tests.
var ShardPanicHook func(shard int)

// runShardGuarded runs one shard's work with panic capture: the first
// panicking shard parks a *PanicError in first, the rest are dropped, and
// the goroutine returns normally so the WaitGroup barrier always joins.
func runShardGuarded(first *atomic.Pointer[PanicError], shard int, f func()) {
	defer func() {
		if r := recover(); r != nil {
			first.CompareAndSwap(nil, &PanicError{Value: r, Stack: string(debug.Stack())})
		}
	}()
	if h := ShardPanicHook; h != nil {
		h(shard)
	}
	f()
}

// rethrow re-raises a captured shard panic on the caller, after the barrier.
func rethrow(first *atomic.Pointer[PanicError]) {
	if pe := first.Load(); pe != nil {
		panic(pe)
	}
}

// CleanSharded is Clean with annotation coverage and repair retrieval fanned
// out across shards row-range shards (0 or 1 = unsharded, negative =
// GOMAXPROCS). The report is byte-identical to Clean's for every shard
// count.
func (c *Cleaner) CleanSharded(t *Table, shards int) (*Report, error) {
	return c.CleanShardedContext(context.Background(), t, shards)
}

// CleanShardedContext is CleanContext with an explicit shard count,
// overriding Options.Shards for this run.
func (c *Cleaner) CleanShardedContext(ctx context.Context, t *Table, shards int) (*Report, error) {
	return c.runClean(ctx, t, shards)
}

// runClean is the pipeline orchestrator: telemetry/budget/deadline setup,
// discover → validate → annotate → repair with the annotate/repair stages
// sharded across row ranges, and the end-of-run accounting.
func (c *Cleaner) runClean(ctx context.Context, t *Table, shards int) (*Report, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, fmt.Errorf("katara: empty table")
	}
	shards = resolveShards(shards)
	if c.opts.Incremental {
		// Snapshot the pristine KB and open a fresh session before the
		// pipeline can enrich anything; captureSession below records the
		// outcome Append/ApplyKBDelta extend.
		c.beginIncremental(t, shards)
	}
	var tel *telemetry.Pipeline
	switch {
	case c.opts.Pipeline != nil:
		tel = c.opts.Pipeline
	case c.opts.Tracer != nil:
		tel = telemetry.NewTraced(c.opts.Tracer)
	case c.opts.Telemetry:
		tel = telemetry.New()
	}
	c.crowd.SetTelemetry(tel)
	defer c.crowd.SetTelemetry(nil)
	c.resolver.SetTelemetry(tel)
	defer c.resolver.SetTelemetry(nil)
	// Evidence lineage (Options.Provenance): the recorder is reset per run
	// and attached to the crowd so every question's votes are captured.
	rec := c.opts.Provenance
	rec.Reset()
	c.crowd.SetProvenance(rec)
	defer c.crowd.SetProvenance(nil)
	if c.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Deadline)
		defer cancel()
	}
	if c.opts.Budget > 0 || c.opts.BudgetAssignments > 0 {
		c.crowd.SetBudget(crowd.NewBudget(c.opts.Budget, c.opts.BudgetAssignments))
		defer c.crowd.SetBudget(nil)
	}

	// The resolver cache outlives individual runs; diff its counters so the
	// run's snapshot reports only this run's hits and misses.
	hits0, misses0 := c.resolver.Stats()

	// Root span of the run: the stage spans (and through them every leaf
	// span) nest under it, so the journal reconstructs into one rooted tree.
	root := tel.PushSpan("clean")
	root.SetStr("table", t.Name)
	root.SetInt("rows", int64(t.NumRows()))
	root.SetInt("shards", int64(shards))

	// Distinct-signature view (Options.Dedup, default on): built fresh per
	// run — never cached on the Table, whose Rows callers mutate directly
	// (InjectErrors) with no invalidation hook. Annotation coverage, crowd
	// questions and repair ranking all collapse onto distinct signatures.
	var in *table.Interned
	if *c.opts.Dedup {
		in = t.Interned()
		root.SetInt("signatures", int64(in.NumGroups()))
	}
	if rec.Enabled() {
		// Decision units: signature groups under dedup, rows otherwise.
		units := make([]int, t.NumRows())
		for i := range units {
			if in != nil {
				units[i] = in.GroupOf(i)
			} else {
				units[i] = i
			}
		}
		rec.SetRowUnits(units, in != nil)
	}

	start := tel.StartStage(telemetry.StageDiscover)
	cands := c.generate(t, tel)
	candidates := discovery.TopK(cands, c.opts.TopK)
	tel.EndStage(telemetry.StageDiscover, start)
	if len(candidates) == 0 {
		root.End()
		return nil, ErrNoPattern
	}
	if rec.Enabled() {
		for _, cand := range candidates {
			rec.RecordPattern(cand.Key(), cand.Score, false)
		}
	}
	c.crowd.ResetStats()
	rep := &Report{}
	start = tel.StartStage(telemetry.StageValidate)
	p, _, degraded := c.validatePattern(ctx, t, candidates)
	if degraded {
		rep.Degraded.PatternFallback = true
		tel.Inc(telemetry.DegradedDecisions)
	}
	if c.opts.DiscoverPaths {
		p = p.Clone()
		discovery.AttachPathEdges(p, discovery.DiscoverPathEdges(cands))
	}
	if rec.Enabled() && p != nil {
		// The validated (possibly stripped or path-extended) winner.
		rec.RecordPattern(p.Key(), p.Score, true)
	}
	tel.EndStage(telemetry.StageValidate, start)
	start = tel.StartStage(telemetry.StageAnnotate)
	res := c.annotateSharded(ctx, t, p, tel, shards, in)
	tel.EndStage(telemetry.StageAnnotate, start)
	rep.Pattern = p
	rep.Annotations = res.Tuples
	rep.NewFacts = res.NewFacts
	rep.Degraded.Tuples = res.DegradedTuples
	if ctx.Err() != nil {
		// Deadline spent before repair: degrade rather than blow through it.
		rep.Degraded.RepairsSkipped = true
		tel.Inc(telemetry.DegradedDecisions)
	} else {
		start = tel.StartStage(telemetry.StageRepair)
		rep.Repairs = c.repairsShardedProv(t, p, res.Errors(), tel, shards, in, rec)
		tel.EndStage(telemetry.StageRepair, start)
	}
	rep.Crowd = c.crowd.Stats()
	rep.QuestionsAsked = rep.Crowd.Questions
	hits1, misses1 := c.resolver.Stats()
	tel.Add(telemetry.ResolverHits, hits1-hits0)
	tel.Add(telemetry.ResolverMisses, misses1-misses0)
	root.SetInt("questions", int64(rep.QuestionsAsked))
	root.End()
	rep.Timings = tel.Snapshot()
	rep.Provenance = rec
	if c.opts.Incremental && c.session != nil {
		c.captureSession(t, rep, in)
	}
	return rep, nil
}

// resolveShards normalizes a shard count: 0 and 1 mean unsharded, negative
// means GOMAXPROCS (via Options.withDefaults' convention).
func resolveShards(shards int) int {
	if shards < 0 {
		shards = Options{Shards: shards}.withDefaults().Shards
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// shardRange is one contiguous row range [Lo, Hi).
type shardRange struct{ Lo, Hi int }

// shardRanges splits n rows into at most shards contiguous ranges of
// near-equal size (the first n%shards ranges take one extra row). Empty
// ranges are never produced.
func shardRanges(n, shards int) []shardRange {
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	out := make([]shardRange, 0, shards)
	base, extra := n/shards, n%shards
	lo := 0
	for i := 0; i < shards; i++ {
		size := base
		if i < extra {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, shardRange{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// shardPipelines returns one child pipeline per range when the run is
// instrumented, or all-nil children when it is not (nil *Pipeline is the
// disabled instrument).
func shardPipelines(tel *telemetry.Pipeline, n int) []*telemetry.Pipeline {
	children := make([]*telemetry.Pipeline, n)
	if tel == nil {
		return children
	}
	for i := range children {
		children[i] = telemetry.New()
	}
	return children
}

// annotateSharded is the sharded §6.1 stage: step-1 KB coverage fans out
// across contiguous shards (each with its own telemetry pipeline, merged
// after the join), then the crowd-serial step 2 consumes the precomputed
// coverage in global row order. With an interned view the shard unit is the
// distinct signature group — each group's representative is evaluated once
// and the Match fanned out to every duplicate row — otherwise it is the raw
// row range. For shards <= 1 it falls back to the unsharded annotator
// (whose Workers pool remains available, itself group-aware under dedup).
func (c *Cleaner) annotateSharded(ctx context.Context, t *Table, p *Pattern, tel *telemetry.Pipeline, shards int, in *table.Interned) *annotation.Result {
	ann := c.annotator(ctx, p, tel)
	ann.Interned = in
	if c.opts.Incremental && c.session != nil {
		// Carry the memo state (questions, coverage, seen facts) on the
		// session so a later Append's delta pass continues where this run
		// left off.
		ann.Session = c.session.ann
	}
	n := t.NumRows()
	units := n
	if in != nil {
		units = in.NumGroups()
	}
	if shards <= 1 || units < 2*shards {
		return ann.Annotate(t)
	}
	// Coverage workers only read the KB: force the lazily-memoised
	// hierarchy closures before the fan-out.
	c.kb.WarmClosures()
	matches := make([]*pattern.Match, n)
	ranges := shardRanges(units, shards)
	children := shardPipelines(tel, len(ranges))
	var wg sync.WaitGroup
	var panicked atomic.Pointer[PanicError]
	for i, rg := range ranges {
		wg.Add(1)
		go func(shard int, rg shardRange, child *telemetry.Pipeline) {
			defer wg.Done()
			runShardGuarded(&panicked, shard, func() {
				if in != nil {
					ann.EvaluateCoverageGroups(t, in.Groups(), rg.Lo, rg.Hi, matches, child)
				} else {
					ann.EvaluateCoverage(t, rg.Lo, rg.Hi, matches, child)
				}
			})
		}(i, rg, children[i])
	}
	wg.Wait()
	rethrow(&panicked)
	for _, child := range children {
		tel.Merge(child)
	}
	return ann.AnnotateWith(t, matches)
}

// repairsSharded is repairsShardedDedup without an interned view — the
// public Repairs sub-API path, which takes caller-chosen row lists and
// never dedups.
func (c *Cleaner) repairsSharded(t *Table, p *Pattern, rows []int, tel *telemetry.Pipeline, shards int) map[int][]Repair {
	return c.repairsShardedProv(t, p, rows, tel, shards, nil, nil)
}

// repairsShardedDedup is repairsShardedProv without provenance recording —
// kept as the dedup-aware entry point for tests.
func (c *Cleaner) repairsShardedDedup(t *Table, p *Pattern, rows []int, tel *telemetry.Pipeline, shards int, in *table.Interned) map[int][]Repair {
	return c.repairsShardedProv(t, p, rows, tel, shards, in, nil)
}

// repairCandidates converts a ranked repair list to its provenance record —
// shared by the batch retrieval paths below and the incremental
// sessionRepairs path.
func repairCandidates(reps []Repair) []provenance.Candidate {
	cands := make([]provenance.Candidate, len(reps))
	for j, r := range reps {
		ch := make([]provenance.Change, len(r.Changes))
		for k, cg := range r.Changes {
			ch[k] = provenance.Change{Col: cg.Col, From: cg.From, To: cg.To}
		}
		cands[j] = provenance.Candidate{Graph: r.Graph.ID, Cost: r.Cost, Changes: ch}
	}
	return cands
}

// repairsShardedProv is the sharded §6.2 stage: the index is built once
// (deterministic for every worker and shard count), then top-k retrieval
// fans out across shards of the erroneous-row list, each shard recording
// into its own telemetry pipeline through a shallow index view. With an
// interned view, duplicate erroneous rows collapse onto one representative
// per distinct signature — TopK is a pure function of the tuple's values
// and the read-only index, so the ranked list is computed once and shared
// by every duplicate. The merge is a map fill keyed by row — order-free.
// With a provenance recorder, every ranked unit's candidate list is
// captured: sharded retrieval records into per-shard child recorders merged
// back in shard order (units are disjoint across shards, so the merged
// state is deterministic regardless of completion order).
func (c *Cleaner) repairsShardedProv(t *Table, p *Pattern, rows []int, tel *telemetry.Pipeline, shards int, in *table.Interned, rec *provenance.Recorder) map[int][]Repair {
	if len(p.Edges) == 0 {
		return nil // no relationships: repairs are undefined (§7.4)
	}
	out := make(map[int][]Repair, len(rows))
	if len(rows) == 0 {
		// An error-free table needs no repairs: skip instance-graph
		// enumeration entirely — on large KBs building the index dwarfs
		// the rest of the pipeline.
		return out
	}
	start := tel.StartStage(telemetry.StageBuildIndex)
	ix := repair.BuildIndex(c.kb, p, repair.Options{
		MaxGraphs: c.opts.RepairMaxGraphs,
		Weights:   c.opts.RepairWeights,
		Workers:   c.opts.Workers,
		Telemetry: tel,
	})
	tel.EndStage(telemetry.StageBuildIndex, start)

	// lookup holds the rows actually ranked (one representative per distinct
	// signature under dedup, every in-range row otherwise, first-occurrence
	// order either way); slot maps each input row to its lookup index, -1
	// for out-of-range rows.
	lookup := make([]int, 0, len(rows))
	slot := make([]int, len(rows))
	if in != nil && in.NumRows() == t.NumRows() {
		seen := make(map[int]int)
		for i, row := range rows {
			if row < 0 || row >= t.NumRows() {
				slot[i] = -1
				continue
			}
			g := in.GroupOf(row)
			li, ok := seen[g]
			if !ok {
				li = len(lookup)
				seen[g] = li
				lookup = append(lookup, row)
			}
			slot[i] = li
		}
	} else {
		for i, row := range rows {
			if row < 0 || row >= t.NumRows() {
				slot[i] = -1
				continue
			}
			slot[i] = len(lookup)
			lookup = append(lookup, row)
		}
	}

	// Provenance: record the ranked candidate list per decision unit (the
	// signature group under dedup, the row itself otherwise). Conversions
	// are built only when recording is on — the disabled path stays
	// allocation-free.
	unitOf := func(row int) int {
		if in != nil && in.NumRows() == t.NumRows() {
			return in.GroupOf(row)
		}
		return row
	}
	toCands := repairCandidates

	perRow := make([][]Repair, len(lookup))
	switch {
	case shards > 1 && len(lookup) >= 2:
		ranges := shardRanges(len(lookup), shards)
		children := shardPipelines(tel, len(ranges))
		var provChildren []*provenance.Recorder
		if rec.Enabled() {
			provChildren = make([]*provenance.Recorder, len(ranges))
			for i := range provChildren {
				provChildren[i] = rec.Child()
			}
		}
		var wg sync.WaitGroup
		var panicked atomic.Pointer[PanicError]
		for i, rg := range ranges {
			wg.Add(1)
			go func(shard int, rg shardRange, child *telemetry.Pipeline) {
				defer wg.Done()
				runShardGuarded(&panicked, shard, func() {
					ixs := ix.WithTelemetry(child)
					for i := rg.Lo; i < rg.Hi; i++ {
						reps, considered := ixs.TopKStats(t.Rows[lookup[i]], c.opts.RepairK)
						perRow[i] = reps
						if provChildren != nil {
							provChildren[shard].RecordRepair(unitOf(lookup[i]), considered, toCands(reps))
						}
					}
				})
			}(i, rg, children[i])
		}
		wg.Wait()
		rethrow(&panicked)
		for _, child := range children {
			tel.Merge(child)
		}
		// Units are disjoint across shards, so merging children in shard
		// order yields the same recorder state regardless of which
		// goroutine finished first.
		for _, pc := range provChildren {
			rec.Merge(pc)
		}
	case c.opts.Workers > 1 && len(lookup) >= 2*c.opts.Workers:
		// Per-row retrieval is independent and the index is read-only:
		// work-steal across the worker pool, keyed by lookup index. The
		// recorder is mutex-guarded and repair records are keyed by unit,
		// so direct recording is race-free and order-independent.
		var next atomic.Int64
		var wg sync.WaitGroup
		var panicked atomic.Pointer[PanicError]
		for w := 0; w < c.opts.Workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				runShardGuarded(&panicked, worker, func() {
					for {
						i := int(next.Add(1)) - 1
						if i >= len(lookup) {
							return
						}
						reps, considered := ix.TopKStats(t.Rows[lookup[i]], c.opts.RepairK)
						perRow[i] = reps
						if rec.Enabled() {
							rec.RecordRepair(unitOf(lookup[i]), considered, toCands(reps))
						}
					}
				})
			}(w)
		}
		wg.Wait()
		rethrow(&panicked)
	default:
		for i, row := range lookup {
			reps, considered := ix.TopKStats(t.Rows[row], c.opts.RepairK)
			perRow[i] = reps
			if rec.Enabled() {
				rec.RecordRepair(unitOf(row), considered, toCands(reps))
			}
		}
	}
	for i, row := range rows {
		if slot[i] >= 0 {
			out[row] = perRow[slot[i]]
		}
	}
	return out
}
