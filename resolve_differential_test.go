package katara

import (
	"math/rand"
	"reflect"
	"testing"

	"katara/internal/annotation"
	"katara/internal/discovery"
	"katara/internal/kbstats"
	"katara/internal/pattern"
	"katara/internal/resolve"
	"katara/internal/similarity"
	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

// These tests pin the tentpole invariant of the shared resolution cache:
// routing label resolution through resolve.Cache changes nothing about the
// pipeline's output — candidates, annotations and repairs are byte-identical
// to uncached resolution, for every worker count.

func differentialFixture(seed int64, rows int) (*workload.KB, *workload.TableSpec, *Table) {
	w := world.New(seed, world.Config{
		Persons: 150, Players: 60, Clubs: 12, Universities: 40, Films: 20, Books: 20,
	})
	kb := workload.DBpediaLike(w, seed)
	spec := workload.PersonTable(w, seed, rows)
	dirty := spec.Table.Clone()
	rng := rand.New(rand.NewSource(seed))
	table.InjectErrors(dirty, []int{1, 2, 3}, 0.10, rng)
	return kb, spec, dirty
}

func TestCachedCandidatesIdenticalToUncached(t *testing.T) {
	kb, _, dirty := differentialFixture(41, 150)
	stats := kbstats.New(kb.Store)

	base := discovery.Generate(dirty, stats, discovery.Options{})
	cache := resolve.New(kb.Store, similarity.DefaultThreshold)
	cached := discovery.Generate(dirty, stats, discovery.Options{Resolver: cache})

	if !reflect.DeepEqual(base.Columns, cached.Columns) {
		t.Fatal("cached resolution changed column candidates")
	}
	if !reflect.DeepEqual(base.Pairs, cached.Pairs) {
		t.Fatal("cached resolution changed pair candidates")
	}
	// Within one Generate the local per-value cache dedupes ahead of the
	// resolver, so the first pass records only misses; the shared memo pays
	// off across passes and shards.
	if _, misses := cache.Stats(); misses == 0 {
		t.Fatalf("cache did not engage: misses=%d", misses)
	}

	// The same cache serves GenerateParallel at any worker count.
	for _, workers := range []int{2, 4} {
		par := discovery.GenerateParallel(dirty, stats, discovery.Options{Resolver: cache}, workers)
		if !reflect.DeepEqual(base.Columns, par.Columns) || !reflect.DeepEqual(base.Pairs, par.Pairs) {
			t.Fatalf("workers=%d: cached parallel candidates differ from serial uncached", workers)
		}
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Fatal("repeat passes over the same table recorded no cache hits")
	}
}

func TestCachedAnnotationIdenticalToUncached(t *testing.T) {
	kb, _, dirty := differentialFixture(43, 120)

	// Identical clones (same deterministic triple order) give both runs the
	// same term IDs, so one discovered pattern applies to both. Each run gets
	// its own clone because enrichment mutates the KB.
	kbA := kb.Store.Clone()
	kbB := kb.Store.Clone()
	cands := discovery.Generate(dirty, kbstats.New(kbA), discovery.Options{})
	ps := discovery.TopK(cands, 1)
	if len(ps) == 0 {
		t.Fatal("no pattern discovered")
	}
	p := ps[0]

	run := func(kbRun *KB, resolver pattern.LabelSource, workers int) *annotation.Result {
		ann := &annotation.Annotator{
			KB:       kbRun,
			Pattern:  p,
			Crowd:    TrustingCrowd(),
			Oracle:   nil,
			Enrich:   true,
			Workers:  workers,
			Resolver: resolver,
		}
		return ann.Annotate(dirty)
	}

	base := run(kbA, nil, 1)
	cached := run(kbB, resolve.New(kbB, similarity.DefaultThreshold), 1)
	if !reflect.DeepEqual(base, cached) {
		t.Fatal("cached resolution changed annotation results")
	}
	for _, workers := range []int{2, 4} {
		kbW := kb.Store.Clone()
		got := run(kbW, resolve.New(kbW, similarity.DefaultThreshold), workers)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: cached annotations differ from serial uncached", workers)
		}
	}
}

func TestCleanIdenticalAcrossWorkerCounts(t *testing.T) {
	kb, spec, dirty := differentialFixture(47, 150)
	w := world.New(47, world.Config{
		Persons: 150, Players: 60, Clubs: 12, Universities: 40, Films: 20, Books: 20,
	})

	type outcome struct {
		patternKey  string
		annotations []TupleAnnotation
		repairs     map[int][]Repair
		newFacts    []Fact
	}
	run := func(workers int) outcome {
		kbRun := kb.Store.Clone()
		cleaner := NewCleaner(kbRun, NewCrowd(10, 0.97, 47), Options{
			ValidationOracle: workload.SpecOracle{Spec: spec, KB: kb},
			FactOracle:       workload.WorldOracle{W: w, KB: kb},
			Workers:          workers,
		})
		report, err := cleaner.Clean(dirty)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if hits, _ := cleaner.ResolverStats(); hits == 0 {
			t.Fatalf("workers=%d: resolution cache never hit", workers)
		}
		return outcome{
			patternKey:  report.Pattern.Key(),
			annotations: report.Annotations,
			repairs:     report.Repairs,
			newFacts:    report.NewFacts,
		}
	}

	base := run(1)
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if got.patternKey != base.patternKey {
			t.Fatalf("workers=%d: pattern differs", workers)
		}
		if !reflect.DeepEqual(got.annotations, base.annotations) {
			t.Fatalf("workers=%d: annotations differ", workers)
		}
		if !reflect.DeepEqual(got.repairs, base.repairs) {
			t.Fatalf("workers=%d: repairs differ", workers)
		}
		if !reflect.DeepEqual(got.newFacts, base.newFacts) {
			t.Fatalf("workers=%d: new facts differ", workers)
		}
	}
}

func TestReportCarriesResolverCounters(t *testing.T) {
	kb, tbl := figure1()
	c := NewCleaner(kb, TrustingCrowd(), Options{Telemetry: true, FactOracle: fig1Oracle{kb}})
	report, err := c.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	hits := report.Timings.Counter("resolver-hits")
	misses := report.Timings.Counter("resolver-misses")
	if misses == 0 {
		t.Fatal("no resolver misses recorded: cache is not in the path")
	}
	if hits == 0 {
		t.Fatal("no resolver hits recorded on a table with repeated values")
	}
	// A second run over the same table reuses the warm memo: at most the
	// post-enrichment flush forces re-resolution, so the hit share grows.
	report2, err := c.Clean(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if h2 := report2.Timings.Counter("resolver-hits"); h2 == 0 {
		t.Fatal("warm second run recorded no hits")
	}
}
