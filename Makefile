# Developer checks. `make check` is the gate every change must pass:
# build + vet + full test suite under the race detector.

GO ?= go

# Snapshot knobs for bench-save: where the snapshot lands and how long each
# benchmark runs. Longer BENCH_TIME gives steadier numbers.
BENCH_OUT ?= BENCH_3.json
BENCH_TIME ?= 200ms

.PHONY: all build vet test race bench bench-smoke bench-save obs-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# One iteration per benchmark: proves they still compile and run (CI gate).
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Record the benchmark trajectory point: parse `go test -json` output into
# $(BENCH_OUT) (see DESIGN.md §10 for how to read it).
bench-save:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=$(BENCH_TIME) -json ./... \
		| $(GO) run ./cmd/benchsave -out $(BENCH_OUT)

# End-to-end observability check: run katara with -listen up, then verify
# /healthz, /metrics (through the strict promlint parser), /progress and
# pprof against the live server.
obs-smoke:
	./scripts/obs_smoke.sh

check: build vet test race
