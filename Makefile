# Developer checks. `make check` is the gate every change must pass:
# build + vet + full test suite under the race detector.

GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

check: build vet test race
