# Developer checks. `make check` is the gate every change must pass:
# build + vet + full test suite under the race detector.

GO ?= go

# Snapshot knobs for bench-save: where the snapshot lands and how long each
# benchmark runs. Longer BENCH_TIME gives steadier numbers.
BENCH_OUT ?= BENCH_10.json
BENCH_TIME ?= 200ms

# Generous wall-clock ceiling for the full-paper-scale smoke assertion:
# BenchmarkPersonFullScale runs ~3s/op on a modest dev box; 120s means only a
# pathological regression (dedup silently off, per-row KB scans) trips it.
FULLSCALE_CEILING ?= 120s

# Fuzz budget per target for fuzz-smoke, and where the coverage profile lands.
FUZZTIME ?= 30s
COVER_OUT ?= coverage.out

.PHONY: all build vet test race bench bench-smoke bench-save obs-smoke \
	daemon-smoke chaos-smoke append-smoke fuzz-smoke cover cover-check check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# One iteration per benchmark: proves they still compile and run (CI gate).
# The full-scale benchmark additionally runs under a -timeout ceiling, so a
# scaling regression (anything super-linear in rows) fails loudly instead of
# merely slowing the job down.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...
	$(GO) test -run '^$$' -bench '^BenchmarkPersonFullScale$$' -benchtime=1x \
		-timeout $(FULLSCALE_CEILING) .

# Record the benchmark trajectory point: parse `go test -json` output into
# $(BENCH_OUT) (see DESIGN.md §10 for how to read it).
bench-save:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=$(BENCH_TIME) -json ./... \
		| $(GO) run ./cmd/benchsave -out $(BENCH_OUT)

# Native-fuzz burst on every checked-in target: each must survive FUZZTIME
# (seed corpora under <pkg>/testdata/fuzz/) without a crasher.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzMatchLabel$$' -fuzztime $(FUZZTIME) ./internal/rdf
	$(GO) test -run '^$$' -fuzz '^FuzzSimilarityLookup$$' -fuzztime $(FUZZTIME) ./internal/similarity
	$(GO) test -run '^$$' -fuzz '^FuzzLintExposition$$' -fuzztime $(FUZZTIME) ./internal/telemetry
	$(GO) test -run '^$$' -fuzz '^FuzzTableLoad$$' -fuzztime $(FUZZTIME) ./internal/table
	$(GO) test -run '^$$' -fuzz '^FuzzJournalReplay$$' -fuzztime $(FUZZTIME) ./internal/jobs
	$(GO) test -run '^$$' -fuzz '^FuzzAppendEquivalence$$' -fuzztime $(FUZZTIME) ./internal/propcheck

# Per-package coverage summary plus the repo-wide total.
cover:
	$(GO) test -covermode=atomic -coverprofile=$(COVER_OUT) ./...
	$(GO) tool cover -func=$(COVER_OUT) | tail -n 1

# Fail when total coverage drops below scripts/cover_floor.txt.
cover-check: cover
	./scripts/cover_check.sh $(COVER_OUT) scripts/cover_floor.txt

# End-to-end observability check: run katara with -listen up, then verify
# /healthz, /metrics (through the strict promlint parser), /progress and
# pprof against the live server.
obs-smoke:
	./scripts/obs_smoke.sh

# End-to-end job-server check: boot katarad, run a kload burst (every job
# must complete with byte-identical reports and lint-clean, monotone
# /metrics scrapes), then verify SIGTERM tears it down cleanly.
daemon-smoke:
	./scripts/daemon_smoke.sh

# Crash-recovery check: kchaos SIGKILLs and restarts katarad mid-burst on a
# shared journal — no accepted job may be lost, every report must match a
# crash-free oracle byte-for-byte, and the journal must compact.
chaos-smoke:
	./scripts/chaos_smoke.sh

# Incremental append check: drive POST /jobs/{id}/append end to end — 202 on
# a done parent, the 409/404/400 admission contract, promlint-clean metrics
# with the appended counter, and a byte-identical result after a restart
# replays the append record.
append-smoke:
	./scripts/append_smoke.sh

check: build vet test race
