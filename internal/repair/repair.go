// Package repair implements KATARA's top-k possible-repair generation
// (§6.2): instance graphs of the validated pattern are materialised from the
// KB, indexed by inverted lists keyed on (attribute, value), and each
// erroneous tuple is aligned against the candidate graphs retrieved through
// the lists, ranked by repair cost (Algorithm 4).
package repair

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"katara/internal/pattern"
	"katara/internal/rdf"
	"katara/internal/similarity"
	"katara/internal/telemetry"
)

// InstanceGraph is an instantiation of a table pattern in the KB (§6.2): one
// resource per pattern node such that every edge property holds.
type InstanceGraph struct {
	ID int
	// Resource maps column -> KB resource (or literal for untyped nodes).
	Resource map[int]rdf.ID
	// Value maps column -> display value (the resource's label).
	Value map[int]string
}

// Change is one cell update suggested by a repair.
type Change struct {
	Col      int
	From, To string
}

// Repair is one candidate repair: align the tuple to Graph at cost
// |Changes| (unit costs by default; see Options.Weights).
type Repair struct {
	Graph   *InstanceGraph
	Cost    float64
	Changes []Change
}

// Options configures index construction and retrieval.
type Options struct {
	// MaxGraphs caps instance-graph enumeration (0 = unlimited). When the
	// cap trips, the index is partial and recall degrades gracefully.
	MaxGraphs int
	// Weights holds optional per-column change costs (§6.2: "the cost can
	// also be weighted with confidences on data values"). Missing columns
	// cost 1.
	Weights map[int]float64
	// Workers shards instance-graph enumeration across a worker pool by
	// root resource; <= 1 enumerates serially. Shards merge in root order
	// and truncate at MaxGraphs, so the index is identical for every
	// worker count.
	Workers int
	// Telemetry receives the GraphsEnumerated / RepairsGenerated counters;
	// nil disables instrumentation.
	Telemetry *telemetry.Pipeline
}

// Index holds the instance graphs of one pattern and their inverted lists.
type Index struct {
	Pattern *pattern.Pattern
	Graphs  []InstanceGraph
	lists   map[listKey][]int // (col, normalised value) -> graph IDs
	opts    Options
	cols    []int
}

type listKey struct {
	col int
	val string
}

// BuildIndex enumerates every instance graph of p in kb and builds the
// inverted lists. Graph enumeration walks the pattern from its most
// selective typed node outward along edges, so the work is proportional to
// the number of real instance graphs, not the Cartesian product.
func BuildIndex(kb *rdf.Store, p *pattern.Pattern, opts Options) *Index {
	ix := &Index{
		Pattern: p,
		lists:   make(map[listKey][]int),
		opts:    opts,
		cols:    p.Columns(),
	}
	for _, g := range enumerate(kb, p, opts.MaxGraphs, opts.Workers) {
		g.ID = len(ix.Graphs)
		opts.Telemetry.Inc(telemetry.GraphsEnumerated)
		g.Value = make(map[int]string, len(g.Resource))
		for col, r := range g.Resource {
			if kb.IsLiteral(r) {
				g.Value[col] = kb.Term(r).Value
			} else {
				g.Value[col] = kb.LabelOf(r)
			}
		}
		ix.Graphs = append(ix.Graphs, g)
		for col, v := range g.Value {
			k := listKey{col, similarity.Normalize(v)}
			ix.lists[k] = append(ix.lists[k], g.ID)
		}
	}
	return ix
}

// NumGraphs returns the number of indexed instance graphs.
func (ix *Index) NumGraphs() int { return len(ix.Graphs) }

// WithTelemetry returns a shallow view of the index whose retrieval
// telemetry (repair-topk histogram/spans, RepairsGenerated) lands in tel
// instead of the pipeline the index was built with. Graphs and inverted
// lists are shared read-only — this is the per-shard handle of a row-range
// sharded retrieval fan-out, each shard recording into its own pipeline.
func (ix *Index) WithTelemetry(tel *telemetry.Pipeline) *Index {
	cp := *ix
	cp.opts.Telemetry = tel
	return &cp
}

// PostingList returns the graph IDs holding value v on column col — exposed
// for tests and the Example 13 walkthrough.
func (ix *Index) PostingList(col int, v string) []int {
	return ix.lists[listKey{col, similarity.Normalize(v)}]
}

// TopK implements Algorithm 4 with Example 13's counting evaluation: each
// posting-list hit contributes the column's weight to a per-graph agreement
// score, the repair cost is the graph's total covered weight minus its
// agreement, and only the k cheapest graphs are aligned to materialise
// their Changes. Ties break by graph ID for determinism.
func (ix *Index) TopK(tuple []string, k int) []Repair {
	reps, _ := ix.TopKStats(tuple, k)
	return reps
}

// TopKStats is TopK plus the number of candidate graphs the inverted lists
// retrieved before truncation to k — the "considered" figure a repair's
// provenance records alongside the kept candidates.
func (ix *Index) TopKStats(tuple []string, k int) ([]Repair, int) {
	if k <= 0 {
		return nil, 0
	}
	tkStart := ix.opts.Telemetry.StartTimer()
	tkSpan := ix.opts.Telemetry.StartSpan("repair-topk")
	// Agreement per graph via the inverted lists (Example 13: "the
	// occurrences of instance graphs G1 and G2 are 5 and 1").
	agree := map[int]float64{}
	for _, col := range ix.cols {
		if col >= len(tuple) {
			continue
		}
		w := ix.weight(col)
		for _, id := range ix.PostingList(col, tuple[col]) {
			agree[id] += w
		}
	}
	type scored struct {
		id   int
		cost float64
	}
	cands := make([]scored, 0, len(agree))
	for id, a := range agree {
		cands = append(cands, scored{id: id, cost: ix.coveredWeight(&ix.Graphs[id], tuple) - a})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	repairs := make([]Repair, 0, len(cands))
	for _, s := range cands {
		rep, _ := ix.align(tuple, &ix.Graphs[s.id])
		repairs = append(repairs, rep)
	}
	ix.opts.Telemetry.Add(telemetry.RepairsGenerated, int64(len(repairs)))
	tkSpan.SetInt("candidates", int64(len(agree)))
	tkSpan.SetInt("repairs", int64(len(repairs)))
	tkSpan.End()
	ix.opts.Telemetry.ObserveSince(telemetry.HistRepairTopK, tkStart)
	return repairs, len(agree)
}

// weight returns the change cost of a column.
func (ix *Index) weight(col int) float64 {
	if ix.opts.Weights != nil {
		if w, ok := ix.opts.Weights[col]; ok {
			return w
		}
	}
	return 1
}

// coveredWeight is the total weight of the columns on which graph g and the
// tuple are comparable — the maximum possible cost of aligning to g.
func (ix *Index) coveredWeight(g *InstanceGraph, tuple []string) float64 {
	total := 0.0
	for _, col := range ix.cols {
		if col >= len(tuple) {
			continue
		}
		if _, ok := g.Value[col]; ok {
			total += ix.weight(col)
		}
	}
	return total
}

// TopKNaive computes repairs against every instance graph without the
// inverted lists — the baseline Algorithm 4 improves on ("too slow in
// practice"), kept for the ablation benchmark and for correctness checks.
// Graphs sharing no value with the tuple are skipped, matching TopK: an
// alignment that rewrites every cell is a wholesale row replacement, not a
// repair, and the inverted lists never retrieve such graphs.
func (ix *Index) TopKNaive(tuple []string, k int) []Repair {
	if k <= 0 {
		return nil
	}
	repairs := make([]Repair, 0, len(ix.Graphs))
	for i := range ix.Graphs {
		rep, matched := ix.align(tuple, &ix.Graphs[i])
		if matched == 0 {
			continue
		}
		repairs = append(repairs, rep)
	}
	sort.Slice(repairs, func(i, j int) bool {
		if repairs[i].Cost != repairs[j].Cost {
			return repairs[i].Cost < repairs[j].Cost
		}
		return repairs[i].Graph.ID < repairs[j].Graph.ID
	})
	if len(repairs) > k {
		repairs = repairs[:k]
	}
	return repairs
}

// align computes the repair aligning tuple to g (§6.2's cost(t, φ, G)) and
// the number of comparable columns on which tuple and g already agree.
func (ix *Index) align(tuple []string, g *InstanceGraph) (Repair, int) {
	r := Repair{Graph: g}
	matched := 0
	for _, col := range ix.cols {
		gv, ok := g.Value[col]
		if !ok || col >= len(tuple) {
			continue
		}
		if similarity.Normalize(tuple[col]) == similarity.Normalize(gv) {
			matched++
			continue
		}
		r.Cost += ix.weight(col)
		r.Changes = append(r.Changes, Change{Col: col, From: tuple[col], To: gv})
	}
	return r, matched
}

// enumerate materialises the instance graphs of p, fanning the root
// resources out over workers goroutines when workers > 1.
func enumerate(kb *rdf.Store, p *pattern.Pattern, maxGraphs, workers int) []InstanceGraph {
	cols := p.Columns()
	if len(cols) == 0 {
		return nil
	}
	// Choose traversal order: start from the typed column with the fewest
	// instances, then repeatedly expand across edges; disconnected typed
	// columns fall back to full instance scans.
	order, via := traversalPlan(kb, p, cols)
	roots := candidatesFor(kb, p, order[0], nil, nil)

	if workers > 1 && len(roots) >= 2*workers {
		return enumerateParallel(kb, p, order, via, roots, maxGraphs, workers)
	}
	var out []InstanceGraph
	for _, root := range roots {
		e := &enumerator{kb: kb, p: p, order: order, via: via, max: maxGraphs - len(out)}
		if maxGraphs == 0 {
			e.max = 0
		}
		out = append(out, e.fromRoot(root)...)
		if maxGraphs > 0 && len(out) >= maxGraphs {
			break
		}
	}
	return out
}

// enumerateParallel shards enumeration by root resource: each worker claims
// roots through an atomic cursor and runs the same depth-first expansion as
// the serial path, capped per root at maxGraphs. Per-root results merge in
// root order and truncate at maxGraphs — since a per-root cap of maxGraphs
// can only over-produce relative to the serial cursor, the merged prefix is
// exactly the serial output for any worker count. The workers only read the
// KB, so its lazily-memoised hierarchy closures are forced up front.
func enumerateParallel(kb *rdf.Store, p *pattern.Pattern, order []int, via map[int]*edgeRef, roots []rdf.ID, maxGraphs, workers int) []InstanceGraph {
	kb.WarmClosures()
	perRoot := make([][]InstanceGraph, len(roots))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(roots) {
					return
				}
				e := &enumerator{kb: kb, p: p, order: order, via: via, max: maxGraphs}
				perRoot[i] = e.fromRoot(roots[i])
			}
		}()
	}
	wg.Wait()
	var out []InstanceGraph
	for _, gs := range perRoot {
		out = append(out, gs...)
		if maxGraphs > 0 && len(out) >= maxGraphs {
			out = out[:maxGraphs]
			break
		}
	}
	return out
}

// enumerator is one depth-first expansion of the traversal plan. max caps
// the number of graphs produced (0 = unlimited).
type enumerator struct {
	kb     *rdf.Store
	p      *pattern.Pattern
	order  []int
	via    map[int]*edgeRef
	max    int
	out    []InstanceGraph
	assign map[int]rdf.ID
}

// fromRoot enumerates every instance graph whose root column takes resource
// root, in deterministic depth-first order.
func (e *enumerator) fromRoot(root rdf.ID) []InstanceGraph {
	e.out = nil
	e.assign = map[int]rdf.ID{e.order[0]: root}
	if e.edgesHold() {
		e.rec(1)
	}
	return e.out
}

// edgesHold verifies every pattern edge whose endpoints are both assigned.
func (e *enumerator) edgesHold() bool {
	for i := range e.p.Edges {
		ed := &e.p.Edges[i]
		s, sOK := e.assign[ed.From]
		o, oOK := e.assign[ed.To]
		if sOK && oOK && !e.kb.HasPredicate(s, ed.Prop, o) {
			return false
		}
	}
	return true
}

func (e *enumerator) rec(step int) bool {
	if e.max > 0 && len(e.out) >= e.max {
		return false
	}
	if step == len(e.order) {
		cp := make(map[int]rdf.ID, len(e.assign))
		for k, v := range e.assign {
			cp[k] = v
		}
		e.out = append(e.out, InstanceGraph{Resource: cp})
		return true
	}
	col := e.order[step]
	for _, cand := range candidatesFor(e.kb, e.p, col, e.via[col], e.assign) {
		e.assign[col] = cand
		if e.edgesHold() {
			if !e.rec(step + 1) {
				delete(e.assign, col)
				return false
			}
		}
		delete(e.assign, col)
	}
	return true
}

// edgeRef points at the pattern edge used to reach a column during
// enumeration, and in which direction.
type edgeRef struct {
	edge    *pattern.Edge
	forward bool // true: we know the subject, enumerate objects
}

func traversalPlan(kb *rdf.Store, p *pattern.Pattern, cols []int) ([]int, map[int]*edgeRef) {
	via := map[int]*edgeRef{}
	visited := map[int]bool{}
	var order []int

	pickRoot := func() (int, bool) {
		best, bestN := -1, 0
		for _, c := range cols {
			if visited[c] {
				continue
			}
			n := 1 << 30 // untyped columns are hard roots; prefer typed ones
			if t := p.TypeOf(c); t != rdf.NoID {
				n = len(kb.InstancesOf(t))
			}
			if best == -1 || n < bestN {
				best, bestN = c, n
			}
		}
		if best == -1 {
			return 0, false
		}
		return best, true
	}

	for {
		root, ok := pickRoot()
		if !ok {
			break
		}
		visited[root] = true
		order = append(order, root)
		// BFS expansion over edges.
		queue := []int{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for i := range p.Edges {
				e := &p.Edges[i]
				var next int
				var fwd bool
				switch {
				case e.From == cur && !visited[e.To]:
					next, fwd = e.To, true
				case e.To == cur && !visited[e.From]:
					next, fwd = e.From, false
				default:
					continue
				}
				visited[next] = true
				via[next] = &edgeRef{edge: e, forward: fwd}
				order = append(order, next)
				queue = append(queue, next)
			}
		}
	}
	return order, via
}

// candidatesFor lists the possible resources for col, either through the
// edge that reached it or from its type's instance list.
func candidatesFor(kb *rdf.Store, p *pattern.Pattern, col int, ref *edgeRef, assign map[int]rdf.ID) []rdf.ID {
	typ := p.TypeOf(col)
	if ref != nil {
		var cands []rdf.ID
		if ref.forward {
			subj := assign[ref.edge.From]
			cands = withSubProperties(kb, ref.edge.Prop, func(prop rdf.ID) []rdf.ID {
				return kb.Objects(subj, prop)
			})
		} else {
			obj := assign[ref.edge.To]
			cands = withSubProperties(kb, ref.edge.Prop, func(prop rdf.ID) []rdf.ID {
				return kb.Subjects(prop, obj)
			})
		}
		if typ == rdf.NoID {
			return cands
		}
		var out []rdf.ID
		for _, c := range cands {
			if !kb.IsLiteral(c) && kb.HasType(c, typ) {
				out = append(out, c)
			}
		}
		return out
	}
	if typ == rdf.NoID {
		return nil // an untyped column not reachable via an edge is unenumerable
	}
	return kb.InstancesOf(typ)
}

// withSubProperties unions f over prop and its sub-properties (condition 3).
func withSubProperties(kb *rdf.Store, prop rdf.ID, f func(rdf.ID) []rdf.ID) []rdf.ID {
	props := append([]rdf.ID{prop}, kb.SubProperties(prop)...)
	set := map[rdf.ID]bool{}
	var out []rdf.ID
	for _, pr := range props {
		for _, id := range f(pr) {
			if !set[id] {
				set[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders a repair for logs and the CLI.
func (r Repair) String() string {
	s := fmt.Sprintf("cost=%g", r.Cost)
	for _, c := range r.Changes {
		s += fmt.Sprintf(" col%d:%q→%q", c.Col, c.From, c.To)
	}
	return s
}
