package repair

import (
	"fmt"
	"testing"

	"katara/internal/pattern"
	"katara/internal/rdf"
)

// figure5KB builds the KB behind Figures 1/5: two full player instance
// graphs (Pirlo/Italy/Rome/Juve/Italian/Flero and a Spanish player with
// Madrid), matching Example 12/13's repair-cost arithmetic.
func figure5KB() (*rdf.Store, *pattern.Pattern) {
	kb := rdf.New()
	add := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.IRI(obj)) }
	lit := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.Lit(obj)) }

	type ent struct{ iri, typ, label string }
	for _, e := range []ent{
		{"y:Pirlo", "person", "Pirlo"},
		{"y:Casillas", "person", "Casillas"},
		{"y:Italy", "country", "Italy"},
		{"y:Spain", "country", "Spain"},
		{"y:Rome", "capital", "Rome"},
		{"y:Madrid", "capital", "Madrid"},
		{"y:Juve", "club", "Juve"},
		{"y:RealMadrid", "club", "Real Madrid"},
		{"y:Italian", "language", "Italian"},
		{"y:Spanish", "language", "Spanish"},
		{"y:Flero", "city", "Flero"},
		{"y:Mostoles", "city", "Mostoles"},
	} {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	// Instance graph G1 (Pirlo).
	add("y:Pirlo", "nationality", "y:Italy")
	add("y:Italy", "hasCapital", "y:Rome")
	add("y:Pirlo", "playsFor", "y:Juve")
	add("y:Pirlo", "speaks", "y:Italian")
	add("y:Pirlo", "bornIn", "y:Flero")
	// Instance graph G2 (Casillas).
	add("y:Casillas", "nationality", "y:Spain")
	add("y:Spain", "hasCapital", "y:Madrid")
	add("y:Casillas", "playsFor", "y:RealMadrid")
	add("y:Casillas", "speaks", "y:Spanish")
	add("y:Casillas", "bornIn", "y:Mostoles")

	p := &pattern.Pattern{
		Nodes: []pattern.Node{
			{Column: 0, Type: kb.Res("person")},
			{Column: 1, Type: kb.Res("country")},
			{Column: 2, Type: kb.Res("capital")},
			{Column: 3, Type: kb.Res("club")},
			{Column: 4, Type: kb.Res("language")},
			{Column: 5, Type: kb.Res("city")},
		},
		Edges: []pattern.Edge{
			{From: 0, To: 1, Prop: kb.Res("nationality")},
			{From: 1, To: 2, Prop: kb.Res("hasCapital")},
			{From: 0, To: 3, Prop: kb.Res("playsFor")},
			{From: 0, To: 4, Prop: kb.Res("speaks")},
			{From: 0, To: 5, Prop: kb.Res("bornIn")},
		},
	}
	return kb, p
}

func TestEnumerateInstanceGraphs(t *testing.T) {
	kb, p := figure5KB()
	ix := BuildIndex(kb, p, Options{})
	if ix.NumGraphs() != 2 {
		t.Fatalf("found %d instance graphs, want 2", ix.NumGraphs())
	}
	for _, g := range ix.Graphs {
		if len(g.Resource) != 6 {
			t.Fatalf("graph %d has %d nodes, want 6", g.ID, len(g.Resource))
		}
	}
}

func TestExample13TopRepair(t *testing.T) {
	kb, p := figure5KB()
	ix := BuildIndex(kb, p, Options{})
	// t3 = (Pirlo, Italy, Madrid, Juve, Italian, Flero): 5 cells agree with
	// G1, 1 with G2 — cost 1 vs 5 (Example 12/13).
	t3 := []string{"Pirlo", "Italy", "Madrid", "Juve", "Italian", "Flero"}
	reps := ix.TopK(t3, 2)
	if len(reps) != 2 {
		t.Fatalf("got %d repairs", len(reps))
	}
	if reps[0].Cost != 1 || reps[1].Cost != 5 {
		t.Fatalf("costs = %g, %g; want 1, 5", reps[0].Cost, reps[1].Cost)
	}
	if len(reps[0].Changes) != 1 {
		t.Fatalf("changes = %v", reps[0].Changes)
	}
	ch := reps[0].Changes[0]
	if ch.Col != 2 || ch.From != "Madrid" || ch.To != "Rome" {
		t.Fatalf("top repair change = %+v, want col2 Madrid→Rome", ch)
	}
}

func TestPostingLists(t *testing.T) {
	kb, p := figure5KB()
	ix := BuildIndex(kb, p, Options{})
	// Example 13's inverted lists: (B, Italy) → G1, (C, Madrid) → G2.
	italy := ix.PostingList(1, "Italy")
	if len(italy) != 1 {
		t.Fatalf("posting list (1, Italy) = %v", italy)
	}
	madrid := ix.PostingList(2, "Madrid")
	if len(madrid) != 1 || madrid[0] == italy[0] {
		t.Fatalf("posting list (2, Madrid) = %v", madrid)
	}
	if got := ix.PostingList(1, "Narnia"); got != nil {
		t.Fatalf("unexpected postings %v", got)
	}
	// Normalisation: lookups are case/punctuation-insensitive.
	if got := ix.PostingList(1, "  ITALY "); len(got) != 1 {
		t.Fatalf("normalised lookup failed: %v", got)
	}
}

func TestTopKAgreesWithNaive(t *testing.T) {
	kb, p := figure5KB()
	ix := BuildIndex(kb, p, Options{})
	tuples := [][]string{
		{"Pirlo", "Italy", "Madrid", "Juve", "Italian", "Flero"},
		{"Casillas", "Spain", "Rome", "Real Madrid", "Spanish", "Mostoles"},
		{"Pirlo", "Spain", "Madrid", "Real Madrid", "Spanish", "Mostoles"},
	}
	for _, tup := range tuples {
		fast := ix.TopK(tup, 2)
		slow := ix.TopKNaive(tup, 2)
		if len(fast) != len(slow) {
			t.Fatalf("tuple %v: fast %d vs naive %d", tup, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i].Cost != slow[i].Cost || fast[i].Graph.ID != slow[i].Graph.ID {
				t.Fatalf("tuple %v rank %d: %v vs %v", tup, i, fast[i], slow[i])
			}
		}
	}
}

func TestTupleSharingNothingGetsNoRepairFromLists(t *testing.T) {
	kb, p := figure5KB()
	ix := BuildIndex(kb, p, Options{})
	reps := ix.TopK([]string{"X", "Y", "Z", "W", "V", "U"}, 3)
	if len(reps) != 0 {
		t.Fatalf("inverted lists returned %d repairs for a disjoint tuple", len(reps))
	}
}

func TestWeightedCosts(t *testing.T) {
	kb, p := figure5KB()
	// High confidence on column 1 makes changing it expensive; the Spanish
	// graph then costs 5+... while a column-2 change stays cheap.
	ix := BuildIndex(kb, p, Options{Weights: map[int]float64{2: 0.5}})
	t3 := []string{"Pirlo", "Italy", "Madrid", "Juve", "Italian", "Flero"}
	reps := ix.TopK(t3, 1)
	if len(reps) != 1 || reps[0].Cost != 0.5 {
		t.Fatalf("weighted cost = %v", reps)
	}
}

func TestMaxGraphsCap(t *testing.T) {
	kb, p := figure5KB()
	ix := BuildIndex(kb, p, Options{MaxGraphs: 1})
	if ix.NumGraphs() != 1 {
		t.Fatalf("cap ignored: %d graphs", ix.NumGraphs())
	}
}

func TestSubPropertyEdgeEnumeration(t *testing.T) {
	kb := rdf.New()
	add := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.IRI(obj)) }
	lit := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.Lit(obj)) }
	add("hasCapital", rdf.IRISubPropertyOf, "locatedIn")
	add("y:Italy", rdf.IRIType, "country")
	lit("y:Italy", rdf.IRILabel, "Italy")
	add("y:Rome", rdf.IRIType, "capital")
	lit("y:Rome", rdf.IRILabel, "Rome")
	add("y:Italy", "hasCapital", "y:Rome")
	p := &pattern.Pattern{
		Nodes: []pattern.Node{
			{Column: 0, Type: kb.Res("country")},
			{Column: 1, Type: kb.Res("capital")},
		},
		// Pattern uses the super-property; the asserted fact is hasCapital.
		Edges: []pattern.Edge{{From: 0, To: 1, Prop: kb.Res("locatedIn")}},
	}
	ix := BuildIndex(kb, p, Options{})
	if ix.NumGraphs() != 1 {
		t.Fatalf("sub-property instance graph missed: %d graphs", ix.NumGraphs())
	}
}

func TestUntypedLiteralColumn(t *testing.T) {
	kb := rdf.New()
	add := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.IRI(obj)) }
	lit := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.Lit(obj)) }
	add("y:Rossi", rdf.IRIType, "person")
	lit("y:Rossi", rdf.IRILabel, "Rossi")
	lit("y:Rossi", "height", "1.78")
	p := &pattern.Pattern{
		Nodes: []pattern.Node{
			{Column: 0, Type: kb.Res("person")},
			{Column: 1, Type: rdf.NoID},
		},
		Edges: []pattern.Edge{{From: 0, To: 1, Prop: kb.Res("height")}},
	}
	ix := BuildIndex(kb, p, Options{})
	if ix.NumGraphs() != 1 {
		t.Fatalf("literal-node graph missed: %d", ix.NumGraphs())
	}
	reps := ix.TopK([]string{"Rossi", "1.93"}, 1)
	if len(reps) != 1 || reps[0].Cost != 1 || reps[0].Changes[0].To != "1.78" {
		t.Fatalf("literal repair = %v", reps)
	}
}

func TestRepairStringer(t *testing.T) {
	r := Repair{Cost: 1, Changes: []Change{{Col: 2, From: "Madrid", To: "Rome"}}}
	if s := r.String(); s != `cost=1 col2:"Madrid"→"Rome"` {
		t.Fatalf("String() = %s", s)
	}
}

func TestLargerScaleEnumeration(t *testing.T) {
	// 100 countries × capitals: enumeration must produce exactly 100 graphs
	// and retrieval must stay exact.
	kb := rdf.New()
	p := &pattern.Pattern{}
	for i := 0; i < 100; i++ {
		c := fmt.Sprintf("country%03d", i)
		cap := fmt.Sprintf("capital%03d", i)
		kb.AddFact(rdf.IRI("c:"+c), rdf.IRI(rdf.IRIType), rdf.IRI("country"))
		kb.AddFact(rdf.IRI("c:"+c), rdf.IRI(rdf.IRILabel), rdf.Lit(c))
		kb.AddFact(rdf.IRI("k:"+cap), rdf.IRI(rdf.IRIType), rdf.IRI("capital"))
		kb.AddFact(rdf.IRI("k:"+cap), rdf.IRI(rdf.IRILabel), rdf.Lit(cap))
		kb.AddFact(rdf.IRI("c:"+c), rdf.IRI("hasCapital"), rdf.IRI("k:"+cap))
	}
	p.Nodes = []pattern.Node{
		{Column: 0, Type: kb.Res("country")},
		{Column: 1, Type: kb.Res("capital")},
	}
	p.Edges = []pattern.Edge{{From: 0, To: 1, Prop: kb.Res("hasCapital")}}
	ix := BuildIndex(kb, p, Options{})
	if ix.NumGraphs() != 100 {
		t.Fatalf("graphs = %d, want 100", ix.NumGraphs())
	}
	reps := ix.TopK([]string{"country042", "capital099"}, 3)
	if len(reps) < 2 || reps[0].Cost != 1 {
		t.Fatalf("repairs = %v", reps)
	}
	// Both single-change alignments (fix col0 or fix col1) must surface.
	if reps[1].Cost != 1 {
		t.Fatalf("second repair cost = %g, want 1", reps[1].Cost)
	}
}

func TestCountingCostMatchesAlignment(t *testing.T) {
	// The Example 13 counting evaluation must equal the per-graph alignment
	// cost, weighted or not.
	kb, p := figure5KB()
	for _, opts := range []Options{
		{},
		{Weights: map[int]float64{0: 3, 2: 0.5}},
	} {
		ix := BuildIndex(kb, p, opts)
		tuples := [][]string{
			{"Pirlo", "Italy", "Madrid", "Juve", "Italian", "Flero"},
			{"Casillas", "Italy", "Rome", "Juve", "Spanish", "Mostoles"},
			{"Pirlo", "Spain", "Madrid", "Real Madrid", "Spanish", "Mostoles"},
		}
		for _, tup := range tuples {
			for _, rep := range ix.TopK(tup, 5) {
				recomputed, _ := ix.align(tup, rep.Graph)
				if rep.Cost != recomputed.Cost {
					t.Fatalf("opts %+v tuple %v: counting cost %g != alignment cost %g",
						opts, tup, rep.Cost, recomputed.Cost)
				}
			}
		}
	}
}

func TestTopKStillMatchesNaiveAfterCounting(t *testing.T) {
	kb, p := figure5KB()
	ix := BuildIndex(kb, p, Options{Weights: map[int]float64{1: 2}})
	tup := []string{"Pirlo", "Italy", "Madrid", "Juve", "Italian", "Flero"}
	fast := ix.TopK(tup, 2)
	slow := ix.TopKNaive(tup, 2)
	for i := range fast {
		if fast[i].Cost != slow[i].Cost || fast[i].Graph.ID != slow[i].Graph.ID {
			t.Fatalf("rank %d: %v vs %v", i, fast[i], slow[i])
		}
	}
}
