package repair

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"katara/internal/pattern"
	"katara/internal/rdf"
	"katara/internal/telemetry"
)

// randKB builds a person–country–capital KB big enough that enumeration has
// many roots to shard: nPeople persons, each a national of one of nCountries
// countries, each country with one capital.
func randKB(seed int64, nPeople, nCountries int) (*rdf.Store, *pattern.Pattern) {
	rng := rand.New(rand.NewSource(seed))
	kb := rdf.New()
	add := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.IRI(obj)) }
	lit := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.Lit(obj)) }
	for j := 0; j < nCountries; j++ {
		c, t := fmt.Sprintf("y:C%d", j), fmt.Sprintf("y:T%d", j)
		add(c, rdf.IRIType, "country")
		lit(c, rdf.IRILabel, fmt.Sprintf("C%d", j))
		add(t, rdf.IRIType, "capital")
		lit(t, rdf.IRILabel, fmt.Sprintf("T%d", j))
		add(c, "hasCapital", t)
	}
	for i := 0; i < nPeople; i++ {
		p := fmt.Sprintf("y:P%d", i)
		add(p, rdf.IRIType, "person")
		lit(p, rdf.IRILabel, fmt.Sprintf("P%d", i))
		add(p, "nationality", fmt.Sprintf("y:C%d", rng.Intn(nCountries)))
	}
	pat := &pattern.Pattern{
		Nodes: []pattern.Node{
			{Column: 0, Type: kb.Res("person")},
			{Column: 1, Type: kb.Res("country")},
			{Column: 2, Type: kb.Res("capital")},
		},
		Edges: []pattern.Edge{
			{From: 0, To: 1, Prop: kb.Res("nationality")},
			{From: 1, To: 2, Prop: kb.Res("hasCapital")},
		},
	}
	return kb, pat
}

func TestParallelBuildIndexMatchesSerial(t *testing.T) {
	for _, maxGraphs := range []int{0, 7} {
		kb, pat := randKB(1, 60, 20)
		serial := BuildIndex(kb, pat, Options{MaxGraphs: maxGraphs})
		for _, workers := range []int{2, 4, 8} {
			par := BuildIndex(kb, pat, Options{MaxGraphs: maxGraphs, Workers: workers})
			if !reflect.DeepEqual(serial.Graphs, par.Graphs) {
				t.Fatalf("maxGraphs=%d workers=%d: %d graphs vs serial %d, or different order",
					maxGraphs, workers, par.NumGraphs(), serial.NumGraphs())
			}
			if !reflect.DeepEqual(serial.lists, par.lists) {
				t.Fatalf("maxGraphs=%d workers=%d: inverted lists differ", maxGraphs, workers)
			}
		}
	}
}

func TestBuildIndexTelemetryCountsGraphs(t *testing.T) {
	kb, pat := figure5KB()
	tel := telemetry.New()
	ix := BuildIndex(kb, pat, Options{Telemetry: tel})
	if got := tel.Get(telemetry.GraphsEnumerated); got != int64(ix.NumGraphs()) {
		t.Fatalf("GraphsEnumerated = %d, want %d", got, ix.NumGraphs())
	}
	ix.TopK([]string{"Pirlo", "Italy", "Madrid", "Juve", "Italian", "Flero"}, 2)
	if got := tel.Get(telemetry.RepairsGenerated); got != 2 {
		t.Fatalf("RepairsGenerated = %d, want 2", got)
	}
}

// TestTopKDifferentialRandomized property-checks that the inverted-list
// retrieval and the naive full scan rank identically: same (cost, graph ID)
// sequences on randomized tables and KBs. Weights are integral so cost
// comparisons are exact.
func TestTopKDifferentialRandomized(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		kb, pat := randKB(seed, 30+rng.Intn(40), 5+rng.Intn(15))
		opts := Options{}
		if seed%2 == 1 {
			opts.Weights = map[int]float64{0: float64(1 + rng.Intn(3)), 2: float64(1 + rng.Intn(4))}
		}
		ix := BuildIndex(kb, pat, opts)
		cell := func() string {
			// Mix of real labels and junk that matches nothing.
			switch rng.Intn(4) {
			case 0:
				return fmt.Sprintf("P%d", rng.Intn(70))
			case 1:
				return fmt.Sprintf("C%d", rng.Intn(20))
			case 2:
				return fmt.Sprintf("T%d", rng.Intn(20))
			default:
				return fmt.Sprintf("X%d", rng.Intn(100))
			}
		}
		for trial := 0; trial < 25; trial++ {
			tup := []string{cell(), cell(), cell()}
			k := 1 + rng.Intn(ix.NumGraphs()+2)
			fast := ix.TopK(tup, k)
			slow := ix.TopKNaive(tup, k)
			if len(fast) != len(slow) {
				t.Fatalf("seed=%d tuple=%v k=%d: TopK returned %d repairs, naive %d",
					seed, tup, k, len(fast), len(slow))
			}
			for i := range fast {
				if fast[i].Cost != slow[i].Cost || fast[i].Graph.ID != slow[i].Graph.ID {
					t.Fatalf("seed=%d tuple=%v k=%d rank %d: TopK (cost=%g, g=%d) vs naive (cost=%g, g=%d)",
						seed, tup, k, i, fast[i].Cost, fast[i].Graph.ID, slow[i].Cost, slow[i].Graph.ID)
				}
			}
		}
	}
}
