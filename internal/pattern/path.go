package pattern

import (
	"fmt"
	"strings"

	"katara/internal/rdf"
	"katara/internal/similarity"
)

// This file implements the paper's §9 extension to table patterns:
// relationships that traverse a *chain* of properties through intermediate
// resources — "a person column A1 is related to a country column A2 via two
// relationships: A1 wasBornIn city, and city isLocatedIn A2".

// PathEdge is a directed multi-hop relationship between two columns: From
// relates to To through Props[0]/Props[1]/…, each hop honouring
// sub-property subsumption, with unconstrained intermediate resources.
type PathEdge struct {
	From, To int
	Props    []rdf.ID
}

// Hops returns the path length.
func (pe PathEdge) Hops() int { return len(pe.Props) }

// HasPath reports whether a chain x -Props[0]-> m1 -Props[1]-> … -> y exists
// in kb, with each hop satisfied by the property or one of its
// sub-properties. Intermediates must be resources.
func HasPath(kb *rdf.Store, x rdf.ID, props []rdf.ID, y rdf.ID) bool {
	frontier := map[rdf.ID]bool{x: true}
	for i, p := range props {
		last := i == len(props)-1
		next := map[rdf.ID]bool{}
		subs := append([]rdf.ID{p}, kb.SubProperties(p)...)
		for n := range frontier {
			for _, q := range subs {
				for _, o := range kb.Objects(n, q) {
					if last {
						if o == y {
							return true
						}
						continue
					}
					if !kb.IsLiteral(o) {
						next[o] = true
					}
				}
			}
		}
		if last {
			return false
		}
		if len(next) == 0 {
			return false
		}
		frontier = next
	}
	return false
}

// PathTargets returns all resources reachable from x via the property chain.
func PathTargets(kb *rdf.Store, x rdf.ID, props []rdf.ID) []rdf.ID {
	frontier := map[rdf.ID]bool{x: true}
	for _, p := range props {
		next := map[rdf.ID]bool{}
		subs := append([]rdf.ID{p}, kb.SubProperties(p)...)
		for n := range frontier {
			for _, q := range subs {
				for _, o := range kb.Objects(n, q) {
					next[o] = true
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil
		}
	}
	out := make([]rdf.ID, 0, len(frontier))
	for o := range frontier {
		out = append(out, o)
	}
	return out
}

// PathEdgeBetween returns the path edge from col i to col j, or nil.
func (p *Pattern) PathEdgeBetween(i, j int) *PathEdge {
	for k := range p.Paths {
		if p.Paths[k].From == i && p.Paths[k].To == j {
			return &p.Paths[k]
		}
	}
	return nil
}

// RenderPath pretty-prints a path edge.
func (pe PathEdge) Render(kb *rdf.Store, columns []string) string {
	colName := func(c int) string {
		if c >= 0 && c < len(columns) {
			return columns[c]
		}
		return fmt.Sprintf("col%d", c)
	}
	parts := make([]string, len(pe.Props))
	for i, p := range pe.Props {
		parts[i] = kb.LabelOf(p)
	}
	return fmt.Sprintf("%s -%s-> %s", colName(pe.From), strings.Join(parts, "∘"), colName(pe.To))
}

// evaluatePaths fills m.PathOK for each path edge, and is consulted by the
// consistent-assignment search.
func evaluatePaths(p *Pattern, kb *rdf.Store, m *Match) {
	m.PathOK = make([]bool, len(p.Paths))
	for i, pe := range p.Paths {
		ok := false
		for _, x := range m.Candidates[pe.From] {
			for _, y := range m.Candidates[pe.To] {
				if HasPath(kb, x, pe.Props, y) {
					ok = true
					break
				}
			}
			if ok {
				break
			}
		}
		m.PathOK[i] = ok
	}
}

// DiscoverPaths finds candidate two-hop path relationships between column
// pairs of a table that have *no* direct relationship in kb: for each value
// pair (a, b), it searches chains a -p1-> m -p2-> b and returns the
// distinct property chains with their support (number of rows exhibiting
// the chain). Rows is the number of rows examined; results below
// minSupport·rows are dropped.
func DiscoverPaths(kb *rdf.Store, valuesA, valuesB []string, threshold, minSupport float64) []DiscoveredPath {
	if len(valuesA) != len(valuesB) {
		return nil
	}
	counts := map[[2]rdf.ID]int{}
	cache := map[[2]string][][2]rdf.ID{}
	for i := range valuesA {
		key := [2]string{valuesA[i], valuesB[i]}
		chains, ok := cache[key]
		if !ok {
			chains = twoHopChains(kb, valuesA[i], valuesB[i], threshold)
			cache[key] = chains
		}
		seen := map[[2]rdf.ID]bool{}
		for _, ch := range chains {
			if !seen[ch] {
				seen[ch] = true
				counts[ch]++
			}
		}
	}
	min := int(minSupport * float64(len(valuesA)))
	if min < 2 {
		min = 2
	}
	var out []DiscoveredPath
	for ch, n := range counts {
		if n >= min {
			out = append(out, DiscoveredPath{Props: []rdf.ID{ch[0], ch[1]}, Support: n})
		}
	}
	sortDiscovered(out)
	return out
}

// DiscoveredPath is one candidate property chain with its support.
type DiscoveredPath struct {
	Props   []rdf.ID
	Support int
}

func sortDiscovered(ps []DiscoveredPath) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func less(a, b DiscoveredPath) bool {
	if a.Support != b.Support {
		return a.Support > b.Support
	}
	if a.Props[0] != b.Props[0] {
		return a.Props[0] < b.Props[0]
	}
	return a.Props[1] < b.Props[1]
}

// twoHopChains finds the (p1, p2) chains connecting resources labelled a to
// resources labelled b through one intermediate resource.
func twoHopChains(kb *rdf.Store, a, b string, threshold float64) [][2]rdf.ID {
	var srcs, dsts []rdf.ID
	for _, m := range kb.MatchLabel(a, threshold) {
		srcs = append(srcs, m.Resource)
	}
	for _, m := range kb.MatchLabel(b, threshold) {
		dsts = append(dsts, m.Resource)
	}
	if len(srcs) == 0 || len(dsts) == 0 {
		return nil
	}
	dstSet := map[rdf.ID]bool{}
	for _, d := range dsts {
		dstSet[d] = true
	}
	var out [][2]rdf.ID
	seen := map[[2]rdf.ID]bool{}
	for _, x := range srcs {
		for _, t1 := range kb.Description(x) {
			if kb.IsLiteral(t1.O) || isVocab(kb, t1.P) {
				continue
			}
			for _, t2 := range kb.Description(t1.O) {
				if isVocab(kb, t2.P) || !dstSet[t2.O] {
					continue
				}
				ch := [2]rdf.ID{t1.P, t2.P}
				if !seen[ch] {
					seen[ch] = true
					out = append(out, ch)
				}
			}
		}
	}
	return out
}

func isVocab(kb *rdf.Store, p rdf.ID) bool {
	return p == kb.TypeID || p == kb.LabelID || p == kb.SubClassOfID || p == kb.SubPropertyOfID
}

// normalizeEq is a tiny helper for tests comparing values.
func normalizeEq(a, b string) bool { return similarity.Normalize(a) == similarity.Normalize(b) }
