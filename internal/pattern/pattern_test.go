package pattern

import (
	"testing"

	"katara/internal/rdf"
	"katara/internal/similarity"
)

// kbFixture builds the Fig. 2 KB fragment: person/country/capital types,
// nationality and hasCapital relationships. Italy→Rome and Spain→Madrid have
// capitals; S. Africa's capital fact is missing (KB incompleteness).
func kbFixture() *rdf.Store {
	s := rdf.New()
	add := func(sub, pred, obj string) { s.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.IRI(obj)) }
	lit := func(sub, pred, obj string) { s.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.Lit(obj)) }

	add("y:capital", rdf.IRISubClassOf, "y:city")
	add("y:hasCapital", rdf.IRISubPropertyOf, "y:locatedIn")

	for _, e := range []struct{ iri, typ, label string }{
		{"y:Rossi", "y:person", "Rossi"},
		{"y:Pirlo", "y:person", "Pirlo"},
		{"y:Klate", "y:person", "Klate"},
		{"y:Italy", "y:country", "Italy"},
		{"y:Spain", "y:country", "Spain"},
		{"y:SAfrica", "y:country", "S. Africa"},
		{"y:Rome", "y:capital", "Rome"},
		{"y:Madrid", "y:capital", "Madrid"},
		{"y:Pretoria", "y:capital", "Pretoria"},
	} {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	add("y:Italy", "y:hasCapital", "y:Rome")
	add("y:Spain", "y:hasCapital", "y:Madrid")
	add("y:Rossi", "y:nationality", "y:Italy")
	add("y:Pirlo", "y:nationality", "y:Italy")
	add("y:Klate", "y:nationality", "y:SAfrica")
	lit("y:Rossi", "y:height", "1.78")
	return s
}

// figure2Pattern is φ_s from Fig. 2(a) over columns A(person), B(country),
// C(capital) with A-nationality->B and B-hasCapital->C.
func figure2Pattern(kb *rdf.Store) *Pattern {
	res := func(iri string) rdf.ID { return kb.Res(iri) }
	return &Pattern{
		Nodes: []Node{
			{Column: 0, Type: res("y:person")},
			{Column: 1, Type: res("y:country")},
			{Column: 2, Type: res("y:capital")},
		},
		Edges: []Edge{
			{From: 0, To: 1, Prop: res("y:nationality")},
			{From: 1, To: 2, Prop: res("y:hasCapital")},
		},
	}
}

func TestFullMatch(t *testing.T) {
	kb := kbFixture()
	p := figure2Pattern(kb)
	// t1 = (Rossi, Italy, Rome): full match, Fig. 2(b).
	m := Evaluate(p, kb, []string{"Rossi", "Italy", "Rome"}, similarity.DefaultThreshold)
	if !m.Full {
		t.Fatalf("t1 should fully match: %+v", m)
	}
	if m.Partial() {
		t.Fatal("full match must not report partial")
	}
	if len(m.Assignment) != 3 {
		t.Fatalf("assignment = %v", m.Assignment)
	}
}

func TestPartialMatchMissingEdge(t *testing.T) {
	kb := kbFixture()
	p := figure2Pattern(kb)
	// t2 = (Klate, S. Africa, Pretoria): node conditions hold, the
	// hasCapital edge is missing from the KB — Fig. 2(c).
	m := Evaluate(p, kb, []string{"Klate", "S. Africa", "Pretoria"}, similarity.DefaultThreshold)
	if m.Full {
		t.Fatal("t2 must not fully match")
	}
	if !m.Partial() {
		t.Fatal("t2 should partially match")
	}
	if !m.NodeOK[0] || !m.NodeOK[1] || !m.NodeOK[2] {
		t.Fatalf("nodes should all validate: %v", m.NodeOK)
	}
	if !m.EdgeOK[0] {
		t.Fatal("nationality edge should hold")
	}
	if m.EdgeOK[1] {
		t.Fatal("hasCapital edge should be missing")
	}
}

func TestErroneousTuple(t *testing.T) {
	kb := kbFixture()
	p := figure2Pattern(kb)
	// t3 = (Pirlo, Italy, Madrid): Italy→Madrid does not hold — Fig. 2(d).
	m := Evaluate(p, kb, []string{"Pirlo", "Italy", "Madrid"}, similarity.DefaultThreshold)
	if m.Full {
		t.Fatal("t3 must not fully match")
	}
	if m.EdgeOK[1] {
		t.Fatal("Italy hasCapital Madrid should not hold")
	}
}

func TestFuzzyValueMatch(t *testing.T) {
	kb := kbFixture()
	p := figure2Pattern(kb)
	// Slight misspelling still resolves via the 0.7 threshold.
	m := Evaluate(p, kb, []string{"Rossi", "Itally", "Rome"}, similarity.DefaultThreshold)
	if !m.Full {
		t.Fatalf("fuzzy match failed: %+v", m)
	}
}

func TestTypeSubsumptionInMatch(t *testing.T) {
	kb := kbFixture()
	city := kb.Res("y:city")
	p := &Pattern{Nodes: []Node{{Column: 0, Type: city}}}
	// Rome has asserted type capital ⊑ city: condition 2's subclassOf case.
	m := Evaluate(p, kb, []string{"Rome"}, similarity.DefaultThreshold)
	if !m.Full {
		t.Fatal("capital instance should satisfy city node")
	}
}

func TestSubPropertyInEdge(t *testing.T) {
	kb := kbFixture()
	p := &Pattern{
		Nodes: []Node{
			{Column: 0, Type: kb.Res("y:country")},
			{Column: 1, Type: kb.Res("y:capital")},
		},
		Edges: []Edge{{From: 0, To: 1, Prop: kb.Res("y:locatedIn")}},
	}
	// hasCapital ⊑ locatedIn satisfies condition 3's subpropertyOf case.
	m := Evaluate(p, kb, []string{"Italy", "Rome"}, similarity.DefaultThreshold)
	if !m.Full {
		t.Fatal("sub-property edge should satisfy pattern")
	}
}

func TestUntypedLiteralNode(t *testing.T) {
	kb := kbFixture()
	p := &Pattern{
		Nodes: []Node{
			{Column: 0, Type: kb.Res("y:person")},
			{Column: 1, Type: rdf.NoID},
		},
		Edges: []Edge{{From: 0, To: 1, Prop: kb.Res("y:height")}},
	}
	m := Evaluate(p, kb, []string{"Rossi", "1.78"}, similarity.DefaultThreshold)
	if !m.Full {
		t.Fatalf("literal edge should match: %+v", m)
	}
	m = Evaluate(p, kb, []string{"Rossi", "9.99"}, similarity.DefaultThreshold)
	if m.Full {
		t.Fatal("wrong literal must not match")
	}
}

func TestConsistentAssignmentRequired(t *testing.T) {
	// Ambiguity test: two resources share the label "Rossi" (a soccer player
	// and a motorcycle racer, §3.1); only one has the nationality edge. The
	// matcher must find the consistent assignment.
	kb := kbFixture()
	kb.AddFact(rdf.IRI("y:RossiRacer"), rdf.IRI(rdf.IRIType), rdf.IRI("y:person"))
	kb.AddFact(rdf.IRI("y:RossiRacer"), rdf.IRI(rdf.IRILabel), rdf.Lit("Rossi"))
	p := figure2Pattern(kb)
	m := Evaluate(p, kb, []string{"Rossi", "Italy", "Rome"}, similarity.DefaultThreshold)
	if !m.Full {
		t.Fatal("ambiguous label should still match via the consistent resource")
	}
	soccer := kb.LookupTerm(rdf.IRI("y:Rossi"))
	if m.Assignment[0] != soccer {
		t.Fatalf("assignment picked %v, want the soccer player", m.Assignment[0])
	}
}

func TestColumnsAndAccessors(t *testing.T) {
	kb := kbFixture()
	p := figure2Pattern(kb)
	cols := p.Columns()
	if len(cols) != 3 || cols[0] != 0 || cols[2] != 2 {
		t.Fatalf("Columns = %v", cols)
	}
	if p.TypeOf(1) != kb.Res("y:country") {
		t.Fatal("TypeOf broken")
	}
	if p.TypeOf(9) != rdf.NoID {
		t.Fatal("TypeOf of uncovered column should be NoID")
	}
	if p.EdgeBetween(1, 2) == nil || p.EdgeBetween(2, 1) != nil {
		t.Fatal("EdgeBetween direction broken")
	}
}

func TestConnectedAndComponents(t *testing.T) {
	kb := kbFixture()
	p := figure2Pattern(kb)
	if !p.Connected() {
		t.Fatal("figure-2 pattern is connected")
	}
	// Add an isolated node: now two components.
	p2 := p.Clone()
	p2.Nodes = append(p2.Nodes, Node{Column: 5, Type: kb.Res("y:city")})
	if p2.Connected() {
		t.Fatal("pattern with isolated node is not connected")
	}
	comps := p2.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	total := 0
	for _, c := range comps {
		total += len(c.Nodes)
	}
	if total != len(p2.Nodes) {
		t.Fatal("components lost nodes")
	}
}

func TestKeyCanonical(t *testing.T) {
	kb := kbFixture()
	a := figure2Pattern(kb)
	b := figure2Pattern(kb)
	// Same content, different order.
	b.Nodes[0], b.Nodes[2] = b.Nodes[2], b.Nodes[0]
	b.Edges[0], b.Edges[1] = b.Edges[1], b.Edges[0]
	if a.Key() != b.Key() {
		t.Fatal("Key must be order-insensitive")
	}
	c := figure2Pattern(kb)
	c.Nodes[2].Type = kb.Res("y:city")
	if a.Key() == c.Key() {
		t.Fatal("different patterns must have different keys")
	}
}

func TestRender(t *testing.T) {
	kb := kbFixture()
	p := figure2Pattern(kb)
	s := p.Render(kb, []string{"A", "B", "C"})
	for _, want := range []string{"A(person)", "B(country)", "C(capital)", "hasCapital"} {
		if !contains(s, want) {
			t.Errorf("Render missing %q in %q", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
