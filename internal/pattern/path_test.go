package pattern

import (
	"testing"

	"katara/internal/rdf"
	"katara/internal/similarity"
)

// pathKB builds the §9 example: persons born in cities that are located in
// countries — no direct person→country property exists.
func pathKB() *rdf.Store {
	kb := rdf.New()
	add := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)) }
	lit := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.Lit(o)) }
	for _, e := range []struct{ iri, typ, label string }{
		{"y:Pirlo", "person", "Pirlo"},
		{"y:Xavi", "person", "Xavi"},
		{"y:Flero", "city", "Flero"},
		{"y:Terrassa", "city", "Terrassa"},
		{"y:Italy", "country", "Italy"},
		{"y:Spain", "country", "Spain"},
	} {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	add("y:Pirlo", "wasBornIn", "y:Flero")
	add("y:Xavi", "wasBornIn", "y:Terrassa")
	add("y:Flero", "isLocatedIn", "y:Italy")
	add("y:Terrassa", "isLocatedIn", "y:Spain")
	return kb
}

func TestHasPath(t *testing.T) {
	kb := pathKB()
	pirlo := kb.Res("y:Pirlo")
	italy := kb.Res("y:Italy")
	spain := kb.Res("y:Spain")
	chain := []rdf.ID{kb.Res("wasBornIn"), kb.Res("isLocatedIn")}
	if !HasPath(kb, pirlo, chain, italy) {
		t.Fatal("Pirlo -bornIn∘locatedIn-> Italy should hold")
	}
	if HasPath(kb, pirlo, chain, spain) {
		t.Fatal("Pirlo does not reach Spain")
	}
	// Single-hop path degenerates to the plain edge check.
	if !HasPath(kb, pirlo, chain[:1], kb.Res("y:Flero")) {
		t.Fatal("single-hop path failed")
	}
	if HasPath(kb, pirlo, []rdf.ID{kb.Res("nosuch")}, italy) {
		t.Fatal("unknown property matched")
	}
}

func TestHasPathSubProperties(t *testing.T) {
	kb := pathKB()
	kb.AddFact(rdf.IRI("isLocatedIn"), rdf.IRI(rdf.IRISubPropertyOf), rdf.IRI("spatiallyRelated"))
	pirlo := kb.Res("y:Pirlo")
	italy := kb.Res("y:Italy")
	chain := []rdf.ID{kb.Res("wasBornIn"), kb.Res("spatiallyRelated")}
	if !HasPath(kb, pirlo, chain, italy) {
		t.Fatal("path via super-property should hold (condition 3 per hop)")
	}
}

func TestPathTargets(t *testing.T) {
	kb := pathKB()
	pirlo := kb.Res("y:Pirlo")
	chain := []rdf.ID{kb.Res("wasBornIn"), kb.Res("isLocatedIn")}
	got := PathTargets(kb, pirlo, chain)
	if len(got) != 1 || got[0] != kb.Res("y:Italy") {
		t.Fatalf("PathTargets = %v", got)
	}
	if got := PathTargets(kb, pirlo, []rdf.ID{kb.Res("nosuch")}); got != nil {
		t.Fatalf("unexpected targets %v", got)
	}
}

func pathPattern(kb *rdf.Store) *Pattern {
	return &Pattern{
		Nodes: []Node{
			{Column: 0, Type: kb.Res("person")},
			{Column: 1, Type: kb.Res("country")},
		},
		Paths: []PathEdge{{
			From: 0, To: 1,
			Props: []rdf.ID{kb.Res("wasBornIn"), kb.Res("isLocatedIn")},
		}},
	}
}

func TestEvaluateWithPathEdge(t *testing.T) {
	kb := pathKB()
	p := pathPattern(kb)
	m := Evaluate(p, kb, []string{"Pirlo", "Italy"}, similarity.DefaultThreshold)
	if !m.Full {
		t.Fatalf("path-edge pattern should fully match: %+v", m)
	}
	if len(m.PathOK) != 1 || !m.PathOK[0] {
		t.Fatalf("PathOK = %v", m.PathOK)
	}
	// Wrong country: path condition fails, nodes still hold.
	m2 := Evaluate(p, kb, []string{"Pirlo", "Spain"}, similarity.DefaultThreshold)
	if m2.Full {
		t.Fatal("wrong country must not fully match")
	}
	if m2.PathOK[0] {
		t.Fatal("path should not hold for Pirlo→Spain")
	}
	if !m2.Partial() {
		t.Fatal("nodes hold, so the match is partial")
	}
}

func TestPathsInStructureHelpers(t *testing.T) {
	kb := pathKB()
	p := pathPattern(kb)
	cols := p.Columns()
	if len(cols) != 2 {
		t.Fatalf("Columns = %v", cols)
	}
	if !p.Connected() {
		t.Fatal("path edge must connect the graph")
	}
	if p.PathEdgeBetween(0, 1) == nil || p.PathEdgeBetween(1, 0) != nil {
		t.Fatal("PathEdgeBetween broken")
	}
	cp := p.Clone()
	cp.Paths[0].Props[0] = kb.Res("other")
	if p.Paths[0].Props[0] == kb.Res("other") {
		t.Fatal("Clone shares path storage")
	}
	if p.Key() == cp.Key() {
		t.Fatal("Key must reflect path contents")
	}
	s := p.Render(kb, []string{"A", "B"})
	if !contains(s, "wasBornIn∘isLocatedIn") {
		t.Fatalf("Render = %s", s)
	}
}

func TestDiscoverPaths(t *testing.T) {
	kb := pathKB()
	// A two-row table (person, country) with no direct relationship.
	a := []string{"Pirlo", "Xavi"}
	b := []string{"Italy", "Spain"}
	found := DiscoverPaths(kb, a, b, similarity.DefaultThreshold, 0.5)
	if len(found) == 0 {
		t.Fatal("two-hop path not discovered")
	}
	best := found[0]
	if best.Support != 2 {
		t.Fatalf("support = %d, want 2", best.Support)
	}
	if best.Props[0] != kb.Res("wasBornIn") || best.Props[1] != kb.Res("isLocatedIn") {
		t.Fatalf("chain = %v", best.Props)
	}
}

func TestDiscoverPathsNoise(t *testing.T) {
	kb := pathKB()
	// Mismatched pairs: no chain reaches min support.
	a := []string{"Pirlo", "Xavi"}
	b := []string{"Spain", "Italy"}
	if found := DiscoverPaths(kb, a, b, similarity.DefaultThreshold, 0.5); len(found) != 0 {
		t.Fatalf("unexpected chains %v", found)
	}
	if got := DiscoverPaths(kb, a, b[:1], 0.7, 0.5); got != nil {
		t.Fatal("mismatched lengths must return nil")
	}
}

func TestNormalizeEqHelper(t *testing.T) {
	if !normalizeEq("S. Africa", "s africa") || normalizeEq("a", "b") {
		t.Fatal("normalizeEq broken")
	}
}

func TestDOTExport(t *testing.T) {
	kb := pathKB()
	p := pathPattern(kb)
	p.Edges = append(p.Edges, Edge{From: 0, To: 1, Prop: kb.Res("knowsAbout")})
	dot := p.DOT(kb, []string{"A", "B"})
	for _, want := range []string{
		"digraph pattern", `n0 [label="A (person)"]`, `n1 [label="B (country)"]`,
		"style=dashed", "wasBornIn∘isLocatedIn",
	} {
		if !contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
