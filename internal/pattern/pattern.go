// Package pattern defines KATARA's table patterns (§3.2): labelled directed
// graphs whose nodes are (column, KB type) pairs and whose edges are KB
// relationships between columns, together with the tuple-matching semantics
// (conditions 1–3) including full and partial matches.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"katara/internal/rdf"
	"katara/internal/similarity"
)

// Node types a table column with a KB class. Type == rdf.NoID marks an
// untyped node, i.e. a column whose cells map to literals (e.g. heights).
type Node struct {
	Column int
	Type   rdf.ID
}

// Edge is a directed relationship between two columns. From is the subject
// column, To the object column, Prop the KB property (§3.2).
type Edge struct {
	From, To int
	Prop     rdf.ID
}

// Pattern is a table pattern φ with its discovery score (§4.2). Paths holds
// the §9 extension: multi-hop relationships through intermediate resources.
type Pattern struct {
	Nodes []Node
	Edges []Edge
	Paths []PathEdge
	Score float64
}

// Clone deep-copies the pattern.
func (p *Pattern) Clone() *Pattern {
	cp := &Pattern{
		Nodes: append([]Node(nil), p.Nodes...),
		Edges: append([]Edge(nil), p.Edges...),
		Score: p.Score,
	}
	for _, pe := range p.Paths {
		cp.Paths = append(cp.Paths, PathEdge{
			From: pe.From, To: pe.To,
			Props: append([]rdf.ID(nil), pe.Props...),
		})
	}
	return cp
}

// Columns returns the sorted set of columns covered by the pattern.
func (p *Pattern) Columns() []int {
	set := map[int]bool{}
	for _, n := range p.Nodes {
		set[n.Column] = true
	}
	for _, e := range p.Edges {
		set[e.From] = true
		set[e.To] = true
	}
	for _, pe := range p.Paths {
		set[pe.From] = true
		set[pe.To] = true
	}
	cols := make([]int, 0, len(set))
	for c := range set {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

// NodeFor returns the node typing column col, or nil.
func (p *Pattern) NodeFor(col int) *Node {
	for i := range p.Nodes {
		if p.Nodes[i].Column == col {
			return &p.Nodes[i]
		}
	}
	return nil
}

// TypeOf returns the type of column col, or rdf.NoID.
func (p *Pattern) TypeOf(col int) rdf.ID {
	if n := p.NodeFor(col); n != nil {
		return n.Type
	}
	return rdf.NoID
}

// EdgeBetween returns the edge from col i to col j, or nil.
func (p *Pattern) EdgeBetween(i, j int) *Edge {
	for k := range p.Edges {
		if p.Edges[k].From == i && p.Edges[k].To == j {
			return &p.Edges[k]
		}
	}
	return nil
}

// Connected reports whether the pattern graph is connected (§3.2 assumes
// table patterns are connected; disconnected components are treated as
// independent patterns).
func (p *Pattern) Connected() bool {
	cols := p.Columns()
	if len(cols) <= 1 {
		return true
	}
	adj := map[int][]int{}
	for _, e := range p.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	for _, pe := range p.Paths {
		adj[pe.From] = append(adj[pe.From], pe.To)
		adj[pe.To] = append(adj[pe.To], pe.From)
	}
	seen := map[int]bool{cols[0]: true}
	queue := []int{cols[0]}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, n := range adj[c] {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return len(seen) == len(cols)
}

// Components splits the pattern into connected components, each a pattern.
func (p *Pattern) Components() []*Pattern {
	cols := p.Columns()
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, c := range cols {
		parent[c] = c
	}
	for _, e := range p.Edges {
		parent[find(e.From)] = find(e.To)
	}
	byRoot := map[int]*Pattern{}
	order := []int{}
	for _, n := range p.Nodes {
		r := find(n.Column)
		if byRoot[r] == nil {
			byRoot[r] = &Pattern{}
			order = append(order, r)
		}
		byRoot[r].Nodes = append(byRoot[r].Nodes, n)
	}
	for _, e := range p.Edges {
		r := find(e.From)
		if byRoot[r] == nil {
			byRoot[r] = &Pattern{}
			order = append(order, r)
		}
		byRoot[r].Edges = append(byRoot[r].Edges, e)
	}
	out := make([]*Pattern, 0, len(order))
	for _, r := range order {
		out = append(out, byRoot[r])
	}
	return out
}

// Render pretty-prints the pattern using KB labels and column names.
func (p *Pattern) Render(kb *rdf.Store, columns []string) string {
	colName := func(c int) string {
		if c >= 0 && c < len(columns) {
			return columns[c]
		}
		return fmt.Sprintf("col%d", c)
	}
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteString(", ")
		}
		if n.Type == rdf.NoID {
			fmt.Fprintf(&b, "%s(⊥)", colName(n.Column))
		} else {
			fmt.Fprintf(&b, "%s(%s)", colName(n.Column), kb.LabelOf(n.Type))
		}
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&b, "; %s -%s-> %s", colName(e.From), kb.LabelOf(e.Prop), colName(e.To))
	}
	for _, pe := range p.Paths {
		b.WriteString("; " + pe.Render(kb, columns))
	}
	if p.Score != 0 {
		fmt.Fprintf(&b, " [score %.3f]", p.Score)
	}
	return b.String()
}

// DOT renders the pattern as a Graphviz digraph — the Fig. 2(a)
// presentation: one node per typed column labelled "col (type)", one
// labelled edge per relationship, dashed edges for §9 path relationships.
func (p *Pattern) DOT(kb *rdf.Store, columns []string) string {
	colName := func(c int) string {
		if c >= 0 && c < len(columns) {
			return columns[c]
		}
		return fmt.Sprintf("col%d", c)
	}
	var b strings.Builder
	b.WriteString("digraph pattern {\n  rankdir=LR;\n  node [shape=ellipse];\n")
	for _, n := range p.Nodes {
		label := colName(n.Column)
		if n.Type != rdf.NoID {
			label = fmt.Sprintf("%s (%s)", label, kb.LabelOf(n.Type))
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.Column, label)
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e.From, e.To, kb.LabelOf(e.Prop))
	}
	for _, pe := range p.Paths {
		parts := make([]string, len(pe.Props))
		for i, pr := range pe.Props {
			parts[i] = kb.LabelOf(pr)
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q, style=dashed];\n",
			pe.From, pe.To, strings.Join(parts, "∘"))
	}
	b.WriteString("}\n")
	return b.String()
}

// Key returns a canonical identity string (type/edge assignments, ignoring
// score), used for deduplication in discovery.
func (p *Pattern) Key() string {
	nodes := append([]Node(nil), p.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Column < nodes[j].Column })
	edges := append([]Edge(nil), p.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Prop < edges[j].Prop
	})
	var b strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&b, "n%d:%d;", n.Column, n.Type)
	}
	for _, e := range edges {
		fmt.Fprintf(&b, "e%d-%d:%d;", e.From, e.To, e.Prop)
	}
	paths := append([]PathEdge(nil), p.Paths...)
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].From != paths[j].From {
			return paths[i].From < paths[j].From
		}
		return paths[i].To < paths[j].To
	})
	for _, pe := range paths {
		fmt.Fprintf(&b, "p%d-%d:%v;", pe.From, pe.To, pe.Props)
	}
	return b.String()
}

// Match is the outcome of evaluating one tuple against a pattern (§3.2).
type Match struct {
	// Candidates holds, per covered column, the KB resources whose label
	// matches the cell value and whose type satisfies the node (condition 2).
	// Untyped nodes resolve to the literal ID if present in the KB.
	Candidates map[int][]rdf.ID
	// NodeOK reports condition 2 per column.
	NodeOK map[int]bool
	// EdgeOK reports condition 3 per edge index, tested independently.
	EdgeOK []bool
	// PathOK reports the §9 path-edge condition per path index.
	PathOK []bool
	// Full reports whether a single consistent resource assignment satisfies
	// every node, edge and path (t ⊨ φ).
	Full bool
	// Assignment is one witnessing resource assignment when Full.
	Assignment map[int]rdf.ID
}

// Partial reports whether the tuple partially matches: at least one node or
// edge condition holds but not all (§3.2, Example 3).
func (m *Match) Partial() bool {
	if m.Full {
		return false
	}
	any := false
	for _, ok := range m.NodeOK {
		if ok {
			any = true
		}
	}
	for _, ok := range m.EdgeOK {
		if ok {
			any = true
		}
	}
	for _, ok := range m.PathOK {
		if ok {
			any = true
		}
	}
	return any
}

// matchBand keeps only resource matches scoring within this margin of a
// cell's best match: an exact match suppresses distant fuzzy homonyms
// ("FC Springfield" must not satisfy conditions meant for "Springfield"),
// while a typo cell with no exact match still resolves through its best
// fuzzy candidates.
const matchBand = 0.1

// LabelSource resolves cell values to KB resources. *rdf.Store satisfies it,
// as does resolve.Cache; the interface is declared here (consumer side) so
// pattern does not depend on the cache package.
type LabelSource interface {
	MatchLabel(value string, threshold float64) []rdf.LabelMatch
}

// Evaluate matches tuple (indexed by column) against p over kb with the
// given label-similarity threshold.
func Evaluate(p *Pattern, kb *rdf.Store, tuple []string, threshold float64) *Match {
	return EvaluateWith(p, kb, kb, tuple, threshold)
}

// EvaluateWith is Evaluate with label resolution routed through labels —
// typically a shared memo cache — while type and edge checks still read kb
// directly. labels must resolve against kb.
func EvaluateWith(p *Pattern, kb *rdf.Store, labels LabelSource, tuple []string, threshold float64) *Match {
	m := &Match{
		Candidates: make(map[int][]rdf.ID, len(p.Nodes)),
		NodeOK:     make(map[int]bool, len(p.Nodes)),
		EdgeOK:     make([]bool, len(p.Edges)),
	}
	for _, n := range p.Nodes {
		if n.Column >= len(tuple) {
			continue
		}
		val := tuple[n.Column]
		var cands []rdf.ID
		if n.Type == rdf.NoID {
			if id := kb.LookupTerm(rdf.Lit(val)); id != rdf.NoID {
				cands = []rdf.ID{id}
			} else if id := kb.LookupTerm(rdf.Lit(similarity.Normalize(val))); id != rdf.NoID {
				cands = []rdf.ID{id}
			}
		} else {
			hits := labels.MatchLabel(val, threshold)
			best := 0.0
			if len(hits) > 0 {
				best = hits[0].Score
			}
			for _, hit := range hits {
				if hit.Score < best-matchBand {
					break // hits are sorted by score
				}
				if kb.HasType(hit.Resource, n.Type) {
					cands = append(cands, hit.Resource)
				}
			}
		}
		m.Candidates[n.Column] = cands
		m.NodeOK[n.Column] = len(cands) > 0
	}
	for i, e := range p.Edges {
		m.EdgeOK[i] = edgeHolds(kb, e, m.Candidates[e.From], m.Candidates[e.To])
	}
	evaluatePaths(p, kb, m)
	m.Full, m.Assignment = consistentAssignment(p, kb, m)
	return m
}

func edgeHolds(kb *rdf.Store, e Edge, subs, objs []rdf.ID) bool {
	for _, s := range subs {
		for _, o := range objs {
			if kb.HasPredicate(s, e.Prop, o) {
				return true
			}
		}
	}
	return false
}

// consistentAssignment searches for one resource per column satisfying all
// nodes and edges simultaneously (condition 1's one-to-one mapping plus
// conditions 2–3). Patterns are small, so plain backtracking suffices.
func consistentAssignment(p *Pattern, kb *rdf.Store, m *Match) (bool, map[int]rdf.ID) {
	cols := p.Columns()
	for _, c := range cols {
		if len(m.Candidates[c]) == 0 {
			return false, nil
		}
	}
	assign := make(map[int]rdf.ID, len(cols))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(cols) {
			return true
		}
		c := cols[i]
		for _, r := range m.Candidates[c] {
			assign[c] = r
			ok := true
			for _, e := range p.Edges {
				sID, sOK := assign[e.From]
				oID, oOK := assign[e.To]
				if sOK && oOK && !kb.HasPredicate(sID, e.Prop, oID) {
					ok = false
					break
				}
			}
			if ok {
				for _, pe := range p.Paths {
					sID, sOK := assign[pe.From]
					oID, oOK := assign[pe.To]
					if sOK && oOK && !HasPath(kb, sID, pe.Props, oID) {
						ok = false
						break
					}
				}
			}
			if ok && rec(i+1) {
				return true
			}
		}
		delete(assign, c)
		return false
	}
	if rec(0) {
		return true, assign
	}
	return false, nil
}
