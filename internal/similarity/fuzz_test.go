package similarity

import (
	"math"
	"reflect"
	"testing"
)

// fuzzIndex is a fixed index covering the label shapes the trigram lookup
// has to handle: short strings, shared prefixes, duplicates, unicode,
// punctuation and the empty string.
func fuzzIndex() *Index {
	ix := NewIndex()
	for _, s := range []string{
		"Rome", "Roma", "Romania", "romanian", "Madrid", "Paris",
		"Pretoria", "Cape Town", "S. Africa", "South Africa",
		"UK", "United Kingdom", "Côte d'Ivoire",
		"Johannesburg", "Johannesburg", "Johannesburgh",
		"", "banana",
	} {
		ix.Add(s)
	}
	return ix
}

// FuzzSimilarityLookup feeds arbitrary queries through Index.Lookup and
// checks it against the reference scorer: no panic, Normalize idempotent,
// results sorted best-first with ascending-id tie-breaks and no duplicate
// ids, every hit's score within [threshold, 1] and equal to the reference
// Score of the query against the stored value, and the whole call
// deterministic.
func FuzzSimilarityLookup(f *testing.F) {
	ix := fuzzIndex()
	f.Add("Rome")
	f.Add("rome ")
	f.Add("Pretorria")
	f.Add("")
	f.Add("bananana")
	f.Add("Johannesburgh")
	f.Add("united  KINGDOM")
	f.Add("CÔTE D'IVOIRE")
	f.Fuzz(func(t *testing.T, q string) {
		if len(q) > 256 {
			t.Skip("similarity cost grows with length; bound the input")
		}
		n := Normalize(q)
		if again := Normalize(n); again != n {
			t.Fatalf("Normalize not idempotent: %q -> %q -> %q", q, n, again)
		}
		hits := ix.Lookup(q, DefaultThreshold)
		seen := map[int32]bool{}
		for i, h := range hits {
			if h.ID < 0 || int(h.ID) >= ix.Len() {
				t.Fatalf("hit %d: id %d out of range", i, h.ID)
			}
			if seen[h.ID] {
				t.Fatalf("hit %d: duplicate id %d", i, h.ID)
			}
			seen[h.ID] = true
			if h.Score < DefaultThreshold || h.Score > 1 {
				t.Fatalf("hit %d: score %v outside [%v, 1]", i, h.Score, DefaultThreshold)
			}
			if ref := Score(q, ix.Value(h.ID)); math.Abs(h.Score-ref) > 1e-12 {
				t.Fatalf("hit %d (%q): lookup score %v != reference Score %v", i, ix.Value(h.ID), h.Score, ref)
			}
			if i > 0 {
				prev := hits[i-1]
				if h.Score > prev.Score {
					t.Fatalf("hit %d: score %v after %v — not best-first", i, h.Score, prev.Score)
				}
				if h.Score == prev.Score && h.ID <= prev.ID {
					t.Fatalf("hit %d: tie at %v not broken by ascending id", i, h.Score)
				}
			}
		}
		if again := ix.Lookup(q, DefaultThreshold); !reflect.DeepEqual(hits, again) {
			t.Fatalf("Lookup(%q) is not deterministic:\n%v\nvs\n%v", q, hits, again)
		}
	})
}
