//go:build !race

package similarity

// raceEnabled reports whether the race detector is active; its
// instrumentation adds per-call allocations that break allocation tests.
const raceEnabled = false
