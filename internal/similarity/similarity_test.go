package similarity

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"S. Africa", "s africa"},
		{"  Hello   World ", "hello world"},
		{"Rome", "rome"},
		{"P. Eliz.", "p eliz"},
		{"United_Kingdom", "united kingdom"},
		{"O'Brien", "obrien"},
		{"a-b", "a b"},
		{"", ""},
		{"...", ""},
		{"Côte d'Ivoire", "côte divoire"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"rome", "rome", 0},
		{"rome", "roma", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symm := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(symm, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); got < 0.95 || got > 0.97 {
		t.Errorf("JaroWinkler(martha,marhta) = %f, want ~0.961", got)
	}
	if got := JaroWinkler("dixon", "dicksonx"); got < 0.8 || got > 0.82 {
		t.Errorf("JaroWinkler(dixon,dicksonx) = %f, want ~0.813", got)
	}
	if JaroWinkler("abc", "abc") != 1 {
		t.Error("identical strings must score 1")
	}
	if JaroWinkler("abc", "xyz") != 0 {
		t.Error("disjoint strings must score 0")
	}
}

func TestJaroBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := Jaro(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrigramJaccard(t *testing.T) {
	if TrigramJaccard("rome", "rome") != 1 {
		t.Error("identical strings must have Jaccard 1")
	}
	if got := TrigramJaccard("night", "day"); got > 0.2 {
		t.Errorf("disjoint-ish strings scored %f", got)
	}
}

func TestScoreAndMatch(t *testing.T) {
	// The paper's running examples: slightly different surface forms of the
	// same entity should match at the 0.7 threshold; distinct entities not.
	yes := [][2]string{
		{"Rome", "rome"},
		{"S. Africa", "S Africa"},
		{"Pretoria", "pretoria"},
		{"United Kingdom", "United  Kingdom"},
		{"Juventus", "Juventuss"},
	}
	for _, p := range yes {
		if !Match(p[0], p[1]) {
			t.Errorf("expected Match(%q,%q)", p[0], p[1])
		}
	}
	no := [][2]string{
		{"Rome", "Madrid"},
		{"Italy", "Spain"},
		{"Pretoria", "Cape Town"},
	}
	for _, p := range no {
		if Match(p[0], p[1]) {
			t.Errorf("expected no Match(%q,%q)", p[0], p[1])
		}
	}
}

func TestScoreBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		s := Score(a, b)
		return s >= 0 && s <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreReflexiveProperty(t *testing.T) {
	f := func(a string) bool { return Score(a, a) == 1 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexExactLookup(t *testing.T) {
	ix := NewIndex()
	idRome := ix.Add("Rome")
	ix.Add("Madrid")
	idRome2 := ix.Add("rome")
	hits := ix.Lookup("ROME", DefaultThreshold)
	if len(hits) < 2 {
		t.Fatalf("expected both rome entries, got %v", hits)
	}
	found := map[int32]bool{}
	for _, h := range hits {
		found[h.ID] = true
		if h.Score < DefaultThreshold {
			t.Errorf("hit below threshold: %v", h)
		}
	}
	if !found[idRome] || !found[idRome2] {
		t.Errorf("missing exact ids in %v", hits)
	}
}

func TestIndexFuzzyLookup(t *testing.T) {
	ix := NewIndex()
	id := ix.Add("Pretoria")
	ix.Add("Cape Town")
	hits := ix.Lookup("Pretorria", DefaultThreshold)
	if len(hits) == 0 || hits[0].ID != id {
		t.Fatalf("fuzzy lookup failed: %v", hits)
	}
	if hits[0].Score >= 1 {
		t.Errorf("fuzzy hit should score below 1, got %f", hits[0].Score)
	}
}

func TestIndexNoFalsePositives(t *testing.T) {
	ix := NewIndex()
	ix.Add("Italy")
	ix.Add("Spain")
	ix.Add("France")
	if hits := ix.Lookup("Zimbabwe", DefaultThreshold); len(hits) != 0 {
		t.Errorf("unexpected hits: %v", hits)
	}
}

func TestIndexOrdering(t *testing.T) {
	ix := NewIndex()
	ix.Add("Johannesburg")
	ix.Add("Johannesbur")
	ix.Add("Johannesburg")
	hits := ix.Lookup("Johannesburg", DefaultThreshold)
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatalf("hits not sorted by score: %v", hits)
		}
	}
}

func TestIndexLookupMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := []string{"rome", "roma", "romania", "madrid", "milan", "munich", "paris", "prague", "pretoria"}
	ix := NewIndex()
	var stored []string
	for i := 0; i < 200; i++ {
		w := words[rng.Intn(len(words))]
		if rng.Intn(2) == 0 {
			w += string(rune('a' + rng.Intn(26)))
		}
		stored = append(stored, Normalize(w))
		ix.Add(w)
	}
	for _, q := range words {
		hits := ix.Lookup(q, 0.85)
		got := map[int32]bool{}
		for _, h := range hits {
			got[h.ID] = true
		}
		// Every brute-force match at a high threshold must be found by the
		// index (the trigram filter is only allowed to lose low-score hits).
		for id, s := range stored {
			if Score(q, s) >= 0.9 && !got[int32(id)] {
				t.Errorf("index missed %q for query %q (score %f)", s, q, Score(q, s))
			}
		}
	}
}

func BenchmarkScore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Score("Johannesburg Metropolitan", "johannesburg metro")
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	ix := NewIndex()
	for i := 0; i < 10000; i++ {
		ix.Add("entity " + strings.Repeat("x", i%17) + "suffix")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup("entity xxxxsuffix", DefaultThreshold)
	}
}
