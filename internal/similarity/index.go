package similarity

import "sort"

// Index is a trigram inverted index over a set of strings, used for fuzzy
// label lookup: given a query, it retrieves candidate ids whose indexed
// string shares trigrams with the query, then verifies with Score. This is
// the stand-in for the paper's Lucene (LARQ) index.
type Index struct {
	postings map[string][]int32 // trigram -> sorted ids
	values   []string           // id -> normalised string
	exact    map[string][]int32 // normalised string -> ids
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings: make(map[string][]int32),
		exact:    make(map[string][]int32),
	}
}

// Add indexes s and returns its id. The caller keeps the id↔payload mapping.
func (ix *Index) Add(s string) int32 {
	id := int32(len(ix.values))
	n := Normalize(s)
	ix.values = append(ix.values, n)
	ix.exact[n] = append(ix.exact[n], id)
	seen := make(map[string]bool)
	for _, g := range trigrams(n) {
		if seen[g] {
			continue
		}
		seen[g] = true
		ix.postings[g] = append(ix.postings[g], id)
	}
	return id
}

// Len returns the number of indexed strings.
func (ix *Index) Len() int { return len(ix.values) }

// Value returns the normalised string stored under id.
func (ix *Index) Value(id int32) string { return ix.values[id] }

// Candidate is a fuzzy lookup hit.
type Candidate struct {
	ID    int32
	Score float64
}

// Lookup returns ids whose strings match q at or above threshold, best
// first. Exact (post-normalisation) matches are always returned with score 1.
func (ix *Index) Lookup(q string, threshold float64) []Candidate {
	n := Normalize(q)
	var out []Candidate
	seen := make(map[int32]bool)
	for _, id := range ix.exact[n] {
		out = append(out, Candidate{ID: id, Score: 1})
		seen[id] = true
	}
	// Count shared trigrams per candidate; a candidate matching at Jaccard
	// threshold t over query trigram set of size Q must share at least
	// ceil(t/(1+t) * Q) trigrams — a standard filter bound. We use a looser
	// floor to keep recall high for the non-Jaccard scorers.
	grams := trigrams(n)
	counts := make(map[int32]int)
	for _, g := range grams {
		for _, id := range ix.postings[g] {
			counts[id]++
		}
	}
	minShared := len(grams) / 4
	if minShared < 1 {
		minShared = 1
	}
	for id, c := range counts {
		if seen[id] || c < minShared {
			continue
		}
		if s := Score(n, ix.values[id]); s >= threshold {
			out = append(out, Candidate{ID: id, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}
