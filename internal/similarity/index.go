package similarity

import (
	"sort"
	"sync"
	"unicode/utf8"
)

// Index is a trigram inverted index over a set of strings, used for fuzzy
// label lookup: given a query, it retrieves candidate ids whose indexed
// string shares trigrams with the query, then verifies with Score. This is
// the stand-in for the paper's Lucene (LARQ) index.
//
// Lookup is the hot path of entity resolution: every pipeline stage funnels
// cell values through it (directly or via the resolve cache), so it runs on
// reusable per-call scratch — an int32 count buffer indexed by id plus byte
// encoded trigram windows — instead of the per-call maps a naive
// implementation would allocate. Add and Lookup share the same windowed
// trigram walk, so both deduplicate trigrams once and the filter bound in
// Lookup counts distinct shared trigrams.
type Index struct {
	postings map[string][]int32 // trigram -> ids in insertion (= ascending) order
	values   []string           // id -> normalised string
	gramN    []int32            // id -> number of distinct padded trigrams
	exact    map[string][]int32 // normalised string -> ids
	pool     sync.Pool          // *scratch, reused across Lookup/Add calls
}

// scratch is the reusable per-call working set. counts is kept all-zero
// between calls (entries touched by a lookup are reset before release), so a
// pooled scratch only pays for growth, never for clearing.
type scratch struct {
	counts  []int32 // candidate id -> shared distinct trigrams
	touched []int32 // ids with counts[id] != 0, for sparse reset
	runes   []rune  // padded rune window of the current string
	gram    []byte  // UTF-8 encoding of the current trigram window
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	ix := &Index{
		postings: make(map[string][]int32),
		exact:    make(map[string][]int32),
	}
	ix.pool.New = func() any { return &scratch{} }
	return ix
}

// appendPadded appends the padded rune form of n ("  n ") to dst, mirroring
// the padding of trigrams.
func appendPadded(dst []rune, n string) []rune {
	dst = append(dst, ' ', ' ')
	for _, r := range n {
		dst = append(dst, r)
	}
	return append(dst, ' ')
}

// dupWindow reports whether the trigram window at i repeats an earlier
// window. Strings are short, so the quadratic scan beats allocating a set.
func dupWindow(runes []rune, i int) bool {
	for j := 0; j < i; j++ {
		if runes[j] == runes[i] && runes[j+1] == runes[i+1] && runes[j+2] == runes[i+2] {
			return true
		}
	}
	return false
}

// encodeGram UTF-8-encodes the trigram window into dst. The resulting byte
// slice is used for map access via string(dst), which the compiler performs
// without allocating.
func encodeGram(dst []byte, w []rune) []byte {
	dst = utf8.AppendRune(dst[:0], w[0])
	dst = utf8.AppendRune(dst, w[1])
	return utf8.AppendRune(dst, w[2])
}

// Add indexes s and returns its id. The caller keeps the id↔payload mapping.
func (ix *Index) Add(s string) int32 {
	id := int32(len(ix.values))
	n := Normalize(s)
	ix.values = append(ix.values, n)
	ix.exact[n] = append(ix.exact[n], id)
	sc := ix.pool.Get().(*scratch)
	sc.runes = appendPadded(sc.runes[:0], n)
	distinct := int32(0)
	for i := 0; i+3 <= len(sc.runes); i++ {
		if dupWindow(sc.runes, i) {
			continue
		}
		distinct++
		sc.gram = encodeGram(sc.gram, sc.runes[i:i+3])
		ix.postings[string(sc.gram)] = append(ix.postings[string(sc.gram)], id)
	}
	ix.gramN = append(ix.gramN, distinct)
	ix.pool.Put(sc)
	return id
}

// Len returns the number of indexed strings.
func (ix *Index) Len() int { return len(ix.values) }

// Grow reserves capacity for n additional strings, so a burst of Adds (an
// incremental append extending the index in place) does not repeatedly
// reallocate the id-indexed arrays. Growth keeps the single-writer contract:
// Add calls must still be serialised with each other and with lookups;
// pre-reserving only makes the quiescent windows between them cheap.
func (ix *Index) Grow(n int) {
	if n <= 0 {
		return
	}
	ix.values = append(make([]string, 0, len(ix.values)+n), ix.values...)
	ix.gramN = append(make([]int32, 0, len(ix.gramN)+n), ix.gramN...)
}

// Clone returns a deep copy of the index with identical ids — lookups on the
// clone return exactly the same candidates as on the original. Used by
// rdf.Store.CloneExact to snapshot the fuzzy label index.
func (ix *Index) Clone() *Index {
	out := NewIndex()
	out.values = append([]string(nil), ix.values...)
	out.gramN = append([]int32(nil), ix.gramN...)
	for g, ids := range ix.postings {
		out.postings[g] = append([]int32(nil), ids...)
	}
	for n, ids := range ix.exact {
		out.exact[n] = append([]int32(nil), ids...)
	}
	return out
}

// Value returns the normalised string stored under id.
func (ix *Index) Value(id int32) string { return ix.values[id] }

// Candidate is a fuzzy lookup hit.
type Candidate struct {
	ID    int32
	Score float64
}

// Lookup returns ids whose strings match q at or above threshold, best
// first; ties break by ascending id, so the order is deterministic. Exact
// (post-normalisation) matches are always returned with score 1.
//
// Safe for concurrent use while the index is quiescent (no Add in flight),
// matching the store-wide single-writer contract.
func (ix *Index) Lookup(q string, threshold float64) []Candidate {
	return ix.LookupNormalized(Normalize(q), threshold)
}

// LookupNormalized is Lookup for a query that is already normalised —
// the entry point for callers that hold a Normalize result (the resolve
// cache keys on it) and must not pay for recomputing it. Normalize is
// idempotent (pinned by FuzzSimilarityLookup), so
// Lookup(q) ≡ LookupNormalized(Normalize(q)) exactly.
func (ix *Index) LookupNormalized(n string, threshold float64) []Candidate {
	return ix.lookupNormalized(n, threshold, false)
}

// LookupNormalizedRelaxed is LookupNormalized with the trigram filter bound
// forced down to a single shared trigram. Because Score is symmetric and the
// standard bound is keyed on the QUERY's trigram count, the relaxed probe
// with the roles swapped is a provable superset: any indexed string that a
// forward LookupNormalized(v) would surface for some value v shares at least
// one trigram with v, so probing with the indexed string finds v's trigrams
// too. The resolve cache uses this for reverse invalidation — given a newly
// indexed label, find every memoised value the label could now match.
func (ix *Index) LookupNormalizedRelaxed(n string, threshold float64) []Candidate {
	return ix.lookupNormalized(n, threshold, true)
}

func (ix *Index) lookupNormalized(n string, threshold float64, relaxed bool) []Candidate {
	sc := ix.pool.Get().(*scratch)
	// Count shared distinct trigrams per candidate; a candidate matching at
	// Jaccard threshold t over a query trigram set of size Q must share at
	// least ceil(t/(1+t) * Q) trigrams — a standard filter bound. We use a
	// looser floor to keep recall high for the non-Jaccard scorers.
	if len(sc.counts) < len(ix.values) {
		sc.counts = make([]int32, len(ix.values))
	}
	sc.runes = appendPadded(sc.runes[:0], n)
	qGrams := int32(0)
	for i := 0; i+3 <= len(sc.runes); i++ {
		if dupWindow(sc.runes, i) {
			continue
		}
		qGrams++
		sc.gram = encodeGram(sc.gram, sc.runes[i:i+3])
		for _, id := range ix.postings[string(sc.gram)] {
			if sc.counts[id] == 0 {
				sc.touched = append(sc.touched, id)
			}
			sc.counts[id]++
		}
	}
	// The counting pass bounds the result exactly: every hit is an exact
	// match or a touched candidate, so one right-sized allocation serves the
	// whole result (and a miss allocates nothing).
	exact := ix.exact[n]
	var out []Candidate
	if len(exact)+len(sc.touched) > 0 {
		out = make([]Candidate, 0, len(exact)+len(sc.touched))
	}
	for _, id := range exact {
		out = append(out, Candidate{ID: id, Score: 1})
	}
	minShared := qGrams / 4
	if minShared < 1 || relaxed {
		minShared = 1
	}
	for _, id := range sc.touched {
		shared := sc.counts[id]
		sc.counts[id] = 0
		v := ix.values[id]
		if shared < minShared || v == n {
			continue // below the filter bound, or already emitted as exact
		}
		if s := ix.scoreAgainst(n, qGrams, shared, id); s >= threshold {
			out = append(out, Candidate{ID: id, Score: s})
		}
	}
	sc.touched = sc.touched[:0]
	ix.pool.Put(sc)
	if len(out) > 1 {
		sort.Slice(out, func(i, j int) bool {
			if out[i].Score != out[j].Score {
				return out[i].Score > out[j].Score
			}
			return out[i].ID < out[j].ID
		})
	}
	return out
}

// scoreAgainst is Score specialised for the lookup loop: both strings are
// already normalised and unequal, and the trigram Jaccard term is computed
// from the posting counts (shared distinct trigrams, with the per-id set
// size recorded at Add time) instead of rebuilding trigram sets, so the
// verify step allocates no maps.
func (ix *Index) scoreAgainst(n string, qGrams, shared int32, id int32) float64 {
	v := ix.values[id]
	if n == "" || v == "" {
		return 0
	}
	s := JaroWinkler(n, v)
	if l := LevenshteinSim(n, v); l > s {
		s = l
	}
	if union := qGrams + ix.gramN[id] - shared; union > 0 {
		if t := float64(shared) / float64(union); t > s {
			s = t
		}
	}
	return s
}
