package similarity

import (
	"reflect"
	"testing"
)

func TestLookupEmptyQuery(t *testing.T) {
	ix := NewIndex()
	ix.Add("Rome")
	ix.Add("")
	hits := ix.Lookup("", DefaultThreshold)
	if len(hits) != 1 || hits[0].ID != 1 || hits[0].Score != 1 {
		t.Fatalf("empty query should hit only the empty entry exactly, got %v", hits)
	}
	if hits := ix.Lookup("   ", DefaultThreshold); len(hits) != 1 || hits[0].ID != 1 {
		t.Fatalf("whitespace query should normalize to empty, got %v", hits)
	}
}

func TestLookupShortStrings(t *testing.T) {
	ix := NewIndex()
	idUK := ix.Add("UK")
	idUS := ix.Add("US")
	ix.Add("United Kingdom")

	hits := ix.Lookup("UK", DefaultThreshold)
	if len(hits) == 0 || hits[0].ID != idUK || hits[0].Score != 1 {
		t.Fatalf("2-rune exact lookup failed: %v", hits)
	}
	// "uk" vs "us" sits exactly on the 0.7 JaroWinkler boundary; the index
	// must agree with the reference scorer, not silently drop short strings.
	for _, h := range hits {
		if h.ID == idUS && h.Score != Score("UK", "US") {
			t.Fatalf("US scored %f, reference says %f", h.Score, Score("UK", "US"))
		}
	}
	if hits := ix.Lookup("UK", 0.75); len(hits) != 1 || hits[0].ID != idUK {
		t.Fatalf("above the boundary only the exact entry should match: %v", hits)
	}
	if hits := ix.Lookup("a", DefaultThreshold); len(hits) != 0 {
		t.Fatalf("1-rune query with no entry matched %v", hits)
	}
	id := ix.Add("a")
	if hits := ix.Lookup("A", DefaultThreshold); len(hits) != 1 || hits[0].ID != id {
		t.Fatalf("1-rune exact lookup failed: %v", hits)
	}
}

func TestLookupUnicodeNormalization(t *testing.T) {
	ix := NewIndex()
	id := ix.Add("Côte d'Ivoire")
	hits := ix.Lookup("CÔTE D'IVOIRE", DefaultThreshold)
	if len(hits) == 0 || hits[0].ID != id || hits[0].Score != 1 {
		t.Fatalf("case-folded unicode lookup failed: %v", hits)
	}
	hits = ix.Lookup("Côte dIvoire", DefaultThreshold)
	if len(hits) == 0 || hits[0].ID != id {
		t.Fatalf("punctuation-stripped unicode lookup failed: %v", hits)
	}
	// Multi-byte runes must round-trip through the byte-encoded trigrams:
	// a fuzzy (non-exact) query still finds the entry.
	hits = ix.Lookup("Côte d'Ivoir", DefaultThreshold)
	if len(hits) == 0 || hits[0].ID != id {
		t.Fatalf("fuzzy unicode lookup failed: %v", hits)
	}
}

func TestLookupTieOrderDeterministic(t *testing.T) {
	ix := NewIndex()
	// Three identical entries tie at score 1; two near-identical entries tie
	// at the same fuzzy score. Ties must resolve by ascending id, and the
	// whole ordering must be reproducible call over call.
	ix.Add("Johannesburg")
	ix.Add("Johannesburg")
	ix.Add("Johannesburgh")
	ix.Add("Johannesburg")

	first := ix.Lookup("Johannesburg", DefaultThreshold)
	if len(first) != 4 {
		t.Fatalf("expected 4 hits, got %v", first)
	}
	for i := 1; i < len(first); i++ {
		if first[i].Score > first[i-1].Score {
			t.Fatalf("hits not sorted by score: %v", first)
		}
		if first[i].Score == first[i-1].Score && first[i].ID < first[i-1].ID {
			t.Fatalf("equal-score ties not sorted by id: %v", first)
		}
	}
	for round := 0; round < 10; round++ {
		if again := ix.Lookup("Johannesburg", DefaultThreshold); !reflect.DeepEqual(first, again) {
			t.Fatalf("lookup not deterministic: %v vs %v", first, again)
		}
	}
}

func TestLookupAllocationLean(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without -race")
	}
	ix := NewIndex()
	for _, s := range []string{"Rome", "Madrid", "Paris", "Berlin", "Lisbon", "Vienna"} {
		ix.Add(s)
	}
	ix.Lookup("Rome", DefaultThreshold) // warm the scratch pool
	// A miss touches the whole filter path (padding, trigram encoding,
	// posting scans) but produces no output; the only per-call allocation
	// left is Normalize building the query's canonical form.
	allocs := testing.AllocsPerRun(100, func() {
		ix.Lookup("Zanzibar", DefaultThreshold)
	})
	if allocs > 1 {
		t.Errorf("miss lookup allocates %.1f per op, want <= 1 (query Normalize)", allocs)
	}
}

func TestAddLookupSharedDedupe(t *testing.T) {
	// Strings with repeated trigrams ("banana" repeats "ana"/"nan") must
	// count each distinct trigram once on both the Add and the Lookup side,
	// or the Jaccard term drifts from set semantics.
	ix := NewIndex()
	id := ix.Add("banana")
	hits := ix.Lookup("banana", DefaultThreshold)
	if len(hits) != 1 || hits[0].ID != id || hits[0].Score != 1 {
		t.Fatalf("self lookup: %v", hits)
	}
	hits = ix.Lookup("bananas", 0.5)
	if len(hits) != 1 || hits[0].ID != id {
		t.Fatalf("fuzzy lookup: %v", hits)
	}
	// The inline Jaccard must agree with the reference implementation.
	want := Score("bananas", "banana")
	if got := hits[0].Score; got != want {
		t.Errorf("inline score %f != reference Score %f", got, want)
	}
}

func TestLookupScoresMatchReference(t *testing.T) {
	// The posting-count scorer must reproduce Score exactly for every hit.
	entries := []string{"Rome", "Roma", "Romania", "romanian", "Madrid", "madrileño", "rome "}
	ix := NewIndex()
	for _, e := range entries {
		ix.Add(e)
	}
	for _, q := range []string{"rome", "roman", "MADRID", "romanía"} {
		for _, h := range ix.Lookup(q, 0.3) {
			if want := Score(q, entries[h.ID]); h.Score != want {
				t.Errorf("Lookup(%q) scored %q as %f, reference Score says %f",
					q, entries[h.ID], h.Score, want)
			}
		}
	}
}
