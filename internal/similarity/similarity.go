// Package similarity provides the string-matching substrate KATARA uses to
// align table cell values with knowledge-base labels.
//
// The paper relies on Jena LARQ (Lucene) with a 0.7 match threshold; this
// package reproduces that behaviour with a normalising tokenizer, a composite
// similarity score (exact, Jaro-Winkler, Levenshtein, trigram Jaccard), and a
// trigram inverted index for sub-linear fuzzy candidate lookup.
package similarity

import (
	"strings"
	"unicode"
)

// DefaultThreshold mirrors the Lucene threshold used in the paper (§7).
const DefaultThreshold = 0.7

// Normalize canonicalises a string for matching: lower-case, collapse
// whitespace, strip punctuation except intra-word hyphens and periods used in
// abbreviations ("S. Africa" and "s africa" normalise identically).
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastSpace := true
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			lastSpace = false
		case unicode.IsSpace(r), r == '_', r == '-', r == '.', r == ',', r == '/':
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		default:
			// drop other punctuation entirely
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Levenshtein returns the edit distance between a and b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim converts edit distance to a similarity in [0,1].
func LevenshteinSim(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for shared prefixes (scaling 0.1, max
// prefix 4), the standard parameterisation.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// trigrams returns the padded character trigrams of s.
func trigrams(s string) []string {
	padded := "  " + s + " "
	runes := []rune(padded)
	if len(runes) < 3 {
		return []string{string(runes)}
	}
	out := make([]string, 0, len(runes)-2)
	for i := 0; i+3 <= len(runes); i++ {
		out = append(out, string(runes[i:i+3]))
	}
	return out
}

// TrigramJaccard returns the Jaccard similarity of the trigram sets of a and b.
func TrigramJaccard(a, b string) float64 {
	ta, tb := trigrams(a), trigrams(b)
	set := make(map[string]uint8, len(ta))
	for _, g := range ta {
		set[g] |= 1
	}
	for _, g := range tb {
		set[g] |= 2
	}
	inter, union := 0, 0
	for _, v := range set {
		union++
		if v == 3 {
			inter++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Score is the composite similarity used for value↔label matching: strings
// are normalised, exact matches score 1, otherwise the maximum of
// Jaro-Winkler, Levenshtein similarity and trigram Jaccard.
func Score(a, b string) float64 {
	return scoreNormalized(Normalize(a), Normalize(b))
}

// scoreNormalized is Score over already-normalised strings (Normalize is
// idempotent, so Score(a, b) == scoreNormalized(Normalize(a), Normalize(b))).
func scoreNormalized(na, nb string) float64 {
	if na == nb {
		return 1
	}
	if na == "" || nb == "" {
		return 0
	}
	s := JaroWinkler(na, nb)
	if l := LevenshteinSim(na, nb); l > s {
		s = l
	}
	if t := TrigramJaccard(na, nb); t > s {
		s = t
	}
	return s
}

// Match reports whether a and b are similar at the default threshold,
// mirroring the paper's `t[A] ≈ label` predicate.
func Match(a, b string) bool {
	return Score(a, b) >= DefaultThreshold
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
