package discovery

import (
	"testing"

	"katara/internal/kbstats"
	"katara/internal/table"
)

// assertCandidatesEqual compares the ranked lists of two candidate sets.
func assertCandidatesEqual(t *testing.T, a, b *Candidates) {
	t.Helper()
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("column counts differ: %d vs %d", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		ca, cb := a.Columns[i], b.Columns[i]
		if ca.Col != cb.Col || len(ca.Types) != len(cb.Types) {
			t.Fatalf("column %d lists differ: %d vs %d types", ca.Col, len(ca.Types), len(cb.Types))
		}
		for j := range ca.Types {
			ta, tb := ca.Types[j], cb.Types[j]
			if ta.Type != tb.Type || ta.Support != tb.Support {
				t.Fatalf("col %d rank %d: %+v vs %+v", ca.Col, j, ta, tb)
			}
			if diff := ta.TFIDF - tb.TFIDF; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("col %d rank %d tfidf: %f vs %f", ca.Col, j, ta.TFIDF, tb.TFIDF)
			}
		}
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		pa, pb := a.Pairs[i], b.Pairs[i]
		if pa.From != pb.From || pa.To != pb.To || len(pa.Rels) != len(pb.Rels) {
			t.Fatalf("pair %d differs: (%d,%d)x%d vs (%d,%d)x%d",
				i, pa.From, pa.To, len(pa.Rels), pb.From, pb.To, len(pb.Rels))
		}
		for j := range pa.Rels {
			ra, rb := pa.Rels[j], pb.Rels[j]
			if ra.Prop != rb.Prop || ra.Support != rb.Support {
				t.Fatalf("pair %d rank %d: %+v vs %+v", i, j, ra, rb)
			}
			if diff := ra.Confidence - rb.Confidence; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("pair %d rank %d confidence: %f vs %f", i, j, ra.Confidence, rb.Confidence)
			}
		}
	}
}

func TestGenerateParallelMatchesSequential(t *testing.T) {
	kb := testKB()
	stats := kbstats.New(kb)
	tbl := countryCapitalTable()
	// Grow the table so it actually shards.
	for i := 0; i < 3; i++ {
		rows := append([][]string(nil), tbl.Rows...)
		for _, r := range rows {
			tbl.Rows = append(tbl.Rows, r)
		}
	}
	seq := Generate(tbl, stats, Options{})
	for _, workers := range []int{2, 3, 4, 8} {
		par := GenerateParallel(tbl, kbstats.New(kb), Options{}, workers)
		assertCandidatesEqual(t, seq, par)
	}
}

func TestGenerateParallelSmallTableFallsBack(t *testing.T) {
	kb := testKB()
	stats := kbstats.New(kb)
	tbl := countryCapitalTable() // 5 rows: below the sharding threshold
	par := GenerateParallel(tbl, stats, Options{}, 8)
	seq := Generate(tbl, kbstats.New(kb), Options{})
	assertCandidatesEqual(t, seq, par)
}

func TestGenerateParallelTopKAgrees(t *testing.T) {
	kb := testKB()
	tbl := countryCapitalTable()
	for i := 0; i < 4; i++ {
		rows := append([][]string(nil), tbl.Rows...)
		for _, r := range rows {
			tbl.Rows = append(tbl.Rows, r)
		}
	}
	seq := TopK(Generate(tbl, kbstats.New(kb), Options{}), 3)
	par := TopK(GenerateParallel(tbl, kbstats.New(kb), Options{}, 4), 3)
	if len(seq) != len(par) {
		t.Fatalf("pattern counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Key() != par[i].Key() {
			t.Fatalf("rank %d: %s vs %s", i, seq[i].Key(), par[i].Key())
		}
	}
}

func TestGenerateParallelWithSampling(t *testing.T) {
	kb := testKB()
	tbl := table.New("bc", "B", "C")
	for i := 0; i < 40; i++ {
		tbl.Append(countryCapitalTable().Rows[i%5][0], countryCapitalTable().Rows[i%5][1])
	}
	seq := Generate(tbl, kbstats.New(kb), Options{MaxRows: 16})
	par := GenerateParallel(tbl, kbstats.New(kb), Options{MaxRows: 16}, 4)
	assertCandidatesEqual(t, seq, par)
}
