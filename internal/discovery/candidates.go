// Package discovery implements KATARA's table-pattern discovery (§4): the
// candidate type/relationship generation of §4.1 (the Q_types and Q_rels
// lookups), the tf-idf + semantic-coherence scoring model of §4.2, the
// rank-join top-k pattern search of §4.3 (Algorithms 1–2), and the three
// baselines the paper compares against (Support, MaxLike, PGM).
package discovery

import (
	"sort"

	"katara/internal/kbstats"
	"katara/internal/rdf"
	"katara/internal/resolve"
	"katara/internal/similarity"
	"katara/internal/table"
	"katara/internal/telemetry"
)

// Options tunes candidate generation.
type Options struct {
	// Threshold is the label-similarity threshold (default 0.7, §7).
	Threshold float64
	// Band keeps only resource matches scoring within Band of a cell's best
	// match (default 0.1) — the Lucene-style "take the top hits" behaviour.
	// An exact match therefore suppresses distant fuzzy hits, while a typo
	// cell (no exact match) still resolves through its best fuzzy matches.
	Band float64
	// MatchExponent sharpens the contribution weight of fuzzy matches:
	// weight = score^MatchExponent (default 4). Exact matches keep weight 1.
	MatchExponent int
	// MinSupport drops candidates whose weighted support is below this
	// fraction of the sampled rows (default 0.05), filtering the spurious
	// types/relationships that fuzzy label noise would otherwise inject.
	MinSupport float64
	// MinEdgeConfidence drops whole column pairs whose best relationship is
	// exhibited (weighted) by fewer than this fraction of rows (default
	// 0.15): a pattern should only assert relationships the data actually
	// carries. Low-coverage true relationships are sacrificed with it —
	// exactly the paper's University×DBpedia recall behaviour (§7.4).
	MinEdgeConfidence float64
	// MaxCandidates caps each ranked candidate list (0 = unlimited).
	MaxCandidates int
	// MaxRows samples at most this many rows per table for candidate
	// generation (0 = all rows). The paper distributes Person's 316K rows
	// over 30 machines; sampling is our single-machine equivalent.
	MaxRows int
	// Telemetry receives the KBLookups counter (one per uncached label
	// resolution); nil disables instrumentation. Counters are atomic, so
	// GenerateParallel's shards may share one pipeline.
	Telemetry *telemetry.Pipeline
	// Resolver, when non-nil, handles label resolution instead of direct
	// kb.MatchLabel calls — typically a *resolve.Cache shared across pipeline
	// stages (and across GenerateParallel shards) so each distinct cell value
	// hits the KB once. It must resolve against the same KB as the stats.
	Resolver resolve.Source
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = similarity.DefaultThreshold
	}
	if o.Band == 0 {
		o.Band = 0.1
	}
	if o.MatchExponent == 0 {
		o.MatchExponent = 4
	}
	if o.MinSupport == 0 {
		o.MinSupport = 0.05
	}
	if o.MinEdgeConfidence == 0 {
		o.MinEdgeConfidence = 0.15
	}
	return o
}

// ScoredType is one candidate type for a column with its normalised tf-idf
// score and raw support (number of cells resolving to that type).
type ScoredType struct {
	Type    rdf.ID
	TFIDF   float64
	Support int
}

// ScoredRel is one candidate relationship for an ordered column pair.
// Confidence is the weighted fraction of rows exhibiting the relationship;
// the coherence term of score(φ) is scaled by it, so a relationship backed
// by a handful of fuzzy matches cannot dominate the type choices of its
// endpoint columns.
type ScoredRel struct {
	Prop       rdf.ID
	TFIDF      float64
	Support    int
	Confidence float64
}

// ColumnCandidates holds the ranked candidate types of one column plus the
// per-row type memberships (type -> match weight) the scoring model and
// baselines need.
type ColumnCandidates struct {
	Col       int
	Types     []ScoredType         // descending by TFIDF, ties by discriminativeness
	CellTypes []map[rdf.ID]float64 // row -> type -> best match weight
}

// PairCandidates holds the ranked candidate relationships of one ordered
// column pair (From is the subject column, §3.2).
type PairCandidates struct {
	From, To int
	Rels     []ScoredRel
	CellRels []map[rdf.ID]float64
	// LiteralObject marks pairs whose relationships were found through
	// literal objects (Q²_rels): the To column maps to untyped literals.
	LiteralObject bool
}

// Candidates is the full candidate-generation output for one table.
type Candidates struct {
	Table   *table.Table
	Rows    []int // the sampled row indices candidate stats are built from
	Columns []ColumnCandidates
	Pairs   []PairCandidates
	Stats   *kbstats.Stats
	Options Options
}

// ColumnFor returns the candidates of column col, or nil.
func (c *Candidates) ColumnFor(col int) *ColumnCandidates {
	for i := range c.Columns {
		if c.Columns[i].Col == col {
			return &c.Columns[i]
		}
	}
	return nil
}

// PairFor returns the candidates of the ordered pair (from, to), or nil.
func (c *Candidates) PairFor(from, to int) *PairCandidates {
	for i := range c.Pairs {
		if c.Pairs[i].From == from && c.Pairs[i].To == to {
			return &c.Pairs[i]
		}
	}
	return nil
}

// weightedMatch is one resolved resource with its contribution weight.
type weightedMatch struct {
	res    rdf.ID
	weight float64
}

// Generate runs candidate type/relationship discovery for tbl against the
// KB behind stats. It performs, per cell, the equivalent of the paper's
// Q_types query (label → resource → types with subClassOf* closure, via the
// fuzzy label index standing in for LARQ) and, per ordered cell pair, the
// Q¹_rels/Q²_rels lookups (resource-object and literal-object
// relationships, with subPropertyOf* generalisation).
func Generate(tbl *table.Table, stats *kbstats.Stats, opts Options) *Candidates {
	opts = opts.withDefaults()
	kb := stats.KB()
	rows := sampleRows(tbl.NumRows(), opts.MaxRows)

	c := &Candidates{Table: tbl, Rows: rows, Stats: stats, Options: opts}

	src := resolve.Source(kb)
	if opts.Resolver != nil {
		src = opts.Resolver
	}

	// Per-value caches: tables are redundant, the KB is not small. The
	// weighting below is per-Options, so the weighted matches stay local even
	// when raw resolution goes through a shared opts.Resolver.
	resCache := map[string][]weightedMatch{}
	typeCache := map[string]map[rdf.ID]float64{}
	resolveVal := func(val string) []weightedMatch {
		if r, ok := resCache[val]; ok {
			return r
		}
		opts.Telemetry.Inc(telemetry.KBLookups)
		hits := src.MatchLabel(val, opts.Threshold)
		var out []weightedMatch
		if len(hits) > 0 {
			best := hits[0].Score
			for _, m := range hits {
				if m.Score < best-opts.Band {
					break // hits are sorted by score
				}
				w := 1.0
				for e := 0; e < opts.MatchExponent; e++ {
					w *= m.Score
				}
				out = append(out, weightedMatch{res: m.Resource, weight: w})
			}
		}
		resCache[val] = out
		return out
	}
	typesOf := func(val string) map[rdf.ID]float64 {
		if t, ok := typeCache[val]; ok {
			return t
		}
		set := map[rdf.ID]float64{}
		for _, m := range resolveVal(val) {
			for _, t := range kb.AllTypes(m.res) {
				if m.weight > set[t] {
					set[t] = m.weight
				}
			}
		}
		typeCache[val] = set
		return set
	}

	minSupport := opts.MinSupport * float64(len(rows))

	// Candidate types per column (§4.1, Q_types + tf-idf ranking).
	for col := 0; col < tbl.NumCols(); col++ {
		cc := ColumnCandidates{Col: col, CellTypes: make([]map[rdf.ID]float64, len(rows))}
		tfidf := map[rdf.ID]float64{}
		support := map[rdf.ID]int{}
		weighted := map[rdf.ID]float64{}
		for i, row := range rows {
			cellT := typesOf(tbl.Cell(row, col))
			cc.CellTypes[i] = cellT
			idf := stats.IDF(len(cellT))
			for t, w := range cellT {
				tfidf[t] += w * stats.TF(t) * idf
				support[t]++
				weighted[t] += w
			}
		}
		maxScore := 0.0
		for t, v := range tfidf {
			if weighted[t] >= minSupport && v > maxScore {
				maxScore = v
			}
		}
		if maxScore == 0 {
			continue
		}
		for t, v := range tfidf {
			if weighted[t] < minSupport {
				continue
			}
			cc.Types = append(cc.Types, ScoredType{Type: t, TFIDF: v / maxScore, Support: support[t]})
		}
		sortTypes(cc.Types, stats)
		if opts.MaxCandidates > 0 && len(cc.Types) > opts.MaxCandidates {
			cc.Types = cc.Types[:opts.MaxCandidates]
		}
		c.Columns = append(c.Columns, cc)
	}

	// Candidate relationships per ordered column pair (§4.1, Q¹/Q²_rels).
	pairCache := map[[2]string]map[rdf.ID]float64{}
	litCache := map[[2]string]map[rdf.ID]float64{}
	relsBetween := func(a, b string) map[rdf.ID]float64 {
		key := [2]string{a, b}
		if r, ok := pairCache[key]; ok {
			return r
		}
		set := map[rdf.ID]float64{}
		for _, xi := range resolveVal(a) {
			for _, xj := range resolveVal(b) {
				w := xi.weight * xj.weight
				for _, p := range kb.PredicatesBetweenSub(xi.res, xj.res) {
					if w > set[p] {
						set[p] = w
					}
				}
			}
		}
		pairCache[key] = set
		return set
	}
	relsToLiteral := func(a, b string) map[rdf.ID]float64 {
		key := [2]string{a, b}
		if r, ok := litCache[key]; ok {
			return r
		}
		set := map[rdf.ID]float64{}
		lit := kb.LookupTerm(rdf.Lit(b))
		if lit != rdf.NoID {
			for _, xi := range resolveVal(a) {
				for _, p := range kb.PredicatesBetweenSub(xi.res, lit) {
					if xi.weight > set[p] {
						set[p] = xi.weight
					}
				}
			}
		}
		litCache[key] = set
		return set
	}

	for i := 0; i < tbl.NumCols(); i++ {
		for j := 0; j < tbl.NumCols(); j++ {
			if i == j {
				continue
			}
			pc := PairCandidates{From: i, To: j, CellRels: make([]map[rdf.ID]float64, len(rows))}
			tfidf := map[rdf.ID]float64{}
			support := map[rdf.ID]int{}
			weighted := map[rdf.ID]float64{}
			literalW, resourceW := 0.0, 0.0
			for ri, row := range rows {
				a, b := tbl.Cell(row, i), tbl.Cell(row, j)
				rels := map[rdf.ID]float64{}
				for p, w := range relsBetween(a, b) {
					rels[p] = w
					resourceW += w
				}
				for p, w := range relsToLiteral(a, b) {
					if w > rels[p] {
						rels[p] = w
						literalW += w
					}
				}
				pc.CellRels[ri] = rels
				idf := stats.RelIDF(len(rels))
				for p, w := range rels {
					tfidf[p] += w * stats.RelTF(p) * idf
					support[p]++
					weighted[p] += w
				}
			}
			maxScore := 0.0
			for p, v := range tfidf {
				if weighted[p] >= minSupport && v > maxScore {
					maxScore = v
				}
			}
			if maxScore == 0 {
				continue
			}
			pc.LiteralObject = literalW > resourceW
			for p, v := range tfidf {
				if weighted[p] < minSupport {
					continue
				}
				pc.Rels = append(pc.Rels, ScoredRel{
					Prop:       p,
					TFIDF:      v / maxScore,
					Support:    support[p],
					Confidence: weighted[p] / float64(len(rows)),
				})
			}
			sortRels(pc.Rels, stats)
			if opts.MaxCandidates > 0 && len(pc.Rels) > opts.MaxCandidates {
				pc.Rels = pc.Rels[:opts.MaxCandidates]
			}
			best := 0.0
			for _, r := range pc.Rels {
				if r.Confidence > best {
					best = r.Confidence
				}
			}
			if best < opts.MinEdgeConfidence {
				continue
			}
			c.Pairs = append(c.Pairs, pc)
		}
	}
	return c
}

// sortTypes orders candidates by tf-idf descending; ties go to the more
// discriminative type, i.e. fewer instances in the KB (§4.3). Types with
// identical extensions (a class and its only-child superclass) tie-break to
// the subclass — the most specific description of the column.
func sortTypes(ts []ScoredType, stats *kbstats.Stats) {
	kb := stats.KB()
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].TFIDF != ts[j].TFIDF {
			return ts[i].TFIDF > ts[j].TFIDF
		}
		ni, nj := stats.EntitiesOfType(ts[i].Type), stats.EntitiesOfType(ts[j].Type)
		if ni != nj {
			return ni < nj
		}
		if kb.IsSubClassOf(ts[i].Type, ts[j].Type) != kb.IsSubClassOf(ts[j].Type, ts[i].Type) {
			return kb.IsSubClassOf(ts[i].Type, ts[j].Type)
		}
		return ts[i].Type < ts[j].Type
	})
}

func sortRels(rs []ScoredRel, stats *kbstats.Stats) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].TFIDF != rs[j].TFIDF {
			return rs[i].TFIDF > rs[j].TFIDF
		}
		ni, nj := stats.NumFacts(rs[i].Prop), stats.NumFacts(rs[j].Prop)
		if ni != nj {
			return ni < nj
		}
		return rs[i].Prop < rs[j].Prop
	})
}

func sampleRows(n, max int) []int {
	if max <= 0 || n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Deterministic stride sampling: evenly spaced rows.
	out := make([]int, max)
	for i := 0; i < max; i++ {
		out[i] = i * n / max
	}
	return out
}
