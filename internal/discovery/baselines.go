package discovery

import (
	"math"
	"sort"

	"katara/internal/pattern"
)

// This file implements the two simple discovery baselines of §7.1:
//
//   - Support: ranks candidate types and relationships solely by support —
//     the number of tuples they cover. It has no discriminativeness notion,
//     so broad types ("Thing") dominate, which is exactly the weakness the
//     paper reports.
//   - MaxLike [Venetis et al.]: per column (pair), picks the candidate
//     maximising the likelihood of the observed values given the type
//     (relationship), independently across columns.
//
// Both reuse the best-first machinery via shadow candidate lists whose
// TFIDF field carries the baseline's own score.

// SupportTopK returns the top-k patterns under the Support baseline.
func SupportTopK(c *Candidates, k int) []*pattern.Pattern {
	shadow := reScore(c,
		func(cc *ColumnCandidates, t ScoredType) float64 {
			return float64(t.Support)
		},
		func(pc *PairCandidates, r ScoredRel) float64 {
			return float64(r.Support)
		},
		// The naive baseline breaks support ties toward the *broader*
		// candidate — it has no discriminativeness heuristic.
		func(a, b ScoredType) bool {
			return c.Stats.EntitiesOfType(a.Type) > c.Stats.EntitiesOfType(b.Type)
		},
		func(a, b ScoredRel) bool {
			return c.Stats.NumFacts(a.Prop) > c.Stats.NumFacts(b.Prop)
		},
	)
	return TopKNaive(shadow, k)
}

// MaxLikeTopK returns the top-k patterns under maximum-likelihood
// estimation: P(values | T) = Π over covered cells of 1/|ENT(T)|, with a
// fixed miss penalty for uncovered cells. Choices are independent per list,
// which is the baseline's documented weakness (§7.1: "still chooses types
// and relationships independently").
func MaxLikeTopK(c *Candidates, k int) []*pattern.Pattern {
	n := float64(len(c.Rows))
	const missLogP = -20 // log-likelihood of a value not explained by the type
	shadow := reScore(c,
		func(cc *ColumnCandidates, t ScoredType) float64 {
			size := float64(c.Stats.EntitiesOfType(t.Type))
			if size < 1 {
				size = 1
			}
			ll := float64(t.Support)*(-math.Log(size)) + (n-float64(t.Support))*missLogP
			return ll
		},
		func(pc *PairCandidates, r ScoredRel) float64 {
			size := float64(c.Stats.NumFacts(r.Prop))
			if size < 1 {
				size = 1
			}
			return float64(r.Support)*(-math.Log(size)) + (n-float64(r.Support))*missLogP
		},
		nil, nil,
	)
	// Log-likelihoods are negative; shift each list to non-negative so the
	// best-first bound arithmetic stays admissible.
	for i := range shadow.Columns {
		shiftTypes(shadow.Columns[i].Types)
	}
	for i := range shadow.Pairs {
		shiftRels(shadow.Pairs[i].Rels)
	}
	return TopKNaive(shadow, k)
}

func shiftTypes(ts []ScoredType) {
	min := math.Inf(1)
	for _, t := range ts {
		if t.TFIDF < min {
			min = t.TFIDF
		}
	}
	for i := range ts {
		ts[i].TFIDF -= min
	}
}

func shiftRels(rs []ScoredRel) {
	min := math.Inf(1)
	for _, r := range rs {
		if r.TFIDF < min {
			min = r.TFIDF
		}
	}
	for i := range rs {
		rs[i].TFIDF -= min
	}
}

// reScore deep-copies the candidate lists with new scores and re-sorts
// them. Tie-breakers default to the main heuristics when nil.
func reScore(c *Candidates,
	typeScore func(*ColumnCandidates, ScoredType) float64,
	relScore func(*PairCandidates, ScoredRel) float64,
	typeTie func(a, b ScoredType) bool,
	relTie func(a, b ScoredRel) bool,
) *Candidates {
	shadow := &Candidates{
		Table:   c.Table,
		Rows:    c.Rows,
		Stats:   c.Stats,
		Options: c.Options,
	}
	for i := range c.Columns {
		cc := c.Columns[i]
		nc := ColumnCandidates{Col: cc.Col, CellTypes: cc.CellTypes}
		nc.Types = append([]ScoredType(nil), cc.Types...)
		for j := range nc.Types {
			nc.Types[j].TFIDF = typeScore(&cc, nc.Types[j])
		}
		sort.Slice(nc.Types, func(a, b int) bool {
			ta, tb := nc.Types[a], nc.Types[b]
			if ta.TFIDF != tb.TFIDF {
				return ta.TFIDF > tb.TFIDF
			}
			if typeTie != nil {
				return typeTie(ta, tb)
			}
			return ta.Type < tb.Type
		})
		shadow.Columns = append(shadow.Columns, nc)
	}
	for i := range c.Pairs {
		pc := c.Pairs[i]
		np := PairCandidates{From: pc.From, To: pc.To, CellRels: pc.CellRels, LiteralObject: pc.LiteralObject}
		np.Rels = append([]ScoredRel(nil), pc.Rels...)
		for j := range np.Rels {
			np.Rels[j].TFIDF = relScore(&pc, np.Rels[j])
		}
		sort.Slice(np.Rels, func(a, b int) bool {
			ra, rb := np.Rels[a], np.Rels[b]
			if ra.TFIDF != rb.TFIDF {
				return ra.TFIDF > rb.TFIDF
			}
			if relTie != nil {
				return relTie(ra, rb)
			}
			return ra.Prop < rb.Prop
		})
		shadow.Pairs = append(shadow.Pairs, np)
	}
	return shadow
}
