package discovery

import (
	"fmt"
	"testing"

	"katara/internal/kbstats"
	"katara/internal/pattern"
	"katara/internal/rdf"
	"katara/internal/table"
)

// testKB builds a KB rich enough for the Example 5–7 dynamics:
//   - countries (rare, coherent subjects of hasCapital) vs economies (broad)
//     vs the catch-all "thing";
//   - capitals ⊑ cities ⊑ things as objects;
//   - players with nationality facts;
//   - every entity also typed "thing" via the hierarchy, which is what makes
//     the Support baseline go wrong.
func testKB() *rdf.Store {
	s := rdf.New()
	add := func(sub, pred, obj string) { s.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.IRI(obj)) }
	lit := func(sub, pred, obj string) { s.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.Lit(obj)) }

	add("country", rdf.IRISubClassOf, "thing")
	add("economy", rdf.IRISubClassOf, "thing")
	add("city", rdf.IRISubClassOf, "thing")
	add("capital", rdf.IRISubClassOf, "city")
	add("person", rdf.IRISubClassOf, "thing")

	countries := []struct{ name, capital string }{
		{"Italy", "Rome"}, {"Spain", "Madrid"}, {"France", "Paris"},
		{"Germany", "Berlin"}, {"Portugal", "Lisbon"}, {"Austria", "Vienna"},
		{"Greece", "Athens"}, {"Poland", "Warsaw"},
	}
	for _, c := range countries {
		add("c:"+c.name, rdf.IRIType, "country")
		add("c:"+c.name, rdf.IRIType, "economy")
		lit("c:"+c.name, rdf.IRILabel, c.name)
		add("cap:"+c.capital, rdf.IRIType, "capital")
		lit("cap:"+c.capital, rdf.IRILabel, c.capital)
		add("c:"+c.name, "hasCapital", "cap:"+c.capital)
	}
	// Extra economies (no capitals) and plain cities (not capitals).
	for i := 0; i < 20; i++ {
		e := fmt.Sprintf("econ%d", i)
		add("e:"+e, rdf.IRIType, "economy")
		lit("e:"+e, rdf.IRILabel, e)
		ci := fmt.Sprintf("town%d", i)
		add("t:"+ci, rdf.IRIType, "city")
		lit("t:"+ci, rdf.IRILabel, ci)
	}
	players := []struct{ name, country string }{
		{"Rossi", "Italy"}, {"Pirlo", "Italy"}, {"Xavi", "Spain"},
		{"Zidane", "France"}, {"Müller", "Germany"},
	}
	for _, p := range players {
		add("p:"+p.name, rdf.IRIType, "person")
		lit("p:"+p.name, rdf.IRILabel, p.name)
		add("p:"+p.name, "nationality", "c:"+p.country)
	}
	lit("p:Rossi", "height", "1.78")
	lit("p:Pirlo", "height", "1.77")
	return s
}

// countryCapitalTable builds the two-column table of Example 7 (B=country,
// C=capital).
func countryCapitalTable() *table.Table {
	t := table.New("bc", "B", "C")
	t.Append("Italy", "Rome")
	t.Append("Spain", "Madrid")
	t.Append("France", "Paris")
	t.Append("Germany", "Berlin")
	t.Append("Portugal", "Lisbon")
	return t
}

func testCandidates(t *testing.T) *Candidates {
	t.Helper()
	kb := testKB()
	stats := kbstats.New(kb)
	return Generate(countryCapitalTable(), stats, Options{})
}

func iri(t *testing.T, kb *rdf.Store, s string) rdf.ID {
	t.Helper()
	id := kb.LookupTerm(rdf.IRI(s))
	if id == rdf.NoID {
		t.Fatalf("missing %s", s)
	}
	return id
}

func TestGenerateCandidateTypes(t *testing.T) {
	c := testCandidates(t)
	kb := c.Stats.KB()
	b := c.ColumnFor(0)
	if b == nil {
		t.Fatal("no candidates for column B")
	}
	// country must outrank economy and thing thanks to tf-idf.
	if b.Types[0].Type != iri(t, kb, "country") {
		t.Fatalf("top type for B = %s", kb.LabelOf(b.Types[0].Type))
	}
	cc := c.ColumnFor(1)
	if cc.Types[0].Type != iri(t, kb, "capital") {
		t.Fatalf("top type for C = %s", kb.LabelOf(cc.Types[0].Type))
	}
	// Scores are normalised to (0,1] with the top at exactly 1.
	if b.Types[0].TFIDF != 1 {
		t.Fatalf("top tf-idf = %f, want 1", b.Types[0].TFIDF)
	}
	for _, st := range b.Types {
		if st.TFIDF < 0 || st.TFIDF > 1 {
			t.Fatalf("tf-idf out of range: %f", st.TFIDF)
		}
	}
}

func TestGenerateCandidateRels(t *testing.T) {
	c := testCandidates(t)
	kb := c.Stats.KB()
	pc := c.PairFor(0, 1)
	if pc == nil {
		t.Fatal("no relationship candidates for (B,C)")
	}
	if pc.Rels[0].Prop != iri(t, kb, "hasCapital") {
		t.Fatalf("top rel = %s", kb.LabelOf(pc.Rels[0].Prop))
	}
	if pc.Rels[0].Support != 5 {
		t.Fatalf("support = %d, want 5", pc.Rels[0].Support)
	}
	// The reverse direction has no hasCapital facts; fuzzy label noise may
	// surface stray low-support relationships (e.g. "Rome"≈"Rossi" at the
	// 0.7 threshold, the Lucene-style matcher's documented behaviour), but
	// never anything rivalling the forward pair.
	if rev := c.PairFor(1, 0); rev != nil {
		for _, r := range rev.Rels {
			if r.Prop == pc.Rels[0].Prop {
				t.Fatalf("hasCapital leaked into the reverse pair")
			}
			if r.Support >= pc.Rels[0].Support {
				t.Fatalf("reverse-pair rel %s support %d rivals forward %d",
					kb.LabelOf(r.Prop), r.Support, pc.Rels[0].Support)
			}
		}
	}
}

func TestGenerateLiteralRelationships(t *testing.T) {
	kb := testKB()
	stats := kbstats.New(kb)
	tbl := table.New("ph", "A", "G")
	tbl.Append("Rossi", "1.78")
	tbl.Append("Pirlo", "1.77")
	c := Generate(tbl, stats, Options{})
	pc := c.PairFor(0, 1)
	if pc == nil {
		t.Fatal("Q²_rels-style literal relationship not found")
	}
	if !pc.LiteralObject {
		t.Fatal("pair should be flagged literal-object")
	}
	if pc.Rels[0].Prop != iri(t, kb, "height") {
		t.Fatalf("top literal rel = %s", kb.LabelOf(pc.Rels[0].Prop))
	}
}

func TestGenerateDirtyCellsTolerated(t *testing.T) {
	kb := testKB()
	stats := kbstats.New(kb)
	tbl := countryCapitalTable()
	tbl.Rows[2][1] = "Madrid" // error: France->Madrid (still a capital)
	tbl.Rows[0][0] = "Itally" // typo, fuzzy-matches Italy
	c := Generate(tbl, stats, Options{})
	b := c.ColumnFor(0)
	if b.Types[0].Type != iri(t, kb, "country") {
		t.Fatal("dirty cells should not flip the top type")
	}
	pc := c.PairFor(0, 1)
	if pc == nil || pc.Rels[0].Prop != iri(t, kb, "hasCapital") {
		t.Fatal("dirty cells should not flip the top relationship")
	}
}

func TestMaxRowsSampling(t *testing.T) {
	kb := testKB()
	stats := kbstats.New(kb)
	tbl := countryCapitalTable()
	c := Generate(tbl, stats, Options{MaxRows: 2})
	if len(c.Rows) != 2 {
		t.Fatalf("sampled %d rows, want 2", len(c.Rows))
	}
	if c.ColumnFor(0) == nil {
		t.Fatal("sampling broke candidate generation")
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	kb := testKB()
	stats := kbstats.New(kb)
	c := Generate(countryCapitalTable(), stats, Options{MaxCandidates: 1})
	for _, cc := range c.Columns {
		if len(cc.Types) > 1 {
			t.Fatalf("candidate cap violated: %d types", len(cc.Types))
		}
	}
}

func TestTopKPicksCoherentPattern(t *testing.T) {
	c := testCandidates(t)
	kb := c.Stats.KB()
	ps := TopK(c, 3)
	if len(ps) == 0 {
		t.Fatal("no patterns")
	}
	best := ps[0]
	if got := best.TypeOf(0); got != iri(t, kb, "country") {
		t.Fatalf("best pattern types B as %s", kb.LabelOf(got))
	}
	if got := best.TypeOf(1); got != iri(t, kb, "capital") {
		t.Fatalf("best pattern types C as %s", kb.LabelOf(got))
	}
	e := best.EdgeBetween(0, 1)
	if e == nil || e.Prop != iri(t, kb, "hasCapital") {
		t.Fatal("best pattern lacks hasCapital edge")
	}
	// Scores strictly ordered (ties allowed but non-increasing).
	for i := 1; i < len(ps); i++ {
		if ps[i].Score > ps[i-1].Score {
			t.Fatalf("patterns not score-ordered: %f > %f", ps[i].Score, ps[i-1].Score)
		}
	}
}

func TestTopKMatchesExhaustive(t *testing.T) {
	c := testCandidates(t)
	for _, k := range []int{1, 2, 5, 10} {
		fast := TopK(c, k)
		slow, err := ExhaustiveTopK(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("k=%d: rank-join %d patterns, exhaustive %d", k, len(fast), len(slow))
		}
		for i := range fast {
			if diff := fast[i].Score - slow[i].Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("k=%d rank %d: score %f vs %f", k, i, fast[i].Score, slow[i].Score)
			}
		}
	}
}

func TestScoreFunctionsAgreeWithSearch(t *testing.T) {
	c := testCandidates(t)
	ps := TopK(c, 3)
	for _, p := range ps {
		recomputed := Score(p, c)
		if diff := recomputed - p.Score; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Score() = %f, search said %f", recomputed, p.Score)
		}
		if NaiveScore(p, c) > recomputed {
			t.Fatal("naive score must not exceed full score (coherence ≥ 0)")
		}
	}
}

func TestCoherenceChangesRanking(t *testing.T) {
	// Example 5's point: with coherence, (country, capital, hasCapital)
	// must beat type choices that tf-idf alone might tie or confuse.
	c := testCandidates(t)
	kb := c.Stats.KB()
	full := TopK(c, 1)[0]
	if full.TypeOf(0) != iri(t, kb, "country") || full.TypeOf(1) != iri(t, kb, "capital") {
		t.Fatal("full scoring failed to pick the coherent pattern")
	}
	naive := TopKNaive(c, 10)
	// The naive top-10 must contain the coherent pattern but its ordering
	// does not use coherence, so full score of naive[0] ≤ full[0].
	if Score(naive[0], c) > full.Score+1e-9 {
		t.Fatal("rank-join missed a higher-scoring pattern")
	}
}

func TestSupportBaselinePrefersBroadTypes(t *testing.T) {
	c := testCandidates(t)
	kb := c.Stats.KB()
	ps := SupportTopK(c, 1)
	if len(ps) == 0 {
		t.Fatal("support baseline produced nothing")
	}
	got := ps[0].TypeOf(0)
	// Countries are all economies and things too, so support ties across
	// the chain and the naive tie-break picks the broadest type.
	if got == iri(t, kb, "country") {
		t.Fatalf("Support baseline should not pick the discriminative type; got %s",
			kb.LabelOf(got))
	}
}

func TestMaxLikeBaselinePicksRareCoveringType(t *testing.T) {
	c := testCandidates(t)
	kb := c.Stats.KB()
	ps := MaxLikeTopK(c, 1)
	if len(ps) == 0 {
		t.Fatal("maxlike produced nothing")
	}
	// MaxLike favours the rarest covering type: country (8 instances)
	// over economy (28) and thing (everything).
	if got := ps[0].TypeOf(0); got != iri(t, kb, "country") {
		t.Fatalf("MaxLike picked %s", kb.LabelOf(got))
	}
}

func TestPGMTopK(t *testing.T) {
	c := testCandidates(t)
	kb := c.Stats.KB()
	ps := PGMTopK(c, 3, PGMOptions{Iterations: 15})
	if len(ps) == 0 {
		t.Fatal("pgm produced nothing")
	}
	best := ps[0]
	// The holistic model should get the coherent pattern right here.
	if got := best.TypeOf(0); got != iri(t, kb, "country") {
		t.Fatalf("PGM typed B as %s", kb.LabelOf(got))
	}
	if e := best.EdgeBetween(0, 1); e == nil || e.Prop != iri(t, kb, "hasCapital") {
		t.Fatal("PGM missed the hasCapital edge")
	}
}

func TestPGMMaxCellsGuard(t *testing.T) {
	c := testCandidates(t)
	if ps := PGMTopK(c, 1, PGMOptions{MaxCells: 1}); ps != nil {
		t.Fatal("MaxCells guard did not trip")
	}
}

func TestTopKZeroAndEmpty(t *testing.T) {
	c := testCandidates(t)
	if ps := TopK(c, 0); ps != nil {
		t.Fatal("k=0 should return nil")
	}
	kb := testKB()
	stats := kbstats.New(kb)
	empty := table.New("e", "A")
	empty.Append("zzz-not-in-kb")
	c2 := Generate(empty, stats, Options{})
	if ps := TopK(c2, 3); len(ps) != 0 {
		t.Fatalf("uncoverable table produced %d patterns", len(ps))
	}
}

func TestPatternsAreDistinct(t *testing.T) {
	c := testCandidates(t)
	ps := TopK(c, 10)
	seen := map[string]bool{}
	for _, p := range ps {
		k := p.Key()
		if seen[k] {
			t.Fatalf("duplicate pattern: %s", k)
		}
		seen[k] = true
	}
}

func TestRankJoinEmitsConnectedComponentsViaPattern(t *testing.T) {
	c := testCandidates(t)
	p := TopK(c, 1)[0]
	if !p.Connected() {
		// Two columns joined by an edge must be connected.
		t.Fatal("expected a connected top pattern")
	}
	var _ = pattern.Pattern{} // keep pattern import for clarity of intent
}

func TestRankJoinPrunesSearchSpace(t *testing.T) {
	// Hand-built candidate lists wide enough for pruning to show: 4 columns
	// × 8 types each = 4096 combinations, with clearly separated scores.
	c := &Candidates{Stats: kbstats.New(rdf.New())}
	id := rdf.ID(1)
	for col := 0; col < 4; col++ {
		cc := ColumnCandidates{Col: col}
		for i := 0; i < 8; i++ {
			cc.Types = append(cc.Types, ScoredType{
				Type:  id,
				TFIDF: 1.0 / float64(i+1),
			})
			id++
		}
		c.Columns = append(c.Columns, cc)
	}
	ps, stats := TopKWithStats(c, 3)
	if len(ps) == 0 {
		t.Fatal("no patterns")
	}
	if stats.SpaceSize <= 1 {
		t.Fatalf("space size = %d", stats.SpaceSize)
	}
	// Algorithm 1's point: far fewer states expanded than the Cartesian
	// product scored by the exhaustive alternative.
	if stats.StatesExpanded >= stats.SpaceSize {
		t.Fatalf("rank join expanded %d states over a space of %d",
			stats.StatesExpanded, stats.SpaceSize)
	}
	if stats.StatesEnqueued < stats.StatesExpanded-1 {
		t.Fatalf("inconsistent stats: %+v", stats)
	}
}
