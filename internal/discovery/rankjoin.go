package discovery

import (
	"container/heap"
	"fmt"

	"katara/internal/pattern"
	"katara/internal/rdf"
	"katara/internal/telemetry"
)

// This file implements the top-k table-pattern search of §4.3.
//
// Algorithm 1 (PDiscovery) scans the ranked candidate lists in descending
// tf-idf order, joins compatible candidates into patterns, prunes dominated
// types (Algorithm 2) and stops once the k-th pattern's score exceeds the
// upper bound B of all unseen join results. We realise the same
// threshold-style guarantee as a best-first search over the ranked lists:
// a state's priority is its accumulated score plus an admissible upper
// bound on its unassigned lists (the per-list maximum tf-idf plus, for
// relationship lists, the maximum coherence any type can achieve with any
// candidate relationship — exactly the bound B of the paper). States whose
// bound falls below the current k-th score are never expanded, which
// subsumes TypePruning. The first k complete states popped are the exact
// top-k patterns.

// SearchStats reports how much of the candidate space the rank join
// actually explored — the observable form of Algorithm 1's early
// termination and Algorithm 2's pruning.
type SearchStats struct {
	// StatesExpanded counts best-first expansions (heap pops of partial
	// assignments).
	StatesExpanded int
	// StatesEnqueued counts generated child states.
	StatesEnqueued int
	// SpaceSize is the full Cartesian-product size the exhaustive
	// alternative would score.
	SpaceSize int
}

// TopK returns the k highest-scoring table patterns under the full scoring
// model of §4.2 (tf-idf + semantic coherence).
func TopK(c *Candidates, k int) []*pattern.Pattern {
	ps, _ := rankJoinStats(c, k, 1)
	return ps
}

// TopKWithStats is TopK plus search statistics.
func TopKWithStats(c *Candidates, k int) ([]*pattern.Pattern, SearchStats) {
	return rankJoinStats(c, k, 1)
}

// TopKNaive returns the k best patterns under naiveScore (§4.2), i.e. with
// the coherence term ablated.
func TopKNaive(c *Candidates, k int) []*pattern.Pattern {
	ps, _ := rankJoinStats(c, k, 0)
	return ps
}

// searchList is one ranked input list of the rank join: the candidate types
// of a column or the candidate relationships of a column pair.
type searchList struct {
	isPair     bool
	colIdx     int // index into c.Columns (type lists)
	pairIdx    int // index into c.Pairs (relationship lists)
	maxContrib float64
}

func rankJoinStats(c *Candidates, k int, coherenceWeight float64) ([]*pattern.Pattern, SearchStats) {
	var stats SearchStats
	if k <= 0 {
		return nil, stats
	}
	lists, colPos := buildLists(c, coherenceWeight)
	if len(lists) == 0 {
		return nil, stats
	}
	stats.SpaceSize = 1
	for _, l := range lists {
		stats.SpaceSize *= listLen(c, l)
		if stats.SpaceSize > 1<<30 {
			stats.SpaceSize = 1 << 30 // saturate; big enough to make the point
			break
		}
	}

	// state: choices[i] = item index in lists[i] for i < depth.
	type state struct {
		depth   int
		choices []int
		g       float64 // accumulated score
		f       float64 // g + admissible bound for remaining lists
	}
	suffixBound := make([]float64, len(lists)+1)
	for i := len(lists) - 1; i >= 0; i-- {
		suffixBound[i] = suffixBound[i+1] + lists[i].maxContrib
	}

	pq := &stateHeap{}
	heap.Init(pq)
	heap.Push(pq, &stateItem{f: suffixBound[0], st: state{f: suffixBound[0]}})

	tel := c.Options.Telemetry
	var out []*pattern.Pattern
	for pq.Len() > 0 && len(out) < k {
		// One best-first expansion = one rank-join iteration: a histogram
		// sample always, a journal span when tracing is on.
		itStart := tel.StartTimer()
		itSpan := tel.StartSpan("rank-join-iteration")
		top := heap.Pop(pq).(*stateItem)
		st := top.st.(state)
		stats.StatesExpanded++
		if st.depth == len(lists) {
			out = append(out, buildPattern(c, lists, colPos, st.choices, st.g))
			itSpan.SetInt("depth", int64(st.depth))
			itSpan.SetInt("complete", 1)
			itSpan.End()
			tel.ObserveSince(telemetry.HistRankJoinIter, itStart)
			continue
		}
		l := lists[st.depth]
		items := listLen(c, l)
		for it := 0; it < items; it++ {
			contrib := contribution(c, lists, colPos, st.choices, l, it, coherenceWeight)
			child := state{
				depth:   st.depth + 1,
				choices: append(append([]int(nil), st.choices...), it),
				g:       st.g + contrib,
			}
			child.f = child.g + suffixBound[child.depth]
			heap.Push(pq, &stateItem{f: child.f, st: child})
			stats.StatesEnqueued++
		}
		itSpan.SetInt("depth", int64(st.depth))
		itSpan.SetInt("enqueued", int64(items))
		itSpan.End()
		tel.ObserveSince(telemetry.HistRankJoinIter, itStart)
	}
	return out, stats
}

// buildLists orders the input lists: all typed columns first (so a pair's
// endpoint types are assigned before the pair), then pairs.
func buildLists(c *Candidates, coherenceWeight float64) ([]searchList, map[int]int) {
	var lists []searchList
	colPos := map[int]int{} // table column -> list position
	for i := range c.Columns {
		colPos[c.Columns[i].Col] = len(lists)
		maxTF := 0.0
		if len(c.Columns[i].Types) > 0 {
			maxTF = c.Columns[i].Types[0].TFIDF
		}
		lists = append(lists, searchList{colIdx: i, maxContrib: maxTF})
	}
	for i := range c.Pairs {
		p := &c.Pairs[i]
		maxC := 0.0
		for _, r := range p.Rels {
			v := r.TFIDF
			if coherenceWeight > 0 {
				if c.ColumnFor(p.From) != nil {
					v += coherenceWeight * r.Confidence * c.Stats.MaxSubSC(r.Prop)
				}
				if c.ColumnFor(p.To) != nil {
					v += coherenceWeight * r.Confidence * c.Stats.MaxObjSC(r.Prop)
				}
			}
			if v > maxC {
				maxC = v
			}
		}
		lists = append(lists, searchList{isPair: true, pairIdx: i, maxContrib: maxC})
	}
	return lists, colPos
}

func listLen(c *Candidates, l searchList) int {
	if l.isPair {
		return len(c.Pairs[l.pairIdx].Rels)
	}
	return len(c.Columns[l.colIdx].Types)
}

// contribution computes the score delta of choosing item it from list l,
// given the earlier choices (endpoint types for coherence).
func contribution(c *Candidates, lists []searchList, colPos map[int]int, choices []int, l searchList, it int, coherenceWeight float64) float64 {
	if !l.isPair {
		return c.Columns[l.colIdx].Types[it].TFIDF
	}
	p := &c.Pairs[l.pairIdx]
	r := p.Rels[it]
	v := r.TFIDF
	if coherenceWeight > 0 {
		if t := chosenType(c, colPos, choices, p.From); t != rdf.NoID {
			v += coherenceWeight * r.Confidence * c.Stats.SubSC(t, r.Prop)
		}
		if t := chosenType(c, colPos, choices, p.To); t != rdf.NoID {
			v += coherenceWeight * r.Confidence * c.Stats.ObjSC(t, r.Prop)
		}
	}
	return v
}

func chosenType(c *Candidates, colPos map[int]int, choices []int, col int) rdf.ID {
	pos, ok := colPos[col]
	if !ok || pos >= len(choices) {
		return rdf.NoID
	}
	cc := c.Columns[pos] // columns occupy the first len(c.Columns) list slots in order
	return cc.Types[choices[pos]].Type
}

func buildPattern(c *Candidates, lists []searchList, colPos map[int]int, choices []int, score float64) *pattern.Pattern {
	p := &pattern.Pattern{Score: score}
	seenCol := map[int]bool{}
	for i := range c.Columns {
		cc := &c.Columns[i]
		p.Nodes = append(p.Nodes, pattern.Node{Column: cc.Col, Type: cc.Types[choices[i]].Type})
		seenCol[cc.Col] = true
	}
	for i := range c.Pairs {
		pc := &c.Pairs[i]
		choice := choices[len(c.Columns)+i]
		p.Edges = append(p.Edges, pattern.Edge{From: pc.From, To: pc.To, Prop: pc.Rels[choice].Prop})
		for _, col := range []int{pc.From, pc.To} {
			if !seenCol[col] {
				seenCol[col] = true
				p.Nodes = append(p.Nodes, pattern.Node{Column: col, Type: rdf.NoID})
			}
		}
	}
	return p
}

// Score computes score(φ) of §4.2 for an arbitrary pattern against the
// candidate lists (tf-idf of its types/relationships plus coherence).
// Types or relationships absent from the candidate lists contribute 0.
func Score(p *pattern.Pattern, c *Candidates) float64 {
	return scoreWith(p, c, 1)
}

// NaiveScore computes naiveScore(φ): tf-idf only, no coherence.
func NaiveScore(p *pattern.Pattern, c *Candidates) float64 {
	return scoreWith(p, c, 0)
}

func scoreWith(p *pattern.Pattern, c *Candidates, coherenceWeight float64) float64 {
	s := 0.0
	for _, n := range p.Nodes {
		if n.Type == rdf.NoID {
			continue
		}
		if cc := c.ColumnFor(n.Column); cc != nil {
			for _, t := range cc.Types {
				if t.Type == n.Type {
					s += t.TFIDF
					break
				}
			}
		}
	}
	for _, e := range p.Edges {
		pc := c.PairFor(e.From, e.To)
		if pc == nil {
			continue
		}
		conf := 0.0
		for _, r := range pc.Rels {
			if r.Prop == e.Prop {
				s += r.TFIDF
				conf = r.Confidence
				break
			}
		}
		if coherenceWeight > 0 {
			if t := p.TypeOf(e.From); t != rdf.NoID {
				s += coherenceWeight * conf * c.Stats.SubSC(t, e.Prop)
			}
			if t := p.TypeOf(e.To); t != rdf.NoID {
				s += coherenceWeight * conf * c.Stats.ObjSC(t, e.Prop)
			}
		}
	}
	return s
}

// ExhaustiveTopK enumerates the entire candidate Cartesian product and
// returns the exact top-k patterns. It exists to validate RankJoin and for
// the ablation benchmarks; it refuses absurd search spaces.
func ExhaustiveTopK(c *Candidates, k int) ([]*pattern.Pattern, error) {
	lists, colPos := buildLists(c, 1)
	if len(lists) == 0 {
		return nil, nil
	}
	total := 1
	for _, l := range lists {
		total *= listLen(c, l)
		if total > 5_000_000 {
			return nil, fmt.Errorf("discovery: exhaustive search space too large")
		}
	}
	var best []*pattern.Pattern
	choices := make([]int, len(lists))
	var rec func(depth int, g float64)
	rec = func(depth int, g float64) {
		if depth == len(lists) {
			p := buildPattern(c, lists, colPos, choices, g)
			best = insertTopK(best, p, k)
			return
		}
		l := lists[depth]
		for it := 0; it < listLen(c, l); it++ {
			choices[depth] = it
			rec(depth+1, g+contribution(c, lists, colPos, choices[:depth], l, it, 1))
		}
	}
	rec(0, 0)
	return best, nil
}

func insertTopK(ps []*pattern.Pattern, p *pattern.Pattern, k int) []*pattern.Pattern {
	i := 0
	for i < len(ps) && ps[i].Score >= p.Score {
		i++
	}
	if i >= k {
		return ps
	}
	ps = append(ps, nil)
	copy(ps[i+1:], ps[i:])
	ps[i] = p
	if len(ps) > k {
		ps = ps[:k]
	}
	return ps
}

// stateHeap is a max-heap on f.
type stateItem struct {
	f  float64
	st interface{}
}

type stateHeap []*stateItem

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].f > h[j].f }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(*stateItem)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
