package discovery

import (
	"runtime"
	"sync"

	"katara/internal/kbstats"
	"katara/internal/rdf"
	"katara/internal/table"
)

// GenerateParallel is the single-machine analogue of the paper's
// distributed candidate generation ("we implemented a distributed version
// of candidate types/relationships generation by distributing the 316K
// tuples over 30 machines, and all candidates are collected into one
// machine", §7.1): the table's rows are sharded across workers, each worker
// generates candidates for its shard against the shared (read-only) KB
// statistics, and the shards' per-cell evidence is merged before the
// rank join.
//
// The merge recomputes the tf-idf sums and supports exactly as a
// single-shard run would, so GenerateParallel(tbl, stats, opts, n) returns
// results identical to Generate(tbl, stats, opts) for any worker count.
func GenerateParallel(tbl *table.Table, stats *kbstats.Stats, opts Options, workers int) *Candidates {
	opts = opts.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rows := sampleRows(tbl.NumRows(), opts.MaxRows)
	if workers == 1 || len(rows) < 2*workers {
		return Generate(tbl, stats, opts)
	}

	// Workers read the shared Stats concurrently; its lazily-memoised
	// pieces (closures, instance lists) must be computed up front. The KB
	// label index is read-only after build, so MatchLabel is safe as-is.
	stats.Prewarm()

	shards := make([][]int, workers)
	for i, r := range rows {
		shards[i%workers] = append(shards[i%workers], r)
	}

	results := make([]*Candidates, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shardTbl := &table.Table{Name: tbl.Name, Columns: tbl.Columns}
			for _, r := range shards[w] {
				shardTbl.Rows = append(shardTbl.Rows, tbl.Rows[r])
			}
			shardOpts := opts
			shardOpts.MaxRows = 0     // shard is already sampled
			shardOpts.MinSupport = -1 // no per-shard floors; applied after merge
			shardOpts.MinEdgeConfidence = -1
			shardOpts.MaxCandidates = 0
			results[w] = Generate(shardTbl, stats, shardOpts)
		}(w)
	}
	wg.Wait()

	return mergeShards(tbl, rows, shards, results, stats, opts)
}

// mergeShards reassembles per-cell evidence in the original row order and
// re-runs the scoring/floors/caps exactly as Generate does.
func mergeShards(tbl *table.Table, rows []int, shards [][]int, results []*Candidates, stats *kbstats.Stats, opts Options) *Candidates {
	// Map original sampled row -> (shard, index within shard).
	type loc struct{ shard, idx int }
	where := map[int]loc{}
	for s, sh := range shards {
		for i, r := range sh {
			where[r] = loc{s, i}
		}
	}

	c := &Candidates{Table: tbl, Rows: rows, Stats: stats, Options: opts}
	minSupport := opts.MinSupport * float64(len(rows))

	for col := 0; col < tbl.NumCols(); col++ {
		merged := ColumnCandidates{Col: col}
		merged.CellTypes = make([]map[rdf.ID]float64, len(rows))
		tfidf := map[rdf.ID]float64{}
		support := map[rdf.ID]int{}
		weighted := map[rdf.ID]float64{}
		for i, r := range rows {
			l := where[r]
			var cellT map[rdf.ID]float64
			if sc := results[l.shard].ColumnFor(col); sc != nil {
				cellT = sc.CellTypes[l.idx]
			}
			merged.CellTypes[i] = cellT
			idf := stats.IDF(len(cellT))
			for t, w := range cellT {
				tfidf[t] += w * stats.TF(t) * idf
				support[t]++
				weighted[t] += w
			}
		}
		maxScore := 0.0
		for t, v := range tfidf {
			if weighted[t] >= minSupport && v > maxScore {
				maxScore = v
			}
		}
		if maxScore == 0 {
			continue
		}
		for t, v := range tfidf {
			if weighted[t] < minSupport {
				continue
			}
			merged.Types = append(merged.Types, ScoredType{Type: t, TFIDF: v / maxScore, Support: support[t]})
		}
		sortTypes(merged.Types, stats)
		if opts.MaxCandidates > 0 && len(merged.Types) > opts.MaxCandidates {
			merged.Types = merged.Types[:opts.MaxCandidates]
		}
		c.Columns = append(c.Columns, merged)
	}

	for i := 0; i < tbl.NumCols(); i++ {
		for j := 0; j < tbl.NumCols(); j++ {
			if i == j {
				continue
			}
			pc := PairCandidates{From: i, To: j, CellRels: make([]map[rdf.ID]float64, len(rows))}
			tfidf := map[rdf.ID]float64{}
			support := map[rdf.ID]int{}
			weighted := map[rdf.ID]float64{}
			literalVotes := 0
			for ri, r := range rows {
				l := where[r]
				var rels map[rdf.ID]float64
				if sp := results[l.shard].PairFor(i, j); sp != nil {
					rels = sp.CellRels[l.idx]
					if sp.LiteralObject {
						literalVotes++
					}
				}
				pc.CellRels[ri] = rels
				idf := stats.RelIDF(len(rels))
				for p, w := range rels {
					tfidf[p] += w * stats.RelTF(p) * idf
					support[p]++
					weighted[p] += w
				}
			}
			maxScore := 0.0
			for p, v := range tfidf {
				if weighted[p] >= minSupport && v > maxScore {
					maxScore = v
				}
			}
			if maxScore == 0 {
				continue
			}
			pc.LiteralObject = literalVotes*2 > len(rows)
			for p, v := range tfidf {
				if weighted[p] < minSupport {
					continue
				}
				pc.Rels = append(pc.Rels, ScoredRel{
					Prop:       p,
					TFIDF:      v / maxScore,
					Support:    support[p],
					Confidence: weighted[p] / float64(len(rows)),
				})
			}
			sortRels(pc.Rels, stats)
			if opts.MaxCandidates > 0 && len(pc.Rels) > opts.MaxCandidates {
				pc.Rels = pc.Rels[:opts.MaxCandidates]
			}
			best := 0.0
			for _, r := range pc.Rels {
				if r.Confidence > best {
					best = r.Confidence
				}
			}
			if best < opts.MinEdgeConfidence {
				continue
			}
			c.Pairs = append(c.Pairs, pc)
		}
	}
	return c
}
