package discovery

import (
	"math"

	"katara/internal/pattern"
	"katara/internal/rdf"
)

// This file implements the PGM baseline (§7.1, after Limaye et al. [28]):
// a probabilistic graphical model over column-type variables, column-pair
// relationship variables and per-cell entity variables, solved with loopy
// max-product belief propagation.
//
// The model is deliberately faithful to the reference design, including the
// per-cell entity variables — which is precisely why it is orders of
// magnitude slower than the other discovery algorithms (Table 3: hours on
// ~1K-tuple tables, N.A. on Person).

// PGMOptions tunes the belief-propagation run.
type PGMOptions struct {
	Iterations int     // BP sweeps (default 25)
	Damping    float64 // message damping in [0,1) (default 0.3)
	// MaxCells aborts (returns nil) when the reference model — which holds
	// one variable per *table cell* — would exceed this many cell
	// variables, standing in for the paper's "cannot finish within one day"
	// at Person scale (0 = no limit). The full table size is used even when
	// candidate generation sampled rows: the real PGM has no such escape.
	MaxCells int
}

func (o PGMOptions) withDefaults() PGMOptions {
	if o.Iterations == 0 {
		o.Iterations = 25
	}
	if o.Damping == 0 {
		o.Damping = 0.3
	}
	return o
}

// pgmVar is one variable node with its unary log-potential.
type pgmVar struct {
	domain int
	unary  []float64
	belief []float64
}

// pgmFactor couples two variables with a log-potential table.
type pgmFactor struct {
	a, b   int         // variable indices
	logPsi [][]float64 // [a-state][b-state]
	msgToA []float64
	msgToB []float64
}

// PGMTopK runs loopy BP over the factor graph induced by the candidates and
// returns up to k patterns ranked by their summed max-marginal beliefs.
// It returns nil when the model exceeds opts.MaxCells.
func PGMTopK(c *Candidates, k int, opts PGMOptions) []*pattern.Pattern {
	opts = opts.withDefaults()
	kb := c.Stats.KB()

	if opts.MaxCells > 0 {
		cells := c.Table.NumRows() * len(c.Columns)
		if cells > opts.MaxCells {
			return nil
		}
	}

	var vars []*pgmVar
	var factors []*pgmFactor

	// Column type variables: unary from coverage likelihood.
	typeVar := map[int]int{} // column -> var index
	for i := range c.Columns {
		cc := &c.Columns[i]
		v := &pgmVar{domain: len(cc.Types), unary: make([]float64, len(cc.Types))}
		n := float64(len(c.Rows))
		for j, t := range cc.Types {
			cov := float64(t.Support) / math.Max(n, 1)
			size := float64(c.Stats.EntitiesOfType(t.Type))
			if size < 1 {
				size = 1
			}
			// log P(column | T): coverage reward, specificity reward.
			v.unary[j] = 3*cov - 0.1*math.Log(size)
		}
		typeVar[cc.Col] = len(vars)
		vars = append(vars, v)
	}

	// Pair relationship variables: unary from coverage.
	relVar := make([]int, len(c.Pairs))
	for i := range c.Pairs {
		pc := &c.Pairs[i]
		v := &pgmVar{domain: len(pc.Rels), unary: make([]float64, len(pc.Rels))}
		n := float64(len(c.Rows))
		for j, r := range pc.Rels {
			v.unary[j] = 3 * float64(r.Support) / math.Max(n, 1)
		}
		relVar[i] = len(vars)
		vars = append(vars, v)
	}

	// Type↔relationship compatibility factors (KB co-occurrence).
	for i := range c.Pairs {
		pc := &c.Pairs[i]
		if tv, ok := typeVar[pc.From]; ok {
			cc := c.ColumnFor(pc.From)
			psi := make([][]float64, len(cc.Types))
			for a, t := range cc.Types {
				psi[a] = make([]float64, len(pc.Rels))
				for b, r := range pc.Rels {
					psi[a][b] = 2 * c.Stats.SubSC(t.Type, r.Prop)
				}
			}
			factors = append(factors, newFactor(tv, relVar[i], psi))
		}
		if tv, ok := typeVar[pc.To]; ok && !pc.LiteralObject {
			cc := c.ColumnFor(pc.To)
			psi := make([][]float64, len(cc.Types))
			for a, t := range cc.Types {
				psi[a] = make([]float64, len(pc.Rels))
				for b, r := range pc.Rels {
					psi[a][b] = 2 * c.Stats.ObjSC(t.Type, r.Prop)
				}
			}
			factors = append(factors, newFactor(tv, relVar[i], psi))
		}
	}

	// Per-cell entity variables coupled to their column's type variable —
	// the expensive part of the reference model.
	threshold := c.Options.Threshold
	for i := range c.Columns {
		cc := &c.Columns[i]
		tv := typeVar[cc.Col]
		colTypes := c.Columns[i].Types
		for _, row := range c.Rows {
			val := c.Table.Cell(row, cc.Col)
			var ents []rdf.ID
			for _, m := range kb.MatchLabel(val, threshold) {
				ents = append(ents, m.Resource)
			}
			if len(ents) == 0 {
				continue
			}
			ev := &pgmVar{domain: len(ents), unary: make([]float64, len(ents))}
			evIdx := len(vars)
			vars = append(vars, ev)
			psi := make([][]float64, len(ents))
			for a, ent := range ents {
				psi[a] = make([]float64, len(colTypes))
				for b, t := range colTypes {
					if kb.HasType(ent, t.Type) {
						psi[a][b] = 1
					} else {
						psi[a][b] = -2
					}
				}
			}
			factors = append(factors, newFactor(evIdx, tv, psi))
		}
	}

	if len(vars) == 0 {
		return nil
	}
	runBP(vars, factors, opts)

	// Rank patterns by beliefs via the shared best-first machinery.
	shadow := reScore(c,
		func(cc *ColumnCandidates, t ScoredType) float64 {
			v := vars[typeVar[cc.Col]]
			for j, cand := range c.ColumnFor(cc.Col).Types {
				if cand.Type == t.Type {
					return v.belief[j]
				}
			}
			return math.Inf(-1)
		},
		func(pc *PairCandidates, r ScoredRel) float64 {
			var idx int
			for i := range c.Pairs {
				if c.Pairs[i].From == pc.From && c.Pairs[i].To == pc.To {
					idx = i
					break
				}
			}
			v := vars[relVar[idx]]
			for j, cand := range c.Pairs[idx].Rels {
				if cand.Prop == r.Prop {
					return v.belief[j]
				}
			}
			return math.Inf(-1)
		},
		nil, nil,
	)
	for i := range shadow.Columns {
		shiftTypes(shadow.Columns[i].Types)
	}
	for i := range shadow.Pairs {
		shiftRels(shadow.Pairs[i].Rels)
	}
	return TopKNaive(shadow, k)
}

func newFactor(a, b int, psi [][]float64) *pgmFactor {
	return &pgmFactor{
		a: a, b: b, logPsi: psi,
		msgToA: make([]float64, len(psi)),
		msgToB: make([]float64, len(psi[0])),
	}
}

// runBP performs damped loopy max-product BP and fills vars[i].belief.
func runBP(vars []*pgmVar, factors []*pgmFactor, opts PGMOptions) {
	// incoming[v] lists factors touching v.
	incoming := make([][]*pgmFactor, len(vars))
	for _, f := range factors {
		incoming[f.a] = append(incoming[f.a], f)
		incoming[f.b] = append(incoming[f.b], f)
	}
	varMsg := func(v int, except *pgmFactor, x int) float64 {
		s := vars[v].unary[x]
		for _, f := range incoming[v] {
			if f == except {
				continue
			}
			if f.a == v {
				s += f.msgToA[x]
			} else {
				s += f.msgToB[x]
			}
		}
		return s
	}
	for it := 0; it < opts.Iterations; it++ {
		for _, f := range factors {
			// message factor -> a
			for x := 0; x < len(f.msgToA); x++ {
				best := math.Inf(-1)
				for y := 0; y < len(f.msgToB); y++ {
					if v := f.logPsi[x][y] + varMsg(f.b, f, y); v > best {
						best = v
					}
				}
				f.msgToA[x] = opts.Damping*f.msgToA[x] + (1-opts.Damping)*best
			}
			normalize(f.msgToA)
			// message factor -> b
			for y := 0; y < len(f.msgToB); y++ {
				best := math.Inf(-1)
				for x := 0; x < len(f.msgToA); x++ {
					if v := f.logPsi[x][y] + varMsg(f.a, f, x); v > best {
						best = v
					}
				}
				f.msgToB[y] = opts.Damping*f.msgToB[y] + (1-opts.Damping)*best
			}
			normalize(f.msgToB)
		}
	}
	for i, v := range vars {
		v.belief = make([]float64, v.domain)
		for x := 0; x < v.domain; x++ {
			v.belief[x] = varMsg(i, nil, x)
		}
	}
}

func normalize(msg []float64) {
	max := math.Inf(-1)
	for _, v := range msg {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return
	}
	for i := range msg {
		msg[i] -= max
	}
}
