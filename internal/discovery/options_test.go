package discovery

import (
	"testing"

	"katara/internal/kbstats"
	"katara/internal/rdf"
	"katara/internal/table"
)

// wordsA and wordsB are mutually dissimilar value pools (no shared stems),
// so fuzzy matching behaves like it does on real entity names.
var wordsA = []string{
	"apple", "bridge", "candle", "dolphin", "engine", "falcon", "guitar",
	"harbor", "island", "jacket", "kitten", "lantern", "meadow", "needle",
	"orange", "pepper", "quartz", "rocket", "summit", "timber",
}

var wordsB = []string{
	"anchor", "blossom", "copper", "drummer", "ember", "fountain", "glacier",
	"hammock", "ivory", "jungle", "kernel", "lagoon", "marble", "nectar",
	"obsidian", "prairie", "quiver", "raven", "saddle", "thunder",
}

// wordKB builds a KB with a strong A→B relationship on every row and a
// single backward noise fact.
func wordKB(t *testing.T) (*kbstats.Stats, *table.Table) {
	t.Helper()
	kb := rdf.New()
	add := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)) }
	lit := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.Lit(o)) }
	tbl := table.New("t", "A", "B")
	for i := range wordsA {
		a, b := wordsA[i], wordsB[i]
		add("r:"+a, rdf.IRIType, "ta")
		lit("r:"+a, rdf.IRILabel, a)
		add("r:"+b, rdf.IRIType, "tb")
		lit("r:"+b, rdf.IRILabel, b)
		add("r:"+a, "strong", "r:"+b)
		tbl.Append(a, b)
	}
	add("r:"+wordsB[0], "weak", "r:"+wordsA[0])
	return kbstats.New(kb), tbl
}

func TestConfidenceField(t *testing.T) {
	stats, tbl := wordKB(t)
	c := Generate(tbl, stats, Options{})
	pc := c.PairFor(0, 1)
	if pc == nil {
		t.Fatal("no forward pair")
	}
	if pc.Rels[0].Confidence < 0.95 {
		t.Fatalf("strong rel confidence = %f", pc.Rels[0].Confidence)
	}
}

func TestMinEdgeConfidenceFiltersPairs(t *testing.T) {
	stats, tbl := wordKB(t)
	// The backward pair's only relationship covers 1/20 rows: its best
	// confidence (~0.05) is below the default 0.15 floor.
	c := Generate(tbl, stats, Options{MinSupport: 0.01})
	if rev := c.PairFor(1, 0); rev != nil {
		t.Fatalf("low-confidence pair survived: %+v", rev.Rels)
	}
	// Lowering the floor lets it through.
	c2 := Generate(tbl, stats, Options{MinSupport: 0.01, MinEdgeConfidence: 0.01})
	if rev := c2.PairFor(1, 0); rev == nil {
		t.Fatal("pair missing with floor disabled")
	}
}

func TestMinSupportFiltersTypes(t *testing.T) {
	kb := rdf.New()
	add := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)) }
	lit := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.Lit(o)) }
	tbl := table.New("t", "A")
	for _, v := range wordsA {
		add("r:"+v, rdf.IRIType, "common")
		lit("r:"+v, rdf.IRILabel, v)
		tbl.Append(v)
	}
	add("r:"+wordsA[0], rdf.IRIType, "rare")
	stats := kbstats.New(kb)
	c := Generate(tbl, stats, Options{MinSupport: 0.2})
	cc := c.ColumnFor(0)
	if cc == nil {
		t.Fatal("no candidates at all")
	}
	for _, st := range cc.Types {
		if kb.LabelOf(st.Type) == "rare" {
			t.Fatal("rare type should be below the support floor")
		}
	}
	c2 := Generate(tbl, stats, Options{MinSupport: 0.01})
	found := false
	for _, st := range c2.ColumnFor(0).Types {
		if st.Support == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("rare type missing with floor lowered")
	}
}

func TestBandSuppressesDistantFuzzyMatches(t *testing.T) {
	kb := rdf.New()
	add := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)) }
	lit := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.Lit(o)) }
	tbl := table.New("t", "A")
	for _, v := range wordsA {
		// Exact entity of type "city" plus a homonym "Old <v>" of type
		// "club" — similar enough to pass the 0.7 threshold, far enough to
		// fall outside the 0.1 band of the exact match.
		add("c:"+v, rdf.IRIType, "city")
		lit("c:"+v, rdf.IRILabel, v)
		add("f:"+v, rdf.IRIType, "club")
		lit("f:"+v, rdf.IRILabel, "Old "+v)
		tbl.Append(v)
	}
	stats := kbstats.New(kb)
	c := Generate(tbl, stats, Options{MinSupport: 0.01})
	cc := c.ColumnFor(0)
	if cc == nil {
		t.Fatal("no candidates")
	}
	for _, st := range cc.Types {
		if kb.LabelOf(st.Type) == "club" {
			t.Fatal("band should suppress the homonym club type (exact city match exists)")
		}
	}
	// Widening the band admits the homonyms.
	c2 := Generate(tbl, stats, Options{Band: 0.4, MinSupport: 0.01})
	cc2 := c2.ColumnFor(0)
	if cc2 == nil {
		t.Fatal("no candidates with wide band")
	}
	sawClub := false
	for _, st := range cc2.Types {
		if kb.LabelOf(st.Type) == "club" {
			sawClub = true
		}
	}
	if !sawClub {
		t.Fatal("wide band should admit fuzzy homonyms")
	}
}

func TestMatchExponentDampsFuzzyWeight(t *testing.T) {
	stats, tbl := wordKB(t)
	// With a typo'd table the weights drop but candidates survive.
	dirty := tbl.Clone()
	for i := range dirty.Rows {
		dirty.Rows[i][0] += "x" // one-char typo on every A cell
	}
	c := Generate(dirty, stats, Options{})
	pc := c.PairFor(0, 1)
	if pc == nil {
		t.Fatal("typos should not kill the relationship")
	}
	if pc.Rels[0].Confidence >= 0.9 {
		t.Fatalf("fuzzy-only confidence should be damped, got %f", pc.Rels[0].Confidence)
	}
}
