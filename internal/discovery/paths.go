package discovery

import (
	"katara/internal/pattern"
	"katara/internal/rdf"
)

// DiscoverPathEdges implements the §9 extension at discovery level: for
// every ordered pair of typed columns that produced *no* direct
// relationship candidates, it searches the KB for two-hop property chains
// through intermediate resources ("A1 wasBornIn city, city isLocatedIn A2")
// and returns the best-supported chain per pair as a PathEdge.
//
// Path discovery is deliberately separate from the rank join: the paper's
// scoring model (§4.2) is defined over single relationships, so path edges
// are attached to an already-validated pattern rather than competing inside
// it.
func DiscoverPathEdges(c *Candidates) []pattern.PathEdge {
	kb := c.Stats.KB()
	minSupport := c.Options.MinSupport
	if minSupport <= 0 {
		minSupport = 0.05
	}
	var out []pattern.PathEdge
	for i := range c.Columns {
		for j := range c.Columns {
			if i == j {
				continue
			}
			from, to := c.Columns[i].Col, c.Columns[j].Col
			if c.PairFor(from, to) != nil {
				continue // a direct relationship exists; §4 handles it
			}
			valuesA := make([]string, len(c.Rows))
			valuesB := make([]string, len(c.Rows))
			for ri, row := range c.Rows {
				valuesA[ri] = c.Table.Cell(row, from)
				valuesB[ri] = c.Table.Cell(row, to)
			}
			found := pattern.DiscoverPaths(kb, valuesA, valuesB, c.Options.Threshold, minSupport)
			if len(found) == 0 {
				continue
			}
			out = append(out, pattern.PathEdge{From: from, To: to, Props: found[0].Props})
		}
	}
	return out
}

// AttachPathEdges adds discovered path edges to p, skipping pairs already
// related (directly or by an existing path, in either direction). It
// returns the number of edges attached.
func AttachPathEdges(p *pattern.Pattern, paths []pattern.PathEdge) int {
	n := 0
	for _, pe := range paths {
		if p.EdgeBetween(pe.From, pe.To) != nil || p.EdgeBetween(pe.To, pe.From) != nil {
			continue
		}
		if p.PathEdgeBetween(pe.From, pe.To) != nil || p.PathEdgeBetween(pe.To, pe.From) != nil {
			continue
		}
		if p.TypeOf(pe.From) == rdf.NoID || p.TypeOf(pe.To) == rdf.NoID {
			continue // §9 paths are defined between typed columns
		}
		p.Paths = append(p.Paths, pe)
		n++
	}
	return n
}
