package rdf

import (
	"reflect"
	"sort"
	"testing"
)

// Objects/Subjects (and the closure accessors) return slices shared with the
// store's indexes under a documented read-only contract. These tests pin the
// contract down: the read API must never mutate the shared slices, and a
// regression that sorts or rewrites one in place is caught by comparing the
// store's full triple stream against an untouched clone.

func buildAliasKB() *Store {
	s := New()
	add := func(sub, pred, obj Term) { s.AddFact(sub, pred, obj) }
	add(IRI("ex:City"), IRI(IRISubClassOf), IRI("ex:Place"))
	add(IRI("ex:Capital"), IRI(IRISubClassOf), IRI("ex:City"))
	add(IRI("ex:hasCapital"), IRI(IRISubPropertyOf), IRI("ex:hasCity"))
	add(IRI("ex:Rome"), IRI(IRIType), IRI("ex:Capital"))
	add(IRI("ex:Rome"), IRI(IRIType), IRI("ex:City"))
	add(IRI("ex:Milan"), IRI(IRIType), IRI("ex:City"))
	add(IRI("ex:Italy"), IRI("ex:hasCapital"), IRI("ex:Rome"))
	add(IRI("ex:Italy"), IRI("ex:hasCity"), IRI("ex:Milan"))
	add(IRI("ex:Italy"), IRI("ex:hasCity"), IRI("ex:Rome"))
	add(IRI("ex:Rome"), IRI(IRILabel), Lit("Rome"))
	add(IRI("ex:Milan"), IRI(IRILabel), Lit("Milan"))
	add(IRI("ex:Italy"), IRI(IRILabel), Lit("Italy"))
	return s
}

// renderTriples renders the store's triples by term value, independent of
// interned IDs, so stores built in different orders compare equal.
func renderTriples(s *Store) []string {
	var out []string
	s.ForEachTriple(func(t Triple) {
		out = append(out, s.Term(t.S).String()+" "+s.Term(t.P).String()+" "+s.Term(t.O).String())
	})
	sort.Strings(out)
	return out
}

// exerciseReadAPI runs every read-path accessor that hands out or walks
// shared slices — the operations the pipeline performs between writes.
func exerciseReadAPI(s *Store) {
	city := s.Res("ex:City")
	capital := s.Res("ex:Capital")
	place := s.Res("ex:Place")
	rome := s.Res("ex:Rome")
	italy := s.Res("ex:Italy")
	milan := s.Res("ex:Milan")
	hasCapital := s.Res("ex:hasCapital")
	hasCity := s.Res("ex:hasCity")

	s.Objects(italy, hasCity)
	s.Subjects(s.TypeID, city)
	s.Has(italy, hasCity, rome)
	s.PredicatesBetween(italy, rome)
	s.PredicatesBetweenSub(italy, rome)
	s.PredicatesBetweenSub(italy, milan)
	s.PredicatesOf(italy)
	s.Description(italy)
	s.DirectTypes(rome)
	s.AllTypes(rome)
	s.HasType(rome, place)
	s.HasPredicate(italy, hasCity, rome)
	s.InstancesOf(city)
	s.InstancesOf(place)
	s.Classes()
	s.SuperClasses(capital)
	s.SubClasses(place)
	s.SuperProperties(hasCapital)
	s.SubProperties(hasCity)
	s.IsSubClassOf(capital, place)
	s.IsSubPropertyOf(hasCapital, hasCity)
	s.ResourcesLabeled("Rome")
	s.MatchLabel("Rome", 0.7)
	s.MatchLabel("Romme", 0.7)
	s.LabelsOf(rome)
	s.SubjectsWithPredicate(hasCity)
	s.Predicates()
}

func TestReadAPIDoesNotMutateSharedSlices(t *testing.T) {
	s := buildAliasKB()
	clone := s.Clone()
	wantTriples := renderTriples(clone)

	// Pin direct aliases of the shared slices and copy their contents: any
	// in-place reorder or rewrite by the read API shows up against the copy.
	italy := s.Res("ex:Italy")
	hasCity := s.Res("ex:hasCity")
	city := s.Res("ex:City")
	capital := s.Res("ex:Capital")
	objs := s.Objects(italy, hasCity)
	objsCopy := append([]ID(nil), objs...)
	subs := s.Subjects(s.TypeID, city)
	subsCopy := append([]ID(nil), subs...)
	sups := s.SuperClasses(capital)
	supsCopy := append([]ID(nil), sups...)
	labeled := s.ResourcesLabeled("Rome")
	labeledCopy := append([]ID(nil), labeled...)

	exerciseReadAPI(s)

	if !reflect.DeepEqual(objs, objsCopy) {
		t.Errorf("Objects slice mutated: %v -> %v", objsCopy, objs)
	}
	if !reflect.DeepEqual(subs, subsCopy) {
		t.Errorf("Subjects slice mutated: %v -> %v", subsCopy, subs)
	}
	if !reflect.DeepEqual(sups, supsCopy) {
		t.Errorf("SuperClasses slice mutated: %v -> %v", supsCopy, sups)
	}
	if !reflect.DeepEqual(labeled, labeledCopy) {
		t.Errorf("ResourcesLabeled slice mutated: %v -> %v", labeledCopy, labeled)
	}
	if got := renderTriples(s); !reflect.DeepEqual(got, wantTriples) {
		t.Errorf("triple stream changed under read-only use:\ngot  %v\nwant %v", got, wantTriples)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := buildAliasKB()
	clone := s.Clone()
	before := renderTriples(clone)
	// Mutating the original must not leak into the clone through any shared
	// backing array.
	s.AddFact(IRI("ex:Italy"), IRI("ex:hasCity"), IRI("ex:Naples"))
	s.AddFact(IRI("ex:Naples"), IRI(IRILabel), Lit("Naples"))
	if got := renderTriples(clone); !reflect.DeepEqual(got, before) {
		t.Fatalf("clone changed when original was mutated:\ngot  %v\nwant %v", got, before)
	}
	if len(clone.MatchLabel("Naples", 0.7)) != 0 {
		t.Fatal("clone's label index leaked the original's new label")
	}
}
