package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
)

// This file implements a Turtle-subset reader: real KB dumps (DBpedia
// publishes Turtle) use prefixes and predicate/object lists, which N-Triples
// lacks. Supported:
//
//	@prefix ex: <http://example.org/> .
//	ex:Italy a ex:Country ;
//	    rdfs:label "Italy", "Italia"@it ;
//	    ex:capital ex:Rome .
//
// IRIs in angle brackets, prefixed names, `a` for rdf:type, `;` predicate
// lists, `,` object lists, string literals with language tags or datatypes,
// and `#` comments. Blank nodes and multi-line literals are not supported.

// ParseTurtle reads Turtle from r into the store, returning the number of
// triples added.
func (s *Store) ParseTurtle(r io.Reader) (int, error) {
	p := &turtleParser{store: s, prefixes: map[string]string{
		"rdf":  "rdf:",
		"rdfs": "rdfs:",
	}}
	return p.parse(r)
}

type turtleParser struct {
	store    *Store
	prefixes map[string]string
	line     int
	added    int
}

func (p *turtleParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("rdf: turtle line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// parse tokenises statement by statement. Turtle statements end with '.',
// so we accumulate tokens until one is seen.
func (p *turtleParser) parse(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var stmt []turtleToken
	for sc.Scan() {
		p.line++
		toks, err := p.tokenizeLine(sc.Text())
		if err != nil {
			return p.added, err
		}
		for _, t := range toks {
			if t.kind == ttDot {
				if err := p.statement(stmt); err != nil {
					return p.added, err
				}
				stmt = stmt[:0]
				continue
			}
			stmt = append(stmt, t)
		}
	}
	if err := sc.Err(); err != nil {
		return p.added, err
	}
	if len(stmt) != 0 {
		return p.added, p.errf("unterminated statement")
	}
	return p.added, nil
}

type turtleTokenKind int

const (
	ttTerm turtleTokenKind = iota // resolved Term
	ttDot
	ttSemicolon
	ttComma
	ttPrefixDecl // the @prefix keyword
)

type turtleToken struct {
	kind turtleTokenKind
	term Term
	text string // raw text for prefix declarations
}

func (p *turtleParser) tokenizeLine(line string) ([]turtleToken, error) {
	var out []turtleToken
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			return out, nil // comment to end of line
		case c == '.':
			out = append(out, turtleToken{kind: ttDot})
			i++
		case c == ';':
			out = append(out, turtleToken{kind: ttSemicolon})
			i++
		case c == ',':
			out = append(out, turtleToken{kind: ttComma})
			i++
		case c == '<':
			end := strings.IndexByte(line[i:], '>')
			if end < 0 {
				return nil, p.errf("unterminated IRI")
			}
			out = append(out, turtleToken{kind: ttTerm, term: IRI(line[i+1 : i+end])})
			i += end + 1
		case c == '"':
			term, n, err := p.scanLiteral(line[i:])
			if err != nil {
				return nil, err
			}
			out = append(out, turtleToken{kind: ttTerm, term: term})
			i += n
		case c == '@':
			if strings.HasPrefix(line[i:], "@prefix") {
				out = append(out, turtleToken{kind: ttPrefixDecl})
				i += len("@prefix")
				break
			}
			return nil, p.errf("unexpected '@' directive")
		default:
			j := i
			for j < len(line) && !strings.ContainsRune(" \t\r,;.#<\"", rune(line[j])) {
				j++
			}
			// A trailing '.' belongs to the statement, but dots inside
			// prefixed names (rare) are kept; we already split on '.', so a
			// name like ex:v1.2 is unsupported — acceptable for the subset.
			word := line[i:j]
			if word == "" {
				return nil, p.errf("unexpected character %q", c)
			}
			out = append(out, turtleToken{kind: ttTerm, text: word})
			i = j
		}
	}
	return out, nil
}

func (p *turtleParser) scanLiteral(s string) (Term, int, error) {
	i := 1
	for i < len(s) {
		if s[i] == '\\' {
			i += 2
			continue
		}
		if s[i] == '"' {
			break
		}
		i++
	}
	if i >= len(s) {
		return Term{}, 0, p.errf("unterminated literal")
	}
	val, err := strconv.Unquote(s[:i+1])
	if err != nil {
		return Term{}, 0, p.errf("bad literal %s: %v", s[:i+1], err)
	}
	n := i + 1
	rest := s[n:]
	switch {
	case strings.HasPrefix(rest, "@"):
		j := 1
		for j < len(rest) && (unicode.IsLetter(rune(rest[j])) || rest[j] == '-') {
			j++
		}
		n += j
	case strings.HasPrefix(rest, "^^"):
		n += 2
		rest = rest[2:]
		if strings.HasPrefix(rest, "<") {
			j := strings.IndexByte(rest, '>')
			if j < 0 {
				return Term{}, 0, p.errf("unterminated datatype IRI")
			}
			n += j + 1
		} else {
			j := 0
			for j < len(rest) && !strings.ContainsRune(" \t\r,;.", rune(rest[j])) {
				j++
			}
			n += j
		}
	}
	return Lit(val), n, nil
}

// resolve turns a raw word token into a term: `a`, prefixed name, or bare
// word (kept as an opaque IRI).
func (p *turtleParser) resolve(t turtleToken) (Term, error) {
	if t.text == "" {
		return t.term, nil
	}
	if t.text == "a" {
		return IRI(IRIType), nil
	}
	if colon := strings.IndexByte(t.text, ':'); colon >= 0 {
		prefix := t.text[:colon]
		local := t.text[colon+1:]
		if base, ok := p.prefixes[prefix]; ok {
			if strings.HasSuffix(base, ":") { // vocabulary shorthand (rdf:, rdfs:)
				return IRI(base + local), nil
			}
			return IRI(base + local), nil
		}
		// Unknown prefix: keep the name opaque (matches the engine's
		// treatment of prefixed names).
		return IRI(t.text), nil
	}
	return IRI(t.text), nil
}

// statement processes one accumulated statement (without its final dot).
func (p *turtleParser) statement(toks []turtleToken) error {
	if len(toks) == 0 {
		return nil
	}
	if toks[0].kind == ttPrefixDecl {
		if len(toks) != 3 {
			return p.errf("malformed @prefix declaration")
		}
		name := toks[1].text
		if !strings.HasSuffix(name, ":") {
			return p.errf("prefix name must end with ':'")
		}
		if toks[2].term.Kind != Resource || toks[2].text != "" {
			// must be an IRI token
		}
		if toks[2].text != "" || toks[2].term.Value == "" {
			return p.errf("prefix IRI must be an <IRI>")
		}
		p.prefixes[strings.TrimSuffix(name, ":")] = toks[2].term.Value
		return nil
	}

	subj, err := p.resolve(toks[0])
	if err != nil {
		return err
	}
	if subj.Kind != Resource {
		return p.errf("subject must be a resource")
	}
	i := 1
	for i < len(toks) {
		pred, err := p.resolve(toks[i])
		if err != nil {
			return err
		}
		if pred.Kind != Resource {
			return p.errf("predicate must be a resource")
		}
		i++
		for {
			if i >= len(toks) {
				return p.errf("statement ends after predicate")
			}
			obj, err := p.resolve(toks[i])
			if err != nil {
				return err
			}
			i++
			if p.store.AddFact(subj, pred, obj) {
				p.added++
			}
			if i < len(toks) && toks[i].kind == ttComma {
				i++
				continue
			}
			break
		}
		if i < len(toks) {
			if toks[i].kind != ttSemicolon {
				return p.errf("expected ';' or '.' between predicates")
			}
			i++
			if i == len(toks) {
				break // trailing semicolon before the dot
			}
		}
	}
	return nil
}
