package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a reader and writer for the N-Triples line format,
// the interchange format the synthetic KBs are persisted in (cmd/kbgen) and
// the CLI loads (cmd/katara). Only the subset we emit is accepted: IRIs in
// angle brackets and plain or language-tagged string literals.

// ParseNTriples reads N-Triples from r into the store, returning the number
// of triples added. Lines that are empty or start with '#' are skipped.
func (s *Store) ParseNTriples(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	added := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseLine(line)
		if err != nil {
			return added, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		if s.AddFact(t[0], t[1], t[2]) {
			added++
		}
	}
	return added, sc.Err()
}

func parseLine(line string) ([3]Term, error) {
	var out [3]Term
	rest := line
	for i := 0; i < 3; i++ {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return out, fmt.Errorf("unexpected end of statement")
		}
		var (
			t   Term
			err error
		)
		t, rest, err = parseTerm(rest)
		if err != nil {
			return out, err
		}
		if i == 1 && t.Kind != Resource {
			return out, fmt.Errorf("predicate must be an IRI")
		}
		out[i] = t
	}
	rest = strings.TrimLeft(rest, " \t")
	if !strings.HasPrefix(rest, ".") {
		return out, fmt.Errorf("statement must end with '.'")
	}
	return out, nil
}

func parseTerm(s string) (Term, string, error) {
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated IRI")
		}
		return IRI(s[1:end]), s[end+1:], nil
	case '"':
		// Find the closing quote, honouring backslash escapes.
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return Term{}, "", fmt.Errorf("unterminated literal")
		}
		raw := s[:i+1]
		val, err := strconv.Unquote(raw)
		if err != nil {
			return Term{}, "", fmt.Errorf("bad literal %s: %v", raw, err)
		}
		rest := s[i+1:]
		// Skip optional language tag or datatype.
		if strings.HasPrefix(rest, "@") {
			j := strings.IndexAny(rest, " \t")
			if j < 0 {
				j = len(rest)
			}
			rest = rest[j:]
		} else if strings.HasPrefix(rest, "^^") {
			rest = rest[2:]
			if strings.HasPrefix(rest, "<") {
				j := strings.IndexByte(rest, '>')
				if j < 0 {
					return Term{}, "", fmt.Errorf("unterminated datatype IRI")
				}
				rest = rest[j+1:]
			}
		}
		return Lit(val), rest, nil
	default:
		return Term{}, "", fmt.Errorf("unexpected term start %q", s[0])
	}
}

// WriteNTriples serialises every triple in the store to w.
func (s *Store) WriteNTriples(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	s.ForEachTriple(func(t Triple) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%s %s %s .\n",
			formatTerm(s.terms[t.S]), formatTerm(s.terms[t.P]), formatTerm(s.terms[t.O]))
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func formatTerm(t Term) string {
	if t.Kind == Literal {
		return strconv.Quote(t.Value)
	}
	return "<" + t.Value + ">"
}
