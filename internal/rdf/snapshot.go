package rdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary snapshot format: loading a large KB from N-Triples re-parses and
// re-interns every term; the snapshot stores the term table and triple list
// directly, cutting cold-start time for repeated experiment runs
// (BenchmarkSnapshotLoad vs BenchmarkNTriplesLoad).
//
// Layout (all integers little-endian):
//
//	magic   "KSNAP1\n"
//	uint32  term count
//	per term:  uint8 kind, uvarint length, bytes value
//	uint32  triple count
//	per triple: uvarint S, uvarint P, uvarint O (term indices)
//
// Term indices in the file are positions in the term table, which on load
// map to freshly interned IDs — snapshots are portable across stores.

var snapshotMagic = []byte("KSNAP1\n")

// WriteSnapshot serialises the store.
func (s *Store) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.terms))); err != nil {
		return err
	}
	for _, t := range s.terms {
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(t.Value))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t.Value); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(s.ntriples)); err != nil {
		return err
	}
	var ferr error
	s.ForEachTriple(func(t Triple) {
		if ferr != nil {
			return
		}
		for _, id := range []ID{t.S, t.P, t.O} {
			if err := writeUvarint(uint64(id)); err != nil {
				ferr = err
				return
			}
		}
	})
	if ferr != nil {
		return ferr
	}
	return bw.Flush()
}

// ReadSnapshot loads a snapshot into the store, returning the number of
// triples added.
func (s *Store) ReadSnapshot(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("rdf: snapshot header: %w", err)
	}
	if string(magic) != string(snapshotMagic) {
		return 0, fmt.Errorf("rdf: not a KB snapshot")
	}
	var termCount uint32
	if err := binary.Read(br, binary.LittleEndian, &termCount); err != nil {
		return 0, err
	}
	const maxTerms = 1 << 28
	if termCount > maxTerms {
		return 0, fmt.Errorf("rdf: snapshot declares %d terms", termCount)
	}
	ids := make([]ID, termCount)
	for i := range ids {
		kind, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if TermKind(kind) != Resource && TermKind(kind) != Literal {
			return 0, fmt.Errorf("rdf: bad term kind %d", kind)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if n > 1<<24 {
			return 0, fmt.Errorf("rdf: term length %d too large", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, err
		}
		ids[i] = s.Intern(Term{Kind: TermKind(kind), Value: string(buf)})
	}
	var tripleCount uint32
	if err := binary.Read(br, binary.LittleEndian, &tripleCount); err != nil {
		return 0, err
	}
	added := 0
	for i := uint32(0); i < tripleCount; i++ {
		var idx [3]uint64
		for j := range idx {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return added, err
			}
			if v >= uint64(termCount) {
				return added, fmt.Errorf("rdf: triple references term %d of %d", v, termCount)
			}
			idx[j] = v
		}
		if s.Add(ids[idx[0]], ids[idx[1]], ids[idx[2]]) {
			added++
		}
	}
	return added, nil
}
