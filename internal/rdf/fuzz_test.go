package rdf

import (
	"math"
	"reflect"
	"testing"
)

// fuzzLabelStore is a fixed store whose labels cover the shapes fuzzy
// resolution must survive: unicode, punctuation, shared prefixes, duplicate
// labels on distinct resources, and an empty label.
func fuzzLabelStore() *Store {
	st := New()
	labels := map[string][]string{
		"ex:rome":         {"Rome", "Roma"},
		"ex:romania":      {"Romania"},
		"ex:madrid":       {"Madrid"},
		"ex:pretoria":     {"Pretoria"},
		"ex:capetown":     {"Cape Town"},
		"ex:south_africa": {"S. Africa", "South Africa"},
		"ex:uk":           {"UK", "United Kingdom"},
		"ex:ivorycoast":   {"Côte d'Ivoire"},
		"ex:joburg":       {"Johannesburg"},
		"ex:joburg2":      {"Johannesburg"},
		"ex:blank":        {""},
	}
	for iri, ls := range labels {
		id := st.Res(iri)
		for _, l := range ls {
			st.Add(id, st.LabelID, st.Literal(l))
		}
	}
	return st
}

// FuzzMatchLabel drives Store.MatchLabel with arbitrary cell values and
// thresholds: it must never panic, scores must land in [threshold, 1],
// results must be sorted best-first with deterministic tie-breaking and no
// duplicate resources, and the same call twice must return identical hits.
func FuzzMatchLabel(f *testing.F) {
	st := fuzzLabelStore()
	f.Add("Rome", 0.7)
	f.Add("S. Africa", 0.7)
	f.Add("Pretorria", 0.5)
	f.Add("", 0.7)
	f.Add("CÔTE D'IVOIRE", 0.3)
	f.Add("johannesburgh", 0.7)
	f.Fuzz(func(t *testing.T, value string, threshold float64) {
		if len(value) > 256 {
			t.Skip("similarity cost grows with length; bound the input")
		}
		// Wild thresholds (NaN, ±Inf, out of range) must not panic; the
		// range invariants below only make sense for a sane threshold.
		_ = st.MatchLabel(value, threshold)
		if math.IsNaN(threshold) || threshold <= 0 || threshold > 1 {
			threshold = 0.7
		}
		got := st.MatchLabel(value, threshold)
		seen := map[ID]bool{}
		for i, m := range got {
			if m.Score < threshold || m.Score > 1 {
				t.Fatalf("hit %d: score %v outside [%v, 1]", i, m.Score, threshold)
			}
			if seen[m.Resource] {
				t.Fatalf("hit %d: duplicate resource %d", i, m.Resource)
			}
			seen[m.Resource] = true
			if i > 0 {
				prev := got[i-1]
				if m.Score > prev.Score {
					t.Fatalf("hit %d: score %v after %v — not best-first", i, m.Score, prev.Score)
				}
				if m.Score == prev.Score && m.Resource <= prev.Resource {
					t.Fatalf("hit %d: tie at %v not broken by ascending resource", i, m.Score)
				}
			}
		}
		if again := st.MatchLabel(value, threshold); !reflect.DeepEqual(got, again) {
			t.Fatalf("MatchLabel(%q, %v) is not deterministic:\n%v\nvs\n%v", value, threshold, got, again)
		}
	})
}
