package rdf

import (
	"strings"
	"testing"
)

func TestParseTurtleBasic(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
# soccer fragment
ex:Italy a ex:Country ;
    rdfs:label "Italy", "Italia"@it ;
    ex:capital ex:Rome .
ex:Rome a ex:Capital ;
    rdfs:label "Rome" .
`
	s := New()
	n, err := s.ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("added %d triples, want 6", n)
	}
	italy := s.LookupTerm(IRI("http://example.org/Italy"))
	if italy == NoID {
		t.Fatal("prefix expansion failed")
	}
	labels := s.LabelsOf(italy)
	if len(labels) != 2 {
		t.Fatalf("labels = %v", labels)
	}
	rome := s.LookupTerm(IRI("http://example.org/Rome"))
	capProp := s.LookupTerm(IRI("http://example.org/capital"))
	if rome == NoID || capProp == NoID || !s.Has(italy, capProp, rome) {
		t.Fatal("capital fact missing")
	}
	country := s.LookupTerm(IRI("http://example.org/Country"))
	if !s.HasType(italy, country) {
		t.Fatal("`a` keyword not mapped to rdf:type")
	}
}

func TestParseTurtleMultiLineStatement(t *testing.T) {
	src := `@prefix ex: <e/> .
ex:A
    ex:p ex:B ;
    ex:q ex:C ,
         ex:D .
`
	s := New()
	n, err := s.ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("added %d, want 3", n)
	}
	a := s.LookupTerm(IRI("e/A"))
	q := s.LookupTerm(IRI("e/q"))
	if got := s.Objects(a, q); len(got) != 2 {
		t.Fatalf("object list parsed as %d objects", len(got))
	}
}

func TestParseTurtleDatatypesAndTags(t *testing.T) {
	src := `@prefix ex: <e/> .
ex:X ex:h "1.78"^^<http://www.w3.org/2001/XMLSchema#double> ;
     ex:n "deux"@fr ;
     ex:d "2020"^^xsd:gYear .
`
	s := New()
	n, err := s.ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("added %d, want 3", n)
	}
	x := s.LookupTerm(IRI("e/X"))
	h := s.LookupTerm(IRI("e/h"))
	objs := s.Objects(x, h)
	if len(objs) != 1 || s.Term(objs[0]).Value != "1.78" {
		t.Fatalf("datatyped literal = %v", objs)
	}
}

func TestParseTurtleVocabularyShorthand(t *testing.T) {
	// rdf: and rdfs: names map onto the store's built-in vocabulary even
	// without declarations.
	src := `<e/Capital> rdfs:subClassOf <e/City> .
<e/Rome> rdf:type <e/Capital> .
`
	s := New()
	if _, err := s.ParseTurtle(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	rome := s.LookupTerm(IRI("e/Rome"))
	city := s.LookupTerm(IRI("e/City"))
	if !s.HasType(rome, city) {
		t.Fatal("vocabulary shorthand broken")
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := []string{
		`ex:A ex:p ex:B`,          // missing final dot
		`@prefix ex <e/> .`,       // prefix name without colon
		`@prefix ex: e/ .`,        // prefix IRI not in angle brackets
		`<a> <p> .`,               // predicate without object
		`<a> "lit" <c> .`,         // literal predicate
		`"lit" <p> <c> .`,         // literal subject
		`<a> <p> "unterminated .`, // unterminated literal
		`<a> <p <c> .`,            // unterminated IRI
		`<a> <p> <b> <q> <c> .`,   // missing ';' between predicates
	}
	for _, src := range bad {
		s := New()
		if _, err := s.ParseTurtle(strings.NewReader(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestTurtleAgainstNTriplesEquivalence(t *testing.T) {
	ttl := `@prefix y: <y/> .
y:Italy a y:country ; rdfs:label "Italy" ; y:hasCapital y:Rome .
y:Rome a y:capital ; rdfs:label "Rome" .
`
	nt := `<y/Italy> <rdf:type> <y/country> .
<y/Italy> <rdfs:label> "Italy" .
<y/Italy> <y/hasCapital> <y/Rome> .
<y/Rome> <rdf:type> <y/capital> .
<y/Rome> <rdfs:label> "Rome" .
`
	a := New()
	if _, err := a.ParseTurtle(strings.NewReader(ttl)); err != nil {
		t.Fatal(err)
	}
	b := New()
	if _, err := b.ParseNTriples(strings.NewReader(nt)); err != nil {
		t.Fatal(err)
	}
	if a.NumTriples() != b.NumTriples() {
		t.Fatalf("turtle %d triples vs ntriples %d", a.NumTriples(), b.NumTriples())
	}
	a.ForEachTriple(func(tr Triple) {
		s2 := b.LookupTerm(a.Term(tr.S))
		p2 := b.LookupTerm(a.Term(tr.P))
		o2 := b.LookupTerm(a.Term(tr.O))
		if s2 == NoID || p2 == NoID || o2 == NoID || !b.Has(s2, p2, o2) {
			t.Fatalf("triple mismatch: %v %v %v",
				a.Term(tr.S), a.Term(tr.P), a.Term(tr.O))
		}
	})
}
