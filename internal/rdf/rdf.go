// Package rdf implements the knowledge-base substrate for KATARA: an
// in-memory, interned RDF triple store with the RDFS vocabulary the paper
// relies on (rdfs:label, rdf:type, rdfs:subClassOf, rdfs:subPropertyOf),
// transitive closure over class and property hierarchies, a fuzzy label
// index, and N-Triples serialisation.
//
// The paper loads Yago and DBpedia into Apache Jena; this store is the
// offline stand-in. It is deliberately simple — single writer, many readers —
// and all query structure lives in package sparql on top of it.
package rdf

import (
	"fmt"
	"sort"

	"katara/internal/similarity"
)

// Well-known vocabulary IRIs.
const (
	IRIType          = "rdf:type"
	IRILabel         = "rdfs:label"
	IRISubClassOf    = "rdfs:subClassOf"
	IRISubPropertyOf = "rdfs:subPropertyOf"
)

// TermKind discriminates resources from literals.
type TermKind uint8

const (
	// Resource terms are IRIs naming entities, classes or properties.
	Resource TermKind = iota
	// Literal terms are strings, numbers or dates.
	Literal
)

// Term is an RDF term: a resource (IRI) or a literal.
type Term struct {
	Kind  TermKind
	Value string
}

// IRI returns a resource term.
func IRI(v string) Term { return Term{Kind: Resource, Value: v} }

// Lit returns a literal term.
func Lit(v string) Term { return Term{Kind: Literal, Value: v} }

// String renders a term in N-Triples-like syntax.
func (t Term) String() string {
	if t.Kind == Literal {
		return fmt.Sprintf("%q", t.Value)
	}
	return "<" + t.Value + ">"
}

// ID is an interned term identifier within one Store.
type ID int32

// NoID is returned by lookups that find nothing.
const NoID ID = -1

// Triple is one (subject, predicate, object) statement by ID.
type Triple struct{ S, P, O ID }

// Store is the triple store. The zero value is not usable; call New.
type Store struct {
	terms  []Term
	lookup map[Term]ID

	// Core indexes. pso: P -> S -> sorted []O. pos: P -> O -> sorted []S.
	// sp: S -> sorted list of (P,O) pairs for subject description.
	pso map[ID]map[ID][]ID
	pos map[ID]map[ID][]ID
	sp  map[ID][]pair

	ntriples int

	// Well-known predicate IDs, interned on construction.
	TypeID, LabelID, SubClassOfID, SubPropertyOfID ID

	// Hierarchy closures, memoised per generation.
	gen        uint64
	closureGen uint64
	labelGen   uint64 // bumped whenever a label is indexed; see LabelGen
	superCls   map[ID][]ID
	subCls     map[ID][]ID
	superProp  map[ID][]ID
	subProp    map[ID][]ID

	// Label index: normalised label -> resource IDs, plus fuzzy index.
	labelIndex map[string][]ID
	fuzzy      *similarity.Index
	fuzzyIDs   []ID // fuzzy index slot -> resource ID

	// Bounded log of recently indexed labels (normalised), so layered caches
	// can invalidate per label instead of flushing wholesale. labelLog[i]
	// records the label whose indexing bumped labelGen to labelLogBase+i+1;
	// the log drops its older half once it outgrows maxLabelLog, and
	// LabelsSince reports the truncation so callers fall back to a full
	// flush.
	labelLog     []string
	labelLogBase uint64
}

// maxLabelLog bounds the label log; above it the older half is dropped.
// Enrichment runs add labels in small bursts, so any live cache syncs long
// before the window slides past it.
const maxLabelLog = 8192

type pair struct{ p, o ID }

// New returns an empty store with the RDFS vocabulary interned.
func New() *Store {
	s := &Store{
		lookup:     make(map[Term]ID),
		pso:        make(map[ID]map[ID][]ID),
		pos:        make(map[ID]map[ID][]ID),
		sp:         make(map[ID][]pair),
		labelIndex: make(map[string][]ID),
		fuzzy:      similarity.NewIndex(),
	}
	s.TypeID = s.Intern(IRI(IRIType))
	s.LabelID = s.Intern(IRI(IRILabel))
	s.SubClassOfID = s.Intern(IRI(IRISubClassOf))
	s.SubPropertyOfID = s.Intern(IRI(IRISubPropertyOf))
	return s
}

// Intern returns the ID for t, creating it if needed.
func (s *Store) Intern(t Term) ID {
	if id, ok := s.lookup[t]; ok {
		return id
	}
	id := ID(len(s.terms))
	s.terms = append(s.terms, t)
	s.lookup[t] = id
	return id
}

// Res interns a resource IRI.
func (s *Store) Res(iri string) ID { return s.Intern(IRI(iri)) }

// Literal interns a literal value.
func (s *Store) Literal(v string) ID { return s.Intern(Lit(v)) }

// LookupTerm returns the ID of t without interning, or NoID.
func (s *Store) LookupTerm(t Term) ID {
	if id, ok := s.lookup[t]; ok {
		return id
	}
	return NoID
}

// Term returns the term for id.
func (s *Store) Term(id ID) Term { return s.terms[id] }

// IsLiteral reports whether id names a literal.
func (s *Store) IsLiteral(id ID) bool { return s.terms[id].Kind == Literal }

// NumTerms returns the number of interned terms.
func (s *Store) NumTerms() int { return len(s.terms) }

// NumTriples returns the number of distinct triples added.
func (s *Store) NumTriples() int { return s.ntriples }

// LabelGen returns a generation counter that changes whenever a label is
// added to the index, i.e. whenever MatchLabel results could change. Caches
// layered over label resolution (package resolve) compare it to decide when
// to invalidate. Reads follow the store's single-writer contract.
func (s *Store) LabelGen() uint64 { return s.labelGen }

// Add inserts the triple (sub, pred, obj). Duplicate triples are ignored.
// It returns true if the triple was new.
func (s *Store) Add(sub, pred, obj ID) bool {
	bySubj := s.pso[pred]
	if bySubj == nil {
		bySubj = make(map[ID][]ID)
		s.pso[pred] = bySubj
	}
	objs := bySubj[sub]
	i := sort.Search(len(objs), func(i int) bool { return objs[i] >= obj })
	if i < len(objs) && objs[i] == obj {
		return false
	}
	objs = append(objs, 0)
	copy(objs[i+1:], objs[i:])
	objs[i] = obj
	bySubj[sub] = objs

	byObj := s.pos[pred]
	if byObj == nil {
		byObj = make(map[ID][]ID)
		s.pos[pred] = byObj
	}
	subs := byObj[obj]
	j := sort.Search(len(subs), func(i int) bool { return subs[i] >= sub })
	subs = append(subs, 0)
	copy(subs[j+1:], subs[j:])
	subs[j] = sub
	byObj[obj] = subs

	s.sp[sub] = append(s.sp[sub], pair{pred, obj})
	s.ntriples++

	switch pred {
	case s.SubClassOfID, s.SubPropertyOfID:
		s.gen++ // invalidate hierarchy closures
	case s.LabelID:
		if s.IsLiteral(obj) {
			norm := similarity.Normalize(s.terms[obj].Value)
			s.labelIndex[norm] = append(s.labelIndex[norm], sub)
			s.fuzzy.Add(s.terms[obj].Value)
			s.fuzzyIDs = append(s.fuzzyIDs, sub)
			if len(s.labelLog) >= maxLabelLog {
				drop := len(s.labelLog) / 2
				s.labelLog = append(s.labelLog[:0], s.labelLog[drop:]...)
				s.labelLogBase += uint64(drop)
			}
			s.labelLog = append(s.labelLog, norm)
			s.labelGen++
		}
	}
	return true
}

// AddFact interns the three terms and adds the triple.
func (s *Store) AddFact(sub, pred Term, obj Term) bool {
	return s.Add(s.Intern(sub), s.Intern(pred), s.Intern(obj))
}

// Objects returns the objects of (sub, pred, ?o). The returned slice is
// shared with the index; callers must not mutate it.
func (s *Store) Objects(sub, pred ID) []ID {
	if m := s.pso[pred]; m != nil {
		return m[sub]
	}
	return nil
}

// Subjects returns the subjects of (?s, pred, obj). Shared slice; read-only.
func (s *Store) Subjects(pred, obj ID) []ID {
	if m := s.pos[pred]; m != nil {
		return m[obj]
	}
	return nil
}

// Has reports whether the triple (sub, pred, obj) is present.
func (s *Store) Has(sub, pred, obj ID) bool {
	objs := s.Objects(sub, pred)
	i := sort.Search(len(objs), func(i int) bool { return objs[i] >= obj })
	return i < len(objs) && objs[i] == obj
}

// PredicatesBetween returns the predicates p such that (sub, p, obj) holds.
func (s *Store) PredicatesBetween(sub, obj ID) []ID {
	var out []ID
	for _, po := range s.sp[sub] {
		if po.o == obj {
			out = append(out, po.p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupe(out)
}

// PredicatesOf returns the distinct predicates with sub as subject.
func (s *Store) PredicatesOf(sub ID) []ID {
	var out []ID
	for _, po := range s.sp[sub] {
		out = append(out, po.p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupe(out)
}

// Description returns all (pred, obj) pairs with sub as subject.
func (s *Store) Description(sub ID) []Triple {
	pairs := s.sp[sub]
	out := make([]Triple, len(pairs))
	for i, po := range pairs {
		out[i] = Triple{S: sub, P: po.p, O: po.o}
	}
	return out
}

// ForEachTriple visits every triple in an unspecified but deterministic-per-
// store order grouped by predicate.
func (s *Store) ForEachTriple(f func(Triple)) {
	preds := make([]ID, 0, len(s.pso))
	for p := range s.pso {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	for _, p := range preds {
		bySubj := s.pso[p]
		subs := make([]ID, 0, len(bySubj))
		for su := range bySubj {
			subs = append(subs, su)
		}
		sort.Slice(subs, func(i, j int) bool { return subs[i] < subs[j] })
		for _, su := range subs {
			for _, o := range bySubj[su] {
				f(Triple{S: su, P: p, O: o})
			}
		}
	}
}

// LabelsSince returns the normalised labels indexed after generation gen (in
// indexing order), for per-label cache invalidation. ok is false when the
// bounded log has already dropped part of that window — the caller must fall
// back to a full flush. gen beyond the current generation reports as
// truncated rather than panicking.
func (s *Store) LabelsSince(gen uint64) (labels []string, ok bool) {
	if gen > s.labelGen || gen < s.labelLogBase {
		return nil, false
	}
	return s.labelLog[gen-s.labelLogBase:], true
}

// Clone returns a deep copy of the store. Term IDs are not preserved across
// the copy; look terms up by value in the clone.
func (s *Store) Clone() *Store {
	out := New()
	s.ForEachTriple(func(t Triple) {
		out.AddFact(s.terms[t.S], s.terms[t.P], s.terms[t.O])
	})
	return out
}

// CloneExact returns a deep copy of the store that PRESERVES term IDs — the
// clone interns exactly the same terms at exactly the same IDs and holds
// exactly the same triples, so IDs (and any structure built on them:
// patterns, label matches, repair graphs) are interchangeable between the
// two stores. Incremental cleaning snapshots the pre-enrichment KB this way:
// because enrichment only appends terms, the snapshot's terms stay a prefix
// of the live store's and every snapshot ID remains valid in both.
//
// Hierarchy closures are left cold (they rebuild lazily on first use);
// everything else — including the label log and all generation counters — is
// copied, so caches keyed on generations resume seamlessly.
func (s *Store) CloneExact() *Store {
	out := &Store{
		terms:           append([]Term(nil), s.terms...),
		lookup:          make(map[Term]ID, len(s.lookup)),
		pso:             cloneIndex(s.pso),
		pos:             cloneIndex(s.pos),
		sp:              make(map[ID][]pair, len(s.sp)),
		ntriples:        s.ntriples,
		TypeID:          s.TypeID,
		LabelID:         s.LabelID,
		SubClassOfID:    s.SubClassOfID,
		SubPropertyOfID: s.SubPropertyOfID,
		gen:             s.gen,
		labelGen:        s.labelGen,
		labelIndex:      make(map[string][]ID, len(s.labelIndex)),
		fuzzy:           s.fuzzy.Clone(),
		fuzzyIDs:        append([]ID(nil), s.fuzzyIDs...),
		labelLog:        append([]string(nil), s.labelLog...),
		labelLogBase:    s.labelLogBase,
	}
	for t, id := range s.lookup {
		out.lookup[t] = id
	}
	for su, pairs := range s.sp {
		out.sp[su] = append([]pair(nil), pairs...)
	}
	for norm, ids := range s.labelIndex {
		out.labelIndex[norm] = append([]ID(nil), ids...)
	}
	return out
}

// cloneIndex deep-copies a pso/pos-shaped two-level index.
func cloneIndex(ix map[ID]map[ID][]ID) map[ID]map[ID][]ID {
	out := make(map[ID]map[ID][]ID, len(ix))
	for p, by := range ix {
		m := make(map[ID][]ID, len(by))
		for k, ids := range by {
			m[k] = append([]ID(nil), ids...)
		}
		out[p] = m
	}
	return out
}

// SubjectsWithPredicate returns the distinct subjects that have at least one
// triple with predicate p, sorted.
func (s *Store) SubjectsWithPredicate(p ID) []ID {
	bySubj := s.pso[p]
	out := make([]ID, 0, len(bySubj))
	for su := range bySubj {
		out = append(out, su)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Predicates returns the distinct predicates present in the store.
func (s *Store) Predicates() []ID {
	out := make([]ID, 0, len(s.pso))
	for p := range s.pso {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedupe(ids []ID) []ID {
	if len(ids) < 2 {
		return ids
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
