package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseNTriplesBasic(t *testing.T) {
	src := `
# a comment
<y:Italy> <rdf:type> <y:country> .
<y:Italy> <rdfs:label> "Italy" .
<y:Italy> <y:hasCapital> <y:Rome> .
<y:Italy> <y:motto> "Unità"@it .
<y:Rossi> <y:height> "1.78"^^<xsd:double> .
`
	s := New()
	n, err := s.ParseNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("added %d triples, want 5", n)
	}
	italy := s.LookupTerm(IRI("y:Italy"))
	if italy == NoID {
		t.Fatal("y:Italy missing")
	}
	if got := s.LabelOf(italy); got != "Italy" {
		t.Fatalf("label = %q", got)
	}
	motto := s.Objects(italy, s.Res("y:motto"))
	if len(motto) != 1 || s.Term(motto[0]).Value != "Unità" {
		t.Fatalf("motto = %v", motto)
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<a> <b> <c>`,             // missing dot
		`<a> "lit" <c> .`,         // literal predicate
		`<a> <b> .`,               // too few terms
		`<unterminated <b> <c> .`, // broken IRI... actually this parses as IRI "unterminated <b" — ensure some error or tolerated
		`"l" <b> <c> .`,           // literal subject is allowed? we allow literals only as S? Paper never needs it; accept error-free or not, but predicate rule must hold
		`<a> <b> "unterminated .`, // unterminated literal
	}
	for _, src := range []string{bad[0], bad[1], bad[2], bad[5]} {
		s := New()
		if _, err := s.ParseNTriples(strings.NewReader(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	s := fixture()
	var buf bytes.Buffer
	if err := s.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	n, err := s2.ParseNTriples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != s.NumTriples() {
		t.Fatalf("round trip added %d, want %d", n, s.NumTriples())
	}
	// Every original triple must exist in the copy.
	s.ForEachTriple(func(tr Triple) {
		a := s2.LookupTerm(s.Term(tr.S))
		p := s2.LookupTerm(s.Term(tr.P))
		b := s2.LookupTerm(s.Term(tr.O))
		if a == NoID || p == NoID || b == NoID || !s2.Has(a, p, b) {
			t.Fatalf("triple lost in round trip: %v %v %v",
				s.Term(tr.S), s.Term(tr.P), s.Term(tr.O))
		}
	})
	// And the copy must behave identically for reasoning.
	capital := s2.LookupTerm(IRI("y:capital"))
	location := s2.LookupTerm(IRI("y:location"))
	if !s2.IsSubClassOf(capital, location) {
		t.Fatal("hierarchy lost in round trip")
	}
}

func TestRoundTripEscapes(t *testing.T) {
	s := New()
	s.AddFact(IRI("y:X"), IRI(IRILabel), Lit("he said \"hi\"\nnewline\tand\\slash"))
	var buf bytes.Buffer
	if err := s.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if _, err := s2.ParseNTriples(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	x := s2.LookupTerm(IRI("y:X"))
	if got := s2.LabelsOf(x); len(got) != 1 || got[0] != "he said \"hi\"\nnewline\tand\\slash" {
		t.Fatalf("escape round trip = %q", got)
	}
}
