package rdf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property-style tests over randomly generated stores: the index, closure
// and serialisation invariants the rest of the system leans on.

// genStore builds a random store with a layered class hierarchy (acyclic by
// construction) and random facts.
func genStore(seed int64, nClasses, nEntities, nProps, nFacts int) *Store {
	rng := rand.New(rand.NewSource(seed))
	s := New()
	classes := make([]ID, nClasses)
	for i := range classes {
		classes[i] = s.Res("class" + itoa(i))
		if i > 0 {
			// Parent strictly earlier: guarantees a DAG.
			s.Add(classes[i], s.SubClassOfID, classes[rng.Intn(i)])
		}
	}
	props := make([]ID, nProps)
	for i := range props {
		props[i] = s.Res("prop" + itoa(i))
		if i > 0 && rng.Intn(3) == 0 {
			s.Add(props[i], s.SubPropertyOfID, props[rng.Intn(i)])
		}
	}
	ents := make([]ID, nEntities)
	for i := range ents {
		ents[i] = s.Res("ent" + itoa(i))
		s.Add(ents[i], s.TypeID, classes[rng.Intn(nClasses)])
		s.AddFact(s.Term(ents[i]), IRI(IRILabel), Lit("entity "+itoa(i)))
	}
	for i := 0; i < nFacts; i++ {
		s.Add(ents[rng.Intn(nEntities)], props[rng.Intn(nProps)], ents[rng.Intn(nEntities)])
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestClosureTransitivityProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := genStore(seed, 20, 50, 5, 100)
		// Transitivity: a ⊑ b and b ⊑ c implies a ⊑ c.
		classes := s.Classes()
		for _, a := range classes {
			for _, b := range s.SuperClasses(a) {
				for _, c := range s.SuperClasses(b) {
					if !s.IsSubClassOf(a, c) {
						t.Fatalf("seed %d: transitivity broken %d ⊑ %d ⊑ %d", seed, a, b, c)
					}
				}
			}
		}
	}
}

func TestSubSuperDualityProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := genStore(seed, 15, 30, 4, 50)
		for _, a := range s.Classes() {
			for _, sup := range s.SuperClasses(a) {
				found := false
				for _, sub := range s.SubClasses(sup) {
					if sub == a {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d: %d in SuperClasses(%d) but not vice versa", seed, sup, a)
				}
			}
		}
	}
}

func TestInstancesSubsumptionProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := genStore(seed, 12, 40, 3, 60)
		// Instances of a subclass are instances of its superclasses.
		for _, c := range s.Classes() {
			inst := s.InstancesOf(c)
			for _, sup := range s.SuperClasses(c) {
				supInst := map[ID]bool{}
				for _, e := range s.InstancesOf(sup) {
					supInst[e] = true
				}
				for _, e := range inst {
					if !supInst[e] {
						t.Fatalf("seed %d: instance %d of %d missing from super %d", seed, e, c, sup)
					}
				}
			}
		}
	}
}

func TestCloneEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := genStore(seed, 10, 30, 4, 80)
		c := s.Clone()
		if c.NumTriples() != s.NumTriples() {
			t.Fatalf("seed %d: clone has %d triples, want %d", seed, c.NumTriples(), s.NumTriples())
		}
		s.ForEachTriple(func(tr Triple) {
			a := c.LookupTerm(s.Term(tr.S))
			p := c.LookupTerm(s.Term(tr.P))
			b := c.LookupTerm(s.Term(tr.O))
			if a == NoID || p == NoID || b == NoID || !c.Has(a, p, b) {
				t.Fatalf("seed %d: clone lost a triple", seed)
			}
		})
	}
}

func TestNTriplesRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := genStore(seed, 8, 25, 3, 50)
		var buf bytes.Buffer
		if err := s.WriteNTriples(&buf); err != nil {
			t.Fatal(err)
		}
		s2 := New()
		n, err := s2.ParseNTriples(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n != s.NumTriples() {
			t.Fatalf("seed %d: parsed %d of %d", seed, n, s.NumTriples())
		}
	}
}

func TestLiteralRoundTripQuick(t *testing.T) {
	// Arbitrary literal strings survive serialisation.
	f := func(val string) bool {
		if !utf8Valid(val) {
			return true
		}
		s := New()
		s.AddFact(IRI("x"), IRI(IRILabel), Lit(val))
		var buf bytes.Buffer
		if err := s.WriteNTriples(&buf); err != nil {
			return false
		}
		s2 := New()
		if _, err := s2.ParseNTriples(bytes.NewReader(buf.Bytes())); err != nil {
			return false
		}
		x := s2.LookupTerm(IRI("x"))
		if x == NoID {
			return false
		}
		ls := s2.LabelsOf(x)
		return len(ls) == 1 && ls[0] == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func utf8Valid(s string) bool {
	return strings.ToValidUTF8(s, "") == s
}

func TestMatchLabelAgreesWithExact(t *testing.T) {
	s := genStore(3, 10, 60, 3, 40)
	// Every exact label lookup must be found by the fuzzy matcher at
	// score 1, ranked first among its score class.
	for i := 0; i < 60; i++ {
		label := "entity " + itoa(i)
		exact := s.ResourcesLabeled(label)
		if len(exact) == 0 {
			continue
		}
		hits := s.MatchLabel(label, 0.7)
		if len(hits) == 0 {
			t.Fatalf("MatchLabel missed exact label %q", label)
		}
		if hits[0].Score != 1 {
			t.Fatalf("exact match not scored 1: %v", hits[0])
		}
	}
}
