package rdf

import (
	"sort"
	"strings"

	"katara/internal/similarity"
)

// This file implements label handling: every resource may carry one or more
// rdfs:label literals; table cell values are resolved to resources through
// exact (normalised) lookup or the fuzzy trigram index, mirroring the
// paper's LARQ/Lucene setup with threshold 0.7.

// LabelsOf returns the label strings of x.
func (s *Store) LabelsOf(x ID) []string {
	objs := s.Objects(x, s.LabelID)
	out := make([]string, 0, len(objs))
	for _, o := range objs {
		if s.IsLiteral(o) {
			out = append(out, s.terms[o].Value)
		}
	}
	return out
}

// LabelOf returns the first label of x, or a human-readable fallback derived
// from the IRI (§5.1: strip the text before the last slash and punctuation).
func (s *Store) LabelOf(x ID) string {
	if ls := s.LabelsOf(x); len(ls) > 0 {
		return ls[0]
	}
	return DisplayName(s.terms[x].Value)
}

// DisplayName derives a readable name from an IRI per §5.1.
func DisplayName(iri string) string {
	if i := strings.LastIndexByte(iri, '/'); i >= 0 {
		iri = iri[i+1:]
	}
	if i := strings.LastIndexByte(iri, ':'); i >= 0 {
		iri = iri[i+1:]
	}
	iri = strings.NewReplacer("_", " ", "#", " ").Replace(iri)
	return strings.TrimSpace(iri)
}

// ResourcesLabeled returns the resources whose normalised label equals the
// normalised value. Shared slice; read-only.
func (s *Store) ResourcesLabeled(value string) []ID {
	return s.labelIndex[similarity.Normalize(value)]
}

// ResourcesLabeledNorm is ResourcesLabeled for an already-normalised value —
// for callers that hold a Normalize result (the resolve cache keys on one)
// and must not recompute it per probe. Shared slice; read-only.
func (s *Store) ResourcesLabeledNorm(norm string) []ID {
	return s.labelIndex[norm]
}

// LabelMatch is a fuzzy label resolution hit.
type LabelMatch struct {
	Resource ID
	Score    float64
}

// MatchLabel resolves value to resources whose label is similar at or above
// threshold, best match first. Exact matches score 1.
func (s *Store) MatchLabel(value string, threshold float64) []LabelMatch {
	return s.MatchLabelNorm(similarity.Normalize(value), threshold)
}

// MatchLabelNorm is MatchLabel for an already-normalised value. The resolve
// cache keys its memo on Normalize(value) and used to pay for a second
// normalisation inside the miss path; this entry point reuses its result.
func (s *Store) MatchLabelNorm(norm string, threshold float64) []LabelMatch {
	cands := s.fuzzy.LookupNormalized(norm, threshold)
	if len(cands) == 0 {
		return nil
	}
	best := make(map[ID]float64, len(cands))
	for _, c := range cands {
		r := s.fuzzyIDs[c.ID]
		if c.Score > best[r] {
			best[r] = c.Score
		}
	}
	out := make([]LabelMatch, 0, len(best))
	for r, sc := range best {
		out = append(out, LabelMatch{Resource: r, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}
