package rdf

import "sort"

// This file implements the RDFS reasoning KATARA needs: transitive closure
// over rdfs:subClassOf and rdfs:subPropertyOf, type membership with
// subsumption, and the reflexive-transitive path semantics of the SPARQL
// property paths rdfs:subClassOf* / rdfs:subPropertyOf* (§3.1, §4.1).

func (s *Store) ensureClosures() {
	if s.closureGen == s.gen && s.superCls != nil {
		return
	}
	s.superCls = transitiveClosure(s.pso[s.SubClassOfID])
	s.subCls = transitiveClosure(s.pos[s.SubClassOfID])
	s.superProp = transitiveClosure(s.pso[s.SubPropertyOfID])
	s.subProp = transitiveClosure(s.pos[s.SubPropertyOfID])
	s.closureGen = s.gen
}

// transitiveClosure computes, for every node in edges, the set of nodes
// reachable via one or more hops, stored as a sorted slice so membership is
// a binary search. Cycles are tolerated (a node never includes itself unless
// reachable through a cycle).
func transitiveClosure(edges map[ID][]ID) map[ID][]ID {
	out := make(map[ID][]ID, len(edges))
	var visit func(n ID, seen map[ID]bool) []ID
	visit = func(n ID, seen map[ID]bool) []ID {
		if r, ok := out[n]; ok {
			return r
		}
		if seen[n] {
			return nil // cycle guard; partial result is fine
		}
		seen[n] = true
		var r []ID
		for _, next := range edges[n] {
			r = append(r, next)
			r = append(r, visit(next, seen)...)
		}
		delete(seen, n)
		r = sortDedupe(r)
		out[n] = r
		return r
	}
	for n := range edges {
		visit(n, map[ID]bool{})
	}
	return out
}

// sortDedupe sorts ids ascending and removes duplicates in place.
func sortDedupe(ids []ID) []ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return dedupe(ids)
}

// containsID reports whether id occurs in the ascending-sorted slice.
func containsID(sorted []ID, id ID) bool {
	i := sort.Search(len(sorted), func(j int) bool { return sorted[j] >= id })
	return i < len(sorted) && sorted[i] == id
}

// WarmClosures forces computation of the class and property closures so a
// quiescent store can be read concurrently (the closures are memoised
// lazily and the memo write is not synchronised).
func (s *Store) WarmClosures() { s.ensureClosures() }

// SuperClasses returns the strict superclasses of c (transitive).
func (s *Store) SuperClasses(c ID) []ID {
	s.ensureClosures()
	return s.superCls[c]
}

// SubClasses returns the strict subclasses of c (transitive).
func (s *Store) SubClasses(c ID) []ID {
	s.ensureClosures()
	return s.subCls[c]
}

// SuperProperties returns the strict super-properties of p (transitive).
func (s *Store) SuperProperties(p ID) []ID {
	s.ensureClosures()
	return s.superProp[p]
}

// SubProperties returns the strict sub-properties of p (transitive).
func (s *Store) SubProperties(p ID) []ID {
	s.ensureClosures()
	return s.subProp[p]
}

// IsSubClassOf reports whether c == d or c is a transitive subclass of d.
// Closure slices are sorted, so this is a binary search — no allocation.
func (s *Store) IsSubClassOf(c, d ID) bool {
	return c == d || containsID(s.SuperClasses(c), d)
}

// IsSubPropertyOf reports whether p == q or p is a transitive sub-property of q.
func (s *Store) IsSubPropertyOf(p, q ID) bool {
	return p == q || containsID(s.SuperProperties(p), q)
}

// DirectTypes returns the asserted rdf:type classes of x.
func (s *Store) DirectTypes(x ID) []ID { return s.Objects(x, s.TypeID) }

// AllTypes returns the asserted types of x together with all their
// superclasses — the result set of the paper's Q_types query
// (?x rdf:type/rdfs:subClassOf* ?c).
func (s *Store) AllTypes(x ID) []ID {
	direct := s.DirectTypes(x)
	if len(direct) == 0 {
		return nil
	}
	out := make([]ID, 0, len(direct)*2)
	for _, t := range direct {
		out = append(out, t)
		out = append(out, s.SuperClasses(t)...)
	}
	return sortDedupe(out)
}

// HasType reports whether x has type c directly or through subclassing,
// i.e. type(x)=c or subclassOf(type(x), c) per §3.2 condition 2.
func (s *Store) HasType(x, c ID) bool {
	for _, t := range s.DirectTypes(x) {
		if s.IsSubClassOf(t, c) {
			return true
		}
	}
	return false
}

// InstancesOf returns the entities whose asserted type is c or any subclass
// of c. The result is sorted and deduplicated.
func (s *Store) InstancesOf(c ID) []ID {
	classes := append([]ID{c}, s.SubClasses(c)...)
	var out []ID
	for _, cl := range classes {
		out = append(out, s.Subjects(s.TypeID, cl)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupe(out)
}

// Classes returns every resource used as an rdf:type object or in the
// subclass hierarchy — the KB's set of types.
func (s *Store) Classes() []ID {
	set := make(map[ID]bool)
	for c := range s.pos[s.TypeID] {
		set[c] = true
	}
	for c := range s.pso[s.SubClassOfID] {
		set[c] = true
	}
	for c := range s.pos[s.SubClassOfID] {
		set[c] = true
	}
	out := make([]ID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PredicatesBetweenSub returns the predicates p such that some (sub, p', obj)
// holds with p' = p or subpropertyOf(p', p) — the ?P/rdfs:subPropertyOf*
// semantics of the paper's Q_rels queries.
func (s *Store) PredicatesBetweenSub(sub, obj ID) []ID {
	direct := s.PredicatesBetween(sub, obj)
	if len(direct) == 0 {
		return nil
	}
	out := make([]ID, 0, len(direct)*2)
	for _, p := range direct {
		out = append(out, p)
		out = append(out, s.SuperProperties(p)...)
	}
	return sortDedupe(out)
}

// HasPredicate reports whether (sub, p', obj) holds for p'=p or any
// sub-property of p — §3.2 condition 3.
func (s *Store) HasPredicate(sub, p, obj ID) bool {
	for _, q := range s.PredicatesBetween(sub, obj) {
		if s.IsSubPropertyOf(q, p) {
			return true
		}
	}
	return false
}
