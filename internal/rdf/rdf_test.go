package rdf

import (
	"math/rand"
	"sort"
	"testing"
)

// fixture builds the paper's running-example fragment of Yago (§1, Fig. 2).
func fixture() *Store {
	s := New()
	add := func(sub, pred, obj string) { s.AddFact(IRI(sub), IRI(pred), IRI(obj)) }
	lit := func(sub, pred, obj string) { s.AddFact(IRI(sub), IRI(pred), Lit(obj)) }

	// Class hierarchy.
	add("y:capital", IRISubClassOf, "y:city")
	add("y:city", IRISubClassOf, "y:location")
	add("y:country", IRISubClassOf, "y:location")
	add("y:soccerPlayer", IRISubClassOf, "y:athlete")
	add("y:athlete", IRISubClassOf, "y:person")

	// Property hierarchy.
	add("y:hasCapital", IRISubPropertyOf, "y:locatedIn")

	// Entities.
	for _, e := range []struct{ iri, typ, label string }{
		{"y:Rossi", "y:soccerPlayer", "Rossi"},
		{"y:Pirlo", "y:soccerPlayer", "Pirlo"},
		{"y:Italy", "y:country", "Italy"},
		{"y:Spain", "y:country", "Spain"},
		{"y:Rome", "y:capital", "Rome"},
		{"y:Madrid", "y:capital", "Madrid"},
		{"y:Verona", "y:club", "Verona"},
	} {
		add(e.iri, IRIType, e.typ)
		lit(e.iri, IRILabel, e.label)
	}
	add("y:Italy", "y:hasCapital", "y:Rome")
	add("y:Spain", "y:hasCapital", "y:Madrid")
	add("y:Rossi", "y:nationality", "y:Italy")
	add("y:Pirlo", "y:nationality", "y:Italy")
	lit("y:Rossi", "y:height", "1.78")
	return s
}

func id(t *testing.T, s *Store, iri string) ID {
	t.Helper()
	r := s.LookupTerm(IRI(iri))
	if r == NoID {
		t.Fatalf("missing resource %s", iri)
	}
	return r
}

func TestInternIdempotent(t *testing.T) {
	s := New()
	a := s.Res("y:Italy")
	b := s.Res("y:Italy")
	if a != b {
		t.Fatalf("interning not idempotent: %d vs %d", a, b)
	}
	if s.Literal("Italy") == a {
		t.Fatal("literal and resource with same value must differ")
	}
}

func TestAddDeduplicates(t *testing.T) {
	s := New()
	a, p, b := s.Res("a"), s.Res("p"), s.Res("b")
	if !s.Add(a, p, b) {
		t.Fatal("first add should report new")
	}
	if s.Add(a, p, b) {
		t.Fatal("second add should report duplicate")
	}
	if s.NumTriples() != 1 {
		t.Fatalf("NumTriples = %d, want 1", s.NumTriples())
	}
}

func TestObjectsSubjects(t *testing.T) {
	s := fixture()
	italy := id(t, s, "y:Italy")
	rome := id(t, s, "y:Rome")
	hasCapital := id(t, s, "y:hasCapital")
	if objs := s.Objects(italy, hasCapital); len(objs) != 1 || objs[0] != rome {
		t.Fatalf("Objects(Italy, hasCapital) = %v", objs)
	}
	if subs := s.Subjects(hasCapital, rome); len(subs) != 1 || subs[0] != italy {
		t.Fatalf("Subjects(hasCapital, Rome) = %v", subs)
	}
	if !s.Has(italy, hasCapital, rome) {
		t.Fatal("Has(Italy, hasCapital, Rome) = false")
	}
	madrid := id(t, s, "y:Madrid")
	if s.Has(italy, hasCapital, madrid) {
		t.Fatal("Has(Italy, hasCapital, Madrid) = true")
	}
}

func TestPredicatesBetween(t *testing.T) {
	s := fixture()
	italy, rome := id(t, s, "y:Italy"), id(t, s, "y:Rome")
	got := s.PredicatesBetween(italy, rome)
	if len(got) != 1 || got[0] != id(t, s, "y:hasCapital") {
		t.Fatalf("PredicatesBetween = %v", got)
	}
	// With sub-property expansion, locatedIn appears too (Q_rels semantics).
	gotSub := s.PredicatesBetweenSub(italy, rome)
	want := []ID{id(t, s, "y:hasCapital"), id(t, s, "y:locatedIn")}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(gotSub) != 2 || gotSub[0] != want[0] || gotSub[1] != want[1] {
		t.Fatalf("PredicatesBetweenSub = %v, want %v", gotSub, want)
	}
}

func TestClassClosure(t *testing.T) {
	s := fixture()
	capital := id(t, s, "y:capital")
	location := id(t, s, "y:location")
	city := id(t, s, "y:city")
	if !s.IsSubClassOf(capital, location) {
		t.Fatal("capital should be transitive subclass of location")
	}
	if !s.IsSubClassOf(capital, capital) {
		t.Fatal("IsSubClassOf must be reflexive")
	}
	if s.IsSubClassOf(location, capital) {
		t.Fatal("closure direction reversed")
	}
	subs := s.SubClasses(location)
	if len(subs) != 3 { // city, capital, country
		t.Fatalf("SubClasses(location) = %v", subs)
	}
	sups := s.SuperClasses(capital)
	if len(sups) != 2 || sups[0] != min2(city, location) {
		t.Fatalf("SuperClasses(capital) = %v", sups)
	}
}

func min2(a, b ID) ID {
	if a < b {
		return a
	}
	return b
}

func TestClosureInvalidation(t *testing.T) {
	s := fixture()
	capital := id(t, s, "y:capital")
	_ = s.SuperClasses(capital) // force memoisation
	s.AddFact(IRI("y:location"), IRI(IRISubClassOf), IRI("y:thing"))
	thing := id(t, s, "y:thing")
	if !s.IsSubClassOf(capital, thing) {
		t.Fatal("closure not recomputed after hierarchy mutation")
	}
}

func TestCycleTolerance(t *testing.T) {
	s := New()
	a, b := s.Res("A"), s.Res("B")
	s.Add(a, s.SubClassOfID, b)
	s.Add(b, s.SubClassOfID, a)
	// Must terminate; both reach each other.
	if !s.IsSubClassOf(a, b) || !s.IsSubClassOf(b, a) {
		t.Fatal("cycle closure incomplete")
	}
}

func TestAllTypesAndHasType(t *testing.T) {
	s := fixture()
	rossi := id(t, s, "y:Rossi")
	person := id(t, s, "y:person")
	types := s.AllTypes(rossi)
	if len(types) != 3 { // soccerPlayer, athlete, person
		t.Fatalf("AllTypes(Rossi) = %v", types)
	}
	if !s.HasType(rossi, person) {
		t.Fatal("Rossi should have type person via subsumption")
	}
	country := id(t, s, "y:country")
	if s.HasType(rossi, country) {
		t.Fatal("Rossi is not a country")
	}
}

func TestInstancesOf(t *testing.T) {
	s := fixture()
	location := id(t, s, "y:location")
	got := s.InstancesOf(location)
	if len(got) != 4 { // Italy, Spain, Rome, Madrid
		t.Fatalf("InstancesOf(location) = %d instances, want 4", len(got))
	}
	capital := id(t, s, "y:capital")
	if got := s.InstancesOf(capital); len(got) != 2 {
		t.Fatalf("InstancesOf(capital) = %d, want 2", len(got))
	}
}

func TestHasPredicateWithSubProperty(t *testing.T) {
	s := fixture()
	italy, rome := id(t, s, "y:Italy"), id(t, s, "y:Rome")
	locatedIn := id(t, s, "y:locatedIn")
	if !s.HasPredicate(italy, locatedIn, rome) {
		t.Fatal("hasCapital should satisfy locatedIn via subPropertyOf")
	}
	nationality := id(t, s, "y:nationality")
	if s.HasPredicate(italy, nationality, rome) {
		t.Fatal("unrelated property matched")
	}
}

func TestLabels(t *testing.T) {
	s := fixture()
	rome := id(t, s, "y:Rome")
	if got := s.LabelOf(rome); got != "Rome" {
		t.Fatalf("LabelOf(Rome) = %q", got)
	}
	if rs := s.ResourcesLabeled("rome"); len(rs) != 1 || rs[0] != rome {
		t.Fatalf("ResourcesLabeled(rome) = %v", rs)
	}
	if rs := s.ResourcesLabeled("ROME  "); len(rs) != 1 {
		t.Fatalf("normalised lookup failed: %v", rs)
	}
}

func TestDisplayName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://yago-knowledge.org/resource/hasCapital", "hasCapital"},
		{"http://yago-knowledge.org/resource/wordnet_capital_10851850", "wordnet capital 10851850"},
		{"y:hasCapital", "hasCapital"},
		{"plain", "plain"},
	}
	for _, c := range cases {
		if got := DisplayName(c.in); got != c.want {
			t.Errorf("DisplayName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMatchLabelFuzzy(t *testing.T) {
	s := fixture()
	rome := id(t, s, "y:Rome")
	hits := s.MatchLabel("Romee", 0.7)
	if len(hits) == 0 || hits[0].Resource != rome {
		t.Fatalf("MatchLabel(Romee) = %v", hits)
	}
	if hits := s.MatchLabel("Johannesburg", 0.7); len(hits) != 0 {
		t.Fatalf("unexpected fuzzy hits: %v", hits)
	}
}

func TestLabelOfFallsBackToIRI(t *testing.T) {
	s := New()
	x := s.Res("http://kb/resource/Some_Entity")
	if got := s.LabelOf(x); got != "Some Entity" {
		t.Fatalf("LabelOf fallback = %q", got)
	}
}

func TestDescriptionAndPredicates(t *testing.T) {
	s := fixture()
	rossi := id(t, s, "y:Rossi")
	desc := s.Description(rossi)
	if len(desc) != 4 { // type, label, nationality, height
		t.Fatalf("Description(Rossi) = %d triples, want 4", len(desc))
	}
	preds := s.PredicatesOf(rossi)
	if len(preds) != 4 {
		t.Fatalf("PredicatesOf(Rossi) = %v", preds)
	}
}

func TestForEachTripleCount(t *testing.T) {
	s := fixture()
	n := 0
	s.ForEachTriple(func(Triple) { n++ })
	if n != s.NumTriples() {
		t.Fatalf("ForEachTriple visited %d, store has %d", n, s.NumTriples())
	}
}

func TestRandomizedIndexConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New()
	type tr struct{ a, p, b ID }
	var all []tr
	res := make([]ID, 30)
	for i := range res {
		res[i] = s.Res(string(rune('A' + i)))
	}
	preds := make([]ID, 5)
	for i := range preds {
		preds[i] = s.Res("p" + string(rune('0'+i)))
	}
	seen := map[tr]bool{}
	for i := 0; i < 500; i++ {
		x := tr{res[rng.Intn(len(res))], preds[rng.Intn(len(preds))], res[rng.Intn(len(res))]}
		isNew := s.Add(x.a, x.p, x.b)
		if isNew == seen[x] {
			t.Fatalf("dedup mismatch for %v", x)
		}
		if !seen[x] {
			seen[x] = true
			all = append(all, x)
		}
	}
	if s.NumTriples() != len(all) {
		t.Fatalf("NumTriples = %d, want %d", s.NumTriples(), len(all))
	}
	for _, x := range all {
		if !s.Has(x.a, x.p, x.b) {
			t.Fatalf("lost triple %v", x)
		}
		found := false
		for _, o := range s.Objects(x.a, x.p) {
			if o == x.b {
				found = true
			}
		}
		if !found {
			t.Fatalf("Objects index missing %v", x)
		}
		found = false
		for _, su := range s.Subjects(x.p, x.b) {
			if su == x.a {
				found = true
			}
		}
		if !found {
			t.Fatalf("Subjects index missing %v", x)
		}
	}
	// Objects lists must be sorted (binary-search invariant).
	for _, p := range preds {
		for _, r := range res {
			objs := s.Objects(r, p)
			if !sort.SliceIsSorted(objs, func(i, j int) bool { return objs[i] < objs[j] }) {
				t.Fatalf("Objects(%d,%d) unsorted: %v", r, p, objs)
			}
		}
	}
}
