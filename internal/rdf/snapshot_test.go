package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := fixture()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	n, err := s2.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != s.NumTriples() {
		t.Fatalf("loaded %d of %d triples", n, s.NumTriples())
	}
	s.ForEachTriple(func(tr Triple) {
		a := s2.LookupTerm(s.Term(tr.S))
		p := s2.LookupTerm(s.Term(tr.P))
		b := s2.LookupTerm(s.Term(tr.O))
		if a == NoID || p == NoID || b == NoID || !s2.Has(a, p, b) {
			t.Fatalf("triple lost: %v %v %v", s.Term(tr.S), s.Term(tr.P), s.Term(tr.O))
		}
	})
	// Derived structures behave identically.
	capital := s2.LookupTerm(IRI("y:capital"))
	location := s2.LookupTerm(IRI("y:location"))
	if !s2.IsSubClassOf(capital, location) {
		t.Fatal("hierarchy lost in snapshot")
	}
	rome := s2.LookupTerm(IRI("y:Rome"))
	if got := s2.LabelOf(rome); got != "Rome" {
		t.Fatalf("label index lost: %q", got)
	}
}

func TestSnapshotIntoNonEmptyStore(t *testing.T) {
	s := fixture()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	s2.AddFact(IRI("pre:existing"), IRI("p"), IRI("pre:other"))
	if _, err := s2.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.NumTriples() != s.NumTriples()+1 {
		t.Fatalf("triples = %d, want %d", s2.NumTriples(), s.NumTriples()+1)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a snapshot at all"),
		[]byte("KSNAP1\n"), // truncated after magic
	}
	for _, c := range cases {
		s := New()
		if _, err := s.ReadSnapshot(bytes.NewReader(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
	// Corrupted triple index.
	s := fixture()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	corrupted := append([]byte(nil), raw[:len(raw)-1]...) // truncate
	s2 := New()
	if _, err := s2.ReadSnapshot(bytes.NewReader(corrupted)); err == nil {
		t.Error("truncated snapshot should error")
	}
}

func TestSnapshotPropertyRandomStores(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := genStore(seed, 10, 40, 4, 120)
		var buf bytes.Buffer
		if err := s.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		s2 := New()
		n, err := s2.ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n != s.NumTriples() || s2.NumTriples() != s.NumTriples() {
			t.Fatalf("seed %d: %d vs %d triples", seed, s2.NumTriples(), s.NumTriples())
		}
	}
}

func TestSnapshotSmallerThanNTriples(t *testing.T) {
	s := genStore(1, 20, 200, 6, 800)
	var snap, nt bytes.Buffer
	if err := s.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteNTriples(&nt); err != nil {
		t.Fatal(err)
	}
	if snap.Len() >= nt.Len() {
		t.Fatalf("snapshot %d bytes, ntriples %d — expected smaller", snap.Len(), nt.Len())
	}
}

func BenchmarkSnapshotLoad(b *testing.B) {
	s := genStore(2, 30, 2000, 8, 10000)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2 := New()
		if _, err := s2.ReadSnapshot(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNTriplesLoad(b *testing.B) {
	s := genStore(2, 30, 2000, 8, 10000)
	var buf bytes.Buffer
	if err := s.WriteNTriples(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2 := New()
		if _, err := s2.ParseNTriples(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
