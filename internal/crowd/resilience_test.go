package crowd

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// scriptTransport replays a fixed fault sequence, one entry per delivery;
// entries beyond the script (and nil entries) deliver honestly.
type scriptTransport struct {
	faults []error
	i      int
}

func (s *scriptTransport) Deliver(q Question, w Worker, answer func() int) Delivery {
	var err error
	if s.i < len(s.faults) {
		err = s.faults[s.i]
	}
	s.i++
	if err != nil {
		return Delivery{Err: err}
	}
	return Delivery{Answer: answer()}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	run := func() []Delivery {
		f := NewFaultInjector(FaultConfig{
			Seed:          7,
			AbandonRate:   0.3,
			TransientRate: 0.2,
			SpamRate:      0.2,
			MinLatency:    time.Microsecond,
			MaxLatency:    5 * time.Microsecond,
		})
		q := Boolean("x?", true)
		w := Worker{ID: 0, Accuracy: 1}
		var out []Delivery
		for i := 0; i < 200; i++ {
			out = append(out, f.Deliver(q, w, func() int { return q.Truth }))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs across same-seed runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFaultInjectorRatesAndAccounting(t *testing.T) {
	f := NewFaultInjector(FaultConfig{Seed: 1, AbandonRate: 0.3, TransientRate: 0.2, SpamRate: 0.1})
	q := Boolean("x?", true)
	const trials = 5000
	for i := 0; i < trials; i++ {
		f.Deliver(q, Worker{}, func() int { return q.Truth })
	}
	ab, tr, sp, ok := f.Faults()
	if ab+tr+sp+ok != trials {
		t.Fatalf("accounting does not add up: %d+%d+%d+%d != %d", ab, tr, sp, ok, trials)
	}
	check := func(name string, got int, rate float64) {
		frac := float64(got) / trials
		if frac < rate-0.03 || frac > rate+0.03 {
			t.Errorf("%s rate %.3f, want ~%.2f", name, frac, rate)
		}
	}
	check("abandon", ab, 0.3)
	check("transient", tr, 0.2)
	check("spam", sp, 0.1)
	check("delivered", ok, 0.4)
}

func TestZeroRateInjectorIdenticalToDirect(t *testing.T) {
	q := Question{Kind: TypeValidation, Options: []string{"a", "b", "c"}, Truth: 1, Difficulty: 0.3}
	run := func(opts ...Option) []int {
		c := New(10, 0.8, 99, opts...)
		var out []int
		for i := 0; i < 300; i++ {
			out = append(out, c.Ask(q))
		}
		return out
	}
	direct := run()
	injected := run(WithTransport(NewFaultInjector(FaultConfig{Seed: 5})))
	for i := range direct {
		if direct[i] != injected[i] {
			t.Fatalf("answer %d diverged: direct=%d injected=%d", i, direct[i], injected[i])
		}
	}
}

func TestTransientRetriesSameWorkerWithBackoff(t *testing.T) {
	st := &scriptTransport{faults: []error{ErrTransient, ErrTransient}}
	c := Perfect(5, WithTransport(st),
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: 2 * time.Microsecond}))
	a, err := c.AskContext(context.Background(), Boolean("x?", true))
	if err != nil || a != 0 {
		t.Fatalf("AskContext = %d, %v", a, err)
	}
	s := c.Stats()
	if s.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", s.Retries)
	}
	// 2 failed attempts + 3 successful assignments were all posted (paid).
	if s.Assignments != 5 {
		t.Fatalf("Assignments = %d, want 5", s.Assignments)
	}
}

func TestAbandonmentReassignsFreshWorker(t *testing.T) {
	st := &scriptTransport{faults: []error{ErrAbandoned}}
	c := Perfect(5, WithTransport(st),
		WithRetry(RetryPolicy{BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}))
	a, err := c.AskContext(context.Background(), Boolean("x?", true))
	if err != nil || a != 0 {
		t.Fatalf("AskContext = %d, %v", a, err)
	}
	s := c.Stats()
	if s.Abandonments != 1 {
		t.Fatalf("Abandonments = %d, want 1", s.Abandonments)
	}
	if s.Assignments != 4 {
		t.Fatalf("Assignments = %d, want 4 (1 abandoned + 3 answered)", s.Assignments)
	}
}

func TestRetryBackoffCappedExponential(t *testing.T) {
	r := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond, 8 * time.Millisecond,
	}
	for i, w := range want {
		if got := r.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestEscalationTopsUpToCap(t *testing.T) {
	// MinMargin 1.1 is unreachable, so every question escalates to the cap.
	c := Perfect(10, WithEscalation(EscalationPolicy{MinMargin: 1.1, MaxAssignments: 7}))
	a, err := c.AskContext(context.Background(), Boolean("x?", true))
	if err != nil || a != 0 {
		t.Fatalf("AskContext = %d, %v", a, err)
	}
	s := c.Stats()
	if s.Escalations != 4 {
		t.Fatalf("Escalations = %d, want 4 (base 3 → cap 7)", s.Escalations)
	}
	if s.Assignments != 7 {
		t.Fatalf("Assignments = %d, want 7", s.Assignments)
	}
}

func TestEscalationStopsWhenMarginConvincing(t *testing.T) {
	// A unanimous perfect crowd reaches margin 1.0 immediately: no escalation.
	c := Perfect(10, WithEscalation(EscalationPolicy{MinMargin: 0.5, MaxAssignments: 9}))
	c.Ask(Boolean("x?", true))
	if s := c.Stats(); s.Escalations != 0 || s.Assignments != 3 {
		t.Fatalf("unexpected escalation: %+v", s)
	}
}

func TestQuestionBudgetExhaustion(t *testing.T) {
	c := Perfect(5, WithBudget(NewBudget(2, 0)))
	q := Boolean("x?", true)
	for i := 0; i < 2; i++ {
		if _, err := c.AskContext(context.Background(), q); err != nil {
			t.Fatalf("question %d under budget failed: %v", i, err)
		}
	}
	if _, err := c.AskContext(context.Background(), q); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestAssignmentBudgetPartialVotesStillDecide(t *testing.T) {
	c := Perfect(5, WithBudget(NewBudget(0, 4)))
	q := Boolean("x?", true)
	if _, err := c.AskContext(context.Background(), q); err != nil {
		t.Fatalf("first question failed: %v", err)
	}
	// One assignment left: the second question gets a single vote, which
	// still decides it.
	a, err := c.AskContext(context.Background(), q)
	if err != nil || a != 0 {
		t.Fatalf("partial-vote question = %d, %v; want 0, nil", a, err)
	}
	// Nothing left: the third question cannot collect any vote.
	if _, err := c.AskContext(context.Background(), q); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestDeadlineRespectedUnderLatency(t *testing.T) {
	c := Perfect(5, WithTransport(NewFaultInjector(FaultConfig{
		Seed: 3, MinLatency: 50 * time.Millisecond, MaxLatency: 60 * time.Millisecond,
	})))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.AskContext(ctx, Boolean("x?", true))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("AskContext overran a 5ms deadline by %v", el)
	}
	if c.Stats().Timeouts == 0 {
		t.Fatal("deadline interruption not counted as a timeout")
	}
}

func TestAssignmentTimeoutTreatedAsAbandonment(t *testing.T) {
	c := Perfect(5,
		WithTransport(NewFaultInjector(FaultConfig{Seed: 4, MinLatency: 20 * time.Millisecond, MaxLatency: 25 * time.Millisecond})),
		WithRetry(RetryPolicy{
			MaxAttempts:       3,
			BaseBackoff:       time.Microsecond,
			MaxBackoff:        time.Microsecond,
			AssignmentTimeout: time.Millisecond,
		}))
	_, err := c.AskContext(context.Background(), Boolean("x?", true))
	if !errors.Is(err, ErrNoAnswers) {
		t.Fatalf("err = %v, want ErrNoAnswers", err)
	}
	s := c.Stats()
	// 3 base slots x 3 attempts, all timed out; 2 retries per slot.
	if s.Timeouts != 9 || s.Retries != 6 {
		t.Fatalf("Timeouts = %d, Retries = %d; want 9, 6", s.Timeouts, s.Retries)
	}
}

func TestCanceledContextFailsFast(t *testing.T) {
	c := Perfect(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.AskContext(ctx, Boolean("x?", true)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if s := c.Stats(); s.Questions != 0 {
		t.Fatalf("canceled question was accounted: %+v", s)
	}
}

func TestChaosNeverPanicsAlwaysTerminates(t *testing.T) {
	q := Question{Kind: TypeValidation, Options: []string{"a", "b", "c"}, Truth: 0, Difficulty: 0.2}
	for seed := int64(0); seed < 10; seed++ {
		c := New(8, 0.8, seed,
			WithTransport(NewFaultInjector(FaultConfig{
				Seed:          seed,
				AbandonRate:   0.35,
				TransientRate: 0.15,
				SpamRate:      0.1,
				MinLatency:    100 * time.Microsecond,
				MaxLatency:    500 * time.Microsecond,
			})),
			WithRetry(RetryPolicy{BaseBackoff: 50 * time.Microsecond, MaxBackoff: 200 * time.Microsecond}),
			WithEscalation(EscalationPolicy{MinMargin: 0.4, MaxAssignments: 7}),
			WithBudget(NewBudget(50, 200)))
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		start := time.Now()
		for i := 0; i < 60; i++ {
			_, err := c.AskContext(ctx, q)
			if err != nil && !errors.Is(err, ErrBudget) && !errors.Is(err, ErrNoAnswers) &&
				!errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("seed %d: unexpected error %v", seed, err)
			}
		}
		cancel()
		if el := time.Since(start); el > 3*time.Second {
			t.Fatalf("seed %d: chaos run overran its deadline: %v", seed, el)
		}
	}
}

// Satellite: Perfect accepts the same Options as New.
func TestPerfectAcceptsOptions(t *testing.T) {
	c := Perfect(10, WithAssignments(5))
	c.AskBoolean("x?", true)
	if got := c.Stats().Assignments; got != 5 {
		t.Fatalf("Assignments = %d, want 5", got)
	}
	b := NewBudget(1, 0)
	c2 := Perfect(3, WithBudget(b))
	c2.AskBoolean("x?", true)
	if _, err := c2.AskContext(context.Background(), Boolean("y?", true)); !errors.Is(err, ErrBudget) {
		t.Fatalf("Perfect ignored WithBudget: err = %v", err)
	}
}

// Satellite: shared rng and stats are mutex-guarded; run with -race.
func TestConcurrentAskIsRaceFree(t *testing.T) {
	c := New(10, 0.85, 17,
		WithTransport(NewFaultInjector(FaultConfig{Seed: 17, AbandonRate: 0.1, TransientRate: 0.1})),
		WithRetry(RetryPolicy{BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}))
	q := Boolean("x?", true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Ask(q)
				_ = c.Stats()
			}
		}()
	}
	wg.Wait()
	if got := c.Stats().Questions; got != 400 {
		t.Fatalf("Questions = %d, want 400", got)
	}
}

func TestVoteMarginAndDecide(t *testing.T) {
	if m := voteMargin(nil); m != 0 {
		t.Fatalf("empty margin = %f", m)
	}
	votes := []vote{{0, 1}, {0, 1}, {1, 1}}
	if m := voteMargin(votes); m < 0.32 || m > 0.34 {
		t.Fatalf("margin = %f, want ~1/3", m)
	}
	q := Question{Options: []string{"a", "b"}}
	if decide(q, votes) != 0 {
		t.Fatal("majority should win")
	}
	// Ties break toward the lowest option index.
	if decide(q, []vote{{1, 1}, {0, 1}}) != 0 {
		t.Fatal("tie must break toward option 0")
	}
}
