// Package crowd implements the crowdsourcing substrate: a simulated worker
// pool standing in for the paper's expert crowd (10 students, §7.2). Each
// question carries its ground-truth answer (the experiment harness generates
// the data, so truth is known); workers are noisy channels around it. Every
// question is assigned to three workers and decided by majority vote, as in
// the paper (§5.1: "each question is asked three times, and the majority
// answer is taken").
//
// A resilience layer (transport.go, resilience.go) sits between Ask and the
// pool: assignments route through a pluggable Transport (fault injection for
// chaos testing), failures are retried with capped exponential backoff and
// reassigned to fresh workers, low-margin votes escalate with extra
// assignments, and question/assignment budgets plus context deadlines bound
// total consumption.
package crowd

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"katara/internal/provenance"
	"katara/internal/telemetry"
)

// Kind classifies questions per the paper's three task types.
type Kind int

const (
	// TypeValidation asks "What is the most accurate type of the
	// highlighted column?" (Q1, §5.1).
	TypeValidation Kind = iota
	// RelationshipValidation asks "What is the most accurate relationship
	// for the highlighted columns?" (Q2, §5.1).
	RelationshipValidation
	// FactVerification asks a boolean "Does x P y?" (§6.1 step 2).
	FactVerification
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case TypeValidation:
		return "type-validation"
	case RelationshipValidation:
		return "relationship-validation"
	case FactVerification:
		return "fact-verification"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Question is one crowdsourcing task. Options holds the displayed choices
// (boolean questions use {"Yes", "No"}); Truth indexes the correct one.
// Difficulty in [0,1) raises worker error probability for ambiguous
// questions (e.g. a type question whose sample values belong to several
// candidate types, §5.1).
type Question struct {
	Kind       Kind
	Prompt     string
	Options    []string
	Truth      int
	Difficulty float64
}

// Boolean builds a yes/no FactVerification question.
func Boolean(prompt string, holds bool) Question {
	truth := 1
	if holds {
		truth = 0
	}
	return Question{
		Kind:    FactVerification,
		Prompt:  prompt,
		Options: []string{"Yes", "No"},
		Truth:   truth,
	}
}

// Worker is one simulated crowd member with an independent reliability.
type Worker struct {
	ID       int
	Accuracy float64 // probability of answering correctly on an easy question
}

// answer returns the worker's choice for q.
func (w Worker) answer(q Question, rng *rand.Rand) int {
	if len(q.Options) == 0 {
		return q.Truth
	}
	errP := (1 - w.Accuracy) + q.Difficulty*w.Accuracy
	if errP > 0.95 {
		errP = 0.95
	}
	if rng.Float64() >= errP || len(q.Options) == 1 {
		return q.Truth
	}
	// A wrong answer: uniform over the other options.
	wrong := rng.Intn(len(q.Options) - 1)
	if wrong >= q.Truth {
		wrong++
	}
	return wrong
}

// Stats accumulates crowdsourcing cost accounting plus the resilience
// layer's fault counters.
type Stats struct {
	Questions   int
	Assignments int
	ByKind      map[Kind]int

	// Resilience accounting: retries issued (backoff waits), assignments
	// abandoned by workers, assignments timed out, and escalation
	// assignments posted beyond the base redundancy.
	Retries      int
	Abandonments int
	Timeouts     int
	Escalations  int
}

// Cost converts the accounting into money at a per-assignment rate — the
// §1/§5 objective ("optimizing the order of issuing questions to reduce
// monetary cost") made concrete. Crowdsourcing markets price per
// assignment (each of the 3 redundant answers is paid), not per question.
func (s Stats) Cost(perAssignment float64) float64 {
	return float64(s.Assignments) * perAssignment
}

func (s *Stats) record(k Kind, assignments int) {
	s.Questions++
	s.Assignments += assignments
	if s.ByKind == nil {
		s.ByKind = make(map[Kind]int)
	}
	s.ByKind[k]++
}

// Crowd is the worker pool. All exported methods are safe for concurrent
// use: the shared rng, stats and reliability estimates are guarded by mu
// (the pipeline's parallel stages may reach the crowd from worker
// goroutines).
type Crowd struct {
	mu          sync.Mutex
	workers     []Worker
	rng         *rand.Rand
	assignments int
	stats       Stats

	// backoffRng draws retry-backoff jitter. It is deliberately separate
	// from rng: concurrent sharded jobs must not retry in lockstep, but the
	// decision stream (worker permutations, answers) must stay untouched so
	// differential runs remain byte-identical.
	backoffRng *rand.Rand

	// Resilience layer (transport.go, resilience.go).
	transport Transport // nil = direct in-process delivery
	retry     RetryPolicy
	escalate  EscalationPolicy
	budget    *Budget // nil = unlimited

	// Quality control (quality.go): per-worker reliability estimates and
	// the weighted-voting switch.
	estimates Reliability
	weighted  bool

	// tel mirrors every question into a telemetry pipeline; nil disables.
	tel *telemetry.Pipeline

	// prov records every question's evidence lineage (per-worker votes,
	// retries, degradation) into a provenance recorder; nil disables.
	prov *provenance.Recorder
}

// Option configures a Crowd.
type Option func(*Crowd)

// WithAssignments overrides the per-question assignment count (default 3).
func WithAssignments(n int) Option {
	return func(c *Crowd) {
		if n > 0 {
			c.assignments = n
		}
	}
}

// WithTransport routes every assignment through t (nil = direct delivery).
func WithTransport(t Transport) Option {
	return func(c *Crowd) { c.transport = t }
}

// WithRetry overrides the per-assignment retry policy.
func WithRetry(r RetryPolicy) Option {
	return func(c *Crowd) { c.retry = r }
}

// WithEscalation enables adaptive redundancy under e.
func WithEscalation(e EscalationPolicy) Option {
	return func(c *Crowd) { c.escalate = e }
}

// WithBudget caps the crowd's total consumption (nil = unlimited).
func WithBudget(b *Budget) Option {
	return func(c *Crowd) { c.budget = b }
}

// jitterSeedSalt decorrelates the backoff-jitter rng from the decision rng
// while keeping both derived from the same crowd seed.
const jitterSeedSalt = 0x6a697474 // "jitt"

// newCrowd is the shared construction path: defaults applied here, workers
// and options by the callers. The backoff-jitter rng is seeded separately
// from the decision rng so jitter never perturbs worker permutations or
// answers — reports stay byte-identical with jitter on or off.
func newCrowd(rng *rand.Rand, seed int64) *Crowd {
	return &Crowd{
		rng:         rng,
		assignments: 3,
		backoffRng:  rand.New(rand.NewSource(seed ^ jitterSeedSalt)),
	}
}

func (c *Crowd) apply(opts []Option) *Crowd {
	for _, o := range opts {
		o(c)
	}
	return c
}

// New builds a crowd of n workers with the given mean accuracy. Individual
// worker accuracies are jittered ±0.05 around the mean, clamped to [0.5, 1].
// All randomness flows from seed, keeping experiments reproducible.
func New(n int, meanAccuracy float64, seed int64, opts ...Option) *Crowd {
	rng := rand.New(rand.NewSource(seed))
	c := newCrowd(rng, seed)
	for i := 0; i < n; i++ {
		acc := meanAccuracy + (rng.Float64()-0.5)*0.1
		if acc > 1 {
			acc = 1
		}
		if acc < 0.5 {
			acc = 0.5
		}
		c.workers = append(c.workers, Worker{ID: i, Accuracy: acc})
	}
	return c.apply(opts)
}

// Perfect returns a crowd of always-correct workers, for tests and for the
// paper's "experts in the KB" assumption at its limit. It accepts the same
// Options as New (accuracies are pinned to 1 rather than jittered, so the
// rng stream starts identically to the historical Perfect).
func Perfect(n int, opts ...Option) *Crowd {
	c := newCrowd(rand.New(rand.NewSource(0)), 0)
	for i := 0; i < n; i++ {
		c.workers = append(c.workers, Worker{ID: i, Accuracy: 1})
	}
	return c.apply(opts)
}

// NumWorkers returns the pool size.
func (c *Crowd) NumWorkers() int { return len(c.workers) }

// Stats returns a copy of the accumulated accounting.
func (c *Crowd) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.ByKind = make(map[Kind]int, len(c.stats.ByKind))
	for k, v := range c.stats.ByKind {
		s.ByKind[k] = v
	}
	return s
}

// ResetStats clears the accounting.
func (c *Crowd) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// SetTelemetry attaches a telemetry pipeline whose CrowdQuestions counter
// tracks every question asked from now on; nil detaches it.
func (c *Crowd) SetTelemetry(p *telemetry.Pipeline) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tel = p
}

// SetProvenance attaches a provenance recorder that captures every question
// asked from now on — per-worker votes, resilience events, outcome; nil
// detaches it.
func (c *Crowd) SetProvenance(r *provenance.Recorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prov = r
}

// SetTransport installs t as the assignment transport (nil = direct).
func (c *Crowd) SetTransport(t Transport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.transport = t
}

// SetRetry installs the retry policy.
func (c *Crowd) SetRetry(r RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = r
}

// SetEscalation installs the adaptive-redundancy policy.
func (c *Crowd) SetEscalation(e EscalationPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.escalate = e
}

// SetBudget installs (or, with nil, removes) the consumption budget.
func (c *Crowd) SetBudget(b *Budget) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = b
}

// Ask routes q to `assignments` distinct randomly chosen workers and returns
// the majority answer (ties broken toward the lowest option index). With
// reliability estimates installed (Calibrate / EstimateReliability), votes
// are weighted by each worker's log-odds accuracy instead. Ask is
// AskContext without a deadline; resilience errors (exhausted budget, a
// fully failed question) degrade to option 0.
func (c *Crowd) Ask(q Question) int {
	a, _ := c.AskContext(context.Background(), q)
	return a
}

// AskBoolean asks a yes/no question and returns true for "Yes".
func (c *Crowd) AskBoolean(prompt string, holds bool) bool {
	return c.Ask(Boolean(prompt, holds)) == 0
}
