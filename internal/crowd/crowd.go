// Package crowd implements the crowdsourcing substrate: a simulated worker
// pool standing in for the paper's expert crowd (10 students, §7.2). Each
// question carries its ground-truth answer (the experiment harness generates
// the data, so truth is known); workers are noisy channels around it. Every
// question is assigned to three workers and decided by majority vote, as in
// the paper (§5.1: "each question is asked three times, and the majority
// answer is taken").
package crowd

import (
	"fmt"
	"math/rand"

	"katara/internal/telemetry"
)

// Kind classifies questions per the paper's three task types.
type Kind int

const (
	// TypeValidation asks "What is the most accurate type of the
	// highlighted column?" (Q1, §5.1).
	TypeValidation Kind = iota
	// RelationshipValidation asks "What is the most accurate relationship
	// for the highlighted columns?" (Q2, §5.1).
	RelationshipValidation
	// FactVerification asks a boolean "Does x P y?" (§6.1 step 2).
	FactVerification
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case TypeValidation:
		return "type-validation"
	case RelationshipValidation:
		return "relationship-validation"
	case FactVerification:
		return "fact-verification"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Question is one crowdsourcing task. Options holds the displayed choices
// (boolean questions use {"Yes", "No"}); Truth indexes the correct one.
// Difficulty in [0,1) raises worker error probability for ambiguous
// questions (e.g. a type question whose sample values belong to several
// candidate types, §5.1).
type Question struct {
	Kind       Kind
	Prompt     string
	Options    []string
	Truth      int
	Difficulty float64
}

// Boolean builds a yes/no FactVerification question.
func Boolean(prompt string, holds bool) Question {
	truth := 1
	if holds {
		truth = 0
	}
	return Question{
		Kind:    FactVerification,
		Prompt:  prompt,
		Options: []string{"Yes", "No"},
		Truth:   truth,
	}
}

// Worker is one simulated crowd member with an independent reliability.
type Worker struct {
	ID       int
	Accuracy float64 // probability of answering correctly on an easy question
}

// answer returns the worker's choice for q.
func (w Worker) answer(q Question, rng *rand.Rand) int {
	if len(q.Options) == 0 {
		return q.Truth
	}
	errP := (1 - w.Accuracy) + q.Difficulty*w.Accuracy
	if errP > 0.95 {
		errP = 0.95
	}
	if rng.Float64() >= errP || len(q.Options) == 1 {
		return q.Truth
	}
	// A wrong answer: uniform over the other options.
	wrong := rng.Intn(len(q.Options) - 1)
	if wrong >= q.Truth {
		wrong++
	}
	return wrong
}

// Stats accumulates crowdsourcing cost accounting.
type Stats struct {
	Questions   int
	Assignments int
	ByKind      map[Kind]int
}

// Cost converts the accounting into money at a per-assignment rate — the
// §1/§5 objective ("optimizing the order of issuing questions to reduce
// monetary cost") made concrete. Crowdsourcing markets price per
// assignment (each of the 3 redundant answers is paid), not per question.
func (s Stats) Cost(perAssignment float64) float64 {
	return float64(s.Assignments) * perAssignment
}

func (s *Stats) record(k Kind, assignments int) {
	s.Questions++
	s.Assignments += assignments
	if s.ByKind == nil {
		s.ByKind = make(map[Kind]int)
	}
	s.ByKind[k]++
}

// Crowd is the worker pool.
type Crowd struct {
	workers     []Worker
	rng         *rand.Rand
	assignments int
	stats       Stats

	// Quality control (quality.go): per-worker reliability estimates and
	// the weighted-voting switch.
	estimates Reliability
	weighted  bool

	// tel mirrors every question into a telemetry pipeline; nil disables.
	tel *telemetry.Pipeline
}

// Option configures a Crowd.
type Option func(*Crowd)

// WithAssignments overrides the per-question assignment count (default 3).
func WithAssignments(n int) Option {
	return func(c *Crowd) {
		if n > 0 {
			c.assignments = n
		}
	}
}

// New builds a crowd of n workers with the given mean accuracy. Individual
// worker accuracies are jittered ±0.05 around the mean, clamped to [0.5, 1].
// All randomness flows from seed, keeping experiments reproducible.
func New(n int, meanAccuracy float64, seed int64, opts ...Option) *Crowd {
	rng := rand.New(rand.NewSource(seed))
	c := &Crowd{rng: rng, assignments: 3}
	for i := 0; i < n; i++ {
		acc := meanAccuracy + (rng.Float64()-0.5)*0.1
		if acc > 1 {
			acc = 1
		}
		if acc < 0.5 {
			acc = 0.5
		}
		c.workers = append(c.workers, Worker{ID: i, Accuracy: acc})
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Perfect returns a crowd of always-correct workers, for tests and for the
// paper's "experts in the KB" assumption at its limit.
func Perfect(n int) *Crowd {
	c := &Crowd{rng: rand.New(rand.NewSource(0)), assignments: 3}
	for i := 0; i < n; i++ {
		c.workers = append(c.workers, Worker{ID: i, Accuracy: 1})
	}
	return c
}

// NumWorkers returns the pool size.
func (c *Crowd) NumWorkers() int { return len(c.workers) }

// Stats returns a copy of the accumulated accounting.
func (c *Crowd) Stats() Stats {
	s := c.stats
	s.ByKind = make(map[Kind]int, len(c.stats.ByKind))
	for k, v := range c.stats.ByKind {
		s.ByKind[k] = v
	}
	return s
}

// ResetStats clears the accounting.
func (c *Crowd) ResetStats() { c.stats = Stats{} }

// SetTelemetry attaches a telemetry pipeline whose CrowdQuestions counter
// tracks every question asked from now on; nil detaches it. The crowd is
// consulted serially (questions are crowd I/O, never issued from worker
// pools), so no synchronisation is needed.
func (c *Crowd) SetTelemetry(p *telemetry.Pipeline) { c.tel = p }

// Ask routes q to `assignments` distinct randomly chosen workers and returns
// the majority answer (ties broken toward the lowest option index). With
// reliability estimates installed (Calibrate / EstimateReliability), votes
// are weighted by each worker's log-odds accuracy instead.
func (c *Crowd) Ask(q Question) int {
	n := c.assignments
	if n > len(c.workers) {
		n = len(c.workers)
	}
	c.stats.record(q.Kind, n)
	c.tel.Inc(telemetry.CrowdQuestions)
	if c.weighted {
		return c.askWeighted(q, n)
	}
	perm := c.rng.Perm(len(c.workers))[:n]
	votes := make(map[int]int)
	for _, wi := range perm {
		votes[c.workers[wi].answer(q, c.rng)]++
	}
	best, bestVotes := 0, -1
	for opt := 0; opt < maxOption(q, votes); opt++ {
		if v := votes[opt]; v > bestVotes {
			best, bestVotes = opt, v
		}
	}
	return best
}

// AskBoolean asks a yes/no question and returns true for "Yes".
func (c *Crowd) AskBoolean(prompt string, holds bool) bool {
	return c.Ask(Boolean(prompt, holds)) == 0
}

func maxOption(q Question, votes map[int]int) int {
	m := len(q.Options)
	for opt := range votes {
		if opt >= m {
			m = opt + 1
		}
	}
	if m == 0 {
		m = 1
	}
	return m
}
