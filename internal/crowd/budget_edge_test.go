package crowd

import (
	"context"
	"errors"
	"testing"
	"time"
)

// These tests pin the Budget/deadline interplay at its edges: a budget that
// runs dry in the middle of an escalation, and a deadline that expires in
// the waits between a retry and a reassignment. Both must degrade — return
// what was collected, or a clean error — never hang or panic.

// scriptedTransport replaces worker answers with a scripted function of the
// delivery counter.
type scriptedTransport struct {
	n       int
	deliver func(i int, q Question) Delivery
}

func (s *scriptedTransport) Deliver(q Question, _ Worker, _ func() int) Delivery {
	d := s.deliver(s.n, q)
	s.n++
	return d
}

// TestBudgetExhaustedMidEscalation splits the vote so the margin never
// convinces the escalation policy, and caps the assignment budget below the
// escalation ceiling. The question must still resolve from the votes
// collected before the budget ran out.
func TestBudgetExhaustedMidEscalation(t *testing.T) {
	split := &scriptedTransport{deliver: func(i int, _ Question) Delivery {
		return Delivery{Answer: i % 2}
	}}
	b := NewBudget(0, 7)
	c := Perfect(5,
		WithTransport(split),
		WithEscalation(EscalationPolicy{MinMargin: 0.9, MaxAssignments: 50}),
		WithBudget(b),
	)

	done := make(chan struct{})
	var got int
	var err error
	go func() {
		defer close(done)
		got, err = c.AskContext(context.Background(), Boolean("split vote", true))
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("AskContext hung with budget exhausted mid-escalation")
	}

	if err != nil {
		t.Fatalf("collected votes must decide the question, got error %v", err)
	}
	// 7 alternating votes: four for option 0, three for option 1.
	if got != 0 {
		t.Fatalf("answer = %d, want plurality option 0", got)
	}
	st := c.Stats()
	if st.Escalations == 0 {
		t.Fatal("low margin never escalated; the test exercised nothing")
	}
	if _, spent := b.Spent(); spent != 7 {
		t.Fatalf("assignments spent = %d, want the full budget of 7", spent)
	}

	// The next question has no budget at all: no votes, clean ErrBudget.
	if _, err := c.AskContext(context.Background(), Boolean("after budget", true)); !errors.Is(err, ErrBudget) {
		t.Fatalf("post-budget question: err = %v, want ErrBudget", err)
	}
}

// TestDeadlineDuringRetryBackoff makes every delivery fail transiently so
// AskContext lives in the retry backoff, then expires the deadline there.
// It must return the context error promptly — not sleep out the full retry
// schedule, not hang.
func TestDeadlineDuringRetryBackoff(t *testing.T) {
	flaky := &scriptedTransport{deliver: func(int, Question) Delivery {
		return Delivery{Err: ErrTransient}
	}}
	c := Perfect(3,
		WithTransport(flaky),
		WithRetry(RetryPolicy{MaxAttempts: 50, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 20 * time.Millisecond}),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 35*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := c.AskContext(ctx, Boolean("flaky", true))
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("AskContext took %v to notice a 35ms deadline", elapsed)
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Fatal("no retries recorded; the deadline never raced the backoff")
	}
}

// TestDeadlineBetweenAbandonmentAndReassignment abandons every assignment
// after simulated latency, so the deadline expires in the latency wait
// between one worker abandoning and the next being assigned.
func TestDeadlineBetweenAbandonmentAndReassignment(t *testing.T) {
	ghosting := &scriptedTransport{deliver: func(int, Question) Delivery {
		return Delivery{Err: ErrAbandoned, Latency: 20 * time.Millisecond}
	}}
	c := Perfect(5, WithTransport(ghosting), WithRetry(RetryPolicy{MaxAttempts: 50}))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := c.AskContext(ctx, Boolean("ghosted", true))
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("AskContext took %v to notice a 30ms deadline", elapsed)
	}
	if st := c.Stats(); st.Abandonments == 0 && st.Timeouts == 0 {
		t.Fatal("no abandonment recorded before the deadline hit")
	}
}

// TestBudgetExhaustedMidQuestionKeepsVotes: the budget covers only part of
// the base redundancy; the collected votes still decide the question.
func TestBudgetExhaustedMidQuestionKeepsVotes(t *testing.T) {
	c := Perfect(5, WithBudget(NewBudget(0, 2)))
	got, err := c.AskContext(context.Background(), Boolean("partial", true))
	if err != nil {
		t.Fatalf("two collected votes must decide the question, got error %v", err)
	}
	if got != 0 {
		t.Fatalf("answer = %d, want the truthful option 0", got)
	}
}

// TestEmptyPoolEscalationDoesNotPanic is the regression test for the
// escalation loop dividing by zero on an empty worker pool: with nobody to
// ask, escalation must fall through to the degenerate-pool answer instead
// of picking from an empty permutation.
func TestEmptyPoolEscalationDoesNotPanic(t *testing.T) {
	c := Perfect(0, WithEscalation(EscalationPolicy{MinMargin: 0.6}))
	got, err := c.AskContext(context.Background(), Boolean("nobody home", true))
	if err != nil {
		t.Fatalf("empty pool: err = %v, want the degenerate nil error", err)
	}
	if got != 0 {
		t.Fatalf("empty pool answer = %d, want 0", got)
	}
}
