package crowd

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Transport faults. ErrAbandoned and ErrTransient are the per-assignment
// faults a Transport may report; the remaining errors are question-level
// outcomes surfaced by AskContext.
var (
	// ErrAbandoned reports that the assigned worker walked away without
	// answering; the assignment must be re-posted to a fresh worker.
	ErrAbandoned = errors.New("crowd: assignment abandoned")
	// ErrTransient reports a retryable delivery failure (market hiccup,
	// network error); the same worker can be retried after a backoff.
	ErrTransient = errors.New("crowd: transient transport error")
	// ErrBudget reports that the question or assignment budget is exhausted
	// before any answer could be collected.
	ErrBudget = errors.New("crowd: budget exhausted")
	// ErrNoAnswers reports that every assignment for a question failed
	// permanently (all retries exhausted) without budget or deadline
	// pressure.
	ErrNoAnswers = errors.New("crowd: no assignments completed")
)

// Delivery is the outcome of routing one assignment through a Transport:
// either an answer (after Latency) or a fault.
type Delivery struct {
	// Answer is the worker's chosen option index; meaningless when Err is
	// non-nil.
	Answer int
	// Latency is the simulated time between posting the assignment and the
	// answer (or fault) arriving. AskContext charges it against the
	// context's deadline.
	Latency time.Duration
	// Err is nil, ErrAbandoned, or ErrTransient.
	Err error
}

// Transport stands between Ask and the worker pool: every assignment is
// routed through it. The production default (nil transport) delivers
// instantly and never fails; a FaultInjector simulates an unreliable crowd.
//
// answer lazily draws the worker's true answer from the crowd's seeded rng;
// transports that drop or spoof the assignment must not call it, so the
// answer stream stays untouched by injected faults.
type Transport interface {
	Deliver(q Question, w Worker, answer func() int) Delivery
}

// directTransport is the nil-transport behaviour: instant, faultless.
type directTransport struct{}

func (directTransport) Deliver(q Question, w Worker, answer func() int) Delivery {
	return Delivery{Answer: answer()}
}

// FaultConfig parameterises a FaultInjector. All rates are per-assignment
// probabilities in [0,1]; they are evaluated in order (abandon, transient,
// spam), so their sum should stay ≤ 1.
type FaultConfig struct {
	// Seed drives the injector's private rng. Fault draws never consume the
	// crowd's answer rng, so a zero-rate injector is behaviourally identical
	// to the direct transport.
	Seed int64
	// AbandonRate is the probability the worker abandons the assignment.
	AbandonRate float64
	// TransientRate is the probability of a retryable delivery error.
	TransientRate float64
	// SpamRate is the probability the worker answers uniformly at random
	// (spam/adversarial worker) — indistinguishable from an honest answer.
	SpamRate float64
	// MinLatency/MaxLatency bound the simulated per-assignment latency
	// (uniform draw). Zero values mean instant delivery.
	MinLatency time.Duration
	MaxLatency time.Duration
}

// FaultInjector is a deterministic, seeded chaos transport: abandonment,
// transient errors, spam answers and latency, all drawn from its own rng so
// runs are reproducible and the crowd's answer stream is undisturbed.
type FaultInjector struct {
	mu  sync.Mutex
	cfg FaultConfig
	rng *rand.Rand

	// fault accounting, for tests and post-mortems
	abandoned, transient, spammed, delivered int
}

// NewFaultInjector builds a FaultInjector from cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Deliver implements Transport.
func (f *FaultInjector) Deliver(q Question, w Worker, answer func() int) Delivery {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := Delivery{Latency: f.latency()}
	u := f.rng.Float64()
	switch {
	case u < f.cfg.AbandonRate:
		f.abandoned++
		d.Err = ErrAbandoned
	case u < f.cfg.AbandonRate+f.cfg.TransientRate:
		f.transient++
		d.Err = ErrTransient
	case u < f.cfg.AbandonRate+f.cfg.TransientRate+f.cfg.SpamRate:
		f.spammed++
		n := len(q.Options)
		if n == 0 {
			n = 1
		}
		d.Answer = f.rng.Intn(n)
	default:
		f.delivered++
		d.Answer = answer()
	}
	return d
}

// Faults reports the injector's accounting: assignments abandoned, failed
// transiently, answered by spam, and delivered honestly.
func (f *FaultInjector) Faults() (abandoned, transient, spammed, delivered int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.abandoned, f.transient, f.spammed, f.delivered
}

// latency draws a uniform latency in [MinLatency, MaxLatency]. Caller holds
// f.mu.
func (f *FaultInjector) latency() time.Duration {
	if f.cfg.MaxLatency <= 0 {
		return f.cfg.MinLatency
	}
	span := f.cfg.MaxLatency - f.cfg.MinLatency
	if span <= 0 {
		return f.cfg.MinLatency
	}
	return f.cfg.MinLatency + time.Duration(f.rng.Int63n(int64(span)+1))
}
