// Resilience layer: retry with capped exponential backoff, reassignment to
// fresh workers on abandonment/timeout, adaptive redundancy (escalate with
// extra assignments while the vote margin is low), and question/assignment
// budgets. The paper assumes a cooperative expert crowd (§7.2); a deployed
// KATARA faces workers who abandon tasks, answer slowly, or spam, and a
// finite monetary budget — this file makes Ask survive all of that.
package crowd

import (
	"context"
	"sync"
	"time"

	"katara/internal/telemetry"
)

// RetryPolicy bounds the delivery attempts for one assignment slot.
type RetryPolicy struct {
	// MaxAttempts is the total delivery attempts per assignment slot,
	// including the first (default 3).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it (default 1ms — the simulation analogue of a market re-post
	// delay).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 16ms).
	MaxBackoff time.Duration
	// AssignmentTimeout bounds how long one assignment may stay outstanding
	// before it is treated as abandoned and reassigned (0 = wait forever,
	// i.e. only the context deadline applies).
	AssignmentTimeout time.Duration
	// Jitter in (0, 1] randomizes each backoff wait down to
	// [d·(1−Jitter), d], so concurrent sharded jobs hitting the same
	// transient fault don't retry in lockstep (a thundering herd against
	// the crowd market). The draw comes from a dedicated rng seeded by the
	// crowd seed — never the decision rng — so enabling jitter changes
	// timing only, never answers. 0 selects the default (0.5); negative
	// disables jitter entirely.
	Jitter float64
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.BaseBackoff <= 0 {
		r.BaseBackoff = time.Millisecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = 16 * time.Millisecond
	}
	if r.Jitter == 0 {
		r.Jitter = 0.5
	}
	return r
}

// Backoff returns the capped exponential wait before retry attempt n
// (n = 1 is the first retry), before jitter. The jittered wait the crowd
// actually sleeps is drawn by Crowd.jitteredBackoff.
func (r RetryPolicy) Backoff(n int) time.Duration {
	r = r.withDefaults()
	d := r.BaseBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= r.MaxBackoff {
			return r.MaxBackoff
		}
	}
	if d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	return d
}

// jitteredBackoff is Backoff(n) with the policy's seeded jitter applied:
// uniform in [d·(1−Jitter), d]. Callers hold c.mu (backoffRng is guarded by
// it, like the decision rng).
func (c *Crowd) jitteredBackoff(r RetryPolicy, n int) time.Duration {
	d := r.Backoff(n)
	j := r.withDefaults().Jitter
	if j <= 0 || d <= 0 || c.backoffRng == nil {
		return d
	}
	if j > 1 {
		j = 1
	}
	return time.Duration(float64(d) * (1 - j*c.backoffRng.Float64()))
}

// EscalationPolicy is adaptive redundancy (§5.1 asks every question exactly
// three times; under an unreliable crowd a close vote deserves more
// evidence): when the normalised vote margin after the base assignments is
// below MinMargin, extra assignments are posted one at a time up to
// MaxAssignments.
type EscalationPolicy struct {
	// MinMargin in [0,1]: escalate while (best − runnerUp) / totalWeight is
	// below it. 0 disables escalation (the paper's fixed-redundancy mode).
	MinMargin float64
	// MaxAssignments caps the per-question assignment count once escalation
	// is on (0 = 2·base+1).
	MaxAssignments int
}

// cap resolves the assignment ceiling for a base redundancy of n.
func (e EscalationPolicy) cap(n int) int {
	if e.MinMargin <= 0 {
		return n
	}
	m := e.MaxAssignments
	if m <= 0 {
		m = 2*n + 1
	}
	if m < n {
		m = n
	}
	return m
}

// Budget is a shared, concurrency-safe cap on crowd consumption for one
// pipeline run. A nil *Budget is unlimited. Zero caps mean unlimited for
// that dimension.
type Budget struct {
	mu           sync.Mutex
	maxQuestions int
	maxAssign    int
	questions    int
	assignments  int
}

// NewBudget builds a budget capping questions and/or assignments
// (0 = unlimited in that dimension).
func NewBudget(questions, assignments int) *Budget {
	return &Budget{maxQuestions: questions, maxAssign: assignments}
}

// TakeQuestion consumes one question from the budget, reporting false when
// exhausted.
func (b *Budget) TakeQuestion() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.maxQuestions > 0 && b.questions >= b.maxQuestions {
		return false
	}
	b.questions++
	return true
}

// TakeAssignment consumes one assignment, reporting false when exhausted.
func (b *Budget) TakeAssignment() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.maxAssign > 0 && b.assignments >= b.maxAssign {
		return false
	}
	b.assignments++
	return true
}

// Spent reports the consumed questions and assignments.
func (b *Budget) Spent() (questions, assignments int) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.questions, b.assignments
}

// vote is one collected answer with its voting weight (1 for plain
// majority, log-odds reliability for weighted voting).
type vote struct {
	opt    int
	weight float64
}

// AskContext is Ask with a deadline and the resilience layer engaged: each
// assignment is routed through the transport, retried with capped
// exponential backoff on transient errors, reassigned to a fresh worker on
// abandonment or timeout, and — when an EscalationPolicy is configured —
// topped up with extra assignments while the vote margin is low.
//
// If the context expires or the budget runs out mid-question, the answers
// already collected still decide the question; only a question with no
// answers at all returns an error (ErrBudget or the context error), which
// callers translate into their graceful-degradation policy.
func (c *Crowd) AskContext(ctx context.Context, q Question) (answer int, err error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.budget.TakeQuestion() {
		return 0, ErrBudget
	}

	n := c.assignments
	if n > len(c.workers) {
		n = len(c.workers)
	}
	c.tel.Inc(telemetry.CrowdQuestions)

	// Observe the whole round-trip — base assignments, backoff waits,
	// simulated latency, reassignments and escalations — as one span and one
	// histogram sample. The stage timers only see validation/annotation as a
	// block; this is where per-question p99s under fault injection come from.
	qStart := c.tel.StartTimer()
	qSpan := c.tel.StartSpan("crowd-question")
	qid := c.prov.StartQuestion(q.Kind.String(), q.Prompt, q.Options)
	var qRetries, qEscalations, qTimeouts, qAbandonments int64

	// One permutation serves the base assignments, reassignments and
	// escalations: fresh workers are taken in perm order, wrapping around
	// when the pool is exhausted. Drawing the full Perm up front keeps the
	// rng stream byte-identical to the pre-resilience Ask.
	perm := c.rng.Perm(len(c.workers))
	widx := 0

	retry := c.retry.withDefaults()
	maxSlots := c.escalate.cap(n)
	var (
		votes     []vote
		delivered int
		stop      error // first budget/deadline interruption
	)
	defer func() {
		qSpan.SetStr("kind", q.Kind.String())
		qSpan.SetInt("assignments", int64(delivered))
		qSpan.SetInt("retries", qRetries)
		qSpan.SetInt("escalations", qEscalations)
		qSpan.SetInt("timeouts", qTimeouts)
		qSpan.SetInt("abandonments", qAbandonments)
		qSpan.End()
		c.tel.ObserveSince(telemetry.HistCrowdQuestion, qStart)
		if c.prov.Enabled() {
			errMsg := ""
			if err != nil {
				errMsg = err.Error()
			}
			c.prov.FinishQuestion(qid, answer, qRetries, qTimeouts, qAbandonments, qEscalations, errMsg)
		}
	}()

	// collect runs one assignment slot to completion (an answer or a
	// permanently failed slot) and reports whether collection may continue.
	collect := func() bool {
		for attempt := 1; ; attempt++ {
			if err := ctx.Err(); err != nil {
				stop = err
				return false
			}
			if !c.budget.TakeAssignment() {
				stop = ErrBudget
				return false
			}
			wi := perm[widx%len(perm)]
			w := c.workers[wi]
			d := c.transportOrDirect().Deliver(q, w, func() int {
				return w.answer(q, c.rng)
			})
			delivered++

			// Charge the simulated latency against the deadline; an
			// assignment outstanding past AssignmentTimeout is treated as
			// abandoned by timeout.
			wait := d.Latency
			timedOut := false
			if retry.AssignmentTimeout > 0 && wait > retry.AssignmentTimeout {
				wait, timedOut = retry.AssignmentTimeout, true
			}
			if wait > 0 {
				if err := c.sleep(ctx, wait); err != nil {
					c.stats.Timeouts++
					c.tel.Inc(telemetry.CrowdTimeouts)
					qTimeouts++
					stop = err
					return false
				}
			}

			fault := d.Err
			if timedOut {
				fault = ErrAbandoned
				c.stats.Timeouts++
				c.tel.Inc(telemetry.CrowdTimeouts)
				qTimeouts++
			}
			switch fault {
			case nil:
				widx++
				weight := 1.0
				if c.weighted {
					weight = logOdds(c.estimates[wi])
				}
				votes = append(votes, vote{opt: d.Answer, weight: weight})
				c.prov.AddVote(qid, w.ID, d.Answer, weight)
				return true
			case ErrAbandoned:
				// Reassign to a fresh worker: advance past the abandoner.
				widx++
				if !timedOut {
					c.stats.Abandonments++
					c.tel.Inc(telemetry.CrowdAbandonments)
					qAbandonments++
				}
			case ErrTransient:
				// Retry the same worker after the backoff: widx stays.
			}
			if attempt >= retry.MaxAttempts {
				widx++ // slot failed for good; move on past this worker
				return true
			}
			c.stats.Retries++
			c.tel.Inc(telemetry.CrowdRetries)
			qRetries++
			if err := c.sleep(ctx, c.jitteredBackoff(retry, attempt)); err != nil {
				stop = err
				return false
			}
		}
	}

	slots := 0
	for ; slots < n; slots++ {
		if !collect() {
			break
		}
	}
	// Adaptive redundancy: top up while the margin is unconvincing. An
	// empty pool has nobody to escalate to (and collect's worker pick
	// would divide by zero): fall through to the degenerate-pool return.
	for stop == nil && len(c.workers) > 0 && slots < maxSlots && voteMargin(votes) < c.escalate.MinMargin {
		c.stats.Escalations++
		c.tel.Inc(telemetry.CrowdEscalations)
		qEscalations++
		if !collect() {
			break
		}
		slots++
	}

	c.stats.record(q.Kind, delivered)
	c.tel.Add(telemetry.CrowdAssignments, int64(delivered))
	if len(votes) == 0 {
		if stop != nil {
			return 0, stop
		}
		if len(c.workers) == 0 {
			return 0, nil // degenerate empty pool: pre-resilience behaviour
		}
		return 0, ErrNoAnswers
	}
	return decide(q, votes), nil
}

// AskBooleanContext asks a yes/no question under ctx and returns true for
// "Yes".
func (c *Crowd) AskBooleanContext(ctx context.Context, prompt string, holds bool) (bool, error) {
	a, err := c.AskContext(ctx, Boolean(prompt, holds))
	return a == 0 && err == nil, err
}

// sleep waits for d without holding the crowd lock, honouring ctx.
// Caller holds c.mu.
func (c *Crowd) sleep(ctx context.Context, d time.Duration) error {
	c.mu.Unlock()
	defer c.mu.Lock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// transportOrDirect resolves the configured transport (nil = direct).
func (c *Crowd) transportOrDirect() Transport {
	if c.transport != nil {
		return c.transport
	}
	return directTransport{}
}

// voteMargin is the normalised gap between the leading and runner-up
// options: (best − second) / Σ|weight|. No votes → 0 (maximally uncertain).
func voteMargin(votes []vote) float64 {
	if len(votes) == 0 {
		return 0
	}
	byOpt := map[int]float64{}
	total := 0.0
	for _, v := range votes {
		byOpt[v.opt] += v.weight
		if v.weight < 0 {
			total -= v.weight
		} else {
			total += v.weight
		}
	}
	if total == 0 {
		return 0
	}
	best, second := 0.0, 0.0
	first := true
	for _, w := range byOpt {
		switch {
		case first || w > best:
			if !first {
				second = best
			}
			best = w
			first = false
		case w > second:
			second = w
		}
	}
	m := (best - second) / total
	if m < 0 {
		return 0
	}
	return m
}

// decide aggregates votes into the winning option: highest summed weight,
// ties broken toward the lowest option index (the pre-resilience rule for
// both plain and weighted voting).
func decide(q Question, votes []vote) int {
	byOpt := map[int]float64{}
	maxOpt := len(q.Options)
	for _, v := range votes {
		byOpt[v.opt] += v.weight
		if v.opt >= maxOpt {
			maxOpt = v.opt + 1
		}
	}
	best, bestW, have := 0, 0.0, false
	for opt := 0; opt < maxOpt; opt++ {
		if w, ok := byOpt[opt]; ok && (!have || w > bestW) {
			best, bestW, have = opt, w, true
		}
	}
	return best
}
