package crowd

import (
	"math"
	"testing"
)

func TestPerfectCrowdAlwaysCorrect(t *testing.T) {
	c := Perfect(10)
	q := Question{
		Kind:    TypeValidation,
		Prompt:  "What is the most accurate type of the highlighted column?",
		Options: []string{"country", "economy", "state", "none of the above"},
		Truth:   0,
	}
	for i := 0; i < 50; i++ {
		if got := c.Ask(q); got != 0 {
			t.Fatalf("perfect crowd answered %d", got)
		}
	}
}

func TestBooleanQuestions(t *testing.T) {
	c := Perfect(3)
	if !c.AskBoolean("Does S. Africa hasCapital Pretoria?", true) {
		t.Fatal("expected Yes")
	}
	if c.AskBoolean("Does Italy hasCapital Madrid?", false) {
		t.Fatal("expected No")
	}
}

func TestMajorityVotingBeatsIndividualError(t *testing.T) {
	// With 90% accurate workers and 3-way majority, the aggregated error
	// rate must be well below the individual 10%.
	c := New(10, 0.9, 42)
	q := Question{Kind: FactVerification, Options: []string{"Yes", "No"}, Truth: 0}
	wrong := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if c.Ask(q) != 0 {
			wrong++
		}
	}
	rate := float64(wrong) / trials
	// Theoretical 3-vote majority error at p=0.1 is ~0.028.
	if rate > 0.07 {
		t.Fatalf("aggregated error rate %f too high", rate)
	}
	if rate == 0 {
		t.Fatal("noisy crowd should make some mistakes over 2000 trials")
	}
}

func TestDifficultyRaisesErrors(t *testing.T) {
	easyCrowd := New(10, 0.9, 7)
	hardCrowd := New(10, 0.9, 7)
	easy := Question{Kind: TypeValidation, Options: []string{"a", "b", "c"}, Truth: 1}
	hard := easy
	hard.Difficulty = 0.6
	wrongEasy, wrongHard := 0, 0
	for i := 0; i < 2000; i++ {
		if easyCrowd.Ask(easy) != 1 {
			wrongEasy++
		}
		if hardCrowd.Ask(hard) != 1 {
			wrongHard++
		}
	}
	if wrongHard <= wrongEasy {
		t.Fatalf("difficulty had no effect: easy=%d hard=%d", wrongEasy, wrongHard)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := Perfect(5)
	c.Ask(Question{Kind: TypeValidation, Options: []string{"a", "b"}, Truth: 0})
	c.Ask(Question{Kind: RelationshipValidation, Options: []string{"a", "b"}, Truth: 0})
	c.AskBoolean("x?", true)
	s := c.Stats()
	if s.Questions != 3 {
		t.Fatalf("Questions = %d", s.Questions)
	}
	if s.Assignments != 9 {
		t.Fatalf("Assignments = %d, want 9 (3 questions x 3 workers)", s.Assignments)
	}
	if s.ByKind[TypeValidation] != 1 || s.ByKind[FactVerification] != 1 {
		t.Fatalf("ByKind = %v", s.ByKind)
	}
	c.ResetStats()
	if c.Stats().Questions != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestStatsReturnsCopy(t *testing.T) {
	c := Perfect(3)
	c.AskBoolean("x?", true)
	s := c.Stats()
	s.ByKind[TypeValidation] = 99
	if c.Stats().ByKind[TypeValidation] == 99 {
		t.Fatal("Stats leaked internal map")
	}
}

func TestAssignmentsCappedByPoolSize(t *testing.T) {
	c := Perfect(2)
	c.AskBoolean("x?", true)
	if got := c.Stats().Assignments; got != 2 {
		t.Fatalf("Assignments = %d, want 2", got)
	}
}

func TestWithAssignmentsOption(t *testing.T) {
	c := New(10, 1.0, 1, WithAssignments(5))
	c.AskBoolean("x?", true)
	if got := c.Stats().Assignments; got != 5 {
		t.Fatalf("Assignments = %d, want 5", got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		c := New(10, 0.8, 123)
		q := Question{Kind: TypeValidation, Options: []string{"a", "b", "c"}, Truth: 2, Difficulty: 0.2}
		var out []int
		for i := 0; i < 100; i++ {
			out = append(out, c.Ask(q))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("crowd is nondeterministic for a fixed seed")
		}
	}
}

func TestWorkerAccuracyClamped(t *testing.T) {
	c := New(50, 1.5, 9)
	for _, w := range c.workers {
		if w.Accuracy < 0.5 || w.Accuracy > 1 {
			t.Fatalf("worker accuracy %f out of range", w.Accuracy)
		}
	}
	c2 := New(50, 0.0, 9)
	for _, w := range c2.workers {
		if w.Accuracy < 0.5 {
			t.Fatalf("low-accuracy worker not clamped: %f", w.Accuracy)
		}
	}
}

func TestAmbiguityProbabilityModel(t *testing.T) {
	// §5.1: the probability that all q·kt sampled values are ambiguous is
	// p^(q·kt); with p=0.8, q=5, kt=5 it is ~0.0038. Verify the arithmetic
	// the paper relies on (a sanity check of our difficulty modelling).
	p := 0.8
	got := math.Pow(p, 25)
	if math.Abs(got-0.0038) > 0.0002 {
		t.Fatalf("p^25 = %f, want ~0.0038", got)
	}
}

func TestKindString(t *testing.T) {
	if TypeValidation.String() != "type-validation" ||
		RelationshipValidation.String() != "relationship-validation" ||
		FactVerification.String() != "fact-verification" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind formatting broken")
	}
}
