package crowd

import (
	"testing"
	"time"
)

// TestBackoffPure: RetryPolicy.Backoff is the deterministic pre-jitter
// schedule — base, doubling, capped — and never consults any rng.
func TestBackoffPure(t *testing.T) {
	r := RetryPolicy{BaseBackoff: 4 * time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	want := []time.Duration{
		4 * time.Millisecond,  // n=1
		8 * time.Millisecond,  // n=2
		16 * time.Millisecond, // n=3
		20 * time.Millisecond, // n=4 capped
		20 * time.Millisecond, // n=5 stays capped
	}
	for i, w := range want {
		if got := r.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
		if again := r.Backoff(i + 1); again != w {
			t.Fatalf("Backoff(%d) not pure: %v then %v", i+1, w, again)
		}
	}
}

// TestJitteredBackoffBounds: with the default jitter (0.5) every drawn wait
// lands in [d/2, d], and the draws actually vary (the jitter is real, not a
// constant scale).
func TestJitteredBackoffBounds(t *testing.T) {
	c := New(5, 0.8, 42)
	r := RetryPolicy{BaseBackoff: 8 * time.Millisecond, MaxBackoff: 64 * time.Millisecond}
	for n := 1; n <= 5; n++ {
		d := r.Backoff(n)
		distinct := map[time.Duration]bool{}
		c.mu.Lock()
		for i := 0; i < 200; i++ {
			got := c.jitteredBackoff(r, n)
			if got < d/2 || got > d {
				c.mu.Unlock()
				t.Fatalf("jitteredBackoff(n=%d) = %v outside [%v, %v]", n, got, d/2, d)
			}
			distinct[got] = true
		}
		c.mu.Unlock()
		if len(distinct) < 2 {
			t.Fatalf("jitteredBackoff(n=%d): 200 draws all equal %v — jitter inert", n, d)
		}
	}
}

// TestJitterDisabled: a negative Jitter turns the randomization off —
// jitteredBackoff collapses to the pure schedule.
func TestJitterDisabled(t *testing.T) {
	c := New(5, 0.8, 42)
	r := RetryPolicy{BaseBackoff: 8 * time.Millisecond, MaxBackoff: 64 * time.Millisecond, Jitter: -1}
	c.mu.Lock()
	defer c.mu.Unlock()
	for n := 1; n <= 5; n++ {
		if got, want := c.jitteredBackoff(r, n), r.Backoff(n); got != want {
			t.Fatalf("disabled jitter: jitteredBackoff(n=%d) = %v, want %v", n, got, want)
		}
	}
}

// TestJitterClamped: Jitter > 1 clamps to 1, so waits stay in [0, d] instead
// of going negative.
func TestJitterClamped(t *testing.T) {
	c := New(5, 0.8, 42)
	r := RetryPolicy{BaseBackoff: 8 * time.Millisecond, MaxBackoff: 64 * time.Millisecond, Jitter: 5}
	c.mu.Lock()
	defer c.mu.Unlock()
	d := r.Backoff(2)
	for i := 0; i < 200; i++ {
		if got := c.jitteredBackoff(r, 2); got < 0 || got > d {
			t.Fatalf("clamped jitter draw %v outside [0, %v]", got, d)
		}
	}
}

// TestJitterSeededDeterminism: the jitter stream is a pure function of the
// crowd seed — same seed, same waits; different seed, different waits.
func TestJitterSeededDeterminism(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		c := New(5, 0.8, seed)
		r := RetryPolicy{BaseBackoff: 8 * time.Millisecond, MaxBackoff: 64 * time.Millisecond}
		c.mu.Lock()
		defer c.mu.Unlock()
		out := make([]time.Duration, 64)
		for i := range out {
			out[i] = c.jitteredBackoff(r, 1+i%4)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	other := draw(8)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical jitter streams")
	}
}

// TestJitterDoesNotPerturbDecisions: draining the backoff rng must leave the
// decision stream untouched — two same-seed crowds answer identically even
// when one of them has drawn hundreds of jitter values in between. This is
// the invariant that keeps differential reports byte-identical with retries
// (and their jitter) on or off.
func TestJitterDoesNotPerturbDecisions(t *testing.T) {
	questions := make([]Question, 40)
	for i := range questions {
		questions[i] = Question{
			Prompt:     "q",
			Options:    []string{"a", "b", "c"},
			Truth:      i % 3,
			Difficulty: 0.4,
		}
	}
	ask := func(drainJitter bool) []int {
		c := New(5, 0.7, 99)
		r := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
		out := make([]int, 0, len(questions))
		for _, q := range questions {
			if drainJitter {
				c.mu.Lock()
				for i := 0; i < 17; i++ {
					c.jitteredBackoff(r, 1)
				}
				c.mu.Unlock()
			}
			out = append(out, c.Ask(q))
		}
		return out
	}
	plain, drained := ask(false), ask(true)
	for i := range plain {
		if plain[i] != drained[i] {
			t.Fatalf("question %d: answer %d with jitter drained vs %d without — jitter leaked into decisions", i, drained[i], plain[i])
		}
	}
}
