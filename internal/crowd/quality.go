package crowd

import (
	"math"
)

// Quality control for crowdsourcing. The paper assumes expert workers and
// defers quality to the cited literature ("there are several efforts that
// aim at improving the quality ... of crowdsourcing [4, 26]", §8); this
// file implements the two standard mechanisms those lines refer to:
//
//   - gold-question calibration: workers answer questions with known
//     answers and their accuracy is estimated directly;
//   - Dawid–Skene-style estimation: worker reliability is inferred from
//     agreement alone, with no gold answers, by iterating between weighted
//     consensus and per-worker accuracy;
//
// plus log-odds weighted majority voting that uses the estimates.

// Reliability holds per-worker estimated accuracies.
type Reliability []float64

// Calibrate asks every worker each gold question once and estimates worker
// accuracies from their answers (Laplace-smoothed). The estimates are
// installed for weighted voting and also returned. Gold questions are
// accounted like normal questions.
func (c *Crowd) Calibrate(gold []Question) Reliability {
	c.mu.Lock()
	defer c.mu.Unlock()
	correct := make([]int, len(c.workers))
	for _, q := range gold {
		c.stats.record(q.Kind, len(c.workers))
		for i, w := range c.workers {
			if w.answer(q, c.rng) == q.Truth {
				correct[i]++
			}
		}
	}
	est := make(Reliability, len(c.workers))
	for i := range est {
		est[i] = (float64(correct[i]) + 1) / (float64(len(gold)) + 2)
	}
	c.estimates = est
	c.weighted = true
	return est
}

// workerAnswers records one round of raw answers for reliability inference.
type workerAnswers struct {
	question Question
	answers  []int // per worker
}

// EstimateReliability runs a Dawid–Skene-style EM over a batch of
// questions *without* consulting their ground truth: every worker answers
// every question; consensus starts as simple majority and is refined by
// weighting workers by their current accuracy estimate until the estimates
// stabilise. It installs and returns the estimates.
func (c *Crowd) EstimateReliability(batch []Question, iterations int) Reliability {
	c.mu.Lock()
	defer c.mu.Unlock()
	if iterations <= 0 {
		iterations = 10
	}
	rounds := make([]workerAnswers, len(batch))
	for qi, q := range batch {
		c.stats.record(q.Kind, len(c.workers))
		wa := workerAnswers{question: q, answers: make([]int, len(c.workers))}
		for i, w := range c.workers {
			wa.answers[i] = w.answer(q, c.rng)
		}
		rounds[qi] = wa
	}

	est := make(Reliability, len(c.workers))
	for i := range est {
		est[i] = 0.8 // uninformative prior
	}
	for it := 0; it < iterations; it++ {
		// E-step: weighted consensus per question.
		consensus := make([]int, len(rounds))
		for qi, wa := range rounds {
			votes := map[int]float64{}
			for i, a := range wa.answers {
				votes[a] += logOdds(est[i])
			}
			best, bestV := 0, math.Inf(-1)
			for opt := 0; opt < len(wa.question.Options); opt++ {
				if v, ok := votes[opt]; ok && v > bestV {
					best, bestV = opt, v
				}
			}
			consensus[qi] = best
		}
		// M-step: accuracy against the consensus.
		next := make(Reliability, len(c.workers))
		for i := range c.workers {
			agree := 0
			for qi, wa := range rounds {
				if wa.answers[i] == consensus[qi] {
					agree++
				}
			}
			next[i] = (float64(agree) + 1) / (float64(len(rounds)) + 2)
		}
		converged := true
		for i := range next {
			if math.Abs(next[i]-est[i]) > 1e-6 {
				converged = false
			}
		}
		est = next
		if converged {
			break
		}
	}
	c.estimates = est
	c.weighted = true
	return est
}

// Estimates returns the installed reliability estimates (nil before any
// calibration).
func (c *Crowd) Estimates() Reliability {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append(Reliability(nil), c.estimates...)
}

// SetWeightedVoting toggles log-odds weighted majority voting. It requires
// estimates (from Calibrate or EstimateReliability).
func (c *Crowd) SetWeightedVoting(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.weighted = on && c.estimates != nil
}

// logOdds converts an accuracy estimate into a vote weight, clamped away
// from the degenerate 0/1 endpoints.
func logOdds(acc float64) float64 {
	if acc < 0.05 {
		acc = 0.05
	}
	if acc > 0.95 {
		acc = 0.95
	}
	return math.Log(acc / (1 - acc))
}
