package crowd

import (
	"math"
	"math/rand"
	"testing"
)

// mixedCrowd builds a pool with known good and bad workers.
func mixedCrowd(seed int64) *Crowd {
	c := &Crowd{rng: rand.New(rand.NewSource(seed)), assignments: 5}
	for i := 0; i < 6; i++ {
		c.workers = append(c.workers, Worker{ID: i, Accuracy: 0.95})
	}
	for i := 6; i < 10; i++ {
		c.workers = append(c.workers, Worker{ID: i, Accuracy: 0.55})
	}
	return c
}

func goldBatch(n int) []Question {
	qs := make([]Question, n)
	for i := range qs {
		qs[i] = Question{
			Kind:    FactVerification,
			Options: []string{"a", "b", "c", "d"},
			Truth:   i % 4,
		}
	}
	return qs
}

func TestCalibrateSeparatesWorkers(t *testing.T) {
	c := mixedCrowd(1)
	est := c.Calibrate(goldBatch(60))
	if len(est) != 10 {
		t.Fatalf("estimates = %d", len(est))
	}
	for i := 0; i < 6; i++ {
		if est[i] < 0.8 {
			t.Errorf("good worker %d estimated %.2f", i, est[i])
		}
	}
	for i := 6; i < 10; i++ {
		if est[i] > 0.8 {
			t.Errorf("bad worker %d estimated %.2f", i, est[i])
		}
	}
	// Calibration is accounted.
	if c.Stats().Questions != 60 {
		t.Fatalf("questions = %d", c.Stats().Questions)
	}
}

func TestEstimateReliabilityWithoutGold(t *testing.T) {
	c := mixedCrowd(2)
	est := c.EstimateReliability(goldBatch(80), 15)
	var goodAvg, badAvg float64
	for i := 0; i < 6; i++ {
		goodAvg += est[i] / 6
	}
	for i := 6; i < 10; i++ {
		badAvg += est[i] / 4
	}
	if goodAvg <= badAvg+0.15 {
		t.Fatalf("EM failed to separate workers: good %.2f vs bad %.2f", goodAvg, badAvg)
	}
}

func TestWeightedVotingBeatsMajorityWithBadWorkers(t *testing.T) {
	run := func(weighted bool) int {
		c := mixedCrowd(3)
		c.assignments = 10 // everyone votes: 6 good, 4 bad
		if weighted {
			c.Calibrate(goldBatch(60))
		}
		q := Question{Kind: FactVerification, Options: []string{"a", "b"}, Truth: 1}
		wrong := 0
		for i := 0; i < 1500; i++ {
			if c.Ask(q) != 1 {
				wrong++
			}
		}
		return wrong
	}
	plain := run(false)
	weighted := run(true)
	if weighted > plain {
		t.Fatalf("weighted voting (%d wrong) should not underperform majority (%d wrong)",
			weighted, plain)
	}
}

func TestSetWeightedVotingRequiresEstimates(t *testing.T) {
	c := mixedCrowd(4)
	c.SetWeightedVoting(true)
	if c.weighted {
		t.Fatal("weighted voting enabled without estimates")
	}
	c.Calibrate(goldBatch(10))
	c.SetWeightedVoting(false)
	if c.weighted {
		t.Fatal("SetWeightedVoting(false) ignored")
	}
	c.SetWeightedVoting(true)
	if !c.weighted {
		t.Fatal("SetWeightedVoting(true) ignored with estimates present")
	}
}

func TestEstimatesReturnsCopy(t *testing.T) {
	c := mixedCrowd(5)
	if c.Estimates() != nil {
		t.Fatal("estimates before calibration should be nil")
	}
	c.Calibrate(goldBatch(10))
	e := c.Estimates()
	e[0] = -1
	if c.estimates[0] == -1 {
		t.Fatal("Estimates leaked internal slice")
	}
}

func TestLogOddsClamped(t *testing.T) {
	if logOdds(0) != logOdds(0.01) || logOdds(1) != logOdds(0.99) {
		t.Fatal("logOdds must clamp the endpoints")
	}
	if logOdds(0.5) != 0 {
		t.Fatalf("logOdds(0.5) = %f, want 0", logOdds(0.5))
	}
	if logOdds(0.9) <= logOdds(0.6) {
		t.Fatal("logOdds must be increasing")
	}
}

func TestCalibrateDeterministicUnderFixedSeed(t *testing.T) {
	run := func() Reliability {
		return mixedCrowd(11).Calibrate(goldBatch(40))
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("estimate %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEstimateReliabilityDeterministicUnderFixedSeed(t *testing.T) {
	run := func() Reliability {
		return mixedCrowd(12).EstimateReliability(goldBatch(40), 10)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("estimate %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWeightedVoteOutweighsNoisyMajority(t *testing.T) {
	// One highly reliable worker (log-odds ≈ 2.94) must outvote four
	// barely-better-than-chance workers (log-odds ≈ 0.20 each) who agree on
	// the wrong option — the point of weighted voting.
	expert := logOdds(0.95)
	noisy := logOdds(0.55)
	votes := []vote{
		{opt: 1, weight: expert},
		{opt: 0, weight: noisy}, {opt: 0, weight: noisy},
		{opt: 0, weight: noisy}, {opt: 0, weight: noisy},
	}
	q := Question{Options: []string{"a", "b"}}
	if got := decide(q, votes); got != 1 {
		t.Fatalf("decide = %d, want the expert's option 1", got)
	}
	// Under plain (unit-weight) voting the noisy majority wins instead.
	for i := range votes {
		votes[i].weight = 1
	}
	if got := decide(q, votes); got != 0 {
		t.Fatalf("plain decide = %d, want the majority's option 0", got)
	}
}

func TestStatsCost(t *testing.T) {
	c := Perfect(5)
	c.AskBoolean("x?", true)
	c.AskBoolean("y?", true)
	// 2 questions x 3 assignments at $0.05 each.
	if got := c.Stats().Cost(0.05); math.Abs(got-0.30) > 1e-12 {
		t.Fatalf("Cost = %f, want 0.30", got)
	}
}
