package cleaning

import (
	"math"
	"sort"
	"strconv"

	"katara/internal/table"
)

// SCAREOptions configures the statistical repairer.
type SCAREOptions struct {
	// Threshold is the log-likelihood-ratio margin a replacement value must
	// beat the current value by before a change is made. The paper notes
	// this parameter is "hard to set precisely" (§7.4); default 1.0.
	Threshold float64
	// Smoothing is the Laplace smoothing constant (default 0.5).
	Smoothing float64
}

func (o SCAREOptions) withDefaults() SCAREOptions {
	if o.Threshold == 0 {
		o.Threshold = 1.0
	}
	if o.Smoothing == 0 {
		o.Smoothing = 0.5
	}
	return o
}

// SCARE repairs t in place following Yakout et al.: the reliable columns
// are assumed correct; each flexible (unreliable) column is modelled with a
// naive-Bayes conditional P(value | reliable attributes) trained on the data
// itself, and a cell is updated to the maximum-likelihood value when that
// value beats the current one by the threshold margin. Its behaviour is
// redundancy-bound: without repeated evidence the model cannot beat the
// current value and nothing changes.
func SCARE(t *table.Table, reliable, flexible []int, opts SCAREOptions) []Change {
	opts = opts.withDefaults()
	var changes []Change
	for _, target := range flexible {
		changes = append(changes, scareColumn(t, reliable, target, opts)...)
	}
	return changes
}

func scareColumn(t *table.Table, reliable []int, target int, opts SCAREOptions) []Change {
	// Train: counts of target values, and co-occurrence counts
	// (reliableCol, reliableValue, targetValue).
	classCount := map[string]int{}
	cooc := map[[2]string]map[string]int{} // (colID|value) -> targetValue -> count
	key := func(col int, v string) [2]string {
		return [2]string{strconv.Itoa(col), v}
	}
	for _, row := range t.Rows {
		tv := row[target]
		classCount[tv]++
		for _, rc := range reliable {
			k := key(rc, row[rc])
			if cooc[k] == nil {
				cooc[k] = map[string]int{}
			}
			cooc[k][tv]++
		}
	}
	classes := make([]string, 0, len(classCount))
	for v := range classCount {
		classes = append(classes, v)
	}
	sort.Strings(classes)
	total := len(t.Rows)
	v := float64(len(classes))
	s := opts.Smoothing

	logLik := func(row []string, cand string) float64 {
		ll := math.Log((float64(classCount[cand]) + s) / (float64(total) + s*v))
		for _, rc := range reliable {
			k := key(rc, row[rc])
			var c int
			if m := cooc[k]; m != nil {
				c = m[cand]
			}
			ll += math.Log((float64(c) + s) / (float64(classCount[cand]) + s*v))
		}
		return ll
	}

	var changes []Change
	for ri, row := range t.Rows {
		cur := row[target]
		curLL := logLik(row, cur)
		bestVal, bestLL := cur, curLL
		for _, cand := range classes {
			if cand == cur {
				continue
			}
			if ll := logLik(row, cand); ll > bestLL {
				bestVal, bestLL = cand, ll
			}
		}
		if bestVal != cur && bestLL-curLL > opts.Threshold {
			changes = append(changes, Change{Row: ri, Col: target, From: cur, To: bestVal})
			t.Rows[ri][target] = bestVal
		}
	}
	return changes
}
