// Package cleaning implements the automatic repair baselines of §7.4: the
// equivalence-class FD repair (EQ) used by NADEEF [Bohannon et al. 2005] and
// the statistical SCARE repairer [Yakout et al. 2013]. Both require value
// redundancy in the data — the property the paper contrasts with KATARA's
// KB-based evidence.
package cleaning

import (
	"sort"

	"katara/internal/fd"
	"katara/internal/table"
)

// Change is one cell modification made by a repair algorithm.
type Change struct {
	Row, Col int
	From, To string
}

// EQ repairs t in place against the given FDs using equivalence classes:
// rows sharing an FD's LHS key must agree on the RHS; each violating class
// is repaired to its most frequent RHS value (minimum number of changes,
// the cost model of [2]). FDs are applied to a fixpoint (bounded), since a
// repair under one FD can surface violations of another.
//
// It returns the changes applied. The repaired table is heuristically
// consistent but — as the paper stresses — not necessarily *correct*.
func EQ(t *table.Table, fds []fd.FD) []Change {
	var changes []Change
	const maxPasses = 10
	for pass := 0; pass < maxPasses; pass++ {
		passChanges := eqPass(t, fds)
		changes = append(changes, passChanges...)
		if len(passChanges) == 0 {
			break
		}
	}
	return changes
}

func eqPass(t *table.Table, fds []fd.FD) []Change {
	var changes []Change
	for _, f := range fds {
		for _, v := range fd.Violations(t, f) {
			target := pluralityValue(t, v.Rows, v.Col)
			for _, r := range v.Rows {
				if t.Rows[r][v.Col] != target {
					changes = append(changes, Change{Row: r, Col: v.Col, From: t.Rows[r][v.Col], To: target})
					t.Rows[r][v.Col] = target
				}
			}
		}
	}
	return changes
}

// pluralityValue returns the most frequent value of col among rows, ties
// broken lexicographically for determinism.
func pluralityValue(t *table.Table, rows []int, col int) string {
	counts := map[string]int{}
	for _, r := range rows {
		counts[t.Rows[r][col]]++
	}
	vals := make([]string, 0, len(counts))
	for v := range counts {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	best, bestN := "", -1
	for _, v := range vals {
		if counts[v] > bestN {
			best, bestN = v, counts[v]
		}
	}
	return best
}
