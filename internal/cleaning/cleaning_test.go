package cleaning

import (
	"math/rand"
	"testing"

	"katara/internal/fd"
	"katara/internal/table"
)

func TestEQRepairsToPlurality(t *testing.T) {
	tb := table.New("t", "B", "C")
	tb.Append("Italy", "Rome")
	tb.Append("Italy", "Rome")
	tb.Append("Italy", "Madrid") // minority value gets repaired
	tb.Append("Spain", "Madrid")
	f := fd.New([]int{0}, []int{1})
	changes := EQ(tb, []fd.FD{f})
	if len(changes) != 1 {
		t.Fatalf("changes = %v", changes)
	}
	if changes[0].Row != 2 || changes[0].To != "Rome" {
		t.Fatalf("change = %+v", changes[0])
	}
	if !fd.Satisfied(tb, f) {
		t.Fatal("table still violates the FD")
	}
}

func TestEQMinimalityCanBeWrong(t *testing.T) {
	// The paper's point about heuristic repairs: when the wrong value is
	// the majority, EQ "repairs" the correct cells.
	tb := table.New("t", "B", "C")
	tb.Append("Italy", "Madrid")
	tb.Append("Italy", "Madrid")
	tb.Append("Italy", "Rome")
	f := fd.New([]int{0}, []int{1})
	changes := EQ(tb, []fd.FD{f})
	if len(changes) != 1 || changes[0].To != "Madrid" {
		t.Fatalf("expected EQ to (incorrectly) prefer the majority: %v", changes)
	}
}

func TestEQNoViolationsNoChanges(t *testing.T) {
	tb := table.New("t", "B", "C")
	tb.Append("Italy", "Rome")
	tb.Append("Spain", "Madrid")
	if ch := EQ(tb, []fd.FD{fd.New([]int{0}, []int{1})}); len(ch) != 0 {
		t.Fatalf("changes = %v", ch)
	}
}

func TestEQMultipleFDsFixpoint(t *testing.T) {
	// A -> B and B -> C: repairing B can create/expose violations of B -> C.
	tb := table.New("t", "A", "B", "C")
	tb.Append("k1", "Italy", "Rome")
	tb.Append("k1", "Italia", "Rome2")
	tb.Append("k1", "Italy", "Rome")
	tb.Append("k2", "Italy", "Roma")
	fds := []fd.FD{fd.New([]int{0}, []int{1}), fd.New([]int{1}, []int{2})}
	EQ(tb, fds)
	for _, f := range fds {
		if !fd.Satisfied(tb, f) {
			t.Fatalf("fixpoint not reached for %v", f)
		}
	}
}

func TestEQDeterministic(t *testing.T) {
	mk := func() *table.Table {
		tb := table.New("t", "B", "C")
		tb.Append("Italy", "Rome")
		tb.Append("Italy", "Madrid") // tie: plurality broken lexicographically
		return tb
	}
	a, b := mk(), mk()
	EQ(a, []fd.FD{fd.New([]int{0}, []int{1})})
	EQ(b, []fd.FD{fd.New([]int{0}, []int{1})})
	if d, _ := a.Diff(b); len(d) != 0 {
		t.Fatal("EQ nondeterministic")
	}
	if a.Rows[0][1] != "Madrid" || a.Rows[1][1] != "Madrid" {
		t.Fatalf("tie-break picked %q", a.Rows[0][1])
	}
}

func TestSCARERepairsWithRedundancy(t *testing.T) {
	tb := table.New("t", "B", "C")
	for i := 0; i < 10; i++ {
		tb.Append("Italy", "Rome")
	}
	tb.Append("Italy", "Madrid") // error with strong counter-evidence
	for i := 0; i < 10; i++ {
		tb.Append("Spain", "Madrid")
	}
	changes := SCARE(tb, []int{0}, []int{1}, SCAREOptions{})
	found := false
	for _, c := range changes {
		if c.Row == 10 && c.To == "Rome" {
			found = true
		}
		if c.From == "Rome" || (c.From == "Madrid" && c.Row != 10) {
			t.Fatalf("SCARE corrupted a clean cell: %+v", c)
		}
	}
	if !found {
		t.Fatalf("SCARE missed the error: %v", changes)
	}
}

func TestSCARENoRedundancyNoRepair(t *testing.T) {
	// Without repetition the model has no evidence to beat current values —
	// the reason SCARE is N.A. on WikiTables/WebTables (§7.4).
	tb := table.New("t", "B", "C")
	tb.Append("Italy", "Rome")
	tb.Append("Spain", "Madrid")
	tb.Append("France", "Paris")
	if ch := SCARE(tb, []int{0}, []int{1}, SCAREOptions{}); len(ch) != 0 {
		t.Fatalf("SCARE changed cells without evidence: %v", ch)
	}
}

func TestSCAREThresholdControlsAggressiveness(t *testing.T) {
	mk := func() *table.Table {
		tb := table.New("t", "B", "C")
		for i := 0; i < 4; i++ {
			tb.Append("Italy", "Rome")
		}
		tb.Append("Italy", "Madrid")
		return tb
	}
	low := mk()
	chLow := SCARE(low, []int{0}, []int{1}, SCAREOptions{Threshold: 0.1})
	high := mk()
	chHigh := SCARE(high, []int{0}, []int{1}, SCAREOptions{Threshold: 50})
	if len(chLow) == 0 {
		t.Fatal("low threshold should repair")
	}
	if len(chHigh) != 0 {
		t.Fatalf("absurd threshold should block repairs: %v", chHigh)
	}
}

func TestSCAREDeterministicUnderShuffledInsertOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := [][]string{}
	for i := 0; i < 20; i++ {
		rows = append(rows, []string{"Italy", "Rome"})
	}
	rows = append(rows, []string{"Italy", "Madrid"})
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	tb := table.New("t", "B", "C")
	for _, r := range rows {
		tb.Append(r[0], r[1])
	}
	ch1 := SCARE(tb.Clone(), []int{0}, []int{1}, SCAREOptions{})
	ch2 := SCARE(tb.Clone(), []int{0}, []int{1}, SCAREOptions{})
	if len(ch1) != len(ch2) {
		t.Fatal("SCARE nondeterministic")
	}
}
