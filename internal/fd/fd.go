// Package fd models functional dependencies X → Y over tables, the rule
// language the EQ and SCARE baselines consume (§7.4, Appendix D).
package fd

import (
	"fmt"
	"sort"
	"strings"

	"katara/internal/table"
)

// FD is a functional dependency from LHS columns to RHS columns.
type FD struct {
	LHS []int
	RHS []int
}

// New builds an FD, defensively copying the column lists.
func New(lhs, rhs []int) FD {
	return FD{LHS: append([]int(nil), lhs...), RHS: append([]int(nil), rhs...)}
}

// String renders the FD with column indices.
func (f FD) String() string {
	return fmt.Sprintf("%s -> %s", joinCols(f.LHS), joinCols(f.RHS))
}

func joinCols(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("A%d", c)
	}
	return strings.Join(parts, ",")
}

// Key extracts the LHS key of a row.
func (f FD) Key(row []string) string {
	parts := make([]string, len(f.LHS))
	for i, c := range f.LHS {
		parts[i] = row[c]
	}
	return strings.Join(parts, "\x00")
}

// Violation is a set of rows sharing an LHS key but disagreeing on some RHS
// column.
type Violation struct {
	FD   FD
	Col  int   // the disagreeing RHS column
	Rows []int // all rows in the violating equivalence class
}

// Violations returns every violation of f in t, deterministic order.
func Violations(t *table.Table, f FD) []Violation {
	groups := map[string][]int{}
	var keys []string
	for i, row := range t.Rows {
		k := f.Key(row)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], i)
	}
	sort.Strings(keys)
	var out []Violation
	for _, k := range keys {
		rows := groups[k]
		if len(rows) < 2 {
			continue
		}
		for _, col := range f.RHS {
			first := t.Rows[rows[0]][col]
			for _, r := range rows[1:] {
				if t.Rows[r][col] != first {
					out = append(out, Violation{FD: f, Col: col, Rows: rows})
					break
				}
			}
		}
	}
	return out
}

// Satisfied reports whether t satisfies f.
func Satisfied(t *table.Table, f FD) bool {
	return len(Violations(t, f)) == 0
}
