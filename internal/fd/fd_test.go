package fd

import (
	"testing"

	"katara/internal/table"
)

func soccer() *table.Table {
	t := table.New("soccer", "A", "B", "C")
	t.Append("Rossi", "Italy", "Rome")
	t.Append("Klate", "S. Africa", "Pretoria")
	t.Append("Pirlo", "Italy", "Madrid") // violates B -> C
	return t
}

func TestViolationsDetected(t *testing.T) {
	f := New([]int{1}, []int{2})
	vs := Violations(soccer(), f)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	v := vs[0]
	if v.Col != 2 || len(v.Rows) != 2 {
		t.Fatalf("violation = %+v", v)
	}
	if Satisfied(soccer(), f) {
		t.Fatal("Satisfied must be false")
	}
}

func TestSatisfied(t *testing.T) {
	tb := soccer()
	tb.Rows[2][2] = "Rome"
	f := New([]int{1}, []int{2})
	if !Satisfied(tb, f) {
		t.Fatal("repaired table should satisfy B -> C")
	}
}

func TestMultiColumnLHS(t *testing.T) {
	tb := table.New("t", "A", "B", "C")
	tb.Append("x", "1", "p")
	tb.Append("x", "2", "q") // different composite key: no violation
	tb.Append("x", "1", "r") // same (x,1): violation
	f := New([]int{0, 1}, []int{2})
	vs := Violations(tb, f)
	if len(vs) != 1 || len(vs[0].Rows) != 2 {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestMultiRHS(t *testing.T) {
	tb := table.New("t", "A", "B", "C")
	tb.Append("x", "1", "p")
	tb.Append("x", "2", "p") // B differs
	f := New([]int{0}, []int{1, 2})
	vs := Violations(tb, f)
	if len(vs) != 1 || vs[0].Col != 1 {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestKeySeparatorSafety(t *testing.T) {
	// Values containing the separator byte must not alias keys.
	tb := table.New("t", "A", "B", "C")
	tb.Append("a\x00b", "c", "1")
	tb.Append("a", "\x00bc", "2")
	f := New([]int{0, 1}, []int{2})
	// These two rows have different (A,B) pairs but identical naive string
	// concatenation; with the NUL separator they collide — a known
	// limitation; verify behaviour is at least deterministic.
	vs1 := Violations(tb, f)
	vs2 := Violations(tb, f)
	if len(vs1) != len(vs2) {
		t.Fatal("nondeterministic violations")
	}
}

func TestStringer(t *testing.T) {
	f := New([]int{0, 1}, []int{2})
	if f.String() != "A0,A1 -> A2" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestNewCopies(t *testing.T) {
	lhs := []int{0}
	f := New(lhs, []int{1})
	lhs[0] = 9
	if f.LHS[0] != 0 {
		t.Fatal("New must copy its inputs")
	}
}
