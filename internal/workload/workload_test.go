package workload

import (
	"testing"

	"katara/internal/kbstats"
	"katara/internal/rdf"
	"katara/internal/world"
)

func testWorld() *world.World {
	return world.New(11, world.Config{
		Persons: 120, Players: 60, Clubs: 15, Universities: 40, Films: 30, Books: 30,
	})
}

func TestYagoLikeShape(t *testing.T) {
	w := testWorld()
	kb := YagoLike(w, 1)
	st := kbstats.New(kb.Store)
	if st.NumEntities() == 0 {
		t.Fatal("empty KB")
	}
	db := DBpediaLike(w, 1)
	stDB := kbstats.New(db.Store)
	// Yago's defining property vs DBpedia: far more types.
	if st.NumTypes() <= 2*stDB.NumTypes() {
		t.Fatalf("Yago types %d should dwarf DBpedia types %d", st.NumTypes(), stDB.NumTypes())
	}
	// Soccer relations are omitted from Yago entirely.
	if kb.PropFor(world.RPlaysFor) != rdf.NoID {
		t.Fatal("YagoLike must omit playsFor")
	}
	if db.PropFor(world.RPlaysFor) == rdf.NoID {
		t.Fatal("DBpediaLike must include playsFor")
	}
}

func TestTypeForHierarchyFallback(t *testing.T) {
	w := testWorld()
	db := DBpediaLike(w, 1)
	// DBpedia has no capital class: capital must resolve to City.
	capital := db.TypeFor(world.TCapital)
	if capital == rdf.NoID || capital != db.TypeID[world.TCity] {
		t.Fatal("capital should fall back to City in DBpedia")
	}
	yago := YagoLike(w, 1)
	if yago.TypeFor(world.TCapital) == yago.TypeID[world.TCity] {
		t.Fatal("Yago does model capital directly")
	}
	if db.TypeFor("no-such-type") != rdf.NoID {
		t.Fatal("unknown type must be NoID")
	}
}

func TestKBFactsMatchWorld(t *testing.T) {
	w := testWorld()
	for _, kb := range []*KB{YagoLike(w, 2), DBpediaLike(w, 2)} {
		st := kb.Store
		hasCap := kb.PropFor(world.RHasCapital)
		if hasCap == rdf.NoID {
			t.Fatalf("%s misses hasCapital", kb.Name)
		}
		n := 0
		for _, subj := range st.SubjectsWithPredicate(hasCap) {
			for _, obj := range st.Objects(subj, hasCap) {
				n++
				// Every KB fact must be true in the world.
				if !w.RelHolds(st.LabelOf(subj), world.RHasCapital, st.LabelOf(obj)) {
					t.Fatalf("%s asserts false fact %s hasCapital %s",
						kb.Name, st.LabelOf(subj), st.LabelOf(obj))
				}
			}
		}
		if n == 0 {
			t.Fatalf("%s has no capital facts", kb.Name)
		}
	}
}

func TestKBIncomplete(t *testing.T) {
	w := testWorld()
	kb := YagoLike(w, 3)
	// Coverage < 1 means some persons are missing.
	missing := 0
	for _, p := range w.Persons {
		if len(kb.Store.ResourcesLabeled(p.Name)) == 0 {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("YagoLike should be incomplete over persons")
	}
	if missing == len(w.Persons) {
		t.Fatal("YagoLike lost all persons")
	}
}

func TestKBDeterministic(t *testing.T) {
	w := testWorld()
	a := YagoLike(w, 5)
	b := YagoLike(w, 5)
	if a.Store.NumTriples() != b.Store.NumTriples() {
		t.Fatalf("nondeterministic KB: %d vs %d triples",
			a.Store.NumTriples(), b.Store.NumTriples())
	}
}

func TestPersonTableSpec(t *testing.T) {
	w := testWorld()
	spec := PersonTable(w, 7, 200)
	if spec.Table.NumRows() != 200 || spec.Table.NumCols() != 4 {
		t.Fatalf("shape = %dx%d", spec.Table.NumRows(), spec.Table.NumCols())
	}
	// Every row must be world-consistent.
	for _, row := range spec.Table.Rows {
		if !w.RelHolds(row[0], world.RNationality, row[1]) {
			t.Fatalf("row %v: bad nationality", row)
		}
		if !w.RelHolds(row[1], world.RHasCapital, row[2]) {
			t.Fatalf("row %v: bad capital", row)
		}
		if !w.RelHolds(row[1], world.RLanguage, row[3]) {
			t.Fatalf("row %v: bad language", row)
		}
	}
}

func TestSoccerAndUniversitySpecs(t *testing.T) {
	w := testWorld()
	soccer := SoccerTable(w, 7, 100)
	for _, row := range soccer.Table.Rows {
		if !w.RelHolds(row[0], world.RPlaysFor, row[1]) ||
			!w.RelHolds(row[1], world.RClubCity, row[2]) ||
			!w.RelHolds(row[1], world.RInLeague, row[3]) {
			t.Fatalf("bad soccer row %v", row)
		}
	}
	uni := UniversityTable(w, 7, 100)
	for _, row := range uni.Table.Rows {
		if !w.RelHolds(row[0], world.RUnivCity, row[1]) ||
			!w.RelHolds(row[0], world.RUnivState, row[2]) ||
			!w.RelHolds(row[1], world.RCityState, row[2]) {
			t.Fatalf("bad university row %v", row)
		}
	}
}

func TestSmallTableDatasets(t *testing.T) {
	w := testWorld()
	wiki := WikiTables(w, 9)
	if len(wiki.Specs) != 28 {
		t.Fatalf("WikiTables = %d tables, want 28", len(wiki.Specs))
	}
	web := WebTables(w, 9)
	if len(web.Specs) != 30 {
		t.Fatalf("WebTables = %d tables, want 30", len(web.Specs))
	}
	for _, spec := range append(wiki.Specs, web.Specs...) {
		if spec.Table.NumRows() == 0 {
			t.Fatalf("empty table %s", spec.Table.Name)
		}
		if len(spec.ColTypes) != spec.Table.NumCols() {
			t.Fatalf("%s: coltypes arity mismatch", spec.Table.Name)
		}
	}
}

func TestTruthPatternPerKB(t *testing.T) {
	w := testWorld()
	spec := SoccerTable(w, 7, 50)
	yago := YagoLike(w, 1)
	db := DBpediaLike(w, 1)
	yp := spec.TruthPattern(yago)
	dp := spec.TruthPattern(db)
	// Yago: soccer columns typed but no relationships (Fig. 10).
	if len(yp.Edges) != 0 {
		t.Fatalf("Yago soccer truth pattern has %d edges, want 0", len(yp.Edges))
	}
	if len(yp.Nodes) == 0 {
		t.Fatal("Yago soccer truth pattern should still type columns")
	}
	// DBpedia: relationships present.
	if len(dp.Edges) != 3 {
		t.Fatalf("DBpedia soccer truth pattern has %d edges, want 3", len(dp.Edges))
	}
}

func TestSpecOracle(t *testing.T) {
	w := testWorld()
	spec := PersonTable(w, 7, 20)
	kb := DBpediaLike(w, 1)
	o := SpecOracle{Spec: spec, KB: kb}
	if o.TrueType(0) != kb.TypeID[world.TPerson] {
		t.Fatal("TrueType(0) wrong")
	}
	if o.TrueRel(1, 2) != kb.PropFor(world.RHasCapital) {
		t.Fatal("TrueRel(1,2) wrong")
	}
	if o.TrueRel(2, 1) != rdf.NoID {
		t.Fatal("reverse rel should be NoID")
	}
	if o.TrueType(99) != rdf.NoID {
		t.Fatal("out-of-range column should be NoID")
	}
}

func TestWorldOracle(t *testing.T) {
	w := testWorld()
	kb := YagoLike(w, 1)
	o := WorldOracle{W: w, KB: kb}
	country := kb.TypeID[world.TCountry]
	if !o.TypeHolds("Italy", country) {
		t.Fatal("Italy should be a country")
	}
	if o.TypeHolds("Rome", country) {
		t.Fatal("Rome is not a country")
	}
	hasCap := kb.PropFor(world.RHasCapital)
	if !o.RelHolds("Italy", hasCap, "Rome") || o.RelHolds("Italy", hasCap, "Madrid") {
		t.Fatal("RelHolds broken")
	}
	// Noise classes answer through their captured predicates.
	wikicat := kb.Store.LookupTerm(rdf.IRI("yago:wikicat_Countries_in_Europe"))
	if wikicat == rdf.NoID {
		t.Fatal("expected wikicat class")
	}
	if !o.TypeHolds("Italy", wikicat) {
		t.Fatal("Italy is a country in Europe")
	}
	if o.TypeHolds("Japan", wikicat) {
		t.Fatal("Japan is not a country in Europe")
	}
}

func TestRelationalTablesScale(t *testing.T) {
	w := testWorld()
	ds := RelationalTables(w, 3, 0.01)
	if len(ds.Specs) != 3 {
		t.Fatalf("specs = %d", len(ds.Specs))
	}
	if got := ds.Specs[0].Table.NumRows(); got != 50 {
		t.Fatalf("scaled person rows = %d, want 50", got)
	}
}
