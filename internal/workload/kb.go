// Package workload builds the experimental inputs of §7: two knowledge
// bases — a Yago-like one (deep, noisy type hierarchy, patchy relation
// coverage) and a DBpedia-like one (small flat ontology, different coverage
// profile) — and the three dataset families (WikiTables, WebTables,
// RelationalTables), all as incomplete views over one internal/world ground
// truth. Ground-truth patterns and crowd oracles come from the same source.
package workload

import (
	"math/rand"
	"strings"

	"katara/internal/rdf"
	"katara/internal/world"
)

// KB wraps a store with the mapping between KB IRIs and the world's
// semantic vocabulary.
type KB struct {
	Name  string
	Store *rdf.Store
	// TypeID / PropID map semantic names to KB resources (absent names are
	// not covered by this KB).
	TypeID map[string]rdf.ID
	PropID map[string]rdf.ID
	// TypeName / PropName are the reverse maps.
	TypeName map[rdf.ID]string
	PropName map[rdf.ID]string
	// TypeCheck holds the real-world membership predicate of every declared
	// class, including noise classes with no semantic name — what the
	// simulated crowd consults when asked "Is value v a T?".
	TypeCheck map[rdf.ID]func(value string) bool
}

// TypeFor resolves a semantic type to this KB, walking up the semantic
// hierarchy when the specific type is not modelled (a "capital" column maps
// to City in a KB without a capital class). Returns rdf.NoID if nothing on
// the chain is covered.
func (kb *KB) TypeFor(semantic string) rdf.ID {
	for t := semantic; t != ""; t = world.TypeHierarchy[t] {
		if id, ok := kb.TypeID[t]; ok {
			return id
		}
	}
	return rdf.NoID
}

// PropFor resolves a semantic relationship, or rdf.NoID.
func (kb *KB) PropFor(semantic string) rdf.ID {
	if id, ok := kb.PropID[semantic]; ok {
		return id
	}
	return rdf.NoID
}

// Clone deep-copies the KB. rdf.Store.Clone does not preserve term IDs, so
// the semantic maps are re-resolved against the cloned store — an oracle
// built from the clone answers in the clone's ID space. (An oracle built
// from the original against a cloned store silently rejects everything;
// the propcheck harness exists to catch exactly that class of mix-up.)
func (kb *KB) Clone() *KB {
	st := kb.Store.Clone()
	// Every declared type/prop carries at least a label triple, so Intern
	// here is a pure lookup: no new IDs are minted and map iteration order
	// cannot influence the clone's ID assignment.
	remap := func(id rdf.ID) rdf.ID { return st.Intern(kb.Store.Term(id)) }
	out := &KB{
		Name:      kb.Name,
		Store:     st,
		TypeID:    make(map[string]rdf.ID, len(kb.TypeID)),
		PropID:    make(map[string]rdf.ID, len(kb.PropID)),
		TypeName:  make(map[rdf.ID]string, len(kb.TypeName)),
		PropName:  make(map[rdf.ID]string, len(kb.PropName)),
		TypeCheck: make(map[rdf.ID]func(string) bool, len(kb.TypeCheck)),
	}
	for sem, id := range kb.TypeID {
		out.TypeID[sem] = remap(id)
	}
	for sem, id := range kb.PropID {
		out.PropID[sem] = remap(id)
	}
	for id, name := range kb.TypeName {
		out.TypeName[remap(id)] = name
	}
	for id, name := range kb.PropName {
		out.PropName[remap(id)] = name
	}
	for id, check := range kb.TypeCheck {
		out.TypeCheck[remap(id)] = check
	}
	return out
}

// coverage holds the incompleteness knobs of one KB.
type coverage struct {
	entity map[string]float64 // semantic type -> fraction of entities present
	fact   map[string]float64 // semantic relation -> fraction of facts present
	omit   map[string]bool    // relations absent from the KB schema entirely
}

func (c coverage) entityP(t string) float64 {
	if v, ok := c.entity[t]; ok {
		return v
	}
	return 1
}

func (c coverage) factP(r string) float64 {
	if v, ok := c.fact[r]; ok {
		return v
	}
	return 1
}

// builder accumulates a KB under construction.
type builder struct {
	kb     *KB
	w      *world.World
	rng    *rand.Rand
	cov    coverage
	prefix string
	res    map[string]rdf.ID // world value -> resource (if materialised)
}

func newBuilder(name, prefix string, w *world.World, seed int64, cov coverage) *builder {
	st := rdf.New()
	return &builder{
		kb: &KB{
			Name:      name,
			Store:     st,
			TypeID:    map[string]rdf.ID{},
			PropID:    map[string]rdf.ID{},
			TypeName:  map[rdf.ID]string{},
			PropName:  map[rdf.ID]string{},
			TypeCheck: map[rdf.ID]func(string) bool{},
		},
		w:      w,
		rng:    rand.New(rand.NewSource(seed)),
		cov:    cov,
		prefix: prefix,
		res:    map[string]rdf.ID{},
	}
}

func iriSafe(s string) string {
	return strings.NewReplacer(" ", "_", ".", "", ",", "").Replace(s)
}

// declareType registers a class with its label and semantic name ("" for
// classes with no single world type). check overrides the real-world
// membership predicate; when nil and semantic is set, the world's own
// hierarchy check is used.
func (b *builder) declareType(iri, label, semantic string, check func(string) bool) rdf.ID {
	st := b.kb.Store
	id := st.Res(iri)
	st.Add(id, st.LabelID, st.Literal(label))
	if semantic != "" {
		if _, exists := b.kb.TypeID[semantic]; !exists {
			b.kb.TypeID[semantic] = id
			b.kb.TypeName[id] = semantic
		}
		if check == nil {
			sem := semantic
			check = func(v string) bool { return b.w.TypeHolds(v, sem) }
		}
	}
	if check != nil {
		b.kb.TypeCheck[id] = check
	}
	return id
}

func (b *builder) subclass(child, parent rdf.ID) {
	st := b.kb.Store
	st.Add(child, st.SubClassOfID, parent)
}

func (b *builder) declareProp(iri, label, semantic string) rdf.ID {
	st := b.kb.Store
	id := st.Res(iri)
	st.Add(id, st.LabelID, st.Literal(label))
	if semantic != "" {
		b.kb.PropID[semantic] = id
		b.kb.PropName[id] = semantic
	}
	return id
}

// entity materialises a world value as a typed, labelled resource if the
// coverage roll passes. Repeated calls reuse the resource.
func (b *builder) entity(value, semanticType string, extraTypes ...rdf.ID) rdf.ID {
	if id, ok := b.res[value]; ok {
		if id != rdf.NoID {
			for _, t := range extraTypes {
				b.kb.Store.Add(id, b.kb.Store.TypeID, t)
			}
		}
		return id
	}
	if b.rng.Float64() >= b.cov.entityP(semanticType) {
		b.res[value] = rdf.NoID
		return rdf.NoID
	}
	st := b.kb.Store
	id := st.Res(b.prefix + iriSafe(value))
	st.Add(id, st.LabelID, st.Literal(value))
	// Resolve through the semantic hierarchy: a KB without a capital class
	// still types capitals as City (the real DBpedia behaviour).
	if t := b.kb.TypeFor(semanticType); t != rdf.NoID {
		st.Add(id, st.TypeID, t)
	}
	for _, t := range extraTypes {
		st.Add(id, st.TypeID, t)
	}
	b.res[value] = id
	return id
}

// fact adds (subj, rel, obj-resource) if both ends exist, the relation is in
// the schema, and the coverage roll passes.
func (b *builder) fact(subj rdf.ID, rel string, obj rdf.ID) {
	if subj == rdf.NoID || obj == rdf.NoID || b.cov.omit[rel] {
		return
	}
	p, ok := b.kb.PropID[rel]
	if !ok {
		return
	}
	if b.rng.Float64() >= b.cov.factP(rel) {
		return
	}
	b.kb.Store.Add(subj, p, obj)
}

// literalFact is fact with a literal object.
func (b *builder) literalFact(subj rdf.ID, rel, lit string) {
	if subj == rdf.NoID || b.cov.omit[rel] {
		return
	}
	p, ok := b.kb.PropID[rel]
	if !ok {
		return
	}
	if b.rng.Float64() >= b.cov.factP(rel) {
		return
	}
	b.kb.Store.Add(subj, p, b.kb.Store.Literal(lit))
}

// populate walks the world once, emitting entities and facts. Which types
// each entity gets beyond its semantic class is supplied by extra.
func (b *builder) populate(extra func(kind, value string) []rdf.ID) {
	w := b.w
	ex := func(kind, value string) []rdf.ID {
		if extra == nil {
			return nil
		}
		return extra(kind, value)
	}

	for _, c := range w.Countries {
		country := b.entity(c.Name, world.TCountry, ex("country", c.Name)...)
		capital := b.entity(c.Capital, world.TCapital, ex("capital", c.Capital)...)
		lang := b.entity(c.Language, world.TLanguage)
		cont := b.entity(c.Continent, world.TContinent)
		b.fact(country, world.RHasCapital, capital)
		b.fact(country, world.RLanguage, lang)
		b.fact(country, world.RContinent, cont)
	}
	for _, s := range w.States {
		st := b.entity(s.Name, world.TState, ex("state", s.Name)...)
		cap := b.entity(s.Capital, world.TCapital, ex("capital", s.Capital)...)
		b.fact(cap, world.RCityState, st)
	}
	for _, c := range w.Cities {
		if c.Capital {
			continue // already added
		}
		city := b.entity(c.Name, world.TCity, ex("city", c.Name)...)
		// College towns carry their state (the §7 University workload).
		if st := w.StateOfCity(c.Name); st != "" {
			b.fact(city, world.RCityState, b.res[st])
		}
	}
	for _, cl := range w.Clubs {
		club := b.entity(cl.Name, world.TClub, ex("club", cl.Name)...)
		city := b.res[cl.City]
		league := b.entity(cl.League, world.TLeague)
		b.fact(club, world.RClubCity, city)
		b.fact(club, world.RInLeague, league)
	}
	for i := range w.Persons {
		p := &w.Persons[i]
		pl := w.PlayerOf(p.Name)
		kind, sem := "person", world.TPerson
		if pl != nil {
			kind, sem = "player", world.TPlayer
		}
		pe := b.entity(p.Name, sem, ex(kind, p.Name)...)
		b.fact(pe, world.RNationality, b.res[p.Country])
		b.fact(pe, world.RBornIn, b.res[p.BirthCity])
		b.literalFact(pe, world.RHeight, p.Height)
		if pl != nil {
			b.fact(pe, world.RPlaysFor, b.res[pl.Club])
		}
	}
	for _, u := range w.Universities {
		ue := b.entity(u.Name, world.TUniversity, ex("university", u.Name)...)
		b.fact(ue, world.RUnivCity, b.res[u.City])
		b.fact(ue, world.RUnivState, b.res[u.State])
	}
	for _, f := range w.Films {
		fe := b.entity(f.Title, world.TFilm, ex("film", f.Title)...)
		b.fact(fe, world.RDirector, b.res[f.Director])
		b.literalFact(fe, world.RFilmYear, f.Year)
	}
	for _, bk := range w.Books {
		be := b.entity(bk.Title, world.TBook, ex("book", bk.Title)...)
		b.fact(be, world.RAuthor, b.res[bk.Author])
		b.literalFact(be, world.RBookYear, bk.Year)
	}
}
