package workload

import (
	"fmt"
	"hash/fnv"

	"katara/internal/rdf"
	"katara/internal/world"
)

// catMember decides (deterministically per entity/category pair) whether a
// wikicat membership is asserted. Real Yago categories are curated and
// incomplete; the gaps are what let the clean wordnet classes out-support
// their noisy subcategories during discovery.
func catMember(value, label string) bool {
	h := fnv.New32a()
	h.Write([]byte(value))
	h.Write([]byte{0})
	h.Write([]byte(label))
	return h.Sum32()%100 < 80
}

// YagoLike builds the Yago-style KB: a deep WordNet-flavoured class
// hierarchy topped by owl:Thing, many auto-generated wikicat noise classes
// (Yago has 374K types; we scale the *shape*, not the count), sub-property
// links, and the coverage profile §7 implies — complete geography, good
// persons/universities, and crucially *no soccer relationships at all*
// (Fig. 10 / Table 6: "Yago cannot be used to repair Soccer because it does
// not have relationships for Soccer").
func YagoLike(w *world.World, seed int64) *KB {
	cov := coverage{
		entity: map[string]float64{
			world.TPerson:     0.85,
			world.TPlayer:     0.85,
			world.TClub:       0.90,
			world.TUniversity: 0.90,
			world.TFilm:       0.80,
			world.TBook:       0.75,
			world.TCity:       0.95,
		},
		fact: map[string]float64{
			world.RNationality: 0.85,
			world.RBornIn:      0.70,
			world.RHeight:      0.60,
			world.RLanguage:    0.90,
			world.RContinent:   0.90,
			world.RUnivCity:    0.80,
			world.RUnivState:   0.85,
			world.RCityState:   0.90,
			world.RDirector:    0.75,
			world.RAuthor:      0.70,
			world.RFilmYear:    0.60,
			world.RBookYear:    0.55,
		},
		omit: map[string]bool{
			world.RPlaysFor: true,
			world.RInLeague: true,
			world.RClubCity: true,
		},
	}
	b := newBuilder("Yago", "yago:", w, seed, cov)
	st := b.kb.Store

	// Deep WordNet-style chains. The wordnet ids are synthetic but the
	// naming mirrors the real Yago (§5.1's URI example). Every class gets a
	// real-world membership predicate so the simulated crowd can answer
	// about it.
	known := func(v string) bool { return w.Known(v) }
	anyOf := func(types ...string) func(string) bool {
		return func(v string) bool {
			for _, t := range types {
				if w.TypeHolds(v, t) {
					return true
				}
			}
			return false
		}
	}
	thing := b.declareType("owl:Thing", "thing", "", known)
	object := b.declareType("yago:wordnet_physical_entity_100001930", "physical entity", "", known)
	b.subclass(object, thing)
	abstraction := b.declareType("yago:wordnet_abstraction_100002137", "abstraction", "", known)
	b.subclass(abstraction, thing)

	seq := 0
	chain := func(semantic, label string, check func(string) bool, parents ...rdf.ID) rdf.ID {
		seq++
		id := b.declareType(fmt.Sprintf("yago:wordnet_%s_1%08d", iriSafe(label), seq), label, semantic, check)
		for _, p := range parents {
			b.subclass(id, p)
		}
		return id
	}
	location := chain(world.TLocation, "location", nil, object)
	region := chain("", "region", anyOf(world.TLocation), location)
	district := chain("", "administrative district", anyOf(world.TCountry, world.TState, world.TCity), region)
	country := chain(world.TCountry, "country", nil, district)
	municipality := chain("", "municipality", anyOf(world.TCity), district)
	city := chain(world.TCity, "city", nil, municipality)
	capital := chain(world.TCapital, "capital", nil, city)
	state := chain(world.TState, "state", nil, district)

	causalAgent := chain("", "causal agent", anyOf(world.TPerson), object)
	person := chain(world.TPerson, "person", nil, causalAgent)
	contestant := chain("", "contestant", anyOf(world.TPlayer), person)
	athlete := chain("", "athlete", anyOf(world.TPlayer), contestant)
	player := chain(world.TPlayer, "soccer player", nil, athlete)

	group := chain("", "social group", anyOf(world.TClub, world.TUniversity, world.TLeague), abstraction)
	organization := chain("", "organization", anyOf(world.TClub, world.TUniversity, world.TLeague), group)
	club := chain(world.TClub, "club", nil, organization)
	university := chain(world.TUniversity, "university", nil, organization)
	league := chain(world.TLeague, "league", nil, organization)

	communication := chain("", "communication", anyOf(world.TLanguage), abstraction)
	language := chain(world.TLanguage, "language", nil, communication)
	continent := chain(world.TContinent, "continent", nil, location)
	creation := chain("", "creation", anyOf(world.TFilm, world.TBook), object)
	film := chain(world.TFilm, "movie", nil, creation)
	book := chain(world.TBook, "book", nil, creation)
	_ = []rdf.ID{capital, state, player, club, university, league, language, continent, film, book}

	// Properties, with Yago-style sub-property generalisations.
	locatedIn := b.declareProp("yago:isLocatedIn", "isLocatedIn", "")
	hasCapital := b.declareProp("yago:hasCapital", "hasCapital", world.RHasCapital)
	st.Add(hasCapital, st.SubPropertyOfID, locatedIn)
	b.declareProp("yago:hasOfficialLanguage", "hasOfficialLanguage", world.RLanguage)
	onCont := b.declareProp("yago:isOnContinent", "isOnContinent", world.RContinent)
	st.Add(onCont, st.SubPropertyOfID, locatedIn)
	b.declareProp("yago:isCitizenOf", "isCitizenOf", world.RNationality)
	bornIn := b.declareProp("yago:wasBornIn", "wasBornIn", world.RBornIn)
	_ = bornIn
	b.declareProp("yago:hasHeight", "hasHeight", world.RHeight)
	inState := b.declareProp("yago:isCapitalOfState", "isCapitalOfState", world.RCityState)
	st.Add(inState, st.SubPropertyOfID, locatedIn)
	uCity := b.declareProp("yago:hasUniversityCity", "hasUniversityCity", world.RUnivCity)
	st.Add(uCity, st.SubPropertyOfID, locatedIn)
	uState := b.declareProp("yago:isUniversityInState", "isUniversityInState", world.RUnivState)
	st.Add(uState, st.SubPropertyOfID, locatedIn)
	b.declareProp("yago:directed", "directed", world.RDirector)
	b.declareProp("yago:wrote", "wrote", world.RAuthor)
	b.declareProp("yago:wasCreatedOnDate", "wasCreatedOnDate", world.RFilmYear)
	st.Add(b.kb.Store.Res("yago:wasPublishedOnDate"), st.LabelID, st.Literal("wasPublishedOnDate"))
	b.declareProp("yago:wasPublishedOnDate", "wasPublishedOnDate", world.RBookYear)

	// Wikicat noise classes: many narrow categories under the wordnet
	// classes, giving columns long ambiguous candidate lists — the property
	// that makes Yago harder than DBpedia in Table 2 / Figure 6.
	wikicat := map[string]rdf.ID{}
	cat := func(label string, parent rdf.ID, check func(string) bool) rdf.ID {
		if id, ok := wikicat[label]; ok {
			return id
		}
		id := b.declareType("yago:wikicat_"+iriSafe(label), label, "", check)
		b.subclass(id, parent)
		wikicat[label] = id
		return id
	}
	extraAll := func(kind, value string) []rdf.ID {
		switch kind {
		case "country":
			c := w.CountryOf(value)
			cont := c.Continent
			return []rdf.ID{
				cat("Countries in "+cont, country, func(v string) bool {
					cc := w.CountryOf(v)
					return cc != nil && cc.Continent == cont
				}),
				cat("Member states of the United Nations", country, func(v string) bool {
					return w.CountryOf(v) != nil
				}),
			}
		case "capital":
			if c := w.CityOf(value); c != nil && c.Country != "" {
				cont := continentOf(w, c.Country)
				return []rdf.ID{cat("Capitals in "+cont, capital, func(v string) bool {
					cc := w.CityOf(v)
					return cc != nil && cc.Capital && continentOf(w, cc.Country) == cont
				})}
			}
			return []rdf.ID{cat("State capitals in the United States", capital, func(v string) bool {
				return w.CityOf(v) == nil && w.StateOfCity(v) != ""
			})}
		case "city":
			c := w.CityOf(value)
			country := c.Country
			if country == "" { // college towns
				return []rdf.ID{cat("College towns in the United States", city, func(v string) bool {
					cc := w.CityOf(v)
					return cc != nil && cc.Country == "" && w.StateOfCity(v) != ""
				})}
			}
			return []rdf.ID{cat("Cities in "+country, city, func(v string) bool {
				cc := w.CityOf(v)
				return cc != nil && cc.Country == country
			})}
		case "player":
			p := w.PlayerOf(value)
			nat := p.Country
			return []rdf.ID{
				cat(nat+" footballers", player, func(v string) bool {
					pp := w.PlayerOf(v)
					return pp != nil && pp.Country == nat
				}),
				cat("Living people", person, func(v string) bool {
					return w.PersonOf(v) != nil
				}),
			}
		case "person":
			p := w.PersonOf(value)
			nat := p.Country
			return []rdf.ID{
				cat("People from "+nat, person, func(v string) bool {
					pp := w.PersonOf(v)
					return pp != nil && pp.Country == nat
				}),
				cat("Living people", person, func(v string) bool {
					return w.PersonOf(v) != nil
				}),
			}
		case "club":
			cl := w.ClubOf(value)
			cc := cityCountry(w, cl.City)
			return []rdf.ID{cat("Football clubs in "+cc, club, func(v string) bool {
				c2 := w.ClubOf(v)
				return c2 != nil && cityCountry(w, c2.City) == cc
			})}
		case "university":
			u := w.UniversityOf(value)
			st := u.State
			return []rdf.ID{cat("Universities in "+st, university, func(v string) bool {
				u2 := w.UniversityOf(v)
				return u2 != nil && u2.State == st
			})}
		case "film":
			f := w.FilmOf(value)
			cc := f.Country
			return []rdf.ID{cat(cc+" films", film, func(v string) bool {
				f2 := w.FilmOf(v)
				return f2 != nil && f2.Country == cc
			})}
		case "book":
			return []rdf.ID{cat("Novels", book, func(v string) bool {
				return w.BookOf(v) != nil
			})}
		case "state":
			return []rdf.ID{cat("States of the United States", state, func(v string) bool {
				return w.StateOf(v) != nil
			})}
		}
		return nil
	}
	// Assert each category membership for ~80% of entities only.
	extra := func(kind, value string) []rdf.ID {
		var out []rdf.ID
		for _, id := range extraAll(kind, value) {
			if catMember(value, b.kb.Store.LabelOf(id)) {
				out = append(out, id)
			}
		}
		return out
	}
	b.populate(extra)
	return b.kb
}

func continentOf(w *world.World, country string) string {
	if c := w.CountryOf(country); c != nil {
		return c.Continent
	}
	return "the world"
}

func cityCountry(w *world.World, city string) string {
	if c := w.CityOf(city); c != nil && c.Country != "" {
		return c.Country
	}
	return "the United States"
}
