package workload

import (
	"fmt"
	"math/rand"

	"katara/internal/pattern"
	"katara/internal/rdf"
	"katara/internal/table"
	"katara/internal/world"
)

// RelSpec is a ground-truth relationship between two columns, in the
// world's semantic vocabulary.
type RelSpec struct {
	From, To int
	Name     string
	// Literal marks relationships whose object column holds literals
	// (heights, years) — the Q²_rels case.
	Literal bool
}

// TableSpec is one table plus its ground truth.
type TableSpec struct {
	Table *table.Table
	// ColTypes holds the semantic type of each column ("" = no entity type,
	// e.g. numeric columns).
	ColTypes []string
	Rels     []RelSpec
}

// Dataset is a named family of table specs (§7's WikiTables, WebTables and
// RelationalTables).
type Dataset struct {
	Name  string
	Specs []*TableSpec
}

// TruthPattern maps a spec's semantic ground truth into one KB's
// vocabulary. Columns and relationships the KB does not model are dropped —
// ground truth is KB-specific, exactly as in the paper where tables "were
// manually annotated using types and relationships in Yago as well as
// DBPedia" (§7, Table 1).
func (s *TableSpec) TruthPattern(kb *KB) *pattern.Pattern {
	p := &pattern.Pattern{}
	hasNode := map[int]bool{}
	for col, sem := range s.ColTypes {
		if sem == "" {
			continue
		}
		if id := kb.TypeFor(sem); id != rdf.NoID {
			p.Nodes = append(p.Nodes, pattern.Node{Column: col, Type: id})
			hasNode[col] = true
		}
	}
	for _, r := range s.Rels {
		prop := kb.PropFor(r.Name)
		if prop == rdf.NoID {
			continue
		}
		// A relationship is only annotatable if its subject column is.
		if !hasNode[r.From] {
			continue
		}
		if !r.Literal && !hasNode[r.To] {
			continue
		}
		p.Edges = append(p.Edges, pattern.Edge{From: r.From, To: r.To, Prop: prop})
		if r.Literal && !hasNode[r.To] {
			p.Nodes = append(p.Nodes, pattern.Node{Column: r.To, Type: rdf.NoID})
		}
	}
	return p
}

// opaque returns opaque column names A, B, C, ... (§4.1: schemas are
// unavailable or unusable).
func opaque(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('A' + i%26))
		if i >= 26 {
			out[i] += fmt.Sprint(i / 26)
		}
	}
	return out
}

// --- RelationalTables (§7: Person, Soccer, University) ---

// PersonTable builds the Person relation: person ⋈ country giving
// (name, country, capital, language). FDs (Appendix D): A → B, C, D.
// The paper's 316K-row table aggregates extracted bios, so the same person
// recurs; we sample with replacement from a pool of ~rows/4 persons to
// reproduce that redundancy (what gives EQ its high Person recall in
// Table 6).
func PersonTable(w *world.World, seed int64, rows int) *TableSpec {
	rng := rand.New(rand.NewSource(seed))
	t := table.New("Person", opaque(4)...)
	t.Grow(rows)
	poolSize := rows / 4
	if poolSize < 1 {
		poolSize = 1
	}
	if poolSize > len(w.Persons) {
		poolSize = len(w.Persons)
	}
	perm := rng.Perm(len(w.Persons))[:poolSize]
	for i := 0; i < rows; i++ {
		p := w.Persons[perm[rng.Intn(poolSize)]]
		c := w.CountryOf(p.Country)
		t.Append(p.Name, c.Name, c.Capital, c.Language)
	}
	return &TableSpec{
		Table:    t,
		ColTypes: []string{world.TPerson, world.TCountry, world.TCapital, world.TLanguage},
		Rels: []RelSpec{
			{From: 0, To: 1, Name: world.RNationality},
			{From: 1, To: 2, Name: world.RHasCapital},
			{From: 1, To: 3, Name: world.RLanguage},
		},
	}
}

// SoccerTable builds the Soccer relation: (player, club, club city,
// league). FDs: A → B; B → C, D. Players are distinct (the paper's 1625
// players are unique scrapes), so redundancy exists only through shared
// clubs — the property that caps EQ/SCARE recall in Table 6.
func SoccerTable(w *world.World, seed int64, rows int) *TableSpec {
	rng := rand.New(rand.NewSource(seed))
	t := table.New("Soccer", opaque(4)...)
	t.Grow(rows)
	perm := rng.Perm(len(w.Players))
	for i := 0; i < rows; i++ {
		p := w.Players[perm[i%len(perm)]]
		cl := w.ClubOf(p.Club)
		t.Append(p.Name, cl.Name, cl.City, cl.League)
	}
	return &TableSpec{
		Table:    t,
		ColTypes: []string{world.TPlayer, world.TClub, world.TCity, world.TLeague},
		Rels: []RelSpec{
			{From: 0, To: 1, Name: world.RPlaysFor},
			{From: 1, To: 2, Name: world.RClubCity},
			{From: 1, To: 3, Name: world.RInLeague},
		},
	}
}

// UniversityTable builds the University relation: (university, city,
// state). FDs: A → B, C and B → C. Universities are distinct (the paper's
// 1357 US universities are unique), so the A-keyed FD offers EQ almost no
// equivalence classes — its Table 6 recall collapse.
func UniversityTable(w *world.World, seed int64, rows int) *TableSpec {
	rng := rand.New(rand.NewSource(seed))
	t := table.New("University", opaque(3)...)
	t.Grow(rows)
	perm := rng.Perm(len(w.Universities))
	for i := 0; i < rows; i++ {
		u := w.Universities[perm[i%len(perm)]]
		t.Append(u.Name, u.City, u.State)
	}
	return &TableSpec{
		Table:    t,
		ColTypes: []string{world.TUniversity, world.TCity, world.TState},
		Rels: []RelSpec{
			{From: 0, To: 1, Name: world.RUnivCity},
			{From: 0, To: 2, Name: world.RUnivState},
			{From: 1, To: 2, Name: world.RCityState},
		},
	}
}

// The paper's RelationalTables sizes (§7 Table 1): Person aggregates 316K
// extracted bios; Soccer and University are unique scrapes.
const (
	PaperPersonRows     = 316000
	PaperSoccerRows     = 1625
	PaperUniversityRows = 1357
)

// RelationalTables bundles the three relational specs at the given scale.
// Scale 1.0 yields 5000/1625/1357 — Person's convenient single-machine
// operating point, a clamp of the paper's 316K (which the paper itself
// cleaned on a 30-machine cluster purely for wall-clock). The scale is not
// capped: ~63.2 reaches the full 316K, and RelationalTablesPaper is the
// shorthand for exactly the paper's sizes.
func RelationalTables(w *world.World, seed int64, scale float64) *Dataset {
	if scale <= 0 {
		scale = 1
	}
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 10 {
			v = 10
		}
		return v
	}
	return &Dataset{
		Name: "RelationalTables",
		Specs: []*TableSpec{
			PersonTable(w, seed+1, n(5000)),
			SoccerTable(w, seed+2, n(1625)),
			UniversityTable(w, seed+3, n(1357)),
		},
	}
}

// RelationalTablesPaper builds the three relational specs at exactly the
// paper's row counts — Person at the full 316K rows (§7 Table 1), Soccer
// and University at their natural sizes. Same seeds as RelationalTables so
// Soccer/University are identical to a scale-1.0 dataset.
func RelationalTablesPaper(w *world.World, seed int64) *Dataset {
	return &Dataset{
		Name: "RelationalTables",
		Specs: []*TableSpec{
			PersonTable(w, seed+1, PaperPersonRows),
			SoccerTable(w, seed+2, PaperSoccerRows),
			UniversityTable(w, seed+3, PaperUniversityRows),
		},
	}
}

// --- WikiTables / WebTables: many small schemaless tables ---

// tableKind enumerates the small-table templates.
type tableKind int

const (
	kindCountryCapital tableKind = iota
	kindPlayerCountry
	kindFilmDirector
	kindBookAuthor
	kindUniversityState
	kindClubCity
	kindCountryLanguage
	kindPersonBirth
	numKinds
)

// smallTable builds one small table of the given kind with ~rows rows.
func smallTable(w *world.World, rng *rand.Rand, kind tableKind, name string, rows int) *TableSpec {
	switch kind {
	case kindCountryCapital:
		t := table.New(name, opaque(3)...)
		perm := rng.Perm(len(w.Countries))
		for i := 0; i < rows && i < len(perm); i++ {
			c := w.Countries[perm[i]]
			t.Append(c.Name, c.Capital, c.Continent)
		}
		return &TableSpec{
			Table:    t,
			ColTypes: []string{world.TCountry, world.TCapital, world.TContinent},
			Rels: []RelSpec{
				{From: 0, To: 1, Name: world.RHasCapital},
				{From: 0, To: 2, Name: world.RContinent},
			},
		}
	case kindPlayerCountry:
		t := table.New(name, opaque(3)...)
		perm := rng.Perm(len(w.Players))
		for i := 0; i < rows && i < len(perm); i++ {
			p := w.Players[perm[i]]
			t.Append(p.Name, p.Country, p.Height)
		}
		return &TableSpec{
			Table:    t,
			ColTypes: []string{world.TPlayer, world.TCountry, ""},
			Rels: []RelSpec{
				{From: 0, To: 1, Name: world.RNationality},
				{From: 0, To: 2, Name: world.RHeight, Literal: true},
			},
		}
	case kindFilmDirector:
		t := table.New(name, opaque(3)...)
		perm := rng.Perm(len(w.Films))
		for i := 0; i < rows && i < len(perm); i++ {
			f := w.Films[perm[i]]
			t.Append(f.Title, f.Director, f.Year)
		}
		return &TableSpec{
			Table:    t,
			ColTypes: []string{world.TFilm, world.TPerson, ""},
			Rels: []RelSpec{
				{From: 0, To: 1, Name: world.RDirector},
				{From: 0, To: 2, Name: world.RFilmYear, Literal: true},
			},
		}
	case kindBookAuthor:
		t := table.New(name, opaque(3)...)
		perm := rng.Perm(len(w.Books))
		for i := 0; i < rows && i < len(perm); i++ {
			b := w.Books[perm[i]]
			t.Append(b.Title, b.Author, b.Year)
		}
		return &TableSpec{
			Table:    t,
			ColTypes: []string{world.TBook, world.TPerson, ""},
			Rels: []RelSpec{
				{From: 0, To: 1, Name: world.RAuthor},
				{From: 0, To: 2, Name: world.RBookYear, Literal: true},
			},
		}
	case kindUniversityState:
		t := table.New(name, opaque(3)...)
		perm := rng.Perm(len(w.Universities))
		for i := 0; i < rows && i < len(perm); i++ {
			u := w.Universities[perm[i]]
			t.Append(u.Name, u.City, u.State)
		}
		return &TableSpec{
			Table:    t,
			ColTypes: []string{world.TUniversity, world.TCity, world.TState},
			Rels: []RelSpec{
				{From: 0, To: 1, Name: world.RUnivCity},
				{From: 0, To: 2, Name: world.RUnivState},
			},
		}
	case kindClubCity:
		t := table.New(name, opaque(3)...)
		perm := rng.Perm(len(w.Clubs))
		for i := 0; i < rows && i < len(perm); i++ {
			c := w.Clubs[perm[i]]
			t.Append(c.Name, c.City, c.League)
		}
		return &TableSpec{
			Table:    t,
			ColTypes: []string{world.TClub, world.TCity, world.TLeague},
			Rels: []RelSpec{
				{From: 0, To: 1, Name: world.RClubCity},
				{From: 0, To: 2, Name: world.RInLeague},
			},
		}
	case kindCountryLanguage:
		t := table.New(name, opaque(2)...)
		perm := rng.Perm(len(w.Countries))
		for i := 0; i < rows && i < len(perm); i++ {
			c := w.Countries[perm[i]]
			t.Append(c.Name, c.Language)
		}
		return &TableSpec{
			Table:    t,
			ColTypes: []string{world.TCountry, world.TLanguage},
			Rels:     []RelSpec{{From: 0, To: 1, Name: world.RLanguage}},
		}
	default: // kindPersonBirth
		t := table.New(name, opaque(3)...)
		perm := rng.Perm(len(w.Persons))
		for i := 0; i < rows && i < len(perm); i++ {
			p := w.Persons[perm[i]]
			t.Append(p.Name, p.BirthCity, p.Country)
		}
		return &TableSpec{
			Table:    t,
			ColTypes: []string{world.TPerson, world.TCity, world.TCountry},
			Rels: []RelSpec{
				{From: 0, To: 1, Name: world.RBornIn},
				{From: 0, To: 2, Name: world.RNationality},
			},
		}
	}
}

// WikiTables builds 28 small tables averaging ~32 rows (§7).
func WikiTables(w *world.World, seed int64) *Dataset {
	return smallTables(w, seed, "WikiTables", 28, 32)
}

// WebTables builds 30 small tables averaging ~67 rows (§7).
func WebTables(w *world.World, seed int64) *Dataset {
	return smallTables(w, seed, "WebTables", 30, 67)
}

func smallTables(w *world.World, seed int64, name string, count, avgRows int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: name}
	for i := 0; i < count; i++ {
		kind := tableKind(i % int(numKinds))
		rows := avgRows/2 + rng.Intn(avgRows) // mean ≈ avgRows
		tname := fmt.Sprintf("%s-%02d", name, i)
		d.Specs = append(d.Specs, smallTable(w, rng, kind, tname, rows))
	}
	return d
}
