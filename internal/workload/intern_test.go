package workload

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestInternerRoundTripsCollisionLabels drives the table interner with the
// adversarial value distribution InjectLabelCollisions produces: labels one
// character edit away from real table values. Near-duplicates are exactly
// where a sloppy interner would go wrong (sharing a code across values that
// merely normalise alike), so the test pins that dictionary codes are
// assigned per *exact* string and every cell round-trips byte-identically.
// It lives here rather than in internal/table because workload imports
// table — the interner package cannot exercise the adversary directly.
func TestInternerRoundTripsCollisionLabels(t *testing.T) {
	w := testWorld()
	kb := DBpediaLike(w, 5)
	spec := PersonTable(w, 6, 200)
	values := spec.Table.ColumnValues(0)
	values = append(values, spec.Table.ColumnValues(1)...)

	rng := rand.New(rand.NewSource(9))
	added := InjectLabelCollisions(kb, rng, values, 60)
	if added == 0 {
		t.Fatal("no collisions injected; the test exercises nothing")
	}
	var decoys []string
	for i := 0; i < 60; i++ {
		decoys = append(decoys, kb.Store.LabelsOf(kb.Store.Res(fmt.Sprintf("adv:collision_%d", i)))...)
	}
	if len(decoys) != added {
		t.Fatalf("harvested %d decoy labels, want %d", len(decoys), added)
	}

	// Interleave originals with their near-duplicate decoys, repeating rows
	// so signature grouping has real work to do.
	tb := spec.Table.Clone()
	for i, d := range decoys {
		orig := values[i%len(values)]
		tb.Append(d, orig, d, d)
		tb.Append(d, orig, d, d) // exact duplicate: must share a group
	}

	in := tb.Interned()
	for i := range tb.Rows {
		for j := range tb.Rows[i] {
			if got := in.Dict(j).Value(in.Code(i, j)); got != tb.Rows[i][j] {
				t.Fatalf("cell (%d,%d) round-tripped %q, want %q", i, j, got, tb.Rows[i][j])
			}
		}
	}
	// The decoy rows were appended in exact-duplicate pairs: each pair must
	// collapse into one signature group, and a decoy label must never share
	// a dictionary code with the value it imitates.
	base := spec.Table.NumRows()
	for k := 0; k < len(decoys); k++ {
		r := base + 2*k
		if !in.RowsEqual(r, r+1) {
			t.Fatalf("duplicate decoy rows %d/%d landed in different groups", r, r+1)
		}
		d, orig := decoys[k], values[k%len(values)]
		if d != orig && in.Dict(0).Code(d) == in.Dict(0).Code(orig) && in.Dict(0).Code(d) >= 0 {
			t.Fatalf("near-duplicates %q and %q share a dictionary code", d, orig)
		}
	}
}
