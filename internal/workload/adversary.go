package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// InjectLabelCollisions plants n decoy resources in the KB whose labels are
// near-duplicates of real table values — the adversarial value distribution
// that table-to-KB matchers (MTab, pattern-driven cleaners) are known to
// fail on. Each decoy takes a mutated label (character swap, dropped rune or
// doubled rune) of a sampled value and one of the KB's declared classes, so
// fuzzy label resolution now sees plausible homonyms competing with the true
// resource. Ground truth is untouched: the decoys exist only in the KB, the
// world still answers crowd questions, which is exactly what makes the
// collisions adversarial for discovery and annotation.
//
// The mutation stream is drawn entirely from rng and classes are visited in
// sorted semantic order, so the same (kb, rng state, values) triple always
// yields the same decoys. It returns the number of decoys actually added
// (values too short to mutate are skipped).
func InjectLabelCollisions(kb *KB, rng *rand.Rand, values []string, n int) int {
	if n <= 0 || len(values) == 0 {
		return 0
	}
	semantics := make([]string, 0, len(kb.TypeID))
	for sem := range kb.TypeID {
		semantics = append(semantics, sem)
	}
	sort.Strings(semantics)
	if len(semantics) == 0 {
		return 0
	}
	st := kb.Store
	added := 0
	for i := 0; i < n; i++ {
		v := values[rng.Intn(len(values))]
		label := mutateLabel(v, rng)
		if label == "" || label == v {
			continue
		}
		typ := kb.TypeID[semantics[rng.Intn(len(semantics))]]
		id := st.Res(fmt.Sprintf("adv:collision_%d", i))
		st.Add(id, st.LabelID, st.Literal(label))
		st.Add(id, st.TypeID, typ)
		added++
	}
	return added
}

// mutateLabel applies one random single-character edit, mirroring
// table.typo but driven by the caller's rng so workload stays the only
// owner of the adversary's determinism.
func mutateLabel(s string, rng *rand.Rand) string {
	r := []rune(s)
	if len(r) < 2 {
		return ""
	}
	i := rng.Intn(len(r))
	switch rng.Intn(3) {
	case 0: // swap with neighbour
		j := i + 1
		if j >= len(r) {
			j = i - 1
		}
		r[i], r[j] = r[j], r[i]
	case 1: // deletion
		r = append(r[:i], r[i+1:]...)
	default: // duplication
		r = append(r[:i+1], r[i:]...)
	}
	return string(r)
}
