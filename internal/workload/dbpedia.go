package workload

import (
	"katara/internal/world"
)

// DBpediaLike builds the DBpedia-style KB: a small, flat ontology (the real
// DBpedia has 865 classes vs Yago's 374K — here the *ratio* of class counts
// is preserved against YagoLike), no capital class (capital columns resolve
// to City), and a coverage profile complementary to Yago's: persons are
// richer (Table 6: Person recall 0.94 vs 0.80), soccer relationships exist
// but are sparse (recall 0.29), and universities are poorly covered
// (recall 0.18).
func DBpediaLike(w *world.World, seed int64) *KB {
	cov := coverage{
		entity: map[string]float64{
			world.TPerson:     0.95,
			world.TPlayer:     0.90,
			world.TClub:       0.85,
			world.TUniversity: 0.65,
			world.TFilm:       0.90,
			world.TBook:       0.90,
			world.TCity:       0.95,
		},
		fact: map[string]float64{
			world.RNationality: 0.93,
			world.RBornIn:      0.85,
			world.RHeight:      0.80,
			world.RLanguage:    0.95,
			world.RContinent:   0.95,
			world.RPlaysFor:    0.70,
			world.RInLeague:    0.80,
			world.RClubCity:    0.80,
			world.RUnivCity:    0.50,
			world.RUnivState:   0.45,
			world.RCityState:   0.60,
			world.RDirector:    0.90,
			world.RAuthor:      0.90,
			world.RFilmYear:    0.85,
			world.RBookYear:    0.85,
		},
		omit: map[string]bool{},
	}
	b := newBuilder("DBpedia", "dbp:", w, seed, cov)
	st := b.kb.Store

	thing := b.declareType("owl:Thing", "Thing", "", w.Known)
	sub := func(semantic, label string, parentSem string) {
		id := b.declareType("dbo:"+iriSafe(label), label, semantic, nil)
		parent := thing
		if parentSem != "" {
			parent = b.kb.TypeID[parentSem]
		}
		b.subclass(id, parent)
	}
	sub(world.TPerson, "Person", "")
	sub(world.TPlayer, "SoccerPlayer", world.TPerson)
	sub(world.TLocation, "Place", "")
	sub(world.TCity, "City", world.TLocation)
	sub(world.TCountry, "Country", world.TLocation)
	sub(world.TState, "AdministrativeRegion", world.TLocation)
	sub(world.TContinent, "Continent", world.TLocation)
	sub(world.TLanguage, "Language", "")
	sub(world.TClub, "SoccerClub", "")
	sub(world.TLeague, "SoccerLeague", "")
	sub(world.TUniversity, "University", "")
	sub(world.TFilm, "Film", "")
	sub(world.TBook, "Book", "")
	// NOTE: no Capital class — TypeFor(capital) resolves to City.

	b.declareProp("dbo:capital", "capital", world.RHasCapital)
	b.declareProp("dbo:officialLanguage", "officialLanguage", world.RLanguage)
	b.declareProp("dbo:continent", "continent", world.RContinent)
	b.declareProp("dbo:nationality", "nationality", world.RNationality)
	b.declareProp("dbo:birthPlace", "birthPlace", world.RBornIn)
	b.declareProp("dbo:height", "height", world.RHeight)
	b.declareProp("dbo:team", "team", world.RPlaysFor)
	b.declareProp("dbo:league", "league", world.RInLeague)
	b.declareProp("dbo:ground", "ground", world.RClubCity)
	b.declareProp("dbo:campus", "campus", world.RUnivCity)
	b.declareProp("dbo:state", "state", world.RUnivState)
	b.declareProp("dbo:capitalOf", "capitalOf", world.RCityState)
	b.declareProp("dbo:director", "director", world.RDirector)
	b.declareProp("dbo:author", "author", world.RAuthor)
	b.declareProp("dbo:releaseYear", "releaseYear", world.RFilmYear)
	b.declareProp("dbo:publicationYear", "publicationYear", world.RBookYear)
	_ = st

	b.populate(nil)
	return b.kb
}
