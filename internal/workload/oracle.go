package workload

import (
	"katara/internal/rdf"
	"katara/internal/world"
)

// SpecOracle answers pattern-validation questions (validation.Oracle) from
// a spec's ground truth, translated into one KB's vocabulary.
type SpecOracle struct {
	Spec *TableSpec
	KB   *KB
}

// TrueType returns the KB type of column col, or rdf.NoID.
func (o SpecOracle) TrueType(col int) rdf.ID {
	if col < 0 || col >= len(o.Spec.ColTypes) || o.Spec.ColTypes[col] == "" {
		return rdf.NoID
	}
	return o.KB.TypeFor(o.Spec.ColTypes[col])
}

// TrueRel returns the KB property relating (from, to), or rdf.NoID.
func (o SpecOracle) TrueRel(from, to int) rdf.ID {
	for _, r := range o.Spec.Rels {
		if r.From == from && r.To == to {
			return o.KB.PropFor(r.Name)
		}
	}
	return rdf.NoID
}

// WorldOracle answers fact-verification questions (annotation.FactOracle)
// from the world's ground truth, translating KB IRIs back to semantics.
type WorldOracle struct {
	W  *world.World
	KB *KB
}

// TypeHolds consults the class's real-world membership predicate.
func (o WorldOracle) TypeHolds(value string, typ rdf.ID) bool {
	if check := o.KB.TypeCheck[typ]; check != nil {
		return check(value)
	}
	if sem := o.KB.TypeName[typ]; sem != "" {
		return o.W.TypeHolds(value, sem)
	}
	return false
}

// RelHolds consults the world's fact base.
func (o WorldOracle) RelHolds(subj string, prop rdf.ID, obj string) bool {
	sem := o.KB.PropName[prop]
	if sem == "" {
		return false
	}
	return o.W.RelHolds(subj, sem, obj)
}

// PathHolds verifies a §9 multi-hop fact against the world
// (annotation.PathOracle).
func (o WorldOracle) PathHolds(subj string, props []rdf.ID, obj string) bool {
	rels := make([]string, len(props))
	for i, p := range props {
		sem := o.KB.PropName[p]
		if sem == "" {
			return false
		}
		rels[i] = sem
	}
	return o.W.PathHolds(subj, rels, obj)
}
