// Package metrics implements the paper's evaluation metrics (§7.1, §7.4):
// pattern precision/recall with hierarchy partial credit 1/(s+1), top-k
// F-measure, and repair precision/recall/F-measure.
package metrics

import (
	"katara/internal/pattern"
	"katara/internal/rdf"
)

// PR is a precision/recall pair.
type PR struct {
	Precision, Recall float64
}

// F returns the harmonic mean of precision and recall.
func (pr PR) F() float64 {
	if pr.Precision+pr.Recall == 0 {
		return 0
	}
	return 2 * pr.Precision * pr.Recall / (pr.Precision + pr.Recall)
}

// typeScore returns the §7.1 credit for predicting `pred` when the truth is
// `truth`: 1 if equal, 1/(s+1) if pred is a strict superclass s steps above
// truth, 0 otherwise.
func typeScore(kb *rdf.Store, pred, truth rdf.ID) float64 {
	if pred == truth {
		return 1
	}
	if pred == rdf.NoID || truth == rdf.NoID {
		return 0
	}
	if s := stepsUp(kb, truth, pred, kb.SubClassOfID); s > 0 {
		return 1 / float64(s+1)
	}
	return 0
}

func relScore(kb *rdf.Store, pred, truth rdf.ID) float64 {
	if pred == truth {
		return 1
	}
	if pred == rdf.NoID || truth == rdf.NoID {
		return 0
	}
	if s := stepsUp(kb, truth, pred, kb.SubPropertyOfID); s > 0 {
		return 1 / float64(s+1)
	}
	return 0
}

// stepsUp returns the minimal number of subClassOf/subPropertyOf hops from
// `from` up to `to`, or 0 if `to` is not an ancestor.
func stepsUp(kb *rdf.Store, from, to, via rdf.ID) int {
	type qe struct {
		node rdf.ID
		dist int
	}
	queue := []qe{{from, 0}}
	seen := map[rdf.ID]bool{from: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, up := range kb.Objects(cur.node, via) {
			if up == to {
				return cur.dist + 1
			}
			if !seen[up] {
				seen[up] = true
				queue = append(queue, qe{up, cur.dist + 1})
			}
		}
	}
	return 0
}

// PatternPR scores a predicted pattern against the ground truth per §7.1:
// precision divides the summed credits by the number of types and
// relationships in the prediction, recall by the number in the ground truth.
func PatternPR(kb *rdf.Store, pred, truth *pattern.Pattern) PR {
	if pred == nil {
		return PR{}
	}
	credit := 0.0
	predCount := 0
	for _, n := range pred.Nodes {
		if n.Type == rdf.NoID {
			continue
		}
		predCount++
		credit += typeScore(kb, n.Type, truth.TypeOf(n.Column))
	}
	for _, e := range pred.Edges {
		predCount++
		var truthProp rdf.ID = rdf.NoID
		if te := truth.EdgeBetween(e.From, e.To); te != nil {
			truthProp = te.Prop
		}
		credit += relScore(kb, e.Prop, truthProp)
	}
	truthCount := 0
	for _, n := range truth.Nodes {
		if n.Type != rdf.NoID {
			truthCount++
		}
	}
	truthCount += len(truth.Edges)

	pr := PR{}
	if predCount > 0 {
		pr.Precision = credit / float64(predCount)
	}
	if truthCount > 0 {
		pr.Recall = credit / float64(truthCount)
	}
	return pr
}

// BestTopKF returns the best F-measure among the top-k patterns — the
// Figure 6/11 metric ("the F value of the top-k patterns is defined as the
// best value of F from one of the top-k patterns").
func BestTopKF(kb *rdf.Store, topk []*pattern.Pattern, truth *pattern.Pattern) float64 {
	best := 0.0
	for _, p := range topk {
		if f := PatternPR(kb, p, truth).F(); f > best {
			best = f
		}
	}
	return best
}

// RepairCounts tallies a repair experiment (§7.4's metrics).
type RepairCounts struct {
	Changes        int // #-all changes proposed
	CorrectChanges int // #-correctly changed values
	Errors         int // #-all injected errors
}

// PR converts counts into precision/recall.
func (c RepairCounts) PR() PR {
	pr := PR{}
	if c.Changes > 0 {
		pr.Precision = float64(c.CorrectChanges) / float64(c.Changes)
	}
	if c.Errors > 0 {
		pr.Recall = float64(c.CorrectChanges) / float64(c.Errors)
	}
	return pr
}
