package metrics

import (
	"math"
	"testing"

	"katara/internal/pattern"
	"katara/internal/rdf"
)

func hierKB() *rdf.Store {
	kb := rdf.New()
	add := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.IRI(obj)) }
	add("IndianFilm", rdf.IRISubClassOf, "Film")
	add("Film", rdf.IRISubClassOf, "Work")
	add("hasDirector", rdf.IRISubPropertyOf, "relatedTo")
	return kb
}

func TestTypeScorePartialCredit(t *testing.T) {
	kb := hierKB()
	indian := kb.Res("IndianFilm")
	film := kb.Res("Film")
	work := kb.Res("Work")
	// The paper's example: predicting Film when truth is IndianFilm scores
	// 1/(1+1) = 0.5.
	if got := typeScore(kb, film, indian); got != 0.5 {
		t.Fatalf("typeScore(Film|IndianFilm) = %f, want 0.5", got)
	}
	if got := typeScore(kb, work, indian); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("typeScore(Work|IndianFilm) = %f, want 1/3", got)
	}
	if got := typeScore(kb, indian, indian); got != 1 {
		t.Fatalf("exact match = %f", got)
	}
	// Predicting a subtype of the truth gets no credit.
	if got := typeScore(kb, indian, film); got != 0 {
		t.Fatalf("subtype prediction = %f, want 0", got)
	}
	if got := typeScore(kb, rdf.NoID, indian); got != 0 {
		t.Fatalf("missing prediction = %f, want 0", got)
	}
}

func TestRelScore(t *testing.T) {
	kb := hierKB()
	hd := kb.Res("hasDirector")
	rt := kb.Res("relatedTo")
	if got := relScore(kb, rt, hd); got != 0.5 {
		t.Fatalf("super-property credit = %f, want 0.5", got)
	}
	if got := relScore(kb, hd, hd); got != 1 {
		t.Fatalf("exact = %f", got)
	}
}

func TestPatternPR(t *testing.T) {
	kb := hierKB()
	film := kb.Res("Film")
	indian := kb.Res("IndianFilm")
	person := kb.Res("person")
	acted := kb.Res("actedIn")

	truth := &pattern.Pattern{
		Nodes: []pattern.Node{{Column: 0, Type: person}, {Column: 1, Type: indian}},
		Edges: []pattern.Edge{{From: 0, To: 1, Prop: acted}},
	}
	pred := &pattern.Pattern{
		Nodes: []pattern.Node{{Column: 0, Type: person}, {Column: 1, Type: film}},
		Edges: []pattern.Edge{{From: 0, To: 1, Prop: acted}},
	}
	pr := PatternPR(kb, pred, truth)
	// Credits: person 1 + film 0.5 + actedIn 1 = 2.5 over 3 predicted and 3
	// true elements.
	want := 2.5 / 3
	if math.Abs(pr.Precision-want) > 1e-9 || math.Abs(pr.Recall-want) > 1e-9 {
		t.Fatalf("PR = %+v, want %f", pr, want)
	}
	f := pr.F()
	if math.Abs(f-want) > 1e-9 {
		t.Fatalf("F = %f", f)
	}
}

func TestPatternPRAsymmetric(t *testing.T) {
	kb := hierKB()
	person := kb.Res("person")
	film := kb.Res("Film")
	acted := kb.Res("actedIn")
	truth := &pattern.Pattern{
		Nodes: []pattern.Node{{Column: 0, Type: person}, {Column: 1, Type: film}},
		Edges: []pattern.Edge{{From: 0, To: 1, Prop: acted}},
	}
	// Prediction covers only column 0: precision perfect, recall 1/3.
	pred := &pattern.Pattern{Nodes: []pattern.Node{{Column: 0, Type: person}}}
	pr := PatternPR(kb, pred, truth)
	if pr.Precision != 1 {
		t.Fatalf("precision = %f, want 1", pr.Precision)
	}
	if math.Abs(pr.Recall-1.0/3) > 1e-9 {
		t.Fatalf("recall = %f, want 1/3", pr.Recall)
	}
	// Prediction with an extra wrong edge: precision drops, recall same.
	pred2 := &pattern.Pattern{
		Nodes: []pattern.Node{{Column: 0, Type: person}},
		Edges: []pattern.Edge{{From: 1, To: 0, Prop: acted}},
	}
	pr2 := PatternPR(kb, pred2, truth)
	if pr2.Precision >= pr.Precision {
		t.Fatal("wrong extra edge must lower precision")
	}
}

func TestPatternPRNilAndUntyped(t *testing.T) {
	kb := hierKB()
	truth := &pattern.Pattern{Nodes: []pattern.Node{{Column: 0, Type: kb.Res("Film")}}}
	if pr := PatternPR(kb, nil, truth); pr.Precision != 0 || pr.Recall != 0 {
		t.Fatal("nil prediction must score 0")
	}
	// Untyped nodes don't count in either direction.
	pred := &pattern.Pattern{Nodes: []pattern.Node{{Column: 5, Type: rdf.NoID}}}
	if pr := PatternPR(kb, pred, truth); pr.Precision != 0 || pr.Recall != 0 {
		t.Fatalf("untyped-only pattern = %+v", pr)
	}
}

func TestBestTopKF(t *testing.T) {
	kb := hierKB()
	person := kb.Res("person")
	film := kb.Res("Film")
	truth := &pattern.Pattern{Nodes: []pattern.Node{{Column: 0, Type: person}}}
	bad := &pattern.Pattern{Nodes: []pattern.Node{{Column: 0, Type: film}}}
	good := &pattern.Pattern{Nodes: []pattern.Node{{Column: 0, Type: person}}}
	if f := BestTopKF(kb, []*pattern.Pattern{bad, good}, truth); f != 1 {
		t.Fatalf("BestTopKF = %f, want 1", f)
	}
	if f := BestTopKF(kb, []*pattern.Pattern{bad}, truth); f != 0 {
		t.Fatalf("BestTopKF(bad only) = %f, want 0", f)
	}
	if f := BestTopKF(kb, nil, truth); f != 0 {
		t.Fatal("empty top-k must score 0")
	}
}

func TestRepairCounts(t *testing.T) {
	c := RepairCounts{Changes: 10, CorrectChanges: 8, Errors: 20}
	pr := c.PR()
	if pr.Precision != 0.8 || pr.Recall != 0.4 {
		t.Fatalf("PR = %+v", pr)
	}
	if math.Abs(pr.F()-2*0.8*0.4/1.2) > 1e-9 {
		t.Fatalf("F = %f", pr.F())
	}
	var zero RepairCounts
	if pr := zero.PR(); pr.Precision != 0 || pr.Recall != 0 || pr.F() != 0 {
		t.Fatal("zero counts must all be 0")
	}
}
