// Package kbstats computes the knowledge-base statistics KATARA's scoring
// model needs (§4.1–4.2): entity/type/property counts for tf-idf, and the
// PMI-based semantic-coherence scores subSC(T,P) / objSC(T,P) between types
// and relationships.
//
// The paper computes coherence offline for every (type, relationship) pair;
// we scan the KB once for the base sets and memoise coherence pairs on
// demand, along with the per-relationship maxima the rank-join bound needs.
package kbstats

import (
	"math"
	"sort"

	"katara/internal/rdf"
)

// Stats caches derived statistics for one KB. It is not safe for concurrent
// mutation of the underlying store, matching the store's own contract.
type Stats struct {
	kb *rdf.Store

	entities   []rdf.ID            // all typed resources, sorted
	entitySet  map[rdf.ID]bool     // membership
	numTypes   int                 // |Classes|
	properties []rdf.ID            // data properties (relationship candidates)
	subEnt     map[rdf.ID][]rdf.ID // property -> sorted entity subjects
	objEnt     map[rdf.ID][]rdf.ID // property -> sorted entity objects
	facts      map[rdf.ID]int      // property -> #triples

	entOfType map[rdf.ID][]rdf.ID // type -> sorted instances (with subclasses)

	subSC, objSC      map[cohKey]float64
	maxSub, maxObj    map[rdf.ID]float64
	maxCohComputedFor map[rdf.ID]bool
}

type cohKey struct{ t, p rdf.ID }

// New scans kb and returns its statistics.
func New(kb *rdf.Store) *Stats {
	s := &Stats{
		kb:                kb,
		entitySet:         make(map[rdf.ID]bool),
		subEnt:            make(map[rdf.ID][]rdf.ID),
		objEnt:            make(map[rdf.ID][]rdf.ID),
		facts:             make(map[rdf.ID]int),
		entOfType:         make(map[rdf.ID][]rdf.ID),
		subSC:             make(map[cohKey]float64),
		objSC:             make(map[cohKey]float64),
		maxSub:            make(map[rdf.ID]float64),
		maxObj:            make(map[rdf.ID]float64),
		maxCohComputedFor: make(map[rdf.ID]bool),
	}
	// Entities: resources with at least one asserted type.
	for _, e := range kb.SubjectsWithPredicate(kb.TypeID) {
		if !kb.IsLiteral(e) {
			s.entities = append(s.entities, e)
			s.entitySet[e] = true
		}
	}
	s.numTypes = len(kb.Classes())
	// Data properties: everything except the RDFS vocabulary.
	vocab := map[rdf.ID]bool{
		kb.TypeID: true, kb.LabelID: true,
		kb.SubClassOfID: true, kb.SubPropertyOfID: true,
	}
	for _, p := range kb.Predicates() {
		if vocab[p] {
			continue
		}
		s.properties = append(s.properties, p)
		subSet := map[rdf.ID]bool{}
		objSet := map[rdf.ID]bool{}
		n := 0
		for _, subj := range kb.SubjectsWithPredicate(p) {
			objs := kb.Objects(subj, p)
			n += len(objs)
			if s.entitySet[subj] {
				subSet[subj] = true
			}
			for _, o := range objs {
				if s.entitySet[o] {
					objSet[o] = true
				}
			}
		}
		s.facts[p] = n
		s.subEnt[p] = setToSorted(subSet)
		s.objEnt[p] = setToSorted(objSet)
	}
	return s
}

func setToSorted(set map[rdf.ID]bool) []rdf.ID {
	out := make([]rdf.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KB returns the underlying store.
func (s *Stats) KB() *rdf.Store { return s.kb }

// Prewarm eagerly computes every lazily-memoised statistic candidate
// generation touches (hierarchy closures, per-type instance lists), so the
// Stats can be shared by concurrent readers (discovery.GenerateParallel).
// Coherence pairs stay lazy — they are only read by the single-threaded
// rank join.
func (s *Stats) Prewarm() {
	s.kb.WarmClosures()
	for _, c := range s.kb.Classes() {
		s.instancesOf(c)
	}
}

// NumEntities returns N, the total number of typed entities.
func (s *Stats) NumEntities() int { return len(s.entities) }

// NumTypes returns the number of classes in the KB (used by idf).
func (s *Stats) NumTypes() int { return s.numTypes }

// Properties returns the relationship candidates (non-vocabulary predicates).
func (s *Stats) Properties() []rdf.ID { return s.properties }

// NumFacts returns the number of triples with property p.
func (s *Stats) NumFacts(p rdf.ID) int { return s.facts[p] }

// EntitiesOfType returns |ENT(T)|: instances of T including subclasses.
func (s *Stats) EntitiesOfType(t rdf.ID) int {
	return len(s.instancesOf(t))
}

func (s *Stats) instancesOf(t rdf.ID) []rdf.ID {
	if inst, ok := s.entOfType[t]; ok {
		return inst
	}
	inst := s.kb.InstancesOf(t)
	s.entOfType[t] = inst
	return inst
}

// SubSC returns the subject semantic coherence of type t for property p:
//
//	subSC(T,P) = (NPMI_sub(T,P) + 1) / 2  ∈ [0,1]
//
// with NPMI_sub(T,P) = PMI_sub(T,P) / (−log Pr_sub(P∩T)). The paper's
// formula prints the denominator as −Pr_sub(P∩T); we follow the cited
// Bouma (2009) normalisation, which requires the log for NPMI ∈ [−1,1].
func (s *Stats) SubSC(t, p rdf.ID) float64 {
	k := cohKey{t, p}
	if v, ok := s.subSC[k]; ok {
		return v
	}
	v := s.coherence(t, s.subEnt[p])
	s.subSC[k] = v
	return v
}

// ObjSC returns the object semantic coherence of type t for property p.
func (s *Stats) ObjSC(t, p rdf.ID) float64 {
	k := cohKey{t, p}
	if v, ok := s.objSC[k]; ok {
		return v
	}
	v := s.coherence(t, s.objEnt[p])
	s.objSC[k] = v
	return v
}

// coherence computes (NPMI+1)/2 between ENT(t) and the given property-side
// entity set.
func (s *Stats) coherence(t rdf.ID, side []rdf.ID) float64 {
	n := float64(len(s.entities))
	if n == 0 || len(side) == 0 {
		return 0
	}
	entT := s.instancesOf(t)
	if len(entT) == 0 {
		return 0
	}
	inter := sortedIntersectionSize(entT, side)
	if inter == 0 {
		return 0 // NPMI = -1 ⇒ SC = 0
	}
	pJoint := float64(inter) / n
	pT := float64(len(entT)) / n
	pP := float64(len(side)) / n
	if pJoint >= 1 {
		return 1
	}
	pmi := math.Log(pJoint / (pP * pT))
	npmi := pmi / (-math.Log(pJoint))
	if npmi > 1 {
		npmi = 1
	}
	if npmi < -1 {
		npmi = -1
	}
	return (npmi + 1) / 2
}

func sortedIntersectionSize(a, b []rdf.ID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// MaxSubSC returns max over all types T of subSC(T,p), used in the
// rank-join upper bound (§4.3: "for each relationship, we also keep the
// maximum coherence score it can achieve with any type").
func (s *Stats) MaxSubSC(p rdf.ID) float64 {
	s.ensureMaxCoherence(p)
	return s.maxSub[p]
}

// MaxObjSC returns max over all types T of objSC(T,p).
func (s *Stats) MaxObjSC(p rdf.ID) float64 {
	s.ensureMaxCoherence(p)
	return s.maxObj[p]
}

func (s *Stats) ensureMaxCoherence(p rdf.ID) {
	if s.maxCohComputedFor[p] {
		return
	}
	s.maxCohComputedFor[p] = true
	// Only types of entities incident to p can score above the empty-
	// intersection floor of 0, so restrict the scan to those.
	best := func(side []rdf.ID, sc func(t, p rdf.ID) float64) float64 {
		seen := map[rdf.ID]bool{}
		max := 0.0
		for _, e := range side {
			for _, t := range s.kb.AllTypes(e) {
				if seen[t] {
					continue
				}
				seen[t] = true
				if v := sc(t, p); v > max {
					max = v
				}
			}
		}
		return max
	}
	s.maxSub[p] = best(s.subEnt[p], s.SubSC)
	s.maxObj[p] = best(s.objEnt[p], s.ObjSC)
}

// TF returns the term frequency of one cell for type t per §4.1:
// 1/log(#entities of T) if the cell's resource has type t, else 0.
// The caller supplies whether the cell is of the type; this helper only
// provides the magnitude.
func (s *Stats) TF(t rdf.ID) float64 {
	n := s.EntitiesOfType(t)
	if n <= 0 {
		return 0
	}
	// log(1+n) keeps single-instance types finite while preserving the
	// "rarer type ⇒ larger tf" ordering of the paper.
	return 1 / math.Log(1+float64(n))
}

// IDF returns the inverse document frequency of a cell that belongs to
// numCellTypes types: log(#Types in K / #Types of cell), or 0 if the cell
// is untyped (§4.1).
func (s *Stats) IDF(numCellTypes int) float64 {
	if numCellTypes <= 0 || s.numTypes == 0 {
		return 0
	}
	v := math.Log(float64(s.numTypes) / float64(numCellTypes))
	if v < 0 {
		return 0
	}
	return v
}

// RelTF is the relationship analogue of TF: 1/log(#facts of P).
func (s *Stats) RelTF(p rdf.ID) float64 {
	n := s.NumFacts(p)
	if n <= 0 {
		return 0
	}
	return 1 / math.Log(1+float64(n))
}

// Summary is a human-readable profile of a KB — the per-KB half of
// Table 1's "Datasets and KBs characteristics".
type Summary struct {
	Triples    int
	Entities   int
	Types      int
	Properties int
	Facts      int // triples with a data property
}

// Summarize profiles the KB.
func Summarize(kb *rdf.Store) Summary {
	s := New(kb)
	sum := Summary{
		Triples:    kb.NumTriples(),
		Entities:   s.NumEntities(),
		Types:      s.NumTypes(),
		Properties: len(s.Properties()),
	}
	for _, p := range s.Properties() {
		sum.Facts += s.NumFacts(p)
	}
	return sum
}

// RelIDF is the relationship analogue of IDF for a cell pair related by
// numPairRels distinct properties.
func (s *Stats) RelIDF(numPairRels int) float64 {
	if numPairRels <= 0 || len(s.properties) == 0 {
		return 0
	}
	v := math.Log(float64(len(s.properties)) / float64(numPairRels))
	if v < 0 {
		return 0
	}
	return v
}
