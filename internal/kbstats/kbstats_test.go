package kbstats

import (
	"fmt"
	"math"
	"testing"

	"katara/internal/rdf"
)

// exampleKB reproduces the setting of Example 5/6: countries have capitals;
// economies and states are broader/narrower types that overlap countries;
// capitals are a subclass of cities. Coherence must prefer
// (country, hasCapital) over (economy, hasCapital) and (capital, ·) over
// (city, ·) as objects.
func exampleKB() *rdf.Store {
	s := rdf.New()
	add := func(sub, pred, obj string) { s.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.IRI(obj)) }
	lit := func(sub, pred, obj string) { s.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.Lit(obj)) }
	add("capital", rdf.IRISubClassOf, "city")

	// 10 countries, each a capital fact; countries are also economies.
	for i := 0; i < 10; i++ {
		c := fmt.Sprintf("country%d", i)
		cap := fmt.Sprintf("capital%d", i)
		add(c, rdf.IRIType, "country")
		add(c, rdf.IRIType, "economy")
		lit(c, rdf.IRILabel, c)
		add(cap, rdf.IRIType, "capital")
		lit(cap, rdf.IRILabel, cap)
		add(c, "hasCapital", cap)
	}
	// 30 extra economies without capitals (companies etc.).
	for i := 0; i < 30; i++ {
		e := fmt.Sprintf("econ%d", i)
		add(e, rdf.IRIType, "economy")
		lit(e, rdf.IRILabel, e)
	}
	// 40 plain cities that are not capitals.
	for i := 0; i < 40; i++ {
		c := fmt.Sprintf("city%d", i)
		add(c, rdf.IRIType, "city")
		lit(c, rdf.IRILabel, c)
	}
	// A couple of states with no hasCapital facts at all.
	for i := 0; i < 5; i++ {
		st := fmt.Sprintf("state%d", i)
		add(st, rdf.IRIType, "state")
		lit(st, rdf.IRILabel, st)
	}
	return s
}

func res(t *testing.T, kb *rdf.Store, iri string) rdf.ID {
	t.Helper()
	id := kb.LookupTerm(rdf.IRI(iri))
	if id == rdf.NoID {
		t.Fatalf("missing %s", iri)
	}
	return id
}

func TestCounts(t *testing.T) {
	kb := exampleKB()
	s := New(kb)
	// 10 countries + 10 capitals + 30 economies + 40 cities + 5 states.
	if s.NumEntities() != 95 {
		t.Fatalf("NumEntities = %d, want 95", s.NumEntities())
	}
	if s.NumTypes() != 5 { // country, economy, capital, city, state
		t.Fatalf("NumTypes = %d, want 5", s.NumTypes())
	}
	hc := res(t, kb, "hasCapital")
	if s.NumFacts(hc) != 10 {
		t.Fatalf("NumFacts(hasCapital) = %d", s.NumFacts(hc))
	}
	if len(s.Properties()) != 1 {
		t.Fatalf("Properties = %v", s.Properties())
	}
}

func TestEntitiesOfTypeIncludesSubclasses(t *testing.T) {
	kb := exampleKB()
	s := New(kb)
	city := res(t, kb, "city")
	if got := s.EntitiesOfType(city); got != 50 { // 40 cities + 10 capitals
		t.Fatalf("EntitiesOfType(city) = %d, want 50", got)
	}
}

func TestCoherenceOrdering(t *testing.T) {
	kb := exampleKB()
	s := New(kb)
	hc := res(t, kb, "hasCapital")
	country := res(t, kb, "country")
	economy := res(t, kb, "economy")
	capital := res(t, kb, "capital")
	city := res(t, kb, "city")
	state := res(t, kb, "state")

	if sc, se := s.SubSC(country, hc), s.SubSC(economy, hc); sc <= se {
		t.Fatalf("subSC(country)=%f should exceed subSC(economy)=%f", sc, se)
	}
	if oc, ocy := s.ObjSC(capital, hc), s.ObjSC(city, hc); oc <= ocy {
		t.Fatalf("objSC(capital)=%f should exceed objSC(city)=%f", oc, ocy)
	}
	if got := s.SubSC(state, hc); got != 0 {
		t.Fatalf("subSC(state, hasCapital) = %f, want 0 (empty intersection)", got)
	}
}

func TestCoherenceBounds(t *testing.T) {
	kb := exampleKB()
	s := New(kb)
	hc := res(t, kb, "hasCapital")
	for _, typ := range []string{"country", "economy", "capital", "city", "state"} {
		id := res(t, kb, typ)
		for _, v := range []float64{s.SubSC(id, hc), s.ObjSC(id, hc)} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("coherence out of [0,1]: %s -> %f", typ, v)
			}
		}
	}
}

func TestPerfectCoherence(t *testing.T) {
	// When every entity is a country with a capital fact, Pr(P∩T)=Pr(T)=
	// Pr_sub(P), and coherence should be at its maximum 1.
	kb := rdf.New()
	for i := 0; i < 5; i++ {
		c := fmt.Sprintf("c%d", i)
		kb.AddFact(rdf.IRI(c), rdf.IRI(rdf.IRIType), rdf.IRI("country"))
		kb.AddFact(rdf.IRI(c), rdf.IRI("p"), rdf.IRI(fmt.Sprintf("c%d", (i+1)%5)))
	}
	s := New(kb)
	country := kb.LookupTerm(rdf.IRI("country"))
	p := kb.LookupTerm(rdf.IRI("p"))
	if got := s.SubSC(country, p); got != 1 {
		t.Fatalf("perfect subject coherence = %f, want 1", got)
	}
}

func TestMaxCoherence(t *testing.T) {
	kb := exampleKB()
	s := New(kb)
	hc := res(t, kb, "hasCapital")
	country := res(t, kb, "country")
	capital := res(t, kb, "capital")
	if got, want := s.MaxSubSC(hc), s.SubSC(country, hc); got < want {
		t.Fatalf("MaxSubSC %f < subSC(country) %f", got, want)
	}
	if got, want := s.MaxObjSC(hc), s.ObjSC(capital, hc); got < want {
		t.Fatalf("MaxObjSC %f < objSC(capital) %f", got, want)
	}
	// Maxima are themselves achieved by some type, hence ≤ 1.
	if s.MaxSubSC(hc) > 1 || s.MaxObjSC(hc) > 1 {
		t.Fatal("max coherence above 1")
	}
}

func TestTFOrdering(t *testing.T) {
	kb := exampleKB()
	s := New(kb)
	country := res(t, kb, "country")
	city := res(t, kb, "city")
	// Rarer type (10 countries) must have larger tf magnitude than the more
	// populous city (50 with subclasses) — the "Country vs Place" intuition.
	if s.TF(country) <= s.TF(city) {
		t.Fatalf("TF(country)=%f should exceed TF(city)=%f", s.TF(country), s.TF(city))
	}
}

func TestIDF(t *testing.T) {
	kb := exampleKB()
	s := New(kb)
	// A cell with one type is more informative than a cell with two
	// ("Microsoft" vs "Apple", §4.1).
	if s.IDF(1) <= s.IDF(2) {
		t.Fatal("IDF must decrease with ambiguity")
	}
	if s.IDF(0) != 0 {
		t.Fatal("untyped cell has IDF 0")
	}
	if s.IDF(s.NumTypes()+5) != 0 {
		t.Fatal("IDF clamped at 0")
	}
}

func TestRelTFIDF(t *testing.T) {
	kb := exampleKB()
	s := New(kb)
	hc := res(t, kb, "hasCapital")
	if s.RelTF(hc) <= 0 {
		t.Fatal("RelTF of existing property must be positive")
	}
	if s.RelTF(rdf.ID(9999)) != 0 {
		t.Fatal("RelTF of unknown property must be 0")
	}
	if s.RelIDF(0) != 0 {
		t.Fatal("RelIDF(0) must be 0")
	}
	if s.RelIDF(1) < 0 {
		t.Fatal("RelIDF must be non-negative")
	}
}

func TestCoherenceMemoisationConsistent(t *testing.T) {
	kb := exampleKB()
	s := New(kb)
	hc := res(t, kb, "hasCapital")
	country := res(t, kb, "country")
	a := s.SubSC(country, hc)
	b := s.SubSC(country, hc)
	if a != b {
		t.Fatal("memoised coherence differs")
	}
}

func TestSummarize(t *testing.T) {
	kb := exampleKB()
	sum := Summarize(kb)
	if sum.Entities != 95 || sum.Types != 5 || sum.Properties != 1 || sum.Facts != 10 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Triples != kb.NumTriples() {
		t.Fatalf("triples = %d, want %d", sum.Triples, kb.NumTriples())
	}
}
