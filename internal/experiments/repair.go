package experiments

import (
	"fmt"
	"math/rand"

	"katara/internal/annotation"
	"katara/internal/cleaning"
	"katara/internal/fd"
	"katara/internal/metrics"
	"katara/internal/repair"
	"katara/internal/table"
	"katara/internal/workload"
)

// AppendixDFDs returns the FDs of Appendix D translated onto our schemas.
// Exported for the benchmark harness.
func AppendixDFDs(tableName string) []fd.FD { return appendixDFDs(tableName) }

func appendixDFDs(tableName string) []fd.FD {
	switch tableName {
	case "Person": // (name, country, capital, language): A → B,C,D
		return []fd.FD{fd.New([]int{0}, []int{1, 2, 3})}
	case "Soccer": // (player, club, city, league): A → B; B → C,D
		return []fd.FD{fd.New([]int{0}, []int{1}), fd.New([]int{1}, []int{2, 3})}
	case "University": // (university, city, state): A → B,C; B → C
		return []fd.FD{fd.New([]int{0}, []int{1, 2}), fd.New([]int{1}, []int{2})}
	default:
		return nil
	}
}

// rhsColumns returns the union of FD right-hand sides.
func rhsColumns(fds []fd.FD) []int {
	set := map[int]bool{}
	var out []int
	for _, f := range fds {
		for _, c := range f.RHS {
			if !set[c] {
				set[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// injectableColumns returns RHS \ LHS: §7.4 injects errors only into RHS
// attributes while "treating the left hand side attributes as correct", so
// a column appearing on both sides must stay clean.
func injectableColumns(fds []fd.FD) []int {
	lhs := map[int]bool{}
	for _, f := range fds {
		for _, c := range f.LHS {
			lhs[c] = true
		}
	}
	var out []int
	for _, c := range rhsColumns(fds) {
		if !lhs[c] {
			out = append(out, c)
		}
	}
	return out
}

// lhsColumns returns the union of FD left-hand sides — SCARE's reliable
// attributes. They stay clean because injectableColumns excludes them.
func lhsColumns(fds []fd.FD) []int {
	set := map[int]bool{}
	var out []int
	for _, f := range fds {
		for _, c := range f.LHS {
			if !set[c] {
				set[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// kataraRepair runs KATARA's detect-and-repair loop over a dirty table and
// tallies §7.4's counts: an erroneous tuple counts as correctly changed when
// the ground truth falls inside its top-k repairs.
func (e *Env) kataraRepair(spec *workload.TableSpec, kb *workload.KB,
	dirty, clean *table.Table, injected []table.CellRef, k int, salt int64) (metrics.RepairCounts, bool) {

	counts := metrics.RepairCounts{Errors: len(injected)}
	p := spec.TruthPattern(kb)
	if len(p.Edges) == 0 {
		// No relationships in this KB for this table: KATARA cannot compute
		// repairs (Soccer × Yago, §7.4).
		return counts, false
	}
	ann := &annotation.Annotator{
		KB:      kb.Store,
		Pattern: p,
		Crowd:   e.newCrowd(salt),
		Oracle:  workload.WorldOracle{W: e.World, KB: kb},
	}
	res := ann.Annotate(dirty)
	cols := p.Columns()
	// Confidence-weighted repair costs (§6.2: "the cost can also be
	// weighted with confidences on data values"): near-unique columns
	// (names, identifiers) carry high confidence — rewriting them to a
	// different entity is rarely the right repair. Cardinality is only a
	// meaningful confidence signal on tables large enough for repetition,
	// so small (Wiki/Web) tables keep unit costs.
	var weights map[int]float64
	if dirty.NumRows() >= 200 {
		weights = map[int]float64{}
		for _, c := range cols {
			if c >= dirty.NumCols() {
				continue
			}
			distinct := map[string]bool{}
			for _, rowVals := range dirty.Rows {
				distinct[rowVals[c]] = true
			}
			ratio := float64(len(distinct)) / float64(dirty.NumRows())
			weights[c] = 1 + 2*ratio
		}
	}
	ix := repair.BuildIndex(kb.Store, p, repair.Options{Weights: weights})
	for _, row := range res.Errors() {
		reps := ix.TopK(dirty.Rows[row], k)
		// Majority-agreement guard: a candidate repair is only credible if
		// its weighted cost stays below half the pattern width. The paper
		// leaves picking the repair "to the users (or crowd)" (§6.2); a
		// suggestion rewriting an identifying column or most of the tuple
		// would never be picked, so it is not counted as a change.
		credible := reps[:0]
		for _, r := range reps {
			if 2*r.Cost < float64(len(cols)) {
				credible = append(credible, r)
			}
		}
		reps = credible
		if len(reps) == 0 {
			continue
		}
		if reps[0].Cost == 0 {
			// An instance graph matches the tuple exactly: the KB itself
			// certifies the tuple, overriding a noisy crowd "erroneous"
			// verdict. No change is made.
			continue
		}
		trueChanged := 0
		for _, c := range cols {
			if dirty.Rows[row][c] != clean.Rows[row][c] {
				trueChanged++
			}
		}
		if repairHits(reps, dirty.Rows[row], clean.Rows[row], cols) {
			counts.CorrectChanges += trueChanged
			counts.Changes += trueChanged
		} else {
			counts.Changes += len(reps[0].Changes)
		}
	}
	return counts, true
}

// repairHits reports whether some repair aligns the dirty tuple to the
// clean one on the pattern-covered columns.
func repairHits(reps []repair.Repair, dirty, clean []string, cols []int) bool {
	for _, rep := range reps {
		ok := true
		for _, c := range cols {
			want := clean[c]
			got := dirty[c]
			for _, ch := range rep.Changes {
				if ch.Col == c {
					got = ch.To
				}
			}
			if got != want {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// evalChanges scores a baseline's changes against the clean table.
func evalChanges(changes []cleaning.Change, clean *table.Table, injected []table.CellRef) metrics.RepairCounts {
	counts := metrics.RepairCounts{Errors: len(injected), Changes: len(changes)}
	for _, ch := range changes {
		if ch.To == clean.Rows[ch.Row][ch.Col] && ch.From != ch.To {
			counts.CorrectChanges++
		}
	}
	return counts
}

// --- Figure 8: top-k repair F-measure (RelationalTables) ---

// RepairKSeries is one (table, KB) curve of repair F-measure over k.
type RepairKSeries struct {
	Table, KB string
	K         []int
	F         []float64
	NA        bool
}

// Figure8 reproduces "Figure 8: Top-k repair F-measure (RelationalTables)":
// 10% errors are injected into pattern-covered columns, and repairs are
// scored varying k. Soccer × Yago is N.A. (pattern has no relationship).
func Figure8(e *Env, maxK int) []RepairKSeries {
	if maxK <= 0 {
		maxK = 5
	}
	ds := e.Dataset("RelationalTables")
	var out []RepairKSeries
	for kbIdx, kb := range e.KBs {
		for si, spec := range ds.Specs {
			s := RepairKSeries{Table: spec.Table.Name, KB: kb.Name}
			p := spec.TruthPattern(kb)
			if len(p.Edges) == 0 {
				s.NA = true
				out = append(out, s)
				continue
			}
			rng := rand.New(rand.NewSource(e.Cfg.Seed + int64(700+10*kbIdx+si)))
			clean := spec.Table
			dirty := clean.Clone()
			injected := table.InjectErrors(dirty, p.Columns(), 0.10, rng)
			for k := 1; k <= maxK; k++ {
				counts, ok := e.kataraRepair(spec, kb, dirty, clean, injected, k,
					int64(800+100*kbIdx+10*si+k))
				s.K = append(s.K, k)
				if ok {
					s.F = append(s.F, counts.PR().F())
				} else {
					s.F = append(s.F, 0)
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// RenderFigure8 prints the curves.
func RenderFigure8(series []RepairKSeries) string {
	maxK := 0
	for _, s := range series {
		if len(s.K) > maxK {
			maxK = len(s.K)
		}
	}
	header := []string{"table", "KB"}
	for k := 1; k <= maxK; k++ {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	g := &grid{header: header}
	for _, s := range series {
		row := []string{s.Table, s.KB}
		if s.NA {
			for k := 0; k < maxK; k++ {
				row = append(row, "N.A.")
			}
		} else {
			for _, f := range s.F {
				row = append(row, f2(f))
			}
		}
		g.add(row...)
	}
	return "Figure 8: Top-k repair F-measure (RelationalTables)\n" + g.String()
}

// --- Table 6: repairing RelationalTables vs EQ and SCARE ---

// Table6Row compares the four repairers on one relational table.
type Table6Row struct {
	Table        string
	KataraYago   metrics.PR
	KataraYagoNA bool
	KataraDBp    metrics.PR
	EQ           metrics.PR
	SCARE        metrics.PR
}

// Table6 reproduces "Table 6: Data repairing precision and recall
// (RelationalTables)". Per §7.4: 10% errors injected only into FD RHS
// columns (so SCARE's reliable attributes stay clean), KATARA at k=3.
func Table6(e *Env) []Table6Row {
	ds := e.Dataset("RelationalTables")
	var out []Table6Row
	for si, spec := range ds.Specs {
		fds := appendixDFDs(spec.Table.Name)
		inject := injectableColumns(fds)
		rng := rand.New(rand.NewSource(e.Cfg.Seed + int64(900+si)))
		clean := spec.Table
		dirty := clean.Clone()
		injected := table.InjectErrors(dirty, inject, 0.10, rng)

		row := Table6Row{Table: spec.Table.Name}
		const k = 3
		for kbIdx, kb := range e.KBs {
			counts, ok := e.kataraRepair(spec, kb, dirty.Clone(), clean, injected, k,
				int64(950+10*si+kbIdx))
			pr := counts.PR()
			if kb.Name == "Yago" {
				row.KataraYago, row.KataraYagoNA = pr, !ok
			} else {
				row.KataraDBp = pr
			}
		}
		eqTable := dirty.Clone()
		row.EQ = evalChanges(cleaning.EQ(eqTable, fds), clean, injected).PR()
		scTable := dirty.Clone()
		row.SCARE = evalChanges(
			cleaning.SCARE(scTable, lhsColumns(fds), inject, cleaning.SCAREOptions{}),
			clean, injected).PR()
		out = append(out, row)
	}
	return out
}

// RenderTable6 prints the comparison paper-style.
func RenderTable6(rows []Table6Row) string {
	g := &grid{header: []string{"table",
		"KATARA(Yago) P", "R", "KATARA(DBpedia) P", "R", "EQ P", "R", "SCARE P", "R"}}
	for _, r := range rows {
		ky, kyr := f2(r.KataraYago.Precision), f2(r.KataraYago.Recall)
		if r.KataraYagoNA {
			ky, kyr = "N.A.", "N.A."
		}
		g.add(r.Table, ky, kyr,
			f2(r.KataraDBp.Precision), f2(r.KataraDBp.Recall),
			f2(r.EQ.Precision), f2(r.EQ.Recall),
			f2(r.SCARE.Precision), f2(r.SCARE.Recall))
	}
	return "Table 6: Data repairing precision and recall (RelationalTables)\n" + g.String()
}

// --- Table 7: repairing WikiTables and WebTables ---

// Table7Row aggregates KATARA repair quality over one small-table dataset.
// EQ and SCARE are N.A.: the tables have almost no redundancy (§7.4).
type Table7Row struct {
	Dataset    string
	KataraYago metrics.PR
	KataraDBp  metrics.PR
}

// Table7 reproduces "Table 7: Data repairing precision and recall
// (WikiTables and WebTables)" at k=3.
func Table7(e *Env) []Table7Row {
	var out []Table7Row
	for _, name := range []string{"WikiTables", "WebTables"} {
		ds := e.Dataset(name)
		row := Table7Row{Dataset: name}
		for kbIdx, kb := range e.KBs {
			var agg metrics.RepairCounts
			for si, spec := range ds.Specs {
				p := spec.TruthPattern(kb)
				covered := p.Columns()
				if len(p.Edges) == 0 || len(covered) == 0 {
					continue
				}
				rng := rand.New(rand.NewSource(e.Cfg.Seed + int64(1200+10*si+kbIdx)))
				clean := spec.Table
				dirty := clean.Clone()
				injected := table.InjectErrors(dirty, covered, 0.10, rng)
				counts, ok := e.kataraRepair(spec, kb, dirty, clean, injected, 3,
					int64(1300+10*si+kbIdx))
				if !ok {
					continue
				}
				agg.Changes += counts.Changes
				agg.CorrectChanges += counts.CorrectChanges
				agg.Errors += counts.Errors
			}
			if kb.Name == "Yago" {
				row.KataraYago = agg.PR()
			} else {
				row.KataraDBp = agg.PR()
			}
		}
		out = append(out, row)
	}
	return out
}

// RenderTable7 prints the comparison paper-style.
func RenderTable7(rows []Table7Row) string {
	g := &grid{header: []string{"dataset",
		"KATARA(Yago) P", "R", "KATARA(DBpedia) P", "R", "EQ P/R", "SCARE P/R"}}
	for _, r := range rows {
		g.add(r.Dataset,
			f2(r.KataraYago.Precision), f2(r.KataraYago.Recall),
			f2(r.KataraDBp.Precision), f2(r.KataraDBp.Recall),
			"N.A.", "N.A.")
	}
	return "Table 7: Data repairing precision and recall (WikiTables and WebTables)\n" + g.String()
}
