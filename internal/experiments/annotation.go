package experiments

import (
	"fmt"

	"katara/internal/annotation"
	"katara/internal/workload"
)

// --- Table 5: data annotation by KBs and crowd ---

// Table5Row is the annotation breakdown for one dataset under one KB:
// fractions of values (types) and relationships validated by the KB, by the
// crowd, or flagged erroneous.
type Table5Row struct {
	Dataset, KB                  string
	TypeKB, TypeCrowd, TypeError float64
	RelKB, RelCrowd, RelError    float64
	NewFacts                     int // KB-enrichment by-product
}

// Table5 reproduces "Table 5: Data annotation by KBs and crowd". Tables are
// annotated with their (validated) ground-truth pattern and enrichment
// enabled, so redundant datasets convert crowd answers into KB validations —
// the effect behind RelationalTables' high KB share.
func Table5(e *Env) []Table5Row {
	var out []Table5Row
	builders := []func() *workload.KB{
		func() *workload.KB { return workload.YagoLike(e.World, e.Cfg.Seed+101) },
		func() *workload.KB { return workload.DBpediaLike(e.World, e.Cfg.Seed+102) },
	}
	for _, build := range builders {
		for _, ds := range e.Datasets {
			// Enrichment mutates the KB, so each dataset annotates a fresh,
			// seed-identical rebuild; the environment's shared stores stay
			// pristine for the other experiments.
			kb := build()
			row := Table5Row{Dataset: ds.Name, KB: kb.Name}
			var agg annotation.Breakdown
			for i, spec := range ds.Specs {
				p := spec.TruthPattern(kb)
				if len(p.Nodes) == 0 {
					continue
				}
				ann := &annotation.Annotator{
					KB:      kb.Store,
					Pattern: p,
					Crowd:   e.newCrowd(int64(500 + i)),
					Oracle:  workload.WorldOracle{W: e.World, KB: kb},
					Enrich:  true,
				}
				res := ann.Annotate(spec.Table)
				agg.TypeKB += res.Breakdown.TypeKB
				agg.TypeCrowd += res.Breakdown.TypeCrowd
				agg.TypeError += res.Breakdown.TypeError
				agg.RelKB += res.Breakdown.RelKB
				agg.RelCrowd += res.Breakdown.RelCrowd
				agg.RelError += res.Breakdown.RelError
				row.NewFacts += len(res.NewFacts)
			}
			row.TypeKB, row.TypeCrowd, row.TypeError = agg.TypeFractions()
			row.RelKB, row.RelCrowd, row.RelError = agg.RelFractions()
			out = append(out, row)
		}
	}
	return out
}

// RenderTable5 prints per-KB blocks paper-style.
func RenderTable5(rows []Table5Row) string {
	out := "Table 5: Data annotation by KBs and crowd\n"
	byKB := map[string][]Table5Row{}
	var kbs []string
	for _, r := range rows {
		if _, ok := byKB[r.KB]; !ok {
			kbs = append(kbs, r.KB)
		}
		byKB[r.KB] = append(byKB[r.KB], r)
	}
	for _, kb := range kbs {
		g := &grid{header: []string{"dataset", "type KB", "type crowd", "type error",
			"rel KB", "rel crowd", "rel error", "new facts"}}
		for _, r := range byKB[kb] {
			g.add(r.Dataset, f2(r.TypeKB), f2(r.TypeCrowd), f2(r.TypeError),
				f2(r.RelKB), f2(r.RelCrowd), f2(r.RelError), fmt.Sprint(r.NewFacts))
		}
		out += kb + "\n" + g.String()
	}
	return out
}
