package experiments

import (
	"strings"
	"testing"
	"time"

	"katara/internal/metrics"
)

// Render functions are exercised against hand-built rows, so their layout
// paths (N.A. cells, per-KB blocks) are covered without re-running the
// expensive experiments.

func TestRenderTable3NA(t *testing.T) {
	cells := []Table3Cell{
		{Dataset: "Person", KB: "Yago", Algorithm: "PGM", NA: true},
		{Dataset: "Person", KB: "Yago", Algorithm: "RankJoin", Elapsed: 90 * time.Millisecond},
	}
	out := RenderTable3(cells)
	if !strings.Contains(out, "N.A.") {
		t.Fatalf("missing N.A. cell:\n%s", out)
	}
	if !strings.Contains(out, "90ms") {
		t.Fatalf("missing elapsed cell:\n%s", out)
	}
}

func TestRenderTable6NA(t *testing.T) {
	rows := []Table6Row{{
		Table:        "Soccer",
		KataraYagoNA: true,
		KataraDBp:    metrics.PR{Precision: 0.9, Recall: 0.3},
		EQ:           metrics.PR{Precision: 0.6, Recall: 0.2},
	}}
	out := RenderTable6(rows)
	if !strings.Contains(out, "N.A.") || !strings.Contains(out, "0.90") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRenderFigure8NA(t *testing.T) {
	out := RenderFigure8([]RepairKSeries{
		{Table: "Soccer", KB: "Yago", NA: true},
		{Table: "Person", KB: "Yago", K: []int{1, 2}, F: []float64{0.4, 0.5}},
	})
	if strings.Count(out, "N.A.") != 2 {
		t.Fatalf("NA row should fill every k column:\n%s", out)
	}
}

func TestRenderTable7(t *testing.T) {
	out := RenderTable7([]Table7Row{{
		Dataset:    "WikiTables",
		KataraYago: metrics.PR{Precision: 1, Recall: 0.11},
		KataraDBp:  metrics.PR{Precision: 1, Recall: 0.30},
	}})
	if !strings.Contains(out, "0.11") || !strings.Contains(out, "N.A.") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRenderEmptySeries(t *testing.T) {
	if out := RenderTopKF("Figure 6", nil); !strings.Contains(out, "no data") {
		t.Fatalf("empty top-k render: %q", out)
	}
	if out := RenderValidation("Figure 7", nil); !strings.Contains(out, "no data") {
		t.Fatalf("empty validation render: %q", out)
	}
}

func TestGridAlignment(t *testing.T) {
	g := &grid{header: []string{"a", "bbbb"}}
	g.add("xxxxx", "y")
	out := g.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Columns are padded to the widest cell.
	if !strings.HasPrefix(lines[0], "a    ") || !strings.HasPrefix(lines[1], "xxxxx") {
		t.Fatalf("alignment broken:\n%s", out)
	}
}
