package experiments

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	s := sparkline([]float64{0, 0.5, 1})
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("len = %d", len(runes))
	}
	if runes[0] != ' ' || runes[2] != '█' {
		t.Fatalf("sparkline = %q", s)
	}
	// Out-of-range values are clamped, never panic.
	_ = sparkline([]float64{-1, 2})
}

func TestChartRenderers(t *testing.T) {
	topk := []TopKFSeries{{
		Dataset: "WebTables", KB: "Yago", Algorithm: "RankJoin",
		K: []int{1, 2, 3}, F: []float64{0.8, 0.9, 0.95},
	}}
	out := ChartTopKF("Figure 6", topk)
	if !strings.Contains(out, "RankJoin") || !strings.Contains(out, "0.80→0.95") {
		t.Fatalf("chart = %q", out)
	}
	val := []ValidationSeries{{
		Dataset: "WebTables", KB: "Yago",
		Q: []int{1, 2}, P: []float64{0.7, 0.9}, R: []float64{0.6, 0.8},
	}}
	vout := ChartValidation("Figure 7", val)
	if !strings.Contains(vout, " P |") || !strings.Contains(vout, " R |") {
		t.Fatalf("validation chart = %q", vout)
	}
	rep := []RepairKSeries{
		{Table: "Person", KB: "Yago", K: []int{1, 2}, F: []float64{0.5, 0.5}},
		{Table: "Soccer", KB: "Yago", NA: true},
	}
	rout := ChartRepairK(rep)
	if !strings.Contains(rout, "N.A.") || !strings.Contains(rout, "Person") {
		t.Fatalf("repair chart = %q", rout)
	}
}

func TestCSVExports(t *testing.T) {
	topk := []TopKFSeries{{
		Dataset: "WebTables", KB: "Yago", Algorithm: "RankJoin",
		K: []int{1, 2}, F: []float64{0.8, 0.9},
	}}
	out := CSVTopKF(topk)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || lines[0] != "dataset,kb,algorithm,k,f" {
		t.Fatalf("csv = %q", out)
	}
	if lines[1] != "WebTables,Yago,RankJoin,1,0.8000" {
		t.Fatalf("row = %q", lines[1])
	}
	val := CSVValidation([]ValidationSeries{{
		Dataset: "W", KB: "Y", Q: []int{1}, P: []float64{0.5}, R: []float64{0.25},
	}})
	if !strings.Contains(val, "W,Y,1,0.5000,0.2500") {
		t.Fatalf("validation csv = %q", val)
	}
	rep := CSVRepairK([]RepairKSeries{
		{Table: "Person", KB: "Yago", K: []int{1}, F: []float64{0.4}},
		{Table: "Soccer", KB: "Yago", NA: true},
	})
	if strings.Contains(rep, "Soccer") || !strings.Contains(rep, "Person,Yago,1,0.4000") {
		t.Fatalf("repair csv = %q", rep)
	}
}

func TestFirstLastHelpers(t *testing.T) {
	if first(nil) != 0 || last(nil) != 0 {
		t.Fatal("empty helpers broken")
	}
	if first([]float64{1, 2}) != 1 || last([]float64{1, 2}) != 2 {
		t.Fatal("helpers broken")
	}
}
