package experiments

import (
	"strings"
	"sync"
	"testing"

	"katara/internal/world"
)

var (
	envOnce sync.Once
	testEnv *Env
)

// smallEnv builds a scaled-down environment once and shares it across the
// test suite (construction dominates test runtime otherwise).
func smallEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		testEnv = NewEnv(Config{
			Seed: 7,
			World: world.Config{
				Persons: 150, Players: 80, Clubs: 16, Universities: 40,
				Films: 40, Books: 40,
			},
			Scale:       0.02, // Person 100 / Soccer 32 / University 27
			MaxRows:     40,
			PGMMaxCells: 4000,
		})
	})
	return testEnv
}

func TestEnvConstruction(t *testing.T) {
	e := smallEnv(t)
	if len(e.KBs) != 2 || e.KBs[0].Name != "Yago" || e.KBs[1].Name != "DBpedia" {
		t.Fatalf("KBs = %v", e.KBs)
	}
	if len(e.Datasets) != 3 {
		t.Fatalf("datasets = %d", len(e.Datasets))
	}
	if e.Dataset("WikiTables") == nil || e.Dataset("nope") != nil {
		t.Fatal("Dataset lookup broken")
	}
}

func TestTable1Shapes(t *testing.T) {
	e := smallEnv(t)
	rows := Table1(e)
	if len(rows) != 6 { // 3 datasets x 2 KBs
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.KB] = r
		if r.NumTypes == 0 {
			t.Fatalf("%s/%s has no annotatable columns", r.Dataset, r.KB)
		}
	}
	// Yago has no soccer relations, so RelationalTables must have fewer
	// relationships under Yago than DBpedia.
	if byKey["RelationalTables/Yago"].NumRelations >= byKey["RelationalTables/DBpedia"].NumRelations {
		t.Fatalf("relational relationships: yago %d vs dbpedia %d",
			byKey["RelationalTables/Yago"].NumRelations,
			byKey["RelationalTables/DBpedia"].NumRelations)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "WikiTables") || !strings.Contains(out, "DBpedia") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestTable2Shapes(t *testing.T) {
	e := smallEnv(t)
	cells := Table2(e)
	if len(cells) != 24 { // 2 KBs x 3 datasets x 4 algorithms
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(kb, ds, algo string) Table2Cell {
		for _, c := range cells {
			if c.KB == kb && c.Dataset == ds && c.Algorithm == algo {
				return c
			}
		}
		t.Fatalf("missing cell %s/%s/%s", kb, ds, algo)
		return Table2Cell{}
	}
	// The headline shape: RankJoin beats Support everywhere on F.
	for _, kb := range []string{"Yago", "DBpedia"} {
		for _, ds := range []string{"WikiTables", "WebTables", "RelationalTables"} {
			rj := get(kb, ds, "RankJoin").PR
			sup := get(kb, ds, "Support").PR
			if rj.F() <= sup.F() {
				t.Errorf("%s/%s: RankJoin F %.3f <= Support F %.3f", kb, ds, rj.F(), sup.F())
			}
			if rj.F() < 0.5 {
				t.Errorf("%s/%s: RankJoin F %.3f suspiciously low", kb, ds, rj.F())
			}
		}
	}
	if testing.Verbose() {
		t.Log("\n" + RenderTable2(cells))
	}
}

func TestFigure6Shapes(t *testing.T) {
	e := smallEnv(t)
	series := Figure6(e, 5)
	if len(series) != 8 { // 2 KBs x 4 algorithms
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		// Best-of-top-k F must be monotonically non-decreasing in k.
		for i := 1; i < len(s.F); i++ {
			if s.F[i]+1e-9 < s.F[i-1] {
				t.Fatalf("%s/%s: top-k F decreased at k=%d: %v", s.KB, s.Algorithm, i+1, s.F)
			}
		}
	}
	out := RenderTopKF("Figure 6", series)
	if !strings.Contains(out, "k=5") {
		t.Fatal("render missing k columns")
	}
}

func TestFigure7Shapes(t *testing.T) {
	e := smallEnv(t)
	series := Figure7(e, 3)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		last := len(s.Q) - 1
		if s.P[last] < 0.5 || s.R[last] < 0.5 {
			t.Errorf("%s/%s: validated pattern quality too low at q=%d: P=%.2f R=%.2f",
				s.Dataset, s.KB, s.Q[last], s.P[last], s.R[last])
		}
	}
	_ = RenderValidation("Figure 7", series)
}

func TestTable4MUVFBeatsAVI(t *testing.T) {
	e := smallEnv(t)
	rows := Table4(e)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MUVF > r.AVI {
			t.Errorf("%s/%s: MUVF %d > AVI %d", r.Dataset, r.KB, r.MUVF, r.AVI)
		}
		if r.MUVF == 0 && r.AVI == 0 {
			t.Errorf("%s/%s: no validation happened at all", r.Dataset, r.KB)
		}
	}
	_ = RenderTable4(rows)
}

func TestTable5Shapes(t *testing.T) {
	e := smallEnv(t)
	rows := Table5(e)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, triple := range [][3]float64{
			{r.TypeKB, r.TypeCrowd, r.TypeError},
			{r.RelKB, r.RelCrowd, r.RelError},
		} {
			sum := triple[0] + triple[1] + triple[2]
			if sum > 1e-9 && (sum < 0.999 || sum > 1.001) {
				t.Errorf("%s/%s: fractions sum to %f", r.Dataset, r.KB, sum)
			}
		}
		if r.TypeKB == 0 {
			t.Errorf("%s/%s: KB validated nothing", r.Dataset, r.KB)
		}
	}
	// Redundancy effect: RelationalTables' KB share is the highest of the
	// three datasets under each KB.
	byKB := map[string][]Table5Row{}
	for _, r := range rows {
		byKB[r.KB] = append(byKB[r.KB], r)
	}
	for kb, rs := range byKB {
		var rel, maxOther float64
		for _, r := range rs {
			if r.Dataset == "RelationalTables" {
				rel = r.TypeKB
			} else if r.TypeKB > maxOther {
				maxOther = r.TypeKB
			}
		}
		if rel < maxOther-0.05 {
			t.Errorf("%s: RelationalTables KB share %.2f below small tables %.2f",
				kb, rel, maxOther)
		}
	}
	_ = RenderTable5(rows)
}

func TestFigure8Shapes(t *testing.T) {
	e := smallEnv(t)
	series := Figure8(e, 3)
	if len(series) != 6 { // 3 tables x 2 KBs
		t.Fatalf("series = %d", len(series))
	}
	sawNA := false
	for _, s := range series {
		if s.Table == "Soccer" && s.KB == "Yago" {
			if !s.NA {
				t.Error("Soccer x Yago should be N.A.")
			}
			sawNA = true
			continue
		}
		// Repair F is not mathematically monotone in k (a larger k can add a
		// non-matching repair to a previously-empty list, counting as a
		// change); assert it does not collapse instead.
		for i := 1; i < len(s.F); i++ {
			if s.F[i] < s.F[0]-0.15 {
				t.Errorf("%s/%s: repair F collapsed with k: %v", s.Table, s.KB, s.F)
			}
		}
	}
	if !sawNA {
		t.Error("missing Soccer x Yago row")
	}
	_ = RenderFigure8(series)
}

func TestTable6Shapes(t *testing.T) {
	e := smallEnv(t)
	rows := Table6(e)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Table == "Soccer" && !r.KataraYagoNA {
			t.Error("Soccer KATARA(Yago) should be N.A.")
		}
		// KATARA's precision advantage (where applicable): DBpedia KATARA
		// precision should not be below EQ's on Person.
		if r.Table == "Person" {
			if r.KataraDBp.Precision < r.EQ.Precision-0.15 {
				t.Errorf("Person: KATARA(DBpedia) P %.2f far below EQ %.2f",
					r.KataraDBp.Precision, r.EQ.Precision)
			}
			if r.KataraDBp.Recall < 0.3 {
				t.Errorf("Person: KATARA(DBpedia) recall %.2f too low", r.KataraDBp.Recall)
			}
		}
	}
	_ = RenderTable6(rows)
}

func TestAblationCoherenceHelps(t *testing.T) {
	e := smallEnv(t)
	rows := AblationCoherence(e)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// With band-pruned candidates the tf-idf signal already dominates, so
	// the coherence term's net effect is small (see EXPERIMENTS.md): its
	// losses come from preferring semantically tighter classes (a College-
	// towns category over city) that the strict ground-truth metric
	// penalises. Assert it stays within a small band per row — the
	// catastrophic-failure guard; the regime where coherence is decisive
	// (noisy candidates, Example 5) is unit-tested in package discovery.
	for _, r := range rows {
		d := r.Full.F() - r.Naive.F()
		if d < -0.12 {
			t.Errorf("%s/%s: coherence cost too much F: Δ=%f", r.Dataset, r.KB, d)
		}
	}
	out := RenderAblation(rows)
	if !strings.Contains(out, "naiveScore") {
		t.Fatal("render missing header")
	}
}

func TestTable7Shapes(t *testing.T) {
	e := smallEnv(t)
	rows := Table7(e)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// KATARA keeps high precision on small tables; recall is bounded by
		// KB coverage (§7.4). Precision 0 only if nothing was repaired.
		if r.KataraDBp.Precision > 0 && r.KataraDBp.Precision < 0.6 {
			t.Errorf("%s: KATARA(DBpedia) precision %.2f too low", r.Dataset, r.KataraDBp.Precision)
		}
	}
	_ = RenderTable7(rows)
}
