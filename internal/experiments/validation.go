package experiments

import (
	"fmt"

	"katara/internal/discovery"
	"katara/internal/metrics"
	"katara/internal/pattern"
	"katara/internal/workload"
)

// --- Figures 7 and 12: validated-pattern quality vs questions per variable ---

// ValidationSeries is one (dataset, KB) curve of validated-pattern P/R over
// the number of questions q asked per variable.
type ValidationSeries struct {
	Dataset, KB string
	Q           []int
	P, R        []float64
}

// Figure7 reproduces "Figure 7: Pattern validation P/R (WebTables)".
func Figure7(e *Env, maxQ int) []ValidationSeries {
	return validationCurves(e, []string{"WebTables"}, maxQ)
}

// Figure12 reproduces the appendix-C curves for WikiTables and
// RelationalTables.
func Figure12(e *Env, maxQ int) []ValidationSeries {
	return validationCurves(e, []string{"WikiTables", "RelationalTables"}, maxQ)
}

func validationCurves(e *Env, datasets []string, maxQ int) []ValidationSeries {
	if maxQ <= 0 {
		maxQ = 7
	}
	var out []ValidationSeries
	for _, kb := range e.KBs {
		for _, name := range datasets {
			ds := e.Dataset(name)
			s := ValidationSeries{Dataset: name, KB: kb.Name}
			cands := make([]*discoveryCands, len(ds.Specs))
			for i, spec := range ds.Specs {
				cands[i] = &discoveryCands{spec: spec, c: e.candidates(spec, kb)}
			}
			for q := 1; q <= maxQ; q++ {
				sumP, sumR := 0.0, 0.0
				n := 0
				for i, dc := range cands {
					ps := discovery.TopK(dc.c, e.Cfg.K)
					if len(ps) == 0 {
						continue
					}
					c := e.newCrowd(int64(1000*q + i))
					v := e.newValidator(dc.spec, kb, c, int64(3000*q+i))
					v.QuestionsPerVariable = q
					res := v.MUVF(ps)
					truth := dc.spec.TruthPattern(kb)
					pr := metrics.PatternPR(kb.Store, res.Pattern, truth)
					sumP += pr.Precision
					sumR += pr.Recall
					n++
				}
				s.Q = append(s.Q, q)
				if n > 0 {
					s.P = append(s.P, sumP/float64(n))
					s.R = append(s.R, sumR/float64(n))
				} else {
					s.P = append(s.P, 0)
					s.R = append(s.R, 0)
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// RenderValidation prints P and R rows per curve.
func RenderValidation(title string, series []ValidationSeries) string {
	if len(series) == 0 {
		return title + ": no data\n"
	}
	header := []string{"dataset", "KB", "metric"}
	for _, q := range series[0].Q {
		header = append(header, fmt.Sprintf("q=%d", q))
	}
	g := &grid{header: header}
	for _, s := range series {
		rowP := []string{s.Dataset, s.KB, "P"}
		rowR := []string{s.Dataset, s.KB, "R"}
		for i := range s.Q {
			rowP = append(rowP, f2(s.P[i]))
			rowR = append(rowR, f2(s.R[i]))
		}
		g.add(rowP...)
		g.add(rowR...)
	}
	return title + "\n" + g.String()
}

// --- Table 4: #-variables to validate, MUVF vs AVI ---

// Table4Row compares scheduling strategies for one dataset under one KB.
type Table4Row struct {
	Dataset, KB string
	MUVF, AVI   int
}

// Table4 reproduces "Table 4: #-variables to validate".
func Table4(e *Env) []Table4Row {
	var out []Table4Row
	for _, kb := range e.KBs {
		for _, ds := range e.Datasets {
			row := Table4Row{Dataset: ds.Name, KB: kb.Name}
			for i, spec := range ds.Specs {
				c := e.candidates(spec, kb)
				ps := discovery.TopK(c, e.Cfg.K)
				if len(ps) == 0 {
					continue
				}
				clone := func() []*pattern.Pattern {
					out := make([]*pattern.Pattern, len(ps))
					for j, p := range ps {
						out[j] = p.Clone()
					}
					return out
				}
				vm := e.newValidator(spec, kb, e.newCrowd(int64(41*i+1)), int64(81*i+1))
				row.MUVF += vm.MUVF(clone()).VariablesValidated
				va := e.newValidator(spec, kb, e.newCrowd(int64(41*i+2)), int64(81*i+2))
				row.AVI += va.AVI(clone()).VariablesValidated
			}
			out = append(out, row)
		}
	}
	return out
}

// RenderTable4 prints the comparison paper-style.
func RenderTable4(rows []Table4Row) string {
	g := &grid{header: []string{"dataset", "KB", "MUVF", "AVI"}}
	for _, r := range rows {
		g.add(r.Dataset, r.KB, fmt.Sprint(r.MUVF), fmt.Sprint(r.AVI))
	}
	return "Table 4: #-variables to validate\n" + g.String()
}

// validatedPattern runs the full discover→validate pipeline for one spec,
// returning the crowd-validated pattern (used by the annotation and repair
// experiments, which §7.3 seeds with "the table patterns obtained from
// Section 7.2").
func (e *Env) validatedPattern(spec *workload.TableSpec, kb *workload.KB, salt int64) *pattern.Pattern {
	c := e.candidates(spec, kb)
	ps := discovery.TopK(c, e.Cfg.K)
	if len(ps) == 0 {
		return nil
	}
	v := e.newValidator(spec, kb, e.newCrowd(salt), salt+7)
	return v.MUVF(ps).Pattern
}
