// Package experiments regenerates every table and figure of the paper's
// evaluation (§7 and appendices B–D): Tables 1–7 and Figures 6, 7, 8, 11,
// 12. Each runner returns a structured result plus a Render() string whose
// rows mirror the paper's presentation. Absolute numbers come from the
// synthetic workload; the *shapes* (who wins, convergence points,
// N.A. cells) are the reproduction targets — see EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"katara/internal/crowd"
	"katara/internal/discovery"
	"katara/internal/kbstats"
	"katara/internal/pattern"
	"katara/internal/validation"
	"katara/internal/workload"
	"katara/internal/world"
)

// Config scales and seeds an experimental environment.
type Config struct {
	Seed int64
	// World sizes the synthetic ground truth (zero values = package
	// defaults).
	World world.Config
	// Scale multiplies the RelationalTables row counts (default 0.2 — fast
	// single-machine runs; 1.0 for the full-size tables).
	Scale float64
	// PaperScale overrides Scale for RelationalTables with exactly the
	// paper's §7 Table 1 row counts — Person at the full 316K rows.
	// Distinct-signature execution (katara.Options.Dedup) is what makes
	// this tractable on one machine; see BenchmarkPersonFullScale.
	PaperScale bool
	// K is the top-k pattern budget for discovery (default 10).
	K int
	// MaxCandidates caps ranked candidate lists (default 8).
	MaxCandidates int
	// MaxRows caps the rows sampled during candidate generation for large
	// tables (default 150; the paper distributed Person over 30 machines).
	MaxRows int
	// CrowdWorkers and CrowdAccuracy configure the simulated expert crowd
	// (defaults 10 workers at 0.93 — the paper's student experts with
	// occasional slips; 3-way majority brings per-question error to ~1.4%).
	CrowdWorkers  int
	CrowdAccuracy float64
	// PGMMaxCells aborts PGM beyond this many cell variables (counted over
	// the full table), reproducing Table 3's "N.A." on Person (default
	// 3000: Person exceeds it at every scale, the other tables do not).
	PGMMaxCells int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2015 // SIGMOD'15
	}
	if c.Scale == 0 {
		c.Scale = 0.2
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 8
	}
	if c.MaxRows == 0 {
		c.MaxRows = 150
	}
	if c.CrowdWorkers == 0 {
		c.CrowdWorkers = 10
	}
	if c.CrowdAccuracy == 0 {
		c.CrowdAccuracy = 0.95
	}
	if c.PGMMaxCells == 0 {
		c.PGMMaxCells = 3000
	}
	return c
}

// Env is a fully built experimental environment: the world, both KBs with
// their statistics, and the three datasets.
type Env struct {
	Cfg      Config
	World    *world.World
	KBs      []*workload.KB // [Yago, DBpedia]
	Stats    map[string]*kbstats.Stats
	Datasets []*workload.Dataset // [WikiTables, WebTables, RelationalTables]
}

// NewEnv builds the environment for cfg.
func NewEnv(cfg Config) *Env {
	cfg = cfg.withDefaults()
	w := world.New(cfg.Seed, cfg.World)
	yago := workload.YagoLike(w, cfg.Seed+101)
	dbp := workload.DBpediaLike(w, cfg.Seed+102)
	relational := workload.RelationalTables(w, cfg.Seed+203, cfg.Scale)
	if cfg.PaperScale {
		relational = workload.RelationalTablesPaper(w, cfg.Seed+203)
	}
	env := &Env{
		Cfg:   cfg,
		World: w,
		KBs:   []*workload.KB{yago, dbp},
		Stats: map[string]*kbstats.Stats{
			yago.Name: kbstats.New(yago.Store),
			dbp.Name:  kbstats.New(dbp.Store),
		},
		Datasets: []*workload.Dataset{
			workload.WikiTables(w, cfg.Seed+201),
			workload.WebTables(w, cfg.Seed+202),
			relational,
		},
	}
	return env
}

// Dataset returns the dataset by name.
func (e *Env) Dataset(name string) *workload.Dataset {
	for _, d := range e.Datasets {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// candidates runs candidate generation for one spec against one KB.
func (e *Env) candidates(spec *workload.TableSpec, kb *workload.KB) *discovery.Candidates {
	return discovery.Generate(spec.Table, e.Stats[kb.Name], discovery.Options{
		MaxCandidates: e.Cfg.MaxCandidates,
		MaxRows:       e.Cfg.MaxRows,
	})
}

// newCrowd builds a fresh seeded crowd (one per experiment run, so runs are
// independent and reproducible).
func (e *Env) newCrowd(salt int64) *crowd.Crowd {
	return crowd.New(e.Cfg.CrowdWorkers, e.Cfg.CrowdAccuracy, e.Cfg.Seed+salt)
}

// newValidator builds a validator for one spec/KB pair.
func (e *Env) newValidator(spec *workload.TableSpec, kb *workload.KB, c *crowd.Crowd, salt int64) *validation.Validator {
	return &validation.Validator{
		KB:     kb.Store,
		Table:  spec.Table,
		Crowd:  c,
		Oracle: workload.SpecOracle{Spec: spec, KB: kb},
		Rng:    rand.New(rand.NewSource(e.Cfg.Seed + salt)),
	}
}

// discoveryAlgorithms enumerates the §7.1 competitors in paper order.
type discoveryAlgo struct {
	Name string
	Run  func(e *Env, c *discovery.Candidates, k int) []*pattern.Pattern
}

func algorithms() []discoveryAlgo {
	return []discoveryAlgo{
		{"Support", func(e *Env, c *discovery.Candidates, k int) []*pattern.Pattern {
			return discovery.SupportTopK(c, k)
		}},
		{"MaxLike", func(e *Env, c *discovery.Candidates, k int) []*pattern.Pattern {
			return discovery.MaxLikeTopK(c, k)
		}},
		{"PGM", func(e *Env, c *discovery.Candidates, k int) []*pattern.Pattern {
			return discovery.PGMTopK(c, k, discovery.PGMOptions{MaxCells: e.Cfg.PGMMaxCells})
		}},
		{"RankJoin", func(e *Env, c *discovery.Candidates, k int) []*pattern.Pattern {
			return discovery.TopK(c, k)
		}},
	}
}

// grid renders a simple fixed-width table.
type grid struct {
	header []string
	rows   [][]string
}

func (g *grid) add(cells ...string) { g.rows = append(g.rows, cells) }

func (g *grid) String() string {
	widths := make([]int, len(g.header))
	for i, h := range g.header {
		widths[i] = len(h)
	}
	for _, r := range g.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(g.header)
	for _, r := range g.rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
