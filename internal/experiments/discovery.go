package experiments

import (
	"fmt"
	"time"

	"katara/internal/discovery"
	"katara/internal/metrics"
	"katara/internal/rdf"
	"katara/internal/workload"
)

// --- Table 1: dataset and KB characteristics ---

// Table1Row counts annotatable columns and column pairs for one dataset
// under one KB.
type Table1Row struct {
	Dataset, KB            string
	NumTypes, NumRelations int
}

// Table1 reproduces "Table 1: Datasets and KBs characteristics".
func Table1(e *Env) []Table1Row {
	var out []Table1Row
	for _, kb := range e.KBs {
		for _, ds := range e.Datasets {
			row := Table1Row{Dataset: ds.Name, KB: kb.Name}
			for _, spec := range ds.Specs {
				tp := spec.TruthPattern(kb)
				for _, n := range tp.Nodes {
					if n.Type != rdf.NoID {
						row.NumTypes++
					}
				}
				row.NumRelations += len(tp.Edges)
			}
			out = append(out, row)
		}
	}
	return out
}

// RenderTable1 prints the rows paper-style.
func RenderTable1(rows []Table1Row) string {
	g := &grid{header: []string{"dataset", "KB", "#-type", "#-relationship"}}
	for _, r := range rows {
		g.add(r.Dataset, r.KB, fmt.Sprint(r.NumTypes), fmt.Sprint(r.NumRelations))
	}
	return "Table 1: Datasets and KBs characteristics\n" + g.String()
}

// --- Table 2: pattern discovery precision/recall ---

// Table2Cell is the macro-averaged P/R of one algorithm on one dataset
// under one KB.
type Table2Cell struct {
	Dataset, KB, Algorithm string
	PR                     metrics.PR
	Skipped                int // tables the algorithm could not process (PGM guard)
}

// Table2 reproduces "Table 2: Pattern discovery precision and recall":
// the top-1 pattern of each algorithm scored against the KB-specific ground
// truth with hierarchy partial credit.
func Table2(e *Env) []Table2Cell {
	var out []Table2Cell
	for _, kb := range e.KBs {
		for _, ds := range e.Datasets {
			cands := make([]*discoveryCands, len(ds.Specs))
			for i, spec := range ds.Specs {
				cands[i] = &discoveryCands{spec: spec, c: e.candidates(spec, kb)}
			}
			for _, algo := range algorithms() {
				cell := Table2Cell{Dataset: ds.Name, KB: kb.Name, Algorithm: algo.Name}
				var sumP, sumR float64
				n := 0
				for _, dc := range cands {
					ps := algo.Run(e, dc.c, 1)
					if ps == nil {
						cell.Skipped++
						continue
					}
					truth := dc.spec.TruthPattern(kb)
					pr := metrics.PatternPR(kb.Store, ps[0], truth)
					sumP += pr.Precision
					sumR += pr.Recall
					n++
				}
				if n > 0 {
					cell.PR = metrics.PR{Precision: sumP / float64(n), Recall: sumR / float64(n)}
				}
				out = append(out, cell)
			}
		}
	}
	return out
}

type discoveryCands struct {
	spec *workload.TableSpec
	c    *discovery.Candidates
}

// RenderTable2 prints the P/R matrix paper-style, one block per KB.
func RenderTable2(cells []Table2Cell) string {
	byKB := map[string]map[string]map[string]Table2Cell{}
	var kbs, datasets, algos []string
	seenKB, seenDS, seenAlgo := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, c := range cells {
		if byKB[c.KB] == nil {
			byKB[c.KB] = map[string]map[string]Table2Cell{}
		}
		if byKB[c.KB][c.Dataset] == nil {
			byKB[c.KB][c.Dataset] = map[string]Table2Cell{}
		}
		byKB[c.KB][c.Dataset][c.Algorithm] = c
		if !seenKB[c.KB] {
			seenKB[c.KB] = true
			kbs = append(kbs, c.KB)
		}
		if !seenDS[c.Dataset] {
			seenDS[c.Dataset] = true
			datasets = append(datasets, c.Dataset)
		}
		if !seenAlgo[c.Algorithm] {
			seenAlgo[c.Algorithm] = true
			algos = append(algos, c.Algorithm)
		}
	}
	out := "Table 2: Pattern discovery precision and recall\n"
	for _, kb := range kbs {
		header := []string{"dataset"}
		for _, a := range algos {
			header = append(header, a+" P", a+" R")
		}
		g := &grid{header: header}
		for _, ds := range datasets {
			row := []string{ds}
			for _, a := range algos {
				c := byKB[kb][ds][a]
				row = append(row, f2(c.PR.Precision), f2(c.PR.Recall))
			}
			g.add(row...)
		}
		out += kb + "\n" + g.String()
	}
	return out
}

// --- Table 3: pattern discovery efficiency ---

// Table3Cell is the wall-clock of one algorithm on one dataset under one
// KB. NA marks runs the algorithm refused (PGM at Person scale).
type Table3Cell struct {
	Dataset, KB, Algorithm string
	Elapsed                time.Duration
	NA                     bool
}

// Table3 reproduces "Table 3: Pattern discovery efficiency". The Person
// table is reported separately from the rest of RelationalTables, as in the
// paper.
func Table3(e *Env) []Table3Cell {
	var out []Table3Cell
	for _, kb := range e.KBs {
		for _, ds := range e.Datasets {
			groups := map[string][]*workload.TableSpec{}
			order := []string{}
			for _, spec := range ds.Specs {
				name := ds.Name
				if ds.Name == "RelationalTables" {
					if spec.Table.Name == "Person" {
						name = "Person"
					} else {
						name = "RelationalTables/Person"
					}
				}
				if _, ok := groups[name]; !ok {
					order = append(order, name)
				}
				groups[name] = append(groups[name], spec)
			}
			for _, gname := range order {
				for _, algo := range algorithms() {
					cell := Table3Cell{Dataset: gname, KB: kb.Name, Algorithm: algo.Name}
					start := time.Now()
					na := false
					for _, spec := range groups[gname] {
						c := e.candidates(spec, kb)
						if ps := algo.Run(e, c, 1); ps == nil && algo.Name == "PGM" {
							na = true
						}
					}
					cell.Elapsed = time.Since(start)
					cell.NA = na
					out = append(out, cell)
				}
			}
		}
	}
	return out
}

// RenderTable3 prints per-KB timing blocks.
func RenderTable3(cells []Table3Cell) string {
	out := "Table 3: Pattern discovery efficiency\n"
	byKB := map[string]map[string]map[string]Table3Cell{}
	var kbs, groups, algos []string
	seenKB, seenG, seenA := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, c := range cells {
		if byKB[c.KB] == nil {
			byKB[c.KB] = map[string]map[string]Table3Cell{}
		}
		if byKB[c.KB][c.Dataset] == nil {
			byKB[c.KB][c.Dataset] = map[string]Table3Cell{}
		}
		byKB[c.KB][c.Dataset][c.Algorithm] = c
		if !seenKB[c.KB] {
			seenKB[c.KB] = true
			kbs = append(kbs, c.KB)
		}
		if !seenG[c.Dataset] {
			seenG[c.Dataset] = true
			groups = append(groups, c.Dataset)
		}
		if !seenA[c.Algorithm] {
			seenA[c.Algorithm] = true
			algos = append(algos, c.Algorithm)
		}
	}
	for _, kb := range kbs {
		g := &grid{header: append([]string{"dataset"}, algos...)}
		for _, gr := range groups {
			row := []string{gr}
			for _, a := range algos {
				c := byKB[kb][gr][a]
				if c.NA {
					row = append(row, "N.A.")
				} else {
					row = append(row, c.Elapsed.Round(time.Millisecond).String())
				}
			}
			g.add(row...)
		}
		out += kb + "\n" + g.String()
	}
	return out
}

// --- Figures 6 and 11: top-k F-measure ---

// TopKFSeries is one (dataset, KB, algorithm) curve of best-F vs k.
type TopKFSeries struct {
	Dataset, KB, Algorithm string
	K                      []int
	F                      []float64
}

// Figure6 reproduces "Figure 6: Top-k F-measure (WebTables)".
func Figure6(e *Env, maxK int) []TopKFSeries {
	return topKF(e, "WebTables", maxK)
}

// Figure11 reproduces the appendix-B curves for WikiTables and
// RelationalTables.
func Figure11(e *Env, maxK int) []TopKFSeries {
	return append(topKF(e, "WikiTables", maxK), topKF(e, "RelationalTables", maxK)...)
}

func topKF(e *Env, dataset string, maxK int) []TopKFSeries {
	if maxK <= 0 {
		maxK = 10
	}
	ds := e.Dataset(dataset)
	var out []TopKFSeries
	for _, kb := range e.KBs {
		cands := make([]*discoveryCands, len(ds.Specs))
		for i, spec := range ds.Specs {
			cands[i] = &discoveryCands{spec: spec, c: e.candidates(spec, kb)}
		}
		for _, algo := range algorithms() {
			s := TopKFSeries{Dataset: dataset, KB: kb.Name, Algorithm: algo.Name}
			// Top-k prefixes nest (the ranking is deterministic), so one
			// maxK run per table yields every k's best-F.
			sums := make([]float64, maxK)
			counts := make([]int, maxK)
			for _, dc := range cands {
				ps := algo.Run(e, dc.c, maxK)
				if ps == nil {
					continue
				}
				truth := dc.spec.TruthPattern(kb)
				bestSoFar := 0.0
				for k := 1; k <= maxK; k++ {
					if k <= len(ps) {
						if f := metrics.PatternPR(kb.Store, ps[k-1], truth).F(); f > bestSoFar {
							bestSoFar = f
						}
					}
					sums[k-1] += bestSoFar
					counts[k-1]++
				}
			}
			for k := 1; k <= maxK; k++ {
				s.K = append(s.K, k)
				if counts[k-1] > 0 {
					s.F = append(s.F, sums[k-1]/float64(counts[k-1]))
				} else {
					s.F = append(s.F, 0)
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// RenderTopKF prints curves as rows of F values.
func RenderTopKF(title string, series []TopKFSeries) string {
	if len(series) == 0 {
		return title + ": no data\n"
	}
	header := []string{"dataset", "KB", "algorithm"}
	for _, k := range series[0].K {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	g := &grid{header: header}
	for _, s := range series {
		row := []string{s.Dataset, s.KB, s.Algorithm}
		for _, f := range s.F {
			row = append(row, f2(f))
		}
		g.add(row...)
	}
	return title + "\n" + g.String()
}
