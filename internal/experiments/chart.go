package experiments

import (
	"fmt"
	"strings"
)

// ASCII rendering for the figure experiments: each curve becomes a row of
// eighth-block bars, so `kexp` output shows the *shape* of a figure, not
// just its numbers.

var barRunes = []rune(" ▁▂▃▄▅▆▇█")

// sparkline renders values in [0,1] as a block-character strip.
func sparkline(values []float64) string {
	var b strings.Builder
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		idx := int(v*float64(len(barRunes)-1) + 0.5)
		b.WriteRune(barRunes[idx])
	}
	return b.String()
}

// ChartTopKF renders Figure 6/11 series as sparklines.
func ChartTopKF(title string, series []TopKFSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — best F of top-k, k=1..%d\n", title, seriesLen(series))
	for _, s := range series {
		fmt.Fprintf(&b, "  %-18s %-8s %-9s |%s| %.2f→%.2f\n",
			s.Dataset, s.KB, s.Algorithm, sparkline(s.F), first(s.F), last(s.F))
	}
	return b.String()
}

// ChartValidation renders Figure 7/12 series as sparklines (precision row
// and recall row per curve).
func ChartValidation(title string, series []ValidationSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — validated-pattern quality, q=1..%d\n", title, vseriesLen(series))
	for _, s := range series {
		fmt.Fprintf(&b, "  %-18s %-8s P |%s| %.2f→%.2f\n",
			s.Dataset, s.KB, sparkline(s.P), first(s.P), last(s.P))
		fmt.Fprintf(&b, "  %-18s %-8s R |%s| %.2f→%.2f\n",
			s.Dataset, s.KB, sparkline(s.R), first(s.R), last(s.R))
	}
	return b.String()
}

// ChartRepairK renders Figure 8 series as sparklines.
func ChartRepairK(series []RepairKSeries) string {
	var b strings.Builder
	b.WriteString("Figure 8 — repair F vs k\n")
	for _, s := range series {
		if s.NA {
			fmt.Fprintf(&b, "  %-12s %-8s |%s| N.A.\n", s.Table, s.KB,
				strings.Repeat("·", 5))
			continue
		}
		fmt.Fprintf(&b, "  %-12s %-8s |%s| %.2f→%.2f\n",
			s.Table, s.KB, sparkline(s.F), first(s.F), last(s.F))
	}
	return b.String()
}

func seriesLen(s []TopKFSeries) int {
	if len(s) == 0 {
		return 0
	}
	return len(s[0].K)
}

func vseriesLen(s []ValidationSeries) int {
	if len(s) == 0 {
		return 0
	}
	return len(s[0].Q)
}

func first(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return v[0]
}

func last(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}

// CSVTopKF exports figure series as CSV for external plotting.
func CSVTopKF(series []TopKFSeries) string {
	var b strings.Builder
	b.WriteString("dataset,kb,algorithm,k,f\n")
	for _, s := range series {
		for i, k := range s.K {
			fmt.Fprintf(&b, "%s,%s,%s,%d,%.4f\n", s.Dataset, s.KB, s.Algorithm, k, s.F[i])
		}
	}
	return b.String()
}

// CSVValidation exports validation series as CSV.
func CSVValidation(series []ValidationSeries) string {
	var b strings.Builder
	b.WriteString("dataset,kb,q,precision,recall\n")
	for _, s := range series {
		for i, q := range s.Q {
			fmt.Fprintf(&b, "%s,%s,%d,%.4f,%.4f\n", s.Dataset, s.KB, q, s.P[i], s.R[i])
		}
	}
	return b.String()
}

// CSVRepairK exports Figure 8 series as CSV.
func CSVRepairK(series []RepairKSeries) string {
	var b strings.Builder
	b.WriteString("table,kb,k,f\n")
	for _, s := range series {
		if s.NA {
			continue
		}
		for i, k := range s.K {
			fmt.Fprintf(&b, "%s,%s,%d,%.4f\n", s.Table, s.KB, k, s.F[i])
		}
	}
	return b.String()
}
