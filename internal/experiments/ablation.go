package experiments

import (
	"katara/internal/discovery"
	"katara/internal/metrics"
)

// AblationRow compares the full §4.2 scoring model against naiveScore (the
// tf-idf-only variant the paper introduces and rejects) on one dataset × KB.
type AblationRow struct {
	Dataset, KB string
	Full, Naive metrics.PR
}

// AblationCoherence quantifies what the semantic-coherence term buys: the
// top-1 pattern under score(φ) vs naiveScore(φ), both over identical
// candidates. This is the executable form of Example 5's argument.
func AblationCoherence(e *Env) []AblationRow {
	var out []AblationRow
	for _, kb := range e.KBs {
		for _, ds := range e.Datasets {
			row := AblationRow{Dataset: ds.Name, KB: kb.Name}
			var fp, fr, np, nr float64
			n := 0
			for _, spec := range ds.Specs {
				c := e.candidates(spec, kb)
				truth := spec.TruthPattern(kb)
				if full := discovery.TopK(c, 1); len(full) > 0 {
					pr := metrics.PatternPR(kb.Store, full[0], truth)
					fp += pr.Precision
					fr += pr.Recall
				}
				if naive := discovery.TopKNaive(c, 1); len(naive) > 0 {
					pr := metrics.PatternPR(kb.Store, naive[0], truth)
					np += pr.Precision
					nr += pr.Recall
				}
				n++
			}
			if n > 0 {
				row.Full = metrics.PR{Precision: fp / float64(n), Recall: fr / float64(n)}
				row.Naive = metrics.PR{Precision: np / float64(n), Recall: nr / float64(n)}
			}
			out = append(out, row)
		}
	}
	return out
}

// RenderAblation prints the comparison.
func RenderAblation(rows []AblationRow) string {
	g := &grid{header: []string{"dataset", "KB", "score(φ) P", "R", "naiveScore P", "R", "ΔF"}}
	for _, r := range rows {
		g.add(r.Dataset, r.KB,
			f2(r.Full.Precision), f2(r.Full.Recall),
			f2(r.Naive.Precision), f2(r.Naive.Recall),
			f2(r.Full.F()-r.Naive.F()))
	}
	return "Ablation: coherence term of score(φ) vs naiveScore (§4.2)\n" + g.String()
}
