package validation

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"katara/internal/crowd"
	"katara/internal/pattern"
	"katara/internal/rdf"
)

// These tests pin the MUVF schedule itself: entropy tie-breaking is
// deterministic (first tied variable in Variables order wins, because the
// selection loop uses a strict h > bestH comparison), and uncertainty
// behaves as Theorem 1 predicts while answers arrive.

// recordingTransport answers every question truthfully and keeps the prompt
// sequence, so a test can observe exactly which variable each question
// targeted and in what order.
type recordingTransport struct {
	prompts []string
}

func (r *recordingTransport) Deliver(q crowd.Question, _ crowd.Worker, _ func() int) crowd.Delivery {
	r.prompts = append(r.prompts, q.Prompt)
	return crowd.Delivery{Answer: q.Truth}
}

func recordingValidator(kb *rdf.Store, o Oracle) (*Validator, *recordingTransport) {
	rec := &recordingTransport{}
	return &Validator{
		KB:     kb,
		Crowd:  crowd.Perfect(3, crowd.WithTransport(rec)),
		Oracle: o,
		Rng:    rand.New(rand.NewSource(1)),
	}, rec
}

// typeGrid builds four equal-score patterns over two type variables with two
// candidate types each — both column variables carry exactly one bit of
// entropy, so the schedule must break the tie.
func typeGrid(scores []float64) (*rdf.Store, []*pattern.Pattern, fixedOracle) {
	kb := rdf.New()
	t0a, t0b := kb.Res("t0a"), kb.Res("t0b")
	t1a, t1b := kb.Res("t1a"), kb.Res("t1b")
	mk := func(a, b rdf.ID, s float64) *pattern.Pattern {
		return &pattern.Pattern{
			Nodes: []pattern.Node{{Column: 0, Type: a}, {Column: 1, Type: b}},
			Score: s,
		}
	}
	ps := []*pattern.Pattern{
		mk(t0a, t1a, scores[0]),
		mk(t0a, t1b, scores[1]),
		mk(t0b, t1a, scores[2]),
		mk(t0b, t1b, scores[3]),
	}
	return kb, ps, fixedOracle{types: map[int]rdf.ID{0: t0a, 1: t1a}}
}

// pairGrid builds four equal-score patterns whose type variables are all
// certain (same type everywhere) while the two relationship variables each
// carry one bit — a tie between pair variables only.
func pairGrid() (*rdf.Store, []*pattern.Pattern, fixedOracle) {
	kb := rdf.New()
	typ := kb.Res("thing")
	p, q := kb.Res("p"), kb.Res("q")
	r, s := kb.Res("r"), kb.Res("s")
	mk := func(e01, e12 rdf.ID) *pattern.Pattern {
		return &pattern.Pattern{
			Nodes: []pattern.Node{{Column: 0, Type: typ}, {Column: 1, Type: typ}, {Column: 2, Type: typ}},
			Edges: []pattern.Edge{{From: 0, To: 1, Prop: e01}, {From: 1, To: 2, Prop: e12}},
			Score: 1,
		}
	}
	ps := []*pattern.Pattern{mk(p, r), mk(p, s), mk(q, r), mk(q, s)}
	oracle := fixedOracle{
		types: map[int]rdf.ID{0: typ, 1: typ, 2: typ},
		rels:  map[[2]int]rdf.ID{{0, 1}: p, {1, 2}: r},
	}
	return kb, ps, oracle
}

// TestTieBreakIsDeterministic: when several variables share the maximal
// entropy, MUVF must always pick the earliest one in Variables order (the
// strict h > bestH comparison keeps the first), and repeated runs must ask
// byte-identical question sequences.
func TestTieBreakIsDeterministic(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*rdf.Store, []*pattern.Pattern, fixedOracle)
		// firstQuestion is the prefix every run's first prompt must carry:
		// the earliest tied variable in Variables order.
		firstQuestion string
	}{
		{
			name:          "tied type variables pick the lowest column",
			mk:            func() (*rdf.Store, []*pattern.Pattern, fixedOracle) { return typeGrid([]float64{1, 1, 1, 1}) },
			firstQuestion: "What is the most accurate type of the highlighted column 0?",
		},
		{
			name:          "tied pair variables pick the lowest ordered pair",
			mk:            func() (*rdf.Store, []*pattern.Pattern, fixedOracle) { return pairGrid() },
			firstQuestion: "What is the most accurate relationship for the highlighted columns 0 and 1?",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var baseline []string
			for run := 0; run < 5; run++ {
				kb, ps, oracle := tc.mk()
				v, rec := recordingValidator(kb, oracle)
				res := v.MUVF(ps)
				if res.Pattern == nil {
					t.Fatal("MUVF returned no pattern")
				}
				if len(rec.prompts) == 0 {
					t.Fatal("no questions asked despite tied uncertain variables")
				}
				if !strings.HasPrefix(rec.prompts[0], tc.firstQuestion) {
					t.Fatalf("run %d: first question %q does not target the earliest tied variable", run, rec.prompts[0])
				}
				if run == 0 {
					baseline = rec.prompts
					continue
				}
				if !reflect.DeepEqual(baseline, rec.prompts) {
					t.Fatalf("run %d asked a different question sequence:\n%v\nvs baseline\n%v", run, rec.prompts, baseline)
				}
			}
		})
	}
}

// TestTieBreakSurvivesInputOrder: tied variables are chosen by Variables
// order (sorted columns, then sorted pairs), not by the order candidates
// happen to arrive in — reversing the candidate list must not change which
// variable is asked first.
func TestTieBreakSurvivesInputOrder(t *testing.T) {
	kb, ps, oracle := typeGrid([]float64{1, 1, 1, 1})
	rev := make([]*pattern.Pattern, len(ps))
	for i, p := range ps {
		rev[len(ps)-1-i] = p
	}
	vFwd, recFwd := recordingValidator(kb, oracle)
	vRev, recRev := recordingValidator(kb, oracle)
	vFwd.MUVF(ps)
	vRev.MUVF(rev)
	if len(recFwd.prompts) == 0 || len(recRev.prompts) == 0 {
		t.Fatal("no questions asked")
	}
	if recFwd.prompts[0] != recRev.prompts[0] {
		t.Fatalf("candidate order changed the schedule head:\n%q\nvs\n%q", recFwd.prompts[0], recRev.prompts[0])
	}
}

// TestUncertaintyDecreasesAsAnswersArrive walks the MUVF schedule by hand,
// answering every question truthfully, and checks the Theorem 1 sanity
// properties at each step:
//
//   - E[ΔH(φ)](v) = H(v) for every candidate variable (Theorem 1, numerically);
//   - 0 ≤ H(v) ≤ H(φ): the expected posterior entropy H(φ) − H(v) never
//     goes negative;
//   - the realized distribution entropy H(φ) decreases monotonically under
//     truthful answers (guaranteed only in expectation in general, and it
//     holds outright for these fixtures);
//   - a validated variable's entropy is exactly 0 immediately after its
//     filter, and stays 0 for the rest of the run.
//
// Per-variable entropies of *other* variables may legitimately rise while
// answers arrive — Example 9's H(vC) climbs from 0.81 to 0.93 after vB is
// answered — so no such assertion appears here.
func TestUncertaintyDecreasesAsAnswersArrive(t *testing.T) {
	cases := []struct {
		name string
		mk   func() ([]*pattern.Pattern, fixedOracle)
	}{
		{"example 8", func() ([]*pattern.Pattern, fixedOracle) {
			e := newEx8()
			return e.patterns, e.oracle()
		}},
		{"tied type grid", func() ([]*pattern.Pattern, fixedOracle) {
			_, ps, o := typeGrid([]float64{1, 1, 1, 1})
			return ps, o
		}},
		{"skewed type grid", func() ([]*pattern.Pattern, fixedOracle) {
			_, ps, o := typeGrid([]float64{0.5, 0.25, 0.15, 0.1})
			return ps, o
		}},
		{"tied pair grid", func() ([]*pattern.Pattern, fixedOracle) {
			_, ps, o := pairGrid()
			return ps, o
		}},
	}
	truthOf := func(o fixedOracle, v Variable) rdf.ID {
		if v.IsPair {
			return o.TrueRel(v.From, v.To)
		}
		return o.TrueType(v.Col)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps, oracle := tc.mk()
			remaining := clonePatterns(ps)
			validated := map[Variable]bool{}
			prevH := math.Inf(1)
			for step := 0; len(remaining) > 1; step++ {
				probs := Probabilities(remaining)
				hNow := Entropy(probs)
				if hNow > prevH+1e-9 {
					t.Fatalf("step %d: H(φ) rose from %.9f to %.9f under a truthful answer", step, prevH, hNow)
				}
				prevH = hNow

				best, bestH := Variable{}, 0.0
				for _, v := range Variables(remaining) {
					h := VariableEntropy(remaining, probs, v)
					if validated[v] {
						if h > 1e-9 {
							t.Fatalf("step %d: validated variable %v regained entropy %.9f", step, v, h)
						}
						continue
					}
					eur := ExpectedUncertaintyReduction(remaining, probs, v)
					if math.Abs(h-eur) > 1e-9 {
						t.Fatalf("step %d: Theorem 1 violated for %v: H=%.9f, E[ΔH]=%.9f", step, v, h, eur)
					}
					if eur < -1e-9 {
						t.Fatalf("step %d: negative expected reduction %.9f for %v", step, eur, v)
					}
					if eur > hNow+1e-9 {
						t.Fatalf("step %d: %v promises reduction %.9f exceeding current H(φ)=%.9f", step, v, eur, hNow)
					}
					if h > bestH {
						best, bestH = v, h
					}
				}
				if bestH == 0 {
					break
				}
				remaining = filter(remaining, best, truthOf(oracle, best))
				if len(remaining) == 0 {
					t.Fatalf("step %d: truthful answer for %v eliminated every candidate", step, best)
				}
				validated[best] = true
				if h := VariableEntropy(remaining, Probabilities(remaining), best); h > 1e-9 {
					t.Fatalf("step %d: %v still carries entropy %.9f after its truthful filter", step, best, h)
				}
			}
			if len(remaining) != 1 {
				t.Fatalf("truthful schedule left %d candidates", len(remaining))
			}
		})
	}
}

// TestMUVFResultDeterministic: two full MUVF runs from identically
// configured validators must agree on the chosen pattern, the counts, and
// the crowd interaction.
func TestMUVFResultDeterministic(t *testing.T) {
	e1, e2 := newEx8(), newEx8()
	v1, rec1 := recordingValidator(e1.kb, e1.oracle())
	v2, rec2 := recordingValidator(e2.kb, e2.oracle())
	r1 := v1.MUVF(e1.patterns)
	r2 := v2.MUVF(e2.patterns)
	if r1.Pattern.Key() != r2.Pattern.Key() {
		t.Fatalf("patterns differ: %s vs %s", r1.Pattern.Key(), r2.Pattern.Key())
	}
	if r1.VariablesValidated != r2.VariablesValidated || r1.QuestionsAsked != r2.QuestionsAsked || r1.Degraded != r2.Degraded {
		t.Fatalf("results differ: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(rec1.prompts, rec2.prompts) {
		t.Fatalf("question sequences differ:\n%v\nvs\n%v", rec1.prompts, rec2.prompts)
	}
}
