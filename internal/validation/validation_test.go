package validation

import (
	"math"
	"math/rand"
	"testing"

	"katara/internal/crowd"
	"katara/internal/pattern"
	"katara/internal/rdf"
	"katara/internal/table"
)

// example8 reproduces the five patterns of Example 8 over columns B (type),
// C (type) and the pair (B,C). Scores: 2.8, 2, 2, 0.8, 0.4 giving
// probabilities 0.35, 0.25, 0.25, 0.1, 0.05.
type ex8 struct {
	kb                                     *rdf.Store
	country, economy, state, capital, city rdf.ID
	hasCapital, locatedIn                  rdf.ID
	patterns                               []*pattern.Pattern
}

func newEx8() *ex8 {
	kb := rdf.New()
	e := &ex8{kb: kb}
	e.country = kb.Res("country")
	e.economy = kb.Res("economy")
	e.state = kb.Res("state")
	e.capital = kb.Res("capital")
	e.city = kb.Res("city")
	e.hasCapital = kb.Res("hasCapital")
	e.locatedIn = kb.Res("locatedIn")
	mk := func(tb, tc, rel rdf.ID, score float64) *pattern.Pattern {
		return &pattern.Pattern{
			Nodes: []pattern.Node{{Column: 1, Type: tb}, {Column: 2, Type: tc}},
			Edges: []pattern.Edge{{From: 1, To: 2, Prop: rel}},
			Score: score,
		}
	}
	e.patterns = []*pattern.Pattern{
		mk(e.country, e.capital, e.hasCapital, 2.8),
		mk(e.economy, e.capital, e.hasCapital, 2),
		mk(e.country, e.city, e.locatedIn, 2),
		mk(e.country, e.capital, e.locatedIn, 0.8),
		mk(e.state, e.capital, e.hasCapital, 0.4),
	}
	return e
}

type fixedOracle struct {
	types map[int]rdf.ID
	rels  map[[2]int]rdf.ID
}

func (o fixedOracle) TrueType(col int) rdf.ID     { return o.types[col] }
func (o fixedOracle) TrueRel(from, to int) rdf.ID { return o.rels[[2]int{from, to}] }

func (e *ex8) oracle() fixedOracle {
	return fixedOracle{
		types: map[int]rdf.ID{1: e.country, 2: e.capital},
		rels:  map[[2]int]rdf.ID{{1, 2}: e.hasCapital},
	}
}

func (e *ex8) validator(c *crowd.Crowd) *Validator {
	tbl := table.New("t", "A", "B", "C")
	tbl.Append("Rossi", "Italy", "Rome")
	tbl.Append("Pirlo", "Italy", "Madrid")
	return &Validator{
		KB: e.kb, Table: tbl, Crowd: c, Oracle: e.oracle(),
		Rng: rand.New(rand.NewSource(5)),
	}
}

func TestProbabilitiesMatchExample8(t *testing.T) {
	e := newEx8()
	probs := Probabilities(e.patterns)
	want := []float64{0.35, 0.25, 0.25, 0.1, 0.05}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-9 {
			t.Fatalf("prob[%d] = %f, want %f", i, probs[i], want[i])
		}
	}
}

func TestProbabilitiesRankStable(t *testing.T) {
	e := newEx8()
	probs := Probabilities(e.patterns)
	for i := 1; i < len(probs); i++ {
		if e.patterns[i].Score > e.patterns[i-1].Score && probs[i] <= probs[i-1] {
			t.Fatal("probability translation is not rank-stable")
		}
	}
}

func TestVariableEntropiesMatchExample9(t *testing.T) {
	e := newEx8()
	probs := Probabilities(e.patterns)
	vars := Variables(e.patterns)
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
	hB := VariableEntropy(e.patterns, probs, Variable{Col: 1})
	hC := VariableEntropy(e.patterns, probs, Variable{Col: 2})
	hBC := VariableEntropy(e.patterns, probs, Variable{IsPair: true, From: 1, To: 2})
	// Example 9: H(vB)=1.07, H(vC)=0.81, H(vBC)=0.93.
	if math.Abs(hB-1.07) > 0.01 {
		t.Fatalf("H(vB) = %f, want 1.07", hB)
	}
	if math.Abs(hC-0.81) > 0.01 {
		t.Fatalf("H(vC) = %f, want 0.81", hC)
	}
	if math.Abs(hBC-0.93) > 0.01 {
		t.Fatalf("H(vBC) = %f, want 0.93", hBC)
	}
}

func TestTheorem1(t *testing.T) {
	// E[ΔH(φ)](v) = H(v) for every variable.
	e := newEx8()
	probs := Probabilities(e.patterns)
	for _, v := range Variables(e.patterns) {
		lhs := ExpectedUncertaintyReduction(e.patterns, probs, v)
		rhs := VariableEntropy(e.patterns, probs, v)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("Theorem 1 violated for %v: E[ΔH]=%f, H=%f", v, lhs, rhs)
		}
	}
}

func TestMUVFFollowsExample9Schedule(t *testing.T) {
	// With a perfect crowd, MUVF must validate B first (H=1.07), then the
	// pair (new entropies: H(vC)=0.93, H(vBC)=1.0), converging to φ1 with
	// only 2 variables — never needing vC.
	e := newEx8()
	v := e.validator(crowd.Perfect(10))
	res := v.MUVF(e.patterns)
	if res.VariablesValidated != 2 {
		t.Fatalf("MUVF validated %d variables, want 2", res.VariablesValidated)
	}
	if res.Pattern.TypeOf(1) != e.country || res.Pattern.TypeOf(2) != e.capital {
		t.Fatal("MUVF converged to the wrong pattern")
	}
	if res.Pattern.EdgeBetween(1, 2).Prop != e.hasCapital {
		t.Fatal("MUVF picked wrong relationship")
	}
}

func TestAVIValidatesMoreVariables(t *testing.T) {
	e := newEx8()
	muvf := e.validator(crowd.Perfect(10)).MUVF(e.patterns)
	avi := e.validator(crowd.Perfect(10)).AVI(e.patterns)
	if avi.Pattern.Key() != muvf.Pattern.Key() {
		t.Fatal("AVI and MUVF disagree under a perfect crowd")
	}
	if avi.VariablesValidated < muvf.VariablesValidated {
		t.Fatalf("AVI validated %d < MUVF %d", avi.VariablesValidated, muvf.VariablesValidated)
	}
}

func TestNoisyCrowdConvergesWithMoreQuestions(t *testing.T) {
	// Figure 7's shape: accuracy of the validated pattern improves with q.
	e := newEx8()
	correct := func(q int, seed int64) int {
		hits := 0
		const trials = 60
		for i := 0; i < trials; i++ {
			v := e.validator(crowd.New(10, 0.75, seed+int64(i)))
			v.QuestionsPerVariable = q
			res := v.MUVF(e.patterns)
			if res.Pattern != nil && res.Pattern.TypeOf(1) == e.country &&
				res.Pattern.EdgeBetween(1, 2) != nil &&
				res.Pattern.EdgeBetween(1, 2).Prop == e.hasCapital {
				hits++
			}
		}
		return hits
	}
	lo := correct(1, 100)
	hi := correct(7, 100)
	if hi < lo {
		t.Fatalf("more questions reduced accuracy: q=1 %d vs q=7 %d", lo, hi)
	}
	if hi < 50 {
		t.Fatalf("q=7 accuracy too low: %d/60", hi)
	}
}

func TestNoneOfTheAbove(t *testing.T) {
	// Oracle says the true type of B is not among the candidates: the crowd
	// answers "none of the above", and the B node is removed from every
	// candidate — the crowd established that no candidate type is right.
	e := newEx8()
	other := e.kb.Res("somethingelse")
	v := e.validator(crowd.Perfect(10))
	v.Oracle = fixedOracle{
		types: map[int]rdf.ID{1: other, 2: e.capital},
		rels:  map[[2]int]rdf.ID{{1, 2}: e.hasCapital},
	}
	res := v.MUVF(e.patterns)
	if res.Pattern == nil {
		t.Fatal("validation must still return a pattern")
	}
	if res.Pattern.TypeOf(1) != rdf.NoID {
		t.Fatal("rejected B node should be stripped from the pattern")
	}
	if res.Pattern.TypeOf(2) != e.capital {
		t.Fatal("C should be validated to capital")
	}
	// The callers' patterns are untouched.
	if e.patterns[0].TypeOf(1) == rdf.NoID {
		t.Fatal("MUVF mutated its input patterns")
	}
}

func TestFilterSemantics(t *testing.T) {
	e := newEx8()
	kept := filter(e.patterns, Variable{Col: 1}, e.country)
	if len(kept) != 3 {
		t.Fatalf("P(vB=country) has %d patterns, want 3 (Example 8)", len(kept))
	}
	if got := filter(e.patterns, Variable{Col: 1}, rdf.NoID); len(got) != len(e.patterns) {
		t.Fatal("none-answer must prune nothing")
	}
}

func TestRenormalisationAfterFilter(t *testing.T) {
	// Example 9's table: after vB=country, probabilities are 0.5, 0.35, 0.15.
	e := newEx8()
	kept := filter(e.patterns, Variable{Col: 1}, e.country)
	probs := Probabilities(kept)
	want := []float64{2.8 / 5.6, 2.0 / 5.6, 0.8 / 5.6}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-9 {
			t.Fatalf("renormalised prob[%d] = %f, want %f", i, probs[i], want[i])
		}
	}
}

func TestIdenticalPatternsTerminate(t *testing.T) {
	e := newEx8()
	same := []*pattern.Pattern{e.patterns[0].Clone(), e.patterns[0].Clone()}
	v := e.validator(crowd.Perfect(10))
	res := v.MUVF(same)
	if res.Pattern == nil {
		t.Fatal("must return a pattern")
	}
	// No uncertainty to resolve; only the final edge sweep runs.
	if res.VariablesValidated != 1 {
		t.Fatalf("identical patterns need only the edge sweep, used %d", res.VariablesValidated)
	}
}

func TestSinglePatternSweepsEdges(t *testing.T) {
	e := newEx8()
	v := e.validator(crowd.Perfect(10))
	res := v.MUVF(e.patterns[:1])
	// The single candidate's one edge is still verified before use.
	if res.VariablesValidated != 1 {
		t.Fatalf("expected 1 swept edge, got %d", res.VariablesValidated)
	}
	if res.Pattern.Key() != e.patterns[0].Key() {
		t.Fatal("wrong pattern returned")
	}
}

func TestSweepStripsRefutedUnanimousEdge(t *testing.T) {
	// All candidates agree on a wrong relationship: entropy never selects
	// the pair, but the final sweep must catch and strip it.
	e := newEx8()
	a := e.patterns[0].Clone() // hasCapital
	b := e.patterns[1].Clone() // economy type, same hasCapital edge
	v := e.validator(crowd.Perfect(10))
	v.Oracle = fixedOracle{
		types: map[int]rdf.ID{1: e.country, 2: e.capital},
		rels:  map[[2]int]rdf.ID{{1, 2}: e.kb.Res("somethingelse")},
	}
	res := v.MUVF([]*pattern.Pattern{a, b})
	if res.Pattern.EdgeBetween(1, 2) != nil {
		t.Fatal("refuted unanimous edge survived the sweep")
	}
}

func TestDifficultyFromOverlap(t *testing.T) {
	kb := rdf.New()
	// Two types sharing 80% of instances.
	for i := 0; i < 10; i++ {
		e := kb.Res(rdf.IRI("e").Value + string(rune('0'+i)))
		if i < 8 {
			kb.Add(e, kb.TypeID, kb.Res("T1"))
			kb.Add(e, kb.TypeID, kb.Res("T2"))
		} else if i < 9 {
			kb.Add(e, kb.TypeID, kb.Res("T1"))
		} else {
			kb.Add(e, kb.TypeID, kb.Res("T2"))
		}
	}
	v := &Validator{KB: kb, Crowd: crowd.Perfect(3), Rng: rand.New(rand.NewSource(1))}
	v.defaults()
	d := v.difficulty([]rdf.ID{kb.Res("T1"), kb.Res("T2")}, Variable{Col: 0})
	want := math.Pow(0.8, 5)
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("difficulty = %f, want %f", d, want)
	}
	if v.difficulty([]rdf.ID{kb.Res("T1")}, Variable{Col: 0}) != 0 {
		t.Fatal("single-candidate difficulty must be 0")
	}
}

func TestQuestionAccounting(t *testing.T) {
	e := newEx8()
	c := crowd.Perfect(10)
	v := e.validator(c)
	v.QuestionsPerVariable = 4
	res := v.MUVF(e.patterns)
	if res.QuestionsAsked != res.VariablesValidated*4 {
		t.Fatalf("QuestionsAsked = %d, vars = %d", res.QuestionsAsked, res.VariablesValidated)
	}
	if c.Stats().Questions != res.QuestionsAsked {
		t.Fatalf("crowd saw %d questions, result says %d", c.Stats().Questions, res.QuestionsAsked)
	}
}
