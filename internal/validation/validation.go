// Package validation implements KATARA's crowd-based pattern validation
// (§5): candidate patterns are decomposed into column-type and column-pair
// relationship variables, scores are normalised into a rank-stable
// probability distribution, and variables are validated in order of maximal
// entropy — the most-uncertain-variable-first (MUVF) schedule of Algorithm
// 3, justified by Theorem 1 (E[ΔH(φ)](v) = H(v)). The all-variables-
// independent (AVI) baseline of §7.2 is provided for comparison.
package validation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"katara/internal/crowd"
	"katara/internal/pattern"
	"katara/internal/provenance"
	"katara/internal/rdf"
	"katara/internal/table"
)

// Variable identifies one decomposed unit of a table pattern: the type of a
// column, or the relationship of an ordered column pair (§5.1).
type Variable struct {
	IsPair   bool
	Col      int // type variable: the column
	From, To int // relationship variable: the ordered pair
}

// String implements fmt.Stringer.
func (v Variable) String() string {
	if v.IsPair {
		return fmt.Sprintf("rel(%d,%d)", v.From, v.To)
	}
	return fmt.Sprintf("type(%d)", v.Col)
}

// Oracle supplies the ground truth the simulated crowd answers from.
// rdf.NoID means "none of the candidates is correct".
type Oracle interface {
	TrueType(col int) rdf.ID
	TrueRel(from, to int) rdf.ID
}

// Validator validates candidate patterns against a crowd.
type Validator struct {
	KB     *rdf.Store
	Table  *table.Table
	Crowd  *crowd.Crowd
	Oracle Oracle
	// QuestionsPerVariable is q in §7.2 (default 3).
	QuestionsPerVariable int
	// TuplesPerQuestion is k_t, the sample tuples shown per question
	// (default 5, §7.2).
	TuplesPerQuestion int
	// Rng drives tuple sampling (required for determinism).
	Rng *rand.Rand
	// Ctx bounds the crowd interaction (nil = context.Background()). When
	// the deadline or the crowd's budget is exhausted mid-validation, the
	// run degrades: the best pattern among the still-viable candidates is
	// returned and Result.Degraded is set.
	Ctx context.Context
	// Prov records each MUVF entropy step's evidence; nil disables.
	Prov *provenance.Recorder

	// Memo, when set, records each variable's plurality decision keyed on
	// (variable, candidate domain) — the full decision context of one
	// validate call. With Replay false the validator runs normally and
	// stores every decision it reaches; with Replay true it answers from
	// the memo WITHOUT consulting the crowd, and a lookup miss sets Missed
	// and aborts the run (the MUVF degrade path). Incremental cleaning uses
	// replay as its drift detector: re-running MUVF over freshly discovered
	// candidates purely from memoised decisions either reproduces the
	// validated pattern — proving the crowd's answers still pin it — or
	// misses, meaning the appended rows shifted a decision context and the
	// pattern must be re-validated live.
	Memo   *AnswerMemo
	Replay bool
	// Missed reports that a Replay run needed a decision the memo lacks.
	Missed bool

	ambCache map[[2]rdf.ID]float64
}

// AnswerMemo is a memo of crowd plurality decisions, keyed on the variable
// and the exact candidate domain it was decided over. It assumes the crowd's
// plurality is a function of that context — true for the deterministic
// simulated crowds; a noisy live crowd voids replay anyway, since even batch
// re-runs would diverge.
type AnswerMemo struct {
	m map[string]rdf.ID
}

// NewAnswerMemo returns an empty memo.
func NewAnswerMemo() *AnswerMemo { return &AnswerMemo{m: make(map[string]rdf.ID)} }

// Len returns the number of memoised decisions.
func (m *AnswerMemo) Len() int { return len(m.m) }

func memoKey(v Variable, domain []rdf.ID) string {
	var b strings.Builder
	b.WriteString(v.String())
	for _, id := range domain {
		fmt.Fprintf(&b, ",%d", id)
	}
	return b.String()
}

// errMemoMiss aborts a replay at the first decision the memo cannot answer.
var errMemoMiss = errors.New("validation: answer memo miss")

// recordStep records one validation iteration into the provenance recorder.
func (val *Validator) recordStep(v Variable, entropy float64, asked int, answer rdf.ID, degraded bool) {
	if !val.Prov.Enabled() {
		return
	}
	label := "none of the above"
	if degraded {
		label = "(degraded)"
	} else if answer != rdf.NoID {
		label = val.KB.LabelOf(answer)
	}
	val.Prov.RecordValidationStep(v.String(), entropy, asked, label, degraded)
}

func (v *Validator) ctx() context.Context {
	if v.Ctx != nil {
		return v.Ctx
	}
	return context.Background()
}

func (v *Validator) defaults() {
	if v.QuestionsPerVariable == 0 {
		v.QuestionsPerVariable = 3
	}
	if v.TuplesPerQuestion == 0 {
		v.TuplesPerQuestion = 5
	}
	if v.Rng == nil {
		v.Rng = rand.New(rand.NewSource(1))
	}
	if v.ambCache == nil {
		v.ambCache = make(map[[2]rdf.ID]float64)
	}
}

// Result reports the outcome of a validation run.
type Result struct {
	Pattern            *pattern.Pattern
	VariablesValidated int
	QuestionsAsked     int
	// Degraded reports that validation was cut short by the deadline or
	// crowd budget and fell back to the best-scored viable pattern.
	Degraded bool
}

// Probabilities converts pattern scores into the rank-stable distribution
// of §5.2: Pr(φ=φi) = score(φi) / Σ score(φj).
func Probabilities(ps []*pattern.Pattern) []float64 {
	total := 0.0
	for _, p := range ps {
		if p.Score > 0 {
			total += p.Score
		}
	}
	out := make([]float64, len(ps))
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(ps))
		}
		return out
	}
	for i, p := range ps {
		if p.Score > 0 {
			out[i] = p.Score / total
		}
	}
	return out
}

// Entropy returns H(X) = -Σ p log2 p for a distribution.
func Entropy(dist []float64) float64 {
	h := 0.0
	for _, p := range dist {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// Variables returns the distinct variables appearing across the patterns,
// columns first, in deterministic order.
func Variables(ps []*pattern.Pattern) []Variable {
	colSet := map[int]bool{}
	pairSet := map[[2]int]bool{}
	for _, p := range ps {
		for _, n := range p.Nodes {
			if n.Type != rdf.NoID {
				colSet[n.Column] = true
			}
		}
		for _, e := range p.Edges {
			pairSet[[2]int{e.From, e.To}] = true
		}
	}
	cols := make([]int, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	pairs := make([][2]int, 0, len(pairSet))
	for pr := range pairSet {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	var out []Variable
	for _, c := range cols {
		out = append(out, Variable{Col: c})
	}
	for _, pr := range pairs {
		out = append(out, Variable{IsPair: true, From: pr[0], To: pr[1]})
	}
	return out
}

// Assignment returns the value pattern p gives variable v (rdf.NoID when the
// pattern does not constrain v).
func Assignment(p *pattern.Pattern, v Variable) rdf.ID {
	if v.IsPair {
		if e := p.EdgeBetween(v.From, v.To); e != nil {
			return e.Prop
		}
		return rdf.NoID
	}
	return p.TypeOf(v.Col)
}

// VariableEntropy computes H(v) over the probability-weighted assignments
// of v across the patterns — by Theorem 1 this equals the expected
// uncertainty reduction of validating v.
func VariableEntropy(ps []*pattern.Pattern, probs []float64, v Variable) float64 {
	dist := map[rdf.ID]float64{}
	for i, p := range ps {
		dist[Assignment(p, v)] += probs[i]
	}
	// Sum in sorted-ID order: float addition is not associative, and map
	// iteration order would otherwise wobble the result by an ulp between
	// identical runs — enough to perturb the recorded lineage (and, on an
	// exact entropy tie, even the MUVF argmax).
	ids := make([]rdf.ID, 0, len(dist))
	for id := range dist {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	vals := make([]float64, 0, len(ids))
	for _, id := range ids {
		vals = append(vals, dist[id])
	}
	return Entropy(vals)
}

// ExpectedUncertaintyReduction computes E[ΔH(φ)](v) from first principles
// (the left-hand side of Theorem 1), for testing the theorem numerically.
func ExpectedUncertaintyReduction(ps []*pattern.Pattern, probs []float64, v Variable) float64 {
	byVal := map[rdf.ID][]float64{}
	for i, p := range ps {
		byVal[Assignment(p, v)] = append(byVal[Assignment(p, v)], probs[i])
	}
	hNow := Entropy(probs)
	// Same deterministic summation order as VariableEntropy.
	ids := make([]rdf.ID, 0, len(byVal))
	for id := range byVal {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	expected := 0.0
	for _, id := range ids {
		sub := byVal[id]
		pa := 0.0
		for _, x := range sub {
			pa += x
		}
		if pa == 0 {
			continue
		}
		cond := make([]float64, len(sub))
		for i, x := range sub {
			cond[i] = x / pa
		}
		expected += pa * Entropy(cond)
	}
	return hNow - expected
}

// MUVF runs Algorithm 3: repeatedly validate the variable with maximal
// entropy until a single pattern remains. The input patterns are cloned;
// a "none of the above" answer removes the rejected node or edge from every
// candidate (the crowd established that no candidate assignment is right).
func (val *Validator) MUVF(ps []*pattern.Pattern) *Result {
	val.defaults()
	remaining := clonePatterns(ps)
	res := &Result{}
	validated := map[Variable]bool{}
	for len(remaining) > 1 {
		probs := Probabilities(remaining)
		vars := Variables(remaining)
		best, bestH := Variable{}, 0.0
		for _, v := range vars {
			if validated[v] {
				// A variable is asked at most once.
				continue
			}
			if h := VariableEntropy(remaining, probs, v); h > bestH {
				best, bestH = v, h
			}
		}
		if bestH == 0 {
			// All variables certain yet multiple patterns remain (identical
			// assignments): they are equivalent; return the top one.
			break
		}
		answer, asked, err := val.validate(best, remaining)
		res.QuestionsAsked += asked
		if err != nil {
			// Deadline or budget exhausted mid-validation: degrade to the
			// best-scored pattern among the candidates still standing.
			val.recordStep(best, bestH, asked, rdf.NoID, true)
			res.Degraded = true
			res.Pattern = bestOf(remaining)
			return res
		}
		val.recordStep(best, bestH, asked, answer, false)
		validated[best] = true
		res.VariablesValidated++
		remaining = filter(remaining, best, answer)
		if len(remaining) == 0 {
			// The crowd contradicted every candidate; fall back to the
			// full list's best pattern.
			remaining = clonePatterns(ps[:1])
		}
	}
	res.Pattern = bestOf(remaining)

	// Final sweep: every relationship asserted by the chosen pattern must
	// be crowd-approved before the pattern drives annotation. Uncertain
	// edges were already validated above; unanimous edges (all candidates
	// agreed) are verified here once, and refuted ones are stripped. Type
	// nodes are not swept — a wrong type merely fails per-tuple node checks,
	// which annotation recovers from, whereas a wrong edge condemns every
	// tuple.
	if res.Pattern != nil {
		for _, e := range append([]pattern.Edge(nil), res.Pattern.Edges...) {
			v := Variable{IsPair: true, From: e.From, To: e.To}
			if validated[v] {
				continue
			}
			validated[v] = true
			answer, asked, err := val.validate(v, []*pattern.Pattern{res.Pattern})
			res.QuestionsAsked += asked
			if err != nil {
				// Degrade: keep the pattern's remaining edges unverified.
				val.recordStep(v, 0, asked, rdf.NoID, true)
				res.Degraded = true
				return res
			}
			val.recordStep(v, 0, asked, answer, false)
			res.VariablesValidated++
			if answer != e.Prop {
				strip(res.Pattern, v)
				if answer != rdf.NoID {
					res.Pattern.Edges = append(res.Pattern.Edges,
						pattern.Edge{From: e.From, To: e.To, Prop: answer})
				}
			}
		}
	}
	return res
}

func clonePatterns(ps []*pattern.Pattern) []*pattern.Pattern {
	out := make([]*pattern.Pattern, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out
}

// AVI is the baseline of §7.2: it validates every variable independently —
// with no scheduling there is no notion of stopping early, which is exactly
// why MUVF saves questions (Table 4).
func (val *Validator) AVI(ps []*pattern.Pattern) *Result {
	val.defaults()
	remaining := clonePatterns(ps)
	res := &Result{}
	for _, v := range Variables(remaining) {
		answer, asked, err := val.validate(v, remaining)
		res.QuestionsAsked += asked
		if err != nil {
			res.Degraded = true
			break
		}
		res.VariablesValidated++
		if next := filter(remaining, v, answer); len(next) > 0 {
			remaining = next
		}
	}
	res.Pattern = bestOf(remaining)
	return res
}

// filter keeps patterns assigning value a to v. An answer of rdf.NoID
// ("none of the above") means no candidate assignment is right: the node or
// edge is removed from every pattern instead.
func filter(ps []*pattern.Pattern, v Variable, a rdf.ID) []*pattern.Pattern {
	if a == rdf.NoID {
		for _, p := range ps {
			strip(p, v)
		}
		return ps
	}
	var out []*pattern.Pattern
	for _, p := range ps {
		if Assignment(p, v) == a {
			out = append(out, p)
		}
	}
	return out
}

// strip removes the node or edge v refers to from p (in place). Rejecting a
// column's type also removes its incident edges: the column is no longer
// covered, and a relationship to an uncovered attribute is meaningless
// (Fig. 3) — leaving it would make every tuple fail the edge check.
func strip(p *pattern.Pattern, v Variable) {
	if v.IsPair {
		edges := p.Edges[:0]
		for _, e := range p.Edges {
			if !(e.From == v.From && e.To == v.To) {
				edges = append(edges, e)
			}
		}
		p.Edges = edges
		return
	}
	nodes := p.Nodes[:0]
	for _, n := range p.Nodes {
		if n.Column != v.Col {
			nodes = append(nodes, n)
		}
	}
	p.Nodes = nodes
	edges := p.Edges[:0]
	for _, e := range p.Edges {
		if e.From != v.Col && e.To != v.Col {
			edges = append(edges, e)
		}
	}
	p.Edges = edges
}

func bestOf(ps []*pattern.Pattern) *pattern.Pattern {
	if len(ps) == 0 {
		return nil
	}
	best := ps[0]
	for _, p := range ps[1:] {
		if p.Score > best.Score {
			best = p
		}
	}
	return best
}

// validate asks the crowd q questions about variable v and returns the
// plurality answer (rdf.NoID for "none of the above") plus the number of
// questions actually asked. A deadline or budget error aborts the variable;
// answers already collected for it are discarded (the caller degrades).
func (val *Validator) validate(v Variable, ps []*pattern.Pattern) (rdf.ID, int, error) {
	domain := domainOf(ps, v)
	if val.Memo != nil {
		key := memoKey(v, domain)
		if a, ok := val.Memo.m[key]; ok {
			return a, 0, nil
		}
		if val.Replay {
			val.Missed = true
			return rdf.NoID, 0, errMemoMiss
		}
	}
	truth := val.truthFor(v)
	options, truthIdx := val.renderOptions(domain, truth)
	difficulty := val.difficulty(domain, v)

	votes := map[int]int{}
	asked := 0
	for q := 0; q < val.QuestionsPerVariable; q++ {
		prompt := val.prompt(v, options)
		question := crowd.Question{
			Kind:       crowd.TypeValidation,
			Prompt:     prompt,
			Options:    options,
			Truth:      truthIdx,
			Difficulty: difficulty,
		}
		if v.IsPair {
			question.Kind = crowd.RelationshipValidation
		}
		a, err := val.Crowd.AskContext(val.ctx(), question)
		if err != nil {
			return rdf.NoID, asked, err
		}
		asked++
		votes[a]++
	}
	best, bestVotes := 0, -1
	for opt := 0; opt < len(options); opt++ {
		if votes[opt] > bestVotes {
			best, bestVotes = opt, votes[opt]
		}
	}
	answer := rdf.NoID
	if best != len(options)-1 { // not "none of the above"
		answer = domain[best]
	}
	if val.Memo != nil {
		val.Memo.m[memoKey(v, domain)] = answer
	}
	return answer, asked, nil
}

func domainOf(ps []*pattern.Pattern, v Variable) []rdf.ID {
	set := map[rdf.ID]bool{}
	for _, p := range ps {
		if a := Assignment(p, v); a != rdf.NoID {
			set[a] = true
		}
	}
	out := make([]rdf.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (val *Validator) truthFor(v Variable) rdf.ID {
	if val.Oracle == nil {
		return rdf.NoID
	}
	if v.IsPair {
		return val.Oracle.TrueRel(v.From, v.To)
	}
	return val.Oracle.TrueType(v.Col)
}

// renderOptions converts the domain into display labels (§5.1's URI →
// description lookup) plus the trailing "none of the above" option, and
// locates the ground truth. A truth value that is a *superclass or
// super-property* of a domain candidate counts as that candidate being
// acceptable only when equal; otherwise truth falls to "none".
func (val *Validator) renderOptions(domain []rdf.ID, truth rdf.ID) ([]string, int) {
	options := make([]string, 0, len(domain)+1)
	truthIdx := len(domain) // default: none of the above
	for i, id := range domain {
		options = append(options, val.KB.LabelOf(id))
		if id == truth {
			truthIdx = i
		}
	}
	options = append(options, "none of the above")
	return options, truthIdx
}

// difficulty models §5.1's ambiguity analysis: if the two most confusable
// candidates share fraction p of their instances, the chance that all k_t
// sampled values are ambiguous is p^k_t.
func (val *Validator) difficulty(domain []rdf.ID, v Variable) float64 {
	if len(domain) < 2 {
		return 0
	}
	maxOverlap := 0.0
	for i := 0; i < len(domain); i++ {
		for j := i + 1; j < len(domain); j++ {
			if ov := val.overlap(domain[i], domain[j], v.IsPair); ov > maxOverlap {
				maxOverlap = ov
			}
		}
	}
	return math.Pow(maxOverlap, float64(val.TuplesPerQuestion))
}

// overlap computes the Jaccard overlap of two candidates' extensions: type
// instances for type variables, subject entities for relationship variables.
func (val *Validator) overlap(a, b rdf.ID, isPair bool) float64 {
	key := [2]rdf.ID{a, b}
	if a > b {
		key = [2]rdf.ID{b, a}
	}
	if v, ok := val.ambCache[key]; ok {
		return v
	}
	var setA, setB []rdf.ID
	if isPair {
		setA = val.KB.SubjectsWithPredicate(a)
		setB = val.KB.SubjectsWithPredicate(b)
	} else {
		setA = val.KB.InstancesOf(a)
		setB = val.KB.InstancesOf(b)
	}
	inter, union := 0, 0
	i, j := 0, 0
	for i < len(setA) && j < len(setB) {
		switch {
		case setA[i] < setB[j]:
			union++
			i++
		case setA[i] > setB[j]:
			union++
			j++
		default:
			inter++
			union++
			i++
			j++
		}
	}
	union += (len(setA) - i) + (len(setB) - j)
	v := 0.0
	if union > 0 {
		v = float64(inter) / float64(union)
	}
	val.ambCache[key] = v
	return v
}

// prompt renders a §5.1-style question with k_t sampled tuples for context.
func (val *Validator) prompt(v Variable, options []string) string {
	var b strings.Builder
	if v.IsPair {
		fmt.Fprintf(&b, "What is the most accurate relationship for the highlighted columns %d and %d?\n",
			v.From, v.To)
	} else {
		fmt.Fprintf(&b, "What is the most accurate type of the highlighted column %d?\n", v.Col)
	}
	if val.Table != nil && val.Table.NumRows() > 0 {
		kt := val.TuplesPerQuestion
		for s := 0; s < kt; s++ {
			row := val.Table.Rows[val.Rng.Intn(val.Table.NumRows())]
			fmt.Fprintf(&b, "(%s)\n", strings.Join(row, ", "))
		}
	}
	fmt.Fprintf(&b, "Options: %s", strings.Join(options, " | "))
	return b.String()
}
