// The durable job journal: an append-only write-ahead log that makes the
// daemon's job table survive a crash. Every lifecycle transition is recorded
// as a CRC-framed record — submit (table + params, fsynced before the
// submission is acknowledged, so an accepted job is never lost), start, and
// the terminal end (carrying the deterministic result document, so replayed
// jobs stay retrievable) — and a restarted daemon replays the log to rebuild
// its state: terminal jobs come back retrievable, jobs that were queued or
// running at crash time are re-queued for execution, and a job observed
// running across two consecutive crashes is quarantined as poisoned instead
// of re-entering the crash loop.
//
// Frame format (little-endian):
//
//	[4 bytes length n] [4 bytes IEEE CRC32 of payload] [n bytes JSON payload]
//
// Replay stops at the first torn or corrupted frame — a crash mid-append
// leaves a partial tail, never a corrupted prefix — so every fully-framed
// record before the tear is recovered. Durability is group-committed: a
// caller asking for a synced append piggybacks on any fsync that already
// covers its record, so a burst of concurrent submissions costs one fsync,
// not one each.
//
// The journal directory holds files named wal-<seq>.log. On open, all files
// are replayed in sequence order, then the surviving state is checkpointed
// into a fresh highest-sequence file and the old files are deleted —
// truncation by checkpoint compaction, bounding journal growth to one boot's
// worth of records.
package jobs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"katara"
)

// ErrJournalClosed rejects appends after Close.
var ErrJournalClosed = errors.New("jobs: journal closed")

// maxRecordBytes bounds one frame's payload (a table submission tops out at
// the HTTP body cap, so anything larger is corruption, not data).
const maxRecordBytes = 128 << 20

// Journal record kinds.
const (
	recBoot       = "boot"
	recSubmit     = "submit"
	recAppend     = "append"
	recStart      = "start"
	recEnd        = "end"
	recCheckpoint = "checkpoint"
)

// journalRecord is the JSON payload of one frame.
type journalRecord struct {
	Kind   string                  `json:"kind"`
	ID     string                  `json:"id,omitempty"`
	Parent string                  `json:"parent,omitempty"` // append records: the extended job
	Table  *TableDoc               `json:"table,omitempty"`
	Params *Params                 `json:"params,omitempty"`
	State  State                   `json:"state,omitempty"`
	Error  string                  `json:"error,omitempty"`
	Stack  string                  `json:"stack,omitempty"`
	Report *ReportDoc              `json:"report,omitempty"`
	Audit  *katara.ProvenanceAudit `json:"audit,omitempty"`
	Jobs   []RecoveredJob          `json:"jobs,omitempty"` // checkpoint snapshot
}

// RecoveredJob is one job's replayed state: its full submission (so a
// non-terminal job can be re-run), its last observed state, and — for
// terminal jobs — the result document exactly as it was served.
type RecoveredJob struct {
	ID string `json:"id"`
	// Parent links an append increment to the job it extends; the Table of
	// an append job holds only the delta rows, and re-running it means
	// re-executing the whole chain from the root submission.
	Parent string   `json:"parent,omitempty"`
	Table  TableDoc `json:"table"`
	Params Params   `json:"params"`
	State  State    `json:"state"`
	// Starts counts start records not yet followed by a terminal record —
	// i.e. boots that crashed while this job was running. Two unterminated
	// starts mark the job poisoned: it has taken the daemon down twice.
	Starts int                     `json:"starts,omitempty"`
	Error  string                  `json:"error,omitempty"`
	Stack  string                  `json:"stack,omitempty"`
	Report *ReportDoc              `json:"report,omitempty"`
	Audit  *katara.ProvenanceAudit `json:"audit,omitempty"`
}

// Replay is the state rebuilt from a journal directory.
type Replay struct {
	// Jobs lists every known job in submission order.
	Jobs []RecoveredJob
	// Boots counts boot records seen (prior daemon starts since the last
	// compaction).
	Boots int
	// MaxID is the highest numeric job ID seen; the manager continues the
	// sequence from here so IDs stay unique across restarts.
	MaxID int
	// TruncatedBytes counts bytes dropped from torn or corrupted tails.
	TruncatedBytes int64
}

// replayState accumulates records during replay.
type replayState struct {
	jobs  map[string]*RecoveredJob
	order []string
	boots int
	maxID int
}

func newReplayState() *replayState {
	return &replayState{jobs: map[string]*RecoveredJob{}}
}

func (st *replayState) insert(rj *RecoveredJob) {
	if _, ok := st.jobs[rj.ID]; ok {
		return
	}
	st.jobs[rj.ID] = rj
	st.order = append(st.order, rj.ID)
	if strings.HasPrefix(rj.ID, "j") {
		if n, err := strconv.Atoi(rj.ID[1:]); err == nil && n > st.maxID {
			st.maxID = n
		}
	}
}

// apply folds one record into the state. Records referencing unknown jobs
// are tolerated (a start whose submit was torn away), never fatal — replay
// must accept any prefix of a valid journal.
func (st *replayState) apply(rec journalRecord) {
	switch rec.Kind {
	case recBoot:
		st.boots++
	case recCheckpoint:
		st.jobs = map[string]*RecoveredJob{}
		st.order = nil
		for i := range rec.Jobs {
			cp := rec.Jobs[i]
			st.insert(&cp)
		}
	case recSubmit:
		if rec.ID == "" || rec.Table == nil {
			return
		}
		rj := &RecoveredJob{ID: rec.ID, Table: *rec.Table, State: StateQueued}
		if rec.Params != nil {
			rj.Params = *rec.Params
		}
		st.insert(rj)
	case recAppend:
		if rec.ID == "" || rec.Parent == "" || rec.Table == nil {
			return
		}
		rj := &RecoveredJob{ID: rec.ID, Parent: rec.Parent, Table: *rec.Table, State: StateQueued}
		// Appends inherit the chain's parameters: resolve through the parent
		// when its record survived (a torn-away parent still replays the
		// append, which then fails to find its chain at run time).
		if parent := st.jobs[rec.Parent]; parent != nil {
			rj.Params = parent.Params
		}
		st.insert(rj)
	case recEnd:
		rj := st.jobs[rec.ID]
		if rj == nil {
			return
		}
		rj.State = rec.State
		if !rj.State.Terminal() {
			rj.State = StateFailed // defensive: an end record is terminal
		}
		rj.Error, rj.Stack, rj.Report = rec.Error, rec.Stack, rec.Report
		rj.Audit = rec.Audit
		rj.Starts = 0
	case recStart:
		if rj := st.jobs[rec.ID]; rj != nil && !rj.State.Terminal() {
			rj.Starts++
			rj.State = StateRunning
		}
	}
}

func (st *replayState) replay() *Replay {
	rep := &Replay{Boots: st.boots, MaxID: st.maxID}
	for _, id := range st.order {
		rep.Jobs = append(rep.Jobs, *st.jobs[id])
	}
	return rep
}

// encodeFrame wraps payload in the length+CRC frame.
func encodeFrame(payload []byte) []byte {
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame
}

// replayStream applies every fully-framed record in data to st and returns
// the number of bytes in the torn/corrupted tail (0 for a clean stream). It
// never panics on arbitrary input — the FuzzJournalReplay contract.
func replayStream(data []byte, st *replayState) int64 {
	off := 0
	for {
		rest := len(data) - off
		if rest == 0 {
			return 0
		}
		if rest < 8 {
			return int64(rest)
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecordBytes || int64(n) > int64(rest-8) {
			return int64(rest)
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return int64(rest)
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return int64(rest)
		}
		st.apply(rec)
		off += 8 + int(n)
	}
}

// Journal is the append-only WAL. All methods are safe for concurrent use
// and safe on a nil receiver (the journal-less daemon).
type Journal struct {
	dir string

	mu       sync.Mutex // guards f, writeSeq, closed
	f        *os.File
	seq      int
	writeSeq int64
	closed   bool

	// syncMu serializes fsyncs for group commit: syncedSeq is the highest
	// writeSeq known durable, so a waiter whose record is already covered
	// returns without touching the disk.
	syncMu    sync.Mutex
	syncedSeq int64
}

// walPath names the sequence's journal file.
func walPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq))
}

// journalFiles lists dir's journal files in sequence order.
func journalFiles(dir string) (paths []string, seqs []int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
		if err != nil {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
		seqs = append(seqs, n)
	}
	sort.Sort(&bySeq{paths, seqs})
	return paths, seqs, nil
}

type bySeq struct {
	paths []string
	seqs  []int
}

func (b *bySeq) Len() int           { return len(b.seqs) }
func (b *bySeq) Less(i, j int) bool { return b.seqs[i] < b.seqs[j] }
func (b *bySeq) Swap(i, j int) {
	b.paths[i], b.paths[j] = b.paths[j], b.paths[i]
	b.seqs[i], b.seqs[j] = b.seqs[j], b.seqs[i]
}

// OpenJournal opens (creating if needed) the journal directory, replays
// every record into a Replay, checkpoints the surviving state into a fresh
// journal file (compaction — old files are deleted), stamps a boot record,
// and returns the journal ready for appends.
func OpenJournal(dir string) (*Journal, *Replay, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: journal dir: %w", err)
	}
	paths, seqs, err := journalFiles(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: journal dir: %w", err)
	}
	st := newReplayState()
	var truncated int64
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, nil, fmt.Errorf("jobs: journal replay %s: %w", p, err)
		}
		truncated += replayStream(data, st)
	}
	rep := st.replay()
	rep.TruncatedBytes = truncated

	seq := 1
	if n := len(seqs); n > 0 {
		seq = seqs[n-1] + 1
	}
	f, err := os.OpenFile(walPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: journal open: %w", err)
	}
	j := &Journal{dir: dir, f: f, seq: seq}
	// Checkpoint compaction: fold everything known into the fresh file so
	// the old ones can go. The boot record follows, marking this process
	// start (replayed starts after it count toward poison detection).
	if len(rep.Jobs) > 0 {
		if err := j.append(journalRecord{Kind: recCheckpoint, Jobs: rep.Jobs}, false); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if err := j.append(journalRecord{Kind: recBoot}, true); err != nil {
		f.Close()
		return nil, nil, err
	}
	for _, p := range paths {
		_ = os.Remove(p) // best-effort; a survivor is superseded by the checkpoint
	}
	return j, rep, nil
}

// append frames and writes rec; with sync it blocks until the record is
// durable (group commit).
func (j *Journal) append(rec journalRecord, sync bool) error {
	if j == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: journal encode: %w", err)
	}
	frame := encodeFrame(payload)
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrJournalClosed
	}
	_, werr := j.f.Write(frame)
	j.writeSeq++
	seq := j.writeSeq
	j.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("jobs: journal append: %w", werr)
	}
	if sync {
		return j.syncTo(seq)
	}
	return nil
}

// syncTo makes every record up to target durable, piggybacking on fsyncs
// issued by concurrent callers.
func (j *Journal) syncTo(target int64) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if j.syncedSeq >= target {
		return nil
	}
	j.mu.Lock()
	cur, f, closed := j.writeSeq, j.f, j.closed
	j.mu.Unlock()
	if closed {
		return ErrJournalClosed
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("jobs: journal sync: %w", err)
	}
	j.syncedSeq = cur
	return nil
}

// Sync flushes every appended record to stable storage.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	seq := j.writeSeq
	j.mu.Unlock()
	return j.syncTo(seq)
}

// Close syncs and closes the journal. Appends after Close fail with
// ErrJournalClosed. Idempotent.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if err := j.Sync(); err != nil && !errors.Is(err, ErrJournalClosed) {
		j.closeFile()
		return err
	}
	return j.closeFile()
}

func (j *Journal) closeFile() error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// RecordSubmit journals an accepted submission; it returns only after the
// record is durable, so a 202 acknowledgement implies the job survives any
// later crash.
func (j *Journal) RecordSubmit(id string, t TableDoc, p Params) error {
	return j.append(journalRecord{Kind: recSubmit, ID: id, Table: &t, Params: &p}, true)
}

// RecordAppend journals an accepted append increment — the delta rows plus
// the parent link; synced before the acknowledgement like RecordSubmit, so an
// accepted increment replays across any crash.
func (j *Journal) RecordAppend(id, parent string, delta TableDoc) error {
	return j.append(journalRecord{Kind: recAppend, ID: id, Parent: parent, Table: &delta}, true)
}

// RecordStart journals a job entering execution. Unsynced: losing it to a
// crash merely replays the job as queued, which is safe — and cheaper than
// an fsync per job start.
func (j *Journal) RecordStart(id string) error {
	return j.append(journalRecord{Kind: recStart, ID: id}, false)
}

// RecordEnd journals a terminal transition with the result document, synced
// so the result is retrievable after a restart.
func (j *Journal) RecordEnd(doc ResultDoc) error {
	return j.append(journalRecord{
		Kind: recEnd, ID: doc.ID, State: doc.State,
		Error: doc.Error, Stack: doc.Stack, Report: doc.Report, Audit: doc.Audit,
	}, true)
}

// recordEndAsync is RecordEnd without the fsync — used by mass-cancel paths
// (Close) that issue one Sync at the end instead of one per job.
func (j *Journal) recordEndAsync(doc ResultDoc) error {
	return j.append(journalRecord{
		Kind: recEnd, ID: doc.ID, State: doc.State,
		Error: doc.Error, Stack: doc.Stack, Report: doc.Report, Audit: doc.Audit,
	}, false)
}
