package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"katara"
	"katara/internal/telemetry"
)

// TableDoc is the JSON wire form of a table in a job submission.
type TableDoc struct {
	Name    string     `json:"name"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Table converts the document into a katara.Table, checking arity.
func (d TableDoc) Table() (*katara.Table, error) {
	if len(d.Columns) == 0 {
		return nil, errors.New("table needs at least one column")
	}
	if len(d.Rows) == 0 {
		return nil, errors.New("table needs at least one row")
	}
	name := d.Name
	if name == "" {
		name = "table"
	}
	t := &katara.Table{Name: name, Columns: d.Columns, Rows: d.Rows}
	for i, row := range d.Rows {
		if len(row) != len(d.Columns) {
			return nil, fmt.Errorf("row %d has %d cells, want %d", i, len(row), len(d.Columns))
		}
	}
	return t, nil
}

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	Table  TableDoc `json:"table"`
	Params Params   `json:"params"`
}

// SubmitResponse acknowledges an accepted job.
type SubmitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
}

// AppendRequest is the POST /jobs/{id}/append body: the delta rows to clean
// incrementally against the finished parent job. Parameters are inherited
// from the chain; the response is a SubmitResponse for the new increment job.
type AppendRequest struct {
	Rows [][]string `json:"rows"`
}

// errorDoc is the JSON error body every non-2xx response carries.
type errorDoc struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorDoc{Error: err.Error()})
}

// maxSubmitBytes caps a POST /jobs body; larger bodies get 413.
const maxSubmitBytes = 64 << 20

// ProgressDoc is the GET /jobs/{id}/progress body (and the SSE event
// payload when the client asks for text/event-stream).
type ProgressDoc struct {
	ID       string             `json:"id"`
	State    State              `json:"state"`
	Progress telemetry.Progress `json:"progress"`
}

// sseInterval paces progress events on a streamed watch. Short enough that
// a stage transition is visible promptly, long enough not to busy-poll the
// manager's mutex.
var sseInterval = 25 * time.Millisecond

// NewHandler mounts the job API for a manager:
//
//	POST /jobs               submit a job (202; 400 invalid, 413 oversized,
//	                         429 queue full + Retry-After, 503 draining)
//	POST /jobs/{id}/append   extend a finished job with delta rows, cleaned
//	                         incrementally (202 with the increment's job ID;
//	                         400 invalid, 404 unknown, 409 parent not done or
//	                         already extended, 429 queue full, 503 draining)
//	GET  /jobs               list all jobs
//	GET  /jobs/{id}          one job's status and live progress
//	GET  /jobs/{id}/result   the finished job's report (409 until terminal)
//	GET  /jobs/{id}/progress live progress; with Accept: text/event-stream,
//	                         a server-sent event stream until the job ends
//	GET  /jobs/{id}/explain  evidence chain for one cell (?row=R&col=C;
//	                         409 until terminal, 410 when the recorder is
//	                         gone — journal-recovered jobs)
//	POST /jobs/{id}/cancel   request cancellation
//	GET  /healthz            liveness probe
//	GET  /version            build metadata of the serving binary
//	GET  /metrics            daemon-wide Prometheus exposition
func NewHandler(m *Manager) http.Handler {
	return newHandler(m, maxSubmitBytes)
}

// newHandler exposes the body cap for tests (a 64MB body in a unit test is
// pure waste).
func newHandler(m *Manager, maxBody int64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WriteMetrics(w)
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Version())
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
			return
		}
		tbl, err := req.Table.Table()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		id, err := m.Submit(tbl, req.Params)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, State: StateQueued})
		case errors.Is(err, ErrQueueFull):
			// Backpressure, not failure: tell well-behaved clients when to
			// come back.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			// The daemon is going down gracefully; a replacement boot will
			// accept the retry.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
	})
	mux.HandleFunc("POST /jobs/{id}/append", func(w http.ResponseWriter, r *http.Request) {
		var req AppendRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
			return
		}
		id, err := m.Append(r.PathValue("id"), req.Rows)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, State: StateQueued})
		case errors.Is(err, ErrUnknownJob):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrParentNotDone), errors.Is(err, ErrParentExtended):
			// The chain is not extendable right now (or ever, at this link):
			// conflict, not client error — poll the parent, or append to the
			// chain tip.
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		doc, state, done, err := m.Result(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		if !done {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; result not ready", id, state))
			return
		}
		writeJSON(w, http.StatusOK, doc)
	})
	mux.HandleFunc("GET /jobs/{id}/progress", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		st, err := m.Status(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		if !strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
			writeJSON(w, http.StatusOK, ProgressDoc{ID: st.ID, State: st.State, Progress: st.Progress})
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported by this connection"))
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		ticker := time.NewTicker(sseInterval)
		defer ticker.Stop()
		for {
			st, err := m.Status(id)
			if err != nil {
				return
			}
			data, err := json.Marshal(ProgressDoc{ID: st.ID, State: st.State, Progress: st.Progress})
			if err != nil {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
			flusher.Flush()
			if st.Progress.Done {
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-ticker.C:
			}
		}
	})
	mux.HandleFunc("GET /jobs/{id}/explain", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		row, rowErr := strconv.Atoi(r.URL.Query().Get("row"))
		col, colErr := strconv.Atoi(r.URL.Query().Get("col"))
		if rowErr != nil || colErr != nil || row < 0 || col < 0 {
			writeError(w, http.StatusBadRequest,
				errors.New("explain needs non-negative integer row and col query parameters"))
			return
		}
		e, err := m.Explain(id, row, col)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, e)
		case errors.Is(err, ErrUnknownJob):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotReady):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, ErrNoProvenance):
			// The per-cell recorder is daemon-memory only; after a restart
			// the pinned audit section in the result document is all that
			// remains. 410, not 404: the job exists, the lineage is gone.
			writeError(w, http.StatusGone, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		st, err := m.Status(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	return mux
}
