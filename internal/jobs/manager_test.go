package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"katara"
	"katara/internal/table"
	"katara/internal/telemetry"
	"katara/internal/workload"
	"katara/internal/world"
)

// fixture builds a pristine KB and a dirty table for real cleaning runs.
func fixture(t testing.TB, rows int) (*katara.KB, *katara.Table) {
	t.Helper()
	const seed = 31
	w := world.New(seed, world.Config{
		Persons: 200, Players: 80, Clubs: 16, Universities: 60, Films: 30, Books: 30,
	})
	kb := workload.DBpediaLike(w, seed)
	spec := workload.PersonTable(w, seed, rows)
	dirty := spec.Table.Clone()
	rng := rand.New(rand.NewSource(seed))
	table.InjectErrors(dirty, []int{1, 2, 3}, 0.10, rng)
	return kb.Store, dirty
}

func waitJob(t *testing.T, m *Manager, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Wait(ctx, id); err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	st, err := m.Status(id)
	if err != nil {
		t.Fatalf("Status(%s): %v", id, err)
	}
	return st
}

// TestJobHappyPath: submit → wait → done, with a live progress document and
// a deterministic result — the same submission twice yields byte-identical
// report JSON.
func TestJobHappyPath(t *testing.T) {
	kb, dirty := fixture(t, 150)
	m := NewManager(Config{KB: kb, MaxConcurrent: 2, MaxQueue: 8})
	defer m.Close()

	id, err := m.Submit(dirty, Params{Shards: 4})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitJob(t, m, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	if !st.Progress.Done || st.Progress.TuplesAnnotated != int64(dirty.NumRows()) {
		t.Fatalf("progress = %+v, want done with %d tuples", st.Progress, dirty.NumRows())
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatal("missing started/finished timestamps on a done job")
	}

	rep, state, done, err := m.Report(id)
	if err != nil || !done || state != StateDone || rep == nil {
		t.Fatalf("Report = (%v, %s, %v, %v)", rep != nil, state, done, err)
	}
	if len(rep.Annotations) != dirty.NumRows() {
		t.Fatalf("report annotated %d/%d tuples", len(rep.Annotations), dirty.NumRows())
	}

	// Determinism across jobs: identical submission, byte-identical report
	// document (the corruption signal kload watches for).
	id2, err := m.Submit(dirty, Params{Shards: 4})
	if err != nil {
		t.Fatalf("Submit #2: %v", err)
	}
	waitJob(t, m, id2)
	rep2, _, _, _ := m.Report(id2)
	doc1, _ := json.Marshal(BuildResult("x", StateDone, rep).Report)
	doc2, _ := json.Marshal(BuildResult("x", StateDone, rep2).Report)
	if !bytes.Equal(doc1, doc2) {
		t.Fatal("identical submissions produced different report documents")
	}
}

// TestJobCancelMidRun: cancelling a running job cancels its context; the
// real pipeline then degrades rather than aborting, and the job lands in
// StateCancelled with the degraded report retained.
func TestJobCancelMidRun(t *testing.T) {
	kb, dirty := fixture(t, 200)
	started := make(chan struct{})
	run := func(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error) {
		close(started)
		// Hold mid-run until the cancel lands, then drive the real pipeline
		// with the cancelled context — exactly what a cancel arriving
		// mid-annotation produces, without racing the (fast) real run.
		<-ctx.Done()
		return runClean(ctx, kb, tbl, p, pipe)
	}
	m := NewManager(Config{KB: kb, Run: run})
	defer m.Close()

	id, err := m.Submit(dirty, Params{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	if err := m.Cancel(id); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st := waitJob(t, m, id)
	if st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	rep, _, done, err := m.Report(id)
	if err != nil || !done {
		t.Fatalf("Report after cancel: done=%v err=%v", done, err)
	}
	if rep == nil {
		t.Fatal("cancelled run dropped its degraded report")
	}
	if !rep.Degraded.RepairsSkipped && rep.Degraded.Tuples == 0 {
		t.Fatalf("cancelled run's report not degraded: %+v", rep.Degraded)
	}
	// Cancelling a terminal job is a no-op, not an error.
	if err := m.Cancel(id); err != nil {
		t.Fatalf("Cancel on terminal job: %v", err)
	}
}

// TestJobCancelQueued: a job cancelled before a worker picks it up is
// finalized immediately and never runs.
func TestJobCancelQueued(t *testing.T) {
	block := make(chan struct{})
	ran := make(chan string, 8)
	run := func(ctx context.Context, _ *katara.KB, tbl *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		ran <- tbl.Name
		<-block
		return &katara.Report{}, nil
	}
	m := NewManager(Config{Run: run, MaxConcurrent: 1, MaxQueue: 4})
	defer m.Close()

	t1 := table.New("first", "A")
	t1.Append("x")
	t2 := table.New("second", "A")
	t2.Append("y")
	id1, err := m.Submit(t1, Params{})
	if err != nil {
		t.Fatal(err)
	}
	<-ran // first job occupies the only worker
	id2, err := m.Submit(t2, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(id2); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	st := waitJob(t, m, id2)
	if st.State != StateCancelled {
		t.Fatalf("queued-cancel state = %s", st.State)
	}
	close(block)
	if st := waitJob(t, m, id1); st.State != StateDone {
		t.Fatalf("first job state = %s", st.State)
	}
	select {
	case name := <-ran:
		t.Fatalf("cancelled queued job %q still ran", name)
	default:
	}
	_, _, done, err := m.Report(id2)
	if err != nil || !done {
		t.Fatalf("cancelled queued job not terminal: done=%v err=%v", done, err)
	}
}

// TestJobDeadlineDegrades: a deadline far too short for the table makes the
// real pipeline return a *degraded* report — the job still completes as
// done, with the degradation flagged, rather than failing.
func TestJobDeadlineDegrades(t *testing.T) {
	kb, dirty := fixture(t, 2000)
	m := NewManager(Config{KB: kb})
	defer m.Close()

	id, err := m.Submit(dirty, Params{DeadlineMS: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitJob(t, m, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	rep, _, _, err := m.Report(id)
	if err != nil || rep == nil {
		t.Fatalf("Report: %v", err)
	}
	if !rep.Degraded.RepairsSkipped && rep.Degraded.Tuples == 0 && !rep.Degraded.PatternFallback {
		t.Fatalf("1ms deadline on %d rows produced an undegraded report", dirty.NumRows())
	}
}

// TestJobQueueFull: with one worker wedged and a one-slot queue, the next
// submission is rejected with ErrQueueFull — backpressure, not blocking.
func TestJobQueueFull(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	run := func(ctx context.Context, _ *katara.KB, _ *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		close(entered)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &katara.Report{}, nil
	}
	m := NewManager(Config{Run: run, MaxConcurrent: 1, MaxQueue: 1})
	defer m.Close()

	tbl := table.New("t", "A")
	tbl.Append("x")
	if _, err := m.Submit(tbl, Params{}); err != nil {
		t.Fatal(err)
	}
	<-entered // worker busy
	if _, err := m.Submit(tbl, Params{}); err != nil {
		t.Fatal(err) // fills the queue slot
	}
	if _, err := m.Submit(tbl, Params{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	close(block)
}

// TestSubmitValidation: bad parameters and bad tables are rejected before a
// job is created.
func TestSubmitValidation(t *testing.T) {
	m := NewManager(Config{Run: func(context.Context, *katara.KB, *katara.Table, Params, *telemetry.Pipeline) (*katara.Report, error) {
		return &katara.Report{}, nil
	}})
	defer m.Close()
	tbl := table.New("t", "A")
	tbl.Append("x")

	var verr *ValidationError
	if _, err := m.Submit(tbl, Params{Budget: -1, Workers: -9}); !errors.As(err, &verr) {
		t.Fatalf("bad params err = %v", err)
	} else if len(verr.Problems) != 2 {
		t.Fatalf("want both problems reported, got %v", verr.Problems)
	}
	if _, err := m.Submit(table.New("empty", "A"), Params{}); !errors.As(err, &verr) {
		t.Fatalf("empty table err = %v", err)
	}
	if err := m.Cancel("j999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Cancel unknown = %v", err)
	}
	if _, err := m.Status("j999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Status unknown = %v", err)
	}
}

// TestManagerCloseRejectsAndDrains: Close cancels everything in flight,
// rejects new submissions, and returns only after the workers exit.
func TestManagerCloseRejectsAndDrains(t *testing.T) {
	run := func(ctx context.Context, _ *katara.KB, _ *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		<-ctx.Done() // runs until shutdown cancels it
		return nil, ctx.Err()
	}
	m := NewManager(Config{Run: run, MaxConcurrent: 2, MaxQueue: 8})
	tbl := table.New("t", "A")
	tbl.Append("x")
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := m.Submit(tbl, Params{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	m.Close()
	if _, err := m.Submit(tbl, Params{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close submit err = %v, want ErrClosed", err)
	}
	for _, id := range ids {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s left non-terminal after Close: %s", id, st.State)
		}
	}
}
