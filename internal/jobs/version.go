// Build identity: the GET /version document and the katarad_build_info
// gauge, both read once from the build metadata the Go linker embeds in
// every binary — no ldflags stamping required.

package jobs

import (
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"sync"
)

// VersionInfo is the GET /version document: which module and version is
// serving, built from which VCS revision by which Go toolchain.
type VersionInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	Version   string `json:"version"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

var (
	versionOnce   sync.Once
	cachedVersion VersionInfo
)

// Version returns the running binary's build metadata, read once from the
// embedded debug.BuildInfo. Binaries built without module support (rare:
// test binaries under odd configurations) report placeholders rather than
// failing.
func Version() VersionInfo {
	versionOnce.Do(func() {
		cachedVersion = VersionInfo{GoVersion: "unknown", Module: "katara", Version: "(devel)"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.GoVersion != "" {
			cachedVersion.GoVersion = bi.GoVersion
		}
		if bi.Main.Path != "" {
			cachedVersion.Module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			cachedVersion.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cachedVersion.Revision = s.Value
			case "vcs.modified":
				cachedVersion.Modified = s.Value == "true"
			}
		}
	})
	return cachedVersion
}

// writeBuildInfoMetric emits the katarad_build_info gauge: a constant 1 with
// the build metadata as labels — the standard Prometheus idiom for joining
// version metadata onto other series.
func writeBuildInfoMetric(w io.Writer) {
	v := Version()
	fmt.Fprintf(w, "# HELP katarad_build_info Build metadata of the serving binary (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE katarad_build_info gauge\n")
	fmt.Fprintf(w, "katarad_build_info{go_version=%s,module=%s,version=%s,revision=%s} 1\n",
		promQuote(v.GoVersion), promQuote(v.Module), promQuote(v.Version), promQuote(v.Revision))
}

// promQuote quotes a label value per the Prometheus text exposition format
// (backslash, quote and newline escapes only).
func promQuote(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\', '"':
			b.WriteByte('\\')
			b.WriteByte(s[i])
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	b.WriteByte('"')
	return b.String()
}
