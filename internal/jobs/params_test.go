package jobs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParamsValidate(t *testing.T) {
	valid := []Params{
		{},
		{Workers: -1, Shards: -1},
		{Workers: 8, Shards: 16, RepairK: 5, Budget: 100, BudgetAssignments: 300, DeadlineMS: 30000, FaultRate: 0.3, Scale: 1.0},
		{Degrade: "trust"},
		{Degrade: "unknown"},
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}

	invalid := []struct {
		p    Params
		want string // substring of the error naming the bad knob
	}{
		{Params{Workers: -2}, "workers"},
		{Params{Shards: -3}, "shards"},
		{Params{RepairK: -1}, "repair_k"},
		{Params{Budget: -1}, "budget"},
		{Params{BudgetAssignments: -7}, "budget_assignments"},
		{Params{DeadlineMS: -1}, "deadline"},
		{Params{FaultRate: 1.0}, "fault_rate"},
		{Params{FaultRate: -0.1}, "fault_rate"},
		{Params{FaultRate: math.NaN()}, "fault_rate"},
		{Params{Scale: -0.5}, "scale"},
		{Params{Scale: math.Inf(1)}, "scale"},
		{Params{Degrade: "panic"}, "degrade"},
	}
	for _, c := range invalid {
		err := c.p.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error about %s", c.p, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %q, want mention of %s", c.p, err, c.want)
		}
	}

	// All problems are reported at once.
	err := Params{Workers: -5, Budget: -1, Degrade: "x"}.Validate()
	verr, ok := err.(*ValidationError)
	if !ok || len(verr.Problems) != 3 {
		t.Fatalf("want 3 aggregated problems, got %v", err)
	}
}

func TestParamsOptions(t *testing.T) {
	p := Params{Workers: 4, Shards: 8, RepairK: 2, Budget: 50, DeadlineMS: 1500, Degrade: "unknown"}
	opts := p.Options()
	if opts.Workers != 4 || opts.Shards != 8 || opts.RepairK != 2 || opts.Budget != 50 {
		t.Fatalf("Options() dropped fields: %+v", opts)
	}
	if opts.Deadline != 1500*time.Millisecond {
		t.Fatalf("Deadline = %v, want 1.5s", opts.Deadline)
	}
}
