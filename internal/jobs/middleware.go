// Structured request logging for the job API: one slog record per request
// with method, path, status, duration, and — when the path names a job —
// the job ID and its shard count, so a daemon log line can be joined
// against the job's journal records and metrics.

package jobs

import (
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// statusWriter captures the response status for the request log. It
// forwards Flush so server-sent event streams keep working through the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// jobIDFromPath extracts the job ID from a /jobs/{id}[/...] path, or "".
func jobIDFromPath(path string) string {
	rest, ok := strings.CutPrefix(path, "/jobs/")
	if !ok || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// LogRequests wraps h with structured request logging on log. A nil logger
// returns h unwrapped, so the middleware is free when logging is off.
func (m *Manager) LogRequests(log *slog.Logger, h http.Handler) http.Handler {
	if log == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("duration_ms", time.Since(start).Milliseconds()),
		}
		if id := jobIDFromPath(r.URL.Path); id != "" {
			attrs = append(attrs, slog.String("job", id))
			if st, err := m.Status(id); err == nil {
				attrs = append(attrs, slog.Int("shards", st.Params.Shards))
			}
		}
		log.Info("request", attrs...)
	})
}
