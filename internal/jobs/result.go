package jobs

import (
	"fmt"
	"sort"

	"katara"
)

// ResultDoc is the GET /jobs/{id}/result body. Report is fully
// deterministic — no timings, no timestamps, fields in fixed order — so
// two submissions of the same table with the same parameters produce
// byte-identical Report JSON. cmd/kload leans on this: any two differing
// report bodies for identical jobs is report corruption.
type ResultDoc struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Error carries a failed job's error; Stack preserves the goroutine
	// stack when the failure was a recovered panic. Both survive journal
	// replay, so a post-restart fetch sees the same diagnosis.
	Error  string     `json:"error,omitempty"`
	Stack  string     `json:"stack,omitempty"`
	Report *ReportDoc `json:"report,omitempty"`
	// Audit is the run-level provenance aggregation (cells by evidence
	// class, crowd questions per verdict, repair-confidence histogram). It
	// is deterministic — map keys serialize sorted — and journaled with the
	// rest of the document, so it survives daemon restarts even though the
	// full per-cell recorder does not.
	Audit *katara.ProvenanceAudit `json:"audit,omitempty"`
}

// ReportDoc is the wire form of a katara.Report.
type ReportDoc struct {
	Pattern        string          `json:"pattern,omitempty"`
	PatternScore   float64         `json:"pattern_score,omitempty"`
	QuestionsAsked int             `json:"questions_asked"`
	Degraded       DegradedDoc     `json:"degraded"`
	Summary        SummaryDoc      `json:"summary"`
	Annotations    []AnnotationDoc `json:"annotations"`
	NewFacts       int             `json:"new_facts"`
	Repairs        []RepairRowDoc  `json:"repairs,omitempty"`
}

// DegradedDoc mirrors katara.DegradeReport.
type DegradedDoc struct {
	PatternFallback bool `json:"pattern_fallback"`
	Tuples          int  `json:"tuples"`
	RepairsSkipped  bool `json:"repairs_skipped"`
}

// SummaryDoc counts annotations by label.
type SummaryDoc struct {
	ValidatedByKB    int `json:"validated_by_kb"`
	ValidatedByCrowd int `json:"validated_by_crowd"`
	Erroneous        int `json:"erroneous"`
	Unknown          int `json:"unknown"`
}

// AnnotationDoc is one tuple's verdict.
type AnnotationDoc struct {
	Row      int    `json:"row"`
	Label    string `json:"label"`
	Degraded bool   `json:"degraded,omitempty"`
}

// RepairRowDoc lists one erroneous row's possible repairs, best first.
type RepairRowDoc struct {
	Row     int               `json:"row"`
	Options []RepairOptionDoc `json:"options"`
}

// RepairOptionDoc is one possible repair.
type RepairOptionDoc struct {
	Cost    float64     `json:"cost"`
	Changes []ChangeDoc `json:"changes"`
}

// ChangeDoc is one cell rewrite.
type ChangeDoc struct {
	Col  int    `json:"col"`
	From string `json:"from"`
	To   string `json:"to"`
}

// BuildResult converts a finished job's report into its wire form. rep may
// be nil (failed or cancelled-before-start jobs).
func BuildResult(id string, state State, rep *katara.Report) ResultDoc {
	doc := ResultDoc{ID: id, State: state}
	if rep == nil {
		return doc
	}
	doc.Audit = rep.Provenance.BuildAudit()
	rd := &ReportDoc{
		QuestionsAsked: rep.QuestionsAsked,
		Degraded: DegradedDoc{
			PatternFallback: rep.Degraded.PatternFallback,
			Tuples:          rep.Degraded.Tuples,
			RepairsSkipped:  rep.Degraded.RepairsSkipped,
		},
		NewFacts:    len(rep.NewFacts),
		Annotations: make([]AnnotationDoc, 0, len(rep.Annotations)),
	}
	if rep.Pattern != nil {
		rd.Pattern = rep.Pattern.Key()
		rd.PatternScore = rep.Pattern.Score
	}
	for _, a := range rep.Annotations {
		rd.Annotations = append(rd.Annotations, AnnotationDoc{
			Row:      a.Row,
			Label:    fmt.Sprint(a.Label),
			Degraded: a.Degraded,
		})
		switch a.Label {
		case katara.ValidatedByKB:
			rd.Summary.ValidatedByKB++
		case katara.ValidatedByCrowd:
			rd.Summary.ValidatedByCrowd++
		case katara.Unknown:
			rd.Summary.Unknown++
		default:
			rd.Summary.Erroneous++
		}
	}
	rows := make([]int, 0, len(rep.Repairs))
	for r := range rep.Repairs {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	for _, r := range rows {
		row := RepairRowDoc{Row: r, Options: []RepairOptionDoc{}}
		for _, rp := range rep.Repairs[r] {
			opt := RepairOptionDoc{Cost: rp.Cost, Changes: []ChangeDoc{}}
			for _, ch := range rp.Changes {
				opt.Changes = append(opt.Changes, ChangeDoc{Col: ch.Col, From: ch.From, To: ch.To})
			}
			row.Options = append(row.Options, opt)
		}
		rd.Repairs = append(rd.Repairs, row)
	}
	doc.Report = rd
	return doc
}
