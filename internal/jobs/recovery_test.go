package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"katara"
	"katara/internal/table"
	"katara/internal/telemetry"
)

// quickRun finishes immediately with a small deterministic report.
func quickRun(_ context.Context, _ *katara.KB, tbl *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
	return &katara.Report{QuestionsAsked: tbl.NumRows()}, nil
}

// mustNotRun fails the calling test if the manager ever executes it —
// recovered-terminal jobs must be served from the journal, never re-run.
func mustNotRun(t *testing.T) RunFunc {
	return func(context.Context, *katara.KB, *katara.Table, Params, *telemetry.Pipeline) (*katara.Report, error) {
		t.Error("recovered terminal job was re-run")
		return &katara.Report{}, nil
	}
}

// tinyTable returns a one-row table for journal-backed manager tests.
func tinyTable() *katara.Table {
	tbl := table.New("t", "A")
	tbl.Append("x")
	return tbl
}

// metricsLine fetches one non-comment exposition line from WriteMetrics.
func metricsLine(t *testing.T, m *Manager, needle string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	return grepLine(buf.String(), needle)
}

// TestManagerRecoveryRequeue: a crash with one job running and two queued
// re-queues all three on the next boot, the re-run jobs complete, the ID
// sequence continues past the replayed IDs, and the requeue counter shows in
// /metrics.
func TestManagerRecoveryRequeue(t *testing.T) {
	dir := t.TempDir()
	j1, rep1 := openJournal(t, dir)

	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	blockRun := func(ctx context.Context, _ *katara.KB, _ *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		entered <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &katara.Report{}, nil
	}
	m1 := NewManager(Config{Run: blockRun, MaxConcurrent: 1, MaxQueue: 8, Journal: j1, Replay: rep1})
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m1.Submit(tinyTable(), Params{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	<-entered // ids[0] is running, the rest queued

	// Crash: the journal dies first (no further record reaches disk), then
	// the blocked job is released so the abandoned manager's goroutines can
	// exit. Its end records hit the closed journal and are lost — exactly
	// what a SIGKILL would do.
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	close(block)

	j2, rep2 := openJournal(t, dir)
	defer j2.Close()
	if len(rep2.Jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(rep2.Jobs))
	}
	if rep2.Jobs[0].Starts != 1 || rep2.Jobs[0].State != StateRunning {
		t.Fatalf("crashed running job replayed as %+v", rep2.Jobs[0])
	}
	m2 := NewManager(Config{Run: quickRun, MaxConcurrent: 2, MaxQueue: 8, Journal: j2, Replay: rep2})
	defer m2.Close()
	if rec := m2.Recovery(); rec.Requeued != 3 || rec.Terminal != 0 || rec.Poisoned != 0 {
		t.Fatalf("Recovery() = %+v, want 3 requeued", rec)
	}
	for _, id := range ids {
		if st := waitJob(t, m2, id); st.State != StateDone {
			t.Fatalf("re-queued job %s finished %s: %s", id, st.State, st.Error)
		}
	}
	id4, err := m2.Submit(tinyTable(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if id4 != "j4" {
		t.Fatalf("post-recovery ID = %s, want j4 (sequence must continue)", id4)
	}
	if line := metricsLine(t, m2, "katarad_jobs_requeued_total"); line != "katarad_jobs_requeued_total 3" {
		t.Fatalf("requeued metric = %q", line)
	}
}

// TestManagerRecoveredTerminal: a finished job's result document survives a
// restart byte-identically, and the job is never re-executed.
func TestManagerRecoveredTerminal(t *testing.T) {
	dir := t.TempDir()
	j1, rep1 := openJournal(t, dir)
	m1 := NewManager(Config{Run: quickRun, MaxConcurrent: 1, Journal: j1, Replay: rep1})
	id, err := m1.Submit(tinyTable(), Params{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m1, id)
	doc1, _, ok, err := m1.Result(id)
	if !ok || err != nil {
		t.Fatalf("Result = ok=%v err=%v", ok, err)
	}
	want, _ := json.Marshal(doc1)
	m1.Close()
	j1.Close()

	j2, rep2 := openJournal(t, dir)
	defer j2.Close()
	m2 := NewManager(Config{Run: mustNotRun(t), MaxConcurrent: 1, Journal: j2, Replay: rep2})
	defer m2.Close()
	if rec := m2.Recovery(); rec.Terminal != 1 || rec.Requeued != 0 {
		t.Fatalf("Recovery() = %+v, want 1 terminal", rec)
	}
	doc2, state, ok, err := m2.Result(id)
	if !ok || err != nil || state != StateDone {
		t.Fatalf("recovered Result = state=%s ok=%v err=%v", state, ok, err)
	}
	got, _ := json.Marshal(doc2)
	if !bytes.Equal(want, got) {
		t.Fatalf("recovered result not byte-identical:\nbefore %s\nafter  %s", want, got)
	}
	// Give a would-be re-run a moment to trip mustNotRun before the test ends.
	time.Sleep(20 * time.Millisecond)
}

// TestManagerPoisonQuarantine: a job observed running across two crashed
// boots is quarantined as failed (poisoned) instead of re-queued, the
// quarantine itself is journaled, and the next boot replays it as terminal.
func TestManagerPoisonQuarantine(t *testing.T) {
	dir := t.TempDir()
	doc := sampleTable()

	j1, _ := openJournal(t, dir)
	if err := j1.RecordSubmit("j1", doc, Params{}); err != nil {
		t.Fatal(err)
	}
	if err := j1.RecordStart("j1"); err != nil {
		t.Fatal(err)
	}
	j1.Close() // crash #1 mid-run

	j2, _ := openJournal(t, dir)
	if err := j2.RecordStart("j1"); err != nil {
		t.Fatal(err)
	}
	j2.Close() // crash #2 mid-run

	j3, rep3 := openJournal(t, dir)
	m := NewManager(Config{Run: mustNotRun(t), MaxConcurrent: 1, Journal: j3, Replay: rep3})
	if rec := m.Recovery(); rec.Poisoned != 1 || rec.Requeued != 0 {
		t.Fatalf("Recovery() = %+v, want 1 poisoned", rec)
	}
	st, err := m.Status("j1")
	if err != nil || st.State != StateFailed || !strings.Contains(st.Error, "poisoned") {
		t.Fatalf("quarantined job status = %+v (err %v)", st, err)
	}
	res, _, ok, _ := m.Result("j1")
	if !ok || res.Error != poisonedError {
		t.Fatalf("quarantined result = %+v ok=%v", res, ok)
	}
	if line := metricsLine(t, m, "katarad_jobs_poisoned_total"); line != "katarad_jobs_poisoned_total 1" {
		t.Fatalf("poisoned metric = %q", line)
	}
	m.Close()
	j3.Close()

	// The quarantine decision is durable: boot 4 sees it terminal.
	j4, rep4 := openJournal(t, dir)
	defer j4.Close()
	m4 := NewManager(Config{Run: mustNotRun(t), MaxConcurrent: 1, Journal: j4, Replay: rep4})
	defer m4.Close()
	if rec := m4.Recovery(); rec.Terminal != 1 || rec.Poisoned != 0 {
		t.Fatalf("boot-4 Recovery() = %+v, want 1 terminal", rec)
	}
}

// TestManagerPanicIsolation: a RunFunc panic becomes a failed job carrying
// the stack, bumps katarad_jobs_panics_total, and leaves concurrent jobs and
// the manager itself untouched.
func TestManagerPanicIsolation(t *testing.T) {
	boom := func(_ context.Context, _ *katara.KB, tbl *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		if tbl.Name == "boom" {
			panic("kaboom")
		}
		return &katara.Report{}, nil
	}
	m := NewManager(Config{Run: boom, MaxConcurrent: 2, MaxQueue: 8})
	defer m.Close()

	bad := table.New("boom", "A")
	bad.Append("x")
	badID, err := m.Submit(bad, Params{})
	if err != nil {
		t.Fatal(err)
	}
	goodID, err := m.Submit(tinyTable(), Params{})
	if err != nil {
		t.Fatal(err)
	}

	if st := waitJob(t, m, badID); st.State != StateFailed || !strings.Contains(st.Error, "panic: kaboom") {
		t.Fatalf("panicking job = %s %q, want failed with panic error", st.State, st.Error)
	}
	doc, _, _, _ := m.Result(badID)
	if doc.Stack == "" || !strings.Contains(doc.Stack, "goroutine") {
		t.Fatalf("panicking job's result carries no stack: %+v", doc)
	}
	if st := waitJob(t, m, goodID); st.State != StateDone {
		t.Fatalf("concurrent job = %s, want done (panic must not leak)", st.State)
	}
	if line := metricsLine(t, m, "katarad_jobs_panics_total"); line != "katarad_jobs_panics_total 1" {
		t.Fatalf("panics metric = %q", line)
	}
	// The worker that absorbed the panic is still alive.
	if id, err := m.Submit(tinyTable(), Params{}); err != nil {
		t.Fatal(err)
	} else if st := waitJob(t, m, id); st.State != StateDone {
		t.Fatalf("post-panic job = %s", st.State)
	}
}

// TestManagerShardPanicIsolation injects a panic inside a real shard worker
// (via katara.ShardPanicHook) of a real pipeline run: exactly the job that
// hit the panic fails — with the shard goroutine's stack, not the re-raise
// site's — while the other jobs complete with byte-identical reports.
func TestManagerShardPanicIsolation(t *testing.T) {
	kb, dirty := fixture(t, 40)
	var fired atomic.Bool
	katara.ShardPanicHook = func(shard int) {
		if fired.CompareAndSwap(false, true) {
			panic(fmt.Sprintf("injected shard %d panic", shard))
		}
	}
	defer func() { katara.ShardPanicHook = nil }()

	m := NewManager(Config{KB: kb, MaxConcurrent: 2, MaxQueue: 8})
	defer m.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m.Submit(dirty, Params{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	var failed, done int
	var reports [][]byte
	for _, id := range ids {
		st := waitJob(t, m, id)
		doc, _, _, _ := m.Result(id)
		switch st.State {
		case StateFailed:
			failed++
			if !strings.Contains(st.Error, "panic in shard worker") {
				t.Fatalf("shard-panic job error = %q", st.Error)
			}
			if !strings.Contains(doc.Stack, "runShardGuarded") {
				t.Fatalf("stack is not the shard goroutine's:\n%s", doc.Stack)
			}
		case StateDone:
			done++
			rep, _ := json.Marshal(doc.Report)
			reports = append(reports, rep)
		default:
			t.Fatalf("job %s = %s", id, st.State)
		}
	}
	if failed != 1 || done != 2 {
		t.Fatalf("failed=%d done=%d, want exactly the panicking job to fail", failed, done)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Fatal("surviving jobs' reports differ — shard panic corrupted a concurrent job")
	}
	if line := metricsLine(t, m, "katarad_jobs_panics_total"); line != "katarad_jobs_panics_total 1" {
		t.Fatalf("panics metric = %q", line)
	}
}

// TestManagerDrain: draining refuses new submissions (ErrDraining), lets the
// running job finish, leaves queued jobs unexecuted-but-journaled, and the
// next boot re-queues and runs them.
func TestManagerDrain(t *testing.T) {
	dir := t.TempDir()
	j1, rep1 := openJournal(t, dir)
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	blockRun := func(ctx context.Context, _ *katara.KB, _ *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		entered <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &katara.Report{}, nil
	}
	m1 := NewManager(Config{Run: blockRun, MaxConcurrent: 1, MaxQueue: 8, Journal: j1, Replay: rep1})
	id1, err := m1.Submit(tinyTable(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	id2, err := m1.Submit(tinyTable(), Params{})
	if err != nil {
		t.Fatal(err)
	}

	m1.StartDraining()
	if _, err := m1.Submit(tinyTable(), Params{}); err != ErrDraining {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	if line := metricsLine(t, m1, "katarad_draining"); line != "katarad_draining 1" {
		t.Fatalf("draining gauge = %q", line)
	}
	close(block)
	if !m1.Drain(5 * time.Second) {
		t.Fatal("Drain timed out with an unblocked job")
	}
	if st := waitJob(t, m1, id1); st.State != StateDone {
		t.Fatalf("running job after drain = %s", st.State)
	}
	if st, _ := m1.Status(id2); st.State != StateQueued {
		t.Fatalf("queued job after drain = %s, want still queued (requeueable)", st.State)
	}
	j1.Close() // daemon exit; m1 deliberately not Closed (that would cancel id2)

	j2, rep2 := openJournal(t, dir)
	defer j2.Close()
	m2 := NewManager(Config{Run: quickRun, MaxConcurrent: 1, Journal: j2, Replay: rep2})
	defer m2.Close()
	if rec := m2.Recovery(); rec.Terminal != 1 || rec.Requeued != 1 {
		t.Fatalf("post-drain Recovery() = %+v, want 1 terminal + 1 requeued", rec)
	}
	if st := waitJob(t, m2, id2); st.State != StateDone {
		t.Fatalf("re-queued drained job = %s: %s", st.State, st.Error)
	}
}

// TestCancelQueuedRace hammers Cancel against queued jobs from many
// goroutines (exercised under -race by `make check`): every queued job ends
// exactly cancelled, concurrent Status/Result reads stay consistent, and the
// blocked running job is unaffected.
func TestCancelQueuedRace(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	run := func(ctx context.Context, _ *katara.KB, _ *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		entered <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &katara.Report{}, nil
	}
	m := NewManager(Config{Run: run, MaxConcurrent: 1, MaxQueue: 32})
	defer m.Close()
	blocker, err := m.Submit(tinyTable(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	const n = 8
	ids := make([]string, n)
	for i := range ids {
		if ids[i], err = m.Submit(tinyTable(), Params{}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		for k := 0; k < 3; k++ { // racing cancellers plus a racing reader
			wg.Add(1)
			go func(id string, k int) {
				defer wg.Done()
				if k == 2 {
					_, _ = m.Status(id)
					_, _, _, _ = m.Result(id)
					return
				}
				if err := m.Cancel(id); err != nil {
					t.Errorf("Cancel(%s): %v", id, err)
				}
			}(id, k)
		}
	}
	wg.Wait()
	for _, id := range ids {
		if st := waitJob(t, m, id); st.State != StateCancelled {
			t.Fatalf("raced job %s = %s, want cancelled", id, st.State)
		}
	}
	if line := metricsLine(t, m, "katarad_jobs_cancelled_total"); line != fmt.Sprintf("katarad_jobs_cancelled_total %d", n) {
		t.Fatalf("cancelled metric = %q, want %d (double-finalize under race?)", line, n)
	}
	close(block)
	if st := waitJob(t, m, blocker); st.State != StateDone {
		t.Fatalf("blocker = %s", st.State)
	}
}

// TestCancelAfterTerminalRace: cancelling an already-terminal job from many
// goroutines is a harmless no-op — the state and the pinned result document
// never change.
func TestCancelAfterTerminalRace(t *testing.T) {
	m := NewManager(Config{Run: quickRun, MaxConcurrent: 1})
	defer m.Close()
	id, err := m.Submit(tinyTable(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, id)
	before, _, _, _ := m.Result(id)
	want, _ := json.Marshal(before)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.Cancel(id); err != nil {
				t.Errorf("Cancel terminal: %v", err)
			}
			doc, state, ok, err := m.Result(id)
			if !ok || err != nil || state != StateDone {
				t.Errorf("Result during cancel race = %s ok=%v err=%v", state, ok, err)
			}
			if got, _ := json.Marshal(doc); !bytes.Equal(want, got) {
				t.Errorf("result mutated by terminal cancel:\n%s\n%s", want, got)
			}
		}()
	}
	wg.Wait()
	if line := metricsLine(t, m, "katarad_jobs_cancelled_total"); line != "katarad_jobs_cancelled_total 0" {
		t.Fatalf("cancelled metric = %q, want 0", line)
	}
}
