package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"katara"
	"katara/internal/table"
	"katara/internal/telemetry"
)

// splitFixture builds the real-cleaning fixture and splits its rows into a
// root table and a delta, so append tests can compare chain results against
// one batch run over the merged table.
func splitFixture(t *testing.T, rows, split int) (*katara.KB, *katara.Table, *katara.Table, [][]string) {
	t.Helper()
	kb, dirty := fixture(t, rows)
	root := table.New(dirty.Name, dirty.Columns...)
	for _, r := range dirty.Rows[:split] {
		root.Append(r...)
	}
	return kb, dirty, root, dirty.Rows[split:]
}

// reportBytes marshals a terminal job's report document for byte-exact
// comparison.
func reportBytes(t *testing.T, m *Manager, id string) []byte {
	t.Helper()
	doc, state, ok, err := m.Result(id)
	if err != nil || !ok || state != StateDone {
		t.Fatalf("Result(%s) = state=%s ok=%v err=%v", id, state, ok, err)
	}
	b, err := json.Marshal(doc.Report)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestManagerAppendChain: a root job plus an append increment yields the
// cumulative report over every row of the chain, byte-identical to one batch
// submission of the merged table; the status document links the increment to
// its parent and the daemon metrics count the append and the retained session.
func TestManagerAppendChain(t *testing.T) {
	kb, dirty, root, delta := splitFixture(t, 60, 40)
	m := NewManager(Config{KB: kb, MaxConcurrent: 2, MaxQueue: 8})
	defer m.Close()

	rootID, err := m.Submit(root, Params{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, m, rootID); st.State != StateDone {
		t.Fatalf("root = %s: %s", st.State, st.Error)
	}
	incID, err := m.Append(rootID, delta)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	st := waitJob(t, m, incID)
	if st.State != StateDone {
		t.Fatalf("increment = %s: %s", st.State, st.Error)
	}
	if st.Parent != rootID {
		t.Fatalf("increment Parent = %q, want %q", st.Parent, rootID)
	}
	rep, _, _, err := m.Report(incID)
	if err != nil || rep == nil {
		t.Fatalf("Report: %v", err)
	}
	if len(rep.Annotations) != dirty.NumRows() {
		t.Fatalf("increment annotated %d rows, want the cumulative %d", len(rep.Annotations), dirty.NumRows())
	}

	batchID, err := m.Submit(dirty, Params{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, batchID)
	if inc, batch := reportBytes(t, m, incID), reportBytes(t, m, batchID); !bytes.Equal(inc, batch) {
		t.Fatalf("append chain != one batch run\n--- chain\n%s\n--- batch\n%s", inc, batch)
	}

	if line := metricsLine(t, m, "katarad_jobs_appended_total"); line != "katarad_jobs_appended_total 1" {
		t.Fatalf("appended metric = %q", line)
	}
	if line := metricsLine(t, m, "katarad_sessions_retained"); line == "(series missing)" {
		t.Fatalf("sessions gauge missing")
	}
}

// TestManagerAppendSlowPathMatchesFast: evicting the retained session forces
// the chain re-execution path; a two-deep chain run entirely on the slow path
// must produce the same bytes as the same chain run on the fast path.
func TestManagerAppendSlowPathMatchesFast(t *testing.T) {
	kb, dirty, root, delta := splitFixture(t, 60, 30)
	d1, d2 := delta[:15], delta[15:]
	_ = dirty
	m := NewManager(Config{KB: kb, MaxConcurrent: 2, MaxQueue: 16})
	defer m.Close()

	runChain := func(evict bool) []byte {
		rootID, err := m.Submit(root, Params{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, m, rootID)
		if evict {
			m.dropRetained(rootID)
		}
		id1, err := m.Append(rootID, d1)
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, m, id1)
		if evict {
			m.dropRetained(id1)
		}
		id2, err := m.Append(id1, d2)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitJob(t, m, id2); st.State != StateDone {
			t.Fatalf("chain tip = %s: %s", st.State, st.Error)
		}
		return reportBytes(t, m, id2)
	}

	fast := runChain(false)
	slow := runChain(true)
	if !bytes.Equal(fast, slow) {
		t.Fatalf("slow path != fast path\n--- fast\n%s\n--- slow\n%s", fast, slow)
	}
}

// TestManagerAppendConflicts: appends against missing, unfinished or
// already-extended parents are rejected with the typed errors the HTTP layer
// maps to 404/409, and malformed deltas fail validation before a job exists.
func TestManagerAppendConflicts(t *testing.T) {
	kb, _ := fixture(t, 10)
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	blockRun := func(ctx context.Context, _ *katara.KB, _ *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		entered <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &katara.Report{}, nil
	}
	m := NewManager(Config{KB: kb, Run: blockRun, MaxConcurrent: 1, MaxQueue: 8})
	defer m.Close()

	if _, err := m.Append("j999", [][]string{{"x"}}); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown parent err = %v", err)
	}
	id, err := m.Submit(tinyTable(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // parent is running
	if _, err := m.Append(id, [][]string{{"x"}}); !errors.Is(err, ErrParentNotDone) {
		t.Fatalf("running parent err = %v, want ErrParentNotDone", err)
	}
	close(block)
	waitJob(t, m, id)

	var verr *ValidationError
	if _, err := m.Append(id, nil); !errors.As(err, &verr) {
		t.Fatalf("empty delta err = %v", err)
	}
	if _, err := m.Append(id, [][]string{{"too", "wide"}}); !errors.As(err, &verr) {
		t.Fatalf("bad arity err = %v", err)
	}
	// Rejected appends must not mark the parent extended.
	inc, err := m.Append(id, [][]string{{"y"}})
	if err != nil {
		t.Fatalf("append after rejections: %v", err)
	}
	if _, err := m.Append(id, [][]string{{"z"}}); !errors.Is(err, ErrParentExtended) {
		t.Fatalf("second append err = %v, want ErrParentExtended", err)
	}
	waitJob(t, m, inc)
}

// TestManagerAppendCrashReplay: an append increment that was journaled but
// crashed mid-run is re-queued on the next boot and re-executed via chain
// re-execution from the root submission — producing a result document
// byte-identical to what the pre-crash fast path would have served. A chain
// that finished before the crash replays terminal with identical bytes.
func TestManagerAppendCrashReplay(t *testing.T) {
	kb, _, root, delta := splitFixture(t, 60, 40)
	dir := t.TempDir()

	// Boot 1: run the chain to completion on the fast path; its result is the
	// reference every replay must reproduce.
	j1, rep1 := openJournal(t, dir)
	m1 := NewManager(Config{KB: kb, MaxConcurrent: 1, Journal: j1, Replay: rep1})
	rootID, err := m1.Submit(root, Params{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m1, rootID)
	incID, err := m1.Append(rootID, delta)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, m1, incID); st.State != StateDone {
		t.Fatalf("increment = %s: %s", st.State, st.Error)
	}
	want := reportBytes(t, m1, incID)
	rootDoc, _, _, err := m1.Result(rootID)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()
	j1.Close()

	// Boot 2: both jobs replay terminal; the increment's result document is
	// byte-identical and nothing re-runs.
	j2, rep2 := openJournal(t, dir)
	m2 := NewManager(Config{KB: kb, MaxConcurrent: 1, Journal: j2, Replay: rep2})
	if rec := m2.Recovery(); rec.Terminal != 2 || rec.Requeued != 0 {
		t.Fatalf("boot-2 Recovery() = %+v, want 2 terminal", rec)
	}
	if got := reportBytes(t, m2, incID); !bytes.Equal(want, got) {
		t.Fatalf("replayed increment result not byte-identical:\nbefore %s\nafter  %s", want, got)
	}
	st, err := m2.Status(incID)
	if err != nil || st.Parent != rootID {
		t.Fatalf("replayed increment Parent = %q (err %v), want %q", st.Parent, err, rootID)
	}
	m2.Close()
	j2.Close()

	// Crash mid-append: a journal holding the finished root plus an append
	// record with a start but no end — exactly what a SIGKILL between accepting
	// the increment and finishing it leaves behind.
	dir2 := t.TempDir()
	jc, _ := openJournal(t, dir2)
	if err := jc.RecordSubmit(rootID, TableDoc{Name: root.Name, Columns: root.Columns, Rows: root.Rows}, Params{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if err := jc.RecordEnd(rootDoc); err != nil {
		t.Fatal(err)
	}
	if err := jc.RecordAppend(incID, rootID, TableDoc{Name: root.Name, Columns: root.Columns, Rows: delta}); err != nil {
		t.Fatal(err)
	}
	if err := jc.RecordStart(incID); err != nil {
		t.Fatal(err)
	}
	jc.Close() // crash

	j3, rep3 := openJournal(t, dir2)
	defer j3.Close()
	m3 := NewManager(Config{KB: kb, MaxConcurrent: 1, Journal: j3, Replay: rep3})
	defer m3.Close()
	if rec := m3.Recovery(); rec.Terminal != 1 || rec.Requeued != 1 {
		t.Fatalf("crash Recovery() = %+v, want 1 terminal + 1 requeued", rec)
	}
	if st := waitJob(t, m3, incID); st.State != StateDone {
		t.Fatalf("re-run increment = %s: %s", st.State, st.Error)
	}
	if got := reportBytes(t, m3, incID); !bytes.Equal(want, got) {
		t.Fatalf("crash-replayed increment diverged from the pre-crash fast path:\nwant %s\ngot  %s", want, got)
	}
}

// TestHTTPAppend drives the append endpoint over real HTTP: 202 with the new
// job ID, 404 for unknown parents, 409 once the parent is extended, 400 on a
// malformed delta.
func TestHTTPAppend(t *testing.T) {
	kb, dirty, root, delta := splitFixture(t, 40, 25)
	m := NewManager(Config{KB: kb, MaxConcurrent: 2, MaxQueue: 8})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	code, body := do(t, ts, "POST", "/jobs", SubmitRequest{Table: tableDoc(root), Params: Params{Shards: 2}})
	if code != 202 {
		t.Fatalf("submit = %d %s", code, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, sub.ID)

	if code, body = do(t, ts, "POST", "/jobs/nope/append", AppendRequest{Rows: delta}); code != 404 {
		t.Fatalf("unknown append = %d %s", code, body)
	}
	if code, body = do(t, ts, "POST", "/jobs/"+sub.ID+"/append", AppendRequest{Rows: [][]string{{"short"}}}); code != 400 {
		t.Fatalf("bad-arity append = %d %s", code, body)
	}
	code, body = do(t, ts, "POST", "/jobs/"+sub.ID+"/append", AppendRequest{Rows: delta})
	if code != 202 {
		t.Fatalf("append = %d %s", code, body)
	}
	var inc SubmitResponse
	if err := json.Unmarshal(body, &inc); err != nil || inc.ID == "" {
		t.Fatalf("append body %s: %v", body, err)
	}
	if code, body = do(t, ts, "POST", "/jobs/"+sub.ID+"/append", AppendRequest{Rows: delta}); code != 409 {
		t.Fatalf("append to extended parent = %d %s, want 409", code, body)
	}
	if st := waitJob(t, m, inc.ID); st.State != StateDone {
		t.Fatalf("increment = %s: %s", st.State, st.Error)
	}
	code, body = do(t, ts, "GET", "/jobs/"+inc.ID+"/result", nil)
	if code != 200 {
		t.Fatalf("increment result = %d %s", code, body)
	}
	var res ResultDoc
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Annotations) != dirty.NumRows() {
		t.Fatalf("increment served %d annotations, want the cumulative %d",
			len(res.Report.Annotations), dirty.NumRows())
	}
}
