package jobs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"katara"
	"katara/internal/table"
	"katara/internal/telemetry"
)

// rawPost submits the request and returns the full response so tests can
// inspect headers (the plain do() helper discards them).
func rawPost(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

// TestHTTPBodyTooLarge: a submission past the body cap gets 413 with a JSON
// error naming the limit — not a generic 400 — and the daemon stays up.
func TestHTTPBodyTooLarge(t *testing.T) {
	m := NewManager(Config{Run: func(context.Context, *katara.KB, *katara.Table, Params, *telemetry.Pipeline) (*katara.Report, error) {
		return &katara.Report{}, nil
	}, MaxConcurrent: 1})
	defer m.Close()
	ts := httptest.NewServer(newHandler(m, 256)) // tiny cap: no 64MB bodies in unit tests
	defer ts.Close()

	big := table.New("big", "A")
	for i := 0; i < 64; i++ {
		big.Append(strings.Repeat("x", 32))
	}
	resp, body := rawPost(t, ts, "/jobs", SubmitRequest{Table: tableDoc(big)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit = %d %s, want 413", resp.StatusCode, body)
	}
	var doc struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || !strings.Contains(doc.Error, "exceeds 256 bytes") {
		t.Fatalf("413 body = %s (err %v), want JSON error naming the cap", body, err)
	}

	// A small body on the same server still goes through.
	small := table.New("t", "A")
	small.Append("x")
	if resp, body := rawPost(t, ts, "/jobs", SubmitRequest{Table: tableDoc(small)}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("small submit after 413 = %d %s", resp.StatusCode, body)
	}
}

// TestHTTPRetryAfter: both backpressure rejections — 429 (queue full) and
// 503 (draining) — carry a Retry-After header so clients know the condition
// is transient.
func TestHTTPRetryAfter(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	run := func(ctx context.Context, _ *katara.KB, _ *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		close(entered)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &katara.Report{}, nil
	}
	m := NewManager(Config{Run: run, MaxConcurrent: 1, MaxQueue: 1})
	defer m.Close()
	defer close(block)
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	tbl := table.New("t", "A")
	tbl.Append("x")
	req := SubmitRequest{Table: tableDoc(tbl)}
	if resp, body := rawPost(t, ts, "/jobs", req); resp.StatusCode != 202 {
		t.Fatalf("submit 1 = %d %s", resp.StatusCode, body)
	}
	<-entered
	if resp, body := rawPost(t, ts, "/jobs", req); resp.StatusCode != 202 {
		t.Fatalf("submit 2 = %d %s", resp.StatusCode, body)
	}
	resp, body := rawPost(t, ts, "/jobs", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit = %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	m.StartDraining()
	resp, body = rawPost(t, ts, "/jobs", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	var doc struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || !strings.Contains(doc.Error, "draining") {
		t.Fatalf("503 body = %s (err %v)", body, err)
	}
}
