package jobs

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"katara"
	"katara/internal/telemetry"
)

func TestJobIDFromPath(t *testing.T) {
	for path, want := range map[string]string{
		"/jobs/j1":         "j1",
		"/jobs/j1/result":  "j1",
		"/jobs/j1/append":  "j1",
		"/jobs/":           "",
		"/jobs":            "",
		"/healthz":         "",
		"/jobs/j1/explain": "j1",
	} {
		if got := jobIDFromPath(path); got != want {
			t.Errorf("jobIDFromPath(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestLogRequestsNilLogger: a nil logger returns the handler unwrapped —
// the middleware must be free when logging is off.
func TestLogRequestsNilLogger(t *testing.T) {
	m := NewManager(Config{Run: func(context.Context, *katara.KB, *katara.Table, Params, *telemetry.Pipeline) (*katara.Report, error) {
		return &katara.Report{}, nil
	}})
	defer m.Close()
	h := http.NewServeMux()
	if got := m.LogRequests(nil, h); got != http.Handler(h) {
		t.Fatal("LogRequests(nil, h) wrapped the handler, want it returned as-is")
	}
}

// TestLogRequestsRecord: one structured record per request with method,
// path and status; when the path names a known job, the record joins in
// the job ID and its shard count.
func TestLogRequestsRecord(t *testing.T) {
	run := func(context.Context, *katara.KB, *katara.Table, Params, *telemetry.Pipeline) (*katara.Report, error) {
		return &katara.Report{}, nil
	}
	m := NewManager(Config{Run: run, MaxConcurrent: 1, MaxQueue: 4})
	defer m.Close()

	tbl := katara.NewTable("t", "a")
	tbl.Append("x")
	id, err := m.Submit(tbl, Params{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, id)

	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(m.LogRequests(log, NewHandler(m)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := buf.String()
	for _, want := range []string{
		"method=GET", "path=/jobs/" + id + "/result", "status=200",
		"job=" + id, "shards=3", "duration_ms=",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log record missing %q: %s", want, line)
		}
	}

	// An unknown job still logs, with the 404 status and no shard attr.
	buf.Reset()
	resp, err = http.Get(ts.URL + "/jobs/nope/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line = buf.String()
	if !strings.Contains(line, "status=404") || !strings.Contains(line, "job=nope") {
		t.Errorf("404 record wrong: %s", line)
	}
	if strings.Contains(line, "shards=") {
		t.Errorf("404 record has shards attr: %s", line)
	}
}
