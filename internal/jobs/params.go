// Package jobs is the cleaning-as-a-service layer: validated job
// parameters, a bounded-concurrency job manager that runs each submitted
// table through the sharded pipeline against a per-job clone of a pristine
// KB, and the HTTP/JSON surface cmd/katarad mounts.
//
// The package sits above the root katara API (it imports it, never the
// reverse) so the library keeps zero knowledge of the service boundary.
package jobs

import (
	"fmt"
	"math"
	"strings"
	"time"

	"katara"
)

// Params are the numeric knobs a cleaning run accepts, shared verbatim by
// the katara CLI flags, the kexp driver and katarad job submissions so all
// three reject bad values with the same message instead of silently
// misbehaving (a negative budget used to mean "unlimited", a fractional
// worker count truncated, a negative deadline expired instantly).
type Params struct {
	// Workers sizes the worker pool for the parallel stages: 0 or 1 serial,
	// -1 = GOMAXPROCS, anything below -1 invalid.
	Workers int `json:"workers,omitempty"`
	// Shards is the row-range shard count for annotation coverage and
	// repair retrieval: 0 or 1 unsharded, -1 = GOMAXPROCS.
	Shards int `json:"shards,omitempty"`
	// RepairK caps possible repairs per erroneous tuple (0 = library
	// default).
	RepairK int `json:"repair_k,omitempty"`
	// Budget caps crowd questions per run, BudgetAssignments paid
	// assignments (0 = unlimited; negative is an error, not unlimited).
	Budget            int `json:"budget,omitempty"`
	BudgetAssignments int `json:"budget_assignments,omitempty"`
	// DeadlineMS bounds the run's wall-clock in milliseconds (0 = none).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// FaultRate is the injected per-assignment crowd fault probability,
	// in [0, 1).
	FaultRate float64 `json:"fault_rate,omitempty"`
	// Scale is the workload scale factor for drivers that generate their
	// tables (kexp: 1.0 = Person 5000 rows); 0 = driver default.
	Scale float64 `json:"scale,omitempty"`
	// Degrade picks the policy for tuples unanswered after budget/deadline
	// exhaustion: "" or "trust" = trust the KB, "unknown" = mark unknown.
	Degrade string `json:"degrade,omitempty"`
	// DedupOff disables distinct-signature execution (katara.Options.Dedup;
	// on by default — the zero value keeps it on). Mainly a measurement
	// knob: annotations and repairs are identical either way, only crowd
	// question counts differ on tables with duplicate rows.
	DedupOff bool `json:"dedup_off,omitempty"`
}

// ValidationError aggregates every rejected parameter so a caller fixes one
// round trip's worth of mistakes, not one mistake per round trip.
type ValidationError struct {
	Problems []string
}

func (e *ValidationError) Error() string {
	return "invalid parameters: " + strings.Join(e.Problems, "; ")
}

// Validate checks every numeric knob and returns a *ValidationError listing
// all violations, or nil.
func (p Params) Validate() error {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if p.Workers < -1 {
		bad("workers must be >= -1 (-1 = GOMAXPROCS), got %d", p.Workers)
	}
	if p.Shards < -1 {
		bad("shards must be >= -1 (-1 = GOMAXPROCS), got %d", p.Shards)
	}
	if p.RepairK < 0 {
		bad("repair_k must be >= 0 (0 = default), got %d", p.RepairK)
	}
	if p.Budget < 0 {
		bad("budget must be >= 0 (0 = unlimited), got %d", p.Budget)
	}
	if p.BudgetAssignments < 0 {
		bad("budget_assignments must be >= 0 (0 = unlimited), got %d", p.BudgetAssignments)
	}
	if p.DeadlineMS < 0 {
		bad("deadline must be >= 0 (0 = none), got %dms", p.DeadlineMS)
	}
	if math.IsNaN(p.FaultRate) || p.FaultRate < 0 || p.FaultRate >= 1 {
		bad("fault_rate must be in [0, 1), got %v", p.FaultRate)
	}
	if math.IsNaN(p.Scale) || math.IsInf(p.Scale, 0) || p.Scale < 0 {
		bad("scale must be a finite value >= 0 (0 = default), got %v", p.Scale)
	}
	switch p.Degrade {
	case "", "trust", "unknown":
	default:
		bad("degrade must be \"trust\" or \"unknown\", got %q", p.Degrade)
	}
	if problems != nil {
		return &ValidationError{Problems: problems}
	}
	return nil
}

// Deadline converts DeadlineMS into the duration katara.Options wants.
func (p Params) Deadline() time.Duration {
	return time.Duration(p.DeadlineMS) * time.Millisecond
}

// Options maps the validated parameters onto katara.Options. Fields outside
// Params' scope (oracles, transports, pipelines) are left zero for the
// caller to fill in.
func (p Params) Options() katara.Options {
	opts := katara.Options{
		Workers:           p.Workers,
		Shards:            p.Shards,
		RepairK:           p.RepairK,
		Budget:            p.Budget,
		BudgetAssignments: p.BudgetAssignments,
		Deadline:          p.Deadline(),
	}
	if p.Degrade == "unknown" {
		opts.Degrade = katara.DegradeMarkUnknown
	} else {
		opts.Degrade = katara.DegradeTrustKB
	}
	if p.DedupOff {
		f := false
		opts.Dedup = &f
	}
	return opts
}
