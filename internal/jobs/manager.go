package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"katara"
	"katara/internal/telemetry"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity — the backpressure signal, not an internal failure.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrDraining rejects submissions while the daemon is draining for a
	// graceful shutdown — clients should retry against the restarted
	// daemon (the HTTP layer maps this to 503 + Retry-After).
	ErrDraining = errors.New("jobs: draining for shutdown")
	// ErrUnknownJob reports a job ID the manager has never issued.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrNotReady reports an explain request against a job that has not
	// reached a terminal state yet.
	ErrNotReady = errors.New("jobs: job not finished")
	// ErrNoProvenance reports an explain request for a job whose evidence
	// lineage is not in memory: journal-recovered jobs (only the audit
	// summary in their result document survives restarts) and jobs that
	// failed before producing a report.
	ErrNoProvenance = errors.New("jobs: no provenance retained for this job")
	// ErrParentNotDone rejects an append against a job that has not finished
	// successfully — increments extend a completed report, never a queued,
	// running, failed or cancelled one (HTTP 409).
	ErrParentNotDone = errors.New("jobs: parent job is not done")
	// ErrParentExtended rejects a second append against the same parent:
	// chains are linear — extend the tip, not an interior job (HTTP 409).
	ErrParentExtended = errors.New("jobs: parent job already extended; append to the chain tip")
)

// poisonedError marks a job quarantined by crash-loop detection.
const poisonedError = "poisoned: job was running across two daemon crashes"

// Job is one submitted cleaning run. All mutable fields are guarded by the
// owning Manager's mutex; callers observe jobs through Manager.Status and
// Manager.Result.
type Job struct {
	id string
	// table is the parsed table for root jobs that will run in this boot —
	// or, for journal-recovered terminal root jobs, the replayed submission
	// kept so an append chain can re-execute from its root. It is nil for
	// append jobs (their rows live in delta) and for recovered roots whose
	// submission no longer parses; status/result paths always use
	// tableName/rows instead.
	table     *katara.Table
	tableName string
	columns   []string
	rows      int
	params    Params
	// parent links an append increment to the job it extends; delta holds
	// its appended rows. extendedBy points the other way and enforces the
	// linear-chain rule: a job already extended rejects further appends.
	parent     string
	delta      [][]string
	extendedBy string
	// pipe is the job's private telemetry pipeline: progress reads it live,
	// /metrics merges it (exactly once after the job finishes, via the
	// manager's aggregate).
	pipe   *telemetry.Pipeline
	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job reaches a terminal state — the poll-free
	// wait used by tests and the load driver.
	done chan struct{}

	state           State
	report          *katara.Report
	err             error
	stack           string // captured panic stack, if the job panicked
	cancelRequested bool
	absorbed        bool
	// resultDoc pins the served result document. For journal-recovered
	// terminal jobs it is the replayed document (byte-identical to what the
	// pre-crash daemon served); for jobs finished in this boot it caches
	// the deterministic projection built at finalize time.
	resultDoc *ResultDoc
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// RunFunc executes one job and returns its report. The manager cancels ctx
// on job cancel and daemon shutdown; pipe is the job's telemetry pipeline
// and must be handed to the run via katara.Options.Pipeline (the default
// runner does). Tests inject their own RunFunc to script slow, failing or
// blocking jobs.
type RunFunc func(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error)

// Config configures a Manager.
type Config struct {
	// KB is the pristine knowledge base. Every job runs against its own
	// clone: annotation enrichment mutates the store, and jobs must not
	// observe each other's enrichment (or corrupt each other's repairs).
	KB *katara.KB
	// MaxConcurrent bounds jobs running at once (default 4).
	MaxConcurrent int
	// MaxQueue bounds jobs waiting to run (default 64); submissions beyond
	// it fail fast with ErrQueueFull.
	MaxQueue int
	// Run overrides the job runner (tests); nil uses the real pipeline.
	Run RunFunc
	// Journal, when non-nil, records every lifecycle transition durably: a
	// submission is fsynced before it is acknowledged, so an accepted job
	// survives any crash.
	Journal *Journal
	// Replay, when non-nil, is journal state from a previous boot: terminal
	// jobs are restored retrievable, queued/running jobs are re-queued, and
	// jobs that were running across two consecutive crashes are quarantined
	// as failed (poisoned) instead of re-entering the crash loop.
	Replay *Replay
	// MaxSessions bounds the incremental sessions retained for the append
	// fast path (default 4). A chain whose session was evicted — or lost to
	// a restart — still appends correctly: the manager re-executes the chain
	// from its root submission, which is also the crash-replay path.
	MaxSessions int
}

// RecoveryStats summarizes what journal replay did at boot.
type RecoveryStats struct {
	// Terminal counts jobs restored already-finished (results retrievable).
	Terminal int
	// Requeued counts jobs re-queued for execution (queued or interrupted
	// mid-run at crash time).
	Requeued int
	// Poisoned counts jobs quarantined by crash-loop detection.
	Poisoned int
	// Boots counts prior daemon starts seen in the journal.
	Boots int
	// TruncatedBytes counts journal bytes dropped from torn tails.
	TruncatedBytes int64
}

// Manager owns the job table, the bounded queue and the worker pool, and
// keeps the monotone metrics aggregate the /metrics endpoint serves.
type Manager struct {
	cfg      Config
	journal  *Journal
	queue    chan *Job
	maxQueue int
	wg       sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for stable listings
	nextID int
	closed bool
	// draining stops admission while letting running jobs finish; queued
	// jobs are deliberately left unexecuted (their journal entries have no
	// terminal record, so the next boot re-queues them).
	draining bool
	// pendingEnq reserves queue slots for submissions that have been
	// admitted (and journaled) but not yet placed on the channel, keeping
	// the MaxQueue bound exact without holding the mutex across the fsync.
	pendingEnq int
	// aggregate absorbs each finished job's pipeline exactly once, so a
	// /metrics scrape = aggregate + still-live pipelines is monotone: a
	// job's counters move from the live term to the absorbed term without
	// ever being counted twice or dropped.
	aggregate *telemetry.Pipeline
	recovery  RecoveryStats
	// realRunner marks the default in-process pipeline runner: only then can
	// the manager retain a finished job's incremental session for the append
	// fast path (an injected RunFunc yields no cleaner to retain).
	realRunner bool
	// retained maps a chain tip's job ID to the live cleaner whose session
	// holds that chain's cumulative state; retainedOrder is its LRU list.
	retained      map[string]*katara.Cleaner
	retainedOrder []string
	maxSessions   int

	submitted, completed, failed, cancelled, rejected int64
	panics, requeued, poisoned, appended              int64
	running                                           int64
}

// NewManager replays any recovered journal state and starts the worker pool.
func NewManager(cfg Config) *Manager {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	realRunner := cfg.Run == nil
	if cfg.Run == nil {
		cfg.Run = runClean
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 4
	}
	m := &Manager{
		cfg:         cfg,
		journal:     cfg.Journal,
		maxQueue:    cfg.MaxQueue,
		jobs:        make(map[string]*Job),
		aggregate:   telemetry.New(),
		realRunner:  realRunner,
		retained:    make(map[string]*katara.Cleaner),
		maxSessions: cfg.MaxSessions,
	}
	requeue, endDocs := m.recover(cfg.Replay)
	// The channel is sized past MaxQueue when recovery re-queues more jobs
	// than the admission bound; Submit enforces MaxQueue itself, so the
	// extra capacity only ever holds recovered work.
	m.queue = make(chan *Job, cfg.MaxQueue+len(requeue))
	for _, job := range requeue {
		m.queue <- job
	}
	// Journal quarantine decisions so the next boot sees them terminal
	// (one batched sync covers them all).
	for _, doc := range endDocs {
		_ = m.journal.recordEndAsync(doc)
	}
	_ = m.journal.Sync()
	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// recover rebuilds the job table from replayed journal state, returning the
// jobs to re-queue and the terminal records to journal (quarantines).
func (m *Manager) recover(rep *Replay) (requeue []*Job, endDocs []ResultDoc) {
	if rep == nil {
		return nil, nil
	}
	m.nextID = rep.MaxID
	m.recovery.Boots = rep.Boots
	m.recovery.TruncatedBytes = rep.TruncatedBytes
	for i := range rep.Jobs {
		rj := &rep.Jobs[i]
		job := &Job{
			id:        rj.ID,
			parent:    rj.Parent,
			tableName: rj.Table.Name,
			columns:   rj.Table.Columns,
			rows:      len(rj.Table.Rows),
			params:    rj.Params,
			pipe:      telemetry.New(),
			done:      make(chan struct{}),
			submitted: time.Now(),
		}
		if job.tableName == "" {
			job.tableName = "table"
		}
		quarantine := func(doc ResultDoc) {
			job.state = doc.State
			job.err = errors.New(doc.Error)
			job.resultDoc = &doc
			job.absorbed = true
			close(job.done)
			endDocs = append(endDocs, doc)
		}
		switch {
		case rj.State.Terminal():
			doc := ResultDoc{ID: rj.ID, State: rj.State, Error: rj.Error, Stack: rj.Stack, Report: rj.Report, Audit: rj.Audit}
			job.state = rj.State
			job.resultDoc = &doc
			if rj.Error != "" {
				job.err = errors.New(rj.Error)
			}
			job.absorbed = true
			close(job.done)
			m.recovery.Terminal++
			// Keep the replayed rows in runnable form: a root's table (or an
			// append's delta) is the chain history a later append re-executes.
			if rj.Parent == "" {
				job.table, _ = rj.Table.Table()
			} else {
				job.delta = rj.Table.Rows
			}
		case rj.Starts >= 2:
			// The job was running when two consecutive boots died: break
			// the crash loop instead of re-queuing it a third time.
			quarantine(ResultDoc{ID: rj.ID, State: StateFailed, Error: poisonedError})
			m.poisoned++
			m.recovery.Poisoned++
		default:
			if rj.Parent == "" {
				tbl, err := rj.Table.Table()
				if err != nil {
					// A submit record that replays but no longer parses —
					// quarantine rather than crash or silently drop.
					quarantine(ResultDoc{ID: rj.ID, State: StateFailed, Error: "journal replay: " + err.Error()})
					m.recovery.Poisoned++
					break
				}
				job.table = tbl
			} else {
				job.delta = rj.Table.Rows
			}
			ctx, cancel := context.WithCancel(context.Background())
			job.ctx = ctx
			job.cancel = cancel
			job.state = StateQueued
			requeue = append(requeue, job)
			m.submitted++
			m.requeued++
			m.recovery.Requeued++
		}
		m.jobs[job.id] = job
		m.order = append(m.order, job.id)
	}
	// Rebuild the linear-chain bookkeeping so a restarted daemon keeps
	// rejecting appends against interior jobs.
	for _, id := range m.order {
		job := m.jobs[id]
		if job.parent != "" {
			if parent := m.jobs[job.parent]; parent != nil {
				parent.extendedBy = job.id
			}
		}
	}
	return requeue, endDocs
}

// Recovery returns what journal replay did at boot (zero-valued without a
// journal).
func (m *Manager) Recovery() RecoveryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovery
}

// buildCleaner assembles the real per-job cleaner: a clone of the pristine
// KB (per-job enrichment isolation), provenance recording (the audit layer
// is part of the service contract), and an incremental session so a later
// append can extend the run instead of re-cleaning everything.
func buildCleaner(kb *katara.KB, p Params, pipe *telemetry.Pipeline) *katara.Cleaner {
	opts := p.Options()
	opts.Pipeline = pipe
	opts.Provenance = katara.NewProvenance()
	opts.Incremental = true
	if p.FaultRate > 0 {
		opts.Transport = katara.NewFaultInjector(katara.FaultConfig{
			Seed:          1,
			AbandonRate:   p.FaultRate * 0.5,
			TransientRate: p.FaultRate * 0.25,
			SpamRate:      p.FaultRate * 0.25,
		})
	}
	return katara.NewCleaner(kb.Clone(), katara.TrustingCrowd(), opts)
}

// runClean is the real RunFunc: build the per-job cleaner and run the
// sharded pipeline.
func runClean(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error) {
	return buildCleaner(kb, p, pipe).CleanContext(ctx, tbl)
}

// Submit validates, registers, durably journals and enqueues a job. It
// fails fast with a *ValidationError, ErrQueueFull, ErrDraining or
// ErrClosed; it never blocks on a full queue. When it returns an ID the
// submission is on stable storage: the job survives any subsequent crash.
func (m *Manager) Submit(tbl *katara.Table, p Params) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	if tbl == nil || tbl.NumRows() == 0 {
		return "", &ValidationError{Problems: []string{"table must have at least one row"}}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	if m.draining {
		m.mu.Unlock()
		return "", ErrDraining
	}
	if len(m.queue)+m.pendingEnq >= m.maxQueue {
		m.rejected++
		m.mu.Unlock()
		return "", ErrQueueFull
	}
	// Reserve a queue slot and the ID, then journal outside the lock: the
	// fsync must not serialize every other manager operation, and the
	// reservation keeps the MaxQueue bound exact while we're off-lock.
	m.pendingEnq++
	m.nextID++
	id := fmt.Sprintf("j%d", m.nextID)
	m.mu.Unlock()

	// Durable before acknowledged: the submit record is fsynced (group
	// commit amortizes concurrent submissions into one sync) before the
	// client ever learns the ID.
	if err := m.journal.RecordSubmit(id, TableDoc{Name: tbl.Name, Columns: tbl.Columns, Rows: tbl.Rows}, p); err != nil {
		m.mu.Lock()
		m.pendingEnq--
		m.mu.Unlock()
		return "", fmt.Errorf("jobs: journal submit: %w", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		id:        id,
		table:     tbl,
		tableName: tbl.Name,
		columns:   tbl.Columns,
		rows:      tbl.NumRows(),
		params:    p,
		pipe:      telemetry.New(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}

	m.mu.Lock()
	m.pendingEnq--
	if m.closed || m.draining {
		// Shut down between journaling and enqueueing: void the journaled
		// submission so the next boot doesn't resurrect a job the client
		// was told failed.
		err := ErrClosed
		if !m.closed {
			err = ErrDraining
		}
		m.mu.Unlock()
		cancel()
		_ = m.journal.RecordEnd(ResultDoc{ID: id, State: StateCancelled, Error: err.Error()})
		return "", err
	}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.submitted++
	// Non-blocking by construction: the reservation guaranteed a slot, and
	// the channel is never smaller than MaxQueue.
	m.queue <- job
	m.mu.Unlock()
	return id, nil
}

// Append validates, registers, durably journals and enqueues an incremental
// extension of a finished job: the delta rows are cleaned against the
// parent's cumulative session (or the chain is re-executed from its root
// when the session is gone), and the new job's result is the cumulative
// report over every row of the chain. The parent must be done and
// un-extended — chains are linear; extend the tip. Like Submit, a returned
// ID means the increment is on stable storage and survives any crash.
func (m *Manager) Append(parentID string, rows [][]string) (string, error) {
	if len(rows) == 0 {
		return "", &ValidationError{Problems: []string{"append needs at least one row"}}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	if m.draining {
		m.mu.Unlock()
		return "", ErrDraining
	}
	parent, ok := m.jobs[parentID]
	if !ok {
		m.mu.Unlock()
		return "", ErrUnknownJob
	}
	if parent.state != StateDone {
		m.mu.Unlock()
		return "", fmt.Errorf("%w (%s is %s)", ErrParentNotDone, parentID, parent.state)
	}
	if parent.extendedBy != "" {
		m.mu.Unlock()
		return "", fmt.Errorf("%w (%s extended by %s)", ErrParentExtended, parentID, parent.extendedBy)
	}
	for i, row := range rows {
		if len(row) != len(parent.columns) {
			m.mu.Unlock()
			return "", &ValidationError{Problems: []string{
				fmt.Sprintf("append row %d has %d cells, want %d", i, len(row), len(parent.columns)),
			}}
		}
	}
	if len(m.queue)+m.pendingEnq >= m.maxQueue {
		m.rejected++
		m.mu.Unlock()
		return "", ErrQueueFull
	}
	// Reserve the queue slot, the ID and the chain link before unlocking, so
	// a racing append on the same parent conflicts instead of forking the
	// chain; all three are rolled back if the journal or shutdown interferes.
	m.pendingEnq++
	m.nextID++
	id := fmt.Sprintf("j%d", m.nextID)
	parent.extendedBy = id
	p := parent.params
	name, columns := parent.tableName, parent.columns
	m.mu.Unlock()

	rollback := func() {
		m.mu.Lock()
		m.pendingEnq--
		if parent.extendedBy == id {
			parent.extendedBy = ""
		}
		m.mu.Unlock()
	}
	// Durable before acknowledged, exactly like Submit.
	if err := m.journal.RecordAppend(id, parentID, TableDoc{Name: name, Columns: columns, Rows: rows}); err != nil {
		rollback()
		return "", fmt.Errorf("jobs: journal append: %w", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		id:        id,
		parent:    parentID,
		delta:     rows,
		tableName: name,
		columns:   columns,
		rows:      len(rows),
		params:    p,
		pipe:      telemetry.New(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}

	m.mu.Lock()
	m.pendingEnq--
	if m.closed || m.draining {
		err := ErrClosed
		if !m.closed {
			err = ErrDraining
		}
		if parent.extendedBy == id {
			parent.extendedBy = ""
		}
		m.mu.Unlock()
		cancel()
		_ = m.journal.RecordEnd(ResultDoc{ID: id, State: StateCancelled, Error: err.Error()})
		return "", err
	}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.submitted++
	m.appended++
	m.queue <- job
	m.mu.Unlock()
	return id, nil
}

// worker drains the queue until Close closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.mu.Lock()
		if job.state.Terminal() {
			// Cancelled while still queued; already finalized.
			m.mu.Unlock()
			continue
		}
		if m.draining {
			// Leave the job queued: its journal entry has no terminal
			// record, so the next boot re-queues and runs it.
			m.mu.Unlock()
			continue
		}
		job.state = StateRunning
		job.started = time.Now()
		m.running++
		m.mu.Unlock()
		// Unsynced on purpose: losing a start record to a crash merely
		// replays the job as queued, which is exactly what re-queueing
		// does anyway.
		_ = m.journal.RecordStart(job.id)

		rep, err := m.runJob(job)

		m.mu.Lock()
		m.running--
		job.report = rep
		job.err = err
		switch {
		case job.cancelRequested:
			job.state = StateCancelled
			m.cancelled++
		case err != nil:
			job.state = StateFailed
			m.failed++
		default:
			job.state = StateDone
			m.completed++
		}
		m.absorbLocked(job)
		job.finished = time.Now()
		doc := m.buildResultLocked(job)
		job.resultDoc = &doc
		job.cancel()
		close(job.done)
		terminal := job.state
		m.mu.Unlock()
		if terminal != StateDone {
			// A failed or cancelled run may have left its session dirty;
			// appends against it are rejected anyway (parent must be done).
			m.dropRetained(job.id)
		}
		// The terminal record is synced so the result survives a restart;
		// losing the race against a crash only means the job re-runs, and
		// results are deterministic.
		_ = m.journal.RecordEnd(doc)
	}
}

// runJob executes the job with panic isolation: a panic anywhere in the run
// — including one re-raised from a shard goroutine — becomes a failed job
// with the stack preserved in its result, never a dead daemon.
func (m *Manager) runJob(job *Job) (rep *katara.Report, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		stack := string(debug.Stack())
		if pe, ok := r.(*katara.PanicError); ok {
			// The shard barrier already captured the original goroutine's
			// stack; prefer it over this recovery frame's.
			stack = pe.Stack
		}
		m.mu.Lock()
		m.panics++
		job.stack = stack
		m.mu.Unlock()
		rep = nil
		err = fmt.Errorf("panic: %v", r)
	}()
	return m.execute(job)
}

// execute dispatches one job to its runner. Root jobs run the configured
// RunFunc — with the default in-process runner, the cleaner is retained
// afterwards so the chain's next append can reuse its live session. Append
// jobs extend the retained session when it survives, and otherwise re-execute
// the whole chain from the root submission — the same path a journal-replayed
// append takes after a crash, so the two produce byte-identical results.
func (m *Manager) execute(job *Job) (*katara.Report, error) {
	if job.parent == "" {
		if !m.realRunner {
			return m.cfg.Run(job.ctx, m.cfg.KB, job.table, job.params, job.pipe)
		}
		cl := buildCleaner(m.cfg.KB, job.params, job.pipe)
		rep, err := cl.CleanContext(job.ctx, job.table)
		if err == nil {
			m.retain(job.id, cl)
		}
		return rep, err
	}
	if cl := m.takeRetained(job.parent); cl != nil {
		// Fast path: the parent's session is live — only the delta is
		// annotated and repaired.
		cl.SetPipeline(job.pipe)
		rep, err := cl.AppendContext(job.ctx, job.delta)
		if err == nil {
			m.retain(job.id, cl)
		}
		return rep, err
	}
	// Slow path: session evicted or lost to a restart. Re-execute the chain —
	// root Clean, then every delta in order — against a fresh KB clone.
	root, deltas, err := m.chain(job)
	if err != nil {
		return nil, err
	}
	cl := buildCleaner(m.cfg.KB, job.params, job.pipe)
	rep, err := cl.CleanContext(job.ctx, root)
	for _, delta := range deltas {
		if err != nil {
			return nil, err
		}
		rep, err = cl.AppendContext(job.ctx, delta)
	}
	if err == nil {
		m.retain(job.id, cl)
	}
	return rep, err
}

// chain resolves an append job's full history: the root submission's table
// (cloned — the incremental session mutates its table in place) and every
// delta from the root to this job, in append order.
func (m *Manager) chain(job *Job) (*katara.Table, [][][]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var deltas [][][]string
	cur := job
	for cur.parent != "" {
		deltas = append(deltas, cur.delta)
		parent, ok := m.jobs[cur.parent]
		if !ok {
			return nil, nil, fmt.Errorf("jobs: append chain broken: %w (%s)", ErrUnknownJob, cur.parent)
		}
		cur = parent
	}
	if cur.table == nil {
		return nil, nil, fmt.Errorf("jobs: append chain root %s has no runnable table", cur.id)
	}
	for i, j := 0, len(deltas)-1; i < j; i, j = i+1, j-1 {
		deltas[i], deltas[j] = deltas[j], deltas[i]
	}
	return cur.table.Clone(), deltas, nil
}

// retain parks a finished chain tip's cleaner for the append fast path,
// evicting the least-recently-retained session past the cap.
func (m *Manager) retain(id string, cl *katara.Cleaner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.retained[id]; !ok {
		m.retainedOrder = append(m.retainedOrder, id)
	}
	m.retained[id] = cl
	for len(m.retainedOrder) > m.maxSessions {
		evict := m.retainedOrder[0]
		m.retainedOrder = m.retainedOrder[1:]
		delete(m.retained, evict)
	}
}

// takeRetained claims (and removes) the retained session for id. Ownership
// transfers to the caller: the linear-chain rule means at most one append
// job ever claims a given tip.
func (m *Manager) takeRetained(id string) *katara.Cleaner {
	m.mu.Lock()
	defer m.mu.Unlock()
	cl, ok := m.retained[id]
	if !ok {
		return nil
	}
	delete(m.retained, id)
	for i, rid := range m.retainedOrder {
		if rid == id {
			m.retainedOrder = append(m.retainedOrder[:i], m.retainedOrder[i+1:]...)
			break
		}
	}
	return cl
}

// dropRetained discards a job's retained session, if any — a failed or
// cancelled job's session may be dirty and must not serve appends.
func (m *Manager) dropRetained(id string) { m.takeRetained(id) }

// absorbLocked folds a finished job's pipeline into the aggregate, exactly
// once. Callers hold m.mu.
func (m *Manager) absorbLocked(job *Job) {
	if job.absorbed {
		return
	}
	job.absorbed = true
	m.aggregate.Merge(job.pipe)
}

// buildResultLocked projects the job's terminal state into its result
// document, reusing the pinned document when one exists (recovered jobs).
// Callers hold m.mu.
func (m *Manager) buildResultLocked(job *Job) ResultDoc {
	if job.resultDoc != nil {
		return *job.resultDoc
	}
	doc := BuildResult(job.id, job.state, job.report)
	if job.err != nil {
		doc.Error = job.err.Error()
	}
	doc.Stack = job.stack
	return doc
}

// Cancel requests cancellation. A queued job is finalized immediately; a
// running job has its context cancelled and finishes as StateCancelled
// (typically with a degraded report — the pipeline honours context
// cancellation by degrading, not aborting). Cancelling a terminal job is a
// harmless no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrUnknownJob
	}
	if job.state.Terminal() {
		m.mu.Unlock()
		return nil
	}
	job.cancelRequested = true
	job.cancel()
	var doc *ResultDoc
	if job.state == StateQueued {
		job.state = StateCancelled
		m.cancelled++
		m.absorbLocked(job)
		job.finished = time.Now()
		d := m.buildResultLocked(job)
		job.resultDoc = &d
		doc = &d
		close(job.done)
	}
	m.mu.Unlock()
	if doc != nil {
		_ = m.journal.RecordEnd(*doc)
	}
	return nil
}

// StartDraining stops admission: subsequent submissions fail with
// ErrDraining while running jobs continue. Queued jobs are deliberately not
// started — their journal entries stay non-terminal, so a restarted daemon
// re-queues them.
func (m *Manager) StartDraining() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Drain waits for running jobs to finish, up to timeout, and reports
// whether the daemon is fully quiesced. Call StartDraining first. The
// journal is synced either way, so everything that happened is durable.
func (m *Manager) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		running := m.running
		m.mu.Unlock()
		if running == 0 {
			_ = m.journal.Sync()
			return true
		}
		if time.Now().After(deadline) {
			_ = m.journal.Sync()
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// JobStatus is the wire representation of one job's state and live
// progress — the per-job generalization of the single-run /progress
// endpoint.
type JobStatus struct {
	ID string `json:"id"`
	// Parent is set on append increments: the job this one extends.
	Parent string `json:"parent,omitempty"`
	Table  string `json:"table"`
	Rows   int    `json:"rows"`
	State  State  `json:"state"`
	Params Params `json:"params"`
	Error  string `json:"error,omitempty"`

	Progress telemetry.Progress `json:"progress"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// statusLocked builds the wire status. Callers hold m.mu; the pipeline
// reads are atomic, so a running job's counters are safely read live.
func (m *Manager) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:          job.id,
		Parent:      job.parent,
		Table:       job.tableName,
		Rows:        job.rows,
		State:       job.state,
		Params:      job.params,
		SubmittedAt: job.submitted,
	}
	if job.err != nil {
		st.Error = job.err.Error()
	}
	if !job.started.IsZero() {
		t := job.started
		st.StartedAt = &t
	}
	if !job.finished.IsZero() {
		t := job.finished
		st.FinishedAt = &t
	}
	st.Progress = telemetry.Progress{
		Stage:                    job.pipe.CurrentStage(),
		TuplesAnnotated:          job.pipe.Get(telemetry.TuplesAnnotated),
		TuplesTotal:              int64(job.rows),
		CrowdQuestions:           job.pipe.Get(telemetry.CrowdQuestions),
		BudgetQuestionsRemaining: -1,
		Done:                     job.state.Terminal(),
	}
	if b := int64(job.params.Budget); b > 0 {
		rem := b - st.Progress.CrowdQuestions
		if rem < 0 {
			rem = 0
		}
		st.Progress.BudgetQuestionsRemaining = rem
	}
	return st
}

// Status returns one job's status.
func (m *Manager) Status(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return m.statusLocked(job), nil
}

// List returns every job's status in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// Report returns a terminal job's report (possibly nil for a failed,
// early-cancelled or journal-recovered job) and its final state.
// Non-terminal jobs return ok=false: the result is not ready yet.
func (m *Manager) Report(id string) (rep *katara.Report, state State, ok bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, found := m.jobs[id]
	if !found {
		return nil, "", false, ErrUnknownJob
	}
	if !job.state.Terminal() {
		return nil, job.state, false, nil
	}
	return job.report, job.state, true, nil
}

// Result returns a terminal job's result document — the exact bytes-stable
// projection the HTTP layer serves, identical across restarts for
// journal-recovered jobs. Non-terminal jobs return ok=false.
func (m *Manager) Result(id string) (doc ResultDoc, state State, ok bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, found := m.jobs[id]
	if !found {
		return ResultDoc{}, "", false, ErrUnknownJob
	}
	if !job.state.Terminal() {
		return ResultDoc{}, job.state, false, nil
	}
	return m.buildResultLocked(job), job.state, true, nil
}

// Explain returns the evidence chain behind cell (row, col) of a finished
// job. The recorder lives only in daemon memory, so journal-recovered jobs
// return ErrNoProvenance — their result document's pinned audit section is
// what survives restarts. Non-terminal jobs return ErrNotReady.
func (m *Manager) Explain(id string, row, col int) (*katara.Explanation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, found := m.jobs[id]
	if !found {
		return nil, ErrUnknownJob
	}
	if !job.state.Terminal() {
		return nil, fmt.Errorf("%w (state %s)", ErrNotReady, job.state)
	}
	if job.report == nil || !job.report.Provenance.Enabled() {
		return nil, ErrNoProvenance
	}
	return job.report.Provenance.Explain(row, col), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (m *Manager) Wait(ctx context.Context, id string) error {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return ErrUnknownJob
	}
	select {
	case <-job.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting submissions, cancels queued and running jobs, and
// waits for the workers to drain. Idempotent. For a graceful shutdown that
// preserves queued jobs for the next boot, use StartDraining + Drain
// instead.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	var docs []ResultDoc
	for _, id := range m.order {
		job := m.jobs[id]
		if job.state.Terminal() {
			continue
		}
		job.cancelRequested = true
		job.cancel()
		if job.state == StateQueued {
			job.state = StateCancelled
			m.cancelled++
			m.absorbLocked(job)
			job.finished = time.Now()
			d := m.buildResultLocked(job)
			job.resultDoc = &d
			docs = append(docs, d)
			close(job.done)
		}
	}
	close(m.queue)
	m.mu.Unlock()
	// One batched sync covers the whole mass-cancel instead of an fsync
	// per job.
	for _, d := range docs {
		_ = m.journal.recordEndAsync(d)
	}
	_ = m.journal.Sync()
	m.wg.Wait()
}

// WriteMetrics writes the daemon-wide Prometheus exposition: the merged
// katara_* pipeline families (aggregate of finished jobs + live pipelines
// of unfinished ones — monotone by construction) followed by the katarad_*
// job-accounting families.
func (m *Manager) WriteMetrics(w io.Writer) error {
	merged := telemetry.New()
	m.mu.Lock()
	merged.Merge(m.aggregate)
	for _, id := range m.order {
		if job := m.jobs[id]; !job.absorbed {
			merged.Merge(job.pipe)
		}
	}
	submitted, completed, failed := m.submitted, m.completed, m.failed
	cancelled, rejected, running := m.cancelled, m.rejected, m.running
	panics, requeued, poisoned := m.panics, m.requeued, m.poisoned
	appended := m.appended
	sessions := int64(len(m.retained))
	queued := int64(len(m.queue))
	var draining int64
	if m.draining {
		draining = 1
	}
	m.mu.Unlock()

	if err := merged.Snapshot().WriteProm(w); err != nil {
		return err
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("katarad_jobs_submitted_total", "Jobs accepted into the queue.", submitted)
	counter("katarad_jobs_completed_total", "Jobs finished successfully.", completed)
	counter("katarad_jobs_failed_total", "Jobs finished with an error.", failed)
	counter("katarad_jobs_cancelled_total", "Jobs cancelled before or during execution.", cancelled)
	counter("katarad_jobs_rejected_total", "Submissions rejected because the queue was full.", rejected)
	counter("katarad_jobs_panics_total", "Job panics converted into failed jobs instead of daemon crashes.", panics)
	counter("katarad_jobs_requeued_total", "Jobs re-queued from the journal at boot.", requeued)
	counter("katarad_jobs_poisoned_total", "Jobs quarantined at boot after crashing the daemon twice.", poisoned)
	counter("katarad_jobs_appended_total", "Append increments accepted against finished jobs.", appended)
	gauge("katarad_sessions_retained", "Incremental sessions held for the append fast path.", sessions)
	gauge("katarad_jobs_running", "Jobs currently executing.", running)
	gauge("katarad_jobs_queued", "Jobs waiting in the queue.", queued)
	gauge("katarad_draining", "1 while the daemon is draining for graceful shutdown.", draining)
	writeBuildInfoMetric(w)
	return nil
}
