package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"katara"
	"katara/internal/telemetry"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity — the backpressure signal, not an internal failure.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrUnknownJob reports a job ID the manager has never issued.
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// Job is one submitted cleaning run. All mutable fields are guarded by the
// owning Manager's mutex; callers observe jobs through Manager.Status and
// Manager.Report.
type Job struct {
	id     string
	table  *katara.Table
	params Params
	// pipe is the job's private telemetry pipeline: progress reads it live,
	// /metrics merges it (exactly once after the job finishes, via the
	// manager's aggregate).
	pipe   *telemetry.Pipeline
	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job reaches a terminal state — the poll-free
	// wait used by tests and the load driver.
	done chan struct{}

	state           State
	report          *katara.Report
	err             error
	cancelRequested bool
	absorbed        bool
	submitted       time.Time
	started         time.Time
	finished        time.Time
}

// RunFunc executes one job and returns its report. The manager cancels ctx
// on job cancel and daemon shutdown; pipe is the job's telemetry pipeline
// and must be handed to the run via katara.Options.Pipeline (the default
// runner does). Tests inject their own RunFunc to script slow, failing or
// blocking jobs.
type RunFunc func(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error)

// Config configures a Manager.
type Config struct {
	// KB is the pristine knowledge base. Every job runs against its own
	// clone: annotation enrichment mutates the store, and jobs must not
	// observe each other's enrichment (or corrupt each other's repairs).
	KB *katara.KB
	// MaxConcurrent bounds jobs running at once (default 4).
	MaxConcurrent int
	// MaxQueue bounds jobs waiting to run (default 64); submissions beyond
	// it fail fast with ErrQueueFull.
	MaxQueue int
	// Run overrides the job runner (tests); nil uses the real pipeline.
	Run RunFunc
}

// Manager owns the job table, the bounded queue and the worker pool, and
// keeps the monotone metrics aggregate the /metrics endpoint serves.
type Manager struct {
	cfg   Config
	queue chan *Job
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for stable listings
	nextID int
	closed bool
	// aggregate absorbs each finished job's pipeline exactly once, so a
	// /metrics scrape = aggregate + still-live pipelines is monotone: a
	// job's counters move from the live term to the absorbed term without
	// ever being counted twice or dropped.
	aggregate *telemetry.Pipeline

	submitted, completed, failed, cancelled, rejected int64
	running                                           int64
}

// NewManager starts the worker pool and returns the manager.
func NewManager(cfg Config) *Manager {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Run == nil {
		cfg.Run = runClean
	}
	m := &Manager{
		cfg:       cfg,
		queue:     make(chan *Job, cfg.MaxQueue),
		jobs:      make(map[string]*Job),
		aggregate: telemetry.New(),
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// runClean is the real runner: clone the pristine KB (per-job enrichment
// isolation), build a cleaner and run the sharded pipeline.
func runClean(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error) {
	opts := p.Options()
	opts.Pipeline = pipe
	if p.FaultRate > 0 {
		opts.Transport = katara.NewFaultInjector(katara.FaultConfig{
			Seed:          1,
			AbandonRate:   p.FaultRate * 0.5,
			TransientRate: p.FaultRate * 0.25,
			SpamRate:      p.FaultRate * 0.25,
		})
	}
	cleaner := katara.NewCleaner(kb.Clone(), katara.TrustingCrowd(), opts)
	return cleaner.CleanContext(ctx, tbl)
}

// Submit validates, registers and enqueues a job. It fails fast with a
// *ValidationError, ErrQueueFull or ErrClosed; it never blocks.
func (m *Manager) Submit(tbl *katara.Table, p Params) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	if tbl == nil || tbl.NumRows() == 0 {
		return "", &ValidationError{Problems: []string{"table must have at least one row"}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		table:     tbl,
		params:    p,
		pipe:      telemetry.New(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	m.nextID++
	job.id = fmt.Sprintf("j%d", m.nextID)
	select {
	case m.queue <- job:
		m.jobs[job.id] = job
		m.order = append(m.order, job.id)
		m.submitted++
		m.mu.Unlock()
		return job.id, nil
	default:
		m.rejected++
		m.mu.Unlock()
		cancel()
		return "", ErrQueueFull
	}
}

// worker drains the queue until Close closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.mu.Lock()
		if job.state.Terminal() {
			// Cancelled while still queued; already finalized.
			m.mu.Unlock()
			continue
		}
		job.state = StateRunning
		job.started = time.Now()
		m.running++
		m.mu.Unlock()

		rep, err := m.cfg.Run(job.ctx, m.cfg.KB, job.table, job.params, job.pipe)

		m.mu.Lock()
		m.running--
		job.report = rep
		job.err = err
		switch {
		case job.cancelRequested:
			job.state = StateCancelled
			m.cancelled++
		case err != nil:
			job.state = StateFailed
			m.failed++
		default:
			job.state = StateDone
			m.completed++
		}
		m.absorbLocked(job)
		job.finished = time.Now()
		job.cancel()
		close(job.done)
		m.mu.Unlock()
	}
}

// absorbLocked folds a finished job's pipeline into the aggregate, exactly
// once. Callers hold m.mu.
func (m *Manager) absorbLocked(job *Job) {
	if job.absorbed {
		return
	}
	job.absorbed = true
	m.aggregate.Merge(job.pipe)
}

// Cancel requests cancellation. A queued job is finalized immediately; a
// running job has its context cancelled and finishes as StateCancelled
// (typically with a degraded report — the pipeline honours context
// cancellation by degrading, not aborting). Cancelling a terminal job is a
// harmless no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	if job.state.Terminal() {
		return nil
	}
	job.cancelRequested = true
	job.cancel()
	if job.state == StateQueued {
		job.state = StateCancelled
		m.cancelled++
		m.absorbLocked(job)
		job.finished = time.Now()
		close(job.done)
	}
	return nil
}

// JobStatus is the wire representation of one job's state and live
// progress — the per-job generalization of the single-run /progress
// endpoint.
type JobStatus struct {
	ID     string `json:"id"`
	Table  string `json:"table"`
	Rows   int    `json:"rows"`
	State  State  `json:"state"`
	Params Params `json:"params"`
	Error  string `json:"error,omitempty"`

	Progress telemetry.Progress `json:"progress"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// statusLocked builds the wire status. Callers hold m.mu; the pipeline
// reads are atomic, so a running job's counters are safely read live.
func (m *Manager) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:          job.id,
		Table:       job.table.Name,
		Rows:        job.table.NumRows(),
		State:       job.state,
		Params:      job.params,
		SubmittedAt: job.submitted,
	}
	if job.err != nil {
		st.Error = job.err.Error()
	}
	if !job.started.IsZero() {
		t := job.started
		st.StartedAt = &t
	}
	if !job.finished.IsZero() {
		t := job.finished
		st.FinishedAt = &t
	}
	st.Progress = telemetry.Progress{
		Stage:                    job.pipe.CurrentStage(),
		TuplesAnnotated:          job.pipe.Get(telemetry.TuplesAnnotated),
		TuplesTotal:              int64(job.table.NumRows()),
		CrowdQuestions:           job.pipe.Get(telemetry.CrowdQuestions),
		BudgetQuestionsRemaining: -1,
		Done:                     job.state.Terminal(),
	}
	if b := int64(job.params.Budget); b > 0 {
		rem := b - st.Progress.CrowdQuestions
		if rem < 0 {
			rem = 0
		}
		st.Progress.BudgetQuestionsRemaining = rem
	}
	return st
}

// Status returns one job's status.
func (m *Manager) Status(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return m.statusLocked(job), nil
}

// List returns every job's status in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// Report returns a terminal job's report (possibly nil for a failed or
// early-cancelled job) and its final state. Non-terminal jobs return
// ok=false: the result is not ready yet.
func (m *Manager) Report(id string) (rep *katara.Report, state State, ok bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, found := m.jobs[id]
	if !found {
		return nil, "", false, ErrUnknownJob
	}
	if !job.state.Terminal() {
		return nil, job.state, false, nil
	}
	return job.report, job.state, true, nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (m *Manager) Wait(ctx context.Context, id string) error {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return ErrUnknownJob
	}
	select {
	case <-job.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting submissions, cancels queued and running jobs, and
// waits for the workers to drain. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	for _, id := range m.order {
		job := m.jobs[id]
		if job.state.Terminal() {
			continue
		}
		job.cancelRequested = true
		job.cancel()
		if job.state == StateQueued {
			job.state = StateCancelled
			m.cancelled++
			m.absorbLocked(job)
			job.finished = time.Now()
			close(job.done)
		}
	}
	close(m.queue)
	m.mu.Unlock()
	m.wg.Wait()
}

// WriteMetrics writes the daemon-wide Prometheus exposition: the merged
// katara_* pipeline families (aggregate of finished jobs + live pipelines
// of unfinished ones — monotone by construction) followed by the katarad_*
// job-accounting families.
func (m *Manager) WriteMetrics(w io.Writer) error {
	merged := telemetry.New()
	m.mu.Lock()
	merged.Merge(m.aggregate)
	for _, id := range m.order {
		if job := m.jobs[id]; !job.absorbed {
			merged.Merge(job.pipe)
		}
	}
	submitted, completed, failed := m.submitted, m.completed, m.failed
	cancelled, rejected, running := m.cancelled, m.rejected, m.running
	queued := int64(len(m.queue))
	m.mu.Unlock()

	if err := merged.Snapshot().WriteProm(w); err != nil {
		return err
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("katarad_jobs_submitted_total", "Jobs accepted into the queue.", submitted)
	counter("katarad_jobs_completed_total", "Jobs finished successfully.", completed)
	counter("katarad_jobs_failed_total", "Jobs finished with an error.", failed)
	counter("katarad_jobs_cancelled_total", "Jobs cancelled before or during execution.", cancelled)
	counter("katarad_jobs_rejected_total", "Submissions rejected because the queue was full.", rejected)
	gauge("katarad_jobs_running", "Jobs currently executing.", running)
	gauge("katarad_jobs_queued", "Jobs waiting in the queue.", queued)
	return nil
}
