package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"katara"
	"katara/internal/telemetry"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity — the backpressure signal, not an internal failure.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrDraining rejects submissions while the daemon is draining for a
	// graceful shutdown — clients should retry against the restarted
	// daemon (the HTTP layer maps this to 503 + Retry-After).
	ErrDraining = errors.New("jobs: draining for shutdown")
	// ErrUnknownJob reports a job ID the manager has never issued.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrNotReady reports an explain request against a job that has not
	// reached a terminal state yet.
	ErrNotReady = errors.New("jobs: job not finished")
	// ErrNoProvenance reports an explain request for a job whose evidence
	// lineage is not in memory: journal-recovered jobs (only the audit
	// summary in their result document survives restarts) and jobs that
	// failed before producing a report.
	ErrNoProvenance = errors.New("jobs: no provenance retained for this job")
)

// poisonedError marks a job quarantined by crash-loop detection.
const poisonedError = "poisoned: job was running across two daemon crashes"

// Job is one submitted cleaning run. All mutable fields are guarded by the
// owning Manager's mutex; callers observe jobs through Manager.Status and
// Manager.Result.
type Job struct {
	id string
	// table is the parsed table for jobs that will run in this boot; it is
	// nil for journal-recovered terminal jobs, so status/result paths must
	// use tableName/rows instead.
	table     *katara.Table
	tableName string
	rows      int
	params    Params
	// pipe is the job's private telemetry pipeline: progress reads it live,
	// /metrics merges it (exactly once after the job finishes, via the
	// manager's aggregate).
	pipe   *telemetry.Pipeline
	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job reaches a terminal state — the poll-free
	// wait used by tests and the load driver.
	done chan struct{}

	state           State
	report          *katara.Report
	err             error
	stack           string // captured panic stack, if the job panicked
	cancelRequested bool
	absorbed        bool
	// resultDoc pins the served result document. For journal-recovered
	// terminal jobs it is the replayed document (byte-identical to what the
	// pre-crash daemon served); for jobs finished in this boot it caches
	// the deterministic projection built at finalize time.
	resultDoc *ResultDoc
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// RunFunc executes one job and returns its report. The manager cancels ctx
// on job cancel and daemon shutdown; pipe is the job's telemetry pipeline
// and must be handed to the run via katara.Options.Pipeline (the default
// runner does). Tests inject their own RunFunc to script slow, failing or
// blocking jobs.
type RunFunc func(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error)

// Config configures a Manager.
type Config struct {
	// KB is the pristine knowledge base. Every job runs against its own
	// clone: annotation enrichment mutates the store, and jobs must not
	// observe each other's enrichment (or corrupt each other's repairs).
	KB *katara.KB
	// MaxConcurrent bounds jobs running at once (default 4).
	MaxConcurrent int
	// MaxQueue bounds jobs waiting to run (default 64); submissions beyond
	// it fail fast with ErrQueueFull.
	MaxQueue int
	// Run overrides the job runner (tests); nil uses the real pipeline.
	Run RunFunc
	// Journal, when non-nil, records every lifecycle transition durably: a
	// submission is fsynced before it is acknowledged, so an accepted job
	// survives any crash.
	Journal *Journal
	// Replay, when non-nil, is journal state from a previous boot: terminal
	// jobs are restored retrievable, queued/running jobs are re-queued, and
	// jobs that were running across two consecutive crashes are quarantined
	// as failed (poisoned) instead of re-entering the crash loop.
	Replay *Replay
}

// RecoveryStats summarizes what journal replay did at boot.
type RecoveryStats struct {
	// Terminal counts jobs restored already-finished (results retrievable).
	Terminal int
	// Requeued counts jobs re-queued for execution (queued or interrupted
	// mid-run at crash time).
	Requeued int
	// Poisoned counts jobs quarantined by crash-loop detection.
	Poisoned int
	// Boots counts prior daemon starts seen in the journal.
	Boots int
	// TruncatedBytes counts journal bytes dropped from torn tails.
	TruncatedBytes int64
}

// Manager owns the job table, the bounded queue and the worker pool, and
// keeps the monotone metrics aggregate the /metrics endpoint serves.
type Manager struct {
	cfg      Config
	journal  *Journal
	queue    chan *Job
	maxQueue int
	wg       sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for stable listings
	nextID int
	closed bool
	// draining stops admission while letting running jobs finish; queued
	// jobs are deliberately left unexecuted (their journal entries have no
	// terminal record, so the next boot re-queues them).
	draining bool
	// pendingEnq reserves queue slots for submissions that have been
	// admitted (and journaled) but not yet placed on the channel, keeping
	// the MaxQueue bound exact without holding the mutex across the fsync.
	pendingEnq int
	// aggregate absorbs each finished job's pipeline exactly once, so a
	// /metrics scrape = aggregate + still-live pipelines is monotone: a
	// job's counters move from the live term to the absorbed term without
	// ever being counted twice or dropped.
	aggregate *telemetry.Pipeline
	recovery  RecoveryStats

	submitted, completed, failed, cancelled, rejected int64
	panics, requeued, poisoned                        int64
	running                                           int64
}

// NewManager replays any recovered journal state and starts the worker pool.
func NewManager(cfg Config) *Manager {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Run == nil {
		cfg.Run = runClean
	}
	m := &Manager{
		cfg:       cfg,
		journal:   cfg.Journal,
		maxQueue:  cfg.MaxQueue,
		jobs:      make(map[string]*Job),
		aggregate: telemetry.New(),
	}
	requeue, endDocs := m.recover(cfg.Replay)
	// The channel is sized past MaxQueue when recovery re-queues more jobs
	// than the admission bound; Submit enforces MaxQueue itself, so the
	// extra capacity only ever holds recovered work.
	m.queue = make(chan *Job, cfg.MaxQueue+len(requeue))
	for _, job := range requeue {
		m.queue <- job
	}
	// Journal quarantine decisions so the next boot sees them terminal
	// (one batched sync covers them all).
	for _, doc := range endDocs {
		_ = m.journal.recordEndAsync(doc)
	}
	_ = m.journal.Sync()
	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// recover rebuilds the job table from replayed journal state, returning the
// jobs to re-queue and the terminal records to journal (quarantines).
func (m *Manager) recover(rep *Replay) (requeue []*Job, endDocs []ResultDoc) {
	if rep == nil {
		return nil, nil
	}
	m.nextID = rep.MaxID
	m.recovery.Boots = rep.Boots
	m.recovery.TruncatedBytes = rep.TruncatedBytes
	for i := range rep.Jobs {
		rj := &rep.Jobs[i]
		job := &Job{
			id:        rj.ID,
			tableName: rj.Table.Name,
			rows:      len(rj.Table.Rows),
			params:    rj.Params,
			pipe:      telemetry.New(),
			done:      make(chan struct{}),
			submitted: time.Now(),
		}
		if job.tableName == "" {
			job.tableName = "table"
		}
		quarantine := func(doc ResultDoc) {
			job.state = doc.State
			job.err = errors.New(doc.Error)
			job.resultDoc = &doc
			job.absorbed = true
			close(job.done)
			endDocs = append(endDocs, doc)
		}
		switch {
		case rj.State.Terminal():
			doc := ResultDoc{ID: rj.ID, State: rj.State, Error: rj.Error, Stack: rj.Stack, Report: rj.Report, Audit: rj.Audit}
			job.state = rj.State
			job.resultDoc = &doc
			if rj.Error != "" {
				job.err = errors.New(rj.Error)
			}
			job.absorbed = true
			close(job.done)
			m.recovery.Terminal++
		case rj.Starts >= 2:
			// The job was running when two consecutive boots died: break
			// the crash loop instead of re-queuing it a third time.
			quarantine(ResultDoc{ID: rj.ID, State: StateFailed, Error: poisonedError})
			m.poisoned++
			m.recovery.Poisoned++
		default:
			tbl, err := rj.Table.Table()
			if err != nil {
				// A submit record that replays but no longer parses —
				// quarantine rather than crash or silently drop.
				quarantine(ResultDoc{ID: rj.ID, State: StateFailed, Error: "journal replay: " + err.Error()})
				m.recovery.Poisoned++
				break
			}
			ctx, cancel := context.WithCancel(context.Background())
			job.table = tbl
			job.ctx = ctx
			job.cancel = cancel
			job.state = StateQueued
			requeue = append(requeue, job)
			m.submitted++
			m.requeued++
			m.recovery.Requeued++
		}
		m.jobs[job.id] = job
		m.order = append(m.order, job.id)
	}
	return requeue, endDocs
}

// Recovery returns what journal replay did at boot (zero-valued without a
// journal).
func (m *Manager) Recovery() RecoveryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovery
}

// runClean is the real runner: clone the pristine KB (per-job enrichment
// isolation), build a cleaner and run the sharded pipeline. Every daemon
// job records provenance — the audit layer is part of the service contract
// (the report carries the recorder back for /explain and the result audit).
func runClean(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error) {
	opts := p.Options()
	opts.Pipeline = pipe
	opts.Provenance = katara.NewProvenance()
	if p.FaultRate > 0 {
		opts.Transport = katara.NewFaultInjector(katara.FaultConfig{
			Seed:          1,
			AbandonRate:   p.FaultRate * 0.5,
			TransientRate: p.FaultRate * 0.25,
			SpamRate:      p.FaultRate * 0.25,
		})
	}
	cleaner := katara.NewCleaner(kb.Clone(), katara.TrustingCrowd(), opts)
	return cleaner.CleanContext(ctx, tbl)
}

// Submit validates, registers, durably journals and enqueues a job. It
// fails fast with a *ValidationError, ErrQueueFull, ErrDraining or
// ErrClosed; it never blocks on a full queue. When it returns an ID the
// submission is on stable storage: the job survives any subsequent crash.
func (m *Manager) Submit(tbl *katara.Table, p Params) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	if tbl == nil || tbl.NumRows() == 0 {
		return "", &ValidationError{Problems: []string{"table must have at least one row"}}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	if m.draining {
		m.mu.Unlock()
		return "", ErrDraining
	}
	if len(m.queue)+m.pendingEnq >= m.maxQueue {
		m.rejected++
		m.mu.Unlock()
		return "", ErrQueueFull
	}
	// Reserve a queue slot and the ID, then journal outside the lock: the
	// fsync must not serialize every other manager operation, and the
	// reservation keeps the MaxQueue bound exact while we're off-lock.
	m.pendingEnq++
	m.nextID++
	id := fmt.Sprintf("j%d", m.nextID)
	m.mu.Unlock()

	// Durable before acknowledged: the submit record is fsynced (group
	// commit amortizes concurrent submissions into one sync) before the
	// client ever learns the ID.
	if err := m.journal.RecordSubmit(id, TableDoc{Name: tbl.Name, Columns: tbl.Columns, Rows: tbl.Rows}, p); err != nil {
		m.mu.Lock()
		m.pendingEnq--
		m.mu.Unlock()
		return "", fmt.Errorf("jobs: journal submit: %w", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		id:        id,
		table:     tbl,
		tableName: tbl.Name,
		rows:      tbl.NumRows(),
		params:    p,
		pipe:      telemetry.New(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}

	m.mu.Lock()
	m.pendingEnq--
	if m.closed || m.draining {
		// Shut down between journaling and enqueueing: void the journaled
		// submission so the next boot doesn't resurrect a job the client
		// was told failed.
		err := ErrClosed
		if !m.closed {
			err = ErrDraining
		}
		m.mu.Unlock()
		cancel()
		_ = m.journal.RecordEnd(ResultDoc{ID: id, State: StateCancelled, Error: err.Error()})
		return "", err
	}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.submitted++
	// Non-blocking by construction: the reservation guaranteed a slot, and
	// the channel is never smaller than MaxQueue.
	m.queue <- job
	m.mu.Unlock()
	return id, nil
}

// worker drains the queue until Close closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.mu.Lock()
		if job.state.Terminal() {
			// Cancelled while still queued; already finalized.
			m.mu.Unlock()
			continue
		}
		if m.draining {
			// Leave the job queued: its journal entry has no terminal
			// record, so the next boot re-queues and runs it.
			m.mu.Unlock()
			continue
		}
		job.state = StateRunning
		job.started = time.Now()
		m.running++
		m.mu.Unlock()
		// Unsynced on purpose: losing a start record to a crash merely
		// replays the job as queued, which is exactly what re-queueing
		// does anyway.
		_ = m.journal.RecordStart(job.id)

		rep, err := m.runJob(job)

		m.mu.Lock()
		m.running--
		job.report = rep
		job.err = err
		switch {
		case job.cancelRequested:
			job.state = StateCancelled
			m.cancelled++
		case err != nil:
			job.state = StateFailed
			m.failed++
		default:
			job.state = StateDone
			m.completed++
		}
		m.absorbLocked(job)
		job.finished = time.Now()
		doc := m.buildResultLocked(job)
		job.resultDoc = &doc
		job.cancel()
		close(job.done)
		m.mu.Unlock()
		// The terminal record is synced so the result survives a restart;
		// losing the race against a crash only means the job re-runs, and
		// results are deterministic.
		_ = m.journal.RecordEnd(doc)
	}
}

// runJob executes the job with panic isolation: a panic anywhere in the run
// — including one re-raised from a shard goroutine — becomes a failed job
// with the stack preserved in its result, never a dead daemon.
func (m *Manager) runJob(job *Job) (rep *katara.Report, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		stack := string(debug.Stack())
		if pe, ok := r.(*katara.PanicError); ok {
			// The shard barrier already captured the original goroutine's
			// stack; prefer it over this recovery frame's.
			stack = pe.Stack
		}
		m.mu.Lock()
		m.panics++
		job.stack = stack
		m.mu.Unlock()
		rep = nil
		err = fmt.Errorf("panic: %v", r)
	}()
	return m.cfg.Run(job.ctx, m.cfg.KB, job.table, job.params, job.pipe)
}

// absorbLocked folds a finished job's pipeline into the aggregate, exactly
// once. Callers hold m.mu.
func (m *Manager) absorbLocked(job *Job) {
	if job.absorbed {
		return
	}
	job.absorbed = true
	m.aggregate.Merge(job.pipe)
}

// buildResultLocked projects the job's terminal state into its result
// document, reusing the pinned document when one exists (recovered jobs).
// Callers hold m.mu.
func (m *Manager) buildResultLocked(job *Job) ResultDoc {
	if job.resultDoc != nil {
		return *job.resultDoc
	}
	doc := BuildResult(job.id, job.state, job.report)
	if job.err != nil {
		doc.Error = job.err.Error()
	}
	doc.Stack = job.stack
	return doc
}

// Cancel requests cancellation. A queued job is finalized immediately; a
// running job has its context cancelled and finishes as StateCancelled
// (typically with a degraded report — the pipeline honours context
// cancellation by degrading, not aborting). Cancelling a terminal job is a
// harmless no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrUnknownJob
	}
	if job.state.Terminal() {
		m.mu.Unlock()
		return nil
	}
	job.cancelRequested = true
	job.cancel()
	var doc *ResultDoc
	if job.state == StateQueued {
		job.state = StateCancelled
		m.cancelled++
		m.absorbLocked(job)
		job.finished = time.Now()
		d := m.buildResultLocked(job)
		job.resultDoc = &d
		doc = &d
		close(job.done)
	}
	m.mu.Unlock()
	if doc != nil {
		_ = m.journal.RecordEnd(*doc)
	}
	return nil
}

// StartDraining stops admission: subsequent submissions fail with
// ErrDraining while running jobs continue. Queued jobs are deliberately not
// started — their journal entries stay non-terminal, so a restarted daemon
// re-queues them.
func (m *Manager) StartDraining() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Drain waits for running jobs to finish, up to timeout, and reports
// whether the daemon is fully quiesced. Call StartDraining first. The
// journal is synced either way, so everything that happened is durable.
func (m *Manager) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		running := m.running
		m.mu.Unlock()
		if running == 0 {
			_ = m.journal.Sync()
			return true
		}
		if time.Now().After(deadline) {
			_ = m.journal.Sync()
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// JobStatus is the wire representation of one job's state and live
// progress — the per-job generalization of the single-run /progress
// endpoint.
type JobStatus struct {
	ID     string `json:"id"`
	Table  string `json:"table"`
	Rows   int    `json:"rows"`
	State  State  `json:"state"`
	Params Params `json:"params"`
	Error  string `json:"error,omitempty"`

	Progress telemetry.Progress `json:"progress"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// statusLocked builds the wire status. Callers hold m.mu; the pipeline
// reads are atomic, so a running job's counters are safely read live.
func (m *Manager) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:          job.id,
		Table:       job.tableName,
		Rows:        job.rows,
		State:       job.state,
		Params:      job.params,
		SubmittedAt: job.submitted,
	}
	if job.err != nil {
		st.Error = job.err.Error()
	}
	if !job.started.IsZero() {
		t := job.started
		st.StartedAt = &t
	}
	if !job.finished.IsZero() {
		t := job.finished
		st.FinishedAt = &t
	}
	st.Progress = telemetry.Progress{
		Stage:                    job.pipe.CurrentStage(),
		TuplesAnnotated:          job.pipe.Get(telemetry.TuplesAnnotated),
		TuplesTotal:              int64(job.rows),
		CrowdQuestions:           job.pipe.Get(telemetry.CrowdQuestions),
		BudgetQuestionsRemaining: -1,
		Done:                     job.state.Terminal(),
	}
	if b := int64(job.params.Budget); b > 0 {
		rem := b - st.Progress.CrowdQuestions
		if rem < 0 {
			rem = 0
		}
		st.Progress.BudgetQuestionsRemaining = rem
	}
	return st
}

// Status returns one job's status.
func (m *Manager) Status(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return m.statusLocked(job), nil
}

// List returns every job's status in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// Report returns a terminal job's report (possibly nil for a failed,
// early-cancelled or journal-recovered job) and its final state.
// Non-terminal jobs return ok=false: the result is not ready yet.
func (m *Manager) Report(id string) (rep *katara.Report, state State, ok bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, found := m.jobs[id]
	if !found {
		return nil, "", false, ErrUnknownJob
	}
	if !job.state.Terminal() {
		return nil, job.state, false, nil
	}
	return job.report, job.state, true, nil
}

// Result returns a terminal job's result document — the exact bytes-stable
// projection the HTTP layer serves, identical across restarts for
// journal-recovered jobs. Non-terminal jobs return ok=false.
func (m *Manager) Result(id string) (doc ResultDoc, state State, ok bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, found := m.jobs[id]
	if !found {
		return ResultDoc{}, "", false, ErrUnknownJob
	}
	if !job.state.Terminal() {
		return ResultDoc{}, job.state, false, nil
	}
	return m.buildResultLocked(job), job.state, true, nil
}

// Explain returns the evidence chain behind cell (row, col) of a finished
// job. The recorder lives only in daemon memory, so journal-recovered jobs
// return ErrNoProvenance — their result document's pinned audit section is
// what survives restarts. Non-terminal jobs return ErrNotReady.
func (m *Manager) Explain(id string, row, col int) (*katara.Explanation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, found := m.jobs[id]
	if !found {
		return nil, ErrUnknownJob
	}
	if !job.state.Terminal() {
		return nil, fmt.Errorf("%w (state %s)", ErrNotReady, job.state)
	}
	if job.report == nil || !job.report.Provenance.Enabled() {
		return nil, ErrNoProvenance
	}
	return job.report.Provenance.Explain(row, col), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (m *Manager) Wait(ctx context.Context, id string) error {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return ErrUnknownJob
	}
	select {
	case <-job.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting submissions, cancels queued and running jobs, and
// waits for the workers to drain. Idempotent. For a graceful shutdown that
// preserves queued jobs for the next boot, use StartDraining + Drain
// instead.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	var docs []ResultDoc
	for _, id := range m.order {
		job := m.jobs[id]
		if job.state.Terminal() {
			continue
		}
		job.cancelRequested = true
		job.cancel()
		if job.state == StateQueued {
			job.state = StateCancelled
			m.cancelled++
			m.absorbLocked(job)
			job.finished = time.Now()
			d := m.buildResultLocked(job)
			job.resultDoc = &d
			docs = append(docs, d)
			close(job.done)
		}
	}
	close(m.queue)
	m.mu.Unlock()
	// One batched sync covers the whole mass-cancel instead of an fsync
	// per job.
	for _, d := range docs {
		_ = m.journal.recordEndAsync(d)
	}
	_ = m.journal.Sync()
	m.wg.Wait()
}

// WriteMetrics writes the daemon-wide Prometheus exposition: the merged
// katara_* pipeline families (aggregate of finished jobs + live pipelines
// of unfinished ones — monotone by construction) followed by the katarad_*
// job-accounting families.
func (m *Manager) WriteMetrics(w io.Writer) error {
	merged := telemetry.New()
	m.mu.Lock()
	merged.Merge(m.aggregate)
	for _, id := range m.order {
		if job := m.jobs[id]; !job.absorbed {
			merged.Merge(job.pipe)
		}
	}
	submitted, completed, failed := m.submitted, m.completed, m.failed
	cancelled, rejected, running := m.cancelled, m.rejected, m.running
	panics, requeued, poisoned := m.panics, m.requeued, m.poisoned
	queued := int64(len(m.queue))
	var draining int64
	if m.draining {
		draining = 1
	}
	m.mu.Unlock()

	if err := merged.Snapshot().WriteProm(w); err != nil {
		return err
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("katarad_jobs_submitted_total", "Jobs accepted into the queue.", submitted)
	counter("katarad_jobs_completed_total", "Jobs finished successfully.", completed)
	counter("katarad_jobs_failed_total", "Jobs finished with an error.", failed)
	counter("katarad_jobs_cancelled_total", "Jobs cancelled before or during execution.", cancelled)
	counter("katarad_jobs_rejected_total", "Submissions rejected because the queue was full.", rejected)
	counter("katarad_jobs_panics_total", "Job panics converted into failed jobs instead of daemon crashes.", panics)
	counter("katarad_jobs_requeued_total", "Jobs re-queued from the journal at boot.", requeued)
	counter("katarad_jobs_poisoned_total", "Jobs quarantined at boot after crashing the daemon twice.", poisoned)
	gauge("katarad_jobs_running", "Jobs currently executing.", running)
	gauge("katarad_jobs_queued", "Jobs waiting in the queue.", queued)
	gauge("katarad_draining", "1 while the daemon is draining for graceful shutdown.", draining)
	writeBuildInfoMetric(w)
	return nil
}
