package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"katara"
	"katara/internal/table"
	"katara/internal/telemetry"
)

func tableDoc(t *katara.Table) TableDoc {
	return TableDoc{Name: t.Name, Columns: t.Columns, Rows: t.Rows}
}

func do(t *testing.T, ts *httptest.Server, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read body: %v", method, path, err)
	}
	return resp.StatusCode, data
}

// TestHTTPLifecycle drives the whole submit → poll → result → cancel
// surface over real HTTP against real cleaning runs.
func TestHTTPLifecycle(t *testing.T) {
	kb, dirty := fixture(t, 150)
	m := NewManager(Config{KB: kb, MaxConcurrent: 2, MaxQueue: 16})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	code, body := do(t, ts, "GET", "/healthz", nil)
	if code != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// Submit.
	code, body = do(t, ts, "POST", "/jobs", SubmitRequest{Table: tableDoc(dirty), Params: Params{Shards: 2}})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %s", code, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s: %v", body, err)
	}

	// Result before completion is 409 or the job is already done — poll.
	deadline := time.Now().Add(30 * time.Second)
	var result ResultDoc
	for {
		code, body = do(t, ts, "GET", "/jobs/"+sub.ID+"/result", nil)
		if code == http.StatusOK {
			if err := json.Unmarshal(body, &result); err != nil {
				t.Fatalf("result body: %v", err)
			}
			break
		}
		if code != http.StatusConflict {
			t.Fatalf("result = %d %s", code, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if result.State != StateDone || result.Report == nil {
		t.Fatalf("result = %+v", result)
	}
	if len(result.Report.Annotations) != dirty.NumRows() {
		t.Fatalf("result annotated %d/%d rows", len(result.Report.Annotations), dirty.NumRows())
	}

	// Status document.
	code, body = do(t, ts, "GET", "/jobs/"+sub.ID, nil)
	if code != 200 {
		t.Fatalf("status = %d %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil || st.State != StateDone {
		t.Fatalf("status body %s: %v", body, err)
	}

	// Listing includes the job.
	code, body = do(t, ts, "GET", "/jobs", nil)
	if code != 200 || !strings.Contains(string(body), sub.ID) {
		t.Fatalf("list = %d %s", code, body)
	}

	// Unknown job → 404; bad params → 400 naming the problem; bad arity →
	// 400; cancel of a done job → 200 no-op.
	if code, _ = do(t, ts, "GET", "/jobs/nope", nil); code != 404 {
		t.Fatalf("unknown status = %d", code)
	}
	if code, _ = do(t, ts, "GET", "/jobs/nope/result", nil); code != 404 {
		t.Fatalf("unknown result = %d", code)
	}
	code, body = do(t, ts, "POST", "/jobs", SubmitRequest{Table: tableDoc(dirty), Params: Params{Budget: -5}})
	if code != 400 || !strings.Contains(string(body), "budget") {
		t.Fatalf("bad-params submit = %d %s", code, body)
	}
	bad := TableDoc{Name: "bad", Columns: []string{"A", "B"}, Rows: [][]string{{"only-one"}}}
	if code, body = do(t, ts, "POST", "/jobs", SubmitRequest{Table: bad}); code != 400 {
		t.Fatalf("bad-arity submit = %d %s", code, body)
	}
	if code, _ = do(t, ts, "POST", "/jobs/"+sub.ID+"/cancel", nil); code != 200 {
		t.Fatalf("cancel done job = %d", code)
	}

	// /metrics is lint-clean and carries both the pipeline and the daemon
	// families.
	code, body = do(t, ts, "GET", "/metrics", nil)
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if err := telemetry.LintExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics fails lint: %v\n%s", err, body)
	}
	for _, want := range []string{"katara_tuples_annotated_total", "katarad_jobs_submitted_total", "katarad_jobs_running"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
}

// TestHTTPQueueFull: the handler surfaces ErrQueueFull as 429.
func TestHTTPQueueFull(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	run := func(ctx context.Context, _ *katara.KB, _ *katara.Table, _ Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		close(entered)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &katara.Report{}, nil
	}
	m := NewManager(Config{Run: run, MaxConcurrent: 1, MaxQueue: 1})
	defer m.Close()
	defer close(block)
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	tbl := table.New("t", "A")
	tbl.Append("x")
	if code, body := do(t, ts, "POST", "/jobs", SubmitRequest{Table: tableDoc(tbl)}); code != 202 {
		t.Fatalf("submit 1 = %d %s", code, body)
	}
	<-entered
	if code, body := do(t, ts, "POST", "/jobs", SubmitRequest{Table: tableDoc(tbl)}); code != 202 {
		t.Fatalf("submit 2 = %d %s", code, body)
	}
	code, body := do(t, ts, "POST", "/jobs", SubmitRequest{Table: tableDoc(tbl)})
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit 3 = %d %s, want 429", code, body)
	}
}

// TestHTTPConcurrentSubmissions hammers the handler from many goroutines
// (run under -race in CI): every job completes, identical submissions
// produce byte-identical report documents, and /metrics scrapes taken
// while jobs run stay lint-clean and monotone.
func TestHTTPConcurrentSubmissions(t *testing.T) {
	kb, dirty := fixture(t, 60)
	m := NewManager(Config{KB: kb, MaxConcurrent: 4, MaxQueue: 256})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	const n = 24
	ids := make([]string, n)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	go func() { // concurrent scraper asserting lint-cleanliness + monotonicity
		prev := map[string]float64{}
		for {
			select {
			case <-stop:
				scrapeErr <- nil
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				scrapeErr <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := telemetry.LintExposition(bytes.NewReader(body)); err != nil {
				scrapeErr <- fmt.Errorf("scrape lint: %w", err)
				return
			}
			if err := telemetry.CheckMonotone(prev, body); err != nil {
				scrapeErr <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := do(t, ts, "POST", "/jobs", SubmitRequest{Table: tableDoc(dirty), Params: Params{Shards: 2}})
			if code != 202 {
				t.Errorf("submit %d = %d %s", i, code, body)
				return
			}
			var sub SubmitResponse
			if err := json.Unmarshal(body, &sub); err != nil {
				t.Errorf("submit %d body: %v", i, err)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()

	var reference []byte
	for i, id := range ids {
		if id == "" {
			continue
		}
		if err := m.Wait(context.Background(), id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		code, body := do(t, ts, "GET", "/jobs/"+id+"/result", nil)
		if code != 200 {
			t.Fatalf("result %s = %d %s", id, code, body)
		}
		var res ResultDoc
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		doc, _ := json.Marshal(res.Report)
		if reference == nil {
			reference = doc
		} else if !bytes.Equal(reference, doc) {
			t.Fatalf("job %d (%s): report differs from job 0 — corruption under concurrency", i, id)
		}
	}
	close(stop)
	if err := <-scrapeErr; err != nil {
		t.Fatal(err)
	}

	// Final scrape: counters reflect all n jobs exactly once.
	code, body := do(t, ts, "GET", "/metrics", nil)
	if code != 200 {
		t.Fatalf("final metrics = %d", code)
	}
	wantAnnotated := int64(n * dirty.NumRows())
	if !strings.Contains(string(body), fmt.Sprintf("katara_tuples_annotated_total %d", wantAnnotated)) {
		t.Fatalf("final metrics: katara_tuples_annotated_total != %d (double-count or drop):\n%s",
			wantAnnotated, grepLine(string(body), "katara_tuples_annotated_total"))
	}
	if !strings.Contains(string(body), fmt.Sprintf("katarad_jobs_completed_total %d", n)) {
		t.Fatalf("final metrics: completed != %d:\n%s", n, grepLine(string(body), "katarad_jobs_completed_total"))
	}
}

func grepLine(body, needle string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, needle) && !strings.HasPrefix(line, "#") {
			return line
		}
	}
	return "(series missing)"
}
