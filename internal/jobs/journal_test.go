package jobs

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// openJournal is a test helper that fails fast on open errors.
func openJournal(t *testing.T, dir string) (*Journal, *Replay) {
	t.Helper()
	j, rep, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", dir, err)
	}
	return j, rep
}

// sampleTable is a tiny valid TableDoc for journal-level tests.
func sampleTable() TableDoc {
	return TableDoc{Name: "t", Columns: []string{"A", "B"}, Rows: [][]string{{"x", "y"}, {"u", "v"}}}
}

// sampleEnd builds a terminal record with a non-trivial report document, so
// round-trip tests exercise the full nested encoding.
func sampleEnd(id string, state State) ResultDoc {
	return ResultDoc{
		ID:    id,
		State: state,
		Report: &ReportDoc{
			Pattern:        "P(person, nationality)",
			PatternScore:   0.75,
			QuestionsAsked: 3,
			Summary:        SummaryDoc{ValidatedByKB: 1, Erroneous: 1},
			Annotations: []AnnotationDoc{
				{Row: 0, Label: "validated-by-kb"},
				{Row: 1, Label: "erroneous"},
			},
			Repairs: []RepairRowDoc{{
				Row: 1,
				Options: []RepairOptionDoc{{
					Cost:    1,
					Changes: []ChangeDoc{{Col: 1, From: "v", To: "w"}},
				}},
			}},
		},
	}
}

// TestJournalRoundTrip: every lifecycle record survives a close/reopen, a
// terminal job's result document comes back byte-identical, and the ID
// sequence and boot count replay correctly.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rep := openJournal(t, dir)
	if len(rep.Jobs) != 0 || rep.Boots != 0 || rep.MaxID != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("fresh journal replay = %+v, want empty", rep)
	}

	end := sampleEnd("j1", StateDone)
	if err := j.RecordSubmit("j1", sampleTable(), Params{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordStart("j1"); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordEnd(end); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordSubmit("j7", sampleTable(), Params{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordStart("j7"); err != ErrJournalClosed {
		t.Fatalf("append after close = %v, want ErrJournalClosed", err)
	}

	j2, rep2 := openJournal(t, dir)
	defer j2.Close()
	if rep2.Boots != 1 {
		t.Fatalf("Boots = %d, want 1", rep2.Boots)
	}
	if rep2.MaxID != 7 {
		t.Fatalf("MaxID = %d, want 7", rep2.MaxID)
	}
	if rep2.TruncatedBytes != 0 {
		t.Fatalf("TruncatedBytes = %d, want 0", rep2.TruncatedBytes)
	}
	if len(rep2.Jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2: %+v", len(rep2.Jobs), rep2.Jobs)
	}
	j1 := rep2.Jobs[0]
	if j1.ID != "j1" || j1.State != StateDone || j1.Starts != 0 {
		t.Fatalf("j1 replayed as %+v", j1)
	}
	wantDoc, _ := json.Marshal(end)
	gotDoc, _ := json.Marshal(ResultDoc{ID: j1.ID, State: j1.State, Error: j1.Error, Stack: j1.Stack, Report: j1.Report})
	if !bytes.Equal(wantDoc, gotDoc) {
		t.Fatalf("terminal doc not byte-identical after replay:\nwant %s\ngot  %s", wantDoc, gotDoc)
	}
	if q := rep2.Jobs[1]; q.ID != "j7" || q.State != StateQueued || q.Table.Name != "t" || len(q.Table.Rows) != 2 {
		t.Fatalf("j7 replayed as %+v, want queued with full table", q)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial frame; replay
// recovers every record before the tear and reports the dropped bytes.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	if err := j.RecordSubmit("j1", sampleTable(), Params{}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordSubmit("j2", sampleTable(), Params{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append half a frame (header promising more bytes than
	// exist), as a crash mid-write would.
	paths, _, err := journalFiles(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("journalFiles = %v, %v", paths, err)
	}
	torn := encodeFrame([]byte(`{"kind":"submit","id":"j3"}`))[:11]
	f, err := os.OpenFile(paths[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rep := openJournal(t, dir)
	defer j2.Close()
	if rep.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", rep.TruncatedBytes, len(torn))
	}
	if len(rep.Jobs) != 2 || rep.Jobs[0].ID != "j1" || rep.Jobs[1].ID != "j2" {
		t.Fatalf("replayed %+v, want j1 and j2 intact", rep.Jobs)
	}
}

// TestJournalCorruptTail: flipping a payload byte breaks the CRC; replay
// stops there instead of applying the corrupted record.
func TestJournalCorruptTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	if err := j.RecordSubmit("j1", sampleTable(), Params{}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordEnd(ResultDoc{ID: "j1", State: StateDone}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	paths, _, _ := journalFiles(dir)
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // corrupt the last record's payload
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rep := openJournal(t, dir)
	defer j2.Close()
	if rep.TruncatedBytes == 0 {
		t.Fatal("TruncatedBytes = 0, want > 0 for a corrupted tail")
	}
	if len(rep.Jobs) != 1 || rep.Jobs[0].State != StateQueued {
		t.Fatalf("replayed %+v, want j1 back to queued (end record corrupted away)", rep.Jobs)
	}
}

// TestJournalCompaction: every reopen folds the surviving state into one
// fresh checkpoint file and deletes the old files, so the directory never
// accumulates more than one boot's worth of log.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	if err := j.RecordSubmit("j1", sampleTable(), Params{}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordEnd(sampleEnd("j1", StateDone)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	for boot := 2; boot <= 4; boot++ {
		jn, rep := openJournal(t, dir)
		paths, seqs, err := journalFiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 1 {
			t.Fatalf("boot %d: %d journal files %v, want 1 (compaction)", boot, len(paths), paths)
		}
		if seqs[0] != boot {
			t.Fatalf("boot %d: file seq = %d, want %d", boot, seqs[0], boot)
		}
		if len(rep.Jobs) != 1 || rep.Jobs[0].ID != "j1" || rep.Jobs[0].State != StateDone {
			t.Fatalf("boot %d: state lost across compaction: %+v", boot, rep.Jobs)
		}
		// Boots resets at each compaction: the checkpoint swallows history,
		// the fresh boot record is the only one left for the next replay.
		if rep.Boots != 1 {
			t.Fatalf("boot %d: Boots = %d, want 1 (post-compaction)", boot, rep.Boots)
		}
		jn.Close()
	}
}

// TestJournalPoisonStarts: an unterminated start record per boot accumulates
// in Starts across reopenings — the crash-loop signal the manager quarantines
// on — and a terminal record resets it.
func TestJournalPoisonStarts(t *testing.T) {
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	if err := j.RecordSubmit("j1", sampleTable(), Params{}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordStart("j1"); err != nil {
		t.Fatal(err)
	}
	j.Close() // crash #1: running, no end record

	j2, rep := openJournal(t, dir)
	if len(rep.Jobs) != 1 || rep.Jobs[0].Starts != 1 || rep.Jobs[0].State != StateRunning {
		t.Fatalf("after crash 1: %+v, want Starts=1 running", rep.Jobs)
	}
	if err := j2.RecordStart("j1"); err != nil { // boot 2 re-runs it...
		t.Fatal(err)
	}
	j2.Close() // ...and crash #2

	j3, rep2 := openJournal(t, dir)
	if len(rep2.Jobs) != 1 || rep2.Jobs[0].Starts != 2 {
		t.Fatalf("after crash 2: %+v, want Starts=2 (poison threshold)", rep2.Jobs)
	}
	// A terminal record clears the count: the job is no longer suspect.
	if err := j3.RecordEnd(ResultDoc{ID: "j1", State: StateFailed, Error: "poisoned"}); err != nil {
		t.Fatal(err)
	}
	j3.Close()
	j4, rep3 := openJournal(t, dir)
	defer j4.Close()
	if len(rep3.Jobs) != 1 || rep3.Jobs[0].Starts != 0 || rep3.Jobs[0].State != StateFailed {
		t.Fatalf("after quarantine: %+v, want terminal failed with Starts=0", rep3.Jobs)
	}
}

// TestJournalAppendRecord: an append record replays queued with its parent
// link, the delta rows, and the chain's parameters inherited from the parent's
// surviving submit record.
func TestJournalAppendRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	if err := j.RecordSubmit("j1", sampleTable(), Params{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordEnd(ResultDoc{ID: "j1", State: StateDone}); err != nil {
		t.Fatal(err)
	}
	delta := TableDoc{Name: "t", Columns: []string{"A", "B"}, Rows: [][]string{{"p", "q"}}}
	if err := j.RecordAppend("j2", "j1", delta); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, rep := openJournal(t, dir)
	defer j2.Close()
	if len(rep.Jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(rep.Jobs))
	}
	inc := rep.Jobs[1]
	if inc.ID != "j2" || inc.Parent != "j1" || inc.State != StateQueued {
		t.Fatalf("append replayed as %+v", inc)
	}
	if inc.Params.Shards != 3 {
		t.Fatalf("append Params = %+v, want the parent's Shards=3", inc.Params)
	}
	if len(inc.Table.Rows) != 1 || inc.Table.Rows[0][0] != "p" {
		t.Fatalf("append delta rows = %+v", inc.Table.Rows)
	}
	// The checkpoint survives another cycle: the parent link and params are
	// carried through compaction, not just the raw append record.
	j2.Close()
	j3, rep3 := openJournal(t, dir)
	defer j3.Close()
	if inc := rep3.Jobs[1]; inc.Parent != "j1" || inc.Params.Shards != 3 {
		t.Fatalf("append lost chain state across compaction: %+v", inc)
	}
}

// FuzzJournalReplay: replay must never panic on arbitrary bytes, and — the
// metamorphic half — whatever valid prefix an input contains must replay to
// the same state when a garbage tail is appended: corruption can only
// truncate, never rewrite history.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	var valid []byte
	for _, payload := range []string{
		`{"kind":"boot"}`,
		`{"kind":"submit","id":"j1","table":{"name":"t","columns":["A"],"rows":[["x"]]}}`,
		`{"kind":"start","id":"j1"}`,
		`{"kind":"end","id":"j1","state":"done"}`,
		`{"kind":"append","id":"j3","parent":"j1","table":{"name":"t","columns":["A"],"rows":[["y"]]}}`,
		`{"kind":"checkpoint","jobs":[{"id":"j2","table":{"name":"u"},"state":"queued"}]}`,
	} {
		valid = append(valid, encodeFrame([]byte(payload))...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(append(append([]byte{}, valid...), 0xde, 0xad, 0xbe))

	f.Fuzz(func(t *testing.T, data []byte) {
		st := newReplayState()
		tail := replayStream(data, st) // must not panic
		if tail < 0 || tail > int64(len(data)) {
			t.Fatalf("tail = %d out of range [0, %d]", tail, len(data))
		}
		rep := st.replay()

		// Metamorphic: the fully-framed prefix plus a garbage tail (too
		// short to ever frame) replays to the identical state with exactly
		// the garbage truncated.
		prefix := data[:int64(len(data))-tail]
		garbage := []byte{0xde, 0xad, 0xbe}
		st2 := newReplayState()
		tail2 := replayStream(append(append([]byte{}, prefix...), garbage...), st2)
		if tail2 != int64(len(garbage)) {
			t.Fatalf("prefix+garbage tail = %d, want %d", tail2, len(garbage))
		}
		a, _ := json.Marshal(rep.Jobs)
		b, _ := json.Marshal(st2.replay().Jobs)
		if !bytes.Equal(a, b) {
			t.Fatalf("prefix+garbage replayed differently:\nfull    %s\nprefix  %s", a, b)
		}
	})
}
