// Tests for the decision-provenance HTTP surface: GET /jobs/{id}/explain
// across every verdict class (including degraded Unknown), the live
// /jobs/{id}/progress document with its SSE variant, and the /version +
// katarad_build_info build identity.

package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"katara"
	"katara/internal/provenance"
	"katara/internal/telemetry"
)

// lineageTable is a six-row table matching lineageRecorder's row→unit map.
func lineageTable() *katara.Table {
	return &katara.Table{
		Name:    "capitals",
		Columns: []string{"city", "country"},
		Rows: [][]string{
			{"Rome", "Italy"},
			{"Paris", "France"},
			{"Rome", "France"},
			{"Atlantis", "Nowhere"},
			{"Rome", "Italy"},
			{"Paris", "France"},
		},
	}
}

// lineageRecorder fabricates a recorder covering all four verdict classes:
// unit 0 KB-validated (rows 0 and 4 duplicate), unit 1 crowd-confirmed
// (rows 1 and 5), unit 2 erroneous and repaired, unit 3 degraded Unknown.
func lineageRecorder() *provenance.Recorder {
	r := provenance.NewRecorder()
	r.SetRowUnits([]int{0, 1, 2, 3, 0, 1}, true)

	r.RecordPattern("type(0)=city,type(1)=country,rel(0,1)=capitalOf", 2.931, true)
	r.RecordValidationStep("type(0)", 1.585, 3, "city", false)

	r.BeginTuple(0)
	r.RecordCheck(0, "node", "kb", []int{0}, `"Rome" is a city`, 0, true)
	r.RecordCheck(0, "edge", "kb", []int{0, 1}, `"Rome" capitalOf "Italy"`, 0, true)
	r.RecordVerdict(0, "validated-by-kb", false, true)

	q1 := r.StartQuestion("bool", `Does "Paris" capitalOf "France"?`, []string{"yes", "no"})
	r.AddVote(q1, 0, 0, 1)
	r.AddVote(q1, 1, 0, 1)
	r.FinishQuestion(q1, 0, 0, 0, 0, 0, "")
	r.BeginTuple(1)
	r.RecordCheck(1, "edge", "crowd", []int{0, 1}, `Does "Paris" capitalOf "France"?`, q1, true)
	r.RecordVerdict(1, "validated-by-kb-and-crowd", false, false)

	q2 := r.StartQuestion("bool", `Does "Rome" capitalOf "France"?`, []string{"yes", "no"})
	r.AddVote(q2, 0, 1, 1)
	r.AddVote(q2, 1, 1, 1)
	r.FinishQuestion(q2, 1, 0, 0, 0, 0, "")
	r.BeginTuple(2)
	r.RecordCheck(2, "edge", "crowd", []int{0, 1}, `Does "Rome" capitalOf "France"?`, q2, false)
	r.RecordVerdict(2, "erroneous", false, false)
	r.RecordRepair(2, 5, []provenance.Candidate{
		{Graph: 3, Cost: 1, Changes: []provenance.Change{{Col: 1, From: "France", To: "Italy"}}},
	})

	q3 := r.StartQuestion("bool", `Is "Atlantis" a city?`, []string{"yes", "no"})
	r.FinishQuestion(q3, -1, 2, 1, 1, 0, "budget exhausted")
	r.BeginTuple(3)
	r.RecordCheck(3, "node", "degraded", []int{0}, `Is "Atlantis" a city?`, q3, false)
	r.RecordVerdict(3, "unknown", true, false)
	return r
}

// TestHTTPExplain drives GET /jobs/{id}/explain over a scripted run whose
// report carries a fabricated recorder, checking one cell of each verdict
// class plus every error status the endpoint documents.
func TestHTTPExplain(t *testing.T) {
	rec := lineageRecorder()
	release := make(chan struct{})
	run := func(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &katara.Report{Provenance: rec}, nil
	}
	m := NewManager(Config{Run: run, MaxConcurrent: 1, MaxQueue: 4})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	id, err := m.Submit(lineageTable(), Params{})
	if err != nil {
		t.Fatal(err)
	}

	// Not terminal yet → 409.
	code, body := do(t, ts, "GET", "/jobs/"+id+"/explain?row=0&col=0", nil)
	if code != http.StatusConflict {
		t.Fatalf("explain before completion = %d %s, want 409", code, body)
	}
	close(release)
	waitJob(t, m, id)

	// Malformed coordinates → 400; unknown job → 404.
	for _, q := range []string{"?row=banana&col=0", "?row=0", "?row=-1&col=0", ""} {
		if code, body = do(t, ts, "GET", "/jobs/"+id+"/explain"+q, nil); code != http.StatusBadRequest {
			t.Fatalf("explain%s = %d %s, want 400", q, code, body)
		}
	}
	if code, _ = do(t, ts, "GET", "/jobs/nope/explain?row=0&col=0", nil); code != http.StatusNotFound {
		t.Fatalf("explain unknown job = %d, want 404", code)
	}

	get := func(row, col string) katara.Explanation {
		t.Helper()
		code, body := do(t, ts, "GET", "/jobs/"+id+"/explain?row="+row+"&col="+col, nil)
		if code != http.StatusOK {
			t.Fatalf("explain row=%s col=%s = %d %s", row, col, code, body)
		}
		var e katara.Explanation
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("explain body %s: %v", body, err)
		}
		return e
	}

	// KB-validated cell; row 4 shares unit 0 with row 0.
	e := get("0", "0")
	if e.Verdict != "validated-by-kb" || !e.KBFull || len(e.Checks) != 2 {
		t.Fatalf("kb cell = %+v", e)
	}
	if e4 := get("4", "0"); e4.Unit != e.Unit || len(e4.Rows) != 2 {
		t.Fatalf("dup row unit=%d rows=%v, want unit %d with 2 rows", e4.Unit, e4.Rows, e.Unit)
	}

	// Crowd-confirmed cell carries its question with the votes.
	e = get("1", "1")
	if e.Verdict != "validated-by-kb-and-crowd" || len(e.Questions) != 1 || len(e.Questions[0].Votes) != 2 {
		t.Fatalf("crowd cell = %+v", e)
	}

	// Erroneous cell: repair candidates plus the applied change.
	e = get("2", "1")
	if e.Verdict != "erroneous" || e.Repair == nil || len(e.Repair.Candidates) != 1 {
		t.Fatalf("erroneous cell = %+v", e)
	}
	if e.Change == nil || e.Change.From != "France" || e.Change.To != "Italy" {
		t.Fatalf("erroneous cell change = %+v, want France→Italy", e.Change)
	}

	// Degraded Unknown: the failed question and its exhaustion counters.
	e = get("3", "0")
	if e.Verdict != "unknown" || !e.Degraded || len(e.Questions) != 1 {
		t.Fatalf("degraded cell = %+v", e)
	}
	if q := e.Questions[0]; q.Retries != 2 || q.Timeouts != 1 || q.Error != "budget exhausted" {
		t.Fatalf("degraded question = %+v", q)
	}

	// A row the recorder never saw explains as an empty chain, not an error.
	if e = get("99", "0"); e.Verdict != "" || e.Repair != nil || len(e.Checks) != 0 {
		t.Fatalf("unseen row = %+v, want empty chain", e)
	}
}

// TestHTTPExplainNoProvenance: a terminal job whose report carries no
// recorder (here: a scripted run; in production a journal-recovered job)
// answers 410 Gone.
func TestHTTPExplainNoProvenance(t *testing.T) {
	run := func(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error) {
		return &katara.Report{}, nil
	}
	m := NewManager(Config{Run: run, MaxConcurrent: 1, MaxQueue: 4})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	id, err := m.Submit(lineageTable(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, id)
	code, body := do(t, ts, "GET", "/jobs/"+id+"/explain?row=0&col=0", nil)
	if code != http.StatusGone {
		t.Fatalf("explain without recorder = %d %s, want 410", code, body)
	}
}

// TestHTTPProgressSSE watches a deliberately slow job over the SSE variant
// of /jobs/{id}/progress: events stream while it runs, the final event has
// done=true, and the server then closes the stream.
func TestHTTPProgressSSE(t *testing.T) {
	old := sseInterval
	sseInterval = 2 * time.Millisecond
	defer func() { sseInterval = old }()

	started := make(chan struct{})
	release := make(chan struct{})
	run := func(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error) {
		pipe.Add(telemetry.TuplesAnnotated, 3)
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &katara.Report{}, nil
	}
	m := NewManager(Config{Run: run, MaxConcurrent: 1, MaxQueue: 4})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	id, err := m.Submit(lineageTable(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Plain GET (no Accept header) answers one JSON document.
	code, body := do(t, ts, "GET", "/jobs/"+id+"/progress", nil)
	if code != http.StatusOK {
		t.Fatalf("progress = %d %s", code, body)
	}
	var doc ProgressDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("progress body %s: %v", body, err)
	}
	if doc.ID != id || doc.State != StateRunning || doc.Progress.TuplesAnnotated != 3 {
		t.Fatalf("progress doc = %+v", doc)
	}
	if code, _ = do(t, ts, "GET", "/jobs/nope/progress", nil); code != http.StatusNotFound {
		t.Fatalf("progress unknown job = %d, want 404", code)
	}

	// The streamed watch.
	req, err := http.NewRequest("GET", ts.URL+"/jobs/"+id+"/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}

	var events []ProgressDoc
	released := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev ProgressDoc
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("SSE event %q: %v", line, err)
		}
		events = append(events, ev)
		// Let a couple of running events through, then finish the job and
		// expect the stream to deliver the terminal event and close.
		if len(events) >= 2 && !released {
			released = true
			close(release)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("SSE read: %v", err)
	}
	if len(events) < 3 {
		t.Fatalf("SSE delivered %d events, want at least 3", len(events))
	}
	for _, ev := range events[:2] {
		if ev.State != StateRunning || ev.Progress.Done || ev.Progress.TuplesAnnotated != 3 {
			t.Fatalf("running event = %+v", ev)
		}
	}
	last := events[len(events)-1]
	if !last.Progress.Done || last.State != StateDone {
		t.Fatalf("final event = %+v, want done", last)
	}
}

// TestHTTPVersion: /version answers the build document and /metrics carries
// the matching katarad_build_info gauge, lint-clean.
func TestHTTPVersion(t *testing.T) {
	m := NewManager(Config{Run: func(ctx context.Context, kb *katara.KB, tbl *katara.Table, p Params, pipe *telemetry.Pipeline) (*katara.Report, error) {
		return &katara.Report{}, nil
	}, MaxConcurrent: 1, MaxQueue: 4})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	code, body := do(t, ts, "GET", "/version", nil)
	if code != http.StatusOK {
		t.Fatalf("/version = %d %s", code, body)
	}
	var v VersionInfo
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("/version body %s: %v", body, err)
	}
	if v.GoVersion == "" || v.Module == "" || v.Version == "" {
		t.Fatalf("/version = %+v, want populated build metadata", v)
	}

	code, body = do(t, ts, "GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(string(body), "katarad_build_info{") {
		t.Fatalf("/metrics missing katarad_build_info:\n%s", body)
	}
	if err := telemetry.LintExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics fails lint: %v\n%s", err, body)
	}
}
