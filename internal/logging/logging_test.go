package logging

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("chatty"); err == nil || !strings.Contains(err.Error(), "chatty") {
		t.Errorf("ParseLevel(chatty) err = %v, want error naming the input", err)
	}
}

// TestSplitStreams: Error-and-above land on stderr, everything else on
// stdout, and the level threshold filters both.
func TestSplitStreams(t *testing.T) {
	var out, errw bytes.Buffer
	log := New(&out, &errw, slog.LevelInfo, false)
	log.Debug("hidden")
	log.Info("loaded", "n", 3)
	log.Error("boom", "error", "disk full")

	if s := out.String(); !strings.Contains(s, "msg=loaded") || strings.Contains(s, "hidden") || strings.Contains(s, "boom") {
		t.Errorf("stdout = %q", s)
	}
	if s := errw.String(); !strings.Contains(s, "msg=boom") || !strings.Contains(s, "disk full") || strings.Contains(s, "loaded") {
		t.Errorf("stderr = %q", s)
	}
}

func TestJSONHandler(t *testing.T) {
	var out, errw bytes.Buffer
	log := New(&out, &errw, slog.LevelInfo, true)
	log.With("job", "j1").WithGroup("req").Info("request", "status", 200)
	s := out.String()
	for _, want := range []string{`"msg":"request"`, `"job":"j1"`, `"req":{`, `"status":200`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON line %q missing %s", s, want)
		}
	}
	if errw.Len() != 0 {
		t.Errorf("stderr = %q, want empty", errw.String())
	}
}
