// Package logging is the shared log/slog setup for the katara binaries:
// one -log-level/-log-json convention, with error-level records routed to
// stderr and everything else to stdout (the Unix split between diagnostics
// and lifecycle chatter), as text or JSON.
package logging

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// splitHandler routes error-level records to the stderr handler and
// everything else to the stdout handler.
type splitHandler struct {
	out, err slog.Handler
}

func (h splitHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.out.Enabled(ctx, lvl) || h.err.Enabled(ctx, lvl)
}

func (h splitHandler) Handle(ctx context.Context, r slog.Record) error {
	if r.Level >= slog.LevelError {
		return h.err.Handle(ctx, r)
	}
	return h.out.Handle(ctx, r)
}

func (h splitHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return splitHandler{out: h.out.WithAttrs(attrs), err: h.err.WithAttrs(attrs)}
}

func (h splitHandler) WithGroup(name string) slog.Handler {
	return splitHandler{out: h.out.WithGroup(name), err: h.err.WithGroup(name)}
}

// New builds a logger writing info-and-below records to stdout and
// error-level records to stderr, as text or JSON.
func New(stdout, stderr io.Writer, level slog.Level, asJSON bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if asJSON {
		return slog.New(splitHandler{
			out: slog.NewJSONHandler(stdout, opts),
			err: slog.NewJSONHandler(stderr, opts),
		})
	}
	return slog.New(splitHandler{
		out: slog.NewTextHandler(stdout, opts),
		err: slog.NewTextHandler(stderr, opts),
	})
}
